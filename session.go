package phoebedb

import (
	"fmt"
	"time"

	"phoebedb/internal/sched"
	"phoebedb/internal/waitevent"
)

// This file is the SQL-session plumbing for the wire front end
// (internal/wire): a PoolSession runs a whole connection's statement
// stream on ONE co-routine pool task slot, so a session transaction can
// span many pipelined frames without a worker thread blocking on the
// network — an idle-in-transaction session parks its slot (YieldLow) and
// its worker keeps executing other slots.

// SubmitSessionTask schedules fn on a pool task slot. Unlike Execute,
// which runs exactly one transaction, fn receives a PoolSession and may
// execute any number of statements and transactions before returning;
// the slot is released when fn returns. Fails with sched.ErrStopped once
// the pool is stopping.
func (db *DB) SubmitSessionTask(fn func(ps *PoolSession)) error {
	return db.pool.Submit(func(s *sched.Slot) {
		ps := &PoolSession{db: db, slot: s}
		defer ps.abandon()
		fn(ps)
	})
}

// PoolSession is a multi-statement session bound to a pool task slot for
// the duration of one SubmitSessionTask callback. Not safe for concurrent
// use; it lives on exactly one slot and must not escape the callback.
type PoolSession struct {
	db   *DB
	slot *sched.Slot
	tx   *Tx
}

// abandon rolls back a transaction the callback left open — the slot is
// being returned to the pool and must not leak an in-flight transaction.
func (ps *PoolSession) abandon() {
	if ps.tx != nil {
		ps.tx.Rollback()
		ps.tx = nil
	}
}

// Slot returns the session's task-slot ID.
func (ps *PoolSession) Slot() int { return ps.slot.ID }

// InTxn reports whether an explicit transaction is open.
func (ps *PoolSession) InTxn() bool { return ps.tx != nil }

// DefaultIsolation returns the database's configured default level.
func (ps *PoolSession) DefaultIsolation() Isolation { return ps.db.opts.Isolation }

// Begin opens an explicit transaction on the session's slot. It fails if
// one is already open.
func (ps *PoolSession) Begin(iso Isolation) error {
	if ps.tx != nil {
		return fmt.Errorf("phoebedb: transaction already in progress")
	}
	ps.tx = ps.db.engine.Begin(ps.slot.ID, iso, ps.slot.Metrics, ps.slot.YieldHigh, ps.slot.YieldLow)
	return nil
}

// Commit commits the open transaction.
func (ps *PoolSession) Commit() error {
	if ps.tx == nil {
		return fmt.Errorf("phoebedb: no transaction in progress")
	}
	tx := ps.tx
	ps.tx = nil
	return tx.Commit()
}

// Rollback aborts the open transaction.
func (ps *PoolSession) Rollback() error {
	if ps.tx == nil {
		return fmt.Errorf("phoebedb: no transaction in progress")
	}
	ps.tx.Rollback()
	ps.tx = nil
	return nil
}

// ExecSQL executes one DML statement. Inside an explicit transaction the
// statement joins it; otherwise it runs as its own auto-commit
// transaction on the session's slot. DDL is rejected — the wire layer
// routes DDL through DB.ExecSQL (plus the schema journal) instead.
func (ps *PoolSession) ExecSQL(query string) (SQLResult, error) {
	if ps.tx != nil {
		return ps.db.ExecSQLTx(ps.tx, query)
	}
	tx := ps.db.engine.Begin(ps.slot.ID, ps.db.opts.Isolation, ps.slot.Metrics, ps.slot.YieldHigh, ps.slot.YieldLow)
	res, err := ps.db.ExecSQLTx(tx, query)
	if err != nil {
		tx.Rollback()
		return res, err
	}
	return res, tx.Commit()
}

// Park blocks the session until ch fires or the timeout elapses (false on
// timeout), releasing the slot's worker to run its other slots — this is
// how an idle-in-transaction connection costs a parked co-routine rather
// than a blocked thread. The off-CPU time is charged to the "server" wait
// event.
func (ps *PoolSession) Park(ch <-chan struct{}, timeout time.Duration) bool {
	start := ps.db.waits.Begin(ps.slot.ID, waitevent.EvServer)
	ok := ps.slot.YieldLow(ch, timeout)
	ps.db.waits.End(ps.slot.ID, waitevent.EvServer, start)
	return ok
}

// ChargeQueueWait attributes an admission-queue wait (measured by the
// server front end before the statement reached this slot) to the
// "server" wait event.
func (ps *PoolSession) ChargeQueueWait(d time.Duration) {
	ps.db.waits.Charge(ps.slot.ID, waitevent.EvServer, d)
}

// PoolSlots returns the number of co-routine pool task slots (workers ×
// slots-per-worker, excluding reserved session and system slots) — the
// ceiling a server front end should size its admission control against.
func (db *DB) PoolSlots() int { return db.pool.NumSlots() }
