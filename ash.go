package phoebedb

import (
	"sync"
	"time"

	"phoebedb/internal/waitevent"
)

// Active-session history (ASH): a background sampler that captures, at a
// fixed cadence (Options.ASHSampleInterval, default 10ms), every slot
// with a running transaction — its XID, the statement it is executing,
// and the wait event it is blocked on (or on-CPU). Samples land in a
// fixed-size ring, so history cost is constant regardless of uptime, and
// are exposed through the phoebe_stat_activity_history virtual table.
//
// Sampling reads only per-slot atomic words (the txn manager's
// active-start array and the waitevent cell), so a sample never blocks a
// running transaction.

// ashDefaultRing bounds the retained samples: at the 10ms default
// cadence a full ring under one active session spans ~40s of history,
// proportionally less under concurrency.
const ashDefaultRing = 4096

// ashSample is one sampled observation of one active slot.
type ashSample struct {
	t      time.Time
	slot   int
	xid    uint64
	event  waitevent.Event
	stmtID uint64
}

type ashSampler struct {
	db       *DB
	interval time.Duration

	mu     sync.Mutex
	ring   []ashSample
	next   int
	filled bool
	wrote  int64

	stop chan struct{}
	done chan struct{}
}

func newASHSampler(db *DB, interval time.Duration, ringSize int) *ashSampler {
	if ringSize <= 0 {
		ringSize = ashDefaultRing
	}
	return &ashSampler{
		db:       db,
		interval: interval,
		ring:     make([]ashSample, ringSize),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (a *ashSampler) start() { go a.run() }

// halt stops the sampler goroutine; retained history stays readable.
func (a *ashSampler) halt() {
	close(a.stop)
	<-a.done
}

func (a *ashSampler) run() {
	defer close(a.done)
	t := time.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.sample()
		}
	}
}

// sample captures one observation per slot with a running transaction.
func (a *ashSampler) sample() {
	waits := a.db.waits
	now := time.Now()
	active := a.db.engine.Mgr.ActiveSnapshot()
	if len(active) == 0 {
		return
	}
	a.mu.Lock()
	for _, at := range active {
		a.ring[a.next] = ashSample{
			t:      now,
			slot:   at.Slot,
			xid:    at.XID,
			event:  waits.Current(at.Slot),
			stmtID: waits.Stmt(at.Slot),
		}
		a.next++
		a.wrote++
		if a.next == len(a.ring) {
			a.next = 0
			a.filled = true
		}
	}
	a.mu.Unlock()
}

// snapshot returns the retained samples, oldest first.
func (a *ashSampler) snapshot() []ashSample {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.filled {
		return append([]ashSample(nil), a.ring[:a.next]...)
	}
	out := make([]ashSample, 0, len(a.ring))
	out = append(out, a.ring[a.next:]...)
	out = append(out, a.ring[:a.next]...)
	return out
}

// samples reports the total observations written (monotonic; for tests).
func (a *ashSampler) samples() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.wrote
}
