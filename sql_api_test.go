package phoebedb

import (
	"strings"
	"testing"
)

func execOrFatal(t *testing.T, db *DB, q string) SQLResult {
	t.Helper()
	res, err := db.ExecSQL(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func TestSQLEndToEnd(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE users (id INT, name STRING, city STRING, score FLOAT)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX users_pk ON users (id)")
	execOrFatal(t, db, "CREATE INDEX users_city ON users (city)")

	res := execOrFatal(t, db, "INSERT INTO users VALUES (1, 'ada', 'london', 99.5), (2, 'grace', 'arlington', 97), (3, 'barbara', 'london', 98)")
	if res.Affected != 3 {
		t.Fatalf("inserted %d", res.Affected)
	}

	// Point lookup through the unique index.
	res = execOrFatal(t, db, "SELECT name, score FROM users WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "grace" || res.Rows[0][1].F != 97 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Columns[0] != "name" || res.Columns[1] != "score" {
		t.Fatalf("columns = %v", res.Columns)
	}

	// Secondary index with a residual predicate.
	res = execOrFatal(t, db, "SELECT name FROM users WHERE city = 'london' AND score = 98.0")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "barbara" {
		t.Fatalf("rows = %+v", res.Rows)
	}

	// Full scan + LIMIT.
	res = execOrFatal(t, db, "SELECT * FROM users LIMIT 2")
	if len(res.Rows) != 2 || len(res.Columns) != 4 {
		t.Fatalf("limit scan = %+v", res)
	}

	// UPDATE through the planner.
	res = execOrFatal(t, db, "UPDATE users SET score = 100 WHERE id = 1")
	if res.Affected != 1 {
		t.Fatalf("updated %d", res.Affected)
	}
	res = execOrFatal(t, db, "SELECT score FROM users WHERE id = 1")
	if res.Rows[0][0].F != 100 {
		t.Fatalf("score = %v", res.Rows[0][0])
	}

	// DELETE and verify.
	res = execOrFatal(t, db, "DELETE FROM users WHERE city = 'london'")
	if res.Affected != 2 {
		t.Fatalf("deleted %d", res.Affected)
	}
	res = execOrFatal(t, db, "SELECT * FROM users")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "grace" {
		t.Fatalf("remaining = %+v", res.Rows)
	}
}

func TestSQLTransactional(t *testing.T) {
	// A failing statement inside Execute rolls back the whole transaction.
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE t (id INT, v STRING)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX t_pk ON t (id)")
	execOrFatal(t, db, "INSERT INTO t VALUES (1, 'keep')")

	err := db.Execute(func(tx *Tx) error {
		if _, err := db.ExecSQLTx(tx, "INSERT INTO t VALUES (2, 'gone')"); err != nil {
			return err
		}
		// Duplicate key: the whole transaction must roll back.
		_, err := db.ExecSQLTx(tx, "INSERT INTO t VALUES (1, 'dup')")
		return err
	})
	if err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	res := execOrFatal(t, db, "SELECT * FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("rollback leaked rows: %+v", res.Rows)
	}
	// DDL through ExecSQLTx is rejected.
	db.Execute(func(tx *Tx) error {
		if _, err := db.ExecSQLTx(tx, "CREATE TABLE nope (a INT)"); err == nil {
			t.Error("transactional DDL accepted")
		}
		return nil
	})
}

func TestSQLErrors(t *testing.T) {
	db := openTestDB(t, Options{})
	if _, err := db.ExecSQL("SELEC oops"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := db.ExecSQL("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("err = %v", err)
	}
}

func TestSQLConcurrent(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE counters (id INT, n INT)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX counters_pk ON counters (id)")
	execOrFatal(t, db, "INSERT INTO counters VALUES (1, 0)")
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			_, err := db.ExecSQL("INSERT INTO counters VALUES (" + itoa(i+2) + ", 1)")
			done <- err
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	res := execOrFatal(t, db, "SELECT * FROM counters")
	if len(res.Rows) != 21 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
