module phoebedb

go 1.22
