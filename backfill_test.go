package phoebedb

import (
	"errors"
	"fmt"
	"testing"

	"phoebedb/internal/core"
)

// declareKV creates a table with NO indexes, so tests can load data first
// and index it afterwards (the online-backfill path).
func declareKV(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("kv", NewSchema(
		Column{Name: "id", Type: TInt64},
		Column{Name: "grp", Type: TInt64},
		Column{Name: "pad", Type: TString},
	)); err != nil {
		t.Fatal(err)
	}
}

func insertKV(t *testing.T, db *DB, n int) {
	t.Helper()
	for lo := 0; lo < n; lo += 256 {
		hi := lo + 256
		if hi > n {
			hi = n
		}
		if err := db.Execute(func(tx *Tx) error {
			for i := lo; i < hi; i++ {
				if _, err := tx.Insert("kv", Row{Int(int64(i)), Int(int64(i % 7)), Str(fmt.Sprintf("pad-%d", i))}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCreateIndexBackfillsExistingRows is the regression test for the PR 5
// limitation: CREATE INDEX on a non-empty table used to register an index
// that silently missed every existing row. Now it backfills online, and
// queries planned through the new index see all of them.
func TestCreateIndexBackfillsExistingRows(t *testing.T) {
	db := openTestDB(t, Options{})
	declareKV(t, db)
	const n = 500
	insertKV(t, db, n)

	if err := db.CreateIndex("kv", "kv_id", []string{"id"}, true); err != nil {
		t.Fatalf("unique backfill: %v", err)
	}
	if err := db.CreateIndex("kv", "kv_grp", []string{"grp"}, false); err != nil {
		t.Fatalf("non-unique backfill: %v", err)
	}
	if got := db.Engine().Stats().IndexBackfillRows.Load(); got < n {
		t.Fatalf("IndexBackfillRows = %d, want >= %d", got, n)
	}

	// Point reads through the backfilled unique index.
	if err := db.Execute(func(tx *Tx) error {
		for i := 0; i < n; i += 37 {
			_, row, found, err := tx.GetByIndex("kv", "kv_id", Int(int64(i)))
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("id %d missing from backfilled index", i)
			}
			if row[1].I != int64(i%7) {
				return fmt.Errorf("id %d: grp = %d, want %d", i, row[1].I, i%7)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Range scan through the backfilled non-unique index must agree with a
	// full table scan.
	if err := db.Execute(func(tx *Tx) error {
		want := 0
		if err := tx.ScanTable("kv", func(rid RowID, row Row) bool {
			if row[1].I == 3 {
				want++
			}
			return true
		}); err != nil {
			return err
		}
		got := 0
		if err := tx.ScanIndex("kv", "kv_grp", []Value{Int(3)}, func(rid RowID, row Row) bool {
			got++
			return true
		}); err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("index scan found %d rows, table scan %d", got, want)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The SQL planner must route equality predicates through the new
	// index and still return every matching row.
	res, err := db.ExecSQL("SELECT pad FROM kv WHERE id = 123")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "pad-123" {
		t.Fatalf("SQL read through backfilled index = %+v", res.Rows)
	}
}

// TestCreateIndexBackfillSQLRoute runs the same regression through SQL
// DDL: INSERT, CREATE INDEX, SELECT through it.
func TestCreateIndexBackfillSQLRoute(t *testing.T) {
	db := openTestDB(t, Options{})
	if _, err := db.ExecSQL("CREATE TABLE items (id INT, name STRING)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO items VALUES (%d, 'item-%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.ExecSQL("CREATE UNIQUE INDEX items_pk ON items (id)"); err != nil {
		t.Fatalf("CREATE INDEX after inserts: %v", err)
	}
	res, err := db.ExecSQL("SELECT name FROM items WHERE id = 42")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "item-42" {
		t.Fatalf("rows = %+v, want item-42", res.Rows)
	}
}

// TestCreateUniqueIndexDuplicateFails: building a unique index over rows
// that already violate it must fail with ErrDuplicate and leave no index
// behind.
func TestCreateUniqueIndexDuplicateFails(t *testing.T) {
	db := openTestDB(t, Options{})
	declareKV(t, db)
	insertKV(t, db, 100) // grp repeats every 7 rows

	err := db.CreateIndex("kv", "kv_grp_u", []string{"grp"}, true)
	if !errors.Is(err, core.ErrDuplicate) {
		t.Fatalf("unique backfill over duplicates: err = %v, want ErrDuplicate", err)
	}
	if ix := mustTable(t, db, "kv").Index("kv_grp_u"); ix != nil {
		t.Fatal("failed backfill left the index registered")
	}
	// The table stays fully usable.
	res, err := db.ExecSQL("SELECT id FROM kv WHERE grp = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows after failed backfill")
	}
}

// TestPlainCreateIndexRefusesNonEmpty: the engine-level declare-time
// CreateIndex (used before recovery/load) must refuse a populated table
// instead of serving an index that misses rows.
func TestPlainCreateIndexRefusesNonEmpty(t *testing.T) {
	db := openTestDB(t, Options{})
	declareKV(t, db)
	insertKV(t, db, 10)
	_, err := db.Engine().CreateIndex("kv", "kv_id", []string{"id"}, true)
	if !errors.Is(err, core.ErrTableNotEmpty) {
		t.Fatalf("err = %v, want ErrTableNotEmpty", err)
	}
}

func mustTable(t *testing.T, db *DB, name string) *core.Tbl {
	t.Helper()
	tbl, err := db.Engine().Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}
