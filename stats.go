package phoebedb

import (
	"sort"
	"time"

	"phoebedb/internal/fault"
	"phoebedb/internal/metrics"
	"phoebedb/internal/waitevent"
)

// This file wires the kernel's decentralized counters into the metrics
// registry (Prometheus endpoint, phoebectl stats) and materializes the
// pg_stat-style virtual tables served over the SQL protocol.

// Metrics returns the DB's live metrics registry. Callers may register
// additional sources (the TPC-C driver adds per-transaction-type latency
// histograms this way).
func (db *DB) Metrics() *metrics.Registry { return db.reg }

// SlowLog returns the engine's slow-transaction log. Arm it with
// SlowLog().SetThreshold or Options.SlowTxnThreshold.
func (db *DB) SlowLog() *metrics.SlowLog { return &db.engine.Stats().SlowLog }

// RegisterTxnTypeHist registers a per-transaction-type latency histogram
// under the shared phoebe_txn_type_latency_seconds family (label
// type=typeName). The caller owns the histogram and observes into it.
func (db *DB) RegisterTxnTypeHist(typeName string, h *metrics.Histogram) {
	db.reg.Histogram("phoebe_txn_type_latency_seconds",
		"Transaction latency by transaction type.", "type", typeName, h.Snapshot)
}

// buildRegistry registers every kernel counter, gauge, and histogram.
// Sources are read functions over the subsystems' own atomics, so
// registration happens once at Open and scrapes always see live values.
func buildRegistry(db *DB) *metrics.Registry {
	reg := metrics.NewRegistry()
	st := db.engine.Stats()

	reg.Counter("phoebe_txn_commits_total", "Committed transactions.", st.Commits.Load)
	reg.Counter("phoebe_txn_aborts_total", "Aborted transactions (rollbacks and failed commits).", st.Aborts.Load)
	reg.Counter("phoebe_txn_slow_total", "Transactions over the slow-transaction threshold.", st.SlowLog.Count)
	reg.Gauge("phoebe_txn_active", "Transactions currently running.", func() int64 {
		return int64(db.engine.Mgr.ActiveCount())
	})

	reg.Counter("phoebe_lock_table_waits_total", "Table-lock acquisitions that blocked.", st.TableLocks.Waits.Load)
	reg.Counter("phoebe_lock_table_timeouts_total", "Table-lock waits that timed out (deadlock recovery).", st.TableLocks.Timeouts.Load)
	reg.Counter("phoebe_lock_tuple_waits_total", "Tuple-lock / transaction-ID waits (low-urgency parks).", st.TupleLockWaits.Load)
	reg.Counter("phoebe_lock_table_spurious_wakeups_total", "Table-lock waiters woken grantable that re-queued (herd pressure).", st.TableLocks.SpuriousWakeups.Load)

	reg.Counter("phoebe_buffer_accesses_total", "Page accesses (hot or cold).", func() int64 {
		return db.engine.Pool.Stats().Accesses
	})
	reg.Counter("phoebe_buffer_hits_total", "Page accesses served from memory.", func() int64 {
		return db.engine.Pool.Stats().Hits()
	})
	reg.Counter("phoebe_buffer_misses_total", "Page accesses that loaded from disk.", func() int64 {
		return db.engine.Pool.Stats().Misses
	})
	reg.Counter("phoebe_buffer_evictions_total", "Pages evicted by the cooling protocol.", func() int64 {
		return db.engine.Pool.Stats().Evictions
	})
	reg.Gauge("phoebe_buffer_resident_bytes", "Main Storage resident footprint.", db.engine.Pool.ResidentBytes)

	reg.Counter("phoebe_wal_flushes_total", "WAL buffer drains that hit the device.", db.engine.WAL.Flushes)
	reg.Counter("phoebe_wal_group_waits_total", "Commit leaders that yielded the group-commit wait window before flushing.", db.engine.WAL.GroupWaits)
	reg.Counter("phoebe_wal_remote_flush_waits_total", "Commits that waited on a foreign writer's durable horizon.", st.RemoteFlushWaits.Load)
	reg.Counter("phoebe_wal_rfa_avoided_total", "Cross-slot page touches whose remote flush RFA proved unnecessary.", st.RFAAvoided.Load)

	io := db.engine.IO
	reg.Counter("phoebe_io_data_read_bytes_total", "Bytes read from the data page/block files.", io.DataRead.Load)
	reg.Counter("phoebe_io_data_write_bytes_total", "Bytes written to data files (page flushes, frozen blocks, checkpoints).", io.DataWrite.Load)
	reg.Counter("phoebe_io_wal_write_bytes_total", "Bytes written to the WAL.", io.WALWrite.Load)

	reg.Counter("phoebe_mvcc_fastpath_total", "Visibility checks served by the watermark fast path (no chain walk, no TxnMeta load).", st.MVCCFastPath.Load)
	reg.Counter("phoebe_mvcc_chain_walks_total", "Visibility checks that had to walk the UNDO version chain.", st.MVCCChainWalks.Load)
	reg.Counter("phoebe_mvcc_chain_links_total", "UNDO links traversed across all chain walks.", st.MVCCChainLinks.Load)

	if db.planCache != nil {
		reg.Counter("phoebe_sql_plan_cache_hits_total", "SQL statements served from a cached prepared-statement template.", db.planCache.Hits)
		reg.Counter("phoebe_sql_plan_cache_misses_total", "Cacheable SQL statements that had to lex, parse, and plan.", db.planCache.Misses)
	}
	reg.Counter("phoebe_sql_join_rows_total", "Combined rows emitted by SQL JOIN executions.", db.sqlCounters.JoinRows.Load)
	reg.Counter("phoebe_sql_sorts_total", "In-memory sorts run for ORDER BY.", db.sqlCounters.Sorts.Load)
	reg.Counter("phoebe_sql_sort_avoided_total", "ORDER BY queries served directly in index scan order.", db.sqlCounters.SortAvoided.Load)

	cold := func(f func(s ColdStats) int64) func() int64 {
		return func() int64 { return f(db.engine.ColdStats()) }
	}
	reg.Counter("phoebe_cold_lookups_total", "Point reads routed to the cold tier.",
		cold(func(s ColdStats) int64 { return s.Lookups }))
	reg.Counter("phoebe_cold_segments_probed_total", "Cold segments whose blocks were actually read for a lookup.",
		cold(func(s ColdStats) int64 { return s.SegmentsProbed }))
	reg.Counter("phoebe_cold_bloom_negatives_total", "Cold lookups answered 'absent' by a segment bloom filter without I/O.",
		cold(func(s ColdStats) int64 { return s.BloomNegatives }))
	reg.Counter("phoebe_cold_block_cache_hits_total", "Cold block reads served from the decompressed-block LRU.",
		cold(func(s ColdStats) int64 { return s.CacheHits }))
	reg.Counter("phoebe_cold_block_cache_misses_total", "Cold block reads that decompressed from disk.",
		cold(func(s ColdStats) int64 { return s.CacheMisses }))
	reg.Counter("phoebe_cold_compactions_total", "Cold segment merges completed.",
		cold(func(s ColdStats) int64 { return s.Compactions }))
	reg.Counter("phoebe_cold_freeze_bytes_total", "Compressed bytes written by freezing (first cold write).",
		cold(func(s ColdStats) int64 { return s.FreezeBytes }))
	reg.Counter("phoebe_cold_compact_bytes_total", "Compressed bytes rewritten by compaction merges.",
		cold(func(s ColdStats) int64 { return s.CompactBytes }))
	reg.Gauge("phoebe_cold_segments", "Live cold segments across all tables.",
		cold(func(s ColdStats) int64 { return s.Segments }))

	reg.Counter("phoebe_gc_runs_total", "Garbage-collection rounds.", st.GCRuns.Load)
	reg.Counter("phoebe_gc_reclaimed_total", "UNDO records reclaimed by GC.", st.GCReclaimed.Load)
	reg.Gauge("phoebe_gc_backlog", "Unreclaimed UNDO records across all arenas.", func() int64 {
		return int64(db.engine.Mgr.LiveUndo())
	})
	reg.Counter("phoebe_checkpoints_total", "Completed checkpoints.", st.Checkpoints.Load)
	reg.Counter("phoebe_index_backfill_rows_total", "Index entries written by online CREATE INDEX backfill scans.", st.IndexBackfillRows.Load)

	if a := db.archiver; a != nil {
		reg.Counter("phoebe_archive_rounds_total", "WAL archiving rounds run.", a.Rounds)
		reg.Counter("phoebe_archive_bytes_total", "Log bytes copied into the WAL archive.", a.ArchivedBytes)
		reg.Counter("phoebe_archive_seals_total", "Archive epochs sealed by checkpoints.", a.Seals)
		reg.Counter("phoebe_archive_errors_total", "Background archiving rounds that failed.", db.archErrs.Load)
		reg.Gauge("phoebe_archive_lag_bytes", "Live WAL bytes not yet covered by the archive.", a.LagBytes)
		reg.Gauge("phoebe_archive_horizon_gsn", "Highest GSN the archive durably holds.", func() int64 {
			return int64(a.HorizonGSN())
		})
		reg.Counter("phoebe_backup_base_total", "Completed base backups.", a.BaseBackups)
		reg.Gauge("phoebe_backup_last_base_gsn", "Horizon GSN of the newest base backup (0 = none).", func() int64 {
			return int64(a.LastBaseGSN())
		})
	}

	reg.Counter("phoebe_sched_executed_total", "Pool tasks completed.", db.pool.Executed)
	reg.Counter("phoebe_sched_stolen_total", "Tasks stolen from a sibling worker's queue.", db.pool.Stolen)
	reg.Gauge("phoebe_sched_queue_depth", "Tasks waiting in the admission queue.", func() int64 {
		return int64(db.pool.QueueDepth())
	})
	reg.Counter("phoebe_sched_yields_high_total", "High-urgency yields (latch spins, page reads).", func() int64 {
		high, _ := db.pool.Yields()
		return high
	})
	reg.Counter("phoebe_sched_yields_low_total", "Low-urgency yields (lock waits park the slot).", func() int64 {
		_, low := db.pool.Yields()
		return low
	})

	if db.waits != nil {
		reg.CounterVec("phoebe_wait_event_micros_total",
			"Cumulative off-CPU time by wait event, across all slots.", "event",
			func() []metrics.LabeledValue {
				_, nanos := db.waits.Totals()
				out := make([]metrics.LabeledValue, 0, waitevent.NumEvents-1)
				for e := 1; e < waitevent.NumEvents; e++ {
					out = append(out, metrics.LabeledValue{
						Label: waitevent.Event(e).String(), Value: nanos[e] / 1000,
					})
				}
				return out
			})
		reg.CounterVec("phoebe_wait_event_waits_total",
			"Completed waits by wait event, across all slots.", "event",
			func() []metrics.LabeledValue {
				count, _ := db.waits.Totals()
				out := make([]metrics.LabeledValue, 0, waitevent.NumEvents-1)
				for e := 1; e < waitevent.NumEvents; e++ {
					out = append(out, metrics.LabeledValue{
						Label: waitevent.Event(e).String(), Value: count[e],
					})
				}
				return out
			})
	}

	reg.CounterVec("phoebe_failpoint_hits", "Evaluations of armed failpoint sites.", "site",
		func() []metrics.LabeledValue {
			hits := fault.HitCounts()
			sites := make([]string, 0, len(hits))
			for s := range hits {
				sites = append(sites, s)
			}
			sort.Strings(sites)
			out := make([]metrics.LabeledValue, 0, len(sites))
			for _, s := range sites {
				out = append(out, metrics.LabeledValue{Label: s, Value: hits[s]})
			}
			return out
		})

	reg.Histogram("phoebe_txn_latency_seconds",
		"End-to-end transaction latency merged across all task slots.", "", "",
		func() metrics.HistSnapshot { return db.rec.MergedHist() })
	// Chain lengths are logical link counts recorded through the duration
	// histogram: one nanosecond unit = one traversed UNDO link.
	reg.Histogram("phoebe_mvcc_chain_length",
		"UNDO links traversed per chain walk (unit: links, not time).", "", "",
		db.engine.Stats().MVCCChainLen.Snapshot)
	return reg
}

// --- Virtual stat tables -----------------------------------------------------

// Stat-table names served over the SQL protocol.
const (
	StatEngineTable     = "phoebe_stat_engine"
	StatLatencyTable    = "phoebe_stat_latency"
	StatActivityTable   = "phoebe_stat_activity"
	StatSlowTable       = "phoebe_stat_slow"
	StatTablesTable     = "phoebe_stat_tables"
	StatStatementsTable = "phoebe_stat_statements"
	StatASHTable        = "phoebe_stat_activity_history"
)

var (
	statEngineSchema = NewSchema(
		Column{Name: "name", Type: TString},
		Column{Name: "kind", Type: TString},
		Column{Name: "value", Type: TInt64},
	)
	statLatencySchema = NewSchema(
		Column{Name: "name", Type: TString},
		Column{Name: "label", Type: TString},
		Column{Name: "count", Type: TInt64},
		Column{Name: "p50_us", Type: TInt64},
		Column{Name: "p95_us", Type: TInt64},
		Column{Name: "p99_us", Type: TInt64},
		Column{Name: "max_us", Type: TInt64},
		Column{Name: "mean_us", Type: TInt64},
	)
	statActivitySchema = NewSchema(
		Column{Name: "slot", Type: TInt64},
		Column{Name: "xid", Type: TInt64},
		Column{Name: "start_ts", Type: TInt64},
		Column{Name: "age_ticks", Type: TInt64},
	)
	statSlowSchema = NewSchema(
		Column{Name: "xid", Type: TInt64},
		Column{Name: "slot", Type: TInt64},
		Column{Name: "committed", Type: TInt64},
		Column{Name: "total_us", Type: TInt64},
		Column{Name: "wait_us", Type: TInt64},
		Column{Name: "compute_us", Type: TInt64},
		Column{Name: "wal_us", Type: TInt64},
		Column{Name: "mvcc_us", Type: TInt64},
		Column{Name: "latch_us", Type: TInt64},
		Column{Name: "lock_us", Type: TInt64},
		Column{Name: "buffer_us", Type: TInt64},
		Column{Name: "gc_us", Type: TInt64},
		Column{Name: "stmt", Type: TString},
		Column{Name: "plan", Type: TString},
	)
	statTablesSchema = NewSchema(
		Column{Name: "name", Type: TString},
		Column{Name: "id", Type: TInt64},
		Column{Name: "pages", Type: TInt64},
		Column{Name: "indexes", Type: TInt64},
	)
	// statStatementsSchema appends one <event>_us column per wait event so
	// each statement row carries its full wait breakdown.
	statStatementsSchema = func() *Schema {
		cols := []Column{
			{Name: "statement", Type: TString},
			{Name: "calls", Type: TInt64},
			{Name: "errors", Type: TInt64},
			{Name: "total_us", Type: TInt64},
			{Name: "mean_us", Type: TInt64},
			{Name: "p95_us", Type: TInt64},
			{Name: "rows", Type: TInt64},
			{Name: "buf_misses", Type: TInt64},
			{Name: "wal_bytes", Type: TInt64},
		}
		for e := 1; e < waitevent.NumEvents; e++ {
			cols = append(cols, Column{Name: waitevent.Event(e).String() + "_us", Type: TInt64})
		}
		return NewSchema(cols...)
	}()
	statASHSchema = NewSchema(
		Column{Name: "sample_us", Type: TInt64},
		Column{Name: "slot", Type: TInt64},
		Column{Name: "xid", Type: TInt64},
		Column{Name: "state", Type: TString},
		Column{Name: "wait_event", Type: TString},
		Column{Name: "statement", Type: TString},
	)
)

func micros(d time.Duration) Value { return Int(d.Microseconds()) }

// RegisterStatTable registers an additional phoebe_stat_* virtual table
// materialized by fn on every read. Layers above the kernel use this to
// surface their own state over the SQL protocol (the wire front end
// registers phoebe_stat_server). Re-registering a name replaces it.
func (db *DB) RegisterStatTable(name string, fn func() (*Schema, []Row)) {
	db.statExtraMu.Lock()
	defer db.statExtraMu.Unlock()
	if db.statExtras == nil {
		db.statExtras = make(map[string]func() (*Schema, []Row))
	}
	db.statExtras[name] = fn
}

// StatTable materializes one virtual stat table, or ok=false for any name
// that is not one. Every call reads the live counters — two scrapes of the
// same table can and should differ under load.
func (db *DB) StatTable(name string) (*Schema, []Row, bool) {
	switch name {
	case StatEngineTable:
		var rows []Row
		for _, s := range db.reg.Samples() {
			rows = append(rows, Row{Str(s.Name), Str(s.Kind.String()), Int(s.Value)})
		}
		return statEngineSchema, rows, true

	case StatLatencyTable:
		var rows []Row
		for _, h := range db.reg.Histograms() {
			rows = append(rows, Row{
				Str(h.Name), Str(h.Label), Int(h.Snap.Count),
				micros(h.Snap.Quantile(0.50)), micros(h.Snap.Quantile(0.95)),
				micros(h.Snap.Quantile(0.99)), micros(time.Duration(h.Snap.Max)),
				micros(h.Snap.Mean()),
			})
		}
		return statLatencySchema, rows, true

	case StatActivityTable:
		now := db.engine.Mgr.Clock.Now()
		var rows []Row
		for _, a := range db.engine.Mgr.ActiveSnapshot() {
			age := int64(0)
			if now > a.StartTS {
				age = int64(now - a.StartTS)
			}
			rows = append(rows, Row{Int(int64(a.Slot)), Int(int64(a.XID)), Int(int64(a.StartTS)), Int(age)})
		}
		return statActivitySchema, rows, true

	case StatSlowTable:
		var rows []Row
		for _, t := range db.engine.Stats().SlowLog.Recent() {
			committed := int64(0)
			if t.Committed {
				committed = 1
			}
			row := Row{
				Int(int64(t.XID)), Int(int64(t.Slot)), Int(committed),
				micros(t.Total), micros(t.Wait),
			}
			for c := 0; c < metrics.NumComponents; c++ {
				row = append(row, micros(t.Comp[c]))
			}
			row = append(row, Str(t.Stmt), Str(t.Plan))
			rows = append(rows, row)
		}
		return statSlowSchema, rows, true

	case StatTablesTable:
		var rows []Row
		for _, t := range db.engine.Tables() {
			rows = append(rows, Row{
				Str(t.Name), Int(int64(t.ID)),
				Int(int64(t.Store.NumPages())), Int(int64(len(t.Indexes()))),
			})
		}
		return statTablesSchema, rows, true

	case StatStatementsTable:
		var rows []Row
		for _, sn := range db.stmtStats.Snapshot() {
			row := Row{
				Str(sn.Text), Int(sn.Calls), Int(sn.Errors),
				Int(sn.TotalNanos / 1000), Int(sn.MeanNanos() / 1000),
				micros(sn.Hist.Quantile(0.95)),
				Int(sn.Rows), Int(sn.BufMisses), Int(sn.WALBytes),
			}
			for e := 1; e < waitevent.NumEvents; e++ {
				row = append(row, Int(sn.WaitNanos[e]/1000))
			}
			rows = append(rows, row)
		}
		return statStatementsSchema, rows, true

	case StatASHTable:
		var rows []Row
		if db.ash != nil {
			for _, smp := range db.ash.snapshot() {
				state := "cpu"
				if smp.event != waitevent.EvNone {
					state = "wait"
				}
				rows = append(rows, Row{
					Int(smp.t.UnixMicro()), Int(int64(smp.slot)), Int(int64(smp.xid)),
					Str(state), Str(smp.event.String()),
					Str(db.stmtStats.TextByID(smp.stmtID)),
				})
			}
		}
		return statASHSchema, rows, true
	}
	db.statExtraMu.RLock()
	fn := db.statExtras[name]
	db.statExtraMu.RUnlock()
	if fn != nil {
		schema, rows := fn()
		return schema, rows, true
	}
	return nil, nil, false
}
