package phoebedb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"phoebedb/internal/fault/crashtest"
)

// TestOnlineBackfillConcurrentWriters builds an index over a 10k-row
// table while writer goroutines keep inserting, updating, and deleting.
// Afterwards the index must match a full table scan row-for-row — the
// crashtest consistency definition — regardless of whether each write
// landed before the backfill snapshot, during the catch-up window, or
// after the index went live.
func TestOnlineBackfillConcurrentWriters(t *testing.T) {
	const (
		baseRows = 10_000
		writers  = 4
	)
	db := openTestDB(t, Options{Workers: 4, SlotsPerWorker: 4})
	declareKV(t, db)
	insertKV(t, db, baseRows)

	var stop atomic.Bool
	var wg sync.WaitGroup
	nextID := atomic.Int64{}
	nextID.Store(baseRows)
	writeErr := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for !stop.Load() {
				i++
				var err error
				switch i % 3 {
				case 0: // insert a fresh id
					id := nextID.Add(1)
					err = db.Execute(func(tx *Tx) error {
						_, e := tx.Insert("kv", Row{Int(id), Int(id % 7), Str(fmt.Sprintf("pad-%d", id))})
						return e
					})
				case 1: // move a row to another group (changes the indexed column)
					id := int64(w*1000 + i%1000)
					err = db.Execute(func(tx *Tx) error {
						return execSQLUpdate(tx, db, fmt.Sprintf("UPDATE kv SET grp = %d WHERE id = %d", (id+i64(i))%7, id))
					})
				default: // delete one of this writer's ids, sometimes
					id := int64(w*1000 + i%1000)
					err = db.Execute(func(tx *Tx) error {
						return execSQLUpdate(tx, db, fmt.Sprintf("DELETE FROM kv WHERE id = %d", id))
					})
				}
				if err != nil {
					writeErr <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	// Build the index while the writers churn.
	if _, err := db.ExecSQL("CREATE INDEX kv_grp ON kv (grp)"); err != nil {
		stop.Store(true)
		wg.Wait()
		t.Fatalf("online CREATE INDEX: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-writeErr:
		t.Fatal(err)
	default:
	}

	if got := db.Engine().Stats().IndexBackfillRows.Load(); got < baseRows {
		t.Fatalf("IndexBackfillRows = %d, want >= %d", got, baseRows)
	}

	sess, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	tx := sess.Begin(ReadCommitted)
	defer tx.Commit()
	if err := crashtest.VerifyIndexIn(tx, db.Engine(), "kv", "kv_grp"); err != nil {
		t.Fatal(err)
	}
}

func i64(i int) int64 { return int64(i) }

// execSQLUpdate runs one write statement inside an existing transaction.
func execSQLUpdate(tx *Tx, db *DB, stmt string) error {
	_, err := db.ExecSQLTx(tx, stmt)
	return err
}
