package phoebedb

import (
	"fmt"

	"phoebedb/internal/rel"
	"phoebedb/internal/sql"
)

// SQLResult is the outcome of ExecSQL: projected columns and rows for
// SELECT, the affected-row count for writes.
type SQLResult = sql.Result

// sqlCatalog adapts the engine's catalog to the SQL executor.
type sqlCatalog struct{ db *DB }

func (c sqlCatalog) CreateTable(name string, schema *rel.Schema) error {
	return c.db.CreateTable(name, schema)
}

func (c sqlCatalog) CreateIndex(table, index string, cols []string, unique bool) error {
	return c.db.CreateIndex(table, index, cols, unique)
}

func (c sqlCatalog) TableSchema(name string) (*rel.Schema, error) {
	t, err := c.db.engine.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema, nil
}

// StatTable implements sql.StatCatalog: phoebe_stat_* names resolve to
// virtual tables materialized from the live metrics registry.
func (c sqlCatalog) StatTable(name string) (*rel.Schema, []rel.Row, bool) {
	return c.db.StatTable(name)
}

func (c sqlCatalog) IndexInfo(table string) ([]sql.IndexMeta, error) {
	t, err := c.db.engine.Table(table)
	if err != nil {
		return nil, err
	}
	var out []sql.IndexMeta
	for _, ix := range t.Indexes() {
		out = append(out, sql.IndexMeta{Name: ix.Name, Cols: ix.Cols, Unique: ix.Unique})
	}
	return out, nil
}

// ExecSQL parses and executes one SQL statement. DDL (CREATE TABLE /
// CREATE INDEX) applies immediately; DML runs as one transaction on the
// co-routine pool. The supported subset is documented in internal/sql.
func (db *DB) ExecSQL(query string) (SQLResult, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return SQLResult{}, err
	}
	cat := sqlCatalog{db: db}
	if sql.IsDDL(stmt) {
		return sql.ExecDDL(cat, stmt)
	}
	var res SQLResult
	err = db.Execute(func(tx *Tx) error {
		var execErr error
		res, execErr = sql.Exec(cat, tx, stmt)
		return execErr
	})
	return res, err
}

// ExecSQLTx executes one DML statement inside an existing transaction
// (session use).
func (db *DB) ExecSQLTx(tx *Tx, query string) (SQLResult, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return SQLResult{}, err
	}
	if sql.IsDDL(stmt) {
		return SQLResult{}, fmt.Errorf("phoebedb: DDL is not transactional; use ExecSQL")
	}
	return sql.Exec(sqlCatalog{db: db}, tx, stmt)
}
