package phoebedb

import (
	"fmt"

	"phoebedb/internal/rel"
	"phoebedb/internal/sql"
)

// SQLResult is the outcome of ExecSQL: projected columns and rows for
// SELECT, the affected-row count for writes.
type SQLResult = sql.Result

// sqlCatalog adapts the engine's catalog to the SQL executor.
type sqlCatalog struct{ db *DB }

func (c sqlCatalog) CreateTable(name string, schema *rel.Schema) error {
	return c.db.CreateTable(name, schema)
}

func (c sqlCatalog) CreateIndex(table, index string, cols []string, unique bool) error {
	return c.db.CreateIndex(table, index, cols, unique)
}

func (c sqlCatalog) TableSchema(name string) (*rel.Schema, error) {
	t, err := c.db.engine.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema, nil
}

// StatTable implements sql.StatCatalog: phoebe_stat_* names resolve to
// virtual tables materialized from the live metrics registry.
func (c sqlCatalog) StatTable(name string) (*rel.Schema, []rel.Row, bool) {
	return c.db.StatTable(name)
}

// SQLCounters implements sql.CounterCatalog: executor statistics land in
// the DB-wide counter block exported through the metrics registry.
func (c sqlCatalog) SQLCounters() *sql.Counters {
	return &c.db.sqlCounters
}

func (c sqlCatalog) IndexInfo(table string) ([]sql.IndexMeta, error) {
	t, err := c.db.engine.Table(table)
	if err != nil {
		return nil, err
	}
	var out []sql.IndexMeta
	for _, ix := range t.Indexes() {
		// An index under online backfill is maintained by writers but
		// must not serve plans until it is complete.
		if !ix.Live() {
			continue
		}
		out = append(out, sql.IndexMeta{Name: ix.Name, Cols: ix.Cols, Unique: ix.Unique})
	}
	return out, nil
}

// ExecSQL parses and executes one SQL statement. DDL (CREATE TABLE /
// CREATE INDEX) applies immediately; DML runs as one transaction on the
// co-routine pool. Repeated statement shapes hit the prepared-statement
// plan cache, skipping the parser and planner (see Options.PlanCacheSize).
// The supported subset is documented in internal/sql.
func (db *DB) ExecSQL(query string) (SQLResult, error) {
	cat := sqlCatalog{db: db}
	if cs, params, ok := db.prepare(query); ok {
		fp := cs.Fingerprint()
		st := db.stmtStats.Intern(fp)
		var res SQLResult
		err := db.Execute(func(tx *Tx) error {
			done := db.stmtBegin(tx.Slot(), st)
			tx.NoteStatement(fp)
			var execErr error
			res, execErr = sql.ExecPrepared(cat, tx, cs, params)
			done(resultRows(res), execErr)
			return execErr
		})
		return res, err
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return SQLResult{}, err
	}
	if sql.IsDDL(stmt) {
		// The catalog adapter routes through db.CreateTable/CreateIndex,
		// which invalidate the plan cache.
		return sql.ExecDDL(cat, stmt)
	}
	fp := sql.Fingerprint(query)
	st := db.stmtStats.Intern(fp)
	var res SQLResult
	err = db.Execute(func(tx *Tx) error {
		done := db.stmtBegin(tx.Slot(), st)
		tx.NoteStatement(fp)
		var execErr error
		res, execErr = sql.Exec(cat, tx, stmt)
		done(resultRows(res), execErr)
		return execErr
	})
	return res, err
}

// resultRows is the rows figure a statement contributes to its
// aggregates: rows returned for SELECT, rows affected for writes.
func resultRows(r SQLResult) int64 {
	if len(r.Columns) > 0 {
		return int64(len(r.Rows))
	}
	return int64(r.Affected)
}

// ExecSQLTx executes one DML statement inside an existing transaction
// (session use). Statements share the database-wide plan cache with
// ExecSQL and all other sessions.
func (db *DB) ExecSQLTx(tx *Tx, query string) (SQLResult, error) {
	cat := sqlCatalog{db: db}
	if cs, params, ok := db.prepare(query); ok {
		fp := cs.Fingerprint()
		done := db.stmtBegin(tx.Slot(), db.stmtStats.Intern(fp))
		tx.NoteStatement(fp)
		res, err := sql.ExecPrepared(cat, tx, cs, params)
		done(resultRows(res), err)
		return res, err
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return SQLResult{}, err
	}
	if sql.IsDDL(stmt) {
		return SQLResult{}, fmt.Errorf("phoebedb: DDL is not transactional; use ExecSQL")
	}
	fp := sql.Fingerprint(query)
	done := db.stmtBegin(tx.Slot(), db.stmtStats.Intern(fp))
	tx.NoteStatement(fp)
	res, err := sql.Exec(cat, tx, stmt)
	done(resultRows(res), err)
	return res, err
}

// PlanCacheStats reports the prepared-statement plan cache's hit and miss
// counts (both zero when the cache is disabled).
func (db *DB) PlanCacheStats() (hits, misses int64) {
	if db.planCache == nil {
		return 0, 0
	}
	return db.planCache.Hits(), db.planCache.Misses()
}

// prepare consults the plan cache. ok=false sends the statement down the
// parse path: the cache is disabled, the statement is DDL, or it contains
// something the normalizer does not handle (including syntax errors, so
// the parser reports them against the original text).
func (db *DB) prepare(query string) (*sql.CachedStmt, []Value, bool) {
	if db.planCache == nil {
		return nil, nil, false
	}
	return db.planCache.Prepare(query)
}
