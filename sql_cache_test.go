package phoebedb

import (
	"fmt"
	"sync"
	"testing"
)

// DDL must invalidate the shared plan cache: a new index or table can
// change any cached statement's access path. (Indexes must still be
// declared before data — the engine does not backfill — so the test
// exercises invalidation via both DDL routes and re-planning correctness.)
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE items (id INT, kind STRING)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX items_pk ON items (id)")
	for i := 1; i <= 8; i++ {
		execOrFatal(t, db, fmt.Sprintf("INSERT INTO items VALUES (%d, 'k')", i))
	}

	// Warm the cache with an index point-lookup plan.
	res := execOrFatal(t, db, "SELECT * FROM items WHERE id = 3")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if db.planCache.Len() == 0 {
		t.Fatal("statement did not populate the plan cache")
	}

	// DDL through the SQL path clears the cache.
	execOrFatal(t, db, "CREATE TABLE extra_sql (a INT)")
	if n := db.planCache.Len(); n != 0 {
		t.Fatalf("plan cache holds %d entries after CREATE TABLE, want 0", n)
	}

	// The same statement shape re-plans against the new catalog and still
	// answers correctly.
	res = execOrFatal(t, db, "SELECT * FROM items WHERE id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("post-DDL rows = %+v", res.Rows)
	}
	if db.planCache.Len() == 0 {
		t.Fatal("re-planned statement did not repopulate the cache")
	}

	// DDL through the programmatic API clears it too.
	if err := db.CreateTable("extra_api", NewSchema(Column{Name: "a", Type: TInt64})); err != nil {
		t.Fatal(err)
	}
	if n := db.planCache.Len(); n != 0 {
		t.Fatalf("plan cache holds %d entries after CreateTable, want 0", n)
	}
	if err := db.CreateIndex("extra_api", "extra_api_pk", []string{"a"}, true); err != nil {
		t.Fatal(err)
	}
	if n := db.planCache.Len(); n != 0 {
		t.Fatalf("plan cache holds %d entries after CreateIndex, want 0", n)
	}
}

// Concurrent sessions share one plan cache; hammering the same statement
// shapes from many goroutines must stay correct and actually hit.
func TestPlanCacheConcurrentSessions(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE kv (id INT, v STRING)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX kv_pk ON kv (id)")

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i + 1
				if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'v%d')", id, id)); err != nil {
					errs <- err
					return
				}
				res, err := db.ExecSQL(fmt.Sprintf("SELECT v FROM kv WHERE id = %d", id))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].S != fmt.Sprintf("v%d", id) {
					errs <- fmt.Errorf("id %d: rows = %+v", id, res.Rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := execOrFatal(t, db, "SELECT * FROM kv")
	if len(res.Rows) != workers*perWorker {
		t.Fatalf("rows = %d, want %d", len(res.Rows), workers*perWorker)
	}
	// Two shapes, workers*perWorker executions each: all but the first two
	// cacheable statements should have hit.
	if hits := db.planCache.Hits(); hits < int64(workers*perWorker) {
		t.Fatalf("plan cache hits = %d, expected at least %d", hits, workers*perWorker)
	}
}

// PlanCacheSize < 0 disables the cache entirely; every statement takes the
// parse path and behaves identically.
func TestPlanCacheDisabled(t *testing.T) {
	db := openTestDB(t, Options{PlanCacheSize: -1})
	if db.planCache != nil {
		t.Fatal("plan cache allocated despite PlanCacheSize=-1")
	}
	execOrFatal(t, db, "CREATE TABLE t (id INT)")
	execOrFatal(t, db, "INSERT INTO t VALUES (1)")
	res := execOrFatal(t, db, "SELECT * FROM t WHERE id = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

// ExecSQLTx shares the database-wide cache with ExecSQL.
func TestPlanCacheSessionPath(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE t (id INT, v STRING)")
	execOrFatal(t, db, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")

	hits := db.planCache.Hits()
	err := db.Execute(func(tx *Tx) error {
		for i := 1; i <= 2; i++ {
			res, err := db.ExecSQLTx(tx, fmt.Sprintf("SELECT v FROM t WHERE id = %d", i))
			if err != nil {
				return err
			}
			if len(res.Rows) != 1 {
				return fmt.Errorf("id %d: %+v", i, res.Rows)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.planCache.Hits() != hits+1 {
		t.Fatalf("hits went %d -> %d; second identical shape should hit", hits, db.planCache.Hits())
	}
}

// Join and GROUP BY statements must be cacheable: the second execution
// with swapped literals is a cache hit that rebinds and still answers
// correctly.
func TestPlanCacheJoinAndGroupBy(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE c (cid INT, region STRING)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX c_pk ON c (cid)")
	execOrFatal(t, db, "CREATE TABLE o (oid INT, cid INT, amt FLOAT)")
	execOrFatal(t, db, "INSERT INTO c VALUES (1, 'eu'), (2, 'us'), (3, 'ap')")
	execOrFatal(t, db, "INSERT INTO o VALUES (10, 1, 5), (11, 2, 7), (12, 1, 2), (13, 1, 7)")

	hits0, _ := db.PlanCacheStats()
	res := execOrFatal(t, db, "SELECT oid FROM o JOIN c ON o.cid = c.cid WHERE region = 'eu'")
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d, want 3", len(res.Rows))
	}
	if db.planCache.Len() == 0 {
		t.Fatal("join statement was not cached")
	}
	// Same shape, different literal: must hit and rebind.
	res = execOrFatal(t, db, "SELECT oid FROM o JOIN c ON o.cid = c.cid WHERE region = 'us'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 11 {
		t.Fatalf("rebound join rows = %+v, want [[11]]", res.Rows)
	}
	hits1, _ := db.PlanCacheStats()
	if hits1 != hits0+1 {
		t.Fatalf("join rebind: hits %d -> %d, want +1", hits0, hits1)
	}

	res = execOrFatal(t, db, "SELECT cid, count(*), sum(amt) FROM o WHERE amt = 7 GROUP BY cid ORDER BY cid")
	if len(res.Rows) != 2 {
		t.Fatalf("group rows = %+v", res.Rows)
	}
	res = execOrFatal(t, db, "SELECT cid, count(*), sum(amt) FROM o WHERE amt = 5 GROUP BY cid ORDER BY cid")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 || res.Rows[0][1].I != 1 {
		t.Fatalf("rebound group rows = %+v", res.Rows)
	}
	hits2, _ := db.PlanCacheStats()
	if hits2 != hits1+1 {
		t.Fatalf("group rebind: hits %d -> %d, want +1", hits1, hits2)
	}
}

// Completing an online index backfill changes the available access paths,
// so it must flush the plan cache — through the SQL DDL route and the
// programmatic API alike — and re-planned statements must use the new
// index correctly.
func TestPlanCacheInvalidatedByBackfill(t *testing.T) {
	db := openTestDB(t, Options{})
	declareKV(t, db)
	insertKV(t, db, 500)

	res := execOrFatal(t, db, "SELECT id FROM kv WHERE grp = 3")
	want := len(res.Rows)
	if want == 0 || db.planCache.Len() == 0 {
		t.Fatalf("warmup: rows=%d cached=%d", want, db.planCache.Len())
	}

	// SQL route: CREATE INDEX backfills 500 rows, then invalidates.
	execOrFatal(t, db, "CREATE INDEX kv_grp ON kv (grp)")
	if n := db.planCache.Len(); n != 0 {
		t.Fatalf("plan cache holds %d entries after online CREATE INDEX, want 0", n)
	}
	res = execOrFatal(t, db, "SELECT id FROM kv WHERE grp = 3")
	if len(res.Rows) != want {
		t.Fatalf("re-planned query: %d rows, want %d", len(res.Rows), want)
	}
	if db.planCache.Len() == 0 {
		t.Fatal("re-planned statement did not repopulate the cache")
	}

	// Programmatic route: online backfill through DB.CreateIndex.
	if err := db.CreateIndex("kv", "kv_id", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if n := db.planCache.Len(); n != 0 {
		t.Fatalf("plan cache holds %d entries after DB.CreateIndex backfill, want 0", n)
	}
	res = execOrFatal(t, db, "SELECT grp FROM kv WHERE id = 42")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 42%7 {
		t.Fatalf("unique-index query after backfill: %+v", res.Rows)
	}
}
