// Package phoebedb is a from-scratch Go reproduction of PhoebeDB (EDBT
// 2025): a disk-based RDBMS kernel for high-performance, cost-effective
// OLTP. It combines an in-memory data-centric storage engine with
// temperature-based hot/cold/frozen data layers and pointer swizzling, a
// co-routine-pool runtime with a pull-based scheduler, MVCC with in-memory
// UNDO logs and O(1) snapshots, hybrid optimistic/pessimistic concurrency
// control with decentralized lock management, and a parallel write-ahead
// log with Remote Flush Avoidance.
//
// # Quick start
//
//	db, _ := phoebedb.Open(phoebedb.Options{Dir: "demo-db"})
//	defer db.Close()
//	db.CreateTable("users", phoebedb.NewSchema(
//		phoebedb.Column{Name: "id", Type: phoebedb.TInt64},
//		phoebedb.Column{Name: "name", Type: phoebedb.TString},
//	))
//	db.CreateIndex("users", "users_pk", []string{"id"}, true)
//	db.Execute(func(tx *phoebedb.Tx) error {
//		_, err := tx.Insert("users", phoebedb.Row{phoebedb.Int(1), phoebedb.Str("ada")})
//		return err
//	})
//
// Execute runs the closure as one transaction on the co-routine pool:
// commit on nil return, rollback otherwise. For explicit transaction
// control use a Session, which reserves a dedicated task slot.
package phoebedb

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"phoebedb/internal/backup"
	"phoebedb/internal/core"
	"phoebedb/internal/frozen"
	"phoebedb/internal/metrics"
	"phoebedb/internal/rel"
	"phoebedb/internal/sched"
	"phoebedb/internal/sql"
	"phoebedb/internal/txn"
	"phoebedb/internal/waitevent"
)

// Re-exported relational primitives, so applications only import this
// package.
type (
	// Row is one tuple.
	Row = rel.Row
	// Value is one column value.
	Value = rel.Value
	// Column declares a schema attribute.
	Column = rel.Column
	// Schema describes a relation.
	Schema = rel.Schema
	// RowID is the internal tuple identifier.
	RowID = rel.RowID
	// Tx is a running transaction.
	Tx = core.Tx
	// Isolation selects the snapshot isolation level.
	Isolation = txn.Isolation
	// ColdStats aggregates cold-tier counters across all tables.
	ColdStats = frozen.ColdStats
)

// Column types.
const (
	TInt64   = rel.TInt64
	TFloat64 = rel.TFloat64
	TString  = rel.TString
)

// Isolation levels (PostgreSQL-compatible, §6.1).
const (
	ReadCommitted  = txn.ReadCommitted
	RepeatableRead = txn.RepeatableRead
)

// Value constructors.
var (
	Int       = rel.Int
	Float     = rel.Float
	Str       = rel.Str
	NewSchema = rel.NewSchema
)

// Options configures a DB.
type Options struct {
	// Dir is the database directory.
	Dir string
	// Workers is the worker-thread count (default GOMAXPROCS); each owns
	// a buffer partition and SlotsPerWorker task slots.
	Workers int
	// SlotsPerWorker is the task-slot count per worker (default 32, the
	// paper's evaluated setting).
	SlotsPerWorker int
	// Sessions reserves extra dedicated slots for interactive Session use
	// (default 4).
	Sessions int
	// ThreadMode pins every task slot to an OS thread (Exp 6 comparison).
	ThreadMode bool
	// BufferBytes is the Main Storage budget (default 256 MiB).
	BufferBytes int64
	// PageSize / PageCap tune the data page geometry (defaults 32 KiB /
	// 64 rows).
	PageSize, PageCap int
	// WALSync fsyncs WAL flushes on commit.
	WALSync bool
	// GroupCommitWait is how long a commit leader that sees sibling slots
	// mid-transaction waits for their commits before issuing the shared
	// fsync (grows the batch one device write retires). 0 picks a default
	// of 400µs when WALSync is on; negative disables the wait. Serial
	// workloads never pay it — the wait only arms when another slot has
	// already buffered records.
	GroupCommitWait time.Duration
	// Isolation is the default level for Execute (ReadCommitted).
	Isolation Isolation
	// LockTimeout bounds lock waits (default 2s).
	LockTimeout time.Duration
	// DisableRFA forces commits to wait for the global flush horizon (the
	// Remote Flush Avoidance ablation).
	DisableRFA bool
	// PessimisticIndex disables optimistic lock coupling on index B-Trees
	// (the hybrid-lock ablation).
	PessimisticIndex bool
	// DisableReadFastPath reverts point reads and scans to the legacy
	// visibility path — fresh row materialization per read, no watermark
	// short-circuit (the read-path-overhaul ablation).
	DisableReadFastPath bool
	// DisableVectorizedScan turns off batch predicate evaluation over PAX
	// minipages: filtered full scans and pushed-down aggregates fall back
	// to row-at-a-time materialization (the vectorized-scan ablation).
	DisableVectorizedScan bool
	// DisableColdCompaction reverts the cold tier to flat frozen blocks:
	// one whole-batch compressed block per freeze, no bloom filters, zone
	// maps, or levelled compaction (the levelled-cold-store ablation).
	DisableColdCompaction bool
	// ColdCacheBytes bounds the per-table LRU of decompressed cold-segment
	// blocks (0 = default 4 MiB).
	ColdCacheBytes int64
	// PlanCacheSize bounds the prepared-statement plan cache (number of
	// cached statement shapes per database; default 256, negative
	// disables caching).
	PlanCacheSize int
	// MaintainEvery runs worker maintenance (page swap, GC) after this
	// many transactions per slot (default 64).
	MaintainEvery int
	// SlowTxnThreshold arms the slow-transaction log: transactions slower
	// than this are captured with their full component breakdown (see
	// SlowLog). Zero leaves it off.
	SlowTxnThreshold time.Duration
	// StatsLite disables per-transaction histogram and trace updates,
	// keeping only the scalar counters. It also turns off wait-event
	// stamping, per-statement aggregation, and the ASH sampler. Used to
	// measure instrumentation overhead; leave off in normal operation.
	StatsLite bool
	// ASHSampleInterval is the active-session-history sampling cadence:
	// a background sampler captures every slot's (txn state, statement,
	// wait event) into a fixed ring exposed as
	// phoebe_stat_activity_history. 0 picks the 10ms default; negative
	// disables sampling. Ignored under StatsLite.
	ASHSampleInterval time.Duration
	// ArchiveDir enables continuous WAL archiving into this directory: a
	// background archiver copies committed log bytes there, checkpoints
	// seal (and never truncate) archived history, and BaseBackup takes
	// online base backups into it. Restore and point-in-time recovery run
	// from this directory alone (phoebectl backup restore).
	ArchiveDir string
	// ArchiveInterval is the background archiver's polling cadence
	// (default 100ms). It bounds the archive lag: how much acknowledged
	// work an archive-only restore could lose if the primary's disk died.
	ArchiveInterval time.Duration
}

// DB is an open PhoebeDB instance: the kernel plus its co-routine pool.
type DB struct {
	engine *core.Engine
	pool   *sched.Pool
	rec    *metrics.Recorder
	reg    *metrics.Registry
	opts   Options

	maintainMu sync.Mutex // serializes system-slot maintenance work
	sysSlot    int        // reserved slot for warming / system txns

	sessMu   sync.Mutex
	sessNext int
	sessMax  int

	archiver *backup.Archiver
	archErrs atomic.Int64
	archStop chan struct{}
	archDone chan struct{}

	// waits is the per-slot wait-event state stamped by the kernel's
	// blocking sites; nil under StatsLite.
	waits *waitevent.Slots
	// stmtStats aggregates per-statement execution profiles keyed by the
	// plan cache's normalized fingerprint; nil under StatsLite.
	stmtStats *metrics.StmtStats
	// ash samples slot activity into a fixed ring; nil when disabled.
	ash *ashSampler

	// statExtras holds virtual stat tables registered by layers above the
	// kernel (the wire server's phoebe_stat_server); see RegisterStatTable.
	statExtraMu sync.RWMutex
	statExtras  map[string]func() (*Schema, []Row)

	// planCache holds prepared-statement templates shared by all sessions;
	// nil when Options.PlanCacheSize is negative.
	planCache *sql.PlanCache
	// sqlCounters aggregates executor statistics (join rows, sorts) across
	// all sessions for the metrics registry.
	sqlCounters sql.Counters
}

// Open creates or opens a database.
func Open(opts Options) (*DB, error) {
	if opts.SlotsPerWorker <= 0 {
		opts.SlotsPerWorker = 32
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolSlots := workers * opts.SlotsPerWorker
	totalSlots := poolSlots + opts.Sessions + 1 // +1 system slot
	spw := opts.SlotsPerWorker
	groupWait := opts.GroupCommitWait
	if groupWait == 0 && opts.WALSync {
		groupWait = 400 * time.Microsecond
	}
	if groupWait < 0 {
		groupWait = 0
	}
	var waits *waitevent.Slots
	if !opts.StatsLite {
		waits = waitevent.New(totalSlots)
	}
	eng, err := core.Open(core.Config{
		Dir:                   opts.Dir,
		PageSize:              opts.PageSize,
		PageCap:               opts.PageCap,
		BufferBytes:           opts.BufferBytes,
		Partitions:            workers,
		Slots:                 totalSlots,
		WALSync:               opts.WALSync,
		LockTimeout:           opts.LockTimeout,
		DisableRFA:            opts.DisableRFA,
		PessimisticIndex:      opts.PessimisticIndex,
		DisableReadFastPath:   opts.DisableReadFastPath,
		DisableVectorizedScan: opts.DisableVectorizedScan,
		DisableColdCompaction: opts.DisableColdCompaction,
		ColdCacheBytes:        opts.ColdCacheBytes,
		SlowTxnThreshold:      opts.SlowTxnThreshold,
		StatsLite:             opts.StatsLite,
		Waits:                 waits,
		// Pool slot IDs are contiguous per worker; session and system
		// slots fold onto workers round-robin.
		PartitionOf: func(slot int) int {
			if slot < poolSlots {
				return slot / spw
			}
			return slot - poolSlots
		},
		// Group commit: every pool slot shares one WAL file, so one
		// member's commit fsync covers every concurrently buffered
		// commit — across workers, not just within one worker's
		// co-routine set. That is what turns N simultaneous commits
		// into ~one fsync. Session and system slots keep private
		// files — they are interactive and must not convoy behind
		// pool commits.
		WALGroups: 1 + opts.Sessions + 1,
		WALGroupOf: func(slot int) int {
			if slot < poolSlots {
				return 0
			}
			return 1 + (slot - poolSlots)
		},
		GroupCommitWait: groupWait,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		engine:   eng,
		rec:      metrics.NewRecorder(),
		opts:     opts,
		sysSlot:  poolSlots,
		sessNext: poolSlots + 1,
		sessMax:  totalSlots,
		waits:    waits,
	}
	if !opts.StatsLite {
		db.stmtStats = metrics.NewStmtStats(0)
	}
	if opts.ArchiveDir != "" {
		// A fresh archive attached to a database that already checkpointed
		// cannot hold the history the checkpoint absorbed; the archiver
		// records that horizon so restores demand a base backup covering it.
		var startGSN uint64
		if img, rerr := os.ReadFile(filepath.Join(opts.Dir, "checkpoint.db")); rerr == nil {
			if g, gerr := core.ReadCheckpointGSNFromImage(img); gerr == nil {
				startGSN = g
			}
		}
		arch, aerr := backup.OpenArchiver(filepath.Join(opts.Dir, "wal"), opts.ArchiveDir, startGSN)
		if aerr != nil {
			eng.Close()
			return nil, fmt.Errorf("phoebedb: open archive: %w", aerr)
		}
		db.archiver = arch
		eng.SetWALArchiver(arch)
		db.archStop = make(chan struct{})
		db.archDone = make(chan struct{})
		interval := opts.ArchiveInterval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		go db.archiveLoop(interval)
	}
	cacheSize := opts.PlanCacheSize
	if cacheSize == 0 {
		cacheSize = 256
	}
	if cacheSize > 0 {
		db.planCache = sql.NewPlanCache(cacheSize)
	}
	db.pool = sched.New(sched.Config{
		Workers:        workers,
		SlotsPerWorker: opts.SlotsPerWorker,
		ThreadMode:     opts.ThreadMode,
		MaintainEvery:  opts.MaintainEvery,
		Recorder:       db.rec,
		Waits:          waits,
		Maintain:       db.maintain,
	})
	db.pool.Start()
	if waits != nil && opts.ASHSampleInterval >= 0 {
		interval := opts.ASHSampleInterval
		if interval == 0 {
			interval = 10 * time.Millisecond
		}
		db.ash = newASHSampler(db, interval, 0)
		db.ash.start()
	}
	db.reg = buildRegistry(db)
	return db, nil
}

// maintain is the worker duty hook (§7.1): partition page swaps, garbage
// collection, frozen-block warming on the system slot, and one
// rate-limited cold-compaction merge — at most one segment merge per
// maintenance round, so background reorganization cannot monopolize a
// worker that foreground transactions are waiting on.
func (db *DB) maintain(worker int) {
	db.engine.MaintainWorker(worker)
	if db.maintainMu.TryLock() {
		db.engine.ProcessWarmQueue(db.sysSlot)
		db.engine.CompactCold()
		db.maintainMu.Unlock()
	}
}

// archiveLoop drives the background archiver until Close.
func (db *DB) archiveLoop(interval time.Duration) {
	defer close(db.archDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-db.archStop:
			// Final round so Close leaves the smallest possible archive lag.
			db.archiver.Archive()
			return
		case <-t.C:
			if _, err := db.archiver.Archive(); err != nil {
				db.archErrs.Add(1)
			}
		}
	}
}

// Close stops the pool and closes the engine.
func (db *DB) Close() error {
	if db.ash != nil {
		db.ash.halt()
		db.ash = nil
	}
	if db.archStop != nil {
		close(db.archStop)
		<-db.archDone
		db.archStop = nil
	}
	db.pool.Stop()
	return db.engine.Close()
}

// Engine exposes the kernel for benchmarks and diagnostics.
func (db *DB) Engine() *core.Engine { return db.engine }

// Recorder exposes the per-component metrics recorder.
func (db *DB) Recorder() *metrics.Recorder { return db.rec }

// Waits exposes the per-slot wait-event state (nil under StatsLite).
func (db *DB) Waits() *waitevent.Slots { return db.waits }

// StmtStats exposes the per-statement aggregate store (nil under
// StatsLite).
func (db *DB) StmtStats() *metrics.StmtStats { return db.stmtStats }

// CreateTable declares a relation. DDL invalidates the plan cache: any
// cached access path may be stale against the new catalog.
func (db *DB) CreateTable(name string, schema *Schema) error {
	_, err := db.engine.CreateTable(name, schema)
	if err == nil && db.planCache != nil {
		db.planCache.Invalidate()
	}
	return err
}

// CreateIndex declares a secondary index and invalidates the plan cache
// (see CreateTable). On a table that already holds rows the index is
// built online: writers keep running while a snapshot scan plus
// version-chain catch-up fills the index, and it only becomes visible to
// the planner — and the plan cache is only invalidated — once the
// backfill completes (see internal/core CreateIndexOnline). A unique
// index over data that already contains duplicates fails with
// core.ErrDuplicate and leaves no trace.
func (db *DB) CreateIndex(table, index string, cols []string, unique bool) error {
	_, err := db.engine.CreateIndexOnline(table, index, cols, unique, db.Execute)
	if err == nil && db.planCache != nil {
		db.planCache.Invalidate()
	}
	return err
}

// Recover replays the WAL into the declared schema; call after DDL and
// before transactions when reopening an existing directory.
func (db *DB) Recover() (int, error) { return db.engine.Recover() }

// Execute runs fn as one transaction on a pool task slot: commit on nil,
// rollback on error. It blocks until the transaction finishes.
func (db *DB) Execute(fn func(tx *Tx) error) error {
	return db.ExecuteIso(db.opts.Isolation, fn)
}

// ExecuteIso is Execute at an explicit isolation level.
func (db *DB) ExecuteIso(iso Isolation, fn func(tx *Tx) error) error {
	var txErr error
	err := db.pool.SubmitWait(func(s *sched.Slot) {
		tx := db.engine.Begin(s.ID, iso, s.Metrics, s.YieldHigh, s.YieldLow)
		if txErr = fn(tx); txErr != nil {
			tx.Rollback()
			return
		}
		txErr = tx.Commit()
	})
	if err != nil {
		return err
	}
	return txErr
}

// ExecuteTagged is Execute with the transaction's cost attributed to the
// named logical statement (e.g. "tpcc.NewOrder") in the per-statement
// aggregates: wall time, wait-event breakdown, buffer misses, and WAL
// bytes all land under tag in phoebe_stat_statements.
func (db *DB) ExecuteTagged(tag string, fn func(tx *Tx) error) error {
	st := db.stmtStats.Intern(tag)
	if st == nil {
		return db.Execute(fn)
	}
	var txErr error
	err := db.pool.SubmitWait(func(s *sched.Slot) {
		done := db.stmtBegin(s.ID, st)
		tx := db.engine.Begin(s.ID, db.opts.Isolation, s.Metrics, s.YieldHigh, s.YieldLow)
		tx.NoteStatement(tag)
		if txErr = fn(tx); txErr != nil {
			tx.Rollback()
		} else {
			txErr = tx.Commit()
		}
		done(0, txErr)
	})
	if err != nil {
		return err
	}
	return txErr
}

// stmtBegin snapshots a slot's wait totals and WAL position before a
// statement and returns the closure that differences them into st after.
// The statement ID is published in the slot's waitevent word for the ASH
// sampler to resolve.
func (db *DB) stmtBegin(slot int, st *metrics.StmtStat) func(rows int64, err error) {
	if st == nil {
		return func(int64, error) {}
	}
	var before waitevent.Snapshot
	db.waits.SlotSnapshot(slot, &before)
	db.waits.SetStmt(slot, st.ID)
	walBefore := db.engine.WAL.Writer(slot).AppendedBytes()
	start := time.Now()
	return func(rows int64, err error) {
		elapsed := time.Since(start)
		var after waitevent.Snapshot
		db.waits.SlotSnapshot(slot, &after)
		db.waits.SetStmt(slot, 0)
		sample := metrics.StmtSample{
			Elapsed:  elapsed,
			Rows:     rows,
			Err:      err != nil,
			WALBytes: db.engine.WAL.Writer(slot).AppendedBytes() - walBefore,
		}
		for e := 0; e < waitevent.NumEvents; e++ {
			sample.Waits.Count[e] = after.Count[e] - before.Count[e]
			sample.Waits.Nanos[e] = after.Nanos[e] - before.Nanos[e]
		}
		// Every buffer miss is one EvBufferIO wait, so the event count is
		// the statement's miss count.
		sample.BufMisses = sample.Waits.Count[waitevent.EvBufferIO]
		st.Record(&sample)
	}
}

// Submit runs fn as one transaction without waiting for it; done (if not
// nil) receives the transaction's final error.
func (db *DB) Submit(fn func(tx *Tx) error, done chan<- error) error {
	return db.pool.Submit(func(s *sched.Slot) {
		tx := db.engine.Begin(s.ID, db.opts.Isolation, s.Metrics, s.YieldHigh, s.YieldLow)
		err := fn(tx)
		if err != nil {
			tx.Rollback()
		} else {
			err = tx.Commit()
		}
		if done != nil {
			done <- err
		}
	})
}

// Freeze runs one freezing round over all tables (§5.2): up to maxPages
// coldest prefix pages per table with decayed access counts <= maxHot move
// to the compressed frozen layer. Returns rows frozen.
func (db *DB) Freeze(maxPages int, maxHot uint32) (int, error) {
	return db.engine.FreezeTables(maxPages, maxHot)
}

// CompactCold runs cold-tier compaction to quiescence: segments merge
// level by level until no level exceeds its fanout. Benchmarks and tests
// use it to reach a steady cold layout; the maintenance loop compacts
// incrementally on its own.
func (db *DB) CompactCold() (int, error) {
	db.maintainMu.Lock()
	defer db.maintainMu.Unlock()
	return db.engine.CompactColdAll()
}

// ColdStats sums cold-tier counters (lookups, bloom negatives, cache
// hits/misses, compactions, write amplification inputs) across tables.
func (db *DB) ColdStats() ColdStats { return db.engine.ColdStats() }

// ProcessWarmQueue warms read-hot frozen blocks back into hot storage.
func (db *DB) ProcessWarmQueue() (int, error) {
	db.maintainMu.Lock()
	defer db.maintainMu.Unlock()
	return db.engine.ProcessWarmQueue(db.sysSlot)
}

// CollectGarbage runs one engine-wide GC round (§7.3).
func (db *DB) CollectGarbage() int { return db.engine.CollectGarbage() }

// Checkpoint captures the full database state and truncates the WAL, so a
// later Recover replays only the log written afterwards. The engine must
// be quiesced (no in-flight transactions) — call it from a maintenance
// window.
func (db *DB) Checkpoint() error { return db.engine.Checkpoint() }

// Archiver exposes the WAL archiver, or nil when Options.ArchiveDir is
// unset. Used by the server, tooling, and tests.
func (db *DB) Archiver() *backup.Archiver { return db.archiver }

// ArchiveErrors reports background archiving rounds that failed.
func (db *DB) ArchiveErrors() int64 { return db.archErrs.Load() }

// BaseBackupInfo summarizes a completed online base backup.
type BaseBackupInfo struct {
	// Dir is the backup's directory under <archive>/base.
	Dir string
	// CheckpointGSN is the horizon of the checkpoint image captured.
	CheckpointGSN uint64
	// HorizonGSN is the backup horizon: restoring the backup reproduces
	// at least every transaction acknowledged before it began.
	HorizonGSN uint64
}

// BaseBackup takes an online base backup into the archive while the
// database keeps serving transactions. Requires Options.ArchiveDir.
func (db *DB) BaseBackup() (BaseBackupInfo, error) {
	if db.archiver == nil {
		return BaseBackupInfo{}, fmt.Errorf("phoebedb: base backup requires Options.ArchiveDir")
	}
	label, dir, err := db.archiver.BaseBackup(backup.BaseSource{
		DataDir: db.opts.Dir,
		MaxGSN:  db.engine.WAL.MaxGSN,
		RaiseGSN: func(g uint64) {
			for i := 0; i < db.engine.WAL.NumWriters(); i++ {
				db.engine.WAL.Writer(i).RaiseGSN(g)
			}
		},
		FlushWAL: db.engine.WAL.FlushAll,
	})
	if err != nil {
		return BaseBackupInfo{}, err
	}
	return BaseBackupInfo{Dir: dir, CheckpointGSN: label.CheckpointGSN, HorizonGSN: label.HorizonGSN}, nil
}

// Session reserves a dedicated task slot for explicit Begin/Commit
// control. Sessions are not safe for concurrent use; one transaction runs
// at a time per session.
type Session struct {
	db      *DB
	slot    int
	metrics *metrics.SlotMetrics
}

// Session allocates a session slot. It fails once Options.Sessions slots
// are taken.
func (db *DB) Session() (*Session, error) {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	if db.sessNext >= db.sessMax {
		return nil, fmt.Errorf("phoebedb: all %d session slots in use", db.opts.Sessions)
	}
	s := &Session{db: db, slot: db.sessNext, metrics: db.rec.NewSlot()}
	db.sessNext++
	return s, nil
}

// Begin starts a transaction on the session's slot.
func (s *Session) Begin(iso Isolation) *Tx {
	return s.db.engine.Begin(s.slot, iso, s.metrics, nil, nil)
}

// Stats is a point-in-time summary of engine activity.
type Stats struct {
	// TasksExecuted counts pool transactions completed.
	TasksExecuted int64
	// BufferResidentBytes is the Main Storage footprint.
	BufferResidentBytes int64
	// DataReadBytes / DataWriteBytes / WALWriteBytes are cumulative I/O.
	DataReadBytes, DataWriteBytes, WALWriteBytes int64
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	io := db.engine.IO.Snapshot()
	return Stats{
		TasksExecuted:       db.pool.Executed(),
		BufferResidentBytes: db.engine.Pool.ResidentBytes(),
		DataReadBytes:       io.DataRead,
		DataWriteBytes:      io.DataWrite,
		WALWriteBytes:       io.WALWrite,
	}
}
