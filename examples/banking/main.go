// Command banking stresses PhoebeDB's concurrency control with the classic
// bank-transfer workload: many concurrent transactions move money between
// accounts while auditors repeatedly verify that the total balance is
// conserved — exercising MVCC snapshots, write-conflict waits on
// transaction-ID locks, repeatable-read aborts, and rollback.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	phoebedb "phoebedb"
)

const (
	numAccounts    = 64
	initialBalance = 1000.0
	numWorkers     = 8
	transfersEach  = 300
)

func main() {
	dir, err := os.MkdirTemp("", "phoebe-banking-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := phoebedb.Open(phoebedb.Options{
		Dir:            dir,
		Workers:        4,
		SlotsPerWorker: 8,
		LockTimeout:    5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("accounts", phoebedb.NewSchema(
		phoebedb.Column{Name: "acct", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "balance", Type: phoebedb.TFloat64},
	)))
	must(db.CreateIndex("accounts", "accounts_pk", []string{"acct"}, true))

	must(db.Execute(func(tx *phoebedb.Tx) error {
		for i := 0; i < numAccounts; i++ {
			if _, err := tx.Insert("accounts", phoebedb.Row{
				phoebedb.Int(int64(i)), phoebedb.Float(initialBalance),
			}); err != nil {
				return err
			}
		}
		return nil
	}))
	fmt.Printf("opened %d accounts with %.0f each\n", numAccounts, initialBalance)

	var transfers, conflicts, audits atomic.Int64
	stop := make(chan struct{})

	// Auditors: snapshot reads must always see a conserved total, even
	// while transfers are in flight (snapshot isolation at work).
	var auditWG sync.WaitGroup
	for a := 0; a < 2; a++ {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var total float64
				err := db.ExecuteIso(phoebedb.RepeatableRead, func(tx *phoebedb.Tx) error {
					total = 0
					return tx.ScanTable("accounts", func(rid phoebedb.RowID, row phoebedb.Row) bool {
						total += row[1].F
						return true
					})
				})
				if err != nil {
					continue
				}
				audits.Add(1)
				if total != numAccounts*initialBalance {
					log.Fatalf("AUDIT FAILURE: total %.2f != %.2f", total, numAccounts*initialBalance)
				}
			}
		}()
	}

	// Transfer workers.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < transfersEach; i++ {
				from := rng.Int63n(numAccounts)
				to := rng.Int63n(numAccounts)
				if from == to {
					continue
				}
				amount := float64(rng.Intn(50) + 1)
				for {
					err := db.Execute(func(tx *phoebedb.Tx) error {
						return transfer(tx, from, to, amount)
					})
					if err == nil {
						transfers.Add(1)
						break
					}
					if errors.Is(err, errInsufficient) {
						break // business rule, not a conflict
					}
					conflicts.Add(1) // lock timeout / serialization: retry
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	auditWG.Wait()
	elapsed := time.Since(start)

	// Final audit.
	var total float64
	must(db.Execute(func(tx *phoebedb.Tx) error {
		return tx.ScanTable("accounts", func(rid phoebedb.RowID, row phoebedb.Row) bool {
			total += row[1].F
			return true
		})
	}))
	fmt.Printf("completed %d transfers in %v (%.0f txn/s), %d retries, %d live audits\n",
		transfers.Load(), elapsed.Round(time.Millisecond),
		float64(transfers.Load())/elapsed.Seconds(), conflicts.Load(), audits.Load())
	fmt.Printf("final total: %.2f (expected %.2f) — money conserved: %v\n",
		total, numAccounts*initialBalance, total == numAccounts*initialBalance)
	if total != numAccounts*initialBalance {
		os.Exit(1)
	}
}

var errInsufficient = errors.New("insufficient funds")

// transfer moves amount between accounts with an overdraft check, using
// atomic read-modify-writes.
func transfer(tx *phoebedb.Tx, from, to int64, amount float64) error {
	fromRID, _, ok, err := tx.GetByIndex("accounts", "accounts_pk", phoebedb.Int(from))
	if err != nil || !ok {
		return fmt.Errorf("account %d: %w", from, err)
	}
	toRID, _, ok, err := tx.GetByIndex("accounts", "accounts_pk", phoebedb.Int(to))
	if err != nil || !ok {
		return fmt.Errorf("account %d: %w", to, err)
	}
	if _, err := tx.Modify("accounts", fromRID, func(cur phoebedb.Row) (map[string]phoebedb.Value, error) {
		if cur[1].F < amount {
			return nil, errInsufficient
		}
		return map[string]phoebedb.Value{"balance": phoebedb.Float(cur[1].F - amount)}, nil
	}); err != nil {
		return err
	}
	_, err = tx.Modify("accounts", toRID, func(cur phoebedb.Row) (map[string]phoebedb.Value, error) {
		return map[string]phoebedb.Value{"balance": phoebedb.Float(cur[1].F + amount)}, nil
	})
	return err
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
