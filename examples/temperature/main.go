// Command temperature walks a dataset through PhoebeDB's three storage
// layers (§5.2): rows are born hot in Main Storage, cool and get evicted to
// the Data Page File under buffer pressure, freeze into compressed blocks
// in the Data Block File, serve analytical scans from the frozen layer
// without warming anything, and come back to hot storage when written.
package main

import (
	"fmt"
	"log"
	"os"

	phoebedb "phoebedb"
)

const events = 3000

func main() {
	dir, err := os.MkdirTemp("", "phoebe-temperature-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A deliberately tiny buffer so eviction and freezing kick in.
	db, err := phoebedb.Open(phoebedb.Options{
		Dir:            dir,
		Workers:        1,
		SlotsPerWorker: 4,
		BufferBytes:    128 * 1024,
		PageSize:       8 * 1024,
		PageCap:        32,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("events", phoebedb.NewSchema(
		phoebedb.Column{Name: "id", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "kind", Type: phoebedb.TString},
		phoebedb.Column{Name: "amount", Type: phoebedb.TFloat64},
	)))
	must(db.CreateIndex("events", "events_pk", []string{"id"}, true))

	// Phase 1: ingest a time-ordered event stream (hot writes).
	for start := 0; start < events; start += 500 {
		end := start + 500
		if end > events {
			end = events
		}
		lo, hi := start, end
		must(db.Execute(func(tx *phoebedb.Tx) error {
			for i := lo; i < hi; i++ {
				kind := "purchase"
				if i%3 == 0 {
					kind = "refund"
				}
				if _, err := tx.Insert("events", phoebedb.Row{
					phoebedb.Int(int64(i)), phoebedb.Str(kind), phoebedb.Float(float64(i%97) + 0.5),
				}); err != nil {
					return err
				}
			}
			return nil
		}))
	}
	st := db.Stats()
	fmt.Printf("phase 1: ingested %d events; %d bytes resident in Main Storage\n", events, st.BufferResidentBytes)

	// Phase 2: GC the UNDO history so pages are unpinned, let the buffer
	// manager cool and evict under its tiny budget.
	db.CollectGarbage()
	for i := 0; i < 40; i++ {
		db.Engine().Pool.Maintain(0)
	}
	st = db.Stats()
	fmt.Printf("phase 2: after page swaps — resident %d bytes, data file writes %d bytes (cold layer in use)\n",
		st.BufferResidentBytes, st.DataWriteBytes)

	// Phase 3: freeze the cold prefix into compressed blocks.
	frozen, err := db.Freeze(1000, 1<<20)
	must(err)
	tbl, _ := db.Engine().Table("events")
	fmt.Printf("phase 3: froze %d rows into %d compressed blocks (%d bytes on disk, frontier row_id %d)\n",
		frozen, tbl.Frozen.NumBlocks(), tbl.Frozen.CompressedBytes(), tbl.Store.MaxFrozenRowID())

	// Phase 4: an analytical scan across frozen + hot, computing an
	// aggregate. Table scans do not warm frozen data (§5.2).
	var purchases, refunds int
	var revenue float64
	must(db.Execute(func(tx *phoebedb.Tx) error {
		return tx.ScanTable("events", func(rid phoebedb.RowID, row phoebedb.Row) bool {
			if row[1].S == "purchase" {
				purchases++
				revenue += row[2].F
			} else {
				refunds++
			}
			return true
		})
	}))
	fmt.Printf("phase 4: OLAP scan over all layers — %d purchases (%.2f revenue), %d refunds\n",
		purchases, revenue, refunds)

	// Phase 5: a write to a frozen row warms it back into hot storage with
	// a fresh row_id; the index follows.
	var oldRID, newRID phoebedb.RowID
	must(db.Execute(func(tx *phoebedb.Tx) error {
		rid, _, found, err := tx.GetByIndex("events", "events_pk", phoebedb.Int(0))
		if err != nil || !found {
			return fmt.Errorf("event 0 missing: %v", err)
		}
		oldRID = rid
		return tx.Update("events", rid, map[string]phoebedb.Value{"amount": phoebedb.Float(999.99)})
	}))
	must(db.Execute(func(tx *phoebedb.Tx) error {
		rid, row, found, err := tx.GetByIndex("events", "events_pk", phoebedb.Int(0))
		if err != nil || !found {
			return fmt.Errorf("warmed event missing: %v", err)
		}
		newRID = rid
		fmt.Printf("phase 5: updating frozen event 0 warmed it: row_id %d -> %d, amount now %.2f\n",
			oldRID, newRID, row[2].F)
		return nil
	}))

	// Phase 6: completeness check — every event still readable.
	count := 0
	must(db.Execute(func(tx *phoebedb.Tx) error {
		return tx.ScanTable("events", func(rid phoebedb.RowID, row phoebedb.Row) bool {
			count++
			return true
		})
	}))
	fmt.Printf("phase 6: final count %d / %d — no rows lost across hot/cold/frozen transitions\n", count, events)
	if count != events {
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
