// Command orders is an order-entry application in the style of the TPC-C
// workload that motivates the paper: warehouses take orders against a
// stock table under high concurrency, with an order-status query path.
// It prints a small throughput report (orders/minute — a mini tpmC).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	phoebedb "phoebedb"
)

const (
	products  = 200
	clerks    = 6
	runFor    = 2 * time.Second
	stockEach = 10000
)

func main() {
	dir, err := os.MkdirTemp("", "phoebe-orders-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := phoebedb.Open(phoebedb.Options{
		Dir:            dir,
		Workers:        4,
		SlotsPerWorker: 8,
		LockTimeout:    5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	declare(db)
	loadCatalog(db)

	var orders, lines, outOfStock atomic.Int64
	var nextOrderID atomic.Int64

	start := time.Now()
	deadline := start.Add(runFor)
	var wg sync.WaitGroup
	for c := 0; c < clerks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 99))
			for time.Now().Before(deadline) {
				oID := nextOrderID.Add(1)
				nLines := rng.Intn(5) + 1
				err := db.Execute(func(tx *phoebedb.Tx) error {
					if _, err := tx.Insert("orders", phoebedb.Row{
						phoebedb.Int(oID), phoebedb.Int(int64(c)), phoebedb.Int(time.Now().UnixNano()),
					}); err != nil {
						return err
					}
					for l := 0; l < nLines; l++ {
						pid := rng.Int63n(products)
						qty := int64(rng.Intn(5) + 1)
						prodRID, _, ok, err := tx.GetByIndex("products", "products_pk", phoebedb.Int(pid))
						if err != nil || !ok {
							return fmt.Errorf("product %d: %w", pid, err)
						}
						// Atomically decrement stock with an availability check.
						if _, err := tx.Modify("products", prodRID, func(cur phoebedb.Row) (map[string]phoebedb.Value, error) {
							if cur[2].I < qty {
								return nil, fmt.Errorf("out of stock: product %d", pid)
							}
							return map[string]phoebedb.Value{"stock": phoebedb.Int(cur[2].I - qty)}, nil
						}); err != nil {
							return err
						}
						if _, err := tx.Insert("order_lines", phoebedb.Row{
							phoebedb.Int(oID), phoebedb.Int(int64(l)), phoebedb.Int(pid), phoebedb.Int(qty),
						}); err != nil {
							return err
						}
						lines.Add(1)
					}
					return nil
				})
				if err != nil {
					outOfStock.Add(1)
					continue
				}
				orders.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Order-status query for a sample of orders.
	statusChecked := 0
	must(db.Execute(func(tx *phoebedb.Tx) error {
		for oID := int64(1); oID <= 5 && oID <= orders.Load(); oID++ {
			n := 0
			if err := tx.ScanIndex("order_lines", "order_lines_pk",
				[]phoebedb.Value{phoebedb.Int(oID)},
				func(rid phoebedb.RowID, row phoebedb.Row) bool {
					n++
					return true
				}); err != nil {
				return err
			}
			statusChecked++
		}
		return nil
	}))

	// Verify conservation: total stock removed equals line quantities.
	var remaining, sold int64
	must(db.Execute(func(tx *phoebedb.Tx) error {
		if err := tx.ScanTable("products", func(rid phoebedb.RowID, row phoebedb.Row) bool {
			remaining += row[2].I
			return true
		}); err != nil {
			return err
		}
		return tx.ScanTable("order_lines", func(rid phoebedb.RowID, row phoebedb.Row) bool {
			sold += row[3].I
			return true
		})
	}))

	opm := float64(orders.Load()) / elapsed.Minutes()
	fmt.Printf("took %d orders (%d lines) in %v — %.0f orders/minute\n",
		orders.Load(), lines.Load(), elapsed.Round(time.Millisecond), opm)
	fmt.Printf("rejected (out of stock / conflicts): %d; status queries: %d\n", outOfStock.Load(), statusChecked)
	fmt.Printf("stock audit: initial %d = remaining %d + sold %d : %v\n",
		int64(products)*stockEach, remaining, sold, remaining+sold == int64(products)*stockEach)
	if remaining+sold != int64(products)*stockEach {
		os.Exit(1)
	}
}

func declare(db *phoebedb.DB) {
	must(db.CreateTable("products", phoebedb.NewSchema(
		phoebedb.Column{Name: "pid", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "name", Type: phoebedb.TString},
		phoebedb.Column{Name: "stock", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "price", Type: phoebedb.TFloat64},
	)))
	must(db.CreateIndex("products", "products_pk", []string{"pid"}, true))
	must(db.CreateTable("orders", phoebedb.NewSchema(
		phoebedb.Column{Name: "oid", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "clerk", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "placed_at", Type: phoebedb.TInt64},
	)))
	must(db.CreateIndex("orders", "orders_pk", []string{"oid"}, true))
	must(db.CreateTable("order_lines", phoebedb.NewSchema(
		phoebedb.Column{Name: "oid", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "line", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "pid", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "qty", Type: phoebedb.TInt64},
	)))
	must(db.CreateIndex("order_lines", "order_lines_pk", []string{"oid", "line"}, true))
}

func loadCatalog(db *phoebedb.DB) {
	must(db.Execute(func(tx *phoebedb.Tx) error {
		for p := 0; p < products; p++ {
			if _, err := tx.Insert("products", phoebedb.Row{
				phoebedb.Int(int64(p)),
				phoebedb.Str(fmt.Sprintf("product-%03d", p)),
				phoebedb.Int(stockEach),
				phoebedb.Float(float64(p%50) + 0.99),
			}); err != nil {
				return err
			}
		}
		return nil
	}))
	fmt.Printf("catalog loaded: %d products, %d units each\n", products, stockEach)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
