// Command quickstart is the smallest complete PhoebeDB program: open a
// database, declare a table with two indexes, run transactions through the
// co-routine pool, read data back three ways (point lookup, index scan,
// table scan), and demonstrate rollback.
package main

import (
	"fmt"
	"log"
	"os"

	phoebedb "phoebedb"
)

func main() {
	dir, err := os.MkdirTemp("", "phoebe-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := phoebedb.Open(phoebedb.Options{Dir: dir, Workers: 2, SlotsPerWorker: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// DDL: a users table with a unique primary index and a secondary
	// index on the city column.
	must(db.CreateTable("users", phoebedb.NewSchema(
		phoebedb.Column{Name: "id", Type: phoebedb.TInt64},
		phoebedb.Column{Name: "name", Type: phoebedb.TString},
		phoebedb.Column{Name: "city", Type: phoebedb.TString},
		phoebedb.Column{Name: "score", Type: phoebedb.TFloat64},
	)))
	must(db.CreateIndex("users", "users_pk", []string{"id"}, true))
	must(db.CreateIndex("users", "users_city", []string{"city"}, false))

	// Insert a few rows in one transaction.
	users := []struct {
		id    int64
		name  string
		city  string
		score float64
	}{
		{1, "ada", "london", 99.5},
		{2, "grace", "arlington", 97.0},
		{3, "edsger", "rotterdam", 95.5},
		{4, "barbara", "london", 98.0},
	}
	must(db.Execute(func(tx *phoebedb.Tx) error {
		for _, u := range users {
			if _, err := tx.Insert("users", phoebedb.Row{
				phoebedb.Int(u.id), phoebedb.Str(u.name), phoebedb.Str(u.city), phoebedb.Float(u.score),
			}); err != nil {
				return err
			}
		}
		return nil
	}))
	fmt.Println("inserted", len(users), "users")

	// Point lookup through the unique index.
	must(db.Execute(func(tx *phoebedb.Tx) error {
		_, row, found, err := tx.GetByIndex("users", "users_pk", phoebedb.Int(2))
		if err != nil || !found {
			return fmt.Errorf("lookup failed: %v", err)
		}
		fmt.Printf("user 2: %s from %s (score %.1f)\n", row[1].S, row[2].S, row[3].F)
		return nil
	}))

	// Secondary-index scan: everyone in London.
	must(db.Execute(func(tx *phoebedb.Tx) error {
		fmt.Println("londoners:")
		return tx.ScanIndex("users", "users_city",
			[]phoebedb.Value{phoebedb.Str("london")},
			func(rid phoebedb.RowID, row phoebedb.Row) bool {
				fmt.Printf("  %s (row_id %d)\n", row[1].S, rid)
				return true
			})
	}))

	// An in-place update, then a rollback demonstration.
	must(db.Execute(func(tx *phoebedb.Tx) error {
		rid, _, _, err := tx.GetByIndex("users", "users_pk", phoebedb.Int(1))
		if err != nil {
			return err
		}
		return tx.Update("users", rid, map[string]phoebedb.Value{"score": phoebedb.Float(100)})
	}))
	errRolledBack := db.Execute(func(tx *phoebedb.Tx) error {
		rid, _, _, err := tx.GetByIndex("users", "users_pk", phoebedb.Int(1))
		if err != nil {
			return err
		}
		if err := tx.Update("users", rid, map[string]phoebedb.Value{"score": phoebedb.Float(0)}); err != nil {
			return err
		}
		return fmt.Errorf("changed my mind") // non-nil return rolls back
	})
	fmt.Println("second update rolled back:", errRolledBack != nil)

	// Full scan with MVCC visibility.
	must(db.Execute(func(tx *phoebedb.Tx) error {
		var total float64
		if err := tx.ScanTable("users", func(rid phoebedb.RowID, row phoebedb.Row) bool {
			total += row[3].F
			return true
		}); err != nil {
			return err
		}
		fmt.Printf("total score: %.1f (ada's 100 kept, rollback discarded)\n", total)
		return nil
	}))

	st := db.Stats()
	fmt.Printf("stats: %d transactions, %d WAL bytes written\n", st.TasksExecuted, st.WALWriteBytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
