// Command replication demonstrates primary-standby high availability (the
// paper's future-work item 2): a primary takes writes while a standby
// ships its WAL in near-real time, serves read-only queries, and is
// promoted to primary after a simulated failure.
//
// This example uses the internal kernel API directly (the standby applies
// below the MVCC layer), which is why it lives beside the library rather
// than on the public facade.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"phoebedb/internal/core"
	"phoebedb/internal/rel"
	"phoebedb/internal/replica"
	"phoebedb/internal/txn"
)

func main() {
	pdir, _ := os.MkdirTemp("", "phoebe-primary-*")
	sdir, _ := os.MkdirTemp("", "phoebe-standby-*")
	defer os.RemoveAll(pdir)
	defer os.RemoveAll(sdir)

	schema := rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "note", Type: rel.TString},
	)
	declare := func(e *core.Engine) {
		must2(e.CreateTable("events", schema))
		must2(e.CreateIndex("events", "events_pk", []string{"id"}, true))
	}

	primary, err := core.Open(core.Config{Dir: pdir, Slots: 4})
	must(err)
	declare(primary)

	standbyEngine, err := core.Open(core.Config{Dir: sdir, Slots: 4})
	must(err)
	declare(standbyEngine)
	standby := replica.NewStandby(standbyEngine, primary.WAL.Dir())

	// Continuous shipping in the background.
	stop := make(chan struct{})
	go standby.Run(stop, 10*time.Millisecond)

	// The primary takes writes.
	for i := 1; i <= 100; i++ {
		tx := primary.Begin(0, txn.ReadCommitted, nil, nil, nil)
		_, err := tx.Insert("events", rel.Row{rel.Int(int64(i)), rel.Str(fmt.Sprintf("event-%d", i))})
		must(err)
		must(tx.Commit())
	}
	fmt.Println("primary committed 100 events")

	// Wait for the standby to catch up, then read from it.
	for i := 0; i < 200 && standby.Applied() < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	count := countRows(standbyEngine)
	fmt.Printf("standby caught up: %d events visible on read-only replica\n", count)

	// Simulate primary failure: stop shipping and promote.
	close(stop)
	primary.Close()
	must(standby.Promote())
	fmt.Println("primary lost — standby promoted")

	// The new primary accepts writes.
	tx := standbyEngine.Begin(0, txn.ReadCommitted, nil, nil, nil)
	_, err = tx.Insert("events", rel.Row{rel.Int(101), rel.Str("written-after-failover")})
	must(err)
	must(tx.Commit())
	fmt.Printf("new primary serving writes: %d events total\n", countRows(standbyEngine))
	standbyEngine.Close()
}

func countRows(e *core.Engine) int {
	tx := e.Begin(3, txn.ReadCommitted, nil, nil, nil)
	defer tx.Rollback()
	n := 0
	tx.ScanTable("events", func(rel.RowID, rel.Row) bool { n++; return true })
	return n
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](v T, err error) {
	if err != nil {
		log.Fatal(err)
	}
	_ = v
}
