package phoebedb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.SlotsPerWorker == 0 {
		opts.SlotsPerWorker = 4
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func declareUsers(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("users", NewSchema(
		Column{Name: "id", Type: TInt64},
		Column{Name: "name", Type: TString},
		Column{Name: "score", Type: TFloat64},
	)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("users", "users_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteCommitAndReadBack(t *testing.T) {
	db := openTestDB(t, Options{})
	declareUsers(t, db)
	if err := db.Execute(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{Int(1), Str("ada"), Float(10)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var name string
	if err := db.Execute(func(tx *Tx) error {
		_, row, found, err := tx.GetByIndex("users", "users_pk", Int(1))
		if err != nil {
			return err
		}
		if !found {
			return errors.New("not found")
		}
		name = row[1].S
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if name != "ada" {
		t.Fatalf("name = %q", name)
	}
}

func TestExecuteErrorRollsBack(t *testing.T) {
	db := openTestDB(t, Options{})
	declareUsers(t, db)
	boom := errors.New("boom")
	err := db.Execute(func(tx *Tx) error {
		if _, err := tx.Insert("users", Row{Int(1), Str("ghost"), Float(0)}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	db.Execute(func(tx *Tx) error {
		if _, _, found, _ := tx.GetByIndex("users", "users_pk", Int(1)); found {
			t.Error("rolled-back insert visible")
		}
		return nil
	})
}

func TestSessionExplicitControl(t *testing.T) {
	db := openTestDB(t, Options{Sessions: 2})
	declareUsers(t, db)
	s, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(RepeatableRead)
	rid, err := tx.Insert("users", Row{Int(5), Str("eve"), Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin(ReadCommitted)
	row, ok, err := tx2.Get("users", rid)
	if err != nil || !ok || row[1].S != "eve" {
		t.Fatalf("session read = (%v,%v,%v)", row, ok, err)
	}
	tx2.Rollback()
	// Session slots are bounded.
	if _, err := db.Session(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Session(); err == nil {
		t.Fatal("session limit not enforced")
	}
}

func TestConcurrentExecutes(t *testing.T) {
	db := openTestDB(t, Options{Workers: 2, SlotsPerWorker: 8})
	declareUsers(t, db)
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.Execute(func(tx *Tx) error {
				_, err := tx.Insert("users", Row{Int(int64(i)), Str(fmt.Sprintf("u%d", i)), Float(0)})
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	count := 0
	db.Execute(func(tx *Tx) error {
		return tx.ScanTable("users", func(rid RowID, row Row) bool {
			count++
			return true
		})
	})
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	if db.Stats().TasksExecuted < n {
		t.Fatalf("TasksExecuted = %d", db.Stats().TasksExecuted)
	}
}

func TestSubmitAsync(t *testing.T) {
	db := openTestDB(t, Options{})
	declareUsers(t, db)
	done := make(chan error, 1)
	if err := db.Submit(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{Int(9), Str("async"), Float(0)})
		return err
	}, done); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Workers: 1, SlotsPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("users", NewSchema(
		Column{Name: "id", Type: TInt64},
		Column{Name: "name", Type: TString},
		Column{Name: "score", Type: TFloat64},
	))
	db.CreateIndex("users", "users_pk", []string{"id"}, true)
	db.Execute(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{Int(1), Str("persist"), Float(42)})
		return err
	})
	db.Close()

	db2, err := Open(Options{Dir: dir, Workers: 1, SlotsPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.CreateTable("users", NewSchema(
		Column{Name: "id", Type: TInt64},
		Column{Name: "name", Type: TString},
		Column{Name: "score", Type: TFloat64},
	))
	db2.CreateIndex("users", "users_pk", []string{"id"}, true)
	n, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	db2.Execute(func(tx *Tx) error {
		_, row, found, err := tx.GetByIndex("users", "users_pk", Int(1))
		if err != nil || !found || row[2].F != 42 {
			t.Errorf("recovered row = (%v,%v,%v)", row, found, err)
		}
		return nil
	})
}

func TestStatsAndGC(t *testing.T) {
	db := openTestDB(t, Options{})
	declareUsers(t, db)
	db.Execute(func(tx *Tx) error {
		_, err := tx.Insert("users", Row{Int(1), Str("x"), Float(0)})
		return err
	})
	st := db.Stats()
	if st.WALWriteBytes == 0 {
		t.Fatal("no WAL bytes recorded")
	}
	if st.BufferResidentBytes == 0 {
		t.Fatal("no resident bytes recorded")
	}
	db.CollectGarbage() // must not panic
}

func TestFreezeViaFacade(t *testing.T) {
	db := openTestDB(t, Options{PageCap: 4, Workers: 1})
	declareUsers(t, db)
	db.Execute(func(tx *Tx) error {
		for i := 0; i < 20; i++ {
			if _, err := tx.Insert("users", Row{Int(int64(i)), Str("cold"), Float(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	db.CollectGarbage()
	n, err := db.Freeze(3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing frozen")
	}
	// Frozen data remains transactionally readable.
	db.Execute(func(tx *Tx) error {
		_, row, found, err := tx.GetByIndex("users", "users_pk", Int(0))
		if err != nil || !found || row[1].S != "cold" {
			t.Errorf("frozen read = (%v,%v,%v)", row, found, err)
		}
		return nil
	})
	if _, err := db.ProcessWarmQueue(); err != nil {
		t.Fatal(err)
	}
}
