package phoebedb

import (
	"strings"
	"testing"
	"time"
)

// statRow finds the phoebe_stat_statements row whose statement column
// contains sub, returning the projected values.
func statRow(t *testing.T, db *DB, cols, sub string) []int64 {
	t.Helper()
	res := execOrFatal(t, db, "SELECT statement, "+cols+" FROM phoebe_stat_statements")
	for _, r := range res.Rows {
		if strings.Contains(r[0].S, sub) {
			out := make([]int64, len(r)-1)
			for i, v := range r[1:] {
				out[i] = v.I
			}
			return out
		}
	}
	t.Fatalf("no phoebe_stat_statements row matching %q in %d rows", sub, len(res.Rows))
	return nil
}

func TestStatStatementsAggregates(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE acct (id INT, bal INT)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX acct_pk ON acct (id)")
	execOrFatal(t, db, "INSERT INTO acct VALUES (1, 10), (2, 20), (3, 30)")

	// Two executions with different literals share one fingerprint.
	execOrFatal(t, db, "SELECT bal FROM acct WHERE id = 1")
	execOrFatal(t, db, "SELECT bal FROM acct WHERE id = 2")

	v := statRow(t, db, "calls, rows, total_us, mean_us, p95_us", "select bal from acct")
	if v[0] != 2 {
		t.Fatalf("calls = %d, want 2", v[0])
	}
	if v[1] != 2 {
		t.Fatalf("rows = %d, want 2 (one row per call)", v[1])
	}
	if v[2] <= 0 || v[3] <= 0 || v[4] < 0 {
		t.Fatalf("total/mean/p95 = %v", v[1:])
	}

	// The insert's row count is its affected count.
	if v := statRow(t, db, "calls, rows", "insert into acct"); v[0] != 1 || v[1] != 3 {
		t.Fatalf("insert stats = %v", v)
	}

	// Errors are counted without charging rows.
	if _, err := db.ExecSQL("SELECT bal FROM missing WHERE id = 1"); err == nil {
		t.Fatal("select on missing table succeeded")
	}
	if v := statRow(t, db, "calls, errors", "select bal from missing"); v[0] != 1 || v[1] != 1 {
		t.Fatalf("error stats = %v", v)
	}

	// The full wait breakdown projects per-event columns.
	res := execOrFatal(t, db,
		"SELECT statement, buf_misses, wal_bytes, tuple_lock_us, buffer_io_us, wal_flush_us FROM phoebe_stat_statements")
	if len(res.Rows) == 0 {
		t.Fatal("no statement rows")
	}
}

func TestExecuteTaggedAttribution(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE kv (k INT, v INT)")

	for i := 0; i < 3; i++ {
		if err := db.ExecuteTagged("app.Seed", func(tx *Tx) error {
			_, err := db.ExecSQLTx(tx, "INSERT INTO kv VALUES (1, 2)")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if v := statRow(t, db, "calls, errors, total_us", "app.Seed"); v[0] != 3 || v[1] != 0 || v[2] <= 0 {
		t.Fatalf("tagged stats = %v", v)
	}
}

// TestStatsLiteDisablesObservability: with StatsLite on, wait tracking,
// statement aggregates, and the ASH sampler are all absent, and the stat
// tables stay readable (empty).
func TestStatsLiteDisablesObservability(t *testing.T) {
	db := openTestDB(t, Options{StatsLite: true})
	if db.Waits() != nil || db.StmtStats() != nil || db.ash != nil {
		t.Fatal("observability state allocated under StatsLite")
	}
	execOrFatal(t, db, "CREATE TABLE kv (k INT, v INT)")
	execOrFatal(t, db, "INSERT INTO kv VALUES (1, 2)")
	if res := execOrFatal(t, db, "SELECT * FROM phoebe_stat_statements"); len(res.Rows) != 0 {
		t.Fatalf("stat_statements rows = %d under StatsLite", len(res.Rows))
	}
	if res := execOrFatal(t, db, "SELECT * FROM phoebe_stat_activity_history"); len(res.Rows) != 0 {
		t.Fatalf("ASH rows = %d under StatsLite", len(res.Rows))
	}
}

// TestASHCapturesTupleLockWait holds a row lock in one transaction while
// a second, tagged transaction blocks updating the same row; the 1ms ASH
// sampler must observe the blocked session in tuple_lock, and the tagged
// statement's aggregate must show tuple-lock wait time.
func TestASHCapturesTupleLockWait(t *testing.T) {
	db := openTestDB(t, Options{ASHSampleInterval: time.Millisecond})
	execOrFatal(t, db, "CREATE TABLE acct (id INT, bal INT)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX acct_pk ON acct (id)")
	execOrFatal(t, db, "INSERT INTO acct VALUES (1, 10)")

	locked := make(chan struct{})
	release := make(chan struct{})
	holderErr := make(chan error, 1)
	go func() {
		holderErr <- db.Execute(func(tx *Tx) error {
			if _, err := db.ExecSQLTx(tx, "UPDATE acct SET bal = 11 WHERE id = 1"); err != nil {
				return err
			}
			close(locked)
			<-release
			return nil
		})
	}()
	<-locked

	blockedErr := make(chan error, 1)
	go func() {
		blockedErr <- db.ExecuteTagged("test.Blocked", func(tx *Tx) error {
			_, err := db.ExecSQLTx(tx, "UPDATE acct SET bal = 12 WHERE id = 1")
			return err
		})
	}()

	// Let the sampler observe the blocked session (1ms cadence, ~80
	// sampling opportunities), then release the lock.
	time.Sleep(80 * time.Millisecond)
	close(release)
	if err := <-holderErr; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if err := <-blockedErr; err != nil {
		t.Fatalf("blocked txn: %v", err)
	}

	res := execOrFatal(t, db,
		"SELECT slot, statement FROM phoebe_stat_activity_history WHERE wait_event = 'tuple_lock'")
	if len(res.Rows) == 0 {
		t.Fatal("no tuple_lock samples in ASH")
	}
	if res.Rows[0][1].S == "" {
		t.Error("tuple_lock sample has no statement attribution")
	}
	if v := statRow(t, db, "calls, tuple_lock_us", "test.Blocked"); v[0] != 1 || v[1] <= 0 {
		t.Fatalf("blocked statement stats = %v (want calls=1, tuple_lock_us>0)", v)
	}
}

// TestExplainAnalyzeSQL runs EXPLAIN ANALYZE on a two-table join through
// the full stack and checks per-operator actuals plus the wall-time line.
func TestExplainAnalyzeSQL(t *testing.T) {
	db := openTestDB(t, Options{})
	execOrFatal(t, db, "CREATE TABLE c (cid INT, region STRING)")
	execOrFatal(t, db, "CREATE UNIQUE INDEX c_pk ON c (cid)")
	execOrFatal(t, db, "CREATE TABLE o (oid INT, cid INT)")
	execOrFatal(t, db, "INSERT INTO c VALUES (1, 'eu'), (2, 'us')")
	execOrFatal(t, db, "INSERT INTO o VALUES (10, 1), (11, 2), (12, 1)")

	res := execOrFatal(t, db, "EXPLAIN ANALYZE SELECT o.oid, c.region FROM o JOIN c ON o.cid = c.cid")
	var text []string
	for _, r := range res.Rows {
		text = append(text, r[0].S)
	}
	plan := strings.Join(text, "\n")
	for _, want := range []string{
		"IndexNestedLoop Join (o.cid = c.cid)",
		"Seq Scan on o (actual rows=3 loops=1",
		"Index Scan using c_pk on c (actual rows=3 loops=3",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if !strings.HasPrefix(text[len(text)-1], "Execution Time: ") {
		t.Fatalf("last line %q", text[len(text)-1])
	}

	// EXPLAIN without ANALYZE carries no actuals and runs nothing.
	res = execOrFatal(t, db, "EXPLAIN DELETE FROM o WHERE oid = 10")
	for _, r := range res.Rows {
		if strings.Contains(r[0].S, "actual rows=") {
			t.Fatalf("plain EXPLAIN has actuals: %q", r[0].S)
		}
	}
	if n := len(execOrFatal(t, db, "SELECT oid FROM o").Rows); n != 3 {
		t.Fatalf("plain EXPLAIN executed its statement: %d rows left", n)
	}
}
