package core

import (
	"sort"
	"testing"

	"phoebedb/internal/rel"
)

// vecIDs runs one ScanTableFiltered in tx and returns matching ids sorted
// (frozen rows surface before hot pages, so scan order is not id order).
func vecIDs(t *testing.T, tx *Tx, preds []rel.ColPred) []int64 {
	t.Helper()
	var ids []int64
	err := tx.ScanTableFiltered("accounts", preds, func(rid rel.RowID, row rel.Row) bool {
		ids = append(ids, row[0].I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// rowIDs is the row-at-a-time oracle: ScanTable plus per-row predicate
// evaluation, sorted the same way.
func rowIDs(t *testing.T, tx *Tx, preds []rel.ColPred) []int64 {
	t.Helper()
	var ids []int64
	err := tx.ScanTable("accounts", func(rid rel.RowID, row rel.Row) bool {
		if evalPreds(preds, row) {
			ids = append(ids, row[0].I)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// The batch path must agree with the row path across version chains,
// tombstones, multiple pages, and a frozen prefix.
func TestScanTableFilteredEquivalence(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8})
	setupAccounts(t, e)
	tx := begin(e, 0)
	rids := make([]rel.RowID, 0, 40)
	for i := 1; i <= 40; i++ {
		rid, err := tx.Insert("accounts", acct(i, "o", float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Build some history: update a few balances, delete a few rows.
	tx = begin(e, 0)
	for _, i := range []int{4, 9, 14} {
		if err := tx.Update("accounts", rids[i], map[string]rel.Value{"balance": rel.Float(1000)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{19, 24} {
		if err := tx.Delete("accounts", rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Freeze the coldest prefix so the scan crosses the frozen layer too
	// (GC first: pages with live twins are not freezable).
	e.CollectGarbage()
	if n, err := e.FreezeTables(2, 1<<20); err != nil || n == 0 {
		t.Fatalf("freeze = (%d, %v)", n, err)
	}
	for _, preds := range [][]rel.ColPred{
		nil,
		{{Col: 0, Op: rel.CmpGe, Val: rel.Int(10)}, {Col: 0, Op: rel.CmpLt, Val: rel.Int(30)}},
		{{Col: 2, Op: rel.CmpGt, Val: rel.Float(100)}},
		{{Col: 0, Op: rel.CmpNe, Val: rel.Int(7)}},
		{{Col: 0, Op: rel.CmpGt, Val: rel.Int(1000)}}, // matches nothing
	} {
		r := begin(e, 1)
		got, want := vecIDs(t, r, preds), rowIDs(t, r, preds)
		r.Rollback()
		if !eqIDs(got, want...) {
			t.Fatalf("preds %v: vectorized %v, row path %v", preds, got, want)
		}
	}
}

// Slots with in-flight writers fall to the residue chain walk: a reader
// must see the pre-image, the writer its own version — and both through
// the filter.
func TestScanTableFilteredConcurrentWriter(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8})
	setupAccounts(t, e)
	tx := begin(e, 0)
	rids := make([]rel.RowID, 0, 10)
	for i := 1; i <= 10; i++ {
		rid, err := tx.Insert("accounts", acct(i, "o", float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	writer := begin(e, 0)
	// Move row 3's balance across the predicate boundary and delete row 7.
	if err := writer.Update("accounts", rids[2], map[string]rel.Value{"balance": rel.Float(100)}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Delete("accounts", rids[6]); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Insert("accounts", acct(11, "o", 100)); err != nil {
		t.Fatal(err)
	}
	preds := []rel.ColPred{{Col: 2, Op: rel.CmpGe, Val: rel.Float(50)}}

	// The writer sees its own updated/inserted rows and not the deleted one.
	if got := vecIDs(t, writer, preds); !eqIDs(got, 3, 11) {
		t.Fatalf("writer sees %v, want [3 11]", got)
	}
	// A concurrent reader sees only the committed pre-images.
	reader := begin(e, 1)
	if got := vecIDs(t, reader, preds); len(got) != 0 {
		t.Fatalf("reader sees %v, want none", got)
	}
	if got := vecIDs(t, reader, nil); !eqIDs(got, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10) {
		t.Fatalf("reader sees %v, want 1..10", got)
	}
	reader.Rollback()
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	after := begin(e, 1)
	if got := vecIDs(t, after, preds); !eqIDs(got, 3, 11) {
		t.Fatalf("post-commit %v, want [3 11]", got)
	}
	if got := vecIDs(t, after, nil); !eqIDs(got, 1, 2, 3, 4, 5, 6, 8, 9, 10, 11) {
		t.Fatalf("post-commit full %v", got)
	}
	after.Rollback()
}

// Early termination from fn must stop the scan without error.
func TestScanTableFilteredEarlyStop(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8})
	setupAccounts(t, e)
	tx := begin(e, 0)
	for i := 1; i <= 30; i++ {
		if _, err := tx.Insert("accounts", acct(i, "o", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r := begin(e, 0)
	defer r.Rollback()
	n := 0
	if err := r.ScanTableFiltered("accounts", nil, func(rid rel.RowID, row rel.Row) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("visited %d rows, want 5", n)
	}
}

// AggTableFiltered must match aggregates computed row at a time, across
// chains, tombstones, and the frozen layer.
func TestAggTableFilteredEquivalence(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8})
	setupAccounts(t, e)
	tx := begin(e, 0)
	rids := make([]rel.RowID, 0, 30)
	for i := 1; i <= 30; i++ {
		rid, err := tx.Insert("accounts", acct(i, string(rune('a'+i%5)), float64(i)*2))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = begin(e, 0)
	if err := tx.Update("accounts", rids[9], map[string]rel.Value{"balance": rel.Float(500)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("accounts", rids[19]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.CollectGarbage()
	if _, err := e.FreezeTables(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	preds := []rel.ColPred{{Col: 0, Op: rel.CmpGe, Val: rel.Int(5)}}
	specs := []rel.AggSpec{
		{Op: rel.AggOpCount},
		{Op: rel.AggOpSum, Col: 2},
		{Op: rel.AggOpMin, Col: 2},
		{Op: rel.AggOpMax, Col: 2},
		{Op: rel.AggOpMin, Col: 1},
	}
	r := begin(e, 1)
	defer r.Rollback()
	vals, n, err := r.AggTableFiltered("accounts", preds, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Row-at-a-time oracle.
	var cnt int64
	var sum, minB, maxB float64
	minS := ""
	if err := r.ScanTable("accounts", func(rid rel.RowID, row rel.Row) bool {
		if !evalPreds(preds, row) {
			return true
		}
		b := row[2].F
		if cnt == 0 || b < minB {
			minB = b
		}
		if cnt == 0 || b > maxB {
			maxB = b
		}
		if cnt == 0 || row[1].S < minS {
			minS = row[1].S
		}
		sum += b
		cnt++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != cnt || vals[0].I != cnt {
		t.Fatalf("count = (%d, %v), want %d", n, vals[0], cnt)
	}
	if vals[1].F != sum {
		t.Fatalf("sum = %v, want %v", vals[1], sum)
	}
	if vals[2].F != minB || vals[3].F != maxB {
		t.Fatalf("min/max = %v/%v, want %v/%v", vals[2], vals[3], minB, maxB)
	}
	if vals[4].S != minS {
		t.Fatalf("min owner = %v, want %q", vals[4], minS)
	}
}

// An all-filtered scan reports n = 0 so the SQL layer can substitute its
// empty-input aggregate defaults.
func TestAggTableFilteredEmpty(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	for i := 1; i <= 5; i++ {
		if _, err := tx.Insert("accounts", acct(i, "o", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r := begin(e, 0)
	defer r.Rollback()
	_, n, err := r.AggTableFiltered("accounts",
		[]rel.ColPred{{Col: 0, Op: rel.CmpGt, Val: rel.Int(100)}},
		[]rel.AggSpec{{Op: rel.AggOpCount}, {Op: rel.AggOpSum, Col: 2}})
	if err != nil || n != 0 {
		t.Fatalf("empty agg = (%d, %v), want (0, nil)", n, err)
	}
}

// Both ablation flags must turn the vectorized capability off — the batch
// path builds on the watermark read fast path.
func TestVectorizedScanAblation(t *testing.T) {
	for _, cfg := range []Config{
		{DisableVectorizedScan: true},
		{DisableReadFastPath: true},
	} {
		e := openTestEngine(t, cfg)
		tx := begin(e, 0)
		if tx.VectorizedScanEnabled() {
			t.Fatalf("VectorizedScanEnabled under %+v", cfg)
		}
		tx.Rollback()
	}
	e := openTestEngine(t, Config{})
	tx := begin(e, 0)
	if !tx.VectorizedScanEnabled() {
		t.Fatal("vectorized scan disabled by default")
	}
	tx.Rollback()
}

// A table spanning all three temperatures at once — compacted cold
// levels, a fresh L0 segment, and hot pages — must filter identically on
// the batch and row paths, including after delete-marks and warm-ups move
// rows between tiers, and even when a warm-up lands mid-scan.
func TestScanFilteredThreeTemperatures(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8})
	setupAccounts(t, e)
	tb, err := e.Table("accounts")
	if err != nil {
		t.Fatal(err)
	}
	tb.Frozen.Fanout = 2
	tb.Frozen.BlockRows = 8

	tx := begin(e, 0)
	rids := make([]rel.RowID, 0, 80)
	for i := 1; i <= 80; i++ {
		rid, err := tx.Insert("accounts", acct(i, "o", float64(i)*10))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// History on rows headed for every tier: two updates and two deletes,
	// one pair in the soon-frozen prefix, one in the hot tail.
	tx = begin(e, 0)
	for _, i := range []int{3, 40} {
		if err := tx.Update("accounts", rids[i], map[string]rel.Value{"balance": rel.Float(1000)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{12, 70} {
		if err := tx.Delete("accounts", rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.CollectGarbage()
	e.CollectGarbage()
	// Three separate freeze batches become three L0 segments; compaction
	// (fanout 2) merges into level 1; one more freeze leaves a fresh L0
	// beside it. The last two pages stay hot.
	for i := 0; i < 3; i++ {
		if n, err := e.FreezeTables(2, 1<<20); err != nil || n == 0 {
			t.Fatalf("freeze %d = (%d, %v)", i, n, err)
		}
	}
	if _, err := e.CompactColdAll(); err != nil {
		t.Fatal(err)
	}
	if n, err := e.FreezeTables(2, 1<<20); err != nil || n == 0 {
		t.Fatalf("post-compact freeze = (%d, %v)", n, err)
	}
	st := e.ColdStats()
	maxFrozen := tb.Store.MaxFrozenRowID()
	if st.MaxLevel < 1 || st.Segments < 2 || maxFrozen == 0 || maxFrozen >= rids[79] {
		t.Fatalf("tier shape: %+v, frontier %d", st, maxFrozen)
	}

	predSets := [][]rel.ColPred{
		nil,
		{{Col: 0, Op: rel.CmpGe, Val: rel.Int(10)}, {Col: 0, Op: rel.CmpLt, Val: rel.Int(60)}},
		{{Col: 2, Op: rel.CmpGt, Val: rel.Float(500)}},
		{{Col: 0, Op: rel.CmpGt, Val: rel.Int(5000)}}, // matches nothing
	}
	check := func(stage string) {
		t.Helper()
		for _, preds := range predSets {
			r := begin(e, 1)
			got, want := vecIDs(t, r, preds), rowIDs(t, r, preds)
			r.Rollback()
			if !eqIDs(got, want...) {
				t.Fatalf("%s: preds %v: vectorized %v, row path %v", stage, preds, got, want)
			}
		}
	}
	check("three tiers")

	// Delete-mark a compacted row and update an L0 row: both warm into hot
	// storage with fresh row_ids inside the transaction, leaving frozen
	// tombstones behind.
	tx = begin(e, 0)
	if err := tx.Delete("accounts", rids[5]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", rids[50], map[string]rel.Value{"balance": rel.Float(2000)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check("after frozen delete+update")
	r := begin(e, 1)
	seen := make(map[int64]float64)
	if err := r.ScanTable("accounts", func(_ rel.RowID, row rel.Row) bool {
		seen[row[0].I] = row[2].F
		return true
	}); err != nil {
		t.Fatal(err)
	}
	r.Rollback()
	if _, ok := seen[6]; ok {
		t.Fatal("frozen-deleted id 6 still visible")
	}
	if seen[51] != 2000 {
		t.Fatalf("warmed id 51 balance = %v, want 2000", seen[51])
	}

	// Mid-scan warm-up: the frozen sections stream before hot pages, so a
	// warm triggered at the first hot row moves already-emitted frozen rows
	// into hot storage beneath the running scan. The warmed copies commit
	// after the statement snapshot, so the scan still sees every row
	// exactly once.
	tb.Frozen.WarmThreshold = 1
	r = begin(e, 1)
	want := rowIDs(t, r, nil)
	var got []int64
	warmed := false
	err = r.ScanTableFiltered("accounts", nil, func(rid rel.RowID, row rel.Row) bool {
		if !warmed && rid > maxFrozen {
			warmed = true
			w := begin(e, 0)
			if _, ok, err := w.Get("accounts", rids[20]); err != nil || !ok {
				t.Fatalf("mid-scan frozen get = (%v, %v)", ok, err)
			}
			w.Rollback() // the read queued the warm; nothing to commit
			if n, err := e.ProcessWarmQueue(0); err != nil || n == 0 {
				t.Fatalf("mid-scan warm = (%d, %v)", n, err)
			}
		}
		got = append(got, row[0].I)
		return true
	})
	r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if !warmed {
		t.Fatal("scan never reached a hot row")
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !eqIDs(got, want...) {
		t.Fatalf("mid-scan warm: scan saw %v, want %v", got, want)
	}
	check("after mid-scan warm")
}
