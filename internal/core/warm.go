package core

import (
	"sync"

	"phoebedb/internal/rel"
	"phoebedb/internal/txn"
	"phoebedb/internal/wal"
)

// warmRequest marks a frozen block (identified by any row_id it covers)
// for warming.
type warmRequest struct {
	t   *Tbl
	rid rel.RowID
}

// warmQueue is the engine's pending-warm set; reads enqueue, a maintenance
// slot drains (warming needs its own transaction and a read path cannot
// start one — a task slot runs one transaction at a time, §7.1).
type warmQueue struct {
	mu      sync.Mutex
	pending []warmRequest
	seen    map[*Tbl]map[rel.RowID]bool
}

func (q *warmQueue) push(t *Tbl, rid rel.RowID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.seen == nil {
		q.seen = make(map[*Tbl]map[rel.RowID]bool)
	}
	if q.seen[t] == nil {
		q.seen[t] = make(map[rel.RowID]bool)
	}
	if q.seen[t][rid] {
		return
	}
	q.seen[t][rid] = true
	q.pending = append(q.pending, warmRequest{t: t, rid: rid})
}

func (q *warmQueue) pop() (warmRequest, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return warmRequest{}, false
	}
	r := q.pending[0]
	q.pending = q.pending[1:]
	delete(q.seen[r.t], r.rid)
	return r, true
}

// requestWarm queues the frozen block covering rid for warming.
func (e *Engine) requestWarm(t *Tbl, rid rel.RowID) {
	e.warms.push(t, rid)
}

// ProcessWarmQueue warms pending frozen blocks (§5.2 case 3) on the given
// idle task slot: each block's surviving rows are tombstoned in the frozen
// layer and re-inserted into hot storage under a system transaction, with
// index entries repointed. Returns the number of rows warmed.
func (e *Engine) ProcessWarmQueue(slot int) (int, error) {
	total := 0
	for {
		req, ok := e.warms.pop()
		if !ok {
			return total, nil
		}
		ids, rows, err := req.t.Frozen.ExtractLive(req.rid)
		if err != nil {
			return total, err
		}
		if len(ids) == 0 {
			continue
		}
		tx := e.Begin(slot, txn.ReadCommitted, nil, nil, nil)
		ok = true
		for i, oldRID := range ids {
			tx.logUnstamped(wal.RecDelete, req.t.ID, oldRID, nil)
			_, err := tx.insertRow(req.t, rows[i], false)
			if err != nil {
				ok = false
				break
			}
			insRec := tx.inner.Records[len(tx.inner.Records)-1]
			tx.repointWarmedIndexes(insRec, req.t, rows[i], oldRID)
		}
		if !ok {
			// Roll back the inserts and restore the frozen tombstones.
			tx.Rollback()
			for _, id := range ids {
				req.t.Frozen.Undelete(id)
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			for _, id := range ids {
				req.t.Frozen.Undelete(id)
			}
			return total, err
		}
		total += len(ids)
	}
}
