package core_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"phoebedb/internal/core"
	"phoebedb/internal/fault"
	"phoebedb/internal/fault/crashtest"
	"phoebedb/internal/rel"
	"phoebedb/internal/txn"
)

// crashSeed returns the deterministic base seed for crash tests; override
// with PHOEBE_CRASHTEST_SEED to explore other schedules. Failures always
// report the seed in use.
func crashSeed(t *testing.T) int64 {
	if s := os.Getenv("PHOEBE_CRASHTEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PHOEBE_CRASHTEST_SEED %q: %v", s, err)
		}
		return v
	}
	return 0xC0FFEE
}

// TestCrashRecoveryAtSites crashes the engine at every registered crash
// site — WAL pre/post-sync, a torn WAL tail, the three checkpoint
// windows, buffer eviction, and the data-page write — then recovers and
// verifies the durability contract (see the crashtest package).
func TestCrashRecoveryAtSites(t *testing.T) {
	seed := crashSeed(t)
	for i, site := range fault.CrashSites() {
		site, i := site, i
		t.Run(site, func(t *testing.T) {
			cfg := crashtest.Config{
				Dir:  t.TempDir(),
				Site: site,
				Seed: seed + int64(i),
				Logf: t.Logf,
			}
			rep, err := crashtest.Run(cfg)
			if err != nil {
				t.Fatalf("site %s (seed %d): %v", site, cfg.Seed, err)
			}
			if rep.Acked == 0 {
				t.Fatalf("site %s (seed %d): no transaction committed before the crash", site, cfg.Seed)
			}
		})
	}
}

// TestCrashRecoveryWithWarmCheckpoint reruns a subset of sites with a
// successful checkpoint taken mid-workload, so recovery must combine the
// checkpoint image with the post-checkpoint log suffix. For the
// checkpoint sites this makes the crashing checkpoint the second one.
func TestCrashRecoveryWithWarmCheckpoint(t *testing.T) {
	seed := crashSeed(t)
	sites := []string{
		fault.WALPreSync,
		fault.WALTornWrite,
		fault.CheckpointPostSave,
		fault.CheckpointPreTruncate,
	}
	for i, site := range sites {
		site, i := site, i
		t.Run(site, func(t *testing.T) {
			cfg := crashtest.Config{
				Dir:            t.TempDir(),
				Site:           site,
				Seed:           seed + 1000 + int64(i),
				WarmCheckpoint: true,
				Logf:           t.Logf,
			}
			rep, err := crashtest.Run(cfg)
			if err != nil {
				t.Fatalf("site %s (seed %d): %v", site, cfg.Seed, err)
			}
			if rep.Acked == 0 {
				t.Fatalf("site %s (seed %d): no transaction committed before the crash", site, cfg.Seed)
			}
		})
	}
}

// TestCheckpointCrashWindows is the hand-rolled regression for the two
// checkpoint crash windows: a crash after the checkpoint image is durable
// but before the WAL is truncated must not replay (duplicate) rows the
// image already holds, and a crash before the image is written must lose
// nothing. Unlike the randomized harness this uses a known row set, so
// lost and duplicated rows are distinguishable by exact count.
func TestCheckpointCrashWindows(t *testing.T) {
	for _, site := range []string{
		fault.CheckpointPreSave,
		fault.CheckpointPostSave,
		fault.CheckpointPreTruncate,
	} {
		site := site
		t.Run(site, func(t *testing.T) {
			fault.Reset()
			defer fault.Reset()
			dir := t.TempDir()
			open := func() *core.Engine {
				e, err := core.Open(core.Config{Dir: dir, Slots: 2, WALSync: true})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.CreateTable("t", rel.NewSchema(
					rel.Column{Name: "k", Type: rel.TInt64},
					rel.Column{Name: "v", Type: rel.TInt64},
				)); err != nil {
					t.Fatal(err)
				}
				if _, err := e.CreateIndex("t", "t_k", []string{"k"}, true); err != nil {
					t.Fatal(err)
				}
				return e
			}
			put := func(e *core.Engine, k, v int64) {
				tx := e.Begin(0, txn.ReadCommitted, nil, nil, nil)
				if _, err := tx.Insert("t", rel.Row{rel.Int(k), rel.Int(v)}); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatalf("commit %d: %v", k, err)
				}
			}

			e := open()
			for k := int64(0); k < 20; k++ {
				put(e, k, k*10)
			}
			// First checkpoint succeeds; the next 20 rows live only in
			// the post-checkpoint WAL suffix.
			if err := e.Checkpoint(); err != nil {
				t.Fatalf("first checkpoint: %v", err)
			}
			for k := int64(20); k < 40; k++ {
				put(e, k, k*10)
			}
			if err := fault.Enable(site, "panic"); err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if r := recover(); !fault.IsCrash(r) {
						t.Fatalf("checkpoint did not crash at %s (recover=%v)", site, r)
					}
				}()
				e.Checkpoint()
			}()
			fault.Reset()
			// Abandon e; reopen and recover.
			e2 := open()
			defer e2.Close()
			if _, err := e2.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
			tx := e2.Begin(0, txn.ReadCommitted, nil, nil, nil)
			defer tx.Commit()
			seen := make(map[int64]int64)
			err := tx.ScanTable("t", func(rid rel.RowID, row rel.Row) bool {
				k := row[0].I
				if old, dup := seen[k]; dup {
					t.Fatalf("key %d duplicated after recovery (values %d, %d)", k, old, row[1].I)
				}
				seen[k] = row[1].I
				return true
			})
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			if len(seen) != 40 {
				t.Fatalf("recovered %d rows, want 40 (lost or duplicated)", len(seen))
			}
			for k := int64(0); k < 40; k++ {
				if seen[k] != k*10 {
					t.Fatalf("key %d recovered value %d, want %d", k, seen[k], k*10)
				}
			}
		})
	}
}

// TestTPCCCrashConsistency crashes a concurrent TPC-C run mid-commit and
// verifies the benchmark's consistency conditions after recovery.
func TestTPCCCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("tpcc crash run skipped in -short")
	}
	seed := crashSeed(t)
	start := time.Now()
	if err := crashtest.TPCCCrash(t.TempDir(), seed, fault.WALPreSync, 200); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("tpcc crash+recover+consistency in %v (seed %d)", time.Since(start), seed)
}
