package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"phoebedb/internal/lock"
	"phoebedb/internal/metrics"
	"phoebedb/internal/rel"
	"phoebedb/internal/table"
	"phoebedb/internal/txn"
	"phoebedb/internal/undo"
	"phoebedb/internal/wal"
	"phoebedb/internal/waitevent"
)

// Tx is one transaction bound to a task slot. All methods must be called
// from that slot's goroutine; a slot runs one transaction at a time (§7.1).
type Tx struct {
	e     *Engine
	inner *txn.Txn
	slot  int

	// Yield hooks supplied by the scheduler; either may be nil.
	yield   func()                                               // high urgency
	waitLow func(ch <-chan struct{}, timeout time.Duration) bool // low urgency

	// tctx is the table-layer context: the yield hook plus the wait-event
	// identity (slots + slot id) that residency misses stamp as buffer_io.
	tctx table.Ctx

	// stmtFP/planNote carry the SQL layer's statement fingerprint and plan
	// provenance into the transaction trace (slow log, trace ring).
	stmtFP   string
	planNote string

	mets     *metrics.SlotMetrics
	started  time.Time
	tracked  time.Duration
	finished bool

	// comp and waited are the transaction-local copy of the component
	// accounting, kept for the per-transaction trace (slow-transaction log
	// and trace ring) without re-reading the shared slot counters.
	comp   [metrics.NumComponents]time.Duration
	waited time.Duration

	// tableLocks is the per-transaction table-lock set. Transactions touch
	// a handful of tables, so a linear-scanned slice (inline backing array,
	// no per-Begin allocation) beats a map on the hot path.
	tableLocks    []tblLock
	tableLocksBuf [8]tblLock
	// idxOps records index mutations for rollback as a flat list. Ops for
	// one UNDO record are contiguous (statements run sequentially on the
	// slot), so rollback walks record groups from the tail in lockstep
	// with the reversed record list.
	idxOps    []recIdxOp
	idxOpsBuf [8]recIdxOp
	// encBuf is the WAL payload scratch: Writer.Append copies the payload
	// into its own buffer synchronously, so one per-transaction buffer is
	// reused across every EncodeRow/EncodeDelta call.
	encBuf []byte
	// cands is the index-scan candidate scratch, reused across scans.
	cands []rel.RowID
	// candKeys/candEnds hold the candidates' full entry keys (concatenated,
	// with end offsets): the scan verifies each visible row against the
	// entry that produced it, not just the search prefix, so stale entries
	// left behind by updates to non-prefix index columns are filtered even
	// when they fall inside the scanned range. Taken off the transaction
	// during a scan, like cands.
	candKeys []byte
	candEnds []int
	// verifyBuf is the recomputed-entry-key scratch for that check.
	verifyBuf []byte
	// rowBuf is the point-read scratch: readRow materializes the current
	// version here and the visibility check applies before-image deltas in
	// place. Rows returned from Get/GetByIndex alias it, hence the borrowed
	// contract: they are valid only until the transaction's next operation.
	rowBuf rel.Row
	// scanRowBuf is the index-scan row scratch. Like cands it is taken off
	// the transaction during a scan so point reads issued from inside the
	// scan callback keep their own buffer (rowBuf) rather than clobbering
	// the row the callback is looking at.
	scanRowBuf rel.Row
	// keyBuf and endBuf hold the encoded index search prefix and its
	// exclusive upper bound, reused across scans (both are consumed before
	// any callback runs, so nested scans may clobber them freely).
	keyBuf []byte
	endBuf []byte
	// vis accumulates visibility-check outcomes locally; finishMetrics
	// flushes the totals into the engine's shared counters in one shot.
	vis txn.VisStats
	// frozenRestores lists frozen tombstones to clear on rollback.
	frozenRestores []frozenRestore
}

type tblLock struct {
	t *Tbl
	m lock.Mode
}

type idxOp struct {
	ix    *Index
	key   []byte
	rid   uint64
	added bool // true: entry was inserted; false: entry was removed
}

// recIdxOp ties an index mutation to the UNDO record whose rollback
// reverts it.
type recIdxOp struct {
	rec *undo.Record
	idxOp
}

type frozenRestore struct {
	t   *Tbl
	rid rel.RowID
}

// Begin starts a transaction on the slot. mets may be nil; yield and
// waitLow may be nil (blocking defaults are used).
func (e *Engine) Begin(slot int, iso txn.Isolation, mets *metrics.SlotMetrics,
	yield func(), waitLow func(ch <-chan struct{}, timeout time.Duration) bool) *Tx {
	if mets == nil {
		mets = &metrics.SlotMetrics{}
	}
	if waitLow == nil {
		waitLow = func(ch <-chan struct{}, timeout time.Duration) bool {
			if timeout <= 0 {
				<-ch
				return true
			}
			t := time.NewTimer(timeout)
			defer t.Stop()
			select {
			case <-ch:
				return true
			case <-t.C:
				return false
			}
		}
	}
	tx := &Tx{
		e:       e,
		inner:   e.Mgr.Begin(slot, iso),
		slot:    slot,
		yield:   yield,
		waitLow: waitLow,
		mets:    mets,
		started: time.Now(),
	}
	tx.tctx = table.Ctx{Yield: yield, Waits: e.cfg.Waits, Slot: slot}
	tx.tableLocks = tx.tableLocksBuf[:0]
	tx.idxOps = tx.idxOpsBuf[:0]
	tx.vis.ChainLen = &e.stats.MVCCChainLen
	return tx
}

// XID returns the transaction ID.
func (tx *Tx) XID() uint64 { return tx.inner.XID() }

// Snapshot returns the current statement snapshot.
func (tx *Tx) Snapshot() uint64 { return tx.inner.Snapshot() }

// Slot returns the task slot the transaction is bound to.
func (tx *Tx) Slot() int { return tx.slot }

// NoteStatement records the normalized fingerprint of the statement the
// transaction is executing; it is carried into the transaction trace so
// slow-log lines identify the query.
func (tx *Tx) NoteStatement(fp string) { tx.stmtFP = fp }

// NotePlan records the executor's plan provenance (access path, join
// strategy) for the transaction trace.
func (tx *Tx) NotePlan(p string) { tx.planNote = p }

// track charges d to a component in both the slot metrics and the
// transaction's accounted total (so Compute can be derived as residual).
func (tx *Tx) track(c metrics.Component, start time.Time) {
	d := time.Since(start)
	tx.mets.Add(c, d)
	tx.tracked += d
	tx.comp[c] += d
}

// addWait charges blocked time to the slot metrics and the transaction's
// accounted total (so it is excluded from the Compute residual).
func (tx *Tx) addWait(d time.Duration) {
	tx.mets.AddWait(d)
	tx.tracked += d
	tx.waited += d
}

// stmt begins a statement: poisoned-transaction check plus snapshot
// refresh (read committed re-snapshots; repeatable read keeps its pin).
func (tx *Tx) stmt() error {
	if tx.finished {
		return ErrTxnDone
	}
	tx.inner.RefreshSnapshot()
	return nil
}

// lockTable takes the table lock once per (table, mode) pair per
// transaction, held to completion (intention locks are cheap and shared).
func (tx *Tx) lockTable(t *Tbl, m lock.Mode) error {
	held := -1
	for i := range tx.tableLocks {
		if tx.tableLocks[i].t == t {
			held = i
			break
		}
	}
	if held >= 0 {
		hm := tx.tableLocks[held].m
		if hm == m || hm == lock.ModeIX && m == lock.ModeIS {
			return nil
		}
	}
	start := time.Now()
	acquired := t.Lock.TryLock(m)
	if !acquired {
		seg := tx.tctx.Waits.Begin(tx.slot, waitevent.EvTableLock)
		err := t.Lock.Lock(m, tx.e.cfg.LockTimeout)
		tx.tctx.Waits.End(tx.slot, waitevent.EvTableLock, seg)
		tx.addWait(time.Since(start))
		if err != nil {
			return fmt.Errorf("table %q: %w", t.Name, err)
		}
	} else {
		tx.track(metrics.CompLock, start)
	}
	if held >= 0 {
		// Upgraded IS->IX: drop the weaker grant.
		if tx.tableLocks[held].m == lock.ModeIS && m == lock.ModeIX {
			t.Lock.Unlock(lock.ModeIS)
			tx.tableLocks[held].m = m
		} else {
			t.Lock.Unlock(m) // duplicate grant
		}
		return nil
	}
	tx.tableLocks = append(tx.tableLocks, tblLock{t: t, m: m})
	return nil
}

func (tx *Tx) releaseTableLocks() {
	for _, tl := range tx.tableLocks {
		tl.t.Lock.Unlock(tl.m)
	}
	tx.tableLocks = tx.tableLocks[:0]
}

// logChange appends a WAL record for a change to pg under its latch,
// maintaining the RFA page stamp (§8).
func (tx *Tx) logChange(pg *table.Page, typ wal.RecordType, tableID uint32, rid rel.RowID, payload []byte) {
	start := time.Now()
	w := tx.e.WAL.Writer(tx.slot)
	st := pg.Stamp
	if st.LastWriter >= 0 && int(st.LastWriter) != tx.slot {
		lastFlushed := tx.e.WAL.Writer(int(st.LastWriter)).FlushedGSN()
		if wal.NeedsRemoteFlush(st, tx.slot, lastFlushed) {
			tx.inner.NeedsRemoteFlush = true
			if st.GSN > tx.inner.MaxObservedGSN {
				tx.inner.MaxObservedGSN = st.GSN
			}
		} else {
			// The foreign writer's change is already durable: RFA (§8)
			// just avoided a remote flush dependency.
			tx.e.stats.RFAAvoided.Add(1)
		}
	}
	gsn := w.NextGSN(st.GSN)
	pg.Stamp = wal.PageStamp{GSN: gsn, LastWriter: int32(tx.slot)}
	rec := wal.Record{Type: typ, GSN: gsn, XID: tx.XID(), TableID: tableID, RowID: uint64(rid), Payload: payload}
	w.Append(&rec)
	tx.track(metrics.CompWAL, start)
}

// logUnstamped appends a WAL record not tied to a hot page (frozen-row
// tombstones).
func (tx *Tx) logUnstamped(typ wal.RecordType, tableID uint32, rid rel.RowID, payload []byte) {
	start := time.Now()
	w := tx.e.WAL.Writer(tx.slot)
	rec := wal.Record{Type: typ, GSN: w.NextGSN(0), XID: tx.XID(), TableID: tableID, RowID: uint64(rid), Payload: payload}
	w.Append(&rec)
	tx.track(metrics.CompWAL, start)
}

// --- Insert --------------------------------------------------------------------

// Insert adds a row and returns its row_id.
func (tx *Tx) Insert(tableName string, row rel.Row) (rel.RowID, error) {
	if err := tx.stmt(); err != nil {
		return 0, err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return 0, err
	}
	return tx.insertRow(t, row, true)
}

func (tx *Tx) insertRow(t *Tbl, row rel.Row, checkUnique bool) (rel.RowID, error) {
	if err := tx.lockTable(t, lock.ModeIX); err != nil {
		return 0, err
	}
	indexes := t.Indexes()
	if checkUnique {
		for _, ix := range indexes {
			if !ix.Unique {
				continue
			}
			if err := tx.checkUnique(t, ix, row); err != nil {
				return 0, err
			}
		}
	}
	var rec *undo.Record
	rid, err := t.Store.Append(row, tx.partition(), &tx.tctx, func(h table.Handle) error {
		mvccStart := time.Now()
		tt := h.TwinTable(true)
		rec = tx.inner.AddUndo(t.ID, h.RID, undo.OpInsert, nil, nil)
		tt.Push(h.RID, rec)
		tx.track(metrics.CompMVCC, mvccStart)
		tx.encBuf = rel.EncodeRow(tx.encBuf[:0], row)
		tx.logChange(h.Pg, wal.RecInsert, t.ID, h.RID, tx.encBuf)
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, ix := range indexes {
		k := indexKey(ix, row, rid)
		ix.Tree.Insert(k, uint64(rid))
		tx.idxOps = append(tx.idxOps, recIdxOp{rec: rec, idxOp: idxOp{ix: ix, key: k, rid: uint64(rid), added: true}})
	}
	return rid, nil
}

// checkUnique rejects the insert if an entry under the same unique key
// resolves to a row version visible to this transaction (or an uncommitted
// insert by anyone, conservatively treated as a duplicate).
func (tx *Tx) checkUnique(t *Tbl, ix *Index, row rel.Row) error {
	k := indexKey(ix, row, 0)
	rid, ok := ix.Tree.Lookup(k)
	if !ok {
		return nil
	}
	_, visible, err := tx.readRow(t, rel.RowID(rid))
	if err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	if visible {
		return fmt.Errorf("%w: index %q", ErrDuplicate, ix.Name)
	}
	// Stale entry for a dead row: drop it so the new insert can claim it.
	ix.Tree.Delete(k)
	return nil
}

// partition maps the slot to its worker's buffer partition.
func (tx *Tx) partition() int {
	if tx.e.cfg.PartitionOf != nil {
		return tx.e.cfg.PartitionOf(tx.slot) % tx.e.Pool.Partitions()
	}
	return tx.slot % tx.e.Pool.Partitions()
}

// --- Read ----------------------------------------------------------------------

// Get returns the row version visible to the transaction, if any.
//
// Borrowed-row contract: the returned row aliases per-transaction scratch
// storage and is valid only until the next operation on this transaction.
// Callers that need values past that point must extract them immediately
// (string values may be retained — they are zero-copy views of
// content-immutable page bytes). The same contract applies to rows passed
// to GetByIndex, ScanIndex, and ScanTable callbacks.
func (tx *Tx) Get(tableName string, rid rel.RowID) (rel.Row, bool, error) {
	if err := tx.stmt(); err != nil {
		return nil, false, err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return nil, false, err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return nil, false, err
	}
	row, ok, err := tx.readRow(t, rid)
	if errors.Is(err, ErrNotFound) {
		return nil, false, nil
	}
	return row, ok, err
}

// readRow performs the visibility-checked point read across the hot/cold
// and frozen layers, materializing into the transaction's point-read
// scratch (borrowed contract, see Get).
func (tx *Tx) readRow(t *Tbl, rid rel.RowID) (rel.Row, bool, error) {
	return tx.readRowInto(t, rid, &tx.rowBuf)
}

// readRowInto is readRow with an explicit scratch buffer: the current
// version is read into *buf (grown to schema width as needed) and the
// visibility check applies before-image deltas in place, so the returned
// row aliases *buf and is valid until the buffer's next reuse. This is the
// allocation-free fast path: no fresh row, no chain walk when the head
// version's stamped commit timestamp is below the global watermark.
func (tx *Tx) readRowInto(t *Tbl, rid rel.RowID, buf *rel.Row) (rel.Row, bool, error) {
	var out rel.Row
	var ok bool
	err := t.Store.WithRow(rid, false, &tx.tctx, func(h table.Handle) error {
		start := time.Now()
		var head *undo.Record
		if tt := h.TwinTable(false); tt != nil {
			head = tt.Head(rid)
		}
		if tx.e.cfg.DisableReadFastPath {
			// Ablation baseline: fresh materialization, full visibility
			// check with no watermark short-circuit.
			out, ok = txn.ReadVisible(head, tx.inner.Snapshot(), tx.XID(), h.Row(), h.Deleted())
			tx.track(metrics.CompMVCC, start)
			return nil
		}
		n := t.Schema.NumCols()
		if cap(*buf) < n {
			*buf = make(rel.Row, n)
		}
		cur := (*buf)[:n]
		h.ReadRowInto(cur)
		out, ok = txn.ReadVisibleAt(head, tx.inner.Snapshot(), tx.XID(),
			tx.e.Mgr.Watermark(), cur, h.Deleted(), true, &tx.vis)
		tx.track(metrics.CompMVCC, start)
		return nil
	})
	if errors.Is(err, table.ErrFrozen) {
		start := time.Now()
		row, found, ferr := t.Frozen.Get(rid)
		tx.track(metrics.CompBuffer, start)
		if ferr != nil {
			return nil, false, ferr
		}
		if found && t.Frozen.ShouldWarm(rid) {
			tx.e.requestWarm(t, rid)
		}
		return row, found, nil
	}
	if errors.Is(err, table.ErrNotFound) {
		return nil, false, ErrNotFound
	}
	if err != nil {
		return nil, false, err
	}
	return out, ok, nil
}

// GetByIndex returns the first row whose index key columns equal vals and
// which is visible to the transaction.
func (tx *Tx) GetByIndex(tableName, indexName string, vals ...rel.Value) (rel.RowID, rel.Row, bool, error) {
	if err := tx.stmt(); err != nil {
		return 0, nil, false, err
	}
	t, ix, err := tx.resolveIndex(tableName, indexName)
	if err != nil {
		return 0, nil, false, err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return 0, nil, false, err
	}
	var outRID rel.RowID
	var outRow rel.Row
	found := false
	err = tx.scanIndexRaw(t, ix, vals, func(rid rel.RowID, row rel.Row) bool {
		outRID, outRow, found = rid, row, true
		return false
	})
	return outRID, outRow, found, err
}

// ScanIndex iterates, in key order, the visible rows whose index key
// columns match vals (a full or partial prefix of the index columns),
// until fn returns false.
func (tx *Tx) ScanIndex(tableName, indexName string, vals []rel.Value, fn func(rid rel.RowID, row rel.Row) bool) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	t, ix, err := tx.resolveIndex(tableName, indexName)
	if err != nil {
		return err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return err
	}
	return tx.scanIndexRaw(t, ix, vals, fn)
}

func (tx *Tx) resolveIndex(tableName, indexName string) (*Tbl, *Index, error) {
	t, err := tx.e.Table(tableName)
	if err != nil {
		return nil, nil, err
	}
	ix := t.Index(indexName)
	if ix == nil {
		return nil, nil, fmt.Errorf("%w: %q on %q", ErrNoSuchIndex, indexName, tableName)
	}
	if !ix.Live() {
		return nil, nil, fmt.Errorf("%w: %q on %q", ErrIndexBackfilling, indexName, tableName)
	}
	return t, ix, nil
}

// keyPrefixEnd increments end in place to the smallest byte string greater
// than every string carrying the original prefix, returning the (possibly
// shortened) slice, or nil if the prefix is all 0xFF (no upper bound).
func keyPrefixEnd(end []byte) []byte {
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

func (tx *Tx) scanIndexRaw(t *Tbl, ix *Index, vals []rel.Value, fn func(rid rel.RowID, row rel.Row) bool) error {
	tx.keyBuf = indexPrefix(tx.keyBuf[:0], ix, vals)
	prefix := tx.keyBuf
	// Unique full-key probes take the point-lookup path: one OLC descent
	// instead of a range scan.
	if ix.Unique && len(vals) == len(ix.Cols) {
		latchStart := time.Now()
		v, ok := ix.Tree.Lookup(prefix)
		tx.track(metrics.CompLatch, latchStart)
		if !ok {
			return nil
		}
		row, ok, err := tx.readRow(t, rel.RowID(v))
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		if !ok || row == nil {
			return nil
		}
		for i := range vals {
			if !row[ix.Cols[i]].Equal(vals[i]) {
				return nil // stale entry
			}
		}
		fn(rel.RowID(v), row)
		return nil
	}
	tx.endBuf = append(tx.endBuf[:0], prefix...)
	hi := keyPrefixEnd(tx.endBuf)
	return tx.scanIndexKeys(t, ix, prefix, hi, fn)
}

// ScanIndexRange iterates, in key order, the visible rows whose leading
// index columns equal prefix and whose next index column falls between lo
// and hi (either bound optional, inclusivity per flag), until fn returns
// false. This is the planner's B-Tree range scan: one descent to the lo
// bound, then a leaf walk that stops at the hi bound, instead of scanning
// the whole prefix and filtering.
func (tx *Tx) ScanIndexRange(tableName, indexName string, prefix []rel.Value, lo, hi rel.Value,
	hasLo, hasHi, loIncl, hiIncl bool, fn func(rid rel.RowID, row rel.Row) bool) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	t, ix, err := tx.resolveIndex(tableName, indexName)
	if err != nil {
		return err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return err
	}
	// Key-space bounds from value bounds, exploiting order preservation of
	// rel.EncodeKey. Tree.Scan is [lo, hi): an inclusive value bound on
	// either side converts via keyPrefixEnd, which is the smallest key
	// greater than every entry carrying that value (column encodings are
	// self-delimiting, so no longer value shares the prefix).
	tx.keyBuf = indexPrefix(tx.keyBuf[:0], ix, prefix)
	loKey := tx.keyBuf
	if hasLo {
		loKey = rel.EncodeKey(loKey, lo)
		tx.keyBuf = loKey
		if !loIncl {
			if loKey = keyPrefixEnd(loKey); loKey == nil {
				return nil // no key above an all-0xFF bound
			}
		}
	}
	tx.endBuf = indexPrefix(tx.endBuf[:0], ix, prefix)
	hiKey := tx.endBuf
	if hasHi {
		hiKey = rel.EncodeKey(hiKey, hi)
		tx.endBuf = hiKey
		if hiIncl {
			hiKey = keyPrefixEnd(hiKey) // nil → unbounded above
		}
	} else if len(hiKey) > 0 {
		hiKey = keyPrefixEnd(hiKey) // close off the prefix
	} else {
		hiKey = nil // no prefix, no hi: scan to the end
	}
	return tx.scanIndexKeys(t, ix, loKey, hiKey, fn)
}

// scanIndexKeys is the shared key-range scan core: snapshot the matching
// index entries under [loKey, hiKey), then visibility-check and
// stale-entry-verify each candidate outside the leaf latch.
func (tx *Tx) scanIndexKeys(t *Tbl, ix *Index, loKey, hiKey []byte, fn func(rid rel.RowID, row rel.Row) bool) error {
	// Collect candidates first: the row reads below take page latches and
	// must not run inside the index leaf snapshot loop. The candidate and
	// row scratches are taken off the transaction for the duration so a
	// nested scan or point read from inside fn allocates (or uses) its own
	// rather than clobbering ours.
	cands := tx.cands[:0]
	tx.cands = nil
	candKeys := tx.candKeys[:0]
	candEnds := tx.candEnds[:0]
	tx.candKeys, tx.candEnds = nil, nil
	rowBuf := tx.scanRowBuf
	tx.scanRowBuf = nil
	verifyBuf := tx.verifyBuf
	tx.verifyBuf = nil
	latchStart := time.Now()
	ix.Tree.Scan(loKey, hiKey, func(k []byte, v uint64) bool {
		cands = append(cands, rel.RowID(v))
		candKeys = append(candKeys, k...)
		candEnds = append(candEnds, len(candKeys))
		return true
	})
	tx.track(metrics.CompLatch, latchStart)
	defer func() {
		tx.cands, tx.scanRowBuf = cands, rowBuf
		tx.candKeys, tx.candEnds, tx.verifyBuf = candKeys, candEnds, verifyBuf
	}()
	start := 0
	for i, rid := range cands {
		entry := candKeys[start:candEnds[i]]
		start = candEnds[i]
		row, ok, err := tx.readRowInto(t, rid, &rowBuf)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		if !ok || row == nil {
			continue // stale entry or invisible version
		}
		// Verify the visible version still produces this exact entry key.
		// Comparing against the search prefix alone is not enough: an
		// update to a non-prefix index column leaves the old entry inside
		// the scanned range, pointing at a row that still matches the
		// prefix — the row would be emitted once per entry, and at the
		// stale entry's sort position.
		verifyBuf = indexKeyInto(verifyBuf[:0], ix, row, rid)
		if !bytes.Equal(verifyBuf, entry) {
			continue // stale entry
		}
		if !fn(rid, row) {
			return nil
		}
	}
	return nil
}

// ScanTable iterates every visible row: the frozen layer first (lower
// row_ids), then hot/cold pages, until fn returns false.
func (tx *Tx) ScanTable(tableName string, fn func(rid rel.RowID, row rel.Row) bool) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return err
	}
	stop := false
	if err := t.Frozen.ScanLive(func(rid rel.RowID, row rel.Row) bool {
		if !fn(rid, row) {
			stop = true
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if stop {
		return nil
	}
	snapshot := tx.inner.Snapshot()
	xid := tx.XID()
	// A watermark loaded once is a valid (if slightly stale) lower bound
	// for the whole scan: it only ever advances.
	wm := tx.e.Mgr.Watermark()
	slow := tx.e.cfg.DisableReadFastPath
	// ScanAll: tombstoned rows flow through the visibility check so older
	// snapshots still see rows deleted after them. The scan's scratch row
	// is owned by this callback (refilled per row), so the visibility check
	// may apply before-image deltas to it in place.
	return t.Store.ScanAll(&tx.tctx, func(rid rel.RowID, row rel.Row, h *table.Handle) bool {
		var head *undo.Record
		if tt := h.TwinTable(false); tt != nil {
			head = tt.Head(rid)
		}
		var visRow rel.Row
		var ok bool
		if slow {
			visRow, ok = txn.ReadVisible(head, snapshot, xid, row, h.Deleted())
		} else {
			visRow, ok = txn.ReadVisibleAt(head, snapshot, xid, wm, row, h.Deleted(), true, &tx.vis)
		}
		if !ok {
			return true
		}
		return fn(rid, visRow)
	})
}

// --- Update / Delete -------------------------------------------------------------

// errWait is an internal sentinel carrying what to wait on.
type errWait struct {
	meta *undo.TxnMeta
	ch   <-chan struct{}
}

func (errWait) Error() string { return "core: internal wait sentinel" }

// Update modifies the named columns of a row in place (§6.2's write path).
func (tx *Tx) Update(tableName string, rid rel.RowID, set map[string]rel.Value) error {
	_, err := tx.Modify(tableName, rid, func(rel.Row) (map[string]rel.Value, error) {
		return set, nil
	})
	return err
}

// Modify atomically applies a read-modify-write: fn receives the row's
// current version under the page's exclusive latch (after write-conflict
// resolution) and returns the columns to set. It returns the resulting
// row — the engine-level equivalent of UPDATE ... RETURNING, which TPC-C
// needs for counters like D_NEXT_O_ID and the YTD accumulations. fn may
// run more than once if the transaction has to wait and retry.
func (tx *Tx) Modify(tableName string, rid rel.RowID, fn func(cur rel.Row) (map[string]rel.Value, error)) (rel.Row, error) {
	if err := tx.stmt(); err != nil {
		return nil, err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return nil, err
	}
	if err := tx.lockTable(t, lock.ModeIX); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(tx.e.cfg.LockTimeout)
	for {
		row, err := tx.modifyOnce(t, rid, fn)
		var w errWait
		if !errors.As(err, &w) {
			return row, err
		}
		if !tx.waitOn(w, deadline) {
			return nil, fmt.Errorf("update %q row %d: %w", tableName, rid, lock.ErrLockTimeout)
		}
		tx.inner.RefreshSnapshot()
	}
}

// waitOn performs the low-urgency wait for a conflict (§7.1): transaction-
// ID locks or tuple-lock waiter channels. The blocked time is accounted as
// stall, not as locking work (a waiting transaction executes nothing).
func (tx *Tx) waitOn(w errWait, deadline time.Time) bool {
	tx.e.stats.TupleLockWaits.Add(1)
	start := time.Now()
	defer func() {
		tx.addWait(time.Since(start))
	}()
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false
	}
	seg := tx.tctx.Waits.Begin(tx.slot, waitevent.EvTupleLock)
	defer tx.tctx.Waits.End(tx.slot, waitevent.EvTupleLock, seg)
	if w.meta != nil {
		return tx.waitLow(w.meta.Done(), remaining)
	}
	return tx.waitLow(w.ch, remaining)
}

func (tx *Tx) modifyOnce(t *Tbl, rid rel.RowID, fn func(cur rel.Row) (map[string]rel.Value, error)) (rel.Row, error) {
	var result rel.Row
	err := t.Store.WithRow(rid, true, &tx.tctx, func(h table.Handle) error {
		mvccStart := time.Now()
		tt := h.TwinTable(true)
		head := tt.Head(rid)
		waitMeta, err := txn.CheckWriteConflict(head, tx.inner)
		tx.track(metrics.CompMVCC, mvccStart)
		if err != nil {
			return err
		}
		if waitMeta != nil {
			return errWait{meta: waitMeta}
		}
		if h.Deleted() {
			return ErrNotFound
		}
		lockStart := time.Now()
		entry := tt.Entry(rid, true)
		if !lock.TryLockTuple(entry, true, tx.XID()) {
			ch := entry.AddWaiter()
			tx.track(metrics.CompLock, lockStart)
			return errWait{ch: ch}
		}
		tx.track(metrics.CompLock, lockStart)

		set, err := fn(h.Row())
		if err != nil {
			lock.UnlockTuple(entry, true)
			return err
		}
		cols, vals, err := resolveSet(t.Schema, set)
		if err != nil {
			lock.UnlockTuple(entry, true)
			return err
		}

		// Before-image delta, version chain push, in-place update.
		mvccStart = time.Now()
		delta := make([]undo.ColVal, len(cols))
		oldVals := make(rel.Row, len(cols))
		for i, c := range cols {
			oldVals[i] = h.Col(c)
			delta[i] = undo.ColVal{Col: c, Val: oldVals[i]}
		}
		rec := tx.inner.AddUndo(t.ID, rid, undo.OpUpdate, delta, head)
		tt.Push(rid, rec)
		for i, c := range cols {
			h.SetCol(c, vals[i])
		}
		tx.track(metrics.CompMVCC, mvccStart)
		tx.encBuf = rel.EncodeDelta(tx.encBuf[:0], cols, vals)
		tx.logChange(h.Pg, wal.RecUpdate, t.ID, rid, tx.encBuf)

		// Index maintenance: if an indexed column changed, add an entry
		// for the new key. The old entry stays for older snapshots and is
		// filtered by the scan-side key verification; it is physically
		// removed when the row is eventually deleted and GC'd.
		newRow := h.Row()
		result = newRow
		for _, ix := range t.Indexes() {
			changed := false
			for _, c := range ix.Cols {
				for j, uc := range cols {
					if uc == c && !oldVals[j].Equal(vals[j]) {
						changed = true
					}
				}
			}
			if !changed {
				continue
			}
			k := indexKey(ix, newRow, rid)
			ix.Tree.Insert(k, uint64(rid))
			tx.idxOps = append(tx.idxOps, recIdxOp{rec: rec, idxOp: idxOp{ix: ix, key: k, rid: uint64(rid), added: true}})
		}

		lockStart = time.Now()
		lock.UnlockTuple(entry, true) // released right after the operation (§7.2)
		tx.track(metrics.CompLock, lockStart)
		return nil
	})
	if errors.Is(err, table.ErrFrozen) {
		// §5.2 case 3: writes to frozen rows warm them into hot storage
		// first, then apply the update to the hot copy.
		newRID, werr := tx.warmFrozenRow(t, rid)
		if werr != nil {
			return nil, werr
		}
		return tx.modifyOnce(t, newRID, fn)
	}
	if errors.Is(err, table.ErrNotFound) {
		return nil, ErrNotFound
	}
	return result, err
}

// Delete tombstones a row (physical removal happens at GC, §7.3).
func (tx *Tx) Delete(tableName string, rid rel.RowID) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return err
	}
	if err := tx.lockTable(t, lock.ModeIX); err != nil {
		return err
	}
	deadline := time.Now().Add(tx.e.cfg.LockTimeout)
	for {
		err := tx.deleteOnce(t, rid)
		var w errWait
		if !errors.As(err, &w) {
			return err
		}
		if !tx.waitOn(w, deadline) {
			return fmt.Errorf("delete %q row %d: %w", tableName, rid, lock.ErrLockTimeout)
		}
		tx.inner.RefreshSnapshot()
	}
}

func (tx *Tx) deleteOnce(t *Tbl, rid rel.RowID) error {
	err := t.Store.WithRow(rid, true, &tx.tctx, func(h table.Handle) error {
		mvccStart := time.Now()
		tt := h.TwinTable(true)
		head := tt.Head(rid)
		waitMeta, err := txn.CheckWriteConflict(head, tx.inner)
		tx.track(metrics.CompMVCC, mvccStart)
		if err != nil {
			return err
		}
		if waitMeta != nil {
			return errWait{meta: waitMeta}
		}
		if h.Deleted() {
			return ErrNotFound
		}
		lockStart := time.Now()
		entry := tt.Entry(rid, true)
		if !lock.TryLockTuple(entry, true, tx.XID()) {
			ch := entry.AddWaiter()
			tx.track(metrics.CompLock, lockStart)
			return errWait{ch: ch}
		}
		tx.track(metrics.CompLock, lockStart)

		mvccStart = time.Now()
		rec := tx.inner.AddUndo(t.ID, rid, undo.OpDelete, nil, head)
		tt.Push(rid, rec)
		h.SetDeleted(true)
		tx.track(metrics.CompMVCC, mvccStart)
		tx.logChange(h.Pg, wal.RecDelete, t.ID, rid, nil)

		lockStart = time.Now()
		lock.UnlockTuple(entry, true)
		tx.track(metrics.CompLock, lockStart)
		return nil
	})
	if errors.Is(err, table.ErrFrozen) {
		newRID, werr := tx.warmFrozenRow(t, rid)
		if werr != nil {
			return werr
		}
		return tx.deleteOnce(t, newRID)
	}
	if errors.Is(err, table.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// warmFrozenRow moves one frozen row into hot storage within this
// transaction (§5.2 case 3): tombstone the frozen copy (WAL-logged so redo
// erases the replayed hot original), repoint index entries, and insert the
// hot copy with a fresh row_id.
func (tx *Tx) warmFrozenRow(t *Tbl, rid rel.RowID) (rel.RowID, error) {
	row, found, err := t.Frozen.Get(rid)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, ErrNotFound
	}
	live, err := t.Frozen.MarkDeleted(rid)
	if err != nil {
		return 0, err
	}
	if !live {
		return 0, ErrNotFound // lost a warm race; caller re-finds via index
	}
	tx.frozenRestores = append(tx.frozenRestores, frozenRestore{t: t, rid: rid})
	tx.logUnstamped(wal.RecDelete, t.ID, rid, nil)

	newRID, err := tx.insertRow(t, row, false)
	if err != nil {
		return 0, err
	}
	// Repoint index entries. The insert already published the new rid's
	// entries; for unique indexes that replaced the old mapping in place,
	// while non-unique entries for the frozen rid must be removed. Both
	// are recorded on the insert's undo record so rollback restores the
	// old mappings.
	insRec := tx.inner.Records[len(tx.inner.Records)-1]
	tx.repointWarmedIndexes(insRec, t, row, rid)
	return newRID, nil
}

// repointWarmedIndexes moves index entries from a warmed frozen rid to the
// hot copy, recording rollback operations on insRec.
func (tx *Tx) repointWarmedIndexes(insRec *undo.Record, t *Tbl, row rel.Row, oldRID rel.RowID) {
	for _, ix := range t.Indexes() {
		k := indexKey(ix, row, oldRID)
		if ix.Unique {
			// The insert replaced key->oldRID with key->newRID; rollback
			// must restore the old mapping after deleting the new one.
			tx.idxOps = append(tx.idxOps, recIdxOp{rec: insRec, idxOp: idxOp{ix: ix, key: k, rid: uint64(oldRID), added: false}})
			continue
		}
		if ix.Tree.Delete(k) {
			tx.idxOps = append(tx.idxOps, recIdxOp{rec: insRec, idxOp: idxOp{ix: ix, key: k, rid: uint64(oldRID), added: false}})
		}
	}
}

func resolveSet(s *rel.Schema, set map[string]rel.Value) ([]int, rel.Row, error) {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	cols := make([]int, len(names))
	vals := make(rel.Row, len(names))
	for i, n := range names {
		c := s.ColIndex(n)
		if c < 0 {
			return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchColumn, n)
		}
		if set[n].Kind != s.Cols[c].Type {
			return nil, nil, fmt.Errorf("core: column %q: wrong value kind", n)
		}
		cols[i] = c
		vals[i] = set[n]
	}
	return cols, vals, nil
}

// --- Commit / Rollback -------------------------------------------------------------

// Commit makes the transaction durable and visible. Read-only transactions
// skip the WAL entirely.
func (tx *Tx) Commit() error {
	if tx.finished {
		return ErrTxnDone
	}
	tx.finished = true
	cts := tx.inner.PrepareCommit()
	if len(tx.inner.Records) > 0 {
		walStart := time.Now()
		w := tx.e.WAL.Writer(tx.slot)
		cr := wal.Record{Type: wal.RecCommit, GSN: w.NextGSN(0), XID: tx.XID(), RowID: cts}
		w.Append(&cr)
		tx.track(metrics.CompWAL, walStart)
		// The flush itself (and any remote-flush wait) is an I/O stall,
		// accounted separately from WAL CPU work.
		flushStart := time.Now()
		err := w.Flush()
		if err == nil && tx.e.cfg.DisableRFA {
			// Ablation: behave like a serialized log — wait until every
			// writer's durable horizon covers this commit.
			tx.e.stats.RemoteFlushWaits.Add(1)
			seg := tx.tctx.Waits.Begin(tx.slot, waitevent.EvRemoteFlush)
			err = tx.e.WAL.WaitRemoteFlush(cr.GSN)
			tx.tctx.Waits.End(tx.slot, waitevent.EvRemoteFlush, seg)
		} else if err == nil && tx.inner.NeedsRemoteFlush {
			// RFA slow path: a foreign slot's unflushed change to one of
			// our pages must be durable before we report commit.
			tx.e.stats.RemoteFlushWaits.Add(1)
			seg := tx.tctx.Waits.Begin(tx.slot, waitevent.EvRemoteFlush)
			err = tx.e.WAL.WaitRemoteFlush(tx.inner.MaxObservedGSN)
			tx.tctx.Waits.End(tx.slot, waitevent.EvRemoteFlush, seg)
		}
		tx.addWait(time.Since(flushStart))
		if err != nil {
			tx.rollbackChanges()
			tx.inner.FinalizeAbort()
			tx.releaseTableLocks()
			tx.finishMetrics(false)
			return fmt.Errorf("core: commit flush: %w", err)
		}
	}
	mvccStart := time.Now()
	tx.inner.FinalizeCommit(cts)
	tx.track(metrics.CompMVCC, mvccStart)
	tx.releaseTableLocks()
	tx.finishMetrics(true)
	return nil
}

// Rollback aborts the transaction, restoring every before image and
// unlinking its version-chain records.
func (tx *Tx) Rollback() error {
	if tx.finished {
		return ErrTxnDone
	}
	tx.finished = true
	tx.rollbackChanges()
	if len(tx.inner.Records) > 0 {
		w := tx.e.WAL.Writer(tx.slot)
		ar := wal.Record{Type: wal.RecAbort, GSN: w.NextGSN(0), XID: tx.XID()}
		w.Append(&ar) // no flush needed: aborts are implicit at recovery
	}
	tx.inner.FinalizeAbort()
	tx.releaseTableLocks()
	tx.finishMetrics(false)
	return nil
}

// finishMetrics closes out the transaction's accounting: the untracked
// residual is charged to Compute, the outcome counter bumps, and — unless
// the engine runs in StatsLite mode — the latency histogram, the slot's
// trace ring, and the slow-transaction log observe the full breakdown.
func (tx *Tx) finishMetrics(committed bool) {
	total := time.Since(tx.started)
	if rest := total - tx.tracked; rest > 0 {
		tx.mets.Add(metrics.CompCompute, rest)
		tx.comp[metrics.CompCompute] += rest
	}
	tx.mets.CountTxn()
	if committed {
		tx.e.stats.Commits.Add(1)
	} else {
		tx.e.stats.Aborts.Add(1)
	}
	// Flush the visibility counters accumulated tx-locally (three shared
	// atomic adds per transaction instead of per read).
	if tx.vis.Fast != 0 {
		tx.e.stats.MVCCFastPath.Add(tx.vis.Fast)
	}
	if tx.vis.Walks != 0 {
		tx.e.stats.MVCCChainWalks.Add(tx.vis.Walks)
		tx.e.stats.MVCCChainLinks.Add(tx.vis.Links)
	}
	if tx.e.cfg.StatsLite {
		return
	}
	tx.mets.Hist.Observe(total)
	tr := metrics.TxnTrace{
		XID:       tx.XID(),
		Slot:      tx.slot,
		Start:     tx.started,
		Total:     total,
		Wait:      tx.waited,
		Committed: committed,
		Comp:      tx.comp,
		Stmt:      tx.stmtFP,
		Plan:      tx.planNote,
	}
	tx.mets.Ring.Record(tr)
	tx.e.stats.SlowLog.Offer(tr)
}

// rollbackChanges undoes the transaction's physical effects in reverse
// order. UNDO records are marked dead (immediately reclaimable).
func (tx *Tx) rollbackChanges() {
	recs := tx.inner.Records
	// idxOps holds each record's ops as one contiguous group, groups in
	// record order; walk groups from the tail in lockstep with the
	// reversed record loop (ops within a group revert in forward order —
	// a warmed unique index records delete-new before restore-old).
	opEnd := len(tx.idxOps)
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		t := tx.e.tableByID(rec.TableID)
		// Revert this record's index mutations.
		opStart := opEnd
		for opStart > 0 && tx.idxOps[opStart-1].rec == rec {
			opStart--
		}
		if t != nil {
			for _, op := range tx.idxOps[opStart:opEnd] {
				if op.added {
					op.ix.Tree.Delete(op.key)
				} else {
					op.ix.Tree.Insert(op.key, op.rid)
				}
			}
		}
		opEnd = opStart
		if t == nil {
			continue
		}
		rid := rec.RowID
		switch rec.Op {
		case undo.OpUpdate:
			t.Store.WithRow(rid, true, &tx.tctx, func(h table.Handle) error {
				for _, cv := range rec.Delta {
					h.SetCol(cv.Col, cv.Val)
				}
				if tt := h.TwinTable(false); tt != nil {
					tt.Pop(rid, rec)
				}
				return nil
			})
		case undo.OpDelete:
			t.Store.WithRow(rid, true, &tx.tctx, func(h table.Handle) error {
				h.SetDeleted(false)
				if tt := h.TwinTable(false); tt != nil {
					tt.Pop(rid, rec)
				}
				return nil
			})
		case undo.OpInsert:
			t.Store.WithRow(rid, true, &tx.tctx, func(h table.Handle) error {
				if tt := h.TwinTable(false); tt != nil {
					tt.Pop(rid, rec)
				}
				return nil
			})
			t.Store.RemoveRow(rid, &tx.tctx)
		}
		rec.MarkDead()
	}
	// Clear frozen tombstones set by warming.
	for _, fr := range tx.frozenRestores {
		fr.t.Frozen.Undelete(fr.rid)
	}
}
