package core

import (
	"testing"

	"phoebedb/internal/rel"
)

// The allocation-free read path: steady-state point reads and index scans
// must not allocate. These gates guard the scratch-reuse machinery (Tx
// rowBuf/scanRowBuf/keyBuf, value Handle callbacks, in-place visibility)
// against regressions — a single escaped value shows up as a fractional
// alloc count here.

// setupReadAlloc loads rows, commits them, and advances the watermark so
// steady-state reads take the fast path.
func setupReadAlloc(t *testing.T, e *Engine, n int) []rel.RowID {
	t.Helper()
	setupAccounts(t, e)
	tx := begin(e, 0)
	rids := make([]rel.RowID, n)
	for i := 0; i < n; i++ {
		rid, err := tx.Insert("accounts", acct(i+1, "owner", float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Mgr.RefreshWatermark()
	return rids
}

func TestPointReadAllocFree(t *testing.T) {
	e := openTestEngine(t, Config{})
	rids := setupReadAlloc(t, e, 64)

	tx := begin(e, 1)
	defer tx.Rollback()
	// Warm the scratch buffers and table-lock entry.
	if _, ok, err := tx.Get("accounts", rids[0]); err != nil || !ok {
		t.Fatalf("warmup read: ok=%v err=%v", ok, err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		rid := rids[i%len(rids)]
		i++
		row, ok, err := tx.Get("accounts", rid)
		if err != nil || !ok {
			t.Fatalf("read %d: ok=%v err=%v", rid, ok, err)
		}
		if row[0].I < 1 {
			t.Fatalf("bad row %v", row)
		}
	})
	if allocs != 0 {
		t.Fatalf("point read allocates %.2f per op, want 0", allocs)
	}
}

func TestUniqueProbeAllocFree(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupReadAlloc(t, e, 64)

	tx := begin(e, 1)
	defer tx.Rollback()
	key := []rel.Value{rel.Int(1)}
	if err := tx.ScanIndex("accounts", "accounts_pk", key, func(rel.RowID, rel.Row) bool { return false }); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		key[0] = rel.Int(int64(i%64) + 1)
		i++
		found := false
		err := tx.ScanIndex("accounts", "accounts_pk", key, func(rid rel.RowID, row rel.Row) bool {
			found = row[0].I >= 1
			return false
		})
		if err != nil || !found {
			t.Fatalf("probe: found=%v err=%v", found, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unique index probe allocates %.2f per op, want 0", allocs)
	}
}

func TestIndexScanSteadyStateAllocs(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupReadAlloc(t, e, 256)

	tx := begin(e, 1)
	defer tx.Rollback()
	key := []rel.Value{rel.Str("owner")}
	scan := func() int {
		n := 0
		if err := tx.ScanIndex("accounts", "accounts_owner", key, func(rel.RowID, rel.Row) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := scan(); got != 256 {
		t.Fatalf("scan saw %d rows, want 256", got)
	}
	// Steady state: per-row cost must be allocation-free. The scan itself
	// may keep a small constant overhead (B-Tree leaf snapshots), so gate
	// on per-row allocations staying well below one.
	allocs := testing.AllocsPerRun(50, func() { scan() })
	perRow := allocs / 256
	if perRow >= 0.05 {
		t.Fatalf("index scan allocates %.2f per run (%.3f per row), want ~0 per row", allocs, perRow)
	}
}

func TestTableScanSteadyStateAllocs(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupReadAlloc(t, e, 256)

	tx := begin(e, 1)
	defer tx.Rollback()
	scan := func() int {
		n := 0
		if err := tx.ScanTable("accounts", func(rel.RowID, rel.Row) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := scan(); got != 256 {
		t.Fatalf("scan saw %d rows, want 256", got)
	}
	allocs := testing.AllocsPerRun(50, func() { scan() })
	perRow := allocs / 256
	if perRow >= 0.05 {
		t.Fatalf("table scan allocates %.2f per run (%.3f per row), want ~0 per row", allocs, perRow)
	}
}
