package core

import (
	"fmt"
	"testing"

	"phoebedb/internal/rel"
)

// collectRange runs one ScanIndexRange in a fresh transaction and returns
// the visible ids in scan order.
func collectRange(t *testing.T, e *Engine, table, index string, prefix []rel.Value,
	lo, hi rel.Value, hasLo, hasHi, loIncl, hiIncl bool) []int64 {
	t.Helper()
	tx := begin(e, 0)
	defer tx.Rollback()
	var ids []int64
	err := tx.ScanIndexRange(table, index, prefix, lo, hi, hasLo, hasHi, loIncl, hiIncl,
		func(rid rel.RowID, row rel.Row) bool {
			ids = append(ids, row[0].I)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func eqIDs(a []int64, b ...int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanIndexRangeBounds(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	for i := 1; i <= 9; i++ {
		if _, err := tx.Insert("accounts", acct(i, fmt.Sprintf("o%d", i), float64(i)*1.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	unset := rel.Value{}
	cases := []struct {
		name           string
		lo, hi         rel.Value
		hasLo, hasHi   bool
		loIncl, hiIncl bool
		want           []int64
	}{
		{"closed", rel.Int(3), rel.Int(6), true, true, true, true, []int64{3, 4, 5, 6}},
		{"half open hi", rel.Int(3), rel.Int(6), true, true, true, false, []int64{3, 4, 5}},
		{"half open lo", rel.Int(3), rel.Int(6), true, true, false, true, []int64{4, 5, 6}},
		{"open both", rel.Int(3), rel.Int(6), true, true, false, false, []int64{4, 5}},
		{"lo only", rel.Int(7), unset, true, false, true, false, []int64{7, 8, 9}},
		{"hi only", unset, rel.Int(3), false, true, false, false, []int64{1, 2}},
		{"empty interval", rel.Int(5), rel.Int(5), true, true, false, false, nil},
		{"point", rel.Int(5), rel.Int(5), true, true, true, true, []int64{5}},
		{"outside", rel.Int(100), rel.Int(200), true, true, true, true, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := collectRange(t, e, "accounts", "accounts_pk", nil,
				tc.lo, tc.hi, tc.hasLo, tc.hasHi, tc.loIncl, tc.hiIncl)
			if !eqIDs(got, tc.want...) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

// A range over a string column must respect the order-preserving key
// encoding, including values that extend past the bound's prefix.
func TestScanIndexRangeStrings(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	owners := []string{"ann", "bob", "bob\x00", "bobby", "carl", "dee"}
	for i, o := range owners {
		if _, err := tx.Insert("accounts", acct(i+1, o, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// ["bob", "carl"): catches bob and its extensions, not ann/carl/dee.
	got := collectRange(t, e, "accounts", "accounts_owner", nil,
		rel.Str("bob"), rel.Str("carl"), true, true, true, false)
	if !eqIDs(got, 2, 3, 4) {
		t.Fatalf("string range got %v, want [2 3 4]", got)
	}
	// ("bob", ...]: strictly above "bob" still includes "bob\x00" (the
	// smallest string extension) — exclusivity is per value, not prefix.
	got = collectRange(t, e, "accounts", "accounts_owner", nil,
		rel.Str("bob"), rel.Value{}, true, false, false, false)
	if !eqIDs(got, 3, 4, 5, 6) {
		t.Fatalf("exclusive string lo got %v, want [3 4 5 6]", got)
	}
}

// An equality prefix pins the leading index column; the range applies to
// the next one, and rows under other prefixes never surface.
func TestScanIndexRangeWithPrefix(t *testing.T) {
	e := openTestEngine(t, Config{})
	if _, err := e.CreateTable("ol", rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "grp", Type: rel.TInt64},
		rel.Column{Name: "seq", Type: rel.TInt64},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("ol", "ol_grp_seq", []string{"grp", "seq"}, false); err != nil {
		t.Fatal(err)
	}
	tx := begin(e, 0)
	id := int64(1)
	for grp := int64(1); grp <= 3; grp++ {
		for seq := int64(1); seq <= 5; seq++ {
			if _, err := tx.Insert("ol", rel.Row{rel.Int(id), rel.Int(grp), rel.Int(seq)}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = begin(e, 0)
	defer tx.Rollback()
	var got [][2]int64
	err := tx.ScanIndexRange("ol", "ol_grp_seq", []rel.Value{rel.Int(2)},
		rel.Int(2), rel.Int(4), true, true, true, true,
		func(rid rel.RowID, row rel.Row) bool {
			got = append(got, [2]int64{row[1].I, row[2].I})
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{2, 2}, {2, 3}, {2, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Stale index entries — left behind by an update that moved the row out of
// the scanned range — must not surface.
func TestScanIndexRangeSkipsStaleEntries(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	rid2 := rel.RowID(0)
	for i := 1; i <= 5; i++ {
		rid, err := tx.Insert("accounts", acct(i, fmt.Sprintf("o%d", i), float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			rid2 = rid
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Move row 2's owner from o2 to z2: the old "o2" entry is stale until
	// GC, and the range scan's verify pass must skip it.
	tx = begin(e, 0)
	if err := tx.Update("accounts", rid2, map[string]rel.Value{"owner": rel.Str("z2")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := collectRange(t, e, "accounts", "accounts_owner", nil,
		rel.Str("o1"), rel.Str("o5"), true, true, true, true)
	if !eqIDs(got, 1, 3, 4, 5) {
		t.Fatalf("got %v, want [1 3 4 5] (stale o2 entry must be skipped)", got)
	}
	// The moved row surfaces under its new key.
	got = collectRange(t, e, "accounts", "accounts_owner", nil,
		rel.Str("z"), rel.Value{}, true, false, true, false)
	if !eqIDs(got, 2) {
		t.Fatalf("got %v, want [2]", got)
	}
}

// A transaction's own uncommitted writes and concurrent invisible writes
// behave under range scans exactly as under prefix scans.
func TestScanIndexRangeVisibility(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	for i := 1; i <= 3; i++ {
		if _, err := tx.Insert("accounts", acct(i, "x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	writer := begin(e, 0)
	if _, err := writer.Insert("accounts", acct(4, "x", 1)); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own row 4; a concurrent reader does not.
	var mine []int64
	if err := writer.ScanIndexRange("accounts", "accounts_pk", nil,
		rel.Int(1), rel.Int(10), true, true, true, true,
		func(rid rel.RowID, row rel.Row) bool {
			mine = append(mine, row[0].I)
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if !eqIDs(mine, 1, 2, 3, 4) {
		t.Fatalf("writer sees %v, want [1 2 3 4]", mine)
	}
	reader := begin(e, 1)
	var others []int64
	if err := reader.ScanIndexRange("accounts", "accounts_pk", nil,
		rel.Int(1), rel.Int(10), true, true, true, true,
		func(rid rel.RowID, row rel.Row) bool {
			others = append(others, row[0].I)
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if !eqIDs(others, 1, 2, 3) {
		t.Fatalf("reader sees %v, want [1 2 3]", others)
	}
	reader.Rollback()
	writer.Rollback()
}
