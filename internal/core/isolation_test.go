package core

import (
	"testing"

	"phoebedb/internal/rel"
	"phoebedb/internal/txn"
)

// The PostgreSQL-compatible snapshot levels (§6.1) admit and forbid
// specific anomalies; these tests pin the matrix down.

func TestNoDirtyReadsAtAnyLevel(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "a", 100))
	w.Commit()

	writer := begin(e, 0)
	writer.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(666)})
	for slot, iso := range map[int]txn.Isolation{1: txn.ReadCommitted, 2: txn.RepeatableRead} {
		r := e.Begin(slot, iso, nil, nil, nil)
		row, ok, _ := r.Get("accounts", rid)
		if !ok || row[2].F != 100 {
			t.Fatalf("%v: dirty read: %v", iso, row)
		}
		r.Rollback()
	}
	writer.Rollback()
}

func TestNonRepeatableReadAllowedAtRC(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "a", 100))
	w.Commit()

	rc := begin(e, 1)
	row, _, _ := rc.Get("accounts", rid)
	if row[2].F != 100 {
		t.Fatalf("first read %v", row)
	}
	u := begin(e, 2)
	u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(200)})
	u.Commit()
	// RC takes a fresh statement snapshot: the second read differs.
	row, _, _ = rc.Get("accounts", rid)
	if row[2].F != 200 {
		t.Fatalf("read committed did not advance: %v", row)
	}
	rc.Rollback()
}

func TestPhantomsPreventedAtRR(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 1; i <= 3; i++ {
		w.Insert("accounts", acct(i, "set", 1))
	}
	w.Commit()

	rr := e.Begin(1, txn.RepeatableRead, nil, nil, nil)
	count := func() int {
		n := 0
		rr.ScanIndex("accounts", "accounts_owner", []rel.Value{rel.Str("set")}, func(rel.RowID, rel.Row) bool {
			n++
			return true
		})
		return n
	}
	if count() != 3 {
		t.Fatalf("initial count = %d", count())
	}
	// A concurrent insert commits a new member of the predicate.
	ins := begin(e, 2)
	ins.Insert("accounts", acct(4, "set", 1))
	ins.Commit()
	// The repeatable-read scan must not see the phantom.
	if got := count(); got != 3 {
		t.Fatalf("phantom appeared under repeatable read: %d", got)
	}
	rr.Rollback()
	// A read-committed scan does see it.
	rc := begin(e, 1)
	n := 0
	rc.ScanIndex("accounts", "accounts_owner", []rel.Value{rel.Str("set")}, func(rel.RowID, rel.Row) bool {
		n++
		return true
	})
	if n != 4 {
		t.Fatalf("read committed scan = %d", n)
	}
	rc.Rollback()
}

func TestRRScanStableAcrossDeletes(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	var rids []rel.RowID
	for i := 1; i <= 3; i++ {
		rid, _ := w.Insert("accounts", acct(i, "stable", 1))
		rids = append(rids, rid)
	}
	w.Commit()

	rr := e.Begin(1, txn.RepeatableRead, nil, nil, nil)
	rr.Get("accounts", rids[0]) // pin snapshot

	d := begin(e, 2)
	d.Delete("accounts", rids[1])
	d.Commit()

	n := 0
	rr.ScanTable("accounts", func(rel.RowID, rel.Row) bool { n++; return true })
	if n != 3 {
		t.Fatalf("repeatable read lost a deleted-after-snapshot row: %d", n)
	}
	rr.Rollback()
}

func TestLostUpdatePreventedAtRR(t *testing.T) {
	// First-updater-wins: a repeatable-read transaction that read an old
	// version cannot blind-write over a newer committed one.
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "a", 100))
	w.Commit()

	rr := e.Begin(1, txn.RepeatableRead, nil, nil, nil)
	rr.Get("accounts", rid) // snapshot pinned at balance=100

	u := begin(e, 2)
	u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(150)})
	u.Commit()

	if err := rr.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(100 + 10)}); err == nil {
		t.Fatal("repeatable read blind write over newer version succeeded")
	}
	rr.Rollback()
	// The concurrent committed update survived.
	r := begin(e, 1)
	row, _, _ := r.Get("accounts", rid)
	if row[2].F != 150 {
		t.Fatalf("balance = %v", row[2])
	}
	r.Rollback()
}

func TestReadOnlyTransactionsSkipWAL(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	w.Insert("accounts", acct(1, "a", 1))
	w.Commit()
	before := e.IO.Snapshot().WALWrite
	r := begin(e, 1)
	r.Get("accounts", 1)
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := e.IO.Snapshot().WALWrite; after != before {
		t.Fatalf("read-only commit wrote %d WAL bytes", after-before)
	}
}
