package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"phoebedb/internal/fault"
	"phoebedb/internal/frozen"
	"phoebedb/internal/rel"
	"phoebedb/internal/table"
)

// Checkpointing bounds recovery work: a checkpoint captures every table's
// hot/cold pages and frozen-block directory plus the clock and GSN
// horizons, then truncates the per-slot WAL files. Recovery loads the
// newest checkpoint and replays only the log written after it. This
// extends the paper's recovery story (which replays the full log; the
// paper lists durability infrastructure under future work).
//
// The checkpoint is quiescent: it requires no active transactions, making
// it suitable for maintenance windows. Fuzzy checkpointing concurrent with
// transactions would additionally need undo information in the checkpoint
// image and is left out, as the paper's "Non-Force, Steal" recovery
// (§8) already covers the steady-state path.

const (
	checkpointMagic   uint32 = 0x50434B31 // "PCK1"
	checkpointVersion uint32 = 2
)

// ErrActiveTransactions reports a checkpoint attempt while transactions
// are running.
var ErrActiveTransactions = fmt.Errorf("core: checkpoint requires a quiesced engine")

func (e *Engine) checkpointPath() string {
	return filepath.Join(e.cfg.Dir, "checkpoint.db")
}

func (e *Engine) coldManifestPath(epoch uint64) string {
	return filepath.Join(e.cfg.Dir, frozen.ManifestFileName(epoch))
}

// writeColdManifest durably writes one manifest epoch file (tmp, fsync,
// rename). The frozen.manifestSwap failpoint guards the rename: a crash
// before or during it leaves at worst a stray epoch file that no
// checkpoint references.
func (e *Engine) writeColdManifest(epoch uint64, data []byte) error {
	path := e.coldManifestPath(epoch)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	e.IO.DataWrite.Add(int64(len(data)))
	if err := fault.Eval(fault.FrozenManifestSwap); err != nil {
		return fmt.Errorf("core: cold manifest swap: %w", err)
	}
	return os.Rename(tmp, path)
}

// gcColdManifests removes superseded manifest epochs, keeping the current
// one and its predecessor (a base backup that read checkpoint.db just
// before a checkpoint may still be copying the previous epoch).
func (e *Engine) gcColdManifests(current uint64) {
	ents, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		var epoch uint64
		if _, err := fmt.Sscanf(ent.Name(), "cold.manifest.%d", &epoch); err != nil {
			continue
		}
		if epoch+1 < current {
			os.Remove(filepath.Join(e.cfg.Dir, ent.Name()))
		}
	}
}

type cpWriter struct {
	buf []byte
}

func (w *cpWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *cpWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *cpWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

type cpReader struct {
	buf []byte
	off int
	err error
}

func (r *cpReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.err = fmt.Errorf("core: truncated checkpoint")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *cpReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.err = fmt.Errorf("core: truncated checkpoint")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *cpReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("core: truncated checkpoint")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Checkpoint captures the full database state and truncates the WAL. The
// engine must be quiesced (no active transactions); run a GC round first
// so UNDO history is drained and tombstones are erased.
func (e *Engine) Checkpoint() error {
	if n := e.Mgr.ActiveCount(); n != 0 {
		return fmt.Errorf("%w: %d active transactions", ErrActiveTransactions, n)
	}
	e.CollectGarbage()
	if err := e.WAL.FlushAll(); err != nil {
		return err
	}
	if err := fault.Eval(fault.CheckpointPreSave); err != nil {
		return err
	}

	// The checkpoint GSN horizon: everything at or below it is captured in
	// the image. Fast-forward every writer past it NOW, before the image
	// becomes durable, so each post-checkpoint record sorts strictly above
	// the horizon — that is what lets recovery drop still-on-disk WAL
	// records the checkpoint already covers when a crash lands between the
	// checkpoint rename and the WAL truncation. (Without the fast-forward,
	// a writer whose private GSN clock lagged the horizon could log
	// post-checkpoint records below it.)
	cpGSN := e.WAL.MaxGSN()
	for i := 0; i < e.WAL.NumWriters(); i++ {
		e.WAL.Writer(i).AdvanceGSN(cpGSN)
	}

	// Cold-tier durability rides the checkpoint: segments already live in
	// the append-only block file, so syncing it and then committing a
	// manifest naming the current segment set makes the cold directory
	// crash-consistent. The manifest is an immutable epoch-named file; the
	// checkpoint image records (epoch, crc) and the image's atomic rename
	// below is the manifest swap commit point — a crash anywhere before it
	// leaves the previous checkpoint and its manifest epoch authoritative.
	if err := e.bf.Sync(); err != nil {
		return err
	}
	tables := e.Tables()
	manifest := &frozen.Manifest{Epoch: e.coldEpoch.Load() + 1}
	for _, t := range tables {
		manifest.Tables = append(manifest.Tables, frozen.TableManifest{
			Table:    t.Name,
			Segments: t.Frozen.Export(),
		})
	}
	manifestBytes := frozen.EncodeManifest(manifest)
	manifestCRC := crc32.ChecksumIEEE(manifestBytes)
	if err := e.writeColdManifest(manifest.Epoch, manifestBytes); err != nil {
		return err
	}

	w := &cpWriter{}
	w.u32(checkpointMagic)
	w.u32(checkpointVersion)
	w.u64(cpGSN)
	w.u64(e.Mgr.Clock.Now())
	w.u64(manifest.Epoch)
	w.u32(manifestCRC)
	w.u32(uint32(len(tables)))
	for _, t := range tables {
		w.bytes([]byte(t.Name))
		w.u32(t.ID)
		images, nextRID, maxFrozen, err := t.Store.ExportImages(nil)
		if err != nil {
			return fmt.Errorf("core: checkpoint table %q: %w", t.Name, err)
		}
		w.u64(nextRID)
		w.u64(maxFrozen)
		w.u32(uint32(len(images)))
		for _, im := range images {
			w.u64(uint64(im.FirstRID))
			w.bytes(im.Img)
		}
	}
	w.u32(crc32.ChecksumIEEE(w.buf))

	// Durable write: temp file, fsync, atomic rename, then log truncation.
	tmp := e.checkpointPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(w.buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Checkpoint images go to disk outside the page/block files, but they
	// are data writes all the same — Exp 3/4's write volumes must see them.
	e.IO.DataWrite.Add(int64(len(w.buf)))
	if err := os.Rename(tmp, e.checkpointPath()); err != nil {
		return err
	}
	if err := fault.Eval(fault.CheckpointPostSave); err != nil {
		return err
	}
	e.lastCpGSN.Store(cpGSN)
	e.coldEpoch.Store(manifest.Epoch)
	e.stats.Checkpoints.Add(1)
	e.gcColdManifests(manifest.Epoch)
	// Archive ordering: the archiver must copy (and make durable) every
	// remaining WAL byte before truncation destroys it. A seal failure
	// aborts the truncation, not the checkpoint — the image is already
	// durable, recovery drops records at or below cpGSN, and the next
	// checkpoint retries the seal over the same (longer) log.
	if e.archiver != nil {
		if err := e.archiver.Seal(cpGSN); err != nil {
			return fmt.Errorf("core: checkpoint kept WAL (archive seal failed): %w", err)
		}
	}
	if err := fault.Eval(fault.CheckpointPreTruncate); err != nil {
		return err
	}
	return e.WAL.Truncate()
}

// loadColdManifest reads the manifest epoch a checkpoint references,
// verifies it byte-for-byte against the recorded CRC, and rebuilds each
// table's segment directory.
func (e *Engine) loadColdManifest(epoch uint64, wantCRC uint32) error {
	e.coldEpoch.Store(epoch)
	if epoch == 0 {
		return nil
	}
	data, err := os.ReadFile(e.coldManifestPath(epoch))
	if err != nil {
		return fmt.Errorf("core: cold manifest epoch %d: %w", epoch, err)
	}
	if crc := crc32.ChecksumIEEE(data); crc != wantCRC {
		return fmt.Errorf("core: cold manifest epoch %d CRC %#x, checkpoint says %#x", epoch, crc, wantCRC)
	}
	m, err := frozen.DecodeManifest(data)
	if err != nil {
		return err
	}
	if m.Epoch != epoch {
		return fmt.Errorf("core: cold manifest file epoch %d, checkpoint says %d", m.Epoch, epoch)
	}
	for _, tm := range m.Tables {
		if len(tm.Segments) == 0 {
			continue
		}
		t, terr := e.Table(tm.Table)
		if terr != nil {
			return fmt.Errorf("core: cold manifest references undeclared table %q", tm.Table)
		}
		if err := t.Frozen.Import(tm.Segments); err != nil {
			return err
		}
	}
	return nil
}

// ReadColdManifestRefFromImage extracts the cold manifest (epoch, crc)
// reference from an encoded checkpoint image. Base backups use it to copy
// the exact manifest the captured image names.
func ReadColdManifestRefFromImage(data []byte) (epoch uint64, crc uint32, err error) {
	if len(data) < 4 {
		return 0, 0, fmt.Errorf("core: checkpoint too short")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, 0, fmt.Errorf("core: checkpoint checksum mismatch")
	}
	r := &cpReader{buf: body}
	if r.u32() != checkpointMagic {
		return 0, 0, fmt.Errorf("core: bad checkpoint magic")
	}
	if v := r.u32(); r.err == nil && v != checkpointVersion {
		return 0, 0, fmt.Errorf("core: unsupported checkpoint version %d", v)
	}
	r.u64() // cpGSN
	r.u64() // clock
	epoch = r.u64()
	crc = r.u32()
	if r.err != nil {
		return 0, 0, r.err
	}
	return epoch, crc, nil
}

// ReadCheckpointGSNFromImage extracts the GSN horizon from an encoded
// checkpoint image without loading it into an engine. Base backups use it
// so the recorded horizon always describes the exact image bytes captured,
// even if the engine checkpointed again mid-copy.
func ReadCheckpointGSNFromImage(data []byte) (uint64, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("core: checkpoint too short")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, fmt.Errorf("core: checkpoint checksum mismatch")
	}
	r := &cpReader{buf: body}
	if r.u32() != checkpointMagic {
		return 0, fmt.Errorf("core: bad checkpoint magic")
	}
	if v := r.u32(); r.err == nil && v != checkpointVersion {
		return 0, fmt.Errorf("core: unsupported checkpoint version %d", v)
	}
	g := r.u64()
	if r.err != nil {
		return 0, r.err
	}
	return g, nil
}

// loadCheckpoint restores tables from the newest checkpoint, if one
// exists; returns whether one was loaded and the checkpoint's GSN horizon
// (every change at or below it is contained in the image). Tables must be
// declared (by the same names) before calling.
func (e *Engine) loadCheckpoint() (bool, uint64, error) {
	data, err := os.ReadFile(e.checkpointPath())
	if os.IsNotExist(err) {
		return false, 0, nil
	}
	if err != nil {
		return false, 0, err
	}
	if len(data) < 4 {
		return false, 0, fmt.Errorf("core: checkpoint too short")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return false, 0, fmt.Errorf("core: checkpoint checksum mismatch")
	}
	r := &cpReader{buf: body}
	if r.u32() != checkpointMagic {
		return false, 0, fmt.Errorf("core: bad checkpoint magic")
	}
	if v := r.u32(); v != checkpointVersion {
		return false, 0, fmt.Errorf("core: unsupported checkpoint version %d", v)
	}
	maxGSN := r.u64()
	cpTS := r.u64()
	manifestEpoch := r.u64()
	manifestCRC := r.u32()
	numTables := int(r.u32())
	for i := 0; i < numTables && r.err == nil; i++ {
		name := string(r.bytes())
		r.u32() // table id recorded for diagnostics; matching is by name
		t, terr := e.Table(name)
		if terr != nil {
			return false, 0, fmt.Errorf("core: checkpoint references undeclared table %q", name)
		}
		nextRID := r.u64()
		maxFrozen := r.u64()
		numPages := int(r.u32())
		images := make([]table.PageImage, 0, numPages)
		for p := 0; p < numPages && r.err == nil; p++ {
			first := rel.RowID(r.u64())
			img := append([]byte(nil), r.bytes()...)
			images = append(images, table.PageImage{FirstRID: first, Img: img})
		}
		if r.err == nil {
			if err := t.Store.ImportImages(images, nextRID, maxFrozen); err != nil {
				return false, 0, err
			}
		}
	}
	if r.err != nil {
		return false, 0, r.err
	}
	if err := e.loadColdManifest(manifestEpoch, manifestCRC); err != nil {
		return false, 0, err
	}
	e.Mgr.Clock.AdvanceTo(cpTS + 1)
	for i := 0; i < e.WAL.NumWriters(); i++ {
		e.WAL.Writer(i).AdvanceGSN(maxGSN)
	}
	e.lastCpGSN.Store(maxGSN)
	return true, maxGSN, nil
}
