package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"phoebedb/internal/lock"
	"phoebedb/internal/rel"
	"phoebedb/internal/txn"
)

func accountSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "owner", Type: rel.TString},
		rel.Column{Name: "balance", Type: rel.TFloat64},
	)
}

func openTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Slots == 0 {
		cfg.Slots = 8
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func setupAccounts(t *testing.T, e *Engine) {
	t.Helper()
	if _, err := e.CreateTable("accounts", accountSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("accounts", "accounts_owner", []string{"owner"}, false); err != nil {
		t.Fatal(err)
	}
}

func acct(id int, owner string, bal float64) rel.Row {
	return rel.Row{rel.Int(int64(id)), rel.Str(owner), rel.Float(bal)}
}

func begin(e *Engine, slot int) *Tx { return e.Begin(slot, txn.ReadCommitted, nil, nil, nil) }

func TestInsertGetCommit(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	rid, err := tx.Insert("accounts", acct(1, "alice", 100))
	if err != nil {
		t.Fatal(err)
	}
	// Own write visible before commit.
	row, ok, err := tx.Get("accounts", rid)
	if err != nil || !ok || row[2].F != 100 {
		t.Fatalf("own read = (%v,%v,%v)", row, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := begin(e, 1)
	row, ok, err = tx2.Get("accounts", rid)
	if err != nil || !ok || !row.Equal(acct(1, "alice", 100)) {
		t.Fatalf("post-commit read = (%v,%v,%v)", row, ok, err)
	}
	tx2.Rollback()
}

func TestUncommittedInvisible(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	r := begin(e, 1)
	if _, ok, _ := r.Get("accounts", rid); ok {
		t.Fatal("uncommitted insert visible to other txn")
	}
	w.Commit()
	// Read committed: next statement sees it.
	if _, ok, _ := r.Get("accounts", rid); !ok {
		t.Fatal("committed insert invisible under read committed")
	}
	r.Rollback()
}

func TestRepeatableReadPinsSnapshot(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()

	rr := e.Begin(1, txn.RepeatableRead, nil, nil, nil)
	row, _, _ := rr.Get("accounts", rid)
	if row[2].F != 100 {
		t.Fatalf("initial read = %v", row)
	}
	u := begin(e, 2)
	if err := u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(500)}); err != nil {
		t.Fatal(err)
	}
	u.Commit()
	// RR still sees the old version.
	row, _, _ = rr.Get("accounts", rid)
	if row[2].F != 100 {
		t.Fatalf("repeatable read drifted: %v", row)
	}
	rr.Rollback()
	// RC sees the new version.
	rc := begin(e, 1)
	row, _, _ = rc.Get("accounts", rid)
	if row[2].F != 500 {
		t.Fatalf("read committed = %v", row)
	}
	rc.Rollback()
}

func TestUpdateRollbackRestores(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()

	u := begin(e, 0)
	u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(999), "owner": rel.Str("mallory")})
	u.Rollback()

	r := begin(e, 1)
	row, ok, _ := r.Get("accounts", rid)
	if !ok || !row.Equal(acct(1, "alice", 100)) {
		t.Fatalf("rollback did not restore: %v", row)
	}
	r.Rollback()
}

func TestInsertRollbackRemovesRowAndIndexEntries(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(7, "ghost", 1))
	w.Rollback()

	r := begin(e, 1)
	if _, ok, _ := r.Get("accounts", rid); ok {
		t.Fatal("rolled-back insert still readable")
	}
	if _, _, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(7)); found {
		t.Fatal("rolled-back insert found via index")
	}
	r.Rollback()
	// The unique slot must be reusable.
	w2 := begin(e, 0)
	if _, err := w2.Insert("accounts", acct(7, "real", 2)); err != nil {
		t.Fatalf("reinsert after rollback: %v", err)
	}
	w2.Commit()
}

func TestDeleteAndVisibility(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()

	rr := e.Begin(1, txn.RepeatableRead, nil, nil, nil)
	rr.Get("accounts", rid) // pin snapshot

	d := begin(e, 2)
	if err := d.Delete("accounts", rid); err != nil {
		t.Fatal(err)
	}
	d.Commit()

	// Old snapshot still sees the row (time travel over the delete).
	row, ok, _ := rr.Get("accounts", rid)
	if !ok || row[2].F != 100 {
		t.Fatalf("old snapshot lost deleted row: (%v,%v)", row, ok)
	}
	rr.Rollback()

	r := begin(e, 1)
	if _, ok, _ := r.Get("accounts", rid); ok {
		t.Fatal("deleted row visible to new txn")
	}
	r.Rollback()
}

func TestDeleteRollback(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()
	d := begin(e, 0)
	d.Delete("accounts", rid)
	d.Rollback()
	r := begin(e, 1)
	if _, ok, _ := r.Get("accounts", rid); !ok {
		t.Fatal("rolled-back delete lost the row")
	}
	r.Rollback()
}

func TestUniqueConstraint(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()
	d := begin(e, 0)
	if _, err := d.Insert("accounts", acct(1, "bob", 50)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
	d.Rollback()
	// After deleting and GC-ing, the key can be reused even before GC
	// thanks to the visibility-checked unique probe.
	del := begin(e, 0)
	_, _, _, _ = del.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	rid, _, found, _ := del.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if !found {
		t.Fatal("setup row missing")
	}
	del.Delete("accounts", rid)
	del.Commit()
	re := begin(e, 0)
	if _, err := re.Insert("accounts", acct(1, "carol", 7)); err != nil {
		t.Fatalf("reuse of deleted unique key: %v", err)
	}
	re.Commit()
}

func TestIndexScanAndPointLookup(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 1; i <= 10; i++ {
		owner := "alice"
		if i%2 == 0 {
			owner = "bob"
		}
		w.Insert("accounts", acct(i, owner, float64(i)))
	}
	w.Commit()

	r := begin(e, 1)
	_, row, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(5))
	if err != nil || !found || row[1].S != "alice" {
		t.Fatalf("pk lookup = (%v,%v,%v)", row, found, err)
	}
	var bobs []int64
	err = r.ScanIndex("accounts", "accounts_owner", []rel.Value{rel.Str("bob")}, func(rid rel.RowID, row rel.Row) bool {
		bobs = append(bobs, row[0].I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bobs) != 5 {
		t.Fatalf("bob scan = %v", bobs)
	}
	// Missing key.
	if _, _, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(99)); found {
		t.Fatal("missing key found")
	}
	r.Rollback()
}

func TestScanTableVisibility(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 1; i <= 5; i++ {
		w.Insert("accounts", acct(i, "x", float64(i)))
	}
	w.Commit()
	// One uncommitted extra row must not appear in another txn's scan.
	w2 := begin(e, 0)
	w2.Insert("accounts", acct(6, "hidden", 0))

	r := begin(e, 1)
	count := 0
	r.ScanTable("accounts", func(rid rel.RowID, row rel.Row) bool {
		count++
		return true
	})
	if count != 5 {
		t.Fatalf("scan saw %d rows, want 5", count)
	}
	r.Rollback()
	w2.Rollback()
}

func TestWriteConflictWaitReadCommitted(t *testing.T) {
	e := openTestEngine(t, Config{LockTimeout: 2 * time.Second})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()

	t1 := begin(e, 0)
	if err := t1.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(150)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		t2 := begin(e, 1)
		if err := t2.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(200)}); err != nil {
			done <- err
			return
		}
		done <- t2.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer did not wait: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	r := begin(e, 2)
	row, _, _ := r.Get("accounts", rid)
	if row[2].F != 200 {
		t.Fatalf("final balance = %v", row[2])
	}
	r.Rollback()
}

func TestWriteConflictTimeout(t *testing.T) {
	e := openTestEngine(t, Config{LockTimeout: 50 * time.Millisecond})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()
	t1 := begin(e, 0)
	t1.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(1)})
	t2 := begin(e, 1)
	err := t2.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(2)})
	if !errors.Is(err, lock.ErrLockTimeout) {
		t.Fatalf("err = %v", err)
	}
	t2.Rollback()
	t1.Commit()
}

func TestRepeatableReadWriteConflictAborts(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()

	rr := e.Begin(1, txn.RepeatableRead, nil, nil, nil)
	rr.Get("accounts", rid) // pin snapshot

	u := begin(e, 0)
	u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(2)})
	u.Commit()

	err := rr.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(3)})
	if !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("err = %v", err)
	}
	rr.Rollback()
}

func TestGCRemovesDeletedTuplesAndIndexEntries(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "alice", 100))
	w.Commit()
	d := begin(e, 0)
	d.Delete("accounts", rid)
	d.Commit()
	e.CollectGarbage()
	// After GC the tuple and its index entries are physically gone.
	tbl, _ := e.Table("accounts")
	r := begin(e, 1)
	if _, ok, _ := r.Get("accounts", rid); ok {
		t.Fatal("row visible after GC")
	}
	if _, _, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(1)); found {
		t.Fatal("index entry survives GC")
	}
	r.Rollback()
	if tbl.Index("accounts_pk").Tree.Len() != 0 {
		t.Fatalf("pk tree has %d entries after GC", tbl.Index("accounts_pk").Tree.Len())
	}
}

func TestCommitPersistsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, WALSync: false, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	setup := func(e *Engine) {
		e.CreateTable("accounts", accountSchema())
		e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true)
	}
	setup(e)
	var committedRID, updatedRID rel.RowID
	w := begin(e, 0)
	committedRID, _ = w.Insert("accounts", acct(1, "alice", 100))
	updatedRID, _ = w.Insert("accounts", acct(2, "bob", 50))
	w.Commit()
	u := begin(e, 1)
	u.Update("accounts", updatedRID, map[string]rel.Value{"balance": rel.Float(75)})
	u.Commit()
	d := begin(e, 2)
	d.Delete("accounts", committedRID)
	d.Commit()
	// An uncommitted transaction's changes must not survive.
	loser := begin(e, 3)
	loser.Insert("accounts", acct(3, "ghost", 9))
	// Simulate crash: flush nothing further, just drop the engine.
	e.WAL.FlushAll() // the committed work is already flushed by commits
	e.Close()

	e2, err := Open(Config{Dir: dir, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	setup(e2)
	n, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	r := begin(e2, 0)
	if _, ok, _ := r.Get("accounts", committedRID); ok {
		t.Fatal("committed delete not replayed")
	}
	row, ok, _ := r.Get("accounts", updatedRID)
	if !ok || row[2].F != 75 {
		t.Fatalf("recovered update = (%v,%v)", row, ok)
	}
	if _, _, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(3)); found {
		t.Fatal("uncommitted insert recovered")
	}
	// Recovered index works.
	_, row, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(2))
	if !found || row[2].F != 75 {
		t.Fatalf("recovered index lookup = (%v,%v)", row, found)
	}
	r.Rollback()
	// New transactions keep working after recovery.
	w2 := begin(e2, 1)
	if _, err := w2.Insert("accounts", acct(4, "dave", 1)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeAndReadFrozen(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 4})
	setupAccounts(t, e)
	w := begin(e, 0)
	var rids []rel.RowID
	for i := 1; i <= 20; i++ {
		rid, _ := w.Insert("accounts", acct(i, "cold", float64(i)))
		rids = append(rids, rid)
	}
	w.Commit()
	e.CollectGarbage() // drop twins so pages are freezable
	// Cool all pages.
	tbl, _ := e.Table("accounts")
	for i := 0; i < 25; i++ {
		e.Pool.Maintain(0)
	}
	n, err := e.FreezeTables(3, 1<<20) // any hotness qualifies
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing frozen")
	}
	if tbl.Frozen.NumBlocks() == 0 || tbl.Store.MaxFrozenRowID() == 0 {
		t.Fatal("frozen bookkeeping missing")
	}
	// Frozen rows remain readable by rid and via index.
	r := begin(e, 1)
	row, ok, err := r.Get("accounts", rids[0])
	if err != nil || !ok || row[0].I != 1 {
		t.Fatalf("frozen get = (%v,%v,%v)", row, ok, err)
	}
	_, row, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(2))
	if err != nil || !found || row[2].F != 2 {
		t.Fatalf("frozen index get = (%v,%v,%v)", row, found, err)
	}
	// Full scans cover frozen + hot.
	count := 0
	r.ScanTable("accounts", func(rel.RowID, rel.Row) bool { count++; return true })
	if count != 20 {
		t.Fatalf("scan over frozen+hot = %d rows", count)
	}
	r.Rollback()
}

func TestUpdateFrozenRowWarmsIt(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 4})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 1; i <= 12; i++ {
		w.Insert("accounts", acct(i, "cold", float64(i)))
	}
	w.Commit()
	e.CollectGarbage()
	if _, err := e.FreezeTables(2, 1<<20); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("accounts")
	frontier := tbl.Store.MaxFrozenRowID()
	if frontier == 0 {
		t.Fatal("nothing frozen")
	}

	u := begin(e, 0)
	rid, _, found, err := u.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if err != nil || !found {
		t.Fatalf("frozen row not found: %v", err)
	}
	if err := u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(500)}); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}

	r := begin(e, 1)
	newRID, row, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if err != nil || !found || row[2].F != 500 {
		t.Fatalf("warmed row = (%v,%v,%v)", row, found, err)
	}
	if newRID <= frontier {
		t.Fatalf("warmed row kept frozen rid %d", newRID)
	}
	// The frozen copy is tombstoned.
	if _, ok, _ := r.Get("accounts", rid); ok {
		t.Fatal("frozen original still visible")
	}
	r.Rollback()
}

func TestUpdateFrozenRollbackRestoresFrozenCopy(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 4})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 1; i <= 12; i++ {
		w.Insert("accounts", acct(i, "cold", float64(i)))
	}
	w.Commit()
	e.CollectGarbage()
	e.FreezeTables(2, 1<<20)

	u := begin(e, 0)
	rid, _, found, _ := u.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if !found {
		t.Fatal("frozen row missing")
	}
	if err := u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(500)}); err != nil {
		t.Fatal(err)
	}
	u.Rollback()

	r := begin(e, 1)
	gotRID, row, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if err != nil || !found || row[2].F != 1 {
		t.Fatalf("after rollback = (%v,%v,%v)", row, found, err)
	}
	if gotRID != rid {
		t.Fatalf("rollback left rid %d, want frozen %d", gotRID, rid)
	}
	r.Rollback()
}

func TestEvictionUnderPressureKeepsCorrectness(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8, BufferBytes: 64 * 1024, PageSize: 8 * 1024})
	setupAccounts(t, e)
	w := begin(e, 0)
	const n = 400
	rids := make([]rel.RowID, n)
	for i := 0; i < n; i++ {
		rids[i], _ = w.Insert("accounts", acct(i, fmt.Sprintf("owner-%d", i), float64(i)))
	}
	w.Commit()
	e.CollectGarbage()
	for i := 0; i < 50; i++ {
		e.Pool.Maintain(0)
	}
	r := begin(e, 1)
	for i := 0; i < n; i += 17 {
		row, ok, err := r.Get("accounts", rids[i])
		if err != nil || !ok || row[0].I != int64(i) {
			t.Fatalf("row %d after eviction = (%v,%v,%v)", i, row, ok, err)
		}
	}
	r.Rollback()
}

func TestConcurrentTransfers(t *testing.T) {
	// Banking invariant: concurrent transfers preserve the total balance.
	e := openTestEngine(t, Config{Slots: 8, LockTimeout: 5 * time.Second})
	setupAccounts(t, e)
	const accounts = 10
	const initial = 1000.0
	w := begin(e, 0)
	rids := make([]rel.RowID, accounts)
	for i := 0; i < accounts; i++ {
		rids[i], _ = w.Insert("accounts", acct(i, "holder", initial))
	}
	w.Commit()

	const workers = 4
	const transfersPer = 100
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < transfersPer; i++ {
				from := rids[(slot+i)%accounts]
				to := rids[(slot+i+1)%accounts]
				if from == to {
					continue
				}
				for {
					tx := begin(e, slot)
					err := transfer(tx, from, to, 1)
					if err == nil {
						if err = tx.Commit(); err == nil {
							break
						}
					} else {
						tx.Rollback()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	r := begin(e, 7)
	var total float64
	r.ScanTable("accounts", func(rid rel.RowID, row rel.Row) bool {
		total += row[2].F
		return true
	})
	r.Rollback()
	if total != accounts*initial {
		t.Fatalf("total balance = %g, want %g (money created or destroyed)", total, accounts*initial)
	}
}

func transfer(tx *Tx, from, to rel.RowID, amount float64) error {
	// Atomic read-modify-writes: read committed permits lost updates with
	// the read-then-write pattern (as in PostgreSQL), so transfers use
	// Modify, the UPDATE ... RETURNING equivalent.
	if _, err := tx.Modify("accounts", from, func(cur rel.Row) (map[string]rel.Value, error) {
		return map[string]rel.Value{"balance": rel.Float(cur[2].F - amount)}, nil
	}); err != nil {
		return err
	}
	_, err := tx.Modify("accounts", to, func(cur rel.Row) (map[string]rel.Value, error) {
		return map[string]rel.Value{"balance": rel.Float(cur[2].F + amount)}, nil
	})
	return err
}

func TestTxnDoneErrors(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	tx.Commit()
	if _, err := tx.Insert("accounts", acct(1, "x", 1)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit err = %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("rollback-after-commit err = %v", err)
	}
}

func TestCatalogErrors(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	if _, err := e.CreateTable("accounts", accountSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := e.CreateIndex("accounts", "bad", []string{"nope"}, false); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("bad column err = %v", err)
	}
	if _, err := e.CreateIndex("missing", "x", []string{"id"}, false); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("bad table err = %v", err)
	}
	tx := begin(e, 0)
	defer tx.Rollback()
	if _, _, _, err := tx.GetByIndex("accounts", "nope", rel.Int(1)); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("bad index err = %v", err)
	}
	rid, err := tx.Insert("accounts", acct(9, "x", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", rid, map[string]rel.Value{"nope": rel.Int(1)}); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("bad update column err = %v", err)
	}
	if err := tx.Update("accounts", 9999, map[string]rel.Value{"balance": rel.Float(1)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing row update err = %v", err)
	}
}

func TestRFATracksRemoteDependencies(t *testing.T) {
	e := openTestEngine(t, Config{Slots: 4})
	setupAccounts(t, e)
	w := begin(e, 0)
	rid, _ := w.Insert("accounts", acct(1, "a", 1))
	w.Commit()
	// Slot 0 committed (and flushed). A write from slot 1 to the same page
	// sees a flushed remote stamp: no remote dependency.
	t1 := begin(e, 1)
	t1.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(2)})
	if t1.inner.NeedsRemoteFlush {
		t.Fatal("flushed remote write flagged as dependency")
	}
	t1.Commit()
	// Now slot 2 writes but does NOT commit (log unflushed), then slot 3
	// touches the same page: remote dependency.
	t2 := begin(e, 2)
	t2.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(3)})
	t3 := begin(e, 3)
	rid2, _ := t3.Insert("accounts", acct(2, "b", 1)) // same tail page
	_ = rid2
	if !t3.inner.NeedsRemoteFlush {
		t.Fatal("unflushed remote write not flagged")
	}
	if err := t3.Commit(); err != nil { // must trigger the remote wait path
		t.Fatal(err)
	}
	t2.Commit()
}

func TestMaintainWorkerRuns(t *testing.T) {
	e := openTestEngine(t, Config{BufferBytes: 1})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 0; i < 100; i++ {
		w.Insert("accounts", acct(i, "x", 1))
	}
	w.Commit()
	e.MaintainWorker(0) // must not panic and should reclaim undo records
	tbl, _ := e.Table("accounts")
	_ = tbl
	if e.Mgr.Arena(0).Live() != 0 {
		t.Fatalf("arena live = %d after maintain", e.Mgr.Arena(0).Live())
	}
}
