package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"phoebedb/internal/rel"
)

// reopenEngine closes e and opens a fresh engine on the same directory
// with the accounts schema declared.
func reopenEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(Config{Dir: dir, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.CreateTable("accounts", accountSchema())
	e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true)
	return e
}

func TestCheckpointBasicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.CreateTable("accounts", accountSchema())
	e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true)
	w := begin(e, 0)
	var rids []rel.RowID
	for i := 0; i < 50; i++ {
		rid, _ := w.Insert("accounts", acct(i, "cp", float64(i)))
		rids = append(rids, rid)
	}
	w.Commit()
	d := begin(e, 1)
	d.Delete("accounts", rids[7])
	d.Commit()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint work, to be replayed from the truncated WAL.
	u := begin(e, 2)
	u.Update("accounts", rids[3], map[string]rel.Value{"balance": rel.Float(333)})
	u.Insert("accounts", acct(100, "post-cp", 1))
	u.Commit()
	e.Close()

	e2 := reopenEngine(t, dir)
	n, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("post-checkpoint records not replayed")
	}
	r := begin(e2, 0)
	defer r.Rollback()
	row, ok, _ := r.Get("accounts", rids[3])
	if !ok || row[2].F != 333 {
		t.Fatalf("post-cp update lost: (%v,%v)", row, ok)
	}
	if _, ok, _ := r.Get("accounts", rids[7]); ok {
		t.Fatal("pre-cp delete resurrected")
	}
	if _, _, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(100)); !found {
		t.Fatal("post-cp insert lost")
	}
	// Index rebuilt over checkpointed rows too.
	if _, _, found, _ := r.GetByIndex("accounts", "accounts_pk", rel.Int(5)); !found {
		t.Fatal("checkpointed row missing from index")
	}
	count := 0
	r.ScanTable("accounts", func(rel.RowID, rel.Row) bool { count++; return true })
	if count != 50 { // 50 inserted - 1 deleted + 1 post-cp
		t.Fatalf("row count = %d, want 50", count)
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	e := openTestEngine(t, Config{})
	setupAccounts(t, e)
	tx := begin(e, 0)
	tx.Insert("accounts", acct(1, "x", 1))
	if err := e.Checkpoint(); !errors.Is(err, ErrActiveTransactions) {
		t.Fatalf("err = %v", err)
	}
	tx.Commit()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.CreateTable("accounts", accountSchema())
	w := begin(e, 0)
	for i := 0; i < 100; i++ {
		w.Insert("accounts", acct(i, "x", 1))
	}
	w.Commit()
	before := walBytes(t, dir)
	if before == 0 {
		t.Fatal("no WAL written")
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := walBytes(t, dir); after != 0 {
		t.Fatalf("WAL not truncated: %d bytes", after)
	}
}

func walBytes(t *testing.T, dir string) int64 {
	t.Helper()
	matches, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	var total int64
	for _, m := range matches {
		st, err := os.Stat(m)
		if err == nil {
			total += st.Size()
		}
	}
	return total
}

func TestCheckpointWithFrozenData(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, Slots: 4, PageCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.CreateTable("accounts", accountSchema())
	e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true)
	w := begin(e, 0)
	for i := 0; i < 20; i++ {
		w.Insert("accounts", acct(i, "cold", float64(i)))
	}
	w.Commit()
	e.CollectGarbage()
	if _, err := e.FreezeTables(3, 1<<20); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("accounts")
	frozenBlocks := tbl.Frozen.NumBlocks()
	if frozenBlocks == 0 {
		t.Fatal("nothing frozen")
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint: update a frozen row (warms it, logging a frozen
	// delete + hot insert that recovery must replay correctly).
	u := begin(e, 1)
	rid, _, found, _ := u.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if !found {
		t.Fatal("frozen row missing")
	}
	if err := u.Update("accounts", rid, map[string]rel.Value{"balance": rel.Float(777)}); err != nil {
		t.Fatal(err)
	}
	u.Commit()
	e.Close()

	e2, err := Open(Config{Dir: dir, Slots: 4, PageCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.CreateTable("accounts", accountSchema())
	e2.CreateIndex("accounts", "accounts_pk", []string{"id"}, true)
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	tbl2, _ := e2.Table("accounts")
	if tbl2.Frozen.NumBlocks() != frozenBlocks {
		t.Fatalf("frozen blocks = %d, want %d", tbl2.Frozen.NumBlocks(), frozenBlocks)
	}
	r := begin(e2, 0)
	defer r.Rollback()
	// The warmed row carries the post-cp update; the frozen copy is dead.
	_, row, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(1))
	if err != nil || !found || row[2].F != 777 {
		t.Fatalf("warmed row after recovery = (%v,%v,%v)", row, found, err)
	}
	// All 20 logical rows still exist exactly once.
	count := 0
	r.ScanTable("accounts", func(rel.RowID, rel.Row) bool { count++; return true })
	if count != 20 {
		t.Fatalf("row count = %d, want 20", count)
	}
	// Frozen reads still work for untouched rows.
	_, row, found, _ = r.GetByIndex("accounts", "accounts_pk", rel.Int(2))
	if !found || row[2].F != 2 {
		t.Fatalf("frozen row 2 = (%v,%v)", row, found)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.CreateTable("accounts", accountSchema())
	w := begin(e, 0)
	w.Insert("accounts", acct(1, "x", 1))
	w.Commit()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	// Corrupt a byte in the checkpoint body.
	path := filepath.Join(dir, "checkpoint.db")
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	e2, err := Open(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.CreateTable("accounts", accountSchema())
	if _, err := e2.Recover(); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestRepeatedCheckpoints(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.CreateTable("accounts", accountSchema())
	e.CreateIndex("accounts", "accounts_pk", []string{"id"}, true)
	for round := 0; round < 3; round++ {
		w := begin(e, 0)
		for i := 0; i < 10; i++ {
			w.Insert("accounts", acct(round*10+i, "r", float64(round)))
		}
		w.Commit()
		if err := e.Checkpoint(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	e.Close()
	e2 := reopenEngine(t, dir)
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	r := begin(e2, 0)
	defer r.Rollback()
	count := 0
	r.ScanTable("accounts", func(rel.RowID, rel.Row) bool { count++; return true })
	if count != 30 {
		t.Fatalf("rows = %d, want 30", count)
	}
	// New work continues after recovery from the latest checkpoint.
	w := begin(e2, 1)
	if _, err := w.Insert("accounts", acct(999, "new", 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}
