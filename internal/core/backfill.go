package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"phoebedb/internal/fault"
	"phoebedb/internal/lock"
	"phoebedb/internal/rel"
	"phoebedb/internal/table"
	"phoebedb/internal/txn"
	"phoebedb/internal/undo"
)

// Online CREATE INDEX (§5.1 extended): build a secondary index over a
// table that already holds data, without blocking writers. The index is
// never consulted by readers or the planner until it is complete.
//
// The build follows the online base backup's horizon trick, adapted to
// MVCC version chains:
//
//  1. Register the index hidden. From this point every writer maintains
//     it (Tbl.Indexes() includes hidden indexes), but Index.Live() is
//     false so resolveIndex and the SQL planner refuse to read it.
//  2. Raise the horizon: wait until every transaction that began before
//     registration has finished. Those writers may have captured the
//     index list from before step 1; once they are gone, every commit
//     newer than the backfill snapshot is guaranteed to carry its own
//     index maintenance.
//  3. Snapshot scan: one transaction walks the table and inserts an
//     entry for the version visible at its snapshot S.
//  4. Catch-up from version chains (non-unique only): the same scan also
//     walks each row's UNDO chain and inserts entries for every older
//     version's key, so a reader holding a snapshot < S still finds rows
//     whose key changed shortly before the scan. Non-unique keys carry a
//     row-id suffix and readers re-verify the indexed columns against the
//     visible row, so surplus historical entries are harmless.
//  5. Unique indexes cannot represent historical keys (no row-id suffix),
//     so instead of chain catch-up the build waits for the watermark to
//     pass S — afterwards no live snapshot predates the scan — and then
//     re-verifies that no two visible rows share a key (writers racing
//     the scan could each have passed their uniqueness check before
//     either entry existed).
//  6. Flip the index live.
//
// A crash mid-backfill is benign by construction: the build only mutates
// the in-memory B-tree, which is rebuilt from the WAL on recovery; the
// fault.SQLIndexBackfill failpoint in the scan loop lets the crash
// harness prove it.

// horizonWait bounds the backfill's wait for concurrent transactions to
// drain (steps 2 and 5 above). Generous: it only trips when a transaction
// runs for the whole window.
const horizonWait = 30 * time.Second

// errBackfillCrash marks an injected crash captured mid-scan; the scan
// re-panics once every latch is released.
var errBackfillCrash = errors.New("core: injected backfill crash")

// CreateIndexOnline builds an index over a table that may already hold
// data, concurrently with writers. run must execute its argument inside a
// fresh transaction (committing on nil return); the engine owner supplies
// it so the backfill rides whatever scheduling the host uses (DB.Execute
// submits to the co-routine pool). On any error the half-built index is
// dropped and never becomes visible.
func (e *Engine) CreateIndexOnline(tableName, indexName string, cols []string, unique bool,
	run func(fn func(tx *Tx) error) error) (*Index, error) {

	t, err := e.Table(tableName)
	if err != nil {
		return nil, err
	}
	ix, err := e.registerIndex(t, indexName, cols, unique, true)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Index, error) {
		e.dropIndex(t, indexName)
		return nil, err
	}

	// Step 2: wait out every transaction that predates registration.
	regTS := e.Mgr.Clock.Now()
	if !waitUntil(func() bool { return e.Mgr.MinActiveStartTS() > regTS }) {
		return fail(fmt.Errorf("core: index backfill on %q: timed out waiting for pre-registration transactions", tableName))
	}

	// Steps 3+4: snapshot scan with version-chain catch-up.
	var snap uint64
	if err := run(func(tx *Tx) error { return tx.backfillIndex(t, ix, &snap) }); err != nil {
		return fail(err)
	}

	if unique {
		// Step 5: wait until no live snapshot predates the scan, then
		// verify uniqueness across the rows visible now.
		if !waitUntil(func() bool { return e.Mgr.RefreshWatermark() > snap }) {
			return fail(fmt.Errorf("core: index backfill on %q: timed out waiting for pre-scan snapshots", tableName))
		}
		if err := run(func(tx *Tx) error { return tx.verifyUniqueBackfill(t, ix) }); err != nil {
			return fail(err)
		}
	}

	ix.hidden.Store(false)
	return ix, nil
}

// waitUntil polls cond (which must become true once concurrent
// transactions finish) up to horizonWait.
func waitUntil(cond func() bool) bool {
	deadline := time.Now().Add(horizonWait)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// backfillIndex is the scan transaction of CreateIndexOnline: it inserts
// an entry for every version of every row that some live or future
// snapshot could still see, and reports the statement snapshot so the
// caller can wait it out for unique builds.
func (tx *Tx) backfillIndex(t *Tbl, ix *Index, snapOut *uint64) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return err
	}
	snapshot := tx.inner.Snapshot()
	*snapOut = snapshot
	xid := tx.XID()
	wm := tx.e.Mgr.Watermark()

	rows := 0
	// An injected crash (panic action) must not unwind while the scan
	// holds a page latch — the simulated "dead" process shares the
	// address space with the still-live workload, and a leaked latch
	// would deadlock it. Capture the crash here and re-throw it after
	// the scan has released everything.
	var crash any
	checkFault := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if !fault.IsCrash(r) {
					panic(r)
				}
				crash = r
				err = errBackfillCrash
			}
		}()
		return fault.Eval(fault.SQLIndexBackfill)
	}
	entry := func(row rel.Row, rid rel.RowID) error {
		if err := checkFault(); err != nil {
			return fmt.Errorf("core: index backfill on %q: %w", t.Name, err)
		}
		if ix.Unique {
			if err := claimUniqueEntry(tx, t, ix, row, rid); err != nil {
				return err
			}
		} else {
			ix.Tree.Insert(indexKey(ix, row, rid), uint64(rid))
		}
		rows++
		return nil
	}

	// Frozen rows are globally visible and have no version chains.
	var ferr error
	if err := t.Frozen.ScanLive(func(rid rel.RowID, row rel.Row) bool {
		ferr = entry(row, rid)
		return ferr == nil
	}); err != nil {
		return err
	}
	if crash != nil {
		panic(crash)
	}
	if ferr != nil {
		return ferr
	}

	// Hot/cold pages: tombstones flow through too — a recently deleted
	// row may still be visible to old snapshots via its chain.
	var serr error
	err := t.Store.ScanAll(&tx.tctx, func(rid rel.RowID, row rel.Row, h *table.Handle) bool {
		var head *undo.Record
		if tt := h.TwinTable(false); tt != nil {
			head = tt.Head(rid)
		}
		if ix.Unique {
			// Unique: index exactly the version visible at S. The
			// visibility check may rewrite the scratch row in place.
			visRow, ok := txn.ReadVisibleAt(head, snapshot, xid, wm, row, h.Deleted(), true, &tx.vis)
			if !ok {
				return true
			}
			serr = entry(visRow, rid)
		} else {
			// Non-unique: index every version's key, newest to oldest
			// (catch-up). Re-inserting an unchanged key is a no-op.
			if !h.Deleted() {
				if serr = entry(row, rid); serr != nil {
					return false
				}
			} else if head == nil {
				return true // long-dead tombstone: no snapshot sees it
			}
			for rec := head; rec != nil && serr == nil; rec = rec.Prev {
				switch rec.Op {
				case undo.OpInsert:
					return true // row did not exist before this
				case undo.OpUpdate:
					for _, cv := range rec.Delta {
						row[cv.Col] = cv.Val
					}
					serr = entry(row, rid)
				case undo.OpDelete:
					// Before image: the row existed with current values.
					serr = entry(row, rid)
				}
			}
		}
		return serr == nil
	})
	tx.e.stats.IndexBackfillRows.Add(int64(rows))
	if crash != nil {
		panic(crash)
	}
	if err != nil {
		return err
	}
	return serr
}

// claimUniqueEntry inserts a unique-index entry for row rid during
// backfill, detecting rows that already held the same key before the
// index existed. An entry claimed by a concurrent writer whose row still
// carries the key is a genuine duplicate; a stale claim (the other row's
// visible version moved off the key, or the row died) is overwritten.
func claimUniqueEntry(tx *Tx, t *Tbl, ix *Index, row rel.Row, rid rel.RowID) error {
	k := indexKey(ix, row, rid)
	if other, found := ix.Tree.Lookup(k); found && rel.RowID(other) != rid {
		otherRow, visible, err := tx.readRow(t, rel.RowID(other))
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		if visible && indexColsEqual(ix, row, otherRow) {
			return fmt.Errorf("%w: index %q (existing rows)", ErrDuplicate, ix.Name)
		}
	}
	ix.Tree.Insert(k, uint64(rid))
	return nil
}

// indexColsEqual reports whether two full-width rows agree on the index
// columns.
func indexColsEqual(ix *Index, a, b rel.Row) bool {
	for _, c := range ix.Cols {
		if !a[c].Equal(b[c]) {
			return false
		}
	}
	return true
}

// verifyUniqueBackfill is the post-watermark uniqueness check of a unique
// online build: no two rows visible at this transaction's snapshot may
// share a key, and every visible row must own its tree entry. It closes
// the race where two concurrent inserts of the same key each passed their
// uniqueness check before either tree entry existed.
func (tx *Tx) verifyUniqueBackfill(t *Tbl, ix *Index) error {
	type keyed struct {
		key []byte
		rid rel.RowID
	}
	var all []keyed
	if err := tx.ScanTable(t.Name, func(rid rel.RowID, row rel.Row) bool {
		all = append(all, keyed{key: indexKey(ix, row, rid), rid: rid})
		return true
	}); err != nil {
		return err
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].key, all[j].key) < 0 })
	for i, kr := range all {
		if i > 0 && bytes.Equal(kr.key, all[i-1].key) {
			return fmt.Errorf("%w: index %q (existing rows)", ErrDuplicate, ix.Name)
		}
		// Repair entries lost to the register/scan race: the visible row
		// is the unique key's rightful owner.
		if owner, found := ix.Tree.Lookup(kr.key); !found || rel.RowID(owner) != kr.rid {
			ix.Tree.Insert(kr.key, uint64(kr.rid))
		}
	}
	return nil
}
