package core

import (
	"time"

	"phoebedb/internal/clock"
	"phoebedb/internal/lock"
	"phoebedb/internal/metrics"
	"phoebedb/internal/pax"
	"phoebedb/internal/rel"
	"phoebedb/internal/table"
	"phoebedb/internal/txn"
)

// Vectorized table scans (§5.2): predicates on fixed-width columns
// evaluate column-at-a-time against PAX minipage bytes into a selection
// bitmap, so rows failing the filter are never materialized. MVCC
// qualification happens page-at-a-time first: slots whose newest version
// is visible by the watermark (or snapshot) short-circuit join the batch
// path; only the residue — slots with in-flight or post-snapshot writers —
// falls back to a per-row chain walk.

// VectorizedScanEnabled reports whether batch scans may run. The path
// builds on the watermark read fast path, so either ablation flag turns it
// off (implements the sql layer's VectorizedTxn).
func (tx *Tx) VectorizedScanEnabled() bool {
	return !tx.e.cfg.DisableVectorizedScan && !tx.e.cfg.DisableReadFastPath
}

// qualifyPage partitions a page's slots for this transaction's snapshot:
// bits left set in sel are slots whose current page bytes are the visible
// version (tombstones honored); returned residue slots need a chain walk.
// Caller holds the page's shared latch via ScanPages.
func (tx *Tx) qualifyPage(v table.PageView, snapshot, wm uint64, sel pax.Sel, residue []int) []int {
	pl := v.Pl
	if v.Twin == nil {
		// No version chains anywhere on the page: current versions are
		// globally visible, tombstones invisible to everyone.
		for i, d := range pl.Deleted {
			if d {
				sel.Clear(i)
			}
		}
		return residue
	}
	for i, rid := range pl.IDs {
		head := v.Twin.Head(rid)
		if head == nil || head.Reclaimed() {
			if pl.Deleted[i] {
				sel.Clear(i)
			}
			continue
		}
		if ets := head.ETS(); !clock.IsXID(ets) && (ets < wm || ets <= snapshot) {
			if ets < wm {
				tx.vis.Fast++
			}
			if pl.Deleted[i] {
				sel.Clear(i)
			}
			continue
		}
		sel.Clear(i)
		residue = append(residue, i)
	}
	return residue
}

// evalPreds applies the predicates to a materialized row (residue and
// frozen-layer rows, which bypass the batch filter).
func evalPreds(preds []rel.ColPred, row rel.Row) bool {
	for _, p := range preds {
		if !p.EvalRow(row) {
			return false
		}
	}
	return true
}

// ScanTableFiltered invokes fn for every visible row satisfying all
// predicates, with the filter evaluated batch-at-a-time against minipage
// bytes (implements the sql layer's VectorizedTxn). Every predicate column
// must be fixed-width — the SQL planner guarantees it. The borrowed-row
// contract of ScanTable applies.
func (tx *Tx) ScanTableFiltered(tableName string, preds []rel.ColPred, fn func(rid rel.RowID, row rel.Row) bool) error {
	if err := tx.stmt(); err != nil {
		return err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return err
	}
	// Frozen rows are immutable and globally visible, so the cold tier
	// runs the same column-strip filter as the hot path: segments stream
	// decompressed blocks (zone maps prune segments the predicates
	// refute), FilterFixed narrows the live-row bitmap, and only
	// qualifying rows materialize.
	stop := false
	var frozenBuf rel.Row
	var ferr2 error
	if err := t.Frozen.ScanBlocks(preds, func(ids []rel.RowID, page *pax.Page, fsel pax.Sel) bool {
		if ferr2 = page.FilterFixed(preds, fsel); ferr2 != nil {
			return false
		}
		if frozenBuf == nil {
			frozenBuf = make(rel.Row, t.Schema.NumCols())
		}
		cont := true
		fsel.ForEach(func(i int) bool {
			page.ReadRowInto(i, frozenBuf)
			cont = fn(ids[i], frozenBuf)
			return cont
		})
		if !cont {
			stop = true
		}
		return cont
	}); err != nil {
		return err
	}
	if ferr2 != nil {
		return ferr2
	}
	if stop {
		return nil
	}
	snapshot := tx.inner.Snapshot()
	xid := tx.XID()
	wm := tx.e.Mgr.Watermark()
	buf := make(rel.Row, t.Schema.NumCols())
	var sel pax.Sel
	var residue []int
	var ferr error
	serr := t.Store.ScanPages(&tx.tctx, func(v table.PageView) bool {
		start := time.Now()
		pl := v.Pl
		sel = sel.Reset(len(pl.IDs))
		residue = tx.qualifyPage(v, snapshot, wm, sel, residue[:0])
		if ferr = pl.Rows.FilterFixed(preds, sel); ferr != nil {
			return false
		}
		tx.track(metrics.CompMVCC, start)
		cont := true
		sel.ForEach(func(i int) bool {
			pl.Rows.ReadRowInto(i, buf)
			cont = fn(pl.IDs[i], buf)
			return cont
		})
		if !cont {
			return false
		}
		for _, i := range residue {
			mvccStart := time.Now()
			pl.Rows.ReadRowInto(i, buf)
			row, ok := txn.ReadVisibleAt(v.Twin.Head(pl.IDs[i]), snapshot, xid, wm,
				buf, pl.Deleted[i], true, &tx.vis)
			tx.track(metrics.CompMVCC, mvccStart)
			if !ok || !evalPreds(preds, row) {
				continue
			}
			if !fn(pl.IDs[i], row) {
				return false
			}
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	return serr
}

// AggTableFiltered computes pushed-down aggregates over the qualifying
// rows without materializing them: qualification and filtering as in
// ScanTableFiltered, then each aggregate folds directly over its column
// strip. Returns one value per spec plus the qualifying row count (vals
// are meaningless when n is 0).
func (tx *Tx) AggTableFiltered(tableName string, preds []rel.ColPred, specs []rel.AggSpec) ([]rel.Value, int64, error) {
	if err := tx.stmt(); err != nil {
		return nil, 0, err
	}
	t, err := tx.e.Table(tableName)
	if err != nil {
		return nil, 0, err
	}
	if err := tx.lockTable(t, lock.ModeIS); err != nil {
		return nil, 0, err
	}
	agg := pax.NewAggState(specs)
	// Cold segments fold aggregates directly over their decompressed
	// column strips — no row materialization, same as the hot batch path.
	var ferr2 error
	if err := t.Frozen.ScanBlocks(preds, func(ids []rel.RowID, page *pax.Page, fsel pax.Sel) bool {
		if ferr2 = page.FilterFixed(preds, fsel); ferr2 != nil {
			return false
		}
		if ferr2 = agg.Fold(page, fsel); ferr2 != nil {
			return false
		}
		return true
	}); err != nil {
		return nil, 0, err
	}
	if ferr2 != nil {
		return nil, 0, ferr2
	}
	snapshot := tx.inner.Snapshot()
	xid := tx.XID()
	wm := tx.e.Mgr.Watermark()
	buf := make(rel.Row, t.Schema.NumCols())
	var sel pax.Sel
	var residue []int
	var ferr error
	serr := t.Store.ScanPages(&tx.tctx, func(v table.PageView) bool {
		start := time.Now()
		pl := v.Pl
		sel = sel.Reset(len(pl.IDs))
		residue = tx.qualifyPage(v, snapshot, wm, sel, residue[:0])
		if ferr = pl.Rows.FilterFixed(preds, sel); ferr != nil {
			return false
		}
		if ferr = agg.Fold(pl.Rows, sel); ferr != nil {
			return false
		}
		for _, i := range residue {
			pl.Rows.ReadRowInto(i, buf)
			row, ok := txn.ReadVisibleAt(v.Twin.Head(pl.IDs[i]), snapshot, xid, wm,
				buf, pl.Deleted[i], true, &tx.vis)
			if ok && evalPreds(preds, row) {
				agg.FoldRow(row)
			}
		}
		tx.track(metrics.CompMVCC, start)
		return true
	})
	if ferr != nil {
		return nil, 0, ferr
	}
	if serr != nil {
		return nil, 0, serr
	}
	vals := make([]rel.Value, len(specs))
	for si, sp := range specs {
		ct := rel.TInt64
		if sp.Op != rel.AggOpCount {
			ct = t.Schema.Cols[sp.Col].Type
		}
		vals[si] = agg.Result(si, ct)
	}
	return vals, agg.N(), nil
}
