// Package core assembles PhoebeDB's kernel (§4): the temperature-layered
// storage engine, MVCC transaction management with in-memory UNDO, the
// decentralized lock manager, the parallel WAL with Remote Flush Avoidance,
// and the maintenance duties (page swap, garbage collection, freezing)
// that the co-routine scheduler drives.
//
// The engine is embedded: schema DDL is performed through the API at
// startup, transactions are executed on task slots (pool slots for the
// high-throughput path, reserved session slots for interactive use), and
// durability comes from full WAL replay at open (checkpointing is future
// work, mirroring the paper's roadmap).
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phoebedb/internal/btree"
	"phoebedb/internal/buffer"
	"phoebedb/internal/frozen"
	"phoebedb/internal/lock"
	"phoebedb/internal/metrics"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
	"phoebedb/internal/table"
	"phoebedb/internal/txn"
	"phoebedb/internal/undo"
	"phoebedb/internal/wal"
	"phoebedb/internal/waitevent"
)

// Errors surfaced by the engine API.
var (
	ErrNoSuchTable  = errors.New("core: no such table")
	ErrNoSuchIndex  = errors.New("core: no such index")
	ErrNoSuchColumn = errors.New("core: no such column")
	ErrDuplicate    = errors.New("core: duplicate key in unique index")
	ErrNotFound     = errors.New("core: row not found")
	ErrTxnDone      = errors.New("core: transaction already finished")
	// ErrTableNotEmpty rejects plain CreateIndex on a table that already
	// holds data; CreateIndexOnline backfills instead.
	ErrTableNotEmpty = errors.New("core: table not empty")
	// ErrIndexBackfilling rejects reads through an index whose online
	// backfill has not completed yet.
	ErrIndexBackfilling = errors.New("core: index backfill in progress")
)

// Config configures an Engine.
type Config struct {
	// Dir is the database directory (data pages, data blocks, WAL files).
	Dir string
	// PageSize is the data-page-file slot size (default 32 KiB).
	PageSize int
	// PageCap is rows per PAX page (default 64).
	PageCap int
	// BufferBytes is the Main Storage budget across partitions (default
	// 256 MiB).
	BufferBytes int64
	// Partitions is the buffer partition count, normally the worker count
	// (default 1).
	Partitions int
	// Slots is the total task-slot count: pool slots plus sessions
	// (default 8). Each slot has a private WAL writer and UNDO arena.
	Slots int
	// WALSync fsyncs on every WAL flush (the paper's evaluated setting).
	WALSync bool
	// LockTimeout bounds lock waits; expiry aborts the waiter (deadlock
	// recovery). Default 2s.
	LockTimeout time.Duration
	// DisableRFA makes every commit wait for the global flush horizon —
	// the ablation baseline for Remote Flush Avoidance.
	DisableRFA bool
	// PessimisticIndex disables optimistic lock coupling on index B-Trees
	// (pure latch coupling) — the ablation baseline for the hybrid lock
	// strategy of §7.2.
	PessimisticIndex bool
	// DisableReadFastPath reverts point reads and scans to the legacy
	// visibility path (fresh row materialization per read, no watermark
	// short-circuit, no scratch reuse) — the ablation baseline for the
	// read-path overhaul.
	DisableReadFastPath bool
	// DisableVectorizedScan turns off batch predicate evaluation over PAX
	// minipages (selection vectors): filtered full scans fall back to
	// row-at-a-time materialization — the ablation baseline for the
	// vectorized scan path.
	DisableVectorizedScan bool
	// DisableColdCompaction reverts the cold tier to flat frozen blocks:
	// Freeze writes one whole-batch compressed block per call, with no
	// bloom filters, zone maps, or levelled compaction — the ablation
	// baseline for the levelled cold store.
	DisableColdCompaction bool
	// ColdCacheBytes bounds the per-table decompressed cold-block LRU
	// (0 = frozen.DefaultCacheBytes).
	ColdCacheBytes int64
	// PartitionOf maps a task slot to its worker's buffer partition, so a
	// slot's page allocations land in the partition its worker maintains
	// (§7.1). Defaults to slot modulo Partitions.
	PartitionOf func(slot int) int
	// WALGroups is the number of WAL group-commit files: slots mapped to
	// the same group share one log file, and any member's commit flush
	// drains every member's buffer in a single write+fsync. 0 (default)
	// keeps one file per slot — no batching, the paper's per-slot layout.
	WALGroups int
	// WALGroupOf maps a slot to its WAL group (typically all of a worker's
	// slots to one group). Defaults to slot modulo WALGroups.
	WALGroupOf func(slot int) int
	// GroupCommitWait is how long a commit leader that sees sibling slots
	// mid-transaction waits for their commits before the shared fsync,
	// growing the batch one device write retires. 0 flushes immediately.
	GroupCommitWait time.Duration
	// IO receives I/O byte accounting; one is created if nil.
	IO *metrics.IOCounters
	// Waits receives per-slot wait-event stamps from the engine's blocking
	// sites (table/tuple lock waits, remote-flush waits, buffer-miss reads,
	// WAL flushes); may be nil, in which case no stamping occurs.
	Waits *waitevent.Slots
	// SlowTxnThreshold arms the slow-transaction log: any transaction whose
	// total latency exceeds it is captured with its component breakdown.
	// Zero disables the log.
	SlowTxnThreshold time.Duration
	// StatsLite turns off per-transaction histogram and trace-ring updates
	// (the scalar counters stay on — they are single atomic adds). Used by
	// the instrumentation-overhead benchmark; production keeps it off.
	StatsLite bool
}

func (c *Config) defaults() {
	if c.PageSize <= 0 {
		c.PageSize = 32 * 1024
	}
	if c.PageCap <= 0 {
		c.PageCap = 64
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 256 << 20
	}
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
	if c.IO == nil {
		c.IO = &metrics.IOCounters{}
	}
}

// Index is a secondary index over a table (§5.1: (key, row_id) pairs).
type Index struct {
	Name   string
	Cols   []int
	Unique bool
	Tree   *btree.Tree

	// hidden is set while an online CREATE INDEX backfill is filling the
	// index: writers maintain it (it is in Tbl.Indexes()) but readers and
	// the planner must not use it until the backfill completes. Stored
	// inverted so the zero value — every index built before data is
	// loaded, including recovery — is live.
	hidden atomic.Bool
}

// Live reports whether the index is complete and usable by readers. An
// index under online backfill is registered (so writers maintain it) but
// not live.
func (ix *Index) Live() bool { return !ix.hidden.Load() }

// Tbl is one catalog entry: storage layers plus the table lock block.
type Tbl struct {
	Name   string
	ID     uint32
	Schema *rel.Schema
	Store  *table.Table
	Frozen *frozen.Store
	// Lock is the table lock, stored with the table object per §7.2's
	// decentralized design.
	Lock lock.TableLock

	mu      sync.RWMutex
	indexes map[string]*Index
	// indexCache is the name-sorted index slice, rebuilt on DDL. Every
	// insert/update/delete statement walks the indexes; serving them from
	// an immutable cached slice keeps the per-statement map iteration,
	// allocation, and sort off the hot path.
	indexCache atomic.Pointer[[]*Index]
}

// Indexes returns the table's indexes (stable order). The returned slice
// is shared and must not be mutated.
func (t *Tbl) Indexes() []*Index {
	if p := t.indexCache.Load(); p != nil {
		return *p
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rebuildIndexCacheLocked()
}

// rebuildIndexCacheLocked recomputes the sorted index slice; the caller
// holds t.mu (read suffices — the rebuild is idempotent).
func (t *Tbl) rebuildIndexCacheLocked() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	t.indexCache.Store(&out)
	return out
}

// Index returns the named index or nil.
func (t *Tbl) Index(name string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[name]
}

// WALArchiver is the hook a WAL archive implementation (internal/backup)
// plugs into the checkpoint path. Seal is called with the engine quiesced
// and the WAL fully flushed, after the checkpoint image is durable and
// strictly BEFORE the WAL files are truncated: it must copy every
// remaining log byte into the archive (and make the copy durable) or
// return an error, in which case the checkpoint completes WITHOUT
// truncating — history is never destroyed before it is archived.
type WALArchiver interface {
	Seal(cpGSN uint64) error
}

// Engine is the database kernel.
type Engine struct {
	cfg   Config
	Mgr   *txn.Manager
	WAL   *wal.Manager
	Pool  *buffer.Pool
	IO    *metrics.IOCounters
	stats EngineStats

	// archiver, when set, is sealed before every checkpoint truncation.
	archiver WALArchiver
	// lastCpGSN is the GSN horizon of the newest durable checkpoint image
	// (written by Checkpoint, restored by loadCheckpoint).
	lastCpGSN atomic.Uint64
	// coldEpoch is the cold-manifest epoch the newest durable checkpoint
	// references; Checkpoint writes epoch+1 next.
	coldEpoch atomic.Uint64

	pf *storage.PageFile
	bf *storage.BlockFile

	warms warmQueue

	mu          sync.RWMutex
	tables      map[string]*Tbl
	tablesByID  map[uint32]*Tbl
	nextTableID uint32
}

// Open creates or opens an engine in cfg.Dir. Existing WAL files are NOT
// replayed automatically; call Recover after re-declaring the schema.
func Open(cfg Config) (*Engine, error) {
	cfg.defaults()
	e := &Engine{
		cfg:        cfg,
		IO:         cfg.IO,
		tables:     make(map[string]*Tbl),
		tablesByID: make(map[uint32]*Tbl),
	}
	var err error
	e.pf, err = storage.OpenPageFile(filepath.Join(cfg.Dir, "data.pages"), cfg.PageSize, e.IO)
	if err != nil {
		return nil, err
	}
	e.bf, err = storage.OpenBlockFile(filepath.Join(cfg.Dir, "data.blocks"), e.IO)
	if err != nil {
		e.pf.Close()
		return nil, err
	}
	e.WAL, err = wal.Open(wal.Options{
		Dir:             filepath.Join(cfg.Dir, "wal"),
		Writers:         cfg.Slots,
		Groups:          cfg.WALGroups,
		GroupOf:         cfg.WALGroupOf,
		SyncOnFlush:     cfg.WALSync,
		GroupCommitWait: cfg.GroupCommitWait,
		IO:              e.IO,
		Waits:           cfg.Waits,
	})
	if err != nil {
		e.pf.Close()
		e.bf.Close()
		return nil, err
	}
	e.Mgr = txn.NewManager(cfg.Slots)
	e.Pool = buffer.New(cfg.Partitions, cfg.BufferBytes)
	e.stats.SlowLog.SetThreshold(cfg.SlowTxnThreshold)
	return e, nil
}

// Close flushes the WAL and releases files.
func (e *Engine) Close() error {
	var first error
	if err := e.WAL.Close(); err != nil {
		first = err
	}
	if err := e.pf.Sync(); err != nil && first == nil {
		first = err
	}
	if err := e.pf.Close(); err != nil && first == nil {
		first = err
	}
	if err := e.bf.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Waits returns the engine's wait-event slots (nil when observability is
// off).
func (e *Engine) Waits() *waitevent.Slots { return e.cfg.Waits }

// SetWALArchiver attaches a WAL archiver: from now on Checkpoint seals the
// archive (copying every pre-truncation log byte out) before it is allowed
// to truncate the WAL. Attach before the first post-Open checkpoint.
func (e *Engine) SetWALArchiver(a WALArchiver) { e.archiver = a }

// LastCheckpointGSN returns the GSN horizon of the newest durable
// checkpoint image (0 if none). Base backups record it in their label.
func (e *Engine) LastCheckpointGSN() uint64 { return e.lastCpGSN.Load() }

// CreateTable declares a relation.
func (e *Engine) CreateTable(name string, schema *rel.Schema) (*Tbl, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	e.nextTableID++
	fs := frozen.NewStore(e.bf, schema)
	fs.Flat = e.cfg.DisableColdCompaction
	fs.CacheBytes = e.cfg.ColdCacheBytes
	t := &Tbl{
		Name:    name,
		ID:      e.nextTableID,
		Schema:  schema,
		Store:   table.New(e.nextTableID, schema, e.cfg.PageCap, e.pf, e.Pool),
		Frozen:  fs,
		indexes: make(map[string]*Index),
	}
	t.Lock.Stats = &e.stats.TableLocks
	// One insert lane per buffer partition (= per worker): concurrent
	// workers append through disjoint open pages instead of one tail.
	t.Store.SetInsertLanes(e.cfg.Partitions)
	e.tables[name] = t
	e.tablesByID[t.ID] = t
	return t, nil
}

// CreateIndex declares a secondary index over the named columns. It only
// covers the empty-table DDL flow (schema declaration before data load or
// recovery): on a table that already holds pages it refuses with
// ErrTableNotEmpty instead of silently registering an index that misses
// the existing rows — use CreateIndexOnline for that.
func (e *Engine) CreateIndex(tableName, indexName string, cols []string, unique bool) (*Index, error) {
	t, err := e.Table(tableName)
	if err != nil {
		return nil, err
	}
	if tableHasData(t) {
		return nil, fmt.Errorf("%w: CREATE INDEX %q on %q requires an online backfill", ErrTableNotEmpty, indexName, tableName)
	}
	return e.registerIndex(t, indexName, cols, unique, false)
}

// tableHasData reports whether the table may hold rows (conservatively:
// any hot/cold page or frozen block counts, even if every row in it has
// been deleted).
func tableHasData(t *Tbl) bool {
	return t.Store.NumPages() > 0 || t.Frozen.NumSegments() > 0
}

// registerIndex adds an index to the table's catalog entry. With hidden
// set the index is maintained by writers from here on but reported
// non-live until the backfill promotes it.
func (e *Engine) registerIndex(t *Tbl, indexName string, cols []string, unique, hidden bool) (*Index, error) {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.Schema.ColIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, c, t.Name)
		}
		positions[i] = p
	}
	ix := &Index{Name: indexName, Cols: positions, Unique: unique, Tree: btree.New()}
	ix.Tree.Pessimistic = e.cfg.PessimisticIndex
	ix.hidden.Store(hidden)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[indexName]; ok {
		return nil, fmt.Errorf("core: index %q already exists on %q", indexName, t.Name)
	}
	t.indexes[indexName] = ix
	t.rebuildIndexCacheLocked()
	return ix, nil
}

// dropIndex removes an index registration (backfill failure cleanup).
// Writers holding the previous index slice may still insert a few entries
// into the dropped tree; it is unreachable and garbage-collected.
func (e *Engine) dropIndex(t *Tbl, indexName string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.indexes, indexName)
	t.rebuildIndexCacheLocked()
}

// Table resolves a table by name.
func (e *Engine) Table(name string) (*Tbl, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

func (e *Engine) tableByID(id uint32) *Tbl {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tablesByID[id]
}

// TableByID resolves a table by its catalog id (WAL shipping, tooling).
func (e *Engine) TableByID(id uint32) *Tbl { return e.tableByID(id) }

// Tables returns all tables sorted by name.
func (e *Engine) Tables() []*Tbl {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Tbl, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// indexKey builds the index entry key: the encoded key columns, suffixed
// with the row_id for non-unique indexes so entries stay distinct.
func indexKey(ix *Index, row rel.Row, rid rel.RowID) []byte {
	return indexKeyInto(nil, ix, row, rid)
}

// indexKeyInto is the allocation-free variant, appending to dst. Scans
// use it to recompute a visible row's entry key for stale-entry checks.
func indexKeyInto(dst []byte, ix *Index, row rel.Row, rid rel.RowID) []byte {
	for _, c := range ix.Cols {
		dst = rel.EncodeKey(dst, row[c])
	}
	if !ix.Unique {
		dst = rel.EncodeRowID(dst, rid)
	}
	return dst
}

// IndexKeyOf builds an index entry key for external appliers (replication).
func IndexKeyOf(ix *Index, row rel.Row, rid rel.RowID) []byte {
	return indexKey(ix, row, rid)
}

// indexPrefix appends the search prefix for the given (possibly partial)
// key values to dst, so scan-heavy callers can reuse one buffer.
func indexPrefix(dst []byte, ix *Index, vals []rel.Value) []byte {
	return rel.EncodeKey(dst, vals...)
}

// --- Maintenance duties (§7.1) -----------------------------------------------

// MaintainWorker runs one round of the worker-local duties: page swaps for
// the worker's buffer partition and UNDO GC for the slots it owns. It is
// designed to be plugged into sched.Config.Maintain.
func (e *Engine) MaintainWorker(worker int) {
	if e.Pool.NeedsMaintain(worker) {
		e.Pool.Maintain(worker)
	}
	e.CollectGarbage()
}

// CollectGarbage runs one engine-wide GC round (§7.3): UNDO reclamation
// with deleted-tuple cleanup, then twin table collection. Returns the
// number of UNDO records reclaimed.
func (e *Engine) CollectGarbage() int {
	n := e.Mgr.CollectGarbage(func(r *undo.Record) {
		if r.Op != undo.OpDelete {
			return
		}
		// Deleted-tuple GC: physically erase the tombstoned tuple and its
		// index entries once the delete is globally visible.
		t := e.tableByID(r.TableID)
		if t == nil {
			return
		}
		e.eraseTuple(t, r.RowID)
	})
	maxFrozen := e.Mgr.MaxFrozenXID()
	for _, t := range e.Tables() {
		t.Store.DropCollectibleTwins(maxFrozen)
	}
	e.stats.GCRuns.Add(1)
	e.stats.GCReclaimed.Add(int64(n))
	return n
}

// eraseTuple removes a tombstoned row and its index entries.
func (e *Engine) eraseTuple(t *Tbl, rid rel.RowID) {
	var row rel.Row
	err := t.Store.WithRow(rid, true, nil, func(h table.Handle) error {
		if !h.Deleted() {
			return fmt.Errorf("core: GC of live tuple %d", rid)
		}
		row = h.Row()
		return nil
	})
	if err != nil {
		return // already erased, frozen, or resurrected
	}
	for _, ix := range t.Indexes() {
		k := indexKey(ix, row, rid)
		if ix.Unique {
			// A unique key carries no row_id suffix, so the entry may have
			// been reclaimed by a re-insert of the same key since this
			// tombstone was created; erase it only if it still points here.
			if cur, ok := ix.Tree.Lookup(k); !ok || rel.RowID(cur) != rid {
				continue
			}
		}
		ix.Tree.Delete(k)
	}
	_ = t.Store.RemoveRow(rid, nil)
}

// FreezeTables runs one freezing round (§5.2 case 2): for every table,
// detach up to maxPages coldest prefix pages whose decayed access count is
// at or below maxHot and compress them into the data block file. Returns
// the number of rows frozen.
func (e *Engine) FreezeTables(maxPages int, maxHot uint32) (int, error) {
	total := 0
	for _, t := range e.Tables() {
		cands, err := t.Store.DetachFrozenPrefix(maxPages, maxHot, nil)
		if err != nil {
			return total, err
		}
		var ids []rel.RowID
		var rows []rel.Row
		for _, c := range cands {
			for i, id := range c.Payload.IDs {
				if c.Payload.Deleted[i] {
					continue
				}
				ids = append(ids, id)
				rows = append(rows, c.Payload.Rows.Row(i))
			}
		}
		if len(ids) == 0 {
			continue
		}
		if err := t.Frozen.Freeze(ids, rows); err != nil {
			return total, err
		}
		total += len(ids)
	}
	return total, nil
}

// CompactCold runs at most one cold-segment merge per table — the
// rate-limited form the maintenance loop calls so compaction I/O never
// monopolizes a worker. Returns the number of segments merged.
func (e *Engine) CompactCold() (int, error) {
	total := 0
	for _, t := range e.Tables() {
		n, err := t.Frozen.Compact()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// CompactColdAll merges every table's cold tier until no level is over
// its fanout (tests and benchmarks; production uses CompactCold rounds).
func (e *Engine) CompactColdAll() (int, error) {
	total := 0
	for _, t := range e.Tables() {
		n, err := t.Frozen.CompactAll()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// ColdStats aggregates the cold-tier counters across tables.
func (e *Engine) ColdStats() frozen.ColdStats {
	var st frozen.ColdStats
	for _, t := range e.Tables() {
		st.Add(t.Frozen.Stats())
	}
	return st
}
