package core

import (
	"errors"
	"fmt"

	"phoebedb/internal/clock"
	"phoebedb/internal/rel"
	"phoebedb/internal/table"
	"phoebedb/internal/wal"
)

// Recover replays the write-ahead log into the (empty) tables declared on
// this engine, implementing ARIES-style redo over the per-slot log files
// merged by GSN (§8). Call it after CreateTable/CreateIndex and before any
// transactions.
//
// Replay is redo-only: records of transactions without a commit record are
// skipped (their effects were never made visible, and "Non-Force, Steal"
// page writes are irrelevant here because the directory is rebuilt from
// scratch). Committed deletes are applied as physical removals — they are
// globally visible after a restart. Secondary indexes are rebuilt from the
// recovered rows. Replay starts from the newest checkpoint when one
// exists, bounding redo work to the post-checkpoint log suffix.
func (e *Engine) Recover() (replayed int, err error) {
	// Load the newest checkpoint first (if any); the WAL then holds only
	// post-checkpoint records (Checkpoint truncates it).
	_, cpGSN, err := e.loadCheckpoint()
	if err != nil {
		return 0, err
	}
	recs, err := wal.Recover(e.WAL.Dir())
	if err != nil {
		return 0, err
	}
	// A crash between the checkpoint rename and the WAL truncation leaves
	// checkpoint-covered records on disk; replaying them would duplicate
	// rows the image already holds. Checkpoint fast-forwards every writer
	// past the horizon before the image is durable, so records at or below
	// it are exactly the covered ones — drop them.
	if cpGSN > 0 {
		kept := recs[:0]
		for _, r := range recs {
			if r.GSN > cpGSN {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	committed := make(map[uint64]bool)
	var maxTS, maxGSN uint64
	for _, r := range recs {
		if r.Type == wal.RecCommit {
			committed[r.XID] = true
			if r.RowID > maxTS { // commit records carry cts in RowID
				maxTS = r.RowID
			}
		}
		if ts := clock.StartTS(r.XID); ts > maxTS {
			maxTS = ts
		}
		if r.GSN > maxGSN {
			maxGSN = r.GSN
		}
	}
	for _, r := range recs {
		switch r.Type {
		case wal.RecCommit, wal.RecAbort:
			continue
		}
		if !committed[r.XID] {
			continue
		}
		t := e.tableByID(r.TableID)
		if t == nil {
			return replayed, fmt.Errorf("core: recovery references unknown table id %d (declare schema before Recover)", r.TableID)
		}
		switch r.Type {
		case wal.RecInsert:
			row, derr := rel.DecodeRow(r.Payload)
			if derr != nil {
				return replayed, fmt.Errorf("core: recovery insert payload: %w", derr)
			}
			if aerr := t.Store.InsertAt(rel.RowID(r.RowID), row); aerr != nil {
				return replayed, aerr
			}
		case wal.RecUpdate:
			cols, vals, derr := rel.DecodeDelta(r.Payload)
			if derr != nil {
				return replayed, fmt.Errorf("core: recovery update payload: %w", derr)
			}
			werr := t.Store.WithRow(rel.RowID(r.RowID), true, nil, func(h table.Handle) error {
				for i, c := range cols {
					h.SetCol(c, vals[i])
				}
				return nil
			})
			if werr != nil {
				return replayed, fmt.Errorf("core: recovery update row %d: %w", r.RowID, werr)
			}
		case wal.RecDelete:
			// A committed delete is globally visible now: physical removal.
			// Rows frozen at checkpoint time are tombstoned in the frozen
			// layer instead (warming logs a delete of the frozen rid).
			derr := t.Store.RemoveRow(rel.RowID(r.RowID), nil)
			if errors.Is(derr, table.ErrFrozen) {
				_, derr = t.Frozen.MarkDeleted(rel.RowID(r.RowID))
			}
			if errors.Is(derr, table.ErrNotFound) {
				derr = nil // already erased (idempotent redo)
			}
			if derr != nil {
				return replayed, fmt.Errorf("core: recovery delete row %d: %w", r.RowID, derr)
			}
		}
		replayed++
	}
	// Fast-forward clocks past everything recovered so new transactions
	// and log records sort strictly after history.
	e.Mgr.Clock.AdvanceTo(maxTS + 1)
	for i := 0; i < e.WAL.NumWriters(); i++ {
		e.WAL.Writer(i).AdvanceGSN(maxGSN)
	}
	// Rebuild secondary indexes from the recovered base tables: the frozen
	// layer (restored from the checkpoint) first, then hot/cold pages.
	for _, t := range e.Tables() {
		indexes := t.Indexes()
		if len(indexes) == 0 {
			continue
		}
		if err := t.Frozen.ScanLive(func(rid rel.RowID, row rel.Row) bool {
			for _, ix := range indexes {
				ix.Tree.Insert(indexKey(ix, row, rid), uint64(rid))
			}
			return true
		}); err != nil {
			return replayed, err
		}
		err := t.Store.Scan(nil, func(rid rel.RowID, row rel.Row, h *table.Handle) bool {
			for _, ix := range indexes {
				ix.Tree.Insert(indexKey(ix, row, rid), uint64(rid))
			}
			return true
		})
		if err != nil {
			return replayed, err
		}
	}
	return replayed, nil
}
