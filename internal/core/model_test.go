package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"phoebedb/internal/rel"
)

// TestRandomOpsAgainstModel drives the engine with a randomized sequence
// of inserts, updates, deletes, commits, and rollbacks (interspersed with
// GC, freezing, and buffer maintenance) and checks every committed state
// against an in-memory model keyed by the logical primary key. Rows are
// addressed through the unique index because updates to frozen rows
// legitimately relocate them to fresh row_ids (§5.2 case 3).
func TestRandomOpsAgainstModel(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 8, BufferBytes: 256 * 1024, PageSize: 8 * 1024})
	setupAccounts(t, e)
	rng := rand.New(rand.NewSource(2025))

	model := map[int64]rel.Row{} // committed state by account id
	var liveKeys []int64
	nextKey := int64(0)

	lookup := func(tx *Tx, key int64) (rel.RowID, bool) {
		rid, _, found, err := tx.GetByIndex("accounts", "accounts_pk", rel.Int(key))
		if err != nil {
			t.Fatalf("lookup %d: %v", key, err)
		}
		return rid, found
	}

	const rounds = 60
	for round := 0; round < rounds; round++ {
		tx := begin(e, 0)
		pending := map[int64]rel.Row{} // this txn's writes by key
		var pendingDel []int64
		nOps := rng.Intn(6) + 1
		for op := 0; op < nOps; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				nextKey++
				row := acct(int(nextKey), fmt.Sprintf("o%d", nextKey), float64(rng.Intn(1000)))
				if _, err := tx.Insert("accounts", row); err != nil {
					t.Fatalf("round %d insert: %v", round, err)
				}
				pending[nextKey] = row
			case 4, 5, 6: // update a committed row
				if len(liveKeys) == 0 {
					continue
				}
				key := liveKeys[rng.Intn(len(liveKeys))]
				if hasDel(pendingDel, key) {
					continue
				}
				rid, found := lookup(tx, key)
				if !found {
					t.Fatalf("round %d: live key %d not found", round, key)
				}
				bal := rel.Float(float64(rng.Intn(100000)))
				err := tx.Update("accounts", rid, map[string]rel.Value{"balance": bal})
				if errors.Is(err, ErrNotFound) {
					continue
				}
				if err != nil {
					t.Fatalf("round %d update: %v", round, err)
				}
				base, ok := pending[key]
				if !ok {
					base = model[key].Clone()
				}
				base[2] = bal
				pending[key] = base
			case 7, 8: // delete a committed row
				if len(liveKeys) == 0 {
					continue
				}
				key := liveKeys[rng.Intn(len(liveKeys))]
				if hasDel(pendingDel, key) {
					continue
				}
				rid, found := lookup(tx, key)
				if !found {
					t.Fatalf("round %d: live key %d not found for delete", round, key)
				}
				err := tx.Delete("accounts", rid)
				if errors.Is(err, ErrNotFound) {
					continue
				}
				if err != nil {
					t.Fatalf("round %d delete: %v", round, err)
				}
				pendingDel = append(pendingDel, key)
				delete(pending, key)
			case 9: // read your own writes
				for key, want := range pending {
					_, got, found, err := tx.GetByIndex("accounts", "accounts_pk", rel.Int(key))
					if err != nil || !found || !got.Equal(want) {
						t.Fatalf("round %d: own write mismatch at key %d: (%v,%v,%v)", round, key, got, found, err)
					}
				}
			}
		}
		if rng.Intn(4) == 0 {
			tx.Rollback()
		} else {
			if err := tx.Commit(); err != nil {
				t.Fatalf("round %d commit: %v", round, err)
			}
			for key, row := range pending {
				if _, existed := model[key]; !existed {
					liveKeys = append(liveKeys, key)
				}
				model[key] = row
			}
			for _, key := range pendingDel {
				delete(model, key)
				for i, k := range liveKeys {
					if k == key {
						liveKeys = append(liveKeys[:i], liveKeys[i+1:]...)
						break
					}
				}
			}
		}
		switch rng.Intn(6) {
		case 0:
			e.CollectGarbage()
		case 1:
			e.Pool.Maintain(0)
		case 2:
			e.CollectGarbage()
			e.FreezeTables(1, 1<<20)
		}
		if round%10 == 9 {
			verifyModel(t, e, model, round)
		}
	}
	verifyModel(t, e, model, rounds)
}

func hasDel(dels []int64, key int64) bool {
	for _, d := range dels {
		if d == key {
			return true
		}
	}
	return false
}

func verifyModel(t *testing.T, e *Engine, model map[int64]rel.Row, round int) {
	t.Helper()
	r := begin(e, 1)
	defer r.Rollback()
	seen := map[int64]bool{}
	err := r.ScanTable("accounts", func(rid rel.RowID, row rel.Row) bool {
		key := row[0].I
		want, ok := model[key]
		if !ok {
			t.Fatalf("round %d: phantom row %d: %v", round, key, row)
		}
		if !row.Equal(want) {
			t.Fatalf("round %d: key %d = %v, want %v", round, key, row, want)
		}
		if seen[key] {
			t.Fatalf("round %d: key %d appears twice in scan", round, key)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatalf("round %d scan: %v", round, err)
	}
	if len(seen) != len(model) {
		t.Fatalf("round %d: scan saw %d rows, model has %d", round, len(seen), len(model))
	}
	for key, want := range model {
		_, got, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(key))
		if err != nil || !found || !got.Equal(want) {
			t.Fatalf("round %d: index read key %d = (%v,%v,%v), want %v", round, key, got, found, err, want)
		}
	}
}

// TestWarmQueueProcessing exercises the read-triggered warming path:
// frozen blocks crossing the read threshold are queued and re-inserted
// into hot storage by the maintenance slot.
func TestWarmQueueProcessing(t *testing.T) {
	e := openTestEngine(t, Config{PageCap: 4, Slots: 8})
	setupAccounts(t, e)
	w := begin(e, 0)
	for i := 1; i <= 12; i++ {
		w.Insert("accounts", acct(i, "cold", float64(i)))
	}
	w.Commit()
	e.CollectGarbage()
	if _, err := e.FreezeTables(2, 1<<20); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("accounts")
	tbl.Frozen.WarmThreshold = 3
	frontier := tbl.Store.MaxFrozenRowID()
	if frontier == 0 {
		t.Fatal("nothing frozen")
	}
	// Hammer reads on a frozen row until its block crosses the threshold.
	for i := 0; i < 5; i++ {
		r := begin(e, 0)
		if _, ok, err := r.Get("accounts", 1); !ok || err != nil {
			t.Fatalf("frozen read = (%v,%v)", ok, err)
		}
		r.Rollback()
	}
	// Slot 7 acts as the idle system slot.
	n, err := e.ProcessWarmQueue(7)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("warm queue empty despite hot frozen block")
	}
	// The warmed rows live in hot storage now with fresh rids; the data
	// is intact and reachable via the index, and the frozen copies are
	// dead.
	r := begin(e, 0)
	defer r.Rollback()
	for i := 1; i <= 12; i++ {
		_, row, found, err := r.GetByIndex("accounts", "accounts_pk", rel.Int(int64(i)))
		if err != nil || !found {
			t.Fatalf("row %d after warming: (%v,%v)", i, found, err)
		}
		if row[2].F != float64(i) {
			t.Fatalf("row %d value %v", i, row[2])
		}
	}
	if _, stillFrozen, _ := tbl.Frozen.Get(1); stillFrozen {
		t.Fatal("warmed row still live in the frozen layer")
	}
	count := 0
	r.ScanTable("accounts", func(rel.RowID, rel.Row) bool { count++; return true })
	if count != 12 {
		t.Fatalf("count = %d after warming", count)
	}
}
