package core_test

import (
	"testing"

	"phoebedb/internal/core"
	"phoebedb/internal/rel"
	"phoebedb/internal/txn"
)

// TestGCKeepsReclaimedUniqueKey is the regression for a deleted-tuple GC
// bug the crash harness found: a unique index key carries no row_id
// suffix, so after delete(k) + re-insert(k) the index entry is reclaimed
// by the new row. GC of the old tombstone must then leave the entry
// alone — it used to delete it by key, making the live row unreachable
// through the index.
func TestGCKeepsReclaimedUniqueKey(t *testing.T) {
	e, err := core.Open(core.Config{Dir: t.TempDir(), Slots: 1, WALSync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.CreateTable("kv", rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "ver", Type: rel.TInt64},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("kv", "kv_id", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	exec := func(fn func(tx *core.Tx) error) {
		t.Helper()
		tx := e.Begin(0, txn.ReadCommitted, nil, nil, nil)
		if err := fn(tx); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	exec(func(tx *core.Tx) error {
		_, err := tx.Insert("kv", rel.Row{rel.Int(7), rel.Int(1)})
		return err
	})
	exec(func(tx *core.Tx) error {
		rid, _, ok, err := tx.GetByIndex("kv", "kv_id", rel.Int(7))
		if err != nil || !ok {
			t.Fatalf("pre-delete lookup: ok=%v err=%v", ok, err)
		}
		return tx.Delete("kv", rid)
	})
	// Re-insert the same key: the new row reclaims the unique index entry
	// while the old tombstone still awaits GC.
	exec(func(tx *core.Tx) error {
		_, err := tx.Insert("kv", rel.Row{rel.Int(7), rel.Int(2)})
		return err
	})
	e.CollectGarbage() // erases the tombstone — must not touch the entry
	exec(func(tx *core.Tx) error {
		_, row, ok, err := tx.GetByIndex("kv", "kv_id", rel.Int(7))
		if err != nil {
			return err
		}
		if !ok {
			t.Fatal("unique index entry lost after GC of the old tombstone")
		}
		if row[1].I != 2 {
			t.Fatalf("lookup found ver %d, want 2", row[1].I)
		}
		return nil
	})
}
