package core

import (
	"sync/atomic"

	"phoebedb/internal/lock"
	"phoebedb/internal/metrics"
)

// EngineStats are the engine-wide always-on counters. Everything here is
// atomic and incremented at the source (commit path, lock manager, RFA
// check, GC rounds), so scraping is race-free while transactions run. The
// cost per increment is one uncontended atomic add — the same bookkeeping
// partitioning argument as §7.1, since each counter is touched either by
// one slot at a time or rarely.
type EngineStats struct {
	// Commits and Aborts count finished transactions by outcome.
	Commits atomic.Int64
	Aborts  atomic.Int64

	// TupleLockWaits counts low-urgency waits on tuple locks or conflicting
	// transaction IDs (§7.2); TableLockWaits/TableLockTimeouts come from
	// the decentralized table-lock blocks.
	TupleLockWaits atomic.Int64
	TableLocks     lock.Stats

	// RemoteFlushWaits counts commits that had to wait for a foreign
	// writer's durable horizon; RFAAvoided counts cross-slot page touches
	// where the stamp check proved the foreign change already durable —
	// the remote flushes that RFA (§8) eliminated.
	RemoteFlushWaits atomic.Int64
	RFAAvoided       atomic.Int64

	// MVCCFastPath counts visibility checks satisfied by the watermark
	// fast path (stamped commit timestamp below the global watermark: no
	// TxnMeta load, no chain walk). MVCCChainWalks counts checks that had
	// to reconstruct an older version by walking the chain, MVCCChainLinks
	// the total links those walks traversed, and MVCCChainLen the per-walk
	// length distribution (dimensionless: 1 "nanosecond" = 1 link). The
	// scalar counters are flushed once per transaction from its private
	// VisStats; the histogram is observed per walk.
	MVCCFastPath   atomic.Int64
	MVCCChainWalks atomic.Int64
	MVCCChainLinks atomic.Int64
	MVCCChainLen   metrics.Histogram

	// GCRuns and GCReclaimed count garbage-collection rounds and the UNDO
	// records they reclaimed.
	GCRuns      atomic.Int64
	GCReclaimed atomic.Int64

	// Checkpoints counts completed checkpoints.
	Checkpoints atomic.Int64

	// IndexBackfillRows counts rows scanned into an index by online
	// CREATE INDEX backfills (snapshot scan plus version-chain catch-up).
	IndexBackfillRows atomic.Int64

	// SlowLog captures transactions over the configured threshold with
	// their full component breakdown.
	SlowLog metrics.SlowLog
}

// Stats returns the engine's live counter block.
func (e *Engine) Stats() *EngineStats { return &e.stats }
