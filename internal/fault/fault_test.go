package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledEvalIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no site armed, Enabled() = true")
	}
	if err := Eval(WALPreSync); err != nil {
		t.Fatalf("disabled Eval = %v", err)
	}
	if cut := TornCut(WALTornWrite, 100); cut != 0 {
		t.Fatalf("disabled TornCut = %d", cut)
	}
}

func TestErrorAction(t *testing.T) {
	defer Reset()
	if err := Enable(WALPreSync, "error"); err != nil {
		t.Fatal(err)
	}
	err := Eval(WALPreSync)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval = %v, want ErrInjected", err)
	}
	// Other sites stay clean.
	if err := Eval(WALPostSync); err != nil {
		t.Fatalf("unarmed site Eval = %v", err)
	}
	Disable(WALPreSync)
	if err := Eval(WALPreSync); err != nil {
		t.Fatalf("disarmed Eval = %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	if err := Enable(CheckpointPostSave, "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if !IsCrash(r) {
			t.Fatalf("recover() = %v, want CrashPanic", r)
		}
		if r.(CrashPanic).Site != CheckpointPostSave {
			t.Fatalf("crash site = %q", r.(CrashPanic).Site)
		}
	}()
	Eval(CheckpointPostSave)
	t.Fatal("Eval did not panic")
}

func TestSkipAndSleepActions(t *testing.T) {
	defer Reset()
	if err := Enable(WALPreSync, "skip"); err != nil {
		t.Fatal(err)
	}
	if err := Eval(WALPreSync); !errors.Is(err, ErrSkip) {
		t.Fatalf("Eval = %v, want ErrSkip", err)
	}
	if err := Enable(WALPostSync, "sleep(10ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval(WALPostSync); err != nil {
		t.Fatalf("sleep Eval = %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("sleep action returned after %v", d)
	}
}

func TestHitCountDelay(t *testing.T) {
	defer Reset()
	if err := Enable(StorageWritePage, "error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := Eval(StorageWritePage); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	// The third hit and every later one fire (persistent once triggered).
	for i := 3; i <= 5; i++ {
		if err := Eval(StorageWritePage); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d = %v, want ErrInjected", i, err)
		}
	}
}

func TestTornCut(t *testing.T) {
	defer Reset()
	if err := Enable(WALTornWrite, "torn(5)"); err != nil {
		t.Fatal(err)
	}
	if cut := TornCut(WALTornWrite, 100); cut != 5 {
		t.Fatalf("cut = %d, want 5", cut)
	}
	// The cut never exceeds the write size.
	if cut := TornCut(WALTornWrite, 2); cut != 2 {
		t.Fatalf("cut = %d, want 2", cut)
	}
	// A torn site does not fire through Eval.
	if err := Eval(WALTornWrite); err != nil {
		t.Fatalf("Eval on torn site = %v", err)
	}
}

func TestEnableSpecCombined(t *testing.T) {
	defer Reset()
	err := EnableSpec("wal.preSync=panic; storage.readPage=error@2, checkpoint.preTruncate=torn(7)")
	if err != nil {
		t.Fatal(err)
	}
	got := Armed()
	want := []string{CheckpointPreTruncate, StorageReadPage, WALPreSync}
	if len(got) != len(want) {
		t.Fatalf("Armed() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Armed() = %v, want %v", got, want)
		}
	}
}

func TestEnableSpecErrors(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"wal.preSync",   // no action
		"x=explode",     // unknown action
		"x=sleep(soon)", // bad duration
		"x=panic@zero",  // bad hit count
		"x=torn(0)",     // bad byte count
		"x=sleep(1ms",   // unbalanced parens
	} {
		if err := EnableSpec(bad); err == nil {
			t.Errorf("EnableSpec(%q) accepted", bad)
		}
	}
	Reset()
}

func TestCrashSitesRegistered(t *testing.T) {
	all := make(map[string]bool)
	for _, s := range AllSites() {
		all[s] = true
	}
	cs := CrashSites()
	if len(cs) < 6 {
		t.Fatalf("CrashSites() = %d sites, want >= 6", len(cs))
	}
	for _, s := range cs {
		if !all[s] {
			t.Errorf("crash site %q not in AllSites()", s)
		}
	}
}

// BenchmarkEvalDisabled measures the cost a guarded operation pays when
// no failpoint is armed — the budget is one atomic load.
func BenchmarkEvalDisabled(b *testing.B) {
	Reset()
	for i := 0; i < b.N; i++ {
		if err := Eval(WALPreSync); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHitCounts(t *testing.T) {
	defer Reset()
	Reset()
	if n := len(HitCounts()); n != 0 {
		t.Fatalf("clean HitCounts has %d entries", n)
	}
	if err := Enable(WALPreSync, "sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if err := Enable(StorageWritePage, "error@100"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		Eval(WALPreSync)
	}
	Eval(StorageWritePage)
	hits := HitCounts()
	if hits[WALPreSync] != 3 {
		t.Fatalf("HitCounts[%s] = %d, want 3", WALPreSync, hits[WALPreSync])
	}
	// Sites count evaluations, not firings: the delayed error has not
	// triggered yet but the site was still evaluated once.
	if hits[StorageWritePage] != 1 {
		t.Fatalf("HitCounts[%s] = %d, want 1", StorageWritePage, hits[StorageWritePage])
	}
}
