// Package crashtest is the crash-recovery harness over the fault package:
// it drives a concurrent workload against a real engine, kills it
// mid-operation at a chosen failpoint site (an in-process "crash" — the
// engine is abandoned without Close, exactly as a killed process leaves
// it), reopens the directory, runs recovery, and verifies the durability
// contract:
//
//   - every transaction acknowledged committed is present,
//   - no effect of an unacknowledged or rolled-back transaction is
//     visible, except transactions in flight at the crash instant, which
//     may surface either fully applied or not at all (atomically),
//   - secondary indexes agree exactly with the base table,
//   - a recovered engine accepts and durably logs new transactions.
//
// Run covers the key/value workload over every site in
// fault.CrashSites(); TPCCCrash crashes a seeded TPC-C run and validates
// the benchmark's consistency conditions after recovery.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phoebedb/internal/core"
	"phoebedb/internal/fault"
	"phoebedb/internal/rel"
	"phoebedb/internal/tpcc"
	"phoebedb/internal/txn"
)

// Config configures one crash-recovery run.
type Config struct {
	// Dir is the database directory (use a fresh temp dir per run).
	Dir string
	// Site is the failpoint to crash at, one of fault.CrashSites(). The
	// site's prefix selects how the crash is provoked: "wal." sites fire
	// from commit flushes inside the concurrent workload, "checkpoint."
	// sites from an explicit Checkpoint call after the workload quiesces,
	// and "buffer."/"storage." sites from forced buffer-pool maintenance.
	Site string
	// Workers is the number of concurrent writer goroutines (default 4).
	Workers int
	// OpsPerWorker bounds each worker's transaction attempts (default 400).
	OpsPerWorker int
	// CrashAfter arms workload sites with panic@N so some commits succeed
	// before the crash (default 25).
	CrashAfter int
	// IDsPerWorker is each worker's private key-range size (default 64).
	IDsPerWorker int
	// Seed makes the workload deterministic; report it on failure.
	Seed int64
	// WarmCheckpoint takes a successful checkpoint between the workload
	// phases, so recovery exercises the checkpoint-image path (and, for
	// "checkpoint." sites, the crashing checkpoint is the second one).
	WarmCheckpoint bool
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

// Report summarizes a successful run.
type Report struct {
	// Acked counts transactions acknowledged committed before the crash.
	Acked int
	// Ambiguous counts transactions whose outcome the crash left unknown
	// (in flight, or commit returned an error after the record may have
	// become durable).
	Ambiguous int
	// Replayed is the number of WAL records redone at recovery.
	Replayed int
	// Rows is the row count visible after recovery.
	Rows int
}

// idState is the harness's model of one key: present at a version, or
// absent (the zero value — also the state of a never-inserted key).
type idState struct {
	exists bool
	ver    int64
}

// pendingOp is an operation whose outcome the crash left ambiguous.
type pendingOp struct {
	op  byte // 'i' insert, 'u' update, 'd' delete
	ver int64
}

// worker owns a disjoint key range, so only injected faults — never
// harness-induced conflicts — can abort its transactions.
type worker struct {
	slot int
	base int64
	n    int64
	rng  *rand.Rand

	acked    map[int64]idState
	verCtr   map[int64]int64 // versions consumed, including rolled-back ones
	poisoned map[int64]pendingOp
	inf      struct {
		active bool
		id     int64
		op     byte
		ver    int64
	}
	ackedTxns int
	err       error // harness invariant violation (not an injected fault)
}

func newWorker(i int, cfg Config) *worker {
	return &worker{
		slot:     i,
		base:     int64(i) * int64(cfg.IDsPerWorker),
		n:        int64(cfg.IDsPerWorker),
		rng:      rand.New(rand.NewSource(cfg.Seed + int64(i)*104729)),
		acked:    make(map[int64]idState),
		verCtr:   make(map[int64]int64),
		poisoned: make(map[int64]pendingOp),
	}
}

// poison records the in-flight operation as ambiguous: verification will
// accept the key in either its pre- or post-operation state, and the
// worker never touches the key again (a later success would collapse the
// ambiguity, which the model does not track).
func (w *worker) poison() {
	if w.inf.active {
		w.poisoned[w.inf.id] = pendingOp{op: w.inf.op, ver: w.inf.ver}
		w.inf.active = false
	}
}

// padFor derives the payload from the key and version, so verification
// detects corrupted or mixed-version rows, not just wrong versions.
func padFor(id, ver int64) string {
	return fmt.Sprintf("pad-%d-%d-%s", id, ver, strings.Repeat("x", 160))
}

// step runs one transaction. It reports whether an injected crash fired.
func (w *worker) step(e *core.Engine) (crashed bool) {
	var id int64 = -1
	for try := 0; try < 8; try++ {
		cand := w.base + w.rng.Int63n(w.n)
		if _, bad := w.poisoned[cand]; !bad {
			id = cand
			break
		}
	}
	if id < 0 {
		return false
	}
	st := w.acked[id]
	op := byte('i')
	if st.exists {
		if w.rng.Intn(8) == 0 {
			op = 'd'
		} else {
			op = 'u'
		}
	}
	// Version numbers are consumed even by attempts that roll back, so a
	// version can never be reused: any version visible after recovery that
	// is neither acked nor ambiguous is proof of a lost rollback.
	ver := w.verCtr[id] + 1
	w.verCtr[id] = ver
	w.inf.active, w.inf.id, w.inf.op, w.inf.ver = true, id, op, ver

	defer func() {
		if r := recover(); r != nil {
			if fault.IsCrash(r) {
				w.poison()
				crashed = true
				return
			}
			panic(r)
		}
	}()

	tx := e.Begin(w.slot, txn.ReadCommitted, nil, nil, nil)
	var opErr error
	switch op {
	case 'i':
		_, opErr = tx.Insert("kv", rel.Row{rel.Int(id), rel.Int(ver), rel.Str(padFor(id, ver))})
	default:
		rid, _, ok, gerr := tx.GetByIndex("kv", "kv_id", rel.Int(id))
		switch {
		case gerr != nil:
			opErr = gerr
		case !ok:
			tx.Rollback()
			w.inf.active = false
			w.err = fmt.Errorf("crashtest: acked id %d (ver %d) not visible before crash", id, st.ver)
			return false
		case op == 'u':
			opErr = tx.Update("kv", rid, map[string]rel.Value{
				"ver": rel.Int(ver), "pad": rel.Str(padFor(id, ver)),
			})
		default:
			opErr = tx.Delete("kv", rid)
		}
	}
	if opErr != nil {
		// Failed before a commit record could exist: a clean rollback.
		// The version is consumed but must never become visible.
		tx.Rollback()
		w.inf.active = false
		return false
	}
	if err := tx.Commit(); err != nil {
		// A commit error is ambiguous — the commit record may have reached
		// the disk before the failure (e.g. a torn fsync acknowledgment).
		w.poison()
		return false
	}
	w.inf.active = false
	if op == 'd' {
		w.acked[id] = idState{}
	} else {
		w.acked[id] = idState{exists: true, ver: ver}
	}
	w.ackedTxns++
	return false
}

func kvSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "ver", Type: rel.TInt64},
		rel.Column{Name: "pad", Type: rel.TString},
	)
}

func openEngine(dir string, slots int, bufBytes int64) (*core.Engine, error) {
	e, err := core.Open(core.Config{
		Dir:         dir,
		Slots:       slots,
		WALSync:     true,
		BufferBytes: bufBytes,
		PageCap:     16,
		LockTimeout: 500 * time.Millisecond,
		// Share WAL files across slots and enable the adaptive leader
		// wait, so every wal.* failpoint fires inside the group-commit
		// path: a crash mid-flush must not lose acked commits from any
		// slot batched into the same window.
		WALGroups:       2,
		WALGroupOf:      func(slot int) int { return slot % 2 },
		GroupCommitWait: 200 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	if _, err := e.CreateTable("kv", kvSchema()); err != nil {
		return nil, err
	}
	if _, err := e.CreateIndex("kv", "kv_id", []string{"id"}, true); err != nil {
		return nil, err
	}
	if _, err := e.CreateIndex("kv", "kv_ver", []string{"ver"}, false); err != nil {
		return nil, err
	}
	return e, nil
}

// runWorkload drives every worker for up to ops transactions each and
// reports whether an injected crash fired anywhere.
func runWorkload(e *core.Engine, workers []*worker, ops int) bool {
	var crashed atomic.Bool
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for i := 0; i < ops && !crashed.Load() && w.err == nil; i++ {
				if w.step(e) {
					crashed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	return crashed.Load()
}

// crashAt runs fn, converting an injected CrashPanic into crashed=true.
func crashAt(fn func() error) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if fault.IsCrash(r) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	return false, fn()
}

// Run executes one full crash-recovery cycle for cfg.Site. On success the
// report summarizes what was exercised; any contract violation is an
// error (include cfg.Seed when reporting it).
func Run(cfg Config) (Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 400
	}
	if cfg.CrashAfter <= 0 {
		cfg.CrashAfter = 25
	}
	if cfg.IDsPerWorker <= 0 {
		cfg.IDsPerWorker = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var rep Report
	fault.Reset()
	defer fault.Reset()

	// Maintenance-site runs use a tiny buffer budget so eviction has work;
	// nothing calls Maintain until the harness forces it.
	bufBytes := int64(256 << 20)
	maint := strings.HasPrefix(cfg.Site, "buffer.") || strings.HasPrefix(cfg.Site, "storage.")
	if maint {
		bufBytes = 4 << 10
	}
	e, err := openEngine(cfg.Dir, cfg.Workers+1, bufBytes)
	if err != nil {
		return rep, err
	}
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = newWorker(i, cfg)
	}

	// Phase 1: build up state with no faults armed.
	phase1 := cfg.OpsPerWorker / 2
	runWorkload(e, workers, phase1)
	if cfg.WarmCheckpoint {
		if err := e.Checkpoint(); err != nil {
			return rep, fmt.Errorf("crashtest: warm checkpoint: %w", err)
		}
		cfg.Logf("crashtest: warm checkpoint taken")
	}

	// Phase 2: provoke the crash, per site class.
	switch {
	case strings.HasPrefix(cfg.Site, "wal."):
		spec := fmt.Sprintf("panic@%d", cfg.CrashAfter)
		if cfg.Site == fault.WALTornWrite {
			spec = fmt.Sprintf("torn(3)@%d", cfg.CrashAfter)
		}
		if err := fault.Enable(cfg.Site, spec); err != nil {
			return rep, err
		}
		if !runWorkload(e, workers, cfg.OpsPerWorker-phase1) {
			return rep, fmt.Errorf("crashtest: site %s never fired during the workload", cfg.Site)
		}
	case strings.HasPrefix(cfg.Site, "checkpoint."):
		runWorkload(e, workers, cfg.OpsPerWorker-phase1)
		if err := fault.Enable(cfg.Site, "panic"); err != nil {
			return rep, err
		}
		crashed, cerr := crashAt(e.Checkpoint)
		if !crashed {
			return rep, fmt.Errorf("crashtest: checkpoint did not crash at %s (err=%v)", cfg.Site, cerr)
		}
	case strings.HasPrefix(cfg.Site, "sql."): // crash inside an online index backfill
		if err := fault.Enable(cfg.Site, fmt.Sprintf("panic@%d", cfg.CrashAfter)); err != nil {
			return rep, err
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorkload(e, workers, cfg.OpsPerWorker-phase1)
		}()
		// Build a third index over the busy table on the spare slot; the
		// failpoint fires per backfilled row. Indexes live in memory, so
		// the "crash" must leave only the recoverable table state behind.
		crashed, cerr := crashAt(func() error {
			_, err := e.CreateIndexOnline("kv", "kv_pad", []string{"pad"}, false,
				func(fn func(tx *core.Tx) error) error {
					tx := e.Begin(cfg.Workers, txn.ReadCommitted, nil, nil, nil)
					if err := fn(tx); err != nil {
						tx.Rollback()
						return err
					}
					return tx.Commit()
				})
			return err
		})
		wg.Wait()
		if !crashed {
			return rep, fmt.Errorf("crashtest: backfill did not crash at %s (err=%v)", cfg.Site, cerr)
		}
	case strings.HasPrefix(cfg.Site, "frozen."): // crash inside cold-tier maintenance
		// Quiesce the workload, then demote pages into cold segments in
		// small freeze/compact/checkpoint rounds so segments accumulate
		// across levels and earlier rounds are already durable when the
		// crash fires: panic@3 lands on the third segment write, the third
		// merge, or the third manifest swap. Cold durability rides the
		// checkpoint (freezing writes no WAL), so recovery must restore the
		// exact frozen/hot split the last completed checkpoint captured.
		runWorkload(e, workers, cfg.OpsPerWorker-phase1)
		for i := 0; i < 3; i++ {
			e.CollectGarbage() // erase tombstones so page prefixes freeze
		}
		if t, terr := e.Table("kv"); terr == nil {
			t.Frozen.Fanout = 2 // merge every two segments: reach L2 fast
		}
		if err := fault.Enable(cfg.Site, "panic@3"); err != nil {
			return rep, err
		}
		crashed, cerr := crashAt(func() error {
			for i := 0; i < 64; i++ {
				if _, err := e.FreezeTables(1, ^uint32(0)); err != nil {
					return err
				}
				if _, err := e.CompactColdAll(); err != nil {
					return err
				}
				if err := e.Checkpoint(); err != nil {
					return err
				}
			}
			return nil
		})
		if !crashed {
			return rep, fmt.Errorf("crashtest: cold maintenance never hit %s (err=%v)", cfg.Site, cerr)
		}
	default: // buffer.* / storage.*: crash inside forced page-swap maintenance
		runWorkload(e, workers, cfg.OpsPerWorker-phase1)
		for i := 0; i < 3; i++ {
			e.CollectGarbage() // drain UNDO so frames are unpinned and evictable
		}
		if err := fault.Enable(cfg.Site, "panic"); err != nil {
			return rep, err
		}
		crashed, _ := crashAt(func() error {
			for i := 0; i < 400; i++ {
				e.Pool.Maintain(0)
				e.CollectGarbage()
			}
			return nil
		})
		if !crashed {
			return rep, fmt.Errorf("crashtest: maintenance never hit %s", cfg.Site)
		}
	}
	for _, w := range workers {
		if w.err != nil {
			return rep, w.err
		}
		rep.Acked += w.ackedTxns
		rep.Ambiguous += len(w.poisoned)
	}
	fault.Reset()
	// Abandon e without Close — the crash left it mid-flight on purpose.

	// Reopen, recover, verify.
	e2, err := openEngine(cfg.Dir, cfg.Workers+1, 256<<20)
	if err != nil {
		return rep, err
	}
	rep.Replayed, err = e2.Recover()
	if err != nil {
		return rep, fmt.Errorf("crashtest: recover: %w", err)
	}
	if strings.HasPrefix(cfg.Site, "frozen.") {
		// The run is only meaningful if the last completed checkpoint's
		// manifest actually restored cold segments.
		if st := e2.ColdStats(); st.Segments == 0 {
			return rep, fmt.Errorf("crashtest: no cold segments survived recovery at %s", cfg.Site)
		}
	}
	got, err := readAll(e2, cfg.Workers)
	if err != nil {
		return rep, err
	}
	rep.Rows = len(got)
	if err := checkIndexes(e2, cfg.Workers, got); err != nil {
		return rep, err
	}
	for _, ixName := range []string{"kv_id", "kv_ver"} {
		if err := VerifyIndex(e2, cfg.Workers, "kv", ixName); err != nil {
			return rep, err
		}
	}
	if err := checkState(workers, got); err != nil {
		return rep, err
	}
	cfg.Logf("crashtest: %s recovered: acked=%d ambiguous=%d replayed=%d rows=%d",
		cfg.Site, rep.Acked, rep.Ambiguous, rep.Replayed, rep.Rows)

	// The recovered engine must accept new commits, and those must survive
	// another restart — this exercises appending after a truncated torn
	// tail end-to-end.
	postBase := int64(cfg.Workers*cfg.IDsPerWorker) + 1_000_000
	const postRows = 8
	for i := int64(0); i < postRows; i++ {
		id := postBase + i
		tx := e2.Begin(cfg.Workers, txn.ReadCommitted, nil, nil, nil)
		if _, err := tx.Insert("kv", rel.Row{rel.Int(id), rel.Int(1), rel.Str(padFor(id, 1))}); err != nil {
			tx.Rollback()
			return rep, fmt.Errorf("crashtest: post-recovery insert: %w", err)
		}
		if err := tx.Commit(); err != nil {
			return rep, fmt.Errorf("crashtest: post-recovery commit: %w", err)
		}
	}
	if err := e2.Close(); err != nil {
		return rep, err
	}

	e3, err := openEngine(cfg.Dir, cfg.Workers+1, 256<<20)
	if err != nil {
		return rep, err
	}
	defer e3.Close()
	if _, err := e3.Recover(); err != nil {
		return rep, fmt.Errorf("crashtest: second recover: %w", err)
	}
	got3, err := readAll(e3, cfg.Workers)
	if err != nil {
		return rep, err
	}
	for i := int64(0); i < postRows; i++ {
		id := postBase + i
		g, ok := got3[id]
		if !ok || g.ver != 1 {
			return rep, fmt.Errorf("crashtest: post-recovery row %d lost after restart", id)
		}
		delete(got3, id)
	}
	if err := checkState(workers, got3); err != nil {
		return rep, fmt.Errorf("crashtest: after second restart: %w", err)
	}
	return rep, nil
}

// gotRow is one recovered row.
type gotRow struct {
	rid rel.RowID
	ver int64
	pad string
}

// readAll scans the kv table in one read-only transaction on the spare
// slot, failing on duplicate keys (a sign of double replay).
func readAll(e *core.Engine, spareSlot int) (map[int64]gotRow, error) {
	tx := e.Begin(spareSlot, txn.ReadCommitted, nil, nil, nil)
	defer tx.Commit() // read-only: no WAL traffic
	out := make(map[int64]gotRow)
	var dupErr error
	err := tx.ScanTable("kv", func(rid rel.RowID, row rel.Row) bool {
		id := row[0].I
		if prev, dup := out[id]; dup {
			dupErr = fmt.Errorf("crashtest: id %d recovered twice (rids %d and %d)", id, prev.rid, rid)
			return false
		}
		out[id] = gotRow{rid: rid, ver: row[1].I, pad: row[2].S}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, dupErr
}

// checkIndexes verifies both secondary indexes agree exactly with the
// base table: every row is reachable through the unique id index and the
// non-unique ver index, with matching contents.
func checkIndexes(e *core.Engine, spareSlot int, got map[int64]gotRow) error {
	tx := e.Begin(spareSlot, txn.ReadCommitted, nil, nil, nil)
	defer tx.Commit()
	for id, g := range got {
		rid, row, ok, err := tx.GetByIndex("kv", "kv_id", rel.Int(id))
		if err != nil {
			return err
		}
		if !ok || rid != g.rid || row[1].I != g.ver {
			return fmt.Errorf("crashtest: unique index disagrees on id %d: ok=%v rid=%d want %d", id, ok, rid, g.rid)
		}
		found := false
		err = tx.ScanIndex("kv", "kv_ver", []rel.Value{rel.Int(g.ver)}, func(r rel.RowID, _ rel.Row) bool {
			if r == g.rid {
				found = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("crashtest: ver index missing id %d (ver %d)", id, g.ver)
		}
	}
	return nil
}

// VerifyIndex checks that the named index and a full table scan agree
// row-for-row: every visible base row is reachable through the index
// under its current key values, the index emits no row twice and nothing
// the table scan did not produce, and the indexed column values match.
// spareSlot must not be running any other transaction. Exported so
// backfill and recovery tests outside this package can reuse one
// consistency definition.
func VerifyIndex(e *core.Engine, spareSlot int, table, index string) error {
	tx := e.Begin(spareSlot, txn.ReadCommitted, nil, nil, nil)
	defer tx.Commit() // read-only: no WAL traffic
	return VerifyIndexIn(tx, e, table, index)
}

// VerifyIndexIn is VerifyIndex on a caller-supplied transaction, for
// callers whose slots are managed elsewhere (e.g. a DB session).
func VerifyIndexIn(tx *core.Tx, e *core.Engine, table, index string) error {
	t, err := e.Table(table)
	if err != nil {
		return err
	}
	ix := t.Index(index)
	if ix == nil {
		return fmt.Errorf("crashtest: no index %q on %q", index, table)
	}
	base := make(map[rel.RowID]rel.Row)
	err = tx.ScanTable(table, func(rid rel.RowID, row rel.Row) bool {
		base[rid] = row.Clone()
		return true
	})
	if err != nil {
		return err
	}

	// Index → table: full enumeration, each visible rid exactly once,
	// emitted row matching the base copy on the indexed columns.
	seen := make(map[rel.RowID]bool, len(base))
	var scanErr error
	err = tx.ScanIndex(table, index, nil, func(rid rel.RowID, row rel.Row) bool {
		if seen[rid] {
			scanErr = fmt.Errorf("crashtest: index %q emitted rid %d twice", index, rid)
			return false
		}
		seen[rid] = true
		b, ok := base[rid]
		if !ok {
			scanErr = fmt.Errorf("crashtest: index %q emitted rid %d absent from table scan", index, rid)
			return false
		}
		for _, c := range ix.Cols {
			if !row[c].Equal(b[c]) {
				scanErr = fmt.Errorf("crashtest: index %q rid %d col %d: index row %v, table row %v",
					index, rid, c, row[c], b[c])
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}

	// Table → index: every base row must be found probing its own key.
	vals := make([]rel.Value, len(ix.Cols))
	for rid, row := range base {
		if !seen[rid] {
			return fmt.Errorf("crashtest: index %q is missing rid %d", index, rid)
		}
		for i, c := range ix.Cols {
			vals[i] = row[c]
		}
		found := false
		err = tx.ScanIndex(table, index, vals, func(r rel.RowID, _ rel.Row) bool {
			if r == rid {
				found = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("crashtest: index %q does not reach rid %d under its key", index, rid)
		}
	}
	return nil
}

// checkState verifies every recovered key is in a state the workload
// could have left durable, and that nothing else survived.
func checkState(workers []*worker, got map[int64]gotRow) error {
	rest := make(map[int64]gotRow, len(got))
	for k, v := range got {
		rest[k] = v
	}
	for _, w := range workers {
		for id := w.base; id < w.base+w.n; id++ {
			st := w.acked[id] // zero value = never present
			g, present := rest[id]
			delete(rest, id)
			allowed := []idState{st}
			if p, ok := w.poisoned[id]; ok {
				if p.op == 'd' {
					allowed = append(allowed, idState{})
				} else {
					allowed = append(allowed, idState{exists: true, ver: p.ver})
				}
			}
			match := false
			for _, s := range allowed {
				if s.exists == present && (!present || s.ver == g.ver) {
					match = true
					break
				}
			}
			if !match {
				return fmt.Errorf("crashtest: id %d recovered as (present=%v ver=%d), allowed states %+v",
					id, present, g.ver, allowed)
			}
			if present && g.pad != padFor(id, g.ver) {
				return fmt.Errorf("crashtest: id %d payload corrupted at ver %d", id, g.ver)
			}
		}
	}
	if len(rest) > 0 {
		for id, g := range rest {
			return fmt.Errorf("crashtest: phantom row id %d ver %d survived recovery", id, g.ver)
		}
	}
	return nil
}

// --- TPC-C crash harness ------------------------------------------------------

// ErrCrashed is returned by EngineBackend.Execute once an injected crash
// has fired; the driver counts it as an error and the run drains.
var ErrCrashed = errors.New("crashtest: engine crashed")

// EngineBackend adapts a bare core.Engine to tpcc.Backend for crash runs:
// transactions run on a pool of task slots, and an injected CrashPanic
// retires the slot mid-transaction (its state is abandoned, like a killed
// process's) and fails the run's remaining submissions fast.
type EngineBackend struct {
	E     *core.Engine
	slots chan int
	done  chan struct{}
	once  sync.Once
}

// NewEngineBackend wraps e with a pool of the first `slots` task slots.
func NewEngineBackend(e *core.Engine, slots int) *EngineBackend {
	b := &EngineBackend{E: e, slots: make(chan int, slots), done: make(chan struct{})}
	for i := 0; i < slots; i++ {
		b.slots <- i
	}
	return b
}

// Crashed reports whether an injected crash has fired.
func (b *EngineBackend) Crashed() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// CreateTable implements tpcc.Backend.
func (b *EngineBackend) CreateTable(name string, schema *rel.Schema) error {
	_, err := b.E.CreateTable(name, schema)
	return err
}

// CreateIndex implements tpcc.Backend.
func (b *EngineBackend) CreateIndex(table, index string, cols []string, unique bool) error {
	_, err := b.E.CreateIndex(table, index, cols, unique)
	return err
}

// Execute implements tpcc.Backend.
func (b *EngineBackend) Execute(fn func(c tpcc.Client) error) (err error) {
	var slot int
	select {
	case slot = <-b.slots:
	case <-b.done:
		return ErrCrashed
	}
	defer func() {
		if r := recover(); r != nil {
			if fault.IsCrash(r) {
				// The slot's transaction is torn mid-flight; retire the slot.
				b.once.Do(func() { close(b.done) })
				err = ErrCrashed
				return
			}
			panic(r)
		}
		b.slots <- slot
	}()
	if b.Crashed() {
		return ErrCrashed
	}
	tx := b.E.Begin(slot, txn.ReadCommitted, nil, nil, nil)
	if ferr := fn(tx); ferr != nil {
		tx.Rollback()
		return ferr
	}
	return tx.Commit()
}

// TPCCCrash loads a small seeded TPC-C database, crashes a concurrent
// workload at the given WAL site after `after` firings, then reopens the
// directory, recovers, and runs the benchmark's consistency conditions.
func TPCCCrash(dir string, seed int64, site string, after int) error {
	fault.Reset()
	defer fault.Reset()
	const terminals = 4
	open := func() (*core.Engine, *EngineBackend, error) {
		e, err := core.Open(core.Config{
			Dir:         dir,
			Slots:       terminals + 1,
			WALSync:     true,
			LockTimeout: time.Second,
			// All terminals share one WAL group so the crash lands in a
			// flush window batching commits from several terminals.
			WALGroups:       1,
			WALGroupOf:      func(int) int { return 0 },
			GroupCommitWait: 200 * time.Microsecond,
		})
		if err != nil {
			return nil, nil, err
		}
		b := NewEngineBackend(e, terminals)
		if err := tpcc.Declare(b); err != nil {
			return nil, nil, err
		}
		return e, b, nil
	}

	_, b, err := open()
	if err != nil {
		return err
	}
	s := tpcc.Small(2)
	if err := tpcc.LoadSeeded(b, s, 200, seed); err != nil {
		return err
	}
	if err := fault.Enable(site, fmt.Sprintf("panic@%d", after)); err != nil {
		return err
	}
	res := tpcc.Run(b, tpcc.DriverConfig{Scale: s, Terminals: terminals, Transactions: 3000, Seed: seed})
	if !b.Crashed() {
		return fmt.Errorf("crashtest: tpcc run never crashed at %s (completed %d txns)", site, res.Total())
	}
	fault.Reset()
	// Abandon the crashed engine; reopen and validate.
	e2, b2, err := open()
	if err != nil {
		return err
	}
	defer e2.Close()
	if _, err := e2.Recover(); err != nil {
		return fmt.Errorf("crashtest: tpcc recover: %w", err)
	}
	return tpcc.CheckConsistency(b2, s)
}
