package crashtest

// Backup/restore crash harness: drives the kv workload against an engine
// with a WAL archiver attached, crashes the archiver at one of
// fault.BackupSites() (abandoning engine and archiver like a killed
// process), then "restarts" — reopens both, lets the archiver resync and
// catch up, takes a fresh base backup — and finally restores the archive
// into an empty directory and verifies the restored database matches the
// primary row for row. TPCCBackupRestore does the same end to end under a
// live TPC-C load with an online base backup taken mid-run.

import (
	"fmt"
	"path/filepath"
	"time"

	"phoebedb/internal/backup"
	"phoebedb/internal/core"
	"phoebedb/internal/fault"
	"phoebedb/internal/rel"
	"phoebedb/internal/tpcc"
	"phoebedb/internal/txn"
)

// baseSource wires an open engine's WAL hooks into an online base backup.
func baseSource(e *core.Engine, dir string) backup.BaseSource {
	return backup.BaseSource{
		DataDir: dir,
		MaxGSN:  e.WAL.MaxGSN,
		RaiseGSN: func(g uint64) {
			for i := 0; i < e.WAL.NumWriters(); i++ {
				e.WAL.Writer(i).RaiseGSN(g)
			}
		},
		FlushWAL: e.WAL.FlushAll,
	}
}

// BackupCrash runs one archiver crash-recovery cycle for site (one of
// fault.BackupSites()). dir, archiveDir, and restoreDir must be three
// fresh directories. The contract verified:
//
//   - the crash never damages the primary (its state still satisfies the
//     workload model afterwards),
//   - a restarted archiver resyncs (truncating any torn segment tail),
//     catches up, and passes Verify,
//   - a restore from the archive reproduces the primary's recovered state
//     exactly — same rows, versions, payloads, and row IDs.
func BackupCrash(dir, archiveDir, restoreDir string, seed int64, site string) error {
	const workers = 4
	fault.Reset()
	defer fault.Reset()

	e, err := openEngine(dir, workers+1, 256<<20)
	if err != nil {
		return err
	}
	a, err := backup.OpenArchiver(filepath.Join(dir, "wal"), archiveDir, 0)
	if err != nil {
		return err
	}
	e.SetWALArchiver(a)

	cfg := Config{Seed: seed, IDsPerWorker: 64}
	if cfg.IDsPerWorker <= 0 {
		cfg.IDsPerWorker = 64
	}
	ws := make([]*worker, workers)
	for i := range ws {
		ws[i] = newWorker(i, cfg)
	}

	// Phase 1: build state, archive it, seal an epoch with a checkpoint,
	// and take a first (complete) base backup the restore can fall back on
	// when the crashing site leaves a later base incomplete.
	runWorkload(e, ws, 150)
	if _, err := a.Archive(); err != nil {
		return fmt.Errorf("backupcrash: warm archive: %w", err)
	}
	if err := e.Checkpoint(); err != nil {
		return fmt.Errorf("backupcrash: warm checkpoint: %w", err)
	}
	if _, _, err := a.BaseBackup(baseSource(e, dir)); err != nil {
		return fmt.Errorf("backupcrash: warm base backup: %w", err)
	}

	// Phase 2: produce unarchived log bytes, then crash the archiver.
	runWorkload(e, ws, 150)
	for _, w := range ws {
		if w.err != nil {
			return w.err
		}
	}
	spec := "panic"
	if site == fault.BackupTornSegment {
		spec = "torn(5)"
	}
	if err := fault.Enable(site, spec); err != nil {
		return err
	}
	var crashed bool
	switch site {
	case fault.BackupPreLabel:
		crashed, _ = crashAt(func() error {
			_, _, err := a.BaseBackup(baseSource(e, dir))
			return err
		})
	default:
		crashed, _ = crashAt(func() error {
			_, err := a.Archive()
			return err
		})
	}
	if !crashed {
		return fmt.Errorf("backupcrash: site %s never fired", site)
	}
	fault.Reset()
	// Abandon e and a without Close — the crash left them mid-flight.

	// Restart: recover the primary, resync the archiver, catch up, and
	// take a fresh base backup. Everything must verify.
	e2, err := openEngine(dir, workers+1, 256<<20)
	if err != nil {
		return err
	}
	defer e2.Close()
	if _, err := e2.Recover(); err != nil {
		return fmt.Errorf("backupcrash: recover: %w", err)
	}
	a2, err := backup.OpenArchiver(filepath.Join(dir, "wal"), archiveDir, 0)
	if err != nil {
		return fmt.Errorf("backupcrash: archiver resync: %w", err)
	}
	e2.SetWALArchiver(a2)
	if _, err := a2.Archive(); err != nil {
		return fmt.Errorf("backupcrash: catch-up archive: %w", err)
	}
	if _, _, err := a2.BaseBackup(baseSource(e2, dir)); err != nil {
		return fmt.Errorf("backupcrash: post-crash base backup: %w", err)
	}
	if _, err := backup.Verify(archiveDir); err != nil {
		return fmt.Errorf("backupcrash: verify: %w", err)
	}

	// The primary's own recovered state must still satisfy the model.
	got2, err := readAll(e2, workers)
	if err != nil {
		return err
	}
	if err := checkState(ws, got2); err != nil {
		return fmt.Errorf("backupcrash: primary after crash: %w", err)
	}

	// Restore into a fresh directory and compare against the primary.
	if _, err := backup.Restore(archiveDir, restoreDir, 0); err != nil {
		return fmt.Errorf("backupcrash: restore: %w", err)
	}
	e3, err := openEngine(restoreDir, workers+1, 256<<20)
	if err != nil {
		return err
	}
	defer e3.Close()
	if _, err := e3.Recover(); err != nil {
		return fmt.Errorf("backupcrash: restored recover: %w", err)
	}
	got3, err := readAll(e3, workers)
	if err != nil {
		return err
	}
	if err := checkIndexes(e3, workers, got3); err != nil {
		return fmt.Errorf("backupcrash: restored indexes: %w", err)
	}
	if len(got3) != len(got2) {
		return fmt.Errorf("backupcrash: restored %d rows, primary has %d", len(got3), len(got2))
	}
	for id, p := range got2 {
		r, ok := got3[id]
		if !ok {
			return fmt.Errorf("backupcrash: restored db missing id %d (ver %d)", id, p.ver)
		}
		if r.ver != p.ver || r.pad != p.pad || r.rid != p.rid {
			return fmt.Errorf("backupcrash: id %d diverged: restored (rid=%d ver=%d) primary (rid=%d ver=%d)",
				id, r.rid, r.ver, p.rid, p.ver)
		}
	}
	return nil
}

// TPCCBackupRestore runs TPC-C with continuous archiving, takes an online
// base backup while terminals are committing, crashes the primary at a
// WAL failpoint mid-run, then recovers it, lets the archive catch up, and
// restores into restoreDir. Both the recovered primary and the restored
// copy must pass the TPC-C consistency conditions, and their table
// contents must agree exactly.
func TPCCBackupRestore(dir, archiveDir, restoreDir string, seed int64, site string, after int) error {
	fault.Reset()
	defer fault.Reset()
	const terminals = 4
	open := func(d string) (*core.Engine, *EngineBackend, error) {
		e, err := core.Open(core.Config{
			Dir:             d,
			Slots:           terminals + 1,
			WALSync:         true,
			LockTimeout:     time.Second,
			WALGroups:       1,
			WALGroupOf:      func(int) int { return 0 },
			GroupCommitWait: 200 * time.Microsecond,
		})
		if err != nil {
			return nil, nil, err
		}
		b := NewEngineBackend(e, terminals)
		if err := tpcc.Declare(b); err != nil {
			return nil, nil, err
		}
		return e, b, nil
	}

	e, b, err := open(dir)
	if err != nil {
		return err
	}
	a, err := backup.OpenArchiver(filepath.Join(dir, "wal"), archiveDir, 0)
	if err != nil {
		return err
	}
	e.SetWALArchiver(a)
	s := tpcc.Small(2)
	if err := tpcc.LoadSeeded(b, s, 200, seed); err != nil {
		return err
	}
	if _, err := a.Archive(); err != nil {
		return err
	}
	if err := e.Checkpoint(); err != nil {
		return err
	}

	// Run the benchmark with a WAL crash armed; while it runs, the main
	// goroutine pumps the archiver and takes one online base backup under
	// live traffic. Both pump and backup can themselves trip the armed WAL
	// site (the base backup flushes the WAL), so they run under crashAt.
	if err := fault.Enable(site, fmt.Sprintf("panic@%d", after)); err != nil {
		return err
	}
	runDone := make(chan struct{})
	var res tpcc.Result
	go func() {
		defer close(runDone)
		res = tpcc.Run(b, tpcc.DriverConfig{Scale: s, Terminals: terminals, Transactions: 3000, Seed: seed})
	}()
	var baseTaken, pumpCrashed bool
	var baseErr error
pump:
	for i := 0; ; i++ {
		select {
		case <-runDone:
			break pump
		case <-time.After(time.Millisecond):
		}
		crashed, _ := crashAt(func() error { _, err := a.Archive(); return err })
		if crashed {
			pumpCrashed = true
			break
		}
		if i == 5 && !baseTaken {
			crashed, berr := crashAt(func() error {
				_, _, err := a.BaseBackup(baseSource(e, dir))
				return err
			})
			if crashed {
				pumpCrashed = true
				break
			}
			baseTaken, baseErr = true, berr
		}
	}
	<-runDone
	if !b.Crashed() && !pumpCrashed {
		return fmt.Errorf("backupcrash: tpcc run never crashed at %s (completed %d txns)", site, res.Total())
	}
	if baseTaken && baseErr != nil {
		return fmt.Errorf("backupcrash: online base backup: %w", baseErr)
	}
	fault.Reset()
	// Abandon the crashed engine and archiver.

	// Recover the primary, then bring the archive up to the recovered
	// horizon before any comparison.
	e2, b2, err := open(dir)
	if err != nil {
		return err
	}
	defer e2.Close()
	if _, err := e2.Recover(); err != nil {
		return fmt.Errorf("backupcrash: tpcc recover: %w", err)
	}
	a2, err := backup.OpenArchiver(filepath.Join(dir, "wal"), archiveDir, 0)
	if err != nil {
		return fmt.Errorf("backupcrash: archiver resync: %w", err)
	}
	e2.SetWALArchiver(a2)
	if _, err := a2.Archive(); err != nil {
		return fmt.Errorf("backupcrash: catch-up archive: %w", err)
	}
	if _, err := backup.Verify(archiveDir); err != nil {
		return fmt.Errorf("backupcrash: verify: %w", err)
	}
	if err := tpcc.CheckConsistency(b2, s); err != nil {
		return fmt.Errorf("backupcrash: primary consistency: %w", err)
	}

	if _, err := backup.Restore(archiveDir, restoreDir, 0); err != nil {
		return fmt.Errorf("backupcrash: restore: %w", err)
	}
	e3, b3, err := open(restoreDir)
	if err != nil {
		return err
	}
	defer e3.Close()
	if _, err := e3.Recover(); err != nil {
		return fmt.Errorf("backupcrash: restored recover: %w", err)
	}
	if err := tpcc.CheckConsistency(b3, s); err != nil {
		return fmt.Errorf("backupcrash: restored consistency: %w", err)
	}
	prim, err := countRows(e2, terminals)
	if err != nil {
		return err
	}
	rest, err := countRows(e3, terminals)
	if err != nil {
		return err
	}
	for name, n := range prim {
		if rest[name] != n {
			return fmt.Errorf("backupcrash: table %s: restored %d rows, primary has %d", name, rest[name], n)
		}
	}
	return nil
}

// countRows scans every table on the spare slot and returns name → rows.
func countRows(e *core.Engine, spareSlot int) (map[string]int, error) {
	tx := e.Begin(spareSlot, txn.ReadCommitted, nil, nil, nil)
	defer tx.Commit() // read-only
	out := make(map[string]int)
	for _, t := range e.Tables() {
		n := 0
		if err := tx.ScanTable(t.Name, func(rel.RowID, rel.Row) bool { n++; return true }); err != nil {
			return nil, err
		}
		out[t.Name] = n
	}
	return out, nil
}
