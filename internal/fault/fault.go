// Package fault implements deterministic failpoints for crash-recovery and
// error-path testing. A failpoint is a named site compiled into a kernel
// hot path; when armed it injects a failure action, and when disarmed it
// costs a single atomic load, so production paths stay hot.
//
// Sites are armed programmatically (Enable / EnableSpec) or from the
// environment:
//
//	PHOEBE_FAILPOINTS='wal.preSync=panic' go test ./...
//
// The spec grammar is `action[(arg)][@N]`:
//
//	error        Eval returns ErrInjected (callers propagate it).
//	panic        Eval panics with CrashPanic — the in-process crash used
//	             by the recovery harness (internal/fault/crashtest).
//	sleep(dur)   Eval sleeps for dur, then returns nil.
//	skip         Eval returns ErrSkip; callers guarding an fsync treat it
//	             as "pretend the sync happened" (lost-durability runs).
//	torn[(n)]    TornCut reports n trailing bytes to withhold from the
//	             guarded write; the caller persists the prefix and calls
//	             Crash, simulating a write torn mid-record (default n=3).
//	@N           the action fires on the Nth hit of the site and on every
//	             hit after it (earlier hits pass through). Firing on every
//	             later hit is deliberate: once a crash action starts, no
//	             retried write can slip through and acknowledge a commit.
//
// Multiple `site=spec` pairs are separated by ';' or ','.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names compiled into the kernel. Declared here (not in the packages
// that host them) so harnesses can enumerate sites without import cycles.
// When adding a site: add the constant, wire fault.Eval (or TornCut) at the
// seam, and append it to allSites — and to crashSites if a crash there must
// be recoverable (the harness in crashtest picks it up automatically).
const (
	// WALTornWrite tears the WAL flush: a prefix of the buffered records
	// is written, ending mid-record, then the process "dies".
	WALTornWrite = "wal.tornWrite"
	// WALPreSync fires after the WAL buffer write, before fsync: the
	// classic lost-durability window.
	WALPreSync = "wal.preSync"
	// WALPostSync fires after fsync, before the flush horizon advances:
	// the record is durable but the commit was never acknowledged.
	WALPostSync = "wal.postSync"
	// StorageWritePage guards the data-page-file pwrite (buffer eviction).
	StorageWritePage = "storage.writePage"
	// StorageReadPage guards the data-page-file pread (cold-page load).
	StorageReadPage = "storage.readPage"
	// StorageAppendBlock guards the frozen-block append.
	StorageAppendBlock = "storage.appendBlock"
	// CheckpointPreSave fires before the checkpoint image is written.
	CheckpointPreSave = "checkpoint.preSave"
	// CheckpointPostSave fires after the checkpoint file is atomically
	// renamed into place but before the WAL is truncated.
	CheckpointPostSave = "checkpoint.postSave"
	// CheckpointPreTruncate fires immediately before WAL truncation (after
	// the block file is synced).
	CheckpointPreTruncate = "checkpoint.preTruncate"
	// BufferEvict fires in the buffer pool's eviction loop, before a
	// cooling frame is written out and dropped.
	BufferEvict = "buffer.evict"
	// ReplicaApply fires before a standby applies a shipped WAL record.
	ReplicaApply = "replica.apply"
	// BackupArchiveCopy fires in the WAL archiver before newly parsed log
	// bytes are appended to the current archive segment (crash mid-archive:
	// nothing has been copied yet, the WAL still holds the bytes).
	BackupArchiveCopy = "backup.archiveCopy"
	// BackupTornSegment tears the archive segment append: a prefix of the
	// copied bytes is written, ending mid-record, then the process "dies".
	// The manifest was not updated, so the torn tail is beyond the
	// acknowledged archive and is discarded on the archiver's next open.
	BackupTornSegment = "backup.tornSegment"
	// BackupPreLabel fires during a base backup after the data files
	// (checkpoint image, frozen blocks, schema) are copied but before the
	// backup label is written. A crash here leaves a label-less base
	// directory that verify/restore must ignore.
	BackupPreLabel = "backup.preLabel"
	// FrozenSegmentWrite fires before a cold segment (freeze batch or
	// compaction output) is appended to the block file. A crash here may
	// leave partial segment bytes in the append-only file; nothing
	// references them, so they are harmless garbage.
	FrozenSegmentWrite = "frozen.segmentWrite"
	// FrozenManifestSwap fires during checkpoint, before the new cold
	// manifest epoch file is renamed into place. A crash here leaves the
	// previous checkpoint (and its manifest epoch) authoritative.
	FrozenManifestSwap = "frozen.manifestSwap"
	// FrozenCompactMerge fires after a compaction merge has written its
	// output segment but before the in-memory segment directory swap. A
	// crash here orphans the merged bytes; the input segments survive.
	FrozenCompactMerge = "frozen.compactMerge"
	// SQLIndexBackfill fires once per row during an online CREATE INDEX
	// backfill scan. Indexes are in-memory (rebuilt from the WAL on
	// recovery), so a crash here must leave the table data consistent and
	// the half-built index simply gone.
	SQLIndexBackfill = "sql.indexBackfill"
)

var allSites = []string{
	WALTornWrite, WALPreSync, WALPostSync,
	StorageWritePage, StorageReadPage, StorageAppendBlock,
	CheckpointPreSave, CheckpointPostSave, CheckpointPreTruncate,
	BufferEvict, ReplicaApply,
	BackupArchiveCopy, BackupTornSegment, BackupPreLabel,
	FrozenSegmentWrite, FrozenManifestSwap, FrozenCompactMerge,
	SQLIndexBackfill,
}

// BackupSites are the failpoints in the backup/archive path; the backup
// crash harness (crashtest.Backup) iterates this list.
var backupSites = []string{
	BackupArchiveCopy, BackupTornSegment, BackupPreLabel,
}

// BackupSites returns the archiver/base-backup failpoint sites.
func BackupSites() []string { return append([]string(nil), backupSites...) }

// crashSites are the sites where an injected crash must leave the database
// recoverable; the crash-recovery harness iterates this list.
var crashSites = []string{
	WALPreSync, WALPostSync, WALTornWrite,
	CheckpointPreSave, CheckpointPostSave, CheckpointPreTruncate,
	BufferEvict, StorageWritePage,
	FrozenSegmentWrite, FrozenManifestSwap, FrozenCompactMerge,
	SQLIndexBackfill,
}

// AllSites returns every failpoint site compiled into the kernel.
func AllSites() []string { return append([]string(nil), allSites...) }

// CrashSites returns the sites the crash-recovery harness must cover.
func CrashSites() []string { return append([]string(nil), crashSites...) }

// Sentinel results of Eval.
var (
	// ErrInjected is returned (wrapped with the site name) by the `error`
	// action.
	ErrInjected = errors.New("fault: injected error")
	// ErrSkip is returned by the `skip` action; callers guarding an fsync
	// treat it as "skip the guarded operation and continue".
	ErrSkip = errors.New("fault: skip guarded operation")
)

// CrashPanic is the value thrown by the `panic` action (and Crash). Crash
// harnesses recover it with IsCrash; anything else re-panics.
type CrashPanic struct{ Site string }

// String implements fmt.Stringer.
func (c CrashPanic) String() string { return "fault: injected crash at " + c.Site }

// IsCrash reports whether a recovered panic value is an injected crash.
func IsCrash(r any) bool { _, ok := r.(CrashPanic); return ok }

// Crash panics with CrashPanic for the site. Used by torn-write callers
// after persisting the partial buffer; Eval's `panic` action uses it too.
func Crash(site string) { panic(CrashPanic{Site: site}) }

type action uint8

const (
	actError action = iota + 1
	actPanic
	actSleep
	actSkip
	actTorn
)

type point struct {
	action action
	sleep  time.Duration
	torn   int
	after  int64 // fire on the Nth hit and later; 0 = every hit
	hits   atomic.Int64
}

// fired consumes one hit and reports whether the action fires.
func (p *point) fired() bool { return p.hits.Add(1) >= p.after }

// armed counts enabled sites. Zero makes Eval/TornCut a single atomic load
// — the only cost failpoints add to production paths.
var armed atomic.Int64

var (
	mu     sync.Mutex
	points = make(map[string]*point)
)

// Enabled reports whether any failpoint is armed (one atomic load).
func Enabled() bool { return armed.Load() != 0 }

// Eval evaluates the named site. With nothing armed it returns nil after a
// single atomic load. An armed site sleeps (sleep), panics with CrashPanic
// (panic), or returns ErrInjected / ErrSkip wrapped with the site name.
func Eval(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	return evalSlow(site)
}

func evalSlow(site string) error {
	p := lookup(site)
	if p == nil || p.action == actTorn || !p.fired() {
		return nil
	}
	switch p.action {
	case actError:
		return fmt.Errorf("%w at %s", ErrInjected, site)
	case actPanic:
		Crash(site)
	case actSleep:
		time.Sleep(p.sleep)
	case actSkip:
		return fmt.Errorf("%w at %s", ErrSkip, site)
	}
	return nil
}

// TornCut evaluates a torn-write site guarding a write of n bytes. It
// returns the number of trailing bytes to withhold (in [1, n]) when the
// site is armed with the torn action and fires, and 0 otherwise. The
// caller writes the prefix and then calls Crash(site).
func TornCut(site string, n int) int {
	if armed.Load() == 0 || n <= 0 {
		return 0
	}
	p := lookup(site)
	if p == nil || p.action != actTorn || !p.fired() {
		return 0
	}
	cut := p.torn
	if cut <= 0 {
		cut = 3
	}
	if cut > n {
		cut = n
	}
	return cut
}

func lookup(site string) *point {
	mu.Lock()
	defer mu.Unlock()
	return points[site]
}

// Enable arms one site with a spec (see the package comment for the
// grammar). Re-enabling a site replaces its previous configuration.
func Enable(site, spec string) error {
	p, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("fault: site %s: %w", site, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[site]; !ok {
		armed.Add(1)
	}
	points[site] = p
	return nil
}

// Disable disarms one site.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[site]; ok {
		delete(points, site)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for s := range points {
		delete(points, s)
		armed.Add(-1)
	}
}

// HitCounts returns, for each armed site, how many times its guarded seam
// was reached (hits count evaluations, whether or not the action fired —
// an `@N` point shows its approach to the trigger). Crash-test runs use
// this to assert a failpoint actually fired.
func HitCounts() map[string]int64 {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int64, len(points))
	for s, p := range points {
		out[s] = p.hits.Load()
	}
	return out
}

// Armed returns the currently armed site names, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for s := range points {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// EnableSpec arms sites from a combined spec: `site=spec[;site=spec...]`
// (',' also separates pairs). This is the PHOEBE_FAILPOINTS format.
func EnableSpec(combined string) error {
	for _, pair := range strings.FieldsFunc(combined, func(r rune) bool {
		return r == ';' || r == ','
	}) {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("fault: malformed failpoint %q (want site=action)", pair)
		}
		if err := Enable(strings.TrimSpace(site), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

func parseSpec(spec string) (*point, error) {
	p := &point{}
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		n, err := strconv.ParseInt(spec[at+1:], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad hit count in %q", spec)
		}
		p.after = n
		spec = spec[:at]
	}
	name, arg := spec, ""
	if i := strings.IndexByte(spec, '('); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("unbalanced parens in %q", spec)
		}
		name, arg = spec[:i], spec[i+1:len(spec)-1]
	}
	switch name {
	case "error":
		p.action = actError
	case "panic":
		p.action = actPanic
	case "skip":
		p.action = actSkip
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("bad sleep duration %q", arg)
		}
		p.action, p.sleep = actSleep, d
	case "torn":
		p.action = actTorn
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad torn byte count %q", arg)
			}
			p.torn = n
		}
	default:
		return nil, fmt.Errorf("unknown action %q", name)
	}
	return p, nil
}

func init() {
	if s := os.Getenv("PHOEBE_FAILPOINTS"); s != "" {
		if err := EnableSpec(s); err != nil {
			fmt.Fprintf(os.Stderr, "phoebedb: ignoring PHOEBE_FAILPOINTS: %v\n", err)
			Reset()
		}
	}
}
