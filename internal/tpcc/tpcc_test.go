package tpcc_test

import (
	"testing"
	"time"

	phoebedb "phoebedb"

	"phoebedb/internal/adapter"
	"phoebedb/internal/baseline"
	"phoebedb/internal/rel"
	"phoebedb/internal/tpcc"
)

func phoebeBackend(t testing.TB) tpcc.Backend {
	t.Helper()
	db, err := phoebedb.Open(phoebedb.Options{
		Dir:            t.TempDir(),
		Workers:        2,
		SlotsPerWorker: 8,
		LockTimeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return adapter.Phoebe{DB: db}
}

func baselineBackend(t testing.TB) tpcc.Backend {
	t.Helper()
	db, err := baseline.Open(baseline.Config{Dir: t.TempDir(), LockTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return adapter.Baseline{DB: db}
}

func loadSmall(t testing.TB, b tpcc.Backend, warehouses int) tpcc.Scale {
	t.Helper()
	s := tpcc.Small(warehouses)
	if err := tpcc.Declare(b); err != nil {
		t.Fatal(err)
	}
	if err := tpcc.Load(b, s, 0); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoaderCardinalities(t *testing.T) {
	b := phoebeBackend(t)
	s := loadSmall(t, b, 2)
	counts := map[string]int{}
	err := b.Execute(func(c tpcc.Client) error {
		for _, table := range []string{"warehouse", "district", "customer", "item", "stock"} {
			n := 0
			// Count via the primary index scan with an empty prefix.
			var idx string
			switch table {
			case "warehouse":
				idx = "warehouse_pk"
			case "district":
				idx = "district_pk"
			case "customer":
				idx = "customer_pk"
			case "item":
				idx = "item_pk"
			case "stock":
				idx = "stock_pk"
			}
			if err := c.ScanIndex(table, idx, nil, func(rel.RowID, rel.Row) bool {
				n++
				return true
			}); err != nil {
				return err
			}
			counts[table] = n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts["warehouse"] != s.Warehouses {
		t.Errorf("warehouses = %d", counts["warehouse"])
	}
	if counts["district"] != s.Warehouses*s.DistrictsPerWH {
		t.Errorf("districts = %d", counts["district"])
	}
	if counts["customer"] != s.Warehouses*s.DistrictsPerWH*s.CustomersPerDistrict {
		t.Errorf("customers = %d", counts["customer"])
	}
	if counts["item"] != s.Items {
		t.Errorf("items = %d", counts["item"])
	}
	if counts["stock"] != s.Warehouses*s.Items {
		t.Errorf("stock = %d", counts["stock"])
	}
}

func TestLoadedDatabaseIsConsistent(t *testing.T) {
	b := phoebeBackend(t)
	s := loadSmall(t, b, 1)
	if err := tpcc.CheckConsistency(b, s); err != nil {
		t.Fatal(err)
	}
}

func TestEachTransactionTypeOnPhoebe(t *testing.T) {
	b := phoebeBackend(t)
	s := loadSmall(t, b, 1)
	runEachTxn(t, b, s)
	if err := tpcc.CheckConsistency(b, s); err != nil {
		t.Fatal(err)
	}
}

func TestEachTransactionTypeOnBaseline(t *testing.T) {
	b := baselineBackend(t)
	s := loadSmall(t, b, 1)
	runEachTxn(t, b, s)
	if err := tpcc.CheckConsistency(b, s); err != nil {
		t.Fatal(err)
	}
}

func runEachTxn(t *testing.T, b tpcc.Backend, s tpcc.Scale) {
	t.Helper()
	// A short fixed-count run exercises all five profiles via the mix;
	// beyond that, hit each profile directly with a deterministic driver.
	for name, res := range map[string]tpcc.Result{
		"mix": tpcc.Run(b, tpcc.DriverConfig{Scale: s, Terminals: 2, Transactions: 120, Affinity: true, Seed: 7}),
	} {
		if res.Errors > 0 {
			t.Fatalf("%s: %d unexpected errors", name, res.Errors)
		}
		if res.Total() == 0 {
			t.Fatalf("%s: nothing completed", name)
		}
	}
}

func TestWorkloadConcurrentConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, sys := range []struct {
		name string
		mk   func(testing.TB) tpcc.Backend
	}{
		{"phoebe", phoebeBackend},
		{"baseline", baselineBackend},
	} {
		t.Run(sys.name, func(t *testing.T) {
			b := sys.mk(t)
			s := loadSmall(t, b, 2)
			res := tpcc.Run(b, tpcc.DriverConfig{
				Scale:     s,
				Terminals: 8,
				Duration:  400 * time.Millisecond,
				Affinity:  true,
				Seed:      11,
			})
			if res.Total() == 0 {
				t.Fatal("nothing completed")
			}
			if res.Errors > res.Total()/10 {
				t.Fatalf("too many errors: %d of %d", res.Errors, res.Total())
			}
			if err := tpcc.CheckConsistency(b, s); err != nil {
				t.Fatal(err)
			}
			if res.TpmC() <= 0 || res.Tpm() < res.TpmC() {
				t.Fatalf("throughput bookkeeping wrong: tpmC=%.0f tpm=%.0f", res.TpmC(), res.Tpm())
			}
		})
	}
}

func TestUserAbortPathRollsBack(t *testing.T) {
	// Run enough New-Orders that the 1 % abort path fires, then verify
	// consistency: aborted orders must leave no trace.
	b := phoebeBackend(t)
	s := loadSmall(t, b, 1)
	res := tpcc.Run(b, tpcc.DriverConfig{Scale: s, Terminals: 4, Transactions: 600, Affinity: true, Seed: 3})
	if res.Errors > 0 {
		t.Fatalf("%d unexpected errors", res.Errors)
	}
	if res.UserAbort == 0 {
		t.Skip("no user aborts drawn at this seed/count")
	}
	if err := tpcc.CheckConsistency(b, s); err != nil {
		t.Fatalf("abort left inconsistency: %v", err)
	}
}

func TestLastNameGeneration(t *testing.T) {
	if tpcc.LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", tpcc.LastName(0))
	}
	if tpcc.LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", tpcc.LastName(371))
	}
	if tpcc.LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", tpcc.LastName(999))
	}
}

func TestResultMetrics(t *testing.T) {
	var r tpcc.Result
	r.Duration = time.Minute
	r.Completed[tpcc.TxnNewOrder] = 450
	r.Completed[tpcc.TxnPayment] = 430
	if r.TpmC() != 450 {
		t.Fatalf("TpmC = %g", r.TpmC())
	}
	if r.Tpm() != 880 {
		t.Fatalf("Tpm = %g", r.Tpm())
	}
	if r.Total() != 880 {
		t.Fatalf("Total = %d", r.Total())
	}
	if tpcc.TxnNewOrder.String() != "NewOrder" || tpcc.TxnStockLevel.String() != "StockLevel" {
		t.Fatal("txn names wrong")
	}
}
