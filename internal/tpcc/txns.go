package tpcc

import (
	"errors"
	"fmt"
	"sort"

	"phoebedb/internal/rel"
)

// ErrRollback marks the intentional 1 % New-Order user abort (TPC-C clause
// 2.4.1.4): the driver rolls the transaction back and counts it separately
// from failures.
var ErrRollback = errors.New("tpcc: intentional user rollback")

// errNotFound wraps unexpected missing rows in transaction logic.
func errNotFound(what string, args ...interface{}) error {
	return fmt.Errorf("tpcc: %s not found", fmt.Sprintf(what, args...))
}

// NewOrder executes the New-Order transaction (clause 2.4) for warehouse
// wID. Returns ErrRollback for the spec-mandated 1 % invalid-item aborts.
func NewOrder(c Client, r *rng, s Scale, wID int64) error {
	dID := r.uniform(1, int64(s.DistrictsPerWH))
	cID := r.customerID(int64(s.CustomersPerDistrict))

	_, wRow, ok, err := c.GetByIndex("warehouse", "warehouse_pk", rel.Int(wID))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("warehouse %d", wID)
	}
	wTax := wRow[WTax].F // borrowed row: extract before the next operation
	dRID, dRow, ok, err := c.GetByIndex("district", "district_pk", rel.Int(wID), rel.Int(dID))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("district %d/%d", wID, dID)
	}
	dTax := dRow[DTax].F
	// Atomically claim the next order id (UPDATE ... RETURNING semantics).
	newDRow, err := c.Modify("district", dRID, func(cur rel.Row) (map[string]rel.Value, error) {
		return map[string]rel.Value{"d_next_o_id": rel.Int(cur[DNextOID].I + 1)}, nil
	})
	if err != nil {
		return err
	}
	oID := newDRow[DNextOID].I - 1
	_, cRow, ok, err := c.GetByIndex("customer", "customer_pk", rel.Int(wID), rel.Int(dID), rel.Int(cID))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("customer %d/%d/%d", wID, dID, cID)
	}
	cDiscount := cRow[CDiscount].F

	olCnt := r.uniform(5, 15)
	allLocal := int64(1)
	rollbackLast := r.Intn(100) == 0 // 1 % invalid item on the last line

	if _, err := c.Insert("orders", rel.Row{
		rel.Int(oID), rel.Int(dID), rel.Int(wID), rel.Int(cID),
		rel.Int(1), rel.Int(0), rel.Int(olCnt), rel.Int(allLocal),
	}); err != nil {
		return err
	}
	if _, err := c.Insert("new_order", rel.Row{rel.Int(oID), rel.Int(dID), rel.Int(wID)}); err != nil {
		return err
	}

	var total float64
	for ol := int64(1); ol <= olCnt; ol++ {
		iID := r.itemID(int64(s.Items))
		if rollbackLast && ol == olCnt {
			iID = int64(s.Items) + 777777 // unused item id -> abort
		}
		supplyW := wID
		if s.Warehouses > 1 && r.Intn(100) == 0 {
			// 1 % remote order line.
			for supplyW == wID {
				supplyW = r.uniform(1, int64(s.Warehouses))
			}
			allLocal = 0
		}
		quantity := r.uniform(1, 10)

		_, iRow, ok, err := c.GetByIndex("item", "item_pk", rel.Int(iID))
		if err != nil {
			return err
		}
		if !ok {
			return ErrRollback // the intentional abort path
		}
		iPrice := iRow[IPrice].F
		sRID, _, ok, err := c.GetByIndex("stock", "stock_pk", rel.Int(supplyW), rel.Int(iID))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("stock %d/%d", supplyW, iID)
		}
		remote := supplyW != wID
		sRow, err := c.Modify("stock", sRID, func(cur rel.Row) (map[string]rel.Value, error) {
			qty := cur[SQuantity].I
			if qty >= quantity+10 {
				qty -= quantity
			} else {
				qty = qty - quantity + 91
			}
			set := map[string]rel.Value{
				"s_quantity":  rel.Int(qty),
				"s_ytd":       rel.Int(cur[SYtd].I + quantity),
				"s_order_cnt": rel.Int(cur[SOrderCnt].I + 1),
			}
			if remote {
				set["s_remote_cnt"] = rel.Int(cur[SRemoteCnt].I + 1)
			}
			return set, nil
		})
		if err != nil {
			return err
		}
		amount := float64(quantity) * iPrice
		total += amount
		if _, err := c.Insert("order_line", rel.Row{
			rel.Int(oID), rel.Int(dID), rel.Int(wID), rel.Int(ol),
			rel.Int(iID), rel.Int(supplyW), rel.Int(0),
			rel.Int(quantity), rel.Float(amount), rel.Str(sRow[SDist].S),
		}); err != nil {
			return err
		}
	}
	// The computed order total (with taxes and discount) is returned to
	// the terminal in real TPC-C; computing it exercises the same reads.
	total = total * (1 - cDiscount) * (1 + wTax + dTax)
	_ = total
	return nil
}

// findCustomer resolves a customer by id (40 %) or last name (60 %, picking
// the spec's middle customer ordered by first name). It returns the row_id
// and c_id only: scan rows are borrowed (valid just for the callback), so
// the scalars are extracted inside it.
func findCustomer(c Client, r *rng, s Scale, wID, dID int64) (rel.RowID, int64, error) {
	if r.Intn(100) < 40 {
		cID := r.customerID(int64(s.CustomersPerDistrict))
		rid, _, ok, err := c.GetByIndex("customer", "customer_pk", rel.Int(wID), rel.Int(dID), rel.Int(cID))
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			return 0, 0, errNotFound("customer %d/%d/%d", wID, dID, cID)
		}
		return rid, cID, nil
	}
	last := r.lastNameRun(s.MaxLastNames)
	type hit struct {
		rid   rel.RowID
		cID   int64
		first string
	}
	var hits []hit
	err := c.ScanIndex("customer", "customer_name",
		[]rel.Value{rel.Int(wID), rel.Int(dID), rel.Str(last)},
		func(rid rel.RowID, row rel.Row) bool {
			hits = append(hits, hit{rid, row[CID].I, row[CFirst].S})
			return true
		})
	if err != nil {
		return 0, 0, err
	}
	if len(hits) == 0 {
		// Fall back to by-id: small scales can miss a name.
		cID := r.customerID(int64(s.CustomersPerDistrict))
		rid, _, ok, err := c.GetByIndex("customer", "customer_pk", rel.Int(wID), rel.Int(dID), rel.Int(cID))
		if err != nil || !ok {
			return 0, 0, errNotFound("customer by name %q", last)
		}
		return rid, cID, nil
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].first < hits[j].first })
	h := hits[len(hits)/2]
	return h.rid, h.cID, nil
}

// Payment executes the Payment transaction (clause 2.5).
func Payment(c Client, r *rng, s Scale, wID int64) error {
	dID := r.uniform(1, int64(s.DistrictsPerWH))
	amount := float64(r.uniform(100, 500000)) / 100

	// 85 % home district, 15 % remote customer district.
	cWID, cDID := wID, dID
	if s.Warehouses > 1 && r.Intn(100) >= 85 {
		for cWID == wID {
			cWID = r.uniform(1, int64(s.Warehouses))
		}
		cDID = r.uniform(1, int64(s.DistrictsPerWH))
	}

	wRID, _, ok, err := c.GetByIndex("warehouse", "warehouse_pk", rel.Int(wID))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("warehouse %d", wID)
	}
	wRow, err := c.Modify("warehouse", wRID, func(cur rel.Row) (map[string]rel.Value, error) {
		return map[string]rel.Value{"w_ytd": rel.Float(cur[WYtd].F + amount)}, nil
	})
	if err != nil {
		return err
	}
	dRID, _, ok, err := c.GetByIndex("district", "district_pk", rel.Int(wID), rel.Int(dID))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("district %d/%d", wID, dID)
	}
	dRow, err := c.Modify("district", dRID, func(cur rel.Row) (map[string]rel.Value, error) {
		return map[string]rel.Value{"d_ytd": rel.Float(cur[DYtd].F + amount)}, nil
	})
	if err != nil {
		return err
	}

	cRID, cID, err := findCustomer(c, r, s, cWID, cDID)
	if err != nil {
		return err
	}
	if _, err := c.Modify("customer", cRID, func(cur rel.Row) (map[string]rel.Value, error) {
		set := map[string]rel.Value{
			"c_balance":     rel.Float(cur[CBalance].F - amount),
			"c_ytd_payment": rel.Float(cur[CYtdPayment].F + amount),
			"c_payment_cnt": rel.Int(cur[CPaymentCnt].I + 1),
		}
		if cur[CCredit].S == "BC" {
			// Bad credit: prepend payment info to c_data, capped at 500.
			data := fmt.Sprintf("%d %d %d %d %d %.2f|%s",
				cur[CID].I, cDID, cWID, dID, wID, amount, cur[CData].S)
			if len(data) > 500 {
				data = data[:500]
			}
			set["c_data"] = rel.Str(data)
		}
		return set, nil
	}); err != nil {
		return err
	}
	_, err = c.Insert("history", rel.Row{
		rel.Int(cID), rel.Int(cDID), rel.Int(cWID),
		rel.Int(dID), rel.Int(wID), rel.Int(2), rel.Float(amount),
		rel.Str(wRow[WName].S + "    " + dRow[DName].S),
	})
	return err
}

// OrderStatus executes the Order-Status transaction (clause 2.6).
func OrderStatus(c Client, r *rng, s Scale, wID int64) error {
	dID := r.uniform(1, int64(s.DistrictsPerWH))
	_, cID, err := findCustomer(c, r, s, wID, dID)
	if err != nil {
		return err
	}
	// Latest order of the customer.
	var lastOID int64 = -1
	err = c.ScanIndex("orders", "orders_customer",
		[]rel.Value{rel.Int(wID), rel.Int(dID), rel.Int(cID)},
		func(rid rel.RowID, row rel.Row) bool {
			if row[OID].I > lastOID {
				lastOID = row[OID].I
			}
			return true
		})
	if err != nil {
		return err
	}
	if lastOID < 0 {
		return nil // customer has no orders yet: valid outcome
	}
	// Read its order lines.
	lines := 0
	err = c.ScanIndex("order_line", "order_line_pk",
		[]rel.Value{rel.Int(wID), rel.Int(dID), rel.Int(lastOID)},
		func(rid rel.RowID, row rel.Row) bool {
			lines++
			return true
		})
	if err != nil {
		return err
	}
	if lines == 0 {
		return errNotFound("order lines for order %d/%d/%d", wID, dID, lastOID)
	}
	return nil
}

// Delivery executes the Delivery transaction (clause 2.7): deliver the
// oldest undelivered order of every district of the warehouse.
func Delivery(c Client, r *rng, s Scale, wID int64) error {
	carrier := r.uniform(1, 10)
	for dID := int64(1); dID <= int64(s.DistrictsPerWH); dID++ {
		// Oldest NEW_ORDER: the pk scan is ascending in no_o_id.
		var noRID rel.RowID
		var oID int64 = -1
		err := c.ScanIndex("new_order", "new_order_pk",
			[]rel.Value{rel.Int(wID), rel.Int(dID)},
			func(rid rel.RowID, row rel.Row) bool {
				noRID, oID = rid, row[NOOID].I
				return false
			})
		if err != nil {
			return err
		}
		if oID < 0 {
			continue // district fully delivered: skipped per spec
		}
		if err := c.Delete("new_order", noRID); err != nil {
			// Another terminal delivered this order between our scan and
			// the delete; skip the district.
			continue
		}
		oRID, oRow, ok, err := c.GetByIndex("orders", "orders_pk", rel.Int(wID), rel.Int(dID), rel.Int(oID))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("order %d/%d/%d", wID, dID, oID)
		}
		cID := oRow[OCID].I // borrowed row: extract before the next operation
		if err := c.Update("orders", oRID, map[string]rel.Value{"o_carrier_id": rel.Int(carrier)}); err != nil {
			return err
		}
		// Stamp delivery date on each line, summing the amounts.
		type line struct {
			rid rel.RowID
		}
		var lineRIDs []line
		var total float64
		err = c.ScanIndex("order_line", "order_line_pk",
			[]rel.Value{rel.Int(wID), rel.Int(dID), rel.Int(oID)},
			func(rid rel.RowID, row rel.Row) bool {
				lineRIDs = append(lineRIDs, line{rid})
				total += row[OLAmount].F
				return true
			})
		if err != nil {
			return err
		}
		for _, l := range lineRIDs {
			if err := c.Update("order_line", l.rid, map[string]rel.Value{"ol_delivery_d": rel.Int(3)}); err != nil {
				return err
			}
		}
		cRID, _, ok, err := c.GetByIndex("customer", "customer_pk", rel.Int(wID), rel.Int(dID), rel.Int(cID))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("customer %d/%d/%d", wID, dID, cID)
		}
		if _, err := c.Modify("customer", cRID, func(cur rel.Row) (map[string]rel.Value, error) {
			return map[string]rel.Value{
				"c_balance":      rel.Float(cur[CBalance].F + total),
				"c_delivery_cnt": rel.Int(cur[CDeliveryCnt].I + 1),
			}, nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// StockLevel executes the Stock-Level transaction (clause 2.8): count
// distinct items in the district's last 20 orders whose stock is below the
// threshold.
func StockLevel(c Client, r *rng, s Scale, wID int64) error {
	dID := r.uniform(1, int64(s.DistrictsPerWH))
	threshold := r.uniform(10, 20)
	_, dRow, ok, err := c.GetByIndex("district", "district_pk", rel.Int(wID), rel.Int(dID))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("district %d/%d", wID, dID)
	}
	nextOID := dRow[DNextOID].I
	lo := nextOID - 20
	if lo < 1 {
		lo = 1
	}
	items := make(map[int64]bool)
	for oID := lo; oID < nextOID; oID++ {
		err := c.ScanIndex("order_line", "order_line_pk",
			[]rel.Value{rel.Int(wID), rel.Int(dID), rel.Int(oID)},
			func(rid rel.RowID, row rel.Row) bool {
				items[row[OLIID].I] = true
				return true
			})
		if err != nil {
			return err
		}
	}
	low := 0
	for iID := range items {
		_, sRow, ok, err := c.GetByIndex("stock", "stock_pk", rel.Int(wID), rel.Int(iID))
		if err != nil {
			return err
		}
		if ok && sRow[SQuantity].I < threshold {
			low++
		}
	}
	_ = low
	return nil
}
