// Package tpcc implements the TPC-C benchmark (§9): the nine-table schema,
// a scaled data loader, all five transaction profiles with the standard
// mix (New-Order 45 %, Payment 43 %, Order-Status 4 %, Delivery 4 %,
// Stock-Level 4 %), a multi-terminal driver reporting tpmC and tpm, and
// the consistency conditions used to validate an engine after a run.
//
// The workload is engine-agnostic: transactions are written against the
// Client interface, which both the PhoebeDB kernel and the PostgreSQL-
// style baseline engine satisfy, so the comparison experiments run the
// same code against both systems — the in-process analogue of the paper's
// HammerDB TPROC-C setup, where both systems execute the same server-side
// transaction procedures.
package tpcc

import (
	"phoebedb/internal/rel"
)

// Client is the transaction-scope surface the workload needs. Both
// phoebedb's *core.Tx and the baseline engine's transactions satisfy it.
type Client interface {
	Insert(table string, row rel.Row) (rel.RowID, error)
	Get(table string, rid rel.RowID) (rel.Row, bool, error)
	GetByIndex(table, index string, vals ...rel.Value) (rel.RowID, rel.Row, bool, error)
	ScanIndex(table, index string, vals []rel.Value, fn func(rid rel.RowID, row rel.Row) bool) error
	Update(table string, rid rel.RowID, set map[string]rel.Value) error
	// Modify is an atomic read-modify-write (UPDATE ... RETURNING): fn
	// sees the current row under the row's write lock and returns the
	// columns to set; the resulting row is returned. TPC-C's counters
	// (D_NEXT_O_ID, the YTD accumulations, stock quantities) require it.
	Modify(table string, rid rel.RowID, fn func(cur rel.Row) (map[string]rel.Value, error)) (rel.Row, error)
	Delete(table string, rid rel.RowID) error
}

// Backend executes transactions and declares schema; implemented by thin
// adapters over phoebedb.DB and baseline.DB.
type Backend interface {
	CreateTable(name string, schema *rel.Schema) error
	CreateIndex(table, index string, cols []string, unique bool) error
	// Execute runs fn as one transaction: commit on nil, rollback on
	// error. ErrRollback returns are expected (1 % of New-Orders abort by
	// spec) and must roll back without being treated as failures.
	Execute(fn func(c Client) error) error
}

// TaggedBackend is optionally implemented by backends that attribute a
// transaction's cost to a named logical statement (per-statement
// aggregates, wait-event breakdowns). The driver uses it when available,
// tagging each transaction "tpcc.<TxnType>".
type TaggedBackend interface {
	ExecuteTagged(name string, fn func(c Client) error) error
}

// Column index constants per table, in schema order.
//
// WAREHOUSE
const (
	WID = iota
	WName
	WStreet
	WCity
	WState
	WZip
	WTax
	WYtd
)

// DISTRICT
const (
	DID = iota
	DWID
	DName
	DStreet
	DCity
	DState
	DZip
	DTax
	DYtd
	DNextOID
)

// CUSTOMER
const (
	CID = iota
	CDID
	CWID
	CFirst
	CMiddle
	CLast
	CStreet
	CCity
	CState
	CZip
	CPhone
	CSince
	CCredit
	CCreditLim
	CDiscount
	CBalance
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	CData
)

// HISTORY
const (
	HCID = iota
	HCDID
	HCWID
	HDID
	HWID
	HDate
	HAmount
	HData
)

// NEW_ORDER
const (
	NOOID = iota
	NODID
	NOWID
)

// ORDERS
const (
	OID = iota
	ODID
	OWID
	OCID
	OEntryD
	OCarrierID
	OOlCnt
	OAllLocal
)

// ORDER_LINE
const (
	OLOID = iota
	OLDID
	OLWID
	OLNumber
	OLIID
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmount
	OLDistInfo
)

// ITEM
const (
	IID = iota
	IImID
	IName
	IPrice
	IData
)

// STOCK
const (
	SIID = iota
	SWID
	SQuantity
	SDist
	SYtd
	SOrderCnt
	SRemoteCnt
	SData
)

func i64(n string) rel.Column { return rel.Column{Name: n, Type: rel.TInt64} }
func f64(n string) rel.Column { return rel.Column{Name: n, Type: rel.TFloat64} }
func str(n string) rel.Column { return rel.Column{Name: n, Type: rel.TString} }

// Schemas maps table name to schema.
func Schemas() map[string]*rel.Schema {
	return map[string]*rel.Schema{
		"warehouse": rel.NewSchema(
			i64("w_id"), str("w_name"), str("w_street"), str("w_city"),
			str("w_state"), str("w_zip"), f64("w_tax"), f64("w_ytd"),
		),
		"district": rel.NewSchema(
			i64("d_id"), i64("d_w_id"), str("d_name"), str("d_street"),
			str("d_city"), str("d_state"), str("d_zip"), f64("d_tax"),
			f64("d_ytd"), i64("d_next_o_id"),
		),
		"customer": rel.NewSchema(
			i64("c_id"), i64("c_d_id"), i64("c_w_id"), str("c_first"),
			str("c_middle"), str("c_last"), str("c_street"), str("c_city"),
			str("c_state"), str("c_zip"), str("c_phone"), i64("c_since"),
			str("c_credit"), f64("c_credit_lim"), f64("c_discount"),
			f64("c_balance"), f64("c_ytd_payment"), i64("c_payment_cnt"),
			i64("c_delivery_cnt"), str("c_data"),
		),
		"history": rel.NewSchema(
			i64("h_c_id"), i64("h_c_d_id"), i64("h_c_w_id"), i64("h_d_id"),
			i64("h_w_id"), i64("h_date"), f64("h_amount"), str("h_data"),
		),
		"new_order": rel.NewSchema(
			i64("no_o_id"), i64("no_d_id"), i64("no_w_id"),
		),
		"orders": rel.NewSchema(
			i64("o_id"), i64("o_d_id"), i64("o_w_id"), i64("o_c_id"),
			i64("o_entry_d"), i64("o_carrier_id"), i64("o_ol_cnt"), i64("o_all_local"),
		),
		"order_line": rel.NewSchema(
			i64("ol_o_id"), i64("ol_d_id"), i64("ol_w_id"), i64("ol_number"),
			i64("ol_i_id"), i64("ol_supply_w_id"), i64("ol_delivery_d"),
			i64("ol_quantity"), f64("ol_amount"), str("ol_dist_info"),
		),
		"item": rel.NewSchema(
			i64("i_id"), i64("i_im_id"), str("i_name"), f64("i_price"), str("i_data"),
		),
		"stock": rel.NewSchema(
			i64("s_i_id"), i64("s_w_id"), i64("s_quantity"), str("s_dist"),
			i64("s_ytd"), i64("s_order_cnt"), i64("s_remote_cnt"), str("s_data"),
		),
	}
}

type indexDef struct {
	table, name string
	cols        []string
	unique      bool
}

var indexDefs = []indexDef{
	{"warehouse", "warehouse_pk", []string{"w_id"}, true},
	{"district", "district_pk", []string{"d_w_id", "d_id"}, true},
	{"customer", "customer_pk", []string{"c_w_id", "c_d_id", "c_id"}, true},
	{"customer", "customer_name", []string{"c_w_id", "c_d_id", "c_last"}, false},
	{"new_order", "new_order_pk", []string{"no_w_id", "no_d_id", "no_o_id"}, true},
	{"orders", "orders_pk", []string{"o_w_id", "o_d_id", "o_id"}, true},
	{"orders", "orders_customer", []string{"o_w_id", "o_d_id", "o_c_id"}, false},
	{"order_line", "order_line_pk", []string{"ol_w_id", "ol_d_id", "ol_o_id", "ol_number"}, true},
	{"item", "item_pk", []string{"i_id"}, true},
	{"stock", "stock_pk", []string{"s_w_id", "s_i_id"}, true},
}

// Declare creates the nine tables and their indexes on the backend. Table
// creation order is fixed so both engines assign the same table IDs.
func Declare(b Backend) error {
	schemas := Schemas()
	for _, name := range []string{
		"warehouse", "district", "customer", "history",
		"new_order", "orders", "order_line", "item", "stock",
	} {
		if err := b.CreateTable(name, schemas[name]); err != nil {
			return err
		}
	}
	for _, ix := range indexDefs {
		if err := b.CreateIndex(ix.table, ix.name, ix.cols, ix.unique); err != nil {
			return err
		}
	}
	return nil
}
