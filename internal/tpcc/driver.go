package tpcc

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"phoebedb/internal/metrics"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

const (
	// TxnNewOrder is the tpmC metric transaction (45 % of the mix).
	TxnNewOrder TxnType = iota
	// TxnPayment (43 %).
	TxnPayment
	// TxnOrderStatus (4 %).
	TxnOrderStatus
	// TxnDelivery (4 %).
	TxnDelivery
	// TxnStockLevel (4 %).
	TxnStockLevel
	numTxnTypes
)

// NumTxnTypes is the number of transaction profiles.
const NumTxnTypes = int(numTxnTypes)

// TxnNames maps TxnType to its display name.
var TxnNames = [NumTxnTypes]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}

// String implements fmt.Stringer.
func (t TxnType) String() string {
	if int(t) < NumTxnTypes {
		return TxnNames[t]
	}
	return "Txn?"
}

// pickTxn draws from the standard mix.
func pickTxn(r *rng) TxnType {
	x := r.Intn(100)
	switch {
	case x < 45:
		return TxnNewOrder
	case x < 88:
		return TxnPayment
	case x < 92:
		return TxnOrderStatus
	case x < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// Result summarizes a workload run.
type Result struct {
	Duration  time.Duration
	Completed [NumTxnTypes]int64
	UserAbort int64 // intentional 1 % New-Order rollbacks
	Errors    int64 // unexpected failures (lock timeouts, conflicts)
	// PerTxnNanos is the mean latency per transaction type.
	PerTxnNanos [NumTxnTypes]float64
}

// Total returns the count of all completed transactions.
func (r Result) Total() int64 {
	var t int64
	for _, c := range r.Completed {
		t += c
	}
	return t
}

// TpmC is the New-Order throughput in transactions per minute.
func (r Result) TpmC() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Completed[TxnNewOrder]) / r.Duration.Minutes()
}

// Tpm is the total transaction throughput per minute.
func (r Result) Tpm() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Total()) / r.Duration.Minutes()
}

// DriverConfig configures a workload run.
type DriverConfig struct {
	Scale Scale
	// Terminals is the number of concurrent submitting terminals.
	Terminals int
	// Duration bounds the run by wall clock; Transactions (if > 0) bounds
	// it by count instead.
	Duration     time.Duration
	Transactions int64
	// Affinity binds terminal i to warehouse (i mod W)+1, the paper's
	// default. Without affinity, warehouses are drawn at random —
	// Exp 6/7 use this to induce cross-worker contention.
	Affinity bool
	// Seed randomizes terminals deterministically.
	Seed int64
	// TpmCSeries, if set, receives one observation per committed
	// New-Order (for throughput-over-time figures).
	TpmCSeries *metrics.Series
	// LatencyHists, if set, receives per-transaction-type latency
	// observations; register each histogram with
	// DB.RegisterTxnTypeHist to expose p50/p95/p99 over the metrics
	// endpoint and phoebe_stat_latency.
	LatencyHists *[NumTxnTypes]metrics.Histogram
}

// Run drives the workload against the backend and returns the result.
func Run(b Backend, cfg DriverConfig) Result {
	if cfg.Terminals <= 0 {
		cfg.Terminals = 1
	}
	if cfg.Duration <= 0 && cfg.Transactions <= 0 {
		cfg.Duration = time.Second
	}
	var completed [NumTxnTypes]atomic.Int64
	var latency [NumTxnTypes]atomic.Int64
	var userAborts, errCount, budget atomic.Int64
	budget.Store(cfg.Transactions)

	// A TaggedBackend gets each transaction attributed by type in the
	// engine's per-statement aggregates ("tpcc.NewOrder", ...).
	tagged, _ := b.(TaggedBackend)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for term := 0; term < cfg.Terminals; term++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := newRNG(cfg.Seed + int64(term)*7919)
			homeW := int64(term%cfg.Scale.Warehouses) + 1
			for {
				if cfg.Transactions > 0 {
					if budget.Add(-1) < 0 {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				w := homeW
				if !cfg.Affinity {
					w = r.uniform(1, int64(cfg.Scale.Warehouses))
				}
				tt := pickTxn(r)
				work := func(c Client) error {
					switch tt {
					case TxnNewOrder:
						return NewOrder(c, r, cfg.Scale, w)
					case TxnPayment:
						return Payment(c, r, cfg.Scale, w)
					case TxnOrderStatus:
						return OrderStatus(c, r, cfg.Scale, w)
					case TxnDelivery:
						return Delivery(c, r, cfg.Scale, w)
					default:
						return StockLevel(c, r, cfg.Scale, w)
					}
				}
				t0 := time.Now()
				var err error
				if tagged != nil {
					err = tagged.ExecuteTagged("tpcc."+tt.String(), work)
				} else {
					err = b.Execute(work)
				}
				el := time.Since(t0)
				switch {
				case err == nil:
					completed[tt].Add(1)
					latency[tt].Add(int64(el))
					if cfg.LatencyHists != nil {
						cfg.LatencyHists[tt].Observe(el)
					}
					if tt == TxnNewOrder && cfg.TpmCSeries != nil {
						cfg.TpmCSeries.Observe(1)
					}
				case errors.Is(err, ErrRollback):
					userAborts.Add(1)
				default:
					errCount.Add(1)
				}
			}
		}(term)
	}
	wg.Wait()

	res := Result{
		Duration:  time.Since(start),
		UserAbort: userAborts.Load(),
		Errors:    errCount.Load(),
	}
	for i := 0; i < NumTxnTypes; i++ {
		res.Completed[i] = completed[i].Load()
		if res.Completed[i] > 0 {
			res.PerTxnNanos[i] = float64(latency[i].Load()) / float64(res.Completed[i])
		}
	}
	return res
}
