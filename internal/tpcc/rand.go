package tpcc

import (
	"fmt"
	"math/rand"
	"strings"
)

// nuRandC holds the per-run constants of the TPC-C NURand function.
type nuRandC struct {
	cLast, cID, olIID int64
}

// rng wraps math/rand with TPC-C helpers. Not safe for concurrent use —
// each terminal owns one.
type rng struct {
	*rand.Rand
	c nuRandC
}

// RNG is the exported handle to the workload's random source, letting
// external harnesses (crash tests, custom drivers) call the exported
// transaction profiles with a deterministic, reportable seed.
type RNG = rng

// NewRNG returns a workload random source seeded deterministically. Tests
// should log the seed they used so failures are reproducible.
func NewRNG(seed int64) *RNG { return newRNG(seed) }

func newRNG(seed int64) *rng {
	r := rand.New(rand.NewSource(seed))
	return &rng{
		Rand: r,
		c: nuRandC{
			cLast: r.Int63n(256),
			cID:   r.Int63n(1024),
			olIID: r.Int63n(8192),
		},
	}
}

// uniform returns a uniform integer in [lo, hi].
func (r *rng) uniform(lo, hi int64) int64 {
	return lo + r.Int63n(hi-lo+1)
}

// nuRand is the non-uniform random function of TPC-C clause 2.1.6.
func (r *rng) nuRand(a, c, lo, hi int64) int64 {
	return ((r.uniform(0, a)|r.uniform(lo, hi))+c)%(hi-lo+1) + lo
}

// customerID draws a customer id in [1, n] with NURand(1023, ...).
func (r *rng) customerID(n int64) int64 {
	if n <= 1 {
		return 1
	}
	return r.nuRand(1023, r.c.cID, 1, n)
}

// itemID draws an item id in [1, n] with NURand(8191, ...).
func (r *rng) itemID(n int64) int64 {
	if n <= 1 {
		return 1
	}
	return r.nuRand(8191, r.c.olIID, 1, n)
}

// lastNameSyllables are the TPC-C clause 4.3.2.3 syllables.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the customer last name for a number in [0, 999].
func LastName(num int64) string {
	var b strings.Builder
	b.WriteString(lastNameSyllables[num/100%10])
	b.WriteString(lastNameSyllables[num/10%10])
	b.WriteString(lastNameSyllables[num%10])
	return b.String()
}

// lastNameLoad picks the last-name number during loading (uniform over the
// first maxNames names to keep small scales dense).
func (r *rng) lastNameLoad(maxNames int64) string {
	return LastName(r.uniform(0, maxNames-1))
}

// lastNameRun picks a last name at run time via NURand(255, ...).
func (r *rng) lastNameRun(maxNames int64) string {
	if maxNames <= 1 {
		return LastName(0)
	}
	return LastName(r.nuRand(255, r.c.cLast, 0, maxNames-1))
}

// aString returns a random alphanumeric string with length in [lo, hi].
func (r *rng) aString(lo, hi int64) string {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := r.uniform(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

// nString returns a random numeric string of exactly n digits.
func (r *rng) nString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}

// zip returns a TPC-C zip code: 4 random digits + "11111".
func (r *rng) zip() string { return r.nString(4) + "11111" }

// distInfo returns the 24-character district info string for a stock row.
func (r *rng) distInfo() string { return r.aString(24, 24) }

// originalOrData returns S_DATA / I_DATA, 10 % containing "ORIGINAL".
func (r *rng) originalOrData() string {
	s := r.aString(26, 50)
	if r.Intn(10) == 0 {
		pos := r.Intn(len(s) - 8)
		s = s[:pos] + "ORIGINAL" + s[pos+8:]
	}
	return s
}

// String renders the NURand constants (diagnostics).
func (c nuRandC) String() string {
	return fmt.Sprintf("C(last=%d,id=%d,item=%d)", c.cLast, c.cID, c.olIID)
}
