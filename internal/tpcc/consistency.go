package tpcc

import (
	"fmt"
	"math"

	"phoebedb/internal/rel"
)

// CheckConsistency verifies the TPC-C consistency conditions (clause 3.3.2)
// that this workload maintains, inside one transaction:
//
//	C1: W_YTD = sum(D_YTD) per warehouse.
//	C2: D_NEXT_O_ID - 1 = max(O_ID) per district.
//	C3: max(NO_O_ID) <= D_NEXT_O_ID - 1 per district.
//	C4: per district, sum(O_OL_CNT) = count(ORDER_LINE rows).
//
// It returns the first violated condition as an error.
func CheckConsistency(b Backend, s Scale) error {
	return b.Execute(func(c Client) error {
		for w := int64(1); w <= int64(s.Warehouses); w++ {
			_, wRow, ok, err := c.GetByIndex("warehouse", "warehouse_pk", rel.Int(w))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("tpcc: C1 warehouse %d missing", w)
			}
			wYtd := wRow[WYtd].F // borrowed row: extract before the next operation
			var dYtdSum float64
			for d := int64(1); d <= int64(s.DistrictsPerWH); d++ {
				_, dRow, ok, err := c.GetByIndex("district", "district_pk", rel.Int(w), rel.Int(d))
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("tpcc: district %d/%d missing", w, d)
				}
				dYtdSum += dRow[DYtd].F

				// C2/C3/C4 per district.
				nextOID := dRow[DNextOID].I
				var maxOID, olSum, olCount int64
				err = c.ScanIndex("orders", "orders_pk",
					[]rel.Value{rel.Int(w), rel.Int(d)},
					func(rid rel.RowID, row rel.Row) bool {
						if row[OID].I > maxOID {
							maxOID = row[OID].I
						}
						olSum += row[OOlCnt].I
						return true
					})
				if err != nil {
					return err
				}
				if maxOID != nextOID-1 {
					return fmt.Errorf("tpcc: C2 violated at %d/%d: max(O_ID)=%d, D_NEXT_O_ID-1=%d", w, d, maxOID, nextOID-1)
				}
				var maxNoOID int64
				err = c.ScanIndex("new_order", "new_order_pk",
					[]rel.Value{rel.Int(w), rel.Int(d)},
					func(rid rel.RowID, row rel.Row) bool {
						if row[NOOID].I > maxNoOID {
							maxNoOID = row[NOOID].I
						}
						return true
					})
				if err != nil {
					return err
				}
				if maxNoOID > nextOID-1 {
					return fmt.Errorf("tpcc: C3 violated at %d/%d: max(NO_O_ID)=%d > %d", w, d, maxNoOID, nextOID-1)
				}
				err = c.ScanIndex("order_line", "order_line_pk",
					[]rel.Value{rel.Int(w), rel.Int(d)},
					func(rid rel.RowID, row rel.Row) bool {
						olCount++
						return true
					})
				if err != nil {
					return err
				}
				if olSum != olCount {
					return fmt.Errorf("tpcc: C4 violated at %d/%d: sum(O_OL_CNT)=%d, order lines=%d", w, d, olSum, olCount)
				}
			}
			if math.Abs(wYtd-dYtdSum) > 0.01 {
				return fmt.Errorf("tpcc: C1 violated at warehouse %d: W_YTD=%.2f, sum(D_YTD)=%.2f", w, wYtd, dYtdSum)
			}
		}
		return nil
	})
}
