package tpcc

import (
	"fmt"

	"phoebedb/internal/rel"
)

// Scale sets the benchmark cardinalities. Full() matches the TPC-C
// specification; Small() is a laptop/test preset that preserves every code
// path at a fraction of the data volume (the paper's 100-warehouse,
// 480 GB configuration is substituted by holding the ratios and shrinking
// the absolute counts).
type Scale struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	// InitialOrdersPerDistrict seeds ORDERS/ORDER_LINE/NEW_ORDER history;
	// the newest third are undelivered (in NEW_ORDER), per spec.
	InitialOrdersPerDistrict int
	// MaxLastNames bounds the distinct customer last names (spec: 1000).
	MaxLastNames int64
}

// Full returns the specification cardinalities for w warehouses.
func Full(w int) Scale {
	return Scale{
		Warehouses:               w,
		DistrictsPerWH:           10,
		CustomersPerDistrict:     3000,
		Items:                    100000,
		InitialOrdersPerDistrict: 3000,
		MaxLastNames:             1000,
	}
}

// Medium returns a mid-size preset for laptop benchmark runs: large
// enough that contention, buffer pressure, and index depth resemble the
// full workload's, small enough to load in seconds.
func Medium(w int) Scale {
	return Scale{
		Warehouses:               w,
		DistrictsPerWH:           4,
		CustomersPerDistrict:     300,
		Items:                    2000,
		InitialOrdersPerDistrict: 100,
		MaxLastNames:             100,
	}
}

// Small returns a reduced preset for tests and laptop benchmarks.
func Small(w int) Scale {
	return Scale{
		Warehouses:               w,
		DistrictsPerWH:           2,
		CustomersPerDistrict:     30,
		Items:                    100,
		InitialOrdersPerDistrict: 10,
		MaxLastNames:             30,
	}
}

// Load populates the backend with the initial database for the scale.
// Rows are inserted in batches of batch rows per transaction (0 = 500).
func Load(b Backend, s Scale, batch int) error {
	return LoadSeeded(b, s, batch, 42)
}

// LoadSeeded is Load with an explicit random seed, so tests can vary the
// initial database deterministically (and report the seed on failure).
// Load uses seed 42, the historical default.
func LoadSeeded(b Backend, s Scale, batch int, seed int64) error {
	if batch <= 0 {
		batch = 500
	}
	r := newRNG(seed)
	ins := newBatcher(b, batch)

	// ITEM
	for i := 1; i <= s.Items; i++ {
		if err := ins.add("item", rel.Row{
			rel.Int(int64(i)), rel.Int(r.uniform(1, 10000)),
			rel.Str(r.aString(14, 24)), rel.Float(float64(r.uniform(100, 10000)) / 100),
			rel.Str(r.originalOrData()),
		}); err != nil {
			return fmt.Errorf("load item %d: %w", i, err)
		}
	}

	for w := 1; w <= s.Warehouses; w++ {
		if err := ins.add("warehouse", rel.Row{
			rel.Int(int64(w)), rel.Str(r.aString(6, 10)), rel.Str(r.aString(10, 20)),
			rel.Str(r.aString(10, 20)), rel.Str(r.aString(2, 2)), rel.Str(r.zip()),
			rel.Float(float64(r.uniform(0, 2000)) / 10000),
			rel.Float(30000 * float64(s.DistrictsPerWH)),
		}); err != nil {
			return fmt.Errorf("load warehouse %d: %w", w, err)
		}
		// STOCK
		for i := 1; i <= s.Items; i++ {
			if err := ins.add("stock", rel.Row{
				rel.Int(int64(i)), rel.Int(int64(w)), rel.Int(r.uniform(10, 100)),
				rel.Str(r.distInfo()), rel.Int(0), rel.Int(0), rel.Int(0),
				rel.Str(r.originalOrData()),
			}); err != nil {
				return fmt.Errorf("load stock w%d i%d: %w", w, i, err)
			}
		}
		for d := 1; d <= s.DistrictsPerWH; d++ {
			if err := ins.add("district", rel.Row{
				rel.Int(int64(d)), rel.Int(int64(w)), rel.Str(r.aString(6, 10)),
				rel.Str(r.aString(10, 20)), rel.Str(r.aString(10, 20)),
				rel.Str(r.aString(2, 2)), rel.Str(r.zip()),
				rel.Float(float64(r.uniform(0, 2000)) / 10000), rel.Float(30000),
				rel.Int(int64(s.InitialOrdersPerDistrict + 1)),
			}); err != nil {
				return fmt.Errorf("load district %d/%d: %w", w, d, err)
			}
			// CUSTOMER + 1 HISTORY row each
			for c := 1; c <= s.CustomersPerDistrict; c++ {
				credit := "GC"
				if r.Intn(10) == 0 {
					credit = "BC"
				}
				if err := ins.add("customer", rel.Row{
					rel.Int(int64(c)), rel.Int(int64(d)), rel.Int(int64(w)),
					rel.Str(r.aString(8, 16)), rel.Str("OE"), rel.Str(r.lastNameLoad(s.MaxLastNames)),
					rel.Str(r.aString(10, 20)), rel.Str(r.aString(10, 20)),
					rel.Str(r.aString(2, 2)), rel.Str(r.zip()), rel.Str(r.nString(16)),
					rel.Int(0), rel.Str(credit), rel.Float(50000),
					rel.Float(float64(r.uniform(0, 5000)) / 10000),
					rel.Float(-10), rel.Float(10), rel.Int(1), rel.Int(0),
					rel.Str(r.aString(50, 100)),
				}); err != nil {
					return fmt.Errorf("load customer %d/%d/%d: %w", w, d, c, err)
				}
				if err := ins.add("history", rel.Row{
					rel.Int(int64(c)), rel.Int(int64(d)), rel.Int(int64(w)),
					rel.Int(int64(d)), rel.Int(int64(w)), rel.Int(0),
					rel.Float(10), rel.Str(r.aString(12, 24)),
				}); err != nil {
					return fmt.Errorf("load history: %w", err)
				}
			}
			// Seed order history: customers permuted over order ids.
			perm := r.Perm(s.CustomersPerDistrict)
			for o := 1; o <= s.InitialOrdersPerDistrict; o++ {
				cid := int64(perm[(o-1)%len(perm)] + 1)
				olCnt := r.uniform(5, 15)
				carrier := r.uniform(1, 10)
				undelivered := o > s.InitialOrdersPerDistrict*2/3
				if undelivered {
					carrier = 0
				}
				if err := ins.add("orders", rel.Row{
					rel.Int(int64(o)), rel.Int(int64(d)), rel.Int(int64(w)), rel.Int(cid),
					rel.Int(0), rel.Int(carrier), rel.Int(olCnt), rel.Int(1),
				}); err != nil {
					return fmt.Errorf("load order: %w", err)
				}
				for ol := int64(1); ol <= olCnt; ol++ {
					amount := 0.0
					deliveryD := int64(1)
					if undelivered {
						amount = float64(r.uniform(1, 999999)) / 100
						deliveryD = 0
					}
					if err := ins.add("order_line", rel.Row{
						rel.Int(int64(o)), rel.Int(int64(d)), rel.Int(int64(w)), rel.Int(ol),
						rel.Int(r.uniform(1, int64(s.Items))), rel.Int(int64(w)),
						rel.Int(deliveryD), rel.Int(5), rel.Float(amount), rel.Str(r.distInfo()),
					}); err != nil {
						return fmt.Errorf("load order_line: %w", err)
					}
				}
				if undelivered {
					if err := ins.add("new_order", rel.Row{
						rel.Int(int64(o)), rel.Int(int64(d)), rel.Int(int64(w)),
					}); err != nil {
						return fmt.Errorf("load new_order: %w", err)
					}
				}
			}
		}
	}
	return ins.flush()
}

// batcher groups loader inserts into transactions.
type batcher struct {
	b       Backend
	batch   int
	pending []pendingRow
}

type pendingRow struct {
	table string
	row   rel.Row
}

func newBatcher(b Backend, batch int) *batcher {
	return &batcher{b: b, batch: batch}
}

func (bt *batcher) add(table string, row rel.Row) error {
	bt.pending = append(bt.pending, pendingRow{table, row})
	if len(bt.pending) >= bt.batch {
		return bt.flush()
	}
	return nil
}

func (bt *batcher) flush() error {
	if len(bt.pending) == 0 {
		return nil
	}
	rows := bt.pending
	bt.pending = nil
	return bt.b.Execute(func(c Client) error {
		for _, pr := range rows {
			if _, err := c.Insert(pr.table, pr.row); err != nil {
				return err
			}
		}
		return nil
	})
}
