package backup_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"phoebedb/internal/fault"
	"phoebedb/internal/fault/crashtest"
)

// crashSeed mirrors the core crash tests: deterministic by default,
// overridable with PHOEBE_CRASHTEST_SEED for schedule exploration.
func crashSeed(t *testing.T) int64 {
	if s := os.Getenv("PHOEBE_CRASHTEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PHOEBE_CRASHTEST_SEED %q: %v", s, err)
		}
		return v
	}
	return 0xBACC09
}

// TestBackupCrashAtSites crashes the archiver at every backup failpoint —
// the pre-copy window, a torn segment append, and the window between the
// base-backup file copies and the label write — then restarts, resyncs,
// verifies, restores, and compares the restored database against the
// primary row for row (see crashtest.BackupCrash).
func TestBackupCrashAtSites(t *testing.T) {
	seed := crashSeed(t)
	for i, site := range fault.BackupSites() {
		site, i := site, i
		t.Run(site, func(t *testing.T) {
			err := crashtest.BackupCrash(t.TempDir(), t.TempDir(), t.TempDir(), seed+int64(i), site)
			if err != nil {
				t.Fatalf("site %s (seed %d): %v", site, seed+int64(i), err)
			}
		})
	}
}

// TestTPCCBackupRestore is the end-to-end acceptance run: TPC-C under
// continuous archiving, an online base backup taken while terminals are
// committing, a WAL crash mid-run, then recovery on the primary and a
// restore from the archive — both must pass the TPC-C consistency
// conditions and agree on every table's contents.
func TestTPCCBackupRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("tpcc backup run skipped in -short")
	}
	seed := crashSeed(t)
	start := time.Now()
	err := crashtest.TPCCBackupRestore(t.TempDir(), t.TempDir(), t.TempDir(), seed, fault.WALPreSync, 300)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("tpcc archive+backup+crash+restore in %v (seed %d)", time.Since(start), seed)
}
