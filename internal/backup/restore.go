package backup

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"phoebedb/internal/core"
	"phoebedb/internal/frozen"
	"phoebedb/internal/wal"
)

// BaseInfo summarizes one base backup for verification reports.
type BaseInfo struct {
	Seq      int
	Dir      string
	Complete bool
	Label    *Label // nil when incomplete
	Problem  string // why the backup is unusable, when it is
}

// VerifyReport summarizes a verified archive.
type VerifyReport struct {
	ContinuousFrom uint64
	HorizonGSN     uint64
	Epochs         uint32 // sealed epochs
	Groups         int
	Segments       int
	ArchivedBytes  int64
	Records        int
	Bases          []BaseInfo
}

// Verify checks the whole archive: the manifest's checksum and structure,
// every segment's checksum and record-level parseability against its
// manifest entry, per-group epoch coverage (no sealed epoch may be
// missing — that is a gap), and every base backup's files against its
// label. Incomplete base backups (no label: a crash mid-backup) are
// reported but are not errors; any integrity failure in the manifest,
// a segment, or a labeled base backup is.
func Verify(archiveDir string) (*VerifyReport, error) {
	m, err := LoadManifest(archiveDir)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{
		ContinuousFrom: m.ContinuousFrom,
		Epochs:         m.Epoch,
		Groups:         m.NumGroups(),
		Segments:       len(m.Segments),
	}
	for g := 0; g < rep.Groups; g++ {
		segs := m.GroupSegments(g)
		// A group's sealed epochs must be a contiguous run ending at the
		// current epoch (groups created later start at a higher epoch). A
		// hole in the middle means archived history went missing.
		for i, s := range segs {
			if i > 0 && s.Epoch != segs[i-1].Epoch+1 {
				return nil, fmt.Errorf("backup: group %d missing epochs %d..%d",
					g, segs[i-1].Epoch+1, s.Epoch-1)
			}
			if s.Sealed && s.Epoch >= m.Epoch {
				return nil, fmt.Errorf("backup: group %d epoch %d sealed beyond current epoch %d",
					g, s.Epoch, m.Epoch)
			}
			if !s.Sealed && s.Epoch != m.Epoch {
				return nil, fmt.Errorf("backup: group %d epoch %d unsealed but not current",
					g, s.Epoch)
			}
		}
		if n := len(segs); n > 0 {
			last := segs[n-1]
			if last.Sealed && last.Epoch != m.Epoch-1 {
				return nil, fmt.Errorf("backup: group %d missing epochs %d..%d",
					g, last.Epoch+1, m.Epoch-1)
			}
		}
	}
	for i := range m.Segments {
		s := &m.Segments[i]
		n, b, err := verifySegment(archiveDir, s)
		if err != nil {
			return nil, err
		}
		rep.Records += n
		rep.ArchivedBytes += b
		if s.LastGSN > rep.HorizonGSN {
			rep.HorizonGSN = s.LastGSN
		}
	}
	if m.SealGSN > rep.HorizonGSN {
		rep.HorizonGSN = m.SealGSN
	}
	bases, err := listBases(archiveDir)
	if err != nil {
		return nil, err
	}
	for _, be := range bases {
		bi := BaseInfo{Seq: be.seq, Dir: be.dir, Label: be.label, Problem: be.err}
		if be.label != nil {
			if err := verifyBaseFiles(be.dir, be.label); err != nil {
				return nil, fmt.Errorf("backup: base %06d: %w", be.seq, err)
			}
			if err := verifyColdTier(be.dir, be.label); err != nil {
				return nil, fmt.Errorf("backup: base %06d: %w", be.seq, err)
			}
			bi.Complete = true
		}
		rep.Bases = append(rep.Bases, bi)
	}
	return rep, nil
}

// verifySegment checks one segment file against its manifest entry and
// returns the record count and covered bytes.
func verifySegment(archiveDir string, s *Segment) (int, int64, error) {
	p := SegmentPath(archiveDir, s)
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) && s.Length == 0 {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	if uint64(len(data)) < s.Length {
		return 0, 0, fmt.Errorf("backup: segment %s torn: %d bytes on disk, %d covered",
			s.Name(), len(data), s.Length)
	}
	// Bytes beyond Length are an unacknowledged tail from a crashed round;
	// the archiver truncates them on reopen. Only the covered prefix counts.
	data = data[:s.Length]
	if got := crc32.ChecksumIEEE(data); got != s.CRC {
		return 0, 0, fmt.Errorf("backup: segment %s checksum mismatch", s.Name())
	}
	var first, last uint64
	count := 0
	off := 0
	for off < len(data) {
		r, n, ok := wal.DecodeRecordAt(data, off)
		if !ok {
			return 0, 0, fmt.Errorf("backup: segment %s: torn record at offset %d", s.Name(), off)
		}
		if count == 0 {
			first = r.GSN
		}
		if r.GSN > last {
			last = r.GSN
		}
		count++
		off += n
	}
	if first != s.FirstGSN || last != s.LastGSN {
		return 0, 0, fmt.Errorf("backup: segment %s GSN range [%d,%d] does not match manifest [%d,%d]",
			s.Name(), first, last, s.FirstGSN, s.LastGSN)
	}
	return count, int64(len(data)), nil
}

// verifyBaseFiles checks a labeled base backup's files byte-for-byte
// against the label's sizes and checksums.
func verifyBaseFiles(dir string, l *Label) error {
	for _, f := range l.Files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			return err
		}
		if uint64(len(data)) != f.Size {
			return fmt.Errorf("%s is %d bytes, label records %d", f.Name, len(data), f.Size)
		}
		if got := crc32.ChecksumIEEE(data); got != f.CRC {
			return fmt.Errorf("%s checksum mismatch", f.Name)
		}
	}
	return nil
}

// verifyColdTier cross-checks a base backup's cold-tier capture: the
// checkpoint image must name exactly the cold manifest the backup holds
// (epoch and CRC), and every segment the manifest lists must verify —
// whole-segment checksum, header integrity, per-block decompression,
// row-id ordering, and bloom-filter membership — against the copied block
// file. verifyBaseFiles already proved the bytes match the label; this
// proves the cold tier they describe is internally consistent.
func verifyColdTier(dir string, l *Label) error {
	var manName string
	for _, f := range l.Files {
		if strings.HasPrefix(f.Name, "cold.manifest.") {
			manName = f.Name
		}
	}
	cpData, err := os.ReadFile(filepath.Join(dir, "checkpoint.db"))
	if os.IsNotExist(err) {
		if manName != "" {
			return fmt.Errorf("%s present without a checkpoint image", manName)
		}
		return nil
	}
	if err != nil {
		return err
	}
	epoch, wantCRC, err := core.ReadColdManifestRefFromImage(cpData)
	if err != nil {
		return err
	}
	if epoch == 0 {
		if manName != "" {
			return fmt.Errorf("%s present but the image names no cold manifest", manName)
		}
		return nil
	}
	if want := frozen.ManifestFileName(epoch); manName != want {
		return fmt.Errorf("image names cold manifest %s, backup holds %q", want, manName)
	}
	manData, err := os.ReadFile(filepath.Join(dir, manName))
	if err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(manData); got != wantCRC {
		return fmt.Errorf("%s checksum %#x, image records %#x", manName, got, wantCRC)
	}
	m, err := frozen.DecodeManifest(manData)
	if err != nil {
		return err
	}
	if m.Epoch != epoch {
		return fmt.Errorf("%s carries epoch %d, image names %d", manName, m.Epoch, epoch)
	}
	var blocks []byte
	for _, t := range m.Tables {
		if len(t.Segments) == 0 {
			continue
		}
		if blocks == nil {
			if blocks, err = os.ReadFile(filepath.Join(dir, "data.blocks")); err != nil {
				return err
			}
		}
		for i, s := range t.Segments {
			end := s.Ref.Offset + int64(s.Ref.Len)
			if s.Ref.Offset < 0 || end > int64(len(blocks)) {
				return fmt.Errorf("table %q segment %d overruns the block file", t.Table, i)
			}
			if err := frozen.VerifySegmentBytes(blocks[s.Ref.Offset:end], s); err != nil {
				return fmt.Errorf("table %q segment %d: %w", t.Table, i, err)
			}
		}
	}
	return nil
}

// RestoreReport summarizes a completed restore.
type RestoreReport struct {
	BaseSeq       int // -1 when the archive's full history was replayed with no base
	BaseDir       string
	CheckpointGSN uint64
	HorizonGSN    uint64 // newest base backup's acknowledged-durability horizon
	TargetGSN     uint64 // 0 = everything
	Groups        int
	Records       int    // WAL records materialized for replay
	MaxGSN        uint64 // highest GSN materialized
}

// Restore materializes an ordinary database directory at destDir from the
// archive: the newest complete base backup's files, plus per-group wal
// files rebuilt from the segment chain. targetGSN optionally cuts the
// replay for point-in-time recovery: only records with GSN <= targetGSN
// are materialized, which — because a transaction's commit record carries
// its highest GSN — keeps exactly the transactions that committed at or
// before the target, each one whole. targetGSN 0 means restore everything
// the archive holds.
//
// The archive is fully verified first; a torn or gap-containing archive
// refuses to restore. destDir must not already contain a database.
func Restore(archiveDir, destDir string, targetGSN uint64) (*RestoreReport, error) {
	if _, err := Verify(archiveDir); err != nil {
		return nil, err
	}
	m, err := LoadManifest(archiveDir)
	if err != nil {
		return nil, err
	}
	bases, err := listBases(archiveDir)
	if err != nil {
		return nil, err
	}
	var base *baseEntry
	for i := len(bases) - 1; i >= 0; i-- {
		if bases[i].label == nil {
			continue
		}
		// PITR may need an older base: the image must predate the target.
		if targetGSN != 0 && bases[i].label.CheckpointGSN > targetGSN {
			continue
		}
		base = &bases[i]
		break
	}
	if base == nil && m.ContinuousFrom != 0 {
		return nil, fmt.Errorf("backup: archive history begins at GSN %d; restore requires a complete base backup%s",
			m.ContinuousFrom, pitrHint(targetGSN))
	}

	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return nil, err
	}
	if ents, err := os.ReadDir(destDir); err != nil {
		return nil, err
	} else if len(ents) != 0 {
		return nil, fmt.Errorf("backup: restore destination %s is not empty", destDir)
	}

	rep := &RestoreReport{BaseSeq: -1, TargetGSN: targetGSN, Groups: m.NumGroups()}
	if base != nil {
		rep.BaseSeq = base.seq
		rep.BaseDir = base.dir
		rep.CheckpointGSN = base.label.CheckpointGSN
		rep.HorizonGSN = base.label.HorizonGSN
		if base.label.CheckpointGSN < m.ContinuousFrom {
			return nil, fmt.Errorf("backup: base %06d checkpoint horizon %d predates archive history (continuous from %d)",
				base.seq, base.label.CheckpointGSN, m.ContinuousFrom)
		}
		for _, f := range base.label.Files {
			data, err := os.ReadFile(filepath.Join(base.dir, f.Name))
			if err != nil {
				return nil, err
			}
			if err := writeFileSync(filepath.Join(destDir, f.Name), data); err != nil {
				return nil, err
			}
		}
	}

	// The server's DDL journal rides along as an archive sidecar (see
	// Archiver.syncSidecarLocked). A base backup carries its own
	// checksummed copy; fill it in from the sidecar only when the restore
	// predates every base, so schema replay can run before WAL replay.
	if _, err := os.Stat(filepath.Join(destDir, SidecarName)); os.IsNotExist(err) {
		if data, rerr := os.ReadFile(filepath.Join(archiveDir, SidecarName)); rerr == nil {
			if err := writeFileSync(filepath.Join(destDir, SidecarName), data); err != nil {
				return nil, err
			}
		}
	}

	target := targetGSN
	if target == 0 {
		target = ^uint64(0)
	}
	walDir := filepath.Join(destDir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, err
	}
	for g := 0; g < rep.Groups; g++ {
		var out []byte
		for _, s := range m.GroupSegments(g) {
			if s.Length == 0 {
				continue
			}
			data, err := os.ReadFile(SegmentPath(archiveDir, &s))
			if err != nil {
				return nil, err
			}
			data = data[:s.Length]
			off := 0
			for off < len(data) {
				r, n, ok := wal.DecodeRecordAt(data, off)
				if !ok {
					return nil, fmt.Errorf("backup: segment %s: torn record at offset %d", s.Name(), off)
				}
				if r.GSN > rep.CheckpointGSN && r.GSN <= target {
					out = append(out, data[off:off+n]...)
					rep.Records++
					if r.GSN > rep.MaxGSN {
						rep.MaxGSN = r.GSN
					}
				}
				off += n
			}
		}
		name := filepath.Join(walDir, fmt.Sprintf("wal-%04d.log", g))
		if err := writeFileSync(name, out); err != nil {
			return nil, err
		}
	}
	if d, err := os.Open(destDir); err == nil {
		d.Sync()
		d.Close()
	}
	return rep, nil
}

func pitrHint(targetGSN uint64) string {
	if targetGSN == 0 {
		return ""
	}
	return fmt.Sprintf(" with checkpoint horizon at or below target GSN %d", targetGSN)
}
