package backup

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"phoebedb/internal/fault"
	"phoebedb/internal/wal"
)

// Archive directory layout.
const (
	ManifestName = "MANIFEST"
	LabelName    = "backup_label"
	// SidecarName is the server's append-only DDL journal, snapshotted
	// into the archive root each round (see syncSidecarLocked).
	SidecarName = "schema.sql"
	segmentsDir = "segments"
	baseDir     = "base"
)

// Archiver continuously copies the live WAL into an archive directory. One
// archiver owns one archive; all methods are safe for concurrent use, but
// the archiver assumes it is the only process writing the archive.
//
// Copy protocol, per WAL group, per round:
//
//  1. Read the live wal file from the persisted source offset (SrcOff).
//  2. Parse whole checksum-valid records only; stop at the first torn or
//     incomplete tail (those bytes are not yet durable application state —
//     the next round picks them up once the engine finishes the write).
//  3. Drop records with GSN <= SealGSN. Checkpoint fast-forwards every
//     writer's GSN clock to the horizon before sealing, so the filter
//     exactly identifies bytes from an already-sealed epoch that survived
//     a crash between seal and WAL truncation.
//  4. Append the kept bytes to the epoch's segment file and fsync it.
//  5. Only then rewrite the manifest (atomically) to cover the new bytes.
//
// Step 4-before-5 ordering means the manifest-covered prefix of every
// segment is always durable, whole records; a crash between them leaves a
// torn segment tail that reopen truncates away and re-copies.
type Archiver struct {
	walDir string
	dir    string

	mu sync.Mutex
	m  *Manifest

	// Counters surfaced via the metrics registry.
	rounds        atomic.Int64
	archivedBytes atomic.Int64
	seals         atomic.Int64
	baseBackups   atomic.Int64
	horizonGSN    atomic.Uint64
	lastBaseGSN   atomic.Uint64
}

// OpenArchiver opens (or creates) the archive at dir for the WAL files in
// walDir. startGSN is the engine's current checkpoint horizon: when the
// archive is created fresh against a database that already checkpointed,
// history at or below startGSN lives only in the checkpoint image, so the
// archive records it as its ContinuousFrom bound (and skips any stale
// records below it). startGSN is ignored when the archive already exists.
func OpenArchiver(walDir, dir string, startGSN uint64) (*Archiver, error) {
	if err := os.MkdirAll(filepath.Join(dir, segmentsDir), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, baseDir), 0o755); err != nil {
		return nil, err
	}
	a := &Archiver{walDir: walDir, dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	switch {
	case os.IsNotExist(err):
		a.m = &Manifest{ContinuousFrom: startGSN, SealGSN: startGSN}
		if err := a.persistLocked(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		m, err := DecodeManifest(data)
		if err != nil {
			return nil, err
		}
		a.m = m
		if err := a.resyncLocked(); err != nil {
			return nil, err
		}
	}
	a.refreshHorizonLocked()
	return a, nil
}

// Dir returns the archive root directory.
func (a *Archiver) Dir() string { return a.dir }

// resyncLocked reconciles segment files with the manifest after a restart:
// bytes beyond the covered length are an unacknowledged tail from a crash
// mid-round and are truncated away (the source bytes are still in the live
// WAL — SrcOff only advances with the manifest). A segment *shorter* than
// its covered length is real loss and refuses to open.
func (a *Archiver) resyncLocked() error {
	for i := range a.m.Segments {
		s := &a.m.Segments[i]
		p := a.segPath(s)
		st, err := os.Stat(p)
		if os.IsNotExist(err) {
			if s.Length == 0 {
				continue
			}
			return fmt.Errorf("backup: segment %s missing (%d bytes covered)", s.Name(), s.Length)
		}
		if err != nil {
			return err
		}
		if uint64(st.Size()) < s.Length {
			return fmt.Errorf("backup: segment %s is %d bytes, manifest covers %d",
				s.Name(), st.Size(), s.Length)
		}
		if uint64(st.Size()) > s.Length {
			if err := os.Truncate(p, int64(s.Length)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *Archiver) segPath(s *Segment) string {
	return filepath.Join(a.dir, segmentsDir, s.Name())
}

func (a *Archiver) livePaths() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(a.walDir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// currentSegLocked returns the unsealed segment for group g in the current
// epoch, creating its manifest entry on first use.
func (a *Archiver) currentSegLocked(g int) *Segment {
	for i := range a.m.Segments {
		s := &a.m.Segments[i]
		if !s.Sealed && s.Group == uint32(g) && s.Epoch == a.m.Epoch {
			return s
		}
	}
	a.m.Segments = append(a.m.Segments, Segment{Group: uint32(g), Epoch: a.m.Epoch})
	return &a.m.Segments[len(a.m.Segments)-1]
}

// persistLocked atomically rewrites the manifest.
func (a *Archiver) persistLocked() error {
	enc := EncodeManifest(a.m)
	tmp := filepath.Join(a.dir, ManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(a.dir, ManifestName)); err != nil {
		return err
	}
	if d, err := os.Open(a.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (a *Archiver) refreshHorizonLocked() {
	var max uint64
	for i := range a.m.Segments {
		if g := a.m.Segments[i].LastGSN; g > max {
			max = g
		}
	}
	if max < a.m.SealGSN {
		max = a.m.SealGSN
	}
	a.horizonGSN.Store(max)
}

// Archive runs one copy round over every WAL group and returns how many
// bytes it archived. Safe to call concurrently with transactions: it only
// ever consumes whole checksum-valid records, which the engine never
// rewrites in place.
func (a *Archiver) Archive() (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.archiveLocked()
}

func (a *Archiver) archiveLocked() (int64, error) {
	a.rounds.Add(1)
	paths, err := a.livePaths()
	if err != nil {
		return 0, err
	}
	for len(a.m.SrcOff) < len(paths) {
		a.m.SrcOff = append(a.m.SrcOff, 0)
	}
	var total int64
	dirty := false
	for g, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return total, err
		}
		off := a.m.SrcOff[g]
		if uint64(len(data)) < off {
			// Only Checkpoint truncates the WAL, and it seals first (which
			// resets SrcOff to zero). A shrink below our offset means the
			// archive-before-truncate protocol was violated.
			return total, fmt.Errorf("backup: %s shrank to %d below archived offset %d",
				p, len(data), off)
		}
		seg := a.currentSegLocked(g)
		var out []byte
		var firstGSN, lastGSN uint64
		consumed := 0
		buf := data[off:]
		for {
			r, n, ok := wal.DecodeRecordAt(buf, consumed)
			if !ok {
				break
			}
			if r.GSN > a.m.SealGSN {
				out = append(out, buf[consumed:consumed+n]...)
				if firstGSN == 0 {
					firstGSN = r.GSN
				}
				if r.GSN > lastGSN {
					lastGSN = r.GSN
				}
			}
			consumed += n
		}
		if consumed == 0 {
			continue
		}
		if len(out) > 0 {
			if err := fault.Eval(fault.BackupArchiveCopy); err != nil {
				return total, err
			}
			if err := a.appendSegment(seg, out); err != nil {
				return total, err
			}
			seg.CRC = crc32.Update(seg.CRC, crc32.IEEETable, out)
			seg.Length += uint64(len(out))
			if seg.FirstGSN == 0 {
				seg.FirstGSN = firstGSN
			}
			if lastGSN > seg.LastGSN {
				seg.LastGSN = lastGSN
			}
			total += int64(len(out))
		}
		a.m.SrcOff[g] = off + uint64(consumed)
		dirty = true
	}
	if dirty {
		if err := a.persistLocked(); err != nil {
			return total, err
		}
	}
	a.archivedBytes.Add(total)
	a.refreshHorizonLocked()
	if err := a.syncSidecarLocked(); err != nil {
		return total, err
	}
	return total, nil
}

// syncSidecarLocked snapshots the DDL journal (schema.sql, kept by the
// server next to the wal/ directory) into the archive root so a restore
// that predates the first base backup can still declare the schema before
// replay. The journal is newline-delimited append-only text, so the copy
// is cut at the last newline — a torn in-flight append never yields a
// half statement — and strictly grows, so the newest copy always covers
// every table any archived record can reference.
func (a *Archiver) syncSidecarLocked() error {
	data, err := os.ReadFile(filepath.Join(filepath.Dir(a.walDir), SidecarName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	i := bytes.LastIndexByte(data, '\n')
	if i < 0 {
		return nil
	}
	data = data[:i+1]
	dst := filepath.Join(a.dir, SidecarName)
	if old, err := os.ReadFile(dst); err == nil && bytes.Equal(old, data) {
		return nil
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// appendSegment appends out to the segment file and fsyncs it. The
// manifest still covers only the old length until persistLocked runs, so a
// crash anywhere in here leaves a torn tail that resync discards.
func (a *Archiver) appendSegment(seg *Segment, out []byte) error {
	f, err := os.OpenFile(a.segPath(seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if cut := fault.TornCut(fault.BackupTornSegment, len(out)); cut > 0 {
		f.Write(out[:len(out)-cut])
		f.Sync()
		fault.Crash(fault.BackupTornSegment)
	}
	if _, err := f.Write(out); err != nil {
		return err
	}
	return f.Sync()
}

// Seal closes the current epoch at checkpoint horizon cpGSN. The engine
// calls it quiesced, with the WAL fully flushed and the checkpoint image
// durable, strictly before WAL truncation. Seal drains every remaining log
// byte into the archive and refuses (aborting the truncation) if any byte
// resists parsing — a torn tail in a flushed, quiesced WAL is corruption,
// not an in-flight write.
func (a *Archiver) Seal(cpGSN uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.archiveLocked(); err != nil {
		return err
	}
	paths, err := a.livePaths()
	if err != nil {
		return err
	}
	for g, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return err
		}
		if uint64(st.Size()) != a.m.SrcOff[g] {
			return fmt.Errorf("backup: seal: %s has %d unarchivable bytes at offset %d",
				p, uint64(st.Size())-a.m.SrcOff[g], a.m.SrcOff[g])
		}
	}
	// Every group gets a segment entry this epoch — empty ones too, so
	// verify can prove per-group epoch coverage is complete, not absent.
	for g := range paths {
		seg := a.currentSegLocked(g)
		if seg.LastGSN > cpGSN {
			return fmt.Errorf("backup: seal: segment %s holds GSN %d above checkpoint horizon %d",
				seg.Name(), seg.LastGSN, cpGSN)
		}
		seg.Sealed = true
	}
	a.m.SealGSN = cpGSN
	a.m.Epoch++
	for g := range a.m.SrcOff {
		a.m.SrcOff[g] = 0
	}
	if err := a.persistLocked(); err != nil {
		return err
	}
	a.seals.Add(1)
	a.refreshHorizonLocked()
	return nil
}

// HorizonGSN returns the highest GSN the archive durably holds.
func (a *Archiver) HorizonGSN() uint64 { return a.horizonGSN.Load() }

// Rounds returns how many archiving rounds have run.
func (a *Archiver) Rounds() int64 { return a.rounds.Load() }

// ArchivedBytes returns the total log bytes copied into the archive.
func (a *Archiver) ArchivedBytes() int64 { return a.archivedBytes.Load() }

// Seals returns how many epochs have been sealed.
func (a *Archiver) Seals() int64 { return a.seals.Load() }

// BaseBackups returns how many base backups completed.
func (a *Archiver) BaseBackups() int64 { return a.baseBackups.Load() }

// LastBaseGSN returns the horizon GSN of the newest completed base backup.
func (a *Archiver) LastBaseGSN() uint64 { return a.lastBaseGSN.Load() }

// LagBytes returns how many live WAL bytes are not yet archive-covered —
// the data an archive restore would lose if the primary's disk died now.
func (a *Archiver) LagBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	paths, err := a.livePaths()
	if err != nil {
		return 0
	}
	var lag int64
	for g, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			continue
		}
		var off uint64
		if g < len(a.m.SrcOff) {
			off = a.m.SrcOff[g]
		}
		if uint64(st.Size()) > off {
			lag += st.Size() - int64(off)
		}
	}
	return lag
}

// LoadManifest reads and validates the archive's manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}

// GroupSegments returns group g's segments in epoch order (the group's
// archived byte stream is their concatenation).
func (m *Manifest) GroupSegments(g int) []Segment {
	var segs []Segment
	for _, s := range m.Segments {
		if s.Group == uint32(g) {
			segs = append(segs, s)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Epoch < segs[j].Epoch })
	return segs
}

// NumGroups returns how many WAL groups the archive tracks.
func (m *Manifest) NumGroups() int {
	n := len(m.SrcOff)
	for _, s := range m.Segments {
		if int(s.Group)+1 > n {
			n = int(s.Group) + 1
		}
	}
	return n
}

// SegmentPath returns the segment's location under the archive root.
func SegmentPath(dir string, s *Segment) string {
	return filepath.Join(dir, segmentsDir, s.Name())
}
