package backup_test

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phoebedb/internal/backup"
	"phoebedb/internal/core"
	"phoebedb/internal/fault"
	"phoebedb/internal/frozen"
	"phoebedb/internal/rel"
	"phoebedb/internal/txn"
)

// openKV opens an engine on dir with a single WAL group and a small
// indexed kv table, the fixture every test here shares.
func openKV(t *testing.T, dir string) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{
		Dir:        dir,
		Slots:      2,
		WALSync:    true,
		WALGroups:  1,
		WALGroupOf: func(int) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("kv", rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TInt64},
		rel.Column{Name: "v", Type: rel.TInt64},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateIndex("kv", "kv_k", []string{"k"}, true); err != nil {
		t.Fatal(err)
	}
	return e
}

// attach opens an archiver over e's WAL and wires it into checkpointing.
func attach(t *testing.T, e *core.Engine, dir, archiveDir string) *backup.Archiver {
	t.Helper()
	a, err := backup.OpenArchiver(filepath.Join(dir, "wal"), archiveDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWALArchiver(a)
	return a
}

// src wires e's WAL hooks into an online base backup.
func src(e *core.Engine, dir string) backup.BaseSource {
	return backup.BaseSource{
		DataDir: dir,
		MaxGSN:  e.WAL.MaxGSN,
		RaiseGSN: func(g uint64) {
			for i := 0; i < e.WAL.NumWriters(); i++ {
				e.WAL.Writer(i).RaiseGSN(g)
			}
		},
		FlushWAL: e.WAL.FlushAll,
	}
}

func put(t *testing.T, e *core.Engine, k, v int64) {
	t.Helper()
	tx := e.Begin(0, txn.ReadCommitted, nil, nil, nil)
	if _, err := tx.Insert("kv", rel.Row{rel.Int(k), rel.Int(v)}); err != nil {
		t.Fatalf("insert %d: %v", k, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit %d: %v", k, err)
	}
}

func scanAll(t *testing.T, e *core.Engine) map[int64]int64 {
	t.Helper()
	tx := e.Begin(1, txn.ReadCommitted, nil, nil, nil)
	defer tx.Commit()
	out := make(map[int64]int64)
	err := tx.ScanTable("kv", func(_ rel.RowID, row rel.Row) bool {
		out[row[0].I] = row[1].I
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// restoreAndScan restores the archive at targetGSN into a fresh dir,
// replays it through normal recovery, and returns the visible rows.
func restoreAndScan(t *testing.T, archiveDir string, targetGSN uint64) map[int64]int64 {
	t.Helper()
	dest := filepath.Join(t.TempDir(), "restored")
	if _, err := backup.Restore(archiveDir, dest, targetGSN); err != nil {
		t.Fatalf("restore (target %d): %v", targetGSN, err)
	}
	e := openKV(t, dest)
	defer e.Close()
	if _, err := e.Recover(); err != nil {
		t.Fatalf("restored recover (target %d): %v", targetGSN, err)
	}
	return scanAll(t, e)
}

// TestArchiveRestoreRoundtrip drives the full archive lifecycle — tail,
// checkpoint seal, online base backup, more tail — and proves a restore
// reproduces the primary exactly.
func TestArchiveRestoreRoundtrip(t *testing.T) {
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)

	for k := int64(1); k <= 10; k++ {
		put(t, e, k, k*10)
	}
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil { // seals epoch 0, truncates WAL
		t.Fatal(err)
	}
	for k := int64(11); k <= 20; k++ {
		put(t, e, k, k*10)
	}
	if _, _, err := a.BaseBackup(src(e, dir)); err != nil {
		t.Fatal(err)
	}
	for k := int64(21); k <= 30; k++ {
		put(t, e, k, k*10)
	}
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	if _, err := backup.Verify(arch); err != nil {
		t.Fatal(err)
	}

	got := restoreAndScan(t, arch, 0)
	if len(got) != 30 {
		t.Fatalf("restored %d rows, want 30", len(got))
	}
	for k := int64(1); k <= 30; k++ {
		if got[k] != k*10 {
			t.Fatalf("key %d restored as %d, want %d", k, got[k], k*10)
		}
	}
	if a.HorizonGSN() == 0 || a.Seals() != 1 || a.BaseBackups() != 1 {
		t.Fatalf("counters: horizon=%d seals=%d bases=%d", a.HorizonGSN(), a.Seals(), a.BaseBackups())
	}
}

// TestPITRExactPrefix proves point-in-time recovery is exact: restoring
// to the GSN horizon observed after commit i yields precisely commits
// 1..i — nothing torn, nothing extra — across targets that fall before
// the checkpoint, between checkpoint and base backup, and after the base
// backup.
func TestPITRExactPrefix(t *testing.T) {
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)

	const total = 15
	gsn := make([]uint64, total+1)
	for k := int64(1); k <= total; k++ {
		put(t, e, k, k*10)
		// The commit record carries the transaction's highest GSN, and the
		// next transaction's records are all assigned above it, so this
		// horizon cuts exactly between commit k and commit k+1.
		gsn[k] = e.WAL.MaxGSN()
		switch k {
		case 5:
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case 10:
			if _, _, err := a.BaseBackup(src(e, dir)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}

	for _, upto := range []int64{3, 7, 12, total} {
		target := gsn[upto]
		if upto == total {
			target = 0 // everything
		}
		got := restoreAndScan(t, arch, target)
		if len(got) != int(upto) {
			t.Fatalf("target gsn[%d]=%d: restored %d rows, want %d (rows %v)",
				upto, target, len(got), upto, got)
		}
		for k := int64(1); k <= upto; k++ {
			if got[k] != k*10 {
				t.Fatalf("target gsn[%d]: key %d restored as %d, want %d", upto, k, got[k], k*10)
			}
		}
	}
}

// flipByte flips one bit mid-file and returns an undo function.
func flipByte(t *testing.T, path string) func() {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("%s is empty, nothing to corrupt", path)
	}
	orig := append([]byte(nil), data...)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVerifyCatchesCorruption flips a bit in every archive artifact class
// — manifest, segment bytes, base data file, backup label — and demands
// Verify report each one.
func TestVerifyCatchesCorruption(t *testing.T) {
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)
	for k := int64(1); k <= 8; k++ {
		put(t, e, k, k)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.BaseBackup(src(e, dir)); err != nil {
		t.Fatal(err)
	}
	for k := int64(9); k <= 12; k++ {
		put(t, e, k, k)
	}
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	if _, err := backup.Verify(arch); err != nil {
		t.Fatalf("clean archive failed verify: %v", err)
	}

	m, err := backup.LoadManifest(arch)
	if err != nil {
		t.Fatal(err)
	}
	var segPath string
	for i := range m.Segments {
		if m.Segments[i].Length > 0 {
			segPath = backup.SegmentPath(arch, &m.Segments[i])
			break
		}
	}
	if segPath == "" {
		t.Fatal("no non-empty segment in archive")
	}
	targets := map[string]string{
		"manifest":  filepath.Join(arch, backup.ManifestName),
		"segment":   segPath,
		"base file": filepath.Join(arch, "base", "000000", "checkpoint.db"),
		"label":     filepath.Join(arch, "base", "000000", backup.LabelName),
	}
	for what, path := range targets {
		undo := flipByte(t, path)
		rep, err := backup.Verify(arch)
		if err == nil {
			// A corrupt base artifact may demote its base to incomplete
			// rather than fail the whole archive; either way the flip must
			// be reported.
			for _, b := range rep.Bases {
				if !b.Complete {
					err = fmt.Errorf("base %06d incomplete: %s", b.Seq, b.Problem)
				}
			}
		}
		if err == nil {
			t.Errorf("verify missed a flipped bit in the %s (%s)", what, path)
		}
		undo()
	}
	if _, err := backup.Verify(arch); err != nil {
		t.Fatalf("archive did not verify after undoing corruption: %v", err)
	}
}

// TestTornSegmentTailResync: bytes appended to a segment beyond the
// manifest-covered length are an unacknowledged torn tail (crash between
// segment fsync and manifest rewrite); reopening the archiver must
// discard them and resume archiving cleanly.
func TestTornSegmentTailResync(t *testing.T) {
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)
	for k := int64(1); k <= 6; k++ {
		put(t, e, k, k)
	}
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	m, err := backup.LoadManifest(arch)
	if err != nil {
		t.Fatal(err)
	}
	seg := &m.Segments[0]
	segPath := backup.SegmentPath(arch, seg)
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-tail")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	a2, err := backup.OpenArchiver(filepath.Join(dir, "wal"), arch, 0)
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(st.Size()) != seg.Length {
		t.Fatalf("torn tail not truncated: size %d, covered %d", st.Size(), seg.Length)
	}
	if _, err := backup.Verify(arch); err != nil {
		t.Fatalf("verify after resync: %v", err)
	}
	// The resynced archiver keeps working.
	e.SetWALArchiver(a2)
	put(t, e, 7, 7)
	if _, err := a2.Archive(); err != nil {
		t.Fatal(err)
	}
	got := restoreAndScan(t, arch, 0)
	if len(got) != 7 {
		t.Fatalf("restored %d rows, want 7", len(got))
	}
}

// TestIncompleteBaseIgnored: a base backup directory without a label (a
// crash before the label write) is reported incomplete by Verify and
// skipped by Restore in favor of an older complete base.
func TestIncompleteBaseIgnored(t *testing.T) {
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)
	for k := int64(1); k <= 5; k++ {
		put(t, e, k, k)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.BaseBackup(src(e, dir)); err != nil {
		t.Fatal(err)
	}
	// Fake a crashed base backup: data files copied, label never written.
	half := filepath.Join(arch, "base", "000007")
	if err := os.MkdirAll(half, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(half, "checkpoint.db"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := backup.Verify(arch)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	var complete, incomplete int
	for _, b := range rep.Bases {
		if b.Complete {
			complete++
		} else {
			incomplete++
		}
	}
	if complete != 1 || incomplete != 1 {
		t.Fatalf("bases: %d complete, %d incomplete, want 1/1 (%+v)", complete, incomplete, rep.Bases)
	}
	r2, err := backup.Restore(arch, filepath.Join(t.TempDir(), "restored"), 0)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r2.BaseSeq != 0 {
		t.Fatalf("restore used base %d, want the complete base 0", r2.BaseSeq)
	}
}

// TestSealFailureKeepsWAL: when archiving fails during the seal, the
// checkpoint must refuse to truncate the WAL — archive-before-truncate is
// the invariant that makes the archive a durability root. The next
// checkpoint, with the fault cleared, succeeds and loses nothing.
func TestSealFailureKeepsWAL(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)
	for k := int64(1); k <= 6; k++ {
		put(t, e, k, k)
	}
	if err := fault.Enable(fault.BackupArchiveCopy, "error"); err != nil {
		t.Fatal(err)
	}
	err := e.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint succeeded with a failing archiver; WAL may have been truncated unarchived")
	}
	if !strings.Contains(err.Error(), "kept WAL") {
		t.Fatalf("checkpoint error %q does not indicate the WAL was kept", err)
	}
	fault.Reset()
	// Nothing lost: the WAL still holds the records the failed seal could
	// not archive, so the retried checkpoint archives and truncates them.
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	put(t, e, 7, 7)
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	got := restoreAndScan(t, arch, 0)
	if len(got) != 7 {
		t.Fatalf("restored %d rows, want 7 (%v)", len(got), got)
	}
}

// TestSidecarSchemaJournal: phoebeserver keeps its DDL in an append-only
// journal next to the WAL, outside the log stream. The archiver snapshots
// it each round — cut at the last newline so a torn in-flight append never
// yields a half statement — and a restore that predates every base backup
// materializes it, so schema replay can run before WAL replay.
func TestSidecarSchemaJournal(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)
	journal := filepath.Join(dir, backup.SidecarName)
	const whole = "CREATE TABLE t (id INT, v STRING)\n"
	if err := os.WriteFile(journal, []byte(whole+"CREATE TAB"), 0o644); err != nil {
		t.Fatal(err)
	}
	put(t, e, 1, 10)
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(arch, backup.SidecarName))
	if err != nil {
		t.Fatalf("archive sidecar: %v", err)
	}
	if string(got) != whole {
		t.Fatalf("archived sidecar %q, want torn tail cut to %q", got, whole)
	}
	dest := filepath.Join(t.TempDir(), "restored")
	if _, err := backup.Restore(arch, dest, 0); err != nil {
		t.Fatal(err)
	}
	rgot, err := os.ReadFile(filepath.Join(dest, backup.SidecarName))
	if err != nil {
		t.Fatalf("restored sidecar: %v", err)
	}
	if string(rgot) != whole {
		t.Fatalf("restored sidecar %q, want %q", rgot, whole)
	}
}

// TestColdBackupRestore proves a base backup carries the cold tier — the
// compacted, compressed segments in data.blocks plus the manifest epoch
// the checkpoint image names — and that restore and PITR reproduce frozen
// rows exactly. It then forges the label CRC over tampered segment bytes,
// so only the per-segment checksum recorded in the cold manifest can
// catch the damage.
func TestColdBackupRestore(t *testing.T) {
	dir, arch := t.TempDir(), t.TempDir()
	e := openKV(t, dir)
	defer e.Close()
	a := attach(t, e, dir, arch)

	// 300 rows = four sealed 64-row pages plus an open tail page; freeze
	// the sealed prefix into four L0 segments and compact them (Fanout 2
	// so the merge actually fires).
	const frozenRows, total = 256, 300
	for k := int64(1); k <= total; k++ {
		put(t, e, k, k*10)
	}
	for i := 0; i < 3; i++ {
		e.CollectGarbage() // release undo twins so page prefixes can freeze
	}
	tb, err := e.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	tb.Frozen.Fanout = 2
	for i := 0; i < 4; i++ {
		if _, err := e.FreezeTables(1, ^uint32(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CompactColdAll(); err != nil {
		t.Fatal(err)
	}
	st := e.ColdStats()
	if st.Segments == 0 || st.Compactions == 0 {
		t.Fatalf("cold tier not populated: %+v", st)
	}
	if err := e.Checkpoint(); err != nil { // manifest durable, WAL sealed
		t.Fatal(err)
	}
	baseGSN := e.WAL.MaxGSN()
	label, bdir, err := a.BaseBackup(src(e, dir))
	if err != nil {
		t.Fatal(err)
	}
	var manFile string
	for _, f := range label.Files {
		if strings.HasPrefix(f.Name, "cold.manifest.") {
			manFile = f.Name
		}
	}
	if manFile == "" {
		t.Fatalf("base backup label carries no cold manifest: %+v", label.Files)
	}
	for k := int64(total + 1); k <= total+10; k++ {
		put(t, e, k, k*10)
	}
	if _, err := a.Archive(); err != nil {
		t.Fatal(err)
	}
	if _, err := backup.Verify(arch); err != nil {
		t.Fatal(err)
	}

	// Full restore: frozen rows and the post-backup hot tail both present,
	// and the cold tier came back as segments, not rehydrated heap pages.
	dest := filepath.Join(t.TempDir(), "restored")
	if _, err := backup.Restore(arch, dest, 0); err != nil {
		t.Fatal(err)
	}
	e2 := openKV(t, dest)
	if _, err := e2.Recover(); err != nil {
		t.Fatalf("restored recover: %v", err)
	}
	got := scanAll(t, e2)
	if len(got) != total+10 {
		t.Fatalf("restored %d rows, want %d", len(got), total+10)
	}
	for k := int64(1); k <= total+10; k++ {
		if got[k] != k*10 {
			t.Fatalf("key %d restored as %d, want %d", k, got[k], k*10)
		}
	}
	st2 := e2.ColdStats()
	if st2.Segments != st.Segments || st2.MaxLevel != st.MaxLevel {
		t.Fatalf("restored cold tier segments=%d level=%d, want segments=%d level=%d",
			st2.Segments, st2.MaxLevel, st.Segments, st.MaxLevel)
	}
	e2.Close()

	// PITR to the pre-backup horizon: the hot tail vanishes, every frozen
	// row survives.
	got = restoreAndScan(t, arch, baseGSN)
	if len(got) != total {
		t.Fatalf("PITR restored %d rows, want %d", len(got), total)
	}
	for k := int64(1); k <= frozenRows; k++ {
		if got[k] != k*10 {
			t.Fatalf("PITR key %d restored as %d, want %d", k, got[k], k*10)
		}
	}

	// Tamper with segment bytes in the copied block file and forge the
	// label entry so the file-level CRC matches again. verifyBaseFiles is
	// now blind; the manifest's per-segment checksum must still object.
	manData, err := os.ReadFile(filepath.Join(bdir, manFile))
	if err != nil {
		t.Fatal(err)
	}
	m, err := frozen.DecodeManifest(manData)
	if err != nil {
		t.Fatal(err)
	}
	seg := m.Tables[0].Segments[0]
	blocksPath := filepath.Join(bdir, "data.blocks")
	blocks, err := os.ReadFile(blocksPath)
	if err != nil {
		t.Fatal(err)
	}
	blocks[seg.Ref.Offset+int64(seg.HeaderLen)+4] ^= 0x01
	if err := os.WriteFile(blocksPath, blocks, 0o644); err != nil {
		t.Fatal(err)
	}
	for i := range label.Files {
		if label.Files[i].Name == "data.blocks" {
			label.Files[i].CRC = crc32.ChecksumIEEE(blocks)
			label.Files[i].Size = uint64(len(blocks))
		}
	}
	if err := os.WriteFile(filepath.Join(bdir, backup.LabelName), backup.EncodeLabel(label), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := backup.Verify(arch); err == nil || !strings.Contains(err.Error(), "segment") {
		t.Fatalf("Verify missed cold segment corruption under a forged label: %v", err)
	}
}
