// Package backup implements continuous WAL archiving, online base
// backups, and point-in-time restore for PhoebeDB.
//
// The archive directory is the durability root an operator replicates to
// cheap storage:
//
//	<archive>/MANIFEST            checksummed index of everything below
//	<archive>/segments/seg-E-G.wal archived log bytes, epoch E, WAL group G
//	<archive>/base/<seq>/         online base backups (checkpoint image,
//	                              frozen-block file, schema journal,
//	                              backup_label)
//
// Archiving is continuous: the archiver tails the live wal-*.log files and
// copies whole checksum-valid records into the current epoch's segments.
// An epoch ends when the engine checkpoints: Seal drains every remaining
// log byte into the archive, marks the epoch's segments sealed, and only
// then is Checkpoint allowed to truncate the WAL — archive-before-truncate
// is the ordering invariant that makes history recoverable after the WAL
// itself is gone.
//
// Restore materializes an ordinary database directory from the archive:
// the newest complete base backup's files plus per-group wal files rebuilt
// from the segment chain, optionally cut at a target GSN (PITR). The
// engine's normal Recover path then replays it — restore introduces no
// second recovery code path.
package backup

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Binary format magics. Both files end with a CRC32 trailer over every
// preceding byte and reject trailing garbage, so the codecs are canonical:
// any accepted input re-encodes to exactly itself (fuzzed property).
const (
	manifestMagic   uint32 = 0x50424D31 // "PBM1"
	labelMagic      uint32 = 0x50424C31 // "PBL1"
	manifestVersion uint32 = 1
	labelVersion    uint32 = 1
)

// Segment is one archived run of a WAL group's log bytes. Length/CRC cover
// the acknowledged prefix of the segment file: bytes beyond Length are an
// unacknowledged torn tail (a crash between the segment append and the
// manifest rewrite) and are discarded when the archiver reopens.
type Segment struct {
	Group  uint32
	Epoch  uint32
	Sealed bool
	Length uint64
	CRC    uint32 // crc32(IEEE) of the first Length bytes
	// FirstGSN is the first archived record's GSN (0 while empty);
	// LastGSN is the highest GSN archived into the segment.
	FirstGSN uint64
	LastGSN  uint64
}

// Name returns the segment's file name under <archive>/segments.
func (s *Segment) Name() string {
	return fmt.Sprintf("seg-%08d-%04d.wal", s.Epoch, s.Group)
}

// Manifest is the archive's checksummed index, rewritten atomically after
// every archiving round. Segment bytes become part of the archive only
// once the manifest covers them — the manifest advances strictly after the
// segment bytes are fsynced, so the covered prefix is always durable,
// whole records.
type Manifest struct {
	// ContinuousFrom is the GSN from which the archive is gap-free: a base
	// backup whose checkpoint horizon is at or above it can be restored.
	// Zero means the archive holds the database's entire history.
	ContinuousFrom uint64
	// SealGSN is the GSN horizon of the newest sealed epoch (the
	// checkpoint GSN that closed it). The archiver skips records at or
	// below it when tailing — after a crash between seal and WAL
	// truncation the live files still hold already-archived bytes, and the
	// GSN filter is what keeps them from being archived twice.
	SealGSN uint64
	// Epoch is the current (unsealed) epoch number.
	Epoch uint32
	// NextBase is the next base backup sequence number.
	NextBase uint32
	// SrcOff is, per WAL group, how many bytes of the live wal file have
	// been consumed this epoch (including records the GSN filter skipped).
	SrcOff []uint64
	// Segments holds every archived segment, sealed epochs first.
	Segments []Segment
}

// segmentWire is the encoded size of one Segment.
const segmentWire = 4 + 4 + 1 + 8 + 4 + 8 + 8

// mWriter appends little-endian fields.
type mWriter struct{ buf []byte }

func (w *mWriter) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *mWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *mWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *mWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// finish appends the CRC trailer and returns the encoded file.
func (w *mWriter) finish() []byte {
	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf
}

// mReader consumes little-endian fields with sticky error handling.
type mReader struct {
	buf []byte
	off int
	err error
}

func (r *mReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("backup: truncated or malformed encoding")
	}
}

func (r *mReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *mReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *mReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *mReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// count reads a u32 element count and bounds it by the bytes remaining at
// elemSize each, so a corrupted count cannot drive a huge allocation.
func (r *mReader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.buf)-r.off {
		r.fail()
		return 0
	}
	return n
}

// checkTrailer verifies the CRC trailer and strips it, returning the body.
func checkTrailer(data []byte, what string) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("backup: %s too short", what)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("backup: %s checksum mismatch", what)
	}
	return body, nil
}

// EncodeManifest renders the manifest in its canonical binary form.
func EncodeManifest(m *Manifest) []byte {
	w := &mWriter{}
	w.u32(manifestMagic)
	w.u32(manifestVersion)
	w.u64(m.ContinuousFrom)
	w.u64(m.SealGSN)
	w.u32(m.Epoch)
	w.u32(m.NextBase)
	w.u32(uint32(len(m.SrcOff)))
	for _, off := range m.SrcOff {
		w.u64(off)
	}
	w.u32(uint32(len(m.Segments)))
	for _, s := range m.Segments {
		w.u32(s.Group)
		w.u32(s.Epoch)
		sealed := uint8(0)
		if s.Sealed {
			sealed = 1
		}
		w.u8(sealed)
		w.u64(s.Length)
		w.u32(s.CRC)
		w.u64(s.FirstGSN)
		w.u64(s.LastGSN)
	}
	return w.finish()
}

// DecodeManifest parses and validates a manifest file image.
func DecodeManifest(data []byte) (*Manifest, error) {
	body, err := checkTrailer(data, "manifest")
	if err != nil {
		return nil, err
	}
	r := &mReader{buf: body}
	if r.u32() != manifestMagic {
		return nil, fmt.Errorf("backup: bad manifest magic")
	}
	if v := r.u32(); r.err == nil && v != manifestVersion {
		return nil, fmt.Errorf("backup: unsupported manifest version %d", v)
	}
	m := &Manifest{
		ContinuousFrom: r.u64(),
		SealGSN:        r.u64(),
		Epoch:          r.u32(),
		NextBase:       r.u32(),
	}
	nOff := r.count(8)
	for i := 0; i < nOff && r.err == nil; i++ {
		m.SrcOff = append(m.SrcOff, r.u64())
	}
	nSeg := r.count(segmentWire)
	for i := 0; i < nSeg && r.err == nil; i++ {
		s := Segment{Group: r.u32(), Epoch: r.u32()}
		switch r.u8() {
		case 0:
		case 1:
			s.Sealed = true
		default:
			r.fail()
		}
		s.Length = r.u64()
		s.CRC = r.u32()
		s.FirstGSN = r.u64()
		s.LastGSN = r.u64()
		m.Segments = append(m.Segments, s)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("backup: %d trailing bytes after manifest", len(body)-r.off)
	}
	return m, nil
}

// LabelFile records one file copied into a base backup, with the size and
// checksum it had at copy time — restore and verify recompute both.
type LabelFile struct {
	Name string
	Size uint64
	CRC  uint32
}

// Label is the backup_label written LAST into a base backup directory: a
// base backup without a label (a crash mid-copy) is incomplete and is
// ignored by verify and restore.
type Label struct {
	// CheckpointGSN is the GSN horizon of the checkpoint image included in
	// the backup (0 when the database had never checkpointed). Restore
	// refuses PITR targets below it — the image already contains that
	// history in merged form.
	CheckpointGSN uint64
	// HorizonGSN is the backup horizon: every transaction acknowledged
	// before the base backup began has its commit record at or below it,
	// so restoring to HorizonGSN reproduces at least everything the
	// application had been told was durable.
	HorizonGSN uint64
	// Files lists the copied data files.
	Files []LabelFile
}

// EncodeLabel renders the label in its canonical binary form.
func EncodeLabel(l *Label) []byte {
	w := &mWriter{}
	w.u32(labelMagic)
	w.u32(labelVersion)
	w.u64(l.CheckpointGSN)
	w.u64(l.HorizonGSN)
	w.u32(uint32(len(l.Files)))
	for _, f := range l.Files {
		w.bytes([]byte(f.Name))
		w.u64(f.Size)
		w.u32(f.CRC)
	}
	return w.finish()
}

// DecodeLabel parses and validates a backup_label image.
func DecodeLabel(data []byte) (*Label, error) {
	body, err := checkTrailer(data, "backup label")
	if err != nil {
		return nil, err
	}
	r := &mReader{buf: body}
	if r.u32() != labelMagic {
		return nil, fmt.Errorf("backup: bad label magic")
	}
	if v := r.u32(); r.err == nil && v != labelVersion {
		return nil, fmt.Errorf("backup: unsupported label version %d", v)
	}
	l := &Label{CheckpointGSN: r.u64(), HorizonGSN: r.u64()}
	nf := r.count(4 + 8 + 4)
	for i := 0; i < nf && r.err == nil; i++ {
		f := LabelFile{Name: string(r.bytes())}
		f.Size = r.u64()
		f.CRC = r.u32()
		l.Files = append(l.Files, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("backup: %d trailing bytes after label", len(body)-r.off)
	}
	return l, nil
}
