package backup

import (
	"bytes"
	"testing"
)

// FuzzManifest feeds arbitrary bytes to the archive manifest codec.
// DecodeManifest must never panic, and — because the encoding is
// canonical (fixed little-endian frames, bounded counts, a CRC trailer,
// trailing bytes rejected) — any input it accepts must re-encode to
// exactly the same bytes.
func FuzzManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeManifest(&Manifest{}))
	f.Add(EncodeManifest(&Manifest{
		ContinuousFrom: 7,
		SealGSN:        99,
		Epoch:          2,
		NextBase:       1,
		SrcOff:         []uint64{1024, 0},
		Segments: []Segment{
			{Group: 0, Epoch: 0, Sealed: true, Length: 4096, CRC: 0xDEADBEEF, FirstGSN: 1, LastGSN: 99},
			{Group: 1, Epoch: 2, Length: 128, CRC: 0x1234, FirstGSN: 100, LastGSN: 117},
		},
	}))
	whole := EncodeManifest(&Manifest{SrcOff: []uint64{5}})
	f.Add(whole[:len(whole)-1]) // truncated trailer
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re := EncodeManifest(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical manifest: % x re-encodes to % x", data, re)
		}
	})
}

// FuzzLabel does the same for the backup_label codec.
func FuzzLabel(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeLabel(&Label{}))
	f.Add(EncodeLabel(&Label{
		CheckpointGSN: 41,
		HorizonGSN:    77,
		Files: []LabelFile{
			{Name: "checkpoint.db", Size: 8192, CRC: 0xABCD},
			{Name: "data.blocks", Size: 0, CRC: 0},
		},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLabel(data)
		if err != nil {
			return
		}
		re := EncodeLabel(l)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical label: % x re-encodes to % x", data, re)
		}
	})
}
