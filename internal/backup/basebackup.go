package backup

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"phoebedb/internal/core"
	"phoebedb/internal/fault"
	"phoebedb/internal/frozen"
)

// BaseFileNames are the data-directory files a base backup captures:
// the checkpoint image, the frozen-block file its BlockRefs point into,
// and the DDL journal. The live page file (data.pages) is deliberately
// absent — checkpoint images carry full page bytes, and everything after
// the checkpoint is replayed from archived WAL.
var BaseFileNames = []string{"checkpoint.db", "data.blocks", "schema.sql"}

// BaseSource describes where a base backup copies from. The three hooks
// bind it to a live engine and are all nil for an offline (stopped
// database) backup.
type BaseSource struct {
	// DataDir is the database directory holding checkpoint.db etc.
	DataDir string
	// MaxGSN returns the WAL's current highest assigned GSN.
	MaxGSN func() uint64
	// RaiseGSN lifts every WAL writer's GSN clock to at least the given
	// value, so records logged after the horizon capture sort above it.
	RaiseGSN func(uint64)
	// FlushWAL forces every writer's buffer to its group file.
	FlushWAL func() error
}

// BaseBackup takes an online base backup into <archive>/base/<seq> and
// returns its label and directory. The engine keeps serving transactions
// throughout; only three cheap synchronous steps touch it.
//
// Horizon protocol (live source): capture horizon = MaxGSN, then RaiseGSN
// so every record logged from now on sorts strictly above it, then
// FlushWAL so every record at or below it is in the group files, then one
// archive round so those bytes are archive-covered. After that the copied
// image plus archived WAL up to the horizon reproduce every transaction
// acknowledged before the backup began — that is the promise HorizonGSN
// makes in the label.
//
// The label is written last, atomically: a crash at any earlier point
// leaves a directory without backup_label, which Verify reports as
// incomplete and Restore ignores.
func (a *Archiver) BaseBackup(src BaseSource) (*Label, string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	var horizon uint64
	if src.MaxGSN != nil {
		horizon = src.MaxGSN()
	}
	if src.RaiseGSN != nil {
		src.RaiseGSN(horizon)
	}
	if src.FlushWAL != nil {
		if err := src.FlushWAL(); err != nil {
			return nil, "", fmt.Errorf("backup: base backup flush: %w", err)
		}
	}
	if _, err := a.archiveLocked(); err != nil {
		return nil, "", fmt.Errorf("backup: base backup catch-up: %w", err)
	}
	if horizon == 0 {
		// Offline source: after a full catch-up round the archive horizon
		// is the highest GSN the database ever logged.
		horizon = a.horizonGSN.Load()
	}
	if got := a.horizonGSN.Load(); got < horizon {
		return nil, "", fmt.Errorf("backup: archive horizon %d below backup horizon %d", got, horizon)
	}

	seq := a.m.NextBase
	bdir := filepath.Join(a.dir, baseDir, fmt.Sprintf("%06d", seq))
	if err := os.MkdirAll(bdir, 0o755); err != nil {
		return nil, "", err
	}
	// Snapshot the checkpoint image together with the cold manifest it
	// names. A concurrent checkpoint can replace the image and garbage-
	// collect old manifest epochs between our two reads, so on a missing
	// manifest the newer image is recaptured and its manifest read instead
	// (manifest GC keeps the current and previous epoch, so one retry
	// always lands on a live pair).
	var cpData, manData []byte
	var manName string
	for attempt := 0; ; attempt++ {
		var err error
		cpData, err = os.ReadFile(filepath.Join(src.DataDir, "checkpoint.db"))
		if os.IsNotExist(err) {
			cpData = nil
			break
		}
		if err != nil {
			return nil, "", err
		}
		epoch, _, err := core.ReadColdManifestRefFromImage(cpData)
		if err != nil {
			return nil, "", fmt.Errorf("backup: base backup: %w", err)
		}
		if epoch == 0 {
			manName = ""
			break
		}
		manName = frozen.ManifestFileName(epoch)
		manData, err = os.ReadFile(filepath.Join(src.DataDir, manName))
		if err == nil {
			break
		}
		if !os.IsNotExist(err) || attempt > 0 {
			return nil, "", fmt.Errorf("backup: base backup cold manifest: %w", err)
		}
	}

	var files []LabelFile
	var cpGSN uint64
	copyOne := func(name string, data []byte) error {
		if err := writeFileSync(filepath.Join(bdir, name), data); err != nil {
			return err
		}
		files = append(files, LabelFile{
			Name: name,
			Size: uint64(len(data)),
			CRC:  crc32.ChecksumIEEE(data),
		})
		return nil
	}
	for _, name := range BaseFileNames {
		data := cpData
		if name != "checkpoint.db" {
			var err error
			data, err = os.ReadFile(filepath.Join(src.DataDir, name))
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				return nil, "", err
			}
		} else if data == nil {
			continue
		} else {
			// Describe the image bytes actually captured, not whatever the
			// engine's horizon was when we asked — a checkpoint may have
			// replaced the file between the two.
			var err error
			cpGSN, err = core.ReadCheckpointGSNFromImage(data)
			if err != nil {
				return nil, "", fmt.Errorf("backup: base backup: %w", err)
			}
		}
		if err := copyOne(name, data); err != nil {
			return nil, "", err
		}
	}
	if manName != "" {
		if err := copyOne(manName, manData); err != nil {
			return nil, "", err
		}
	}
	if cpGSN < a.m.ContinuousFrom {
		return nil, "", fmt.Errorf("backup: base backup checkpoint horizon %d predates archive history (continuous from %d)",
			cpGSN, a.m.ContinuousFrom)
	}
	if horizon < cpGSN {
		horizon = cpGSN
	}

	if err := fault.Eval(fault.BackupPreLabel); err != nil {
		return nil, "", err
	}
	label := &Label{CheckpointGSN: cpGSN, HorizonGSN: horizon, Files: files}
	if err := writeFileAtomic(filepath.Join(bdir, LabelName), EncodeLabel(label)); err != nil {
		return nil, "", err
	}
	if d, err := os.Open(bdir); err == nil {
		d.Sync()
		d.Close()
	}

	a.m.NextBase = seq + 1
	if err := a.persistLocked(); err != nil {
		return nil, "", err
	}
	a.baseBackups.Add(1)
	a.lastBaseGSN.Store(horizon)
	return label, bdir, nil
}

// baseEntry is one directory under <archive>/base.
type baseEntry struct {
	seq   int
	dir   string
	label *Label // nil when incomplete (no valid backup_label)
	err   string
}

// listBases returns the base backup directories in ascending sequence
// order, decoding each label (entries without a valid label are kept, with
// label nil, so callers can report them).
func listBases(archiveDir string) ([]baseEntry, error) {
	root := filepath.Join(archiveDir, baseDir)
	ents, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []baseEntry
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		seq, err := strconv.Atoi(de.Name())
		if err != nil {
			continue
		}
		be := baseEntry{seq: seq, dir: filepath.Join(root, de.Name())}
		data, err := os.ReadFile(filepath.Join(be.dir, LabelName))
		switch {
		case os.IsNotExist(err):
			be.err = "missing backup_label (crash during base backup)"
		case err != nil:
			be.err = err.Error()
		default:
			l, derr := DecodeLabel(data)
			if derr != nil {
				be.err = derr.Error()
			} else {
				be.label = l
			}
		}
		out = append(out, be)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFileAtomic writes data via a temp file, fsync, and rename, so the
// destination either has the old content or the complete new content.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
