package pax

import (
	"testing"

	"phoebedb/internal/rel"
)

func filterSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "name", Type: rel.TString},
		rel.Column{Name: "score", Type: rel.TFloat64},
	)
}

func fillPage(t *testing.T, n int) *Page {
	t.Helper()
	p := NewPage(filterSchema(), n+8)
	for i := 0; i < n; i++ {
		row := rel.Row{rel.Int(int64(i)), rel.Str(string(rune('a' + i%26))), rel.Float(float64(i) / 2)}
		if _, err := p.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func selected(s Sel) []int {
	var out []int
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

func TestSelReset(t *testing.T) {
	s := MakeSel(0)
	s = s.Reset(70)
	if s.Count() != 70 {
		t.Fatalf("Count=%d after Reset(70)", s.Count())
	}
	if !s.Has(0) || !s.Has(63) || !s.Has(69) {
		t.Fatal("Reset left expected bits clear")
	}
	s.Clear(63)
	if s.Has(63) || s.Count() != 69 {
		t.Fatal("Clear failed")
	}
	s.Set(63)
	if !s.Has(63) {
		t.Fatal("Set failed")
	}
	// Shrinking reuses storage and must not leak stale high bits.
	s = s.Reset(3)
	if got := selected(s); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Reset(3) selected %v", got)
	}
}

func TestFilterFixedInt(t *testing.T) {
	p := fillPage(t, 100)
	sel := MakeSel(p.Len()).Reset(p.Len())
	err := p.FilterFixed([]rel.ColPred{
		{Col: 0, Op: rel.CmpGe, Val: rel.Int(10)},
		{Col: 0, Op: rel.CmpLt, Val: rel.Int(14)},
	}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := selected(sel); len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Fatalf("selected %v, want [10..13]", got)
	}
}

func TestFilterFixedFloatAndNe(t *testing.T) {
	p := fillPage(t, 10)
	sel := MakeSel(p.Len()).Reset(p.Len())
	err := p.FilterFixed([]rel.ColPred{
		{Col: 2, Op: rel.CmpLe, Val: rel.Float(2.0)}, // score = i/2 → i <= 4
		{Col: 0, Op: rel.CmpNe, Val: rel.Int(2)},
	}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := selected(sel); len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("selected %v, want [0 1 3 4]", got)
	}
}

func TestFilterFixedRespectsSeedSelection(t *testing.T) {
	p := fillPage(t, 8)
	sel := MakeSel(p.Len()).Reset(p.Len())
	sel.Clear(3) // e.g. a deleted or MVCC-residue slot
	if err := p.FilterFixed([]rel.ColPred{{Col: 0, Op: rel.CmpGe, Val: rel.Int(2)}}, sel); err != nil {
		t.Fatal(err)
	}
	for _, i := range selected(sel) {
		if i == 3 {
			t.Fatal("cleared seed slot resurfaced")
		}
	}
	if sel.Count() != 5 { // 2,4,5,6,7
		t.Fatalf("Count=%d, want 5", sel.Count())
	}
}

func TestFilterFixedRejectsVarWidth(t *testing.T) {
	p := fillPage(t, 4)
	sel := MakeSel(p.Len()).Reset(p.Len())
	if err := p.FilterFixed([]rel.ColPred{{Col: 1, Op: rel.CmpEq, Val: rel.Str("a")}}, sel); err == nil {
		t.Fatal("var-width predicate accepted")
	}
}

func TestAggStateFold(t *testing.T) {
	specs := []rel.AggSpec{
		{Op: rel.AggOpCount},
		{Op: rel.AggOpSum, Col: 0},
		{Op: rel.AggOpMin, Col: 2},
		{Op: rel.AggOpMax, Col: 2},
		{Op: rel.AggOpMin, Col: 1},
	}
	a := NewAggState(specs)
	// Two pages: ids 0..9 and 10..19, filtered to even ids only.
	for pg := 0; pg < 2; pg++ {
		p := NewPage(filterSchema(), 16)
		for i := 0; i < 10; i++ {
			id := int64(pg*10 + i)
			row := rel.Row{rel.Int(id), rel.Str(string(rune('a' + id))), rel.Float(float64(id) * 1.5)}
			if _, err := p.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		sel := MakeSel(p.Len()).Reset(p.Len())
		if err := p.FilterFixed([]rel.ColPred{{Col: 0, Op: rel.CmpNe, Val: rel.Int(3)}}, sel); err != nil {
			t.Fatal(err)
		}
		if err := a.Fold(p, sel); err != nil {
			t.Fatal(err)
		}
	}
	if a.N() != 19 {
		t.Fatalf("N=%d, want 19", a.N())
	}
	if v := a.Result(0, rel.TInt64); v.I != 19 {
		t.Errorf("count = %v", v)
	}
	// sum ids 0..19 minus 3 = 190 - 3
	if v := a.Result(1, rel.TInt64); v.I != 187 {
		t.Errorf("sum = %v, want 187", v)
	}
	if v := a.Result(2, rel.TFloat64); v.F != 0 {
		t.Errorf("min = %v, want 0", v)
	}
	if v := a.Result(3, rel.TFloat64); v.F != 28.5 {
		t.Errorf("max = %v, want 28.5", v)
	}
	if v := a.Result(4, rel.TString); v.S != "a" {
		t.Errorf("min name = %v, want a", v)
	}
}

func TestAggStateEmpty(t *testing.T) {
	a := NewAggState([]rel.AggSpec{{Op: rel.AggOpCount}})
	p := fillPage(t, 4)
	sel := MakeSel(p.Len()) // nothing selected
	if err := a.Fold(p, sel); err != nil {
		t.Fatal(err)
	}
	if a.N() != 0 {
		t.Fatalf("N=%d, want 0", a.N())
	}
}
