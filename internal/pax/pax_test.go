package pax

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"phoebedb/internal/rel"
)

func testSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "name", Type: rel.TString},
		rel.Column{Name: "bal", Type: rel.TFloat64},
	)
}

func mkRow(i int) rel.Row {
	return rel.Row{rel.Int(int64(i)), rel.Str(string(rune('a' + i%26))), rel.Float(float64(i) / 2)}
}

func TestAppendAndRead(t *testing.T) {
	p := NewPage(testSchema(), 16)
	for i := 0; i < 10; i++ {
		slot, err := p.Append(mkRow(i))
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
	}
	if p.Len() != 10 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := 0; i < 10; i++ {
		if !p.Row(i).Equal(mkRow(i)) {
			t.Fatalf("row %d = %v, want %v", i, p.Row(i), mkRow(i))
		}
	}
}

func TestInsertShifts(t *testing.T) {
	p := NewPage(testSchema(), 8)
	for i := 0; i < 4; i++ {
		p.Append(mkRow(i))
	}
	if err := p.Insert(1, mkRow(99)); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 99, 1, 2, 3}
	for i, w := range want {
		if p.Col(i, 0).I != w {
			t.Fatalf("slot %d id = %d, want %d", i, p.Col(i, 0).I, w)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	p := NewPage(testSchema(), 2)
	p.Append(mkRow(0))
	if err := p.Insert(5, mkRow(1)); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if err := p.Insert(0, rel.Row{rel.Int(1)}); err == nil {
		t.Fatal("non-conforming row accepted")
	}
	p.Append(mkRow(1))
	if _, err := p.Append(mkRow(2)); err == nil {
		t.Fatal("append to full page accepted")
	}
	if !p.Full() {
		t.Fatal("Full() false on full page")
	}
}

func TestDeleteShifts(t *testing.T) {
	p := NewPage(testSchema(), 8)
	for i := 0; i < 5; i++ {
		p.Append(mkRow(i))
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 3, 4}
	if p.Len() != len(want) {
		t.Fatalf("Len = %d", p.Len())
	}
	for i, w := range want {
		if p.Col(i, 0).I != w {
			t.Fatalf("slot %d id = %d, want %d", i, p.Col(i, 0).I, w)
		}
	}
	if err := p.Delete(10); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
}

func TestInPlaceUpdate(t *testing.T) {
	p := NewPage(testSchema(), 4)
	p.Append(mkRow(0))
	p.SetCol(0, 0, rel.Int(42))
	p.SetCol(0, 1, rel.Str("updated-longer-string"))
	p.SetCol(0, 2, rel.Float(-1.5))
	got := p.Row(0)
	want := rel.Row{rel.Int(42), rel.Str("updated-longer-string"), rel.Float(-1.5)}
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSetRow(t *testing.T) {
	p := NewPage(testSchema(), 4)
	p.Append(mkRow(0))
	if err := p.SetRow(0, mkRow(7)); err != nil {
		t.Fatal(err)
	}
	if !p.Row(0).Equal(mkRow(7)) {
		t.Fatal("SetRow did not overwrite")
	}
	if err := p.SetRow(3, mkRow(1)); err == nil {
		t.Fatal("out-of-range SetRow accepted")
	}
}

func TestScanColFixedAndVar(t *testing.T) {
	p := NewPage(testSchema(), 8)
	for i := 0; i < 6; i++ {
		p.Append(mkRow(i))
	}
	var ids []int64
	p.ScanCol(0, func(slot int, v rel.Value) { ids = append(ids, v.I) })
	if !reflect.DeepEqual(ids, []int64{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("fixed scan = %v", ids)
	}
	var names []string
	p.ScanCol(1, func(slot int, v rel.Value) { names = append(names, v.S) })
	if len(names) != 6 || names[0] != "a" || names[5] != "f" {
		t.Fatalf("var scan = %v", names)
	}
	var sum float64
	p.ScanCol(2, func(slot int, v rel.Value) { sum += v.F })
	if sum != 0+0.5+1+1.5+2+2.5 {
		t.Fatalf("float scan sum = %g", sum)
	}
}

func TestSplitInto(t *testing.T) {
	p := NewPage(testSchema(), 8)
	for i := 0; i < 7; i++ {
		p.Append(mkRow(i))
	}
	q := NewPage(testSchema(), 8)
	moved := p.SplitInto(q)
	if moved != 4 || p.Len() != 3 || q.Len() != 4 {
		t.Fatalf("split: moved=%d left=%d right=%d", moved, p.Len(), q.Len())
	}
	for i := 0; i < 3; i++ {
		if !p.Row(i).Equal(mkRow(i)) {
			t.Fatalf("left row %d wrong", i)
		}
	}
	for i := 0; i < 4; i++ {
		if !q.Row(i).Equal(mkRow(i + 3)) {
			t.Fatalf("right row %d wrong", i)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p := NewPage(testSchema(), 16)
	for i := 0; i < 9; i++ {
		p.Append(mkRow(i))
	}
	img := p.Serialize(nil)
	if len(img) != p.SerializedSize() {
		t.Fatalf("SerializedSize = %d, actual %d", p.SerializedSize(), len(img))
	}
	q, err := Deserialize(testSchema(), 16, img)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 9 {
		t.Fatalf("deserialized Len = %d", q.Len())
	}
	for i := 0; i < 9; i++ {
		if !q.Row(i).Equal(p.Row(i)) {
			t.Fatalf("row %d mismatch after round trip", i)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	s := testSchema()
	if _, err := Deserialize(s, 4, []byte{1, 2}); err == nil {
		t.Fatal("truncated image accepted")
	}
	if _, err := Deserialize(s, 4, make([]byte, 16)); err == nil {
		t.Fatal("bad magic accepted")
	}
	p := NewPage(s, 8)
	for i := 0; i < 6; i++ {
		p.Append(mkRow(i))
	}
	img := p.Serialize(nil)
	if _, err := Deserialize(s, 2, img); err == nil {
		t.Fatal("capacity overflow accepted")
	}
	if _, err := Deserialize(s, 8, img[:len(img)-3]); err == nil {
		t.Fatal("truncated var value accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := testSchema()
	f := func(ids []int64, names []string) bool {
		n := len(ids)
		if len(names) < n {
			n = len(names)
		}
		if n > 32 {
			n = 32
		}
		p := NewPage(s, 32)
		rows := make([]rel.Row, n)
		for i := 0; i < n; i++ {
			rows[i] = rel.Row{rel.Int(ids[i]), rel.Str(names[i]), rel.Float(float64(ids[i]))}
			if _, err := p.Append(rows[i]); err != nil {
				return false
			}
		}
		q, err := Deserialize(s, 32, p.Serialize(nil))
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !q.Row(i).Equal(rows[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScanColFixed(b *testing.B) {
	p := NewPage(testSchema(), 256)
	for i := 0; i < 256; i++ {
		p.Append(mkRow(i))
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		p.ScanCol(0, func(_ int, v rel.Value) { sink += v.I })
	}
	_ = sink
}

func BenchmarkAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	rows := make([]rel.Row, 256)
	for i := range rows {
		rows[i] = rel.Row{rel.Int(rng.Int63()), rel.Str("some-name"), rel.Float(rng.Float64())}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPage(testSchema(), 256)
		for _, r := range rows {
			p.Append(r)
		}
	}
}
