package pax

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"phoebedb/internal/rel"
)

// Vectorized scan support (§5.2): predicates evaluate column-at-a-time
// against fixed-width minipages into a selection bitmap, so disqualified
// rows are never materialized. The bitmap then drives row gathering or a
// column-strip aggregate.

// Sel is a selection bitmap over a page's slots: bit i set means slot i is
// selected. Capacity is fixed at allocation; the word slice is reusable
// across pages via Reset.
type Sel []uint64

// MakeSel returns a cleared bitmap able to address n slots.
func MakeSel(n int) Sel {
	return make(Sel, (n+63)/64)
}

// Reset re-dimensions the bitmap (reusing storage when it fits) and sets
// the first n bits — the "all candidates" starting state.
func (s Sel) Reset(n int) Sel {
	words := (n + 63) / 64
	if cap(s) < words {
		s = make(Sel, words)
	}
	s = s[:words]
	for i := range s {
		s[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && words > 0 {
		s[words-1] = (uint64(1) << r) - 1
	}
	return s
}

// Set marks slot i selected.
func (s Sel) Set(i int) { s[i/64] |= 1 << (i % 64) }

// Clear unmarks slot i.
func (s Sel) Clear(i int) { s[i/64] &^= 1 << (i % 64) }

// Has reports whether slot i is selected.
func (s Sel) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of selected slots.
func (s Sel) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach invokes fn for each selected slot in ascending order until fn
// returns false.
func (s Sel) ForEach(fn func(slot int) bool) {
	for wi, w := range s {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// errVarWidth rejects batch evaluation over a var-width column; callers
// route those predicates through the row-at-a-time path.
func errVarWidth(col int) error {
	return fmt.Errorf("pax: column %d is not fixed-width", col)
}

// FilterFixed evaluates fixed-width column predicates directly against the
// page's minipage bytes, clearing sel bits for slots that fail any
// predicate. Only slots already selected are examined (the caller seeds sel
// with its candidate set — typically every live slot), so the cost per
// predicate is one contiguous minipage walk over surviving slots, with no
// row materialization. Every predicate column must be fixed-width.
func (p *Page) FilterFixed(preds []rel.ColPred, sel Sel) error {
	for _, pr := range preds {
		fi := p.fixIdx[pr.Col]
		if fi < 0 {
			return errVarWidth(pr.Col)
		}
		mp := p.fixed[fi]
		if p.schema.Cols[pr.Col].Type == rel.TInt64 {
			rv := pr.Val.I
			op := pr.Op
			for wi := range sel {
				w := sel[wi]
				base := wi * 64
				for w != 0 {
					i := base + bits.TrailingZeros64(w)
					w &= w - 1
					v := int64(binary.LittleEndian.Uint64(mp[i*8 : i*8+8]))
					if !acceptInt(op, v, rv) {
						sel.Clear(i)
					}
				}
			}
		} else {
			rv := pr.Val.F
			op := pr.Op
			for wi := range sel {
				w := sel[wi]
				base := wi * 64
				for w != 0 {
					i := base + bits.TrailingZeros64(w)
					w &= w - 1
					v := math.Float64frombits(binary.LittleEndian.Uint64(mp[i*8 : i*8+8]))
					if !acceptFloat(op, v, rv) {
						sel.Clear(i)
					}
				}
			}
		}
	}
	return nil
}

func acceptInt(op rel.CmpOp, a, b int64) bool {
	switch op {
	case rel.CmpEq:
		return a == b
	case rel.CmpNe:
		return a != b
	case rel.CmpLt:
		return a < b
	case rel.CmpLe:
		return a <= b
	case rel.CmpGt:
		return a > b
	case rel.CmpGe:
		return a >= b
	}
	return false
}

func acceptFloat(op rel.CmpOp, a, b float64) bool {
	switch op {
	case rel.CmpEq:
		return a == b
	case rel.CmpNe:
		return a != b
	case rel.CmpLt:
		return a < b
	case rel.CmpLe:
		return a <= b
	case rel.CmpGt:
		return a > b
	case rel.CmpGe:
		return a >= b
	}
	return false
}

// AggState accumulates pushed-down aggregates across pages. Call Fold once
// per page with that page's post-filter selection, then Finish.
type AggState struct {
	specs []rel.AggSpec
	// one accumulator per spec; ints and floats tracked separately, the
	// column type picks which is live.
	sumI  []int64
	sumF  []float64
	minI  []int64
	maxI  []int64
	minF  []float64
	maxF  []float64
	minS  []string
	maxS  []string
	n     int64
	first bool
}

// NewAggState returns an accumulator for the given specs.
func NewAggState(specs []rel.AggSpec) *AggState {
	k := len(specs)
	return &AggState{
		specs: specs,
		sumI:  make([]int64, k), sumF: make([]float64, k),
		minI: make([]int64, k), maxI: make([]int64, k),
		minF: make([]float64, k), maxF: make([]float64, k),
		minS: make([]string, k), maxS: make([]string, k),
		first: true,
	}
}

// N returns the number of qualifying rows folded so far.
func (a *AggState) N() int64 { return a.n }

// Fold accumulates the page's selected slots into the aggregates, walking
// one minipage per spec. Fixed-width columns fold straight from page
// bytes; MIN/MAX over a var-width column copies the candidate strings
// (they must outlive the page latch).
func (a *AggState) Fold(p *Page, sel Sel) error {
	cnt := sel.Count()
	if cnt == 0 {
		return nil
	}
	for si, sp := range a.specs {
		if sp.Op == rel.AggOpCount {
			continue
		}
		ct := p.schema.Cols[sp.Col].Type
		fi := p.fixIdx[sp.Col]
		switch {
		case fi >= 0 && ct == rel.TInt64:
			mp := p.fixed[fi]
			first := a.first
			sel.ForEach(func(i int) bool {
				v := int64(binary.LittleEndian.Uint64(mp[i*8 : i*8+8]))
				a.sumI[si] += v
				if first || v < a.minI[si] {
					a.minI[si] = v
				}
				if first || v > a.maxI[si] {
					a.maxI[si] = v
				}
				first = false
				return true
			})
		case fi >= 0:
			mp := p.fixed[fi]
			first := a.first
			sel.ForEach(func(i int) bool {
				v := math.Float64frombits(binary.LittleEndian.Uint64(mp[i*8 : i*8+8]))
				a.sumF[si] += v
				if first || v < a.minF[si] {
					a.minF[si] = v
				}
				if first || v > a.maxF[si] {
					a.maxF[si] = v
				}
				first = false
				return true
			})
		default:
			if sp.Op == rel.AggOpSum {
				return fmt.Errorf("pax: SUM over var-width column %d", sp.Col)
			}
			vc := p.vars[p.varIdx[sp.Col]]
			first := a.first
			sel.ForEach(func(i int) bool {
				v := string(vc[i])
				if first || v < a.minS[si] {
					a.minS[si] = v
				}
				if first || v > a.maxS[si] {
					a.maxS[si] = v
				}
				first = false
				return true
			})
		}
	}
	a.n += int64(cnt)
	a.first = false
	return nil
}

// FoldRow accumulates one materialized row — frozen-layer rows and
// chain-walked older versions, which bypass the page fold.
func (a *AggState) FoldRow(row rel.Row) {
	for si, sp := range a.specs {
		if sp.Op == rel.AggOpCount {
			continue
		}
		v := row[sp.Col]
		switch v.Kind {
		case rel.TInt64:
			a.sumI[si] += v.I
			if a.first || v.I < a.minI[si] {
				a.minI[si] = v.I
			}
			if a.first || v.I > a.maxI[si] {
				a.maxI[si] = v.I
			}
		case rel.TFloat64:
			a.sumF[si] += v.F
			if a.first || v.F < a.minF[si] {
				a.minF[si] = v.F
			}
			if a.first || v.F > a.maxF[si] {
				a.maxF[si] = v.F
			}
		default:
			if a.first || v.S < a.minS[si] {
				a.minS[si] = v.S
			}
			if a.first || v.S > a.maxS[si] {
				a.maxS[si] = v.S
			}
		}
	}
	a.n++
	a.first = false
}

// Result returns the final value for spec si. Meaningless when N is 0 —
// the SQL layer substitutes its empty-input defaults.
func (a *AggState) Result(si int, colType rel.Type) rel.Value {
	sp := a.specs[si]
	switch sp.Op {
	case rel.AggOpCount:
		return rel.Int(a.n)
	case rel.AggOpSum:
		if colType == rel.TInt64 {
			return rel.Int(a.sumI[si])
		}
		return rel.Float(a.sumF[si])
	case rel.AggOpMin:
		switch colType {
		case rel.TInt64:
			return rel.Int(a.minI[si])
		case rel.TFloat64:
			return rel.Float(a.minF[si])
		default:
			return rel.Str(a.minS[si])
		}
	case rel.AggOpMax:
		switch colType {
		case rel.TInt64:
			return rel.Int(a.maxI[si])
		case rel.TFloat64:
			return rel.Float(a.maxF[si])
		default:
			return rel.Str(a.maxS[si])
		}
	}
	return rel.Value{}
}
