// Package pax implements the PAX (Partition Attributes Across) page layout
// PhoebeDB uses for hot and cold base-table pages (§5.2).
//
// Within a page, values are grouped by column rather than by row: each
// fixed-width column occupies a contiguous minipage so scans and aggregates
// touch only the cache lines of the columns they read — the property the
// paper targets for future HTAP support. Variable-length columns are stored
// as per-slot byte strings packed into the serialized image.
//
// Pages support in-place updates (§5.2): hot and cold pages are mutated
// directly, with before-images preserved separately in the in-memory UNDO
// log rather than in the page.
package pax

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"phoebedb/internal/rel"
)

// viewStr returns a string sharing b's backing bytes without copying.
//
// Safety contract: var-column backing slices are content-immutable — SetCol
// always installs a freshly allocated slice (never writes into the old one),
// and Insert/Delete/SplitInto only move or nil the per-slot slice headers.
// A view therefore stays valid for the life of the Go heap object it points
// at, regardless of later updates to the slot; retaining one merely pins
// that allocation. This is what makes allocation-free point reads possible:
// materializing a row with string columns costs zero copies.
func viewStr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Page is a PAX-organized slotted page holding up to Cap rows of one
// relation. It is not safe for concurrent use; callers synchronize through
// the owning B-Tree node's latch.
type Page struct {
	schema *rel.Schema
	cap    int
	n      int
	fixed  [][]byte   // per fixed column: cap * 8-byte minipage
	vars   [][][]byte // per var column: slot -> bytes
	fixIdx []int      // column -> index into fixed, or -1
	varIdx []int      // column -> index into vars, or -1
}

// NewPage allocates an empty page for the schema with capacity cap rows.
func NewPage(schema *rel.Schema, cap int) *Page {
	if cap <= 0 {
		panic("pax: non-positive page capacity")
	}
	p := &Page{
		schema: schema,
		cap:    cap,
		fixIdx: make([]int, schema.NumCols()),
		varIdx: make([]int, schema.NumCols()),
	}
	for i, c := range schema.Cols {
		if w := c.Type.FixedWidth(); w > 0 {
			p.fixIdx[i] = len(p.fixed)
			p.varIdx[i] = -1
			p.fixed = append(p.fixed, make([]byte, cap*w))
		} else {
			p.fixIdx[i] = -1
			p.varIdx[i] = len(p.vars)
			p.vars = append(p.vars, make([][]byte, cap))
		}
	}
	return p
}

// Schema returns the page's schema.
func (p *Page) Schema() *rel.Schema { return p.schema }

// Len returns the number of rows stored.
func (p *Page) Len() int { return p.n }

// Cap returns the page's row capacity.
func (p *Page) Cap() int { return p.cap }

// Full reports whether the page has no free slots.
func (p *Page) Full() bool { return p.n == p.cap }

// Insert places row at slot `at`, shifting later slots right. at must be in
// [0, Len()] and the page must not be full.
func (p *Page) Insert(at int, row rel.Row) error {
	if p.Full() {
		return fmt.Errorf("pax: page full (%d rows)", p.cap)
	}
	if at < 0 || at > p.n {
		return fmt.Errorf("pax: insert position %d out of range [0,%d]", at, p.n)
	}
	if err := row.Conforms(p.schema); err != nil {
		return err
	}
	for ci := range p.schema.Cols {
		if fi := p.fixIdx[ci]; fi >= 0 {
			mp := p.fixed[fi]
			copy(mp[(at+1)*8:(p.n+1)*8], mp[at*8:p.n*8])
		} else {
			vc := p.vars[p.varIdx[ci]]
			copy(vc[at+1:p.n+1], vc[at:p.n])
		}
	}
	p.n++
	p.set(at, row)
	return nil
}

// Append places row in the next free slot and returns its slot number.
func (p *Page) Append(row rel.Row) (int, error) {
	if err := p.Insert(p.n, row); err != nil {
		return -1, err
	}
	return p.n - 1, nil
}

// Delete removes the row at slot `at`, shifting later slots left.
func (p *Page) Delete(at int) error {
	if at < 0 || at >= p.n {
		return fmt.Errorf("pax: delete position %d out of range [0,%d)", at, p.n)
	}
	for ci := range p.schema.Cols {
		if fi := p.fixIdx[ci]; fi >= 0 {
			mp := p.fixed[fi]
			copy(mp[at*8:(p.n-1)*8], mp[(at+1)*8:p.n*8])
		} else {
			vc := p.vars[p.varIdx[ci]]
			copy(vc[at:p.n-1], vc[at+1:p.n])
			vc[p.n-1] = nil
		}
	}
	p.n--
	return nil
}

func (p *Page) set(at int, row rel.Row) {
	for ci, v := range row {
		p.SetCol(at, ci, v)
	}
}

// SetRow overwrites every column of slot `at` in place.
func (p *Page) SetRow(at int, row rel.Row) error {
	if at < 0 || at >= p.n {
		return fmt.Errorf("pax: slot %d out of range [0,%d)", at, p.n)
	}
	if err := row.Conforms(p.schema); err != nil {
		return err
	}
	p.set(at, row)
	return nil
}

// SetCol updates one column of slot `at` in place. The caller must have
// captured the before-image for UNDO if required.
func (p *Page) SetCol(at, col int, v rel.Value) {
	if fi := p.fixIdx[col]; fi >= 0 {
		mp := p.fixed[fi][at*8 : at*8+8]
		switch v.Kind {
		case rel.TInt64:
			binary.LittleEndian.PutUint64(mp, uint64(v.I))
		case rel.TFloat64:
			binary.LittleEndian.PutUint64(mp, math.Float64bits(v.F))
		}
		return
	}
	b := make([]byte, len(v.S))
	copy(b, v.S)
	p.vars[p.varIdx[col]][at] = b
}

// Col reads one column of slot `at`. String values are zero-copy views of
// the page's backing bytes (see viewStr for why that is safe).
func (p *Page) Col(at, col int) rel.Value {
	t := p.schema.Cols[col].Type
	if fi := p.fixIdx[col]; fi >= 0 {
		u := binary.LittleEndian.Uint64(p.fixed[fi][at*8 : at*8+8])
		if t == rel.TInt64 {
			return rel.Int(int64(u))
		}
		return rel.Float(math.Float64frombits(u))
	}
	return rel.Str(viewStr(p.vars[p.varIdx[col]][at]))
}

// Row materializes the full tuple at slot `at`.
func (p *Page) Row(at int) rel.Row {
	out := make(rel.Row, p.schema.NumCols())
	for ci := range out {
		out[ci] = p.Col(at, ci)
	}
	return out
}

// ReadRowInto materializes slot `at` into dst, reusing its storage. dst must
// have schema-many entries.
func (p *Page) ReadRowInto(at int, dst rel.Row) {
	for ci := range dst {
		dst[ci] = p.Col(at, ci)
	}
}

// ScanCol invokes fn for every row's value of one column, in slot order.
// This is the PAX fast path: for fixed columns it walks a single minipage.
func (p *Page) ScanCol(col int, fn func(slot int, v rel.Value)) {
	t := p.schema.Cols[col].Type
	if fi := p.fixIdx[col]; fi >= 0 {
		mp := p.fixed[fi]
		for i := 0; i < p.n; i++ {
			u := binary.LittleEndian.Uint64(mp[i*8 : i*8+8])
			if t == rel.TInt64 {
				fn(i, rel.Int(int64(u)))
			} else {
				fn(i, rel.Float(math.Float64frombits(u)))
			}
		}
		return
	}
	vc := p.vars[p.varIdx[col]]
	for i := 0; i < p.n; i++ {
		fn(i, rel.Str(viewStr(vc[i])))
	}
}

// SplitInto moves the upper half of the page's rows into dst (which must be
// empty and share the schema) and returns the number of rows moved.
func (p *Page) SplitInto(dst *Page) int {
	half := p.n / 2
	moved := p.n - half
	for i := half; i < p.n; i++ {
		if _, err := dst.Append(p.Row(i)); err != nil {
			panic(fmt.Sprintf("pax: split overflow: %v", err))
		}
	}
	// Truncate: clear var refs so the backing arrays can be collected.
	for _, vc := range p.vars {
		for i := half; i < p.n; i++ {
			vc[i] = nil
		}
	}
	p.n = half
	return moved
}

// --- Serialization ---------------------------------------------------------

const pageMagic uint32 = 0x50415831 // "PAX1"

// SerializedSize returns the exact byte length Serialize will produce.
func (p *Page) SerializedSize() int {
	sz := 4 + 4 // magic + n
	for range p.fixed {
		sz += p.n * 8
	}
	for _, vc := range p.vars {
		for i := 0; i < p.n; i++ {
			sz += 4 + len(vc[i])
		}
	}
	return sz
}

// Serialize appends the page image to dst: magic, row count, fixed
// minipages truncated to n rows, then length-prefixed var values column by
// column (the minipage layout on disk as well as in memory).
func (p *Page) Serialize(dst []byte) []byte {
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], pageMagic)
	dst = append(dst, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(p.n))
	dst = append(dst, b4[:]...)
	for _, mp := range p.fixed {
		dst = append(dst, mp[:p.n*8]...)
	}
	for _, vc := range p.vars {
		for i := 0; i < p.n; i++ {
			binary.LittleEndian.PutUint32(b4[:], uint32(len(vc[i])))
			dst = append(dst, b4[:]...)
			dst = append(dst, vc[i]...)
		}
	}
	return dst
}

// Deserialize reconstructs a page from a Serialize image. cap must be at
// least the stored row count.
func Deserialize(schema *rel.Schema, cap int, img []byte) (*Page, error) {
	if len(img) < 8 {
		return nil, fmt.Errorf("pax: truncated page image")
	}
	if binary.LittleEndian.Uint32(img[:4]) != pageMagic {
		return nil, fmt.Errorf("pax: bad page magic %#x", binary.LittleEndian.Uint32(img[:4]))
	}
	n := int(binary.LittleEndian.Uint32(img[4:8]))
	if n > cap {
		return nil, fmt.Errorf("pax: stored %d rows exceeds capacity %d", n, cap)
	}
	p := NewPage(schema, cap)
	off := 8
	for _, mp := range p.fixed {
		if off+n*8 > len(img) {
			return nil, fmt.Errorf("pax: truncated fixed minipage")
		}
		copy(mp, img[off:off+n*8])
		off += n * 8
	}
	for _, vc := range p.vars {
		for i := 0; i < n; i++ {
			if off+4 > len(img) {
				return nil, fmt.Errorf("pax: truncated var length")
			}
			l := int(binary.LittleEndian.Uint32(img[off : off+4]))
			off += 4
			if off+l > len(img) {
				return nil, fmt.Errorf("pax: truncated var value")
			}
			vc[i] = append([]byte(nil), img[off:off+l]...)
			off += l
		}
	}
	p.n = n
	return p, nil
}
