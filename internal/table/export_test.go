package table

import (
	"fmt"
	"testing"

	"phoebedb/internal/buffer"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

func TestAppendAt(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	appendN(t, tb, 3)
	// Gap: rid 4 and 5 were burned by aborted transactions.
	if err := tb.AppendAt(6, mkRow(6)); err != nil {
		t.Fatal(err)
	}
	if tb.NextRowID() != 6 {
		t.Fatalf("NextRowID = %d", tb.NextRowID())
	}
	if err := tb.WithRow(6, false, nil, func(h Handle) error {
		if h.Col(0).I != 6 {
			return fmt.Errorf("wrong row: %v", h.Row())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Burned rids are absent.
	if err := tb.WithRow(4, false, nil, func(Handle) error { return nil }); err != ErrNotFound {
		t.Fatalf("gap rid err = %v", err)
	}
	// Regression: AppendAt must reject non-monotonic rids.
	if err := tb.AppendAt(6, mkRow(6)); err == nil {
		t.Fatal("duplicate rid accepted")
	}
	if err := tb.AppendAt(2, mkRow(2)); err == nil {
		t.Fatal("backwards rid accepted")
	}
	// Normal appends continue after the explicit rid.
	rid, err := tb.Append(mkRow(7), 0, nil, nil)
	if err != nil || rid != 7 {
		t.Fatalf("append after AppendAt = (%d, %v)", rid, err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	pool := buffer.New(1, 1<<20)
	src := newTestTable(t, 4, pool)
	rids := appendN(t, src, 11)
	// Tombstone one row; its flag must survive the round trip.
	src.WithRow(rids[2], true, nil, func(h Handle) error { h.SetDeleted(true); return nil })

	images, nextRID, maxFrozen, err := src.ExportImages(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != src.NumPages() {
		t.Fatalf("exported %d images for %d pages", len(images), src.NumPages())
	}
	if nextRID != 11 || maxFrozen != 0 {
		t.Fatalf("metadata = (%d, %d)", nextRID, maxFrozen)
	}

	dst := newTestTable(t, 4, nil)
	if err := dst.ImportImages(images, nextRID, maxFrozen); err != nil {
		t.Fatal(err)
	}
	if dst.NextRowID() != 11 {
		t.Fatalf("imported NextRowID = %d", dst.NextRowID())
	}
	for i, rid := range rids {
		err := dst.WithRow(rid, false, nil, func(h Handle) error {
			if !h.Row().Equal(mkRow(i)) {
				return fmt.Errorf("row %d mismatch", i)
			}
			if h.Deleted() != (i == 2) {
				return fmt.Errorf("row %d tombstone flag wrong", i)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Appends continue seamlessly.
	rid, err := dst.Append(mkRow(99), 0, nil, nil)
	if err != nil || rid != 12 {
		t.Fatalf("post-import append = (%d, %v)", rid, err)
	}
}

func TestExportImportColdPages(t *testing.T) {
	pool := buffer.New(1, 1)
	src := newTestTable(t, 4, pool)
	rids := appendN(t, src, 12)
	// Evict everything evictable, then export: cold pages must be loaded.
	for i := 0; i < 6; i++ {
		for _, pg := range src.dir {
			pg.hotness.Store(0)
		}
		pool.Maintain(0)
	}
	images, nextRID, maxFrozen, err := src.ExportImages(nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := newTestTable(t, 4, nil)
	if err := dst.ImportImages(images, nextRID, maxFrozen); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		if err := dst.WithRow(rid, false, nil, func(h Handle) error {
			if h.Col(0).I != int64(i) {
				return fmt.Errorf("row %d corrupted", i)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestImportRequiresEmptyTable(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	appendN(t, tb, 1)
	if err := tb.ImportImages(nil, 5, 0); err == nil {
		t.Fatal("import into non-empty table accepted")
	}
}

func TestImportEmptyImagesRestoresTail(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	if err := tb.ImportImages(nil, 7, 7); err != nil {
		t.Fatal(err)
	}
	// All rows were frozen at checkpoint: appends still work.
	rid, err := tb.Append(mkRow(8), 0, nil, nil)
	if err != nil || rid != 8 {
		t.Fatalf("append = (%d, %v)", rid, err)
	}
	if tb.MaxFrozenRowID() != 7 {
		t.Fatalf("frontier = %d", tb.MaxFrozenRowID())
	}
}

func TestInsertAtOutOfOrder(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	// Inserts arrive in GSN order, not rid order: 1, 2, 6, then 4.
	for _, rid := range []int{1, 2, 6, 4} {
		if err := tb.InsertAt(rel.RowID(rid), mkRow(rid)); err != nil {
			t.Fatalf("InsertAt(%d): %v", rid, err)
		}
	}
	var got []rel.RowID
	tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool {
		got = append(got, rid)
		if row[0].I != int64(rid) {
			t.Fatalf("rid %d has wrong row %v", rid, row)
		}
		return true
	})
	want := []rel.RowID{1, 2, 4, 6}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	if err := tb.InsertAt(4, mkRow(4)); err == nil {
		t.Fatal("duplicate InsertAt accepted")
	}
	// Appends continue past the highest rid.
	rid, err := tb.Append(mkRow(7), 0, nil, nil)
	if err != nil || rid != 7 {
		t.Fatalf("append = (%d,%v)", rid, err)
	}
}

func TestInsertAtSplitsFullPage(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	// Fill the first page's range [1,9) minus one: 1,2,4,5 fills cap 4...
	// use rids 1,2,4,5 then insert 3 -> page full -> split.
	for _, rid := range []int{1, 2, 4, 5} {
		if err := tb.InsertAt(rel.RowID(rid), mkRow(rid)); err != nil {
			t.Fatal(err)
		}
	}
	before := tb.NumPages()
	if err := tb.InsertAt(3, mkRow(3)); err != nil {
		t.Fatalf("mid-insert into full page: %v", err)
	}
	if tb.NumPages() <= before {
		t.Fatalf("no split happened (%d pages)", tb.NumPages())
	}
	var got []int64
	tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool {
		got = append(got, row[0].I)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]int64{1, 2, 3, 4, 5}) {
		t.Fatalf("scan after split = %v", got)
	}
	// Every row readable through point access too.
	for _, rid := range []rel.RowID{1, 2, 3, 4, 5} {
		if err := tb.WithRow(rid, false, nil, func(h Handle) error { return nil }); err != nil {
			t.Fatalf("row %d unreachable after split: %v", rid, err)
		}
	}
}

func TestInsertAtManyRandomOrder(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rng := []int{13, 2, 40, 7, 1, 39, 22, 15, 8, 30, 3, 25, 18, 5, 11, 37, 20, 28, 33, 9}
	for _, rid := range rng {
		if err := tb.InsertAt(rel.RowID(rid), mkRow(rid)); err != nil {
			t.Fatalf("InsertAt(%d): %v", rid, err)
		}
	}
	count := 0
	var prev rel.RowID
	tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool {
		if rid <= prev {
			t.Fatalf("scan out of order at %d", rid)
		}
		prev = rid
		count++
		return true
	})
	if count != len(rng) {
		t.Fatalf("count = %d, want %d", count, len(rng))
	}
}

func TestEvictionFailureKeepsPageResident(t *testing.T) {
	// Failure injection: if the data page file rejects the write, the
	// page must be rescued (stay resident and readable), not lost.
	pf, err := storage.OpenPageFile(t.TempDir()+"/p.pages", 16*1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb := New(1, testSchema(), 4, pf, nil)
	var rids []rel.RowID
	for i := 0; i < 8; i++ {
		rid, _ := tb.Append(mkRow(i), 0, nil, nil)
		rids = append(rids, rid)
	}
	pf.Close() // device gone
	pg := tb.dir[0]
	pg.hotness.Store(0)
	if !pg.StartCooling() {
		t.Fatal("cooling failed")
	}
	if _, ok := pg.EvictIfCooling(); ok {
		t.Fatal("eviction succeeded on closed file")
	}
	if !pg.Resident() {
		t.Fatal("page lost after failed eviction")
	}
	if err := tb.WithRow(rids[0], false, nil, func(h Handle) error { return nil }); err != nil {
		t.Fatalf("row unreadable after failed eviction: %v", err)
	}
}
