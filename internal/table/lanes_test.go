package table

import (
	"fmt"
	"sync"
	"testing"

	"phoebedb/internal/buffer"
	"phoebedb/internal/rel"
)

// TestConcurrentLaneAppends drives all eight insert lanes from eight
// goroutines at once — the sharded-append hot path under the race
// detector — and then checks the invariants the lanes must preserve:
// every row present exactly once, all RowIDs unique, and the page
// directory strictly ordered so scans and point lookups agree.
func TestConcurrentLaneAppends(t *testing.T) {
	const (
		workers = 8
		perW    = 400
	)
	pool := buffer.New(workers, 1<<30)
	tb := newTestTable(t, 16, pool)
	tb.SetInsertLanes(workers)

	rids := make([][]rel.RowID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rids[w] = make([]rel.RowID, 0, perW)
			for i := 0; i < perW; i++ {
				// Encode (worker, i) into the payload so read-back can
				// verify the row landed untouched.
				rid, err := tb.Append(mkRow(w*perW+i), w, nil, nil)
				if err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
				rids[w] = append(rids[w], rid)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// RowIDs are unique across all lanes and the payload round-trips.
	seen := make(map[rel.RowID]struct{}, workers*perW)
	for w := 0; w < workers; w++ {
		for i, rid := range rids[w] {
			if _, dup := seen[rid]; dup {
				t.Fatalf("row_id %d assigned twice", rid)
			}
			seen[rid] = struct{}{}
			want := mkRow(w*perW + i)
			if err := tb.WithRow(rid, false, nil, func(h Handle) error {
				if !h.Row().Equal(want) {
					return fmt.Errorf("rid %d holds %v, want %v", rid, h.Row(), want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A scan sees every row exactly once, in strictly ascending rid order
	// (the sorted page directory invariant).
	count := 0
	var prev rel.RowID
	if err := tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool {
		if count > 0 && rid <= prev {
			t.Fatalf("scan order violated: %d after %d", rid, prev)
		}
		if _, ok := seen[rid]; !ok {
			t.Fatalf("scan surfaced unknown rid %d", rid)
		}
		prev = rid
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != workers*perW {
		t.Fatalf("scan found %d rows, want %d", count, workers*perW)
	}

	// The rid counter covers everything handed out: a post-stress append
	// must not collide with any existing row.
	rid, err := tb.Append(mkRow(workers*perW), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := seen[rid]; dup {
		t.Fatalf("post-stress append reused rid %d", rid)
	}
}

// TestConcurrentLaneAppendsWithReaders interleaves lane appends with
// concurrent full-table scans: scans must never observe an out-of-order
// directory or a torn row, even while every lane is growing.
func TestConcurrentLaneAppendsWithReaders(t *testing.T) {
	const (
		writers = 4
		perW    = 300
	)
	pool := buffer.New(writers, 1<<30)
	tb := newTestTable(t, 8, pool)
	tb.SetInsertLanes(writers)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := tb.Append(mkRow(w*perW+i), w, nil, nil); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev rel.RowID
				n := 0
				tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool {
					if n > 0 && rid <= prev {
						t.Errorf("reader saw disorder: %d after %d", rid, prev)
						return false
					}
					prev = rid
					n++
					return true
				})
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if t.Failed() {
		return
	}
	n := 0
	tb.Scan(nil, func(rel.RowID, rel.Row, *Handle) bool { n++; return true })
	if n != writers*perW {
		t.Fatalf("final count %d, want %d", n, writers*perW)
	}
}
