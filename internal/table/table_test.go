package table

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"phoebedb/internal/buffer"
	"phoebedb/internal/clock"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
	"phoebedb/internal/undo"
)

func testSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TInt64},
		rel.Column{Name: "s", Type: rel.TString},
	)
}

func mkRow(i int) rel.Row { return rel.Row{rel.Int(int64(i)), rel.Str(fmt.Sprintf("row-%d", i))} }

func newTestTable(t *testing.T, pageCap int, pool *buffer.Pool) *Table {
	t.Helper()
	pf, err := storage.OpenPageFile(filepath.Join(t.TempDir(), "data.pages"), 16*1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return New(1, testSchema(), pageCap, pf, pool)
}

func appendN(t *testing.T, tb *Table, n int) []rel.RowID {
	t.Helper()
	rids := make([]rel.RowID, n)
	for i := 0; i < n; i++ {
		rid, err := tb.Append(mkRow(i), 0, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	return rids
}

func TestAppendAssignsMonotonicRowIDs(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rids := appendN(t, tb, 10)
	for i, rid := range rids {
		if i > 0 && rid <= rids[i-1] {
			t.Fatalf("row_ids not monotonic: %v", rids)
		}
	}
	if tb.NumPages() != 3 { // 4+4+2
		t.Fatalf("NumPages = %d", tb.NumPages())
	}
	if tb.NextRowID() != 10 {
		t.Fatalf("NextRowID = %d", tb.NextRowID())
	}
}

func TestWithRowReadsBack(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rids := appendN(t, tb, 10)
	for i, rid := range rids {
		err := tb.WithRow(rid, false, nil, func(h Handle) error {
			if !h.Row().Equal(mkRow(i)) {
				t.Fatalf("row %d mismatch", i)
			}
			if h.Deleted() {
				t.Fatal("fresh row tombstoned")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.WithRow(9999, false, nil, func(Handle) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing row err = %v", err)
	}
}

func TestWithRowExclusiveUpdate(t *testing.T) {
	tb := newTestTable(t, 8, nil)
	rids := appendN(t, tb, 3)
	err := tb.WithRow(rids[1], true, nil, func(h Handle) error {
		h.SetCol(1, rel.Str("updated"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.WithRow(rids[1], false, nil, func(h Handle) error {
		if h.Col(1).S != "updated" {
			t.Fatalf("update lost: %v", h.Col(1))
		}
		return nil
	})
}

func TestAppendCallbackErrorRollsBack(t *testing.T) {
	tb := newTestTable(t, 8, nil)
	appendN(t, tb, 2)
	boom := errors.New("boom")
	_, err := tb.Append(mkRow(99), 0, nil, func(h Handle) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	count := 0
	tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool { count++; return true })
	if count != 2 {
		t.Fatalf("scan count = %d after rolled-back append", count)
	}
}

func TestRemoveRowAndScanSkipsTombstones(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rids := appendN(t, tb, 6)
	// Tombstone one row, physically remove another.
	tb.WithRow(rids[1], true, nil, func(h Handle) error { h.SetDeleted(true); return nil })
	if err := tb.RemoveRow(rids[3], nil); err != nil {
		t.Fatal(err)
	}
	var seen []rel.RowID
	tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool {
		seen = append(seen, rid)
		return true
	})
	want := []rel.RowID{rids[0], rids[2], rids[4], rids[5]}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", seen, want)
	}
	if err := tb.WithRow(rids[3], false, nil, func(Handle) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed row err = %v", err)
	}
}

func TestEvictAndReload(t *testing.T) {
	pool := buffer.New(1, 1) // 1-byte budget: everything evicts
	tb := newTestTable(t, 4, pool)
	rids := appendN(t, tb, 12)
	// Cool + evict everything evictable (tail stays).
	for i := 0; i < 4; i++ {
		for _, pg := range tb.dir {
			pg.hotness.Store(0)
		}
		pool.Maintain(0)
	}
	cold := 0
	for _, pg := range tb.dir {
		if !pg.Resident() {
			cold++
		}
	}
	if cold == 0 {
		t.Fatal("no pages evicted under 1-byte budget")
	}
	// Every row must still read back (cold pages reload).
	for i, rid := range rids {
		err := tb.WithRow(rid, false, nil, func(h Handle) error {
			if !h.Row().Equal(mkRow(i)) {
				return fmt.Errorf("row %d mismatch after reload", i)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTwinPinsPage(t *testing.T) {
	pool := buffer.New(1, 1)
	tb := newTestTable(t, 4, pool)
	rids := appendN(t, tb, 8)
	// Give the first page a twin table.
	tb.WithRow(rids[0], true, nil, func(h Handle) error {
		tt := h.TwinTable(true)
		m := undo.NewTxnMeta(clock.MakeXID(1))
		tt.Push(h.RID, undo.NewArena(0).New(m, 1, h.RID, undo.OpUpdate, nil, nil))
		return nil
	})
	for i := 0; i < 4; i++ {
		for _, pg := range tb.dir {
			pg.hotness.Store(0)
		}
		pool.Maintain(0)
	}
	if !tb.dir[0].Resident() {
		t.Fatal("page with twin table was evicted")
	}
}

func TestDropCollectibleTwins(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rids := appendN(t, tb, 2)
	arena := undo.NewArena(0)
	m := undo.NewTxnMeta(clock.MakeXID(1))
	var rec *undo.Record
	tb.WithRow(rids[0], true, nil, func(h Handle) error {
		tt := h.TwinTable(true)
		rec = arena.New(m, 1, h.RID, undo.OpUpdate, nil, nil)
		tt.Push(h.RID, rec)
		return nil
	})
	if n := tb.DropCollectibleTwins(^uint64(0)); n != 0 {
		t.Fatal("dropped twin with live chain")
	}
	m.Commit(2)
	rec.SetETS(2)
	arena.Reclaim(100, nil)
	if n := tb.DropCollectibleTwins(^uint64(0)); n != 1 {
		t.Fatalf("dropped %d twins, want 1", n)
	}
	if tb.dir[0].Twin != nil {
		t.Fatal("twin still attached")
	}
}

func TestDetachFrozenPrefix(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rids := appendN(t, tb, 10) // pages: [1-4][5-8][9-10(tail)]
	for _, pg := range tb.dir {
		pg.hotness.Store(0)
	}
	cands, err := tb.DetachFrozenPrefix(10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("froze %d pages, want 2 (tail protected)", len(cands))
	}
	if tb.MaxFrozenRowID() != rids[7] {
		t.Fatalf("frontier = %d, want %d", tb.MaxFrozenRowID(), rids[7])
	}
	// Frozen rows report ErrFrozen; unfrozen remain readable.
	if err := tb.WithRow(rids[0], false, nil, func(Handle) error { return nil }); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen row err = %v", err)
	}
	if err := tb.WithRow(rids[9], false, nil, func(Handle) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Candidates carry the data in row_id order.
	if cands[0].FirstRID != rids[0] || cands[0].Payload.IDs[0] != rids[0] {
		t.Fatal("candidate payload wrong")
	}
}

func TestDetachFrozenPrefixStopsAtHotOrTombstoned(t *testing.T) {
	tb := newTestTable(t, 4, nil)
	rids := appendN(t, tb, 12)
	// Hot first page blocks freezing entirely.
	if cands, _ := tb.DetachFrozenPrefix(10, 0, nil); len(cands) != 0 {
		t.Fatalf("froze %d pages despite hot prefix", len(cands))
	}
	for _, pg := range tb.dir {
		pg.hotness.Store(0)
	}
	// Tombstone in the second page: only the first page freezes.
	tb.WithRow(rids[5], true, nil, func(h Handle) error { h.SetDeleted(true); return nil })
	tb.dir[1].hotness.Store(0)
	cands, _ := tb.DetachFrozenPrefix(10, 0, nil)
	if len(cands) != 1 {
		t.Fatalf("froze %d pages, want 1 (tombstone blocks)", len(cands))
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	tb := newTestTable(t, 16, nil)
	const writers = 4
	const per = 500
	var mu sync.Mutex
	all := map[rel.RowID]bool{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rid, err := tb.Append(mkRow(i), w, nil, nil)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if all[rid] {
					t.Errorf("duplicate rid %d", rid)
				}
				all[rid] = true
				mu.Unlock()
				// Read own write back.
				if err := tb.WithRow(rid, false, nil, func(h Handle) error {
					if h.Col(0).I != int64(i) {
						return fmt.Errorf("read own write failed")
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	tb.Scan(nil, func(rid rel.RowID, row rel.Row, h *Handle) bool { count++; return true })
	if count != writers*per {
		t.Fatalf("scan count = %d, want %d", count, writers*per)
	}
}

func TestPayloadSerializeRoundTrip(t *testing.T) {
	pl := &Payload{Rows: nil}
	_ = pl
	tb := newTestTable(t, 8, nil)
	appendN(t, tb, 5)
	tb.WithRow(2, true, nil, func(h Handle) error { h.SetDeleted(true); return nil })
	src := tb.dir[0].swip.Ptr()
	img := src.serialize(nil)
	got, err := deserializePayload(testSchema(), 8, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 5 || got.IDs[2] != 3 || !got.Deleted[1] == got.Deleted[1] {
		t.Fatalf("ids = %v", got.IDs)
	}
	for i := range got.IDs {
		if !got.Rows.Row(i).Equal(src.Rows.Row(i)) {
			t.Fatalf("row %d mismatch", i)
		}
		if got.Deleted[i] != src.Deleted[i] {
			t.Fatalf("deleted flag %d mismatch", i)
		}
	}
	if _, err := deserializePayload(testSchema(), 8, img[:3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func BenchmarkAppend(b *testing.B) {
	pf, _ := storage.OpenPageFile(filepath.Join(b.TempDir(), "d.pages"), 16*1024, nil)
	defer pf.Close()
	tb := New(1, testSchema(), 128, pf, nil)
	row := rel.Row{rel.Int(1), rel.Str("bench-row")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Append(row, 0, nil, nil)
	}
}

func BenchmarkPointRead(b *testing.B) {
	pf, _ := storage.OpenPageFile(filepath.Join(b.TempDir(), "d.pages"), 16*1024, nil)
	defer pf.Close()
	tb := New(1, testSchema(), 128, pf, nil)
	for i := 0; i < 10000; i++ {
		tb.Append(rel.Row{rel.Int(int64(i)), rel.Str("x")}, 0, nil, nil)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tb.WithRow(rel.RowID(i%10000+1), false, nil, func(h Handle) error { return nil })
			i++
		}
	})
}
