// Package table implements PhoebeDB's base-table storage (§5): the table
// B-Tree keyed by the internally assigned, monotonically increasing row_id.
//
// Because row_ids are assigned at insert time in increasing order, the
// tree's key space only ever grows at the right edge; the structure is a
// routing directory (the inner level) over PAX leaf pages. Each leaf page
// carries its own latch, swizzled payload (hot/cooling/cold), twin table
// pointer (§6.2), RFA page stamp (§8), and decayed access count (§5.2's
// data temperature). There is no global page table: a page is reached only
// through the directory and its swip.
//
// Pages holding version chains or tuple locks (a live twin table) are
// pinned in memory — their UNDO bookkeeping must stay addressable — and
// become evictable again once GC drops the twin table.
package table

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phoebedb/internal/buffer"
	"phoebedb/internal/latch"
	"phoebedb/internal/pax"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
	"phoebedb/internal/swizzle"
	"phoebedb/internal/undo"
	"phoebedb/internal/wal"
	"phoebedb/internal/waitevent"
)

// Ctx carries a caller's scheduling and observability identity through the
// table's latch/residency paths: Yield is invoked at latch-spin and
// page-load points (the paper's high-urgency yield), and Waits/Slot let a
// buffer-miss page read be charged to the waiting task slot as a
// buffer_io wait event. A nil *Ctx is valid and means "no yield, no
// stamping" — maintenance and recovery paths pass nil.
type Ctx struct {
	Yield func()
	Waits *waitevent.Slots
	Slot  int
}

// yield invokes the yield hook if any.
func (c *Ctx) yield() {
	if c != nil && c.Yield != nil {
		c.Yield()
	}
}

// yieldFunc returns the raw yield hook (possibly nil) for latch waits.
func (c *Ctx) yieldFunc() func() {
	if c == nil {
		return nil
	}
	return c.Yield
}

// ErrNotFound reports a row_id absent from the table's hot/cold layers.
var ErrNotFound = errors.New("table: row not found")

// ErrFrozen reports a row_id below the frozen frontier: the caller must
// consult the frozen store (§5.2).
var ErrFrozen = errors.New("table: row is frozen")

// Payload is a page's resident content: the PAX rows, their row_ids
// (sorted ascending, parallel to PAX slots), and tombstone flags for
// deleted-but-not-yet-collected tuples.
type Payload struct {
	Rows    *pax.Page
	IDs     []rel.RowID
	Deleted []bool
}

func (pl *Payload) find(rid rel.RowID) int {
	i := sort.Search(len(pl.IDs), func(i int) bool { return pl.IDs[i] >= rid })
	if i < len(pl.IDs) && pl.IDs[i] == rid {
		return i
	}
	return -1
}

func (pl *Payload) serialize(dst []byte) []byte {
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(pl.IDs)))
	dst = append(dst, b8[:4]...)
	for _, id := range pl.IDs {
		binary.LittleEndian.PutUint64(b8[:], uint64(id))
		dst = append(dst, b8[:]...)
	}
	for _, d := range pl.Deleted {
		if d {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return pl.Rows.Serialize(dst)
}

func deserializePayload(schema *rel.Schema, cap int, img []byte) (*Payload, error) {
	if len(img) < 4 {
		return nil, fmt.Errorf("table: truncated payload")
	}
	n := int(binary.LittleEndian.Uint32(img[:4]))
	off := 4
	if len(img) < off+8*n+n {
		return nil, fmt.Errorf("table: truncated payload ids")
	}
	pl := &Payload{IDs: make([]rel.RowID, n), Deleted: make([]bool, n)}
	for i := 0; i < n; i++ {
		pl.IDs[i] = rel.RowID(binary.LittleEndian.Uint64(img[off : off+8]))
		off += 8
	}
	for i := 0; i < n; i++ {
		pl.Deleted[i] = img[off] != 0
		off++
	}
	rows, err := pax.Deserialize(schema, cap, img[off:])
	if err != nil {
		return nil, err
	}
	if rows.Len() != n {
		return nil, fmt.Errorf("table: payload row count %d != id count %d", rows.Len(), n)
	}
	pl.Rows = rows
	return pl, nil
}

// Page is one leaf of the table tree.
type Page struct {
	lt         latch.Latch
	firstRowID rel.RowID
	swip       swizzle.Swip[Payload]
	hotness    atomic.Uint32
	// open marks an active insert frontier (a lane's current page): such a
	// page never cools and never freezes. Cleared when the lane moves on.
	open atomic.Bool

	// Guarded by lt (exclusive for writes):
	Twin  *undo.TwinTable
	Stamp wal.PageStamp

	table *Table
	part  int // buffer partition owning this page
}

// FirstRowID returns the smallest row_id ever stored in the page.
func (pg *Page) FirstRowID() rel.RowID { return pg.firstRowID }

// touch records an access for temperature tracking and rescues a cooling
// page.
func (pg *Page) touch() {
	if pg.hotness.Load() < 1<<20 {
		pg.hotness.Add(1)
	}
	if pg.swip.State() == swizzle.Cooling {
		pg.swip.Rescue()
	}
	if pg.table.pool != nil {
		pg.table.pool.CountAccess(pg.part)
	}
}

// Hotness implements buffer.Frame.
func (pg *Page) Hotness() uint32 { return pg.hotness.Load() }

// DecayHotness implements buffer.Frame (halving decay).
func (pg *Page) DecayHotness() {
	for {
		h := pg.hotness.Load()
		if pg.hotness.CompareAndSwap(h, h/2) {
			return
		}
	}
}

// Resident implements buffer.Frame.
func (pg *Page) Resident() bool { return pg.swip.IsResident() }

// StartCooling implements buffer.Frame.
func (pg *Page) StartCooling() bool {
	if pg.open.Load() {
		return false // an insert frontier never cools
	}
	return pg.swip.StartCooling()
}

// EvictIfCooling implements buffer.Frame: serialize to the data page file
// and unswizzle, unless the page was rescued, is pinned by a twin table,
// cannot be latched without waiting, or no longer fits its disk slot.
func (pg *Page) EvictIfCooling() (int, bool) {
	if !pg.lt.TryLockExclusive() {
		pg.swip.Rescue()
		return 0, false
	}
	defer pg.lt.UnlockExclusive()
	if pg.swip.State() != swizzle.Cooling {
		return 0, false
	}
	if pg.Twin != nil {
		pg.swip.Rescue() // pinned: version chains / locks reference it
		return 0, false
	}
	pl := pg.swip.Ptr()
	img := pl.serialize(nil)
	if len(img) > pg.table.pf.PageSize() {
		pg.swip.Rescue()
		return 0, false
	}
	id := pg.swip.PageID()
	if id == storage.InvalidPageID {
		id = pg.table.pf.Allocate()
		pg.swip.SetPageID(id)
	}
	if err := pg.table.pf.WritePage(id, img); err != nil {
		pg.swip.Rescue()
		return 0, false
	}
	if !pg.swip.Unswizzle() {
		return 0, false
	}
	return pg.table.pf.PageSize(), true
}

// insertLane is one worker's private insert frontier: an open page plus the
// row_id chunk it is filling. Lanes pre-reserve PageCap row_ids at a time
// from the shared counter, so concurrent appends on different lanes touch
// no shared state beyond one fetch-add per page.
type insertLane struct {
	mu   sync.Mutex
	pg   *Page  // open page, nil until the first append (or after a seal)
	next uint64 // next row_id to assign from the chunk
	end  uint64 // last row_id of the chunk (inclusive)
}

// Table is one relation's storage.
type Table struct {
	ID      uint32
	Schema  *rel.Schema
	PageCap int

	pf   *storage.PageFile
	pool *buffer.Pool

	dirMu sync.RWMutex
	dir   []*Page // sorted by firstRowID

	// lanes are the per-worker insert frontiers; Append(row, part, ...)
	// uses lane part%len(lanes). A single lane reproduces the classic
	// serialized tail.
	lanes []insertLane

	// recMu serializes the explicit-row_id paths (AppendAt, InsertAt,
	// ImportImages, SetNextRowID) used by recovery, replication, and
	// checkpoint restore. The hot Append path never takes it.
	recMu sync.Mutex

	nextRowID      atomic.Uint64 // highest row_id reserved by any lane chunk
	maxAssigned    atomic.Uint64 // highest row_id actually given to a row
	maxFrozenRowID atomic.Uint64 // rows <= this are in the frozen store

	// twinPages tracks pages with live twin tables for the GC sweep.
	twinPages sync.Map // *Page -> struct{}
}

// New creates an empty table backed by pf, registering page frames with
// pool partitions chosen by the inserting slot. The table starts with a
// single insert lane; see SetInsertLanes.
func New(id uint32, schema *rel.Schema, pageCap int, pf *storage.PageFile, pool *buffer.Pool) *Table {
	return &Table{ID: id, Schema: schema, PageCap: pageCap, pf: pf, pool: pool,
		lanes: make([]insertLane, 1)}
}

// SetInsertLanes splits the insert frontier into n independent lanes,
// typically one per worker, so concurrent inserts stop serializing on one
// tail page. Call before the first insert (the engine does, at DDL time).
func (t *Table) SetInsertLanes(n int) {
	if n < 1 {
		n = 1
	}
	t.lanes = make([]insertLane, n)
}

// raiseMaxAssigned lifts the assigned-row_id high-water mark to at least r.
func (t *Table) raiseMaxAssigned(r uint64) {
	for {
		cur := t.maxAssigned.Load()
		if r <= cur || t.maxAssigned.CompareAndSwap(cur, r) {
			return
		}
	}
}

// newPage creates a fresh hot page starting at firstRID and inserts it into
// the directory at its sorted position. Chunk starts are allocated from a
// monotone counter but lanes fill at different speeds, so a new page is not
// always the right edge.
func (t *Table) newPage(firstRID rel.RowID, part int, open bool) *Page {
	pg := &Page{firstRowID: firstRID, table: t, part: part}
	pl := &Payload{Rows: pax.NewPage(t.Schema, t.PageCap)}
	pg.swip.Swizzle(pl)
	pg.Stamp.LastWriter = -1
	pg.open.Store(open)
	t.dirMu.Lock()
	pos := sort.Search(len(t.dir), func(i int) bool { return t.dir[i].firstRowID > pg.firstRowID })
	t.dir = append(t.dir, nil)
	copy(t.dir[pos+1:], t.dir[pos:])
	t.dir[pos] = pg
	t.dirMu.Unlock()
	if t.pool != nil {
		t.pool.Register(pg, part)
		t.pool.AddResident(part, int64(t.pf.PageSize()))
	}
	return pg
}

// Handle is the view of one row passed to WithRow/Append callbacks; valid
// only for the callback's duration, under the page latch. It is passed by
// value so the hot read path never heap-allocates one (a pointer handed to
// an opaque callback would escape).
type Handle struct {
	Pg   *Page
	Pl   *Payload
	Slot int
	RID  rel.RowID
}

// Row materializes the current (newest) tuple version.
func (h *Handle) Row() rel.Row { return h.Pl.Rows.Row(h.Slot) }

// ReadRowInto materializes the current version into dst, reusing its
// storage (the allocation-free read path). dst must have schema-many
// entries.
func (h *Handle) ReadRowInto(dst rel.Row) { h.Pl.Rows.ReadRowInto(h.Slot, dst) }

// Col reads one column of the current version.
func (h *Handle) Col(i int) rel.Value { return h.Pl.Rows.Col(h.Slot, i) }

// SetCol updates one column in place (caller has captured the UNDO delta).
func (h *Handle) SetCol(i int, v rel.Value) { h.Pl.Rows.SetCol(h.Slot, i, v) }

// Deleted reports the tombstone flag.
func (h *Handle) Deleted() bool { return h.Pl.Deleted[h.Slot] }

// SetDeleted sets or clears the tombstone flag.
func (h *Handle) SetDeleted(d bool) { h.Pl.Deleted[h.Slot] = d }

// TwinTable returns the page's twin table, creating it when create is set
// (the page becomes pinned until GC drops the table).
func (h *Handle) TwinTable(create bool) *undo.TwinTable {
	if h.Pg.Twin == nil && create {
		h.Pg.Twin = undo.NewTwinTable()
		h.Pg.table.twinPages.Store(h.Pg, struct{}{})
	}
	return h.Pg.Twin
}

// ensureResident loads a cold page's payload. Requires the exclusive latch.
func (pg *Page) ensureResident(io *Ctx) (*Payload, error) {
	if pg.swip.State() != swizzle.Cold {
		return pg.swip.Ptr(), nil
	}
	io.yield() // the paper's async-read high-urgency yield point
	if pg.table.pool != nil {
		pg.table.pool.CountMiss(pg.part)
	}
	var waitStart time.Time
	if io != nil && io.Waits != nil {
		waitStart = io.Waits.Begin(io.Slot, waitevent.EvBufferIO)
	}
	img, err := pg.table.pf.ReadPage(pg.swip.PageID(), nil)
	if io != nil && io.Waits != nil {
		io.Waits.End(io.Slot, waitevent.EvBufferIO, waitStart)
	}
	if err != nil {
		return nil, err
	}
	pl, err := deserializePayload(pg.table.Schema, pg.table.PageCap, img)
	if err != nil {
		return nil, fmt.Errorf("table %d page %d: %w", pg.table.ID, pg.swip.PageID(), err)
	}
	pg.swip.Swizzle(pl)
	if pg.table.pool != nil {
		pg.table.pool.AddResident(pg.part, int64(pg.table.pf.PageSize()))
	}
	return pl, nil
}

// findPage routes a row_id to its page via the directory (the inner level
// of the table tree).
func (t *Table) findPage(rid rel.RowID) *Page {
	t.dirMu.RLock()
	defer t.dirMu.RUnlock()
	i := sort.Search(len(t.dir), func(i int) bool { return t.dir[i].firstRowID > rid })
	if i == 0 {
		return nil
	}
	return t.dir[i-1]
}

// WithRow runs fn under the row's page latch (exclusive when exclusive is
// set, shared otherwise). yield is invoked at latch-spin and page-load
// points. Returns ErrFrozen for rows below the frozen frontier and
// ErrNotFound for absent row_ids.
func (t *Table) WithRow(rid rel.RowID, exclusive bool, io *Ctx, fn func(h Handle) error) error {
	if uint64(rid) <= t.maxFrozenRowID.Load() {
		return ErrFrozen
	}
	pg := t.findPage(rid)
	if pg == nil {
		return ErrNotFound
	}
	for {
		if exclusive || pg.swip.State() == swizzle.Cold {
			pg.lt.LockExclusive(io.yieldFunc())
			pl, err := pg.ensureResident(io)
			if err != nil {
				pg.lt.UnlockExclusive()
				return err
			}
			if !exclusive {
				// Loaded on behalf of a reader: retry under shared.
				pg.lt.UnlockExclusive()
				continue
			}
			pg.touch()
			slot := pl.find(rid)
			if slot < 0 {
				pg.lt.UnlockExclusive()
				return ErrNotFound
			}
			err = fn(Handle{Pg: pg, Pl: pl, Slot: slot, RID: rid})
			pg.lt.UnlockExclusive()
			return err
		}
		pg.lt.LockShared(io.yieldFunc())
		if pg.swip.State() == swizzle.Cold {
			pg.lt.UnlockShared()
			continue
		}
		pg.touch()
		pl := pg.swip.Ptr()
		slot := pl.find(rid)
		if slot < 0 {
			pg.lt.UnlockShared()
			return ErrNotFound
		}
		err := fn(Handle{Pg: pg, Pl: pl, Slot: slot, RID: rid})
		pg.lt.UnlockShared()
		return err
	}
}

// Append inserts row at the insert frontier of lane part%lanes, assigns its
// row_id from the lane's chunk, and runs fn under the page's exclusive
// latch (so the caller can build UNDO/WAL state atomically with the
// insert). Lanes hold disjoint row_id ranges, so concurrent appends on
// different lanes never touch the same page.
func (t *Table) Append(row rel.Row, part int, io *Ctx, fn func(h Handle) error) (rel.RowID, error) {
	if err := row.Conforms(t.Schema); err != nil {
		return 0, err
	}
	l := &t.lanes[part%len(t.lanes)]
	l.mu.Lock()
	defer l.mu.Unlock()
	pg := l.pg
	var pl *Payload
	if pg != nil {
		pg.lt.LockExclusive(io.yieldFunc())
		var err error
		pl, err = pg.ensureResident(io)
		if err != nil {
			pg.lt.UnlockExclusive()
			return 0, err
		}
		if pl.Rows.Full() || l.next > l.end {
			pg.lt.UnlockExclusive()
			pg.open.Store(false)
			l.pg, pg = nil, nil
		}
	}
	if pg == nil {
		// Reserve a fresh chunk: one page's worth of row_ids. Idle lanes
		// burn their leftover range — gaps are first-class (aborts burn
		// row_ids too), only disjointness and per-page sortedness matter.
		end := t.nextRowID.Add(uint64(t.PageCap))
		l.next, l.end = end-uint64(t.PageCap)+1, end
		pg = t.newPage(rel.RowID(l.next), part, true)
		l.pg = pg
		pg.lt.LockExclusive(io.yieldFunc())
		pl = pg.swip.Ptr()
	}
	rid := rel.RowID(l.next)
	l.next++
	slot, err := pl.Rows.Append(row)
	if err != nil {
		pg.lt.UnlockExclusive()
		return 0, err
	}
	pl.IDs = append(pl.IDs, rid)
	pl.Deleted = append(pl.Deleted, false)
	pg.touch()
	if fn != nil {
		if err := fn(Handle{Pg: pg, Pl: pl, Slot: slot, RID: rid}); err != nil {
			// Roll the physical insert back; the row_id is burned.
			pl.Rows.Delete(slot)
			pl.IDs = pl.IDs[:len(pl.IDs)-1]
			pl.Deleted = pl.Deleted[:len(pl.Deleted)-1]
			pg.lt.UnlockExclusive()
			return 0, err
		}
	}
	t.raiseMaxAssigned(uint64(rid))
	pg.lt.UnlockExclusive()
	if l.next > l.end {
		// Chunk exhausted: seal the page so cooling and freezing may take it.
		pg.open.Store(false)
		l.pg = nil
	}
	return rid, nil
}

// sealLanesLocked retires every lane's open page and chunk remainder (the
// unassigned row_ids are burned). Explicit-row_id fast-forwards use it so a
// later lane append can never re-assign a row_id at or below the new
// counter. Caller holds recMu.
func (t *Table) sealLanesLocked() {
	for i := range t.lanes {
		l := &t.lanes[i]
		l.mu.Lock()
		if l.pg != nil {
			l.pg.open.Store(false)
			l.pg = nil
		}
		l.next, l.end = 0, 0
		l.mu.Unlock()
	}
}

// fastForwardLocked seals all lanes and advances both counters to rid,
// which becomes the highest reserved and assigned row_id. Caller holds
// recMu and is about to place a row at rid.
func (t *Table) fastForwardLocked(rid uint64) {
	t.sealLanesLocked()
	t.nextRowID.Store(rid)
	t.raiseMaxAssigned(rid)
}

// highRowID returns the highest row_id that is reserved or assigned.
func (t *Table) highRowID() uint64 {
	hi := t.nextRowID.Load()
	if m := t.maxAssigned.Load(); m > hi {
		hi = m
	}
	return hi
}

// placeRight appends (rid, row) at the right edge of the key space: into
// the last directory page when it is sealed, in range, and has room, else
// into a fresh page starting at rid. Caller holds recMu and has
// fast-forwarded the counters past rid.
func (t *Table) placeRight(rid rel.RowID, row rel.Row) error {
	t.dirMu.RLock()
	var pg *Page
	if n := len(t.dir); n > 0 {
		pg = t.dir[n-1]
	}
	t.dirMu.RUnlock()
	if pg != nil && !pg.open.Load() {
		pg.lt.LockExclusive(nil)
		pl, err := pg.ensureResident(nil)
		if err != nil {
			pg.lt.UnlockExclusive()
			return err
		}
		if !pl.Rows.Full() && (len(pl.IDs) == 0 || pl.IDs[len(pl.IDs)-1] < rid) {
			err = insertSorted(pl, rid, row)
			pg.touch()
			pg.lt.UnlockExclusive()
			return err
		}
		pg.lt.UnlockExclusive()
	}
	pg = t.newPage(rid, 0, false)
	pg.lt.LockExclusive(nil)
	err := insertSorted(pg.swip.Ptr(), rid, row)
	pg.touch()
	pg.lt.UnlockExclusive()
	return err
}

// AppendAt inserts row with an explicit row_id greater than any reserved or
// assigned so far, fast-forwarding the row_id counter past it. Recovery
// uses this to reproduce logged row_ids even across gaps burned by aborted
// transactions.
func (t *Table) AppendAt(rid rel.RowID, row rel.Row) error {
	if err := row.Conforms(t.Schema); err != nil {
		return err
	}
	t.recMu.Lock()
	defer t.recMu.Unlock()
	if hi := t.highRowID(); uint64(rid) <= hi {
		return fmt.Errorf("table: AppendAt row_id %d not beyond counter %d", rid, hi)
	}
	t.fastForwardLocked(uint64(rid))
	return t.placeRight(rid, row)
}

// RemoveRow physically erases a tombstoned row (deleted-tuple GC, §7.3).
func (t *Table) RemoveRow(rid rel.RowID, io *Ctx) error {
	return t.WithRow(rid, true, io, func(h Handle) error {
		if err := h.Pl.Rows.Delete(h.Slot); err != nil {
			return err
		}
		h.Pl.IDs = append(h.Pl.IDs[:h.Slot], h.Pl.IDs[h.Slot+1:]...)
		h.Pl.Deleted = append(h.Pl.Deleted[:h.Slot], h.Pl.Deleted[h.Slot+1:]...)
		return nil
	})
}

// DropCollectibleTwins sweeps pages with twin tables and drops those whose
// writers are all globally visible (twin table GC, §7.3). Returns the
// number of tables dropped.
func (t *Table) DropCollectibleTwins(maxFrozenXID uint64) int {
	dropped := 0
	t.twinPages.Range(func(k, _ any) bool {
		pg := k.(*Page)
		if !pg.lt.TryLockExclusive() {
			return true
		}
		if pg.Twin != nil && pg.Twin.Collectible(maxFrozenXID) {
			pg.Twin = nil
			t.twinPages.Delete(pg)
			dropped++
		}
		pg.lt.UnlockExclusive()
		return true
	})
	return dropped
}

// Scan iterates all live (non-tombstoned) rows in row_id order across the
// hot/cold layers, invoking fn until it returns false. Each page is read
// under its shared latch.
//
// The row and handle passed to fn are scratch storage owned by the scan and
// reused for every row: both are valid only for the duration of the
// callback. Callers that need a row beyond the callback must copy it
// (string values may be retained — they are zero-copy views of
// content-immutable page bytes, see pax.viewStr).
func (t *Table) Scan(io *Ctx, fn func(rid rel.RowID, row rel.Row, h *Handle) bool) error {
	return t.scan(io, false, fn)
}

// ScanAll is Scan including tombstoned rows: MVCC scans need them because
// a delete committed after a reader's snapshot must still be visible to
// that reader through its version chain. The same scratch-reuse contract as
// Scan applies.
func (t *Table) ScanAll(io *Ctx, fn func(rid rel.RowID, row rel.Row, h *Handle) bool) error {
	return t.scan(io, true, fn)
}

func (t *Table) scan(io *Ctx, includeTombstones bool, fn func(rid rel.RowID, row rel.Row, h *Handle) bool) error {
	t.dirMu.RLock()
	pages := append([]*Page(nil), t.dir...)
	t.dirMu.RUnlock()
	// One scratch row and one handle for the whole scan: the old
	// per-row Rows.Row + &Handle{...} pair dominated scan allocations.
	buf := make(rel.Row, t.Schema.NumCols())
	var h Handle
	for _, pg := range pages {
		cont, err := t.scanPage(pg, io, includeTombstones, buf, &h, fn)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

func (t *Table) scanPage(pg *Page, io *Ctx, includeTombstones bool, buf rel.Row, h *Handle, fn func(rid rel.RowID, row rel.Row, h *Handle) bool) (bool, error) {
	for {
		if pg.swip.State() == swizzle.Cold {
			pg.lt.LockExclusive(io.yieldFunc())
			if _, err := pg.ensureResident(io); err != nil {
				pg.lt.UnlockExclusive()
				return false, err
			}
			pg.lt.UnlockExclusive()
			continue
		}
		pg.lt.LockShared(io.yieldFunc())
		if pg.swip.State() == swizzle.Cold {
			pg.lt.UnlockShared()
			continue
		}
		pg.touch()
		pl := pg.swip.Ptr()
		h.Pg, h.Pl = pg, pl
		for i := 0; i < len(pl.IDs); i++ {
			if pl.Deleted[i] && !includeTombstones {
				continue
			}
			pl.Rows.ReadRowInto(i, buf)
			h.Slot, h.RID = i, pl.IDs[i]
			if !fn(pl.IDs[i], buf, h) {
				pg.lt.UnlockShared()
				return false, nil
			}
		}
		pg.lt.UnlockShared()
		return true, nil
	}
}

// PageView is one resident page's content handed to ScanPages callbacks.
// Everything in it is borrowed: valid only under the page's shared latch,
// for the duration of the callback.
type PageView struct {
	Pl *Payload
	// Twin is the page's twin table (nil when no slot has an uncollected
	// version chain or tuple lock).
	Twin *undo.TwinTable
}

// ScanPages iterates the hot/cold pages in row_id order, invoking fn once
// per page under its shared latch, until fn returns false. This is the
// batch counterpart of Scan: the callback sees the whole PAX payload at
// once (tombstones included) and evaluates column predicates against
// minipage bytes without materializing rows.
func (t *Table) ScanPages(io *Ctx, fn func(v PageView) bool) error {
	t.dirMu.RLock()
	pages := append([]*Page(nil), t.dir...)
	t.dirMu.RUnlock()
	for _, pg := range pages {
		for {
			if pg.swip.State() == swizzle.Cold {
				pg.lt.LockExclusive(io.yieldFunc())
				if _, err := pg.ensureResident(io); err != nil {
					pg.lt.UnlockExclusive()
					return err
				}
				pg.lt.UnlockExclusive()
				continue
			}
			pg.lt.LockShared(io.yieldFunc())
			if pg.swip.State() == swizzle.Cold {
				pg.lt.UnlockShared()
				continue
			}
			pg.touch()
			cont := fn(PageView{Pl: pg.swip.Ptr(), Twin: pg.Twin})
			pg.lt.UnlockShared()
			if !cont {
				return nil
			}
			break
		}
	}
	return nil
}

// NextRowID returns the highest assigned row_id (reserved-but-unused chunk
// remainders don't count: they may be burned without ever holding a row).
func (t *Table) NextRowID() rel.RowID { return rel.RowID(t.maxAssigned.Load()) }

// SetNextRowID fast-forwards the row_id counter (recovery): later appends
// assign strictly greater row_ids.
func (t *Table) SetNextRowID(rid rel.RowID) {
	t.recMu.Lock()
	defer t.recMu.Unlock()
	t.fastForwardLocked(uint64(rid))
}

// MaxFrozenRowID returns the frozen frontier (§5.2).
func (t *Table) MaxFrozenRowID() rel.RowID { return rel.RowID(t.maxFrozenRowID.Load()) }

// NumPages returns the directory size (hot/cold pages only).
func (t *Table) NumPages() int {
	t.dirMu.RLock()
	defer t.dirMu.RUnlock()
	return len(t.dir)
}

// FrozenCandidate is one page's content handed to the freezer.
type FrozenCandidate struct {
	FirstRID rel.RowID
	Payload  *Payload
}

// DetachFrozenPrefix removes up to maxPages cold-enough pages from the
// front of the directory for freezing (§5.2 case 2): consecutive non-tail
// pages with decayed access counts at or below maxHot, no twin table, and
// no pending tombstones. It advances max_frozen_row_id to cover the
// detached range and returns the detached payloads in row_id order.
func (t *Table) DetachFrozenPrefix(maxPages int, maxHot uint32, io *Ctx) ([]FrozenCandidate, error) {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	var out []FrozenCandidate
	for len(out) < maxPages && len(t.dir) > 1 { // never empty the directory
		pg := t.dir[0]
		if pg.open.Load() || pg.Hotness() > maxHot {
			break // an insert frontier never freezes
		}
		pg.lt.LockExclusive(io.yieldFunc())
		if pg.Twin != nil {
			pg.lt.UnlockExclusive()
			break
		}
		pl, err := pg.ensureResident(io)
		if err != nil {
			pg.lt.UnlockExclusive()
			return out, err
		}
		pending := false
		for _, d := range pl.Deleted {
			if d {
				pending = true
				break
			}
		}
		if pending {
			pg.lt.UnlockExclusive()
			break
		}
		// Detach: the page leaves the directory; its disk slot is freed.
		t.dir = t.dir[1:]
		if id := pg.swip.PageID(); id != storage.InvalidPageID {
			t.pf.Free(id)
		}
		if t.pool != nil && pg.Resident() {
			t.pool.AddResident(pg.part, -int64(t.pf.PageSize()))
		}
		out = append(out, FrozenCandidate{FirstRID: pg.firstRowID, Payload: pl})
		t.maxFrozenRowID.Store(uint64(t.dir[0].firstRowID) - 1)
		pg.lt.UnlockExclusive()
	}
	return out, nil
}

// PageImage is one page's serialized payload for checkpointing.
type PageImage struct {
	FirstRID rel.RowID
	Img      []byte
}

// ExportImages serializes every hot/cold page (loading cold pages) for a
// checkpoint. The engine quiesces transactions first; the table must not
// be mutated during the export.
func (t *Table) ExportImages(io *Ctx) (images []PageImage, nextRowID, maxFrozenRID uint64, err error) {
	t.dirMu.RLock()
	pages := append([]*Page(nil), t.dir...)
	t.dirMu.RUnlock()
	for _, pg := range pages {
		pg.lt.LockExclusive(io.yieldFunc())
		pl, lerr := pg.ensureResident(io)
		if lerr != nil {
			pg.lt.UnlockExclusive()
			return nil, 0, 0, lerr
		}
		images = append(images, PageImage{FirstRID: pg.firstRowID, Img: pl.serialize(nil)})
		pg.lt.UnlockExclusive()
	}
	return images, t.maxAssigned.Load(), t.maxFrozenRowID.Load(), nil
}

// ImportImages rebuilds the table's directory from a checkpoint export.
// The table must be freshly created (no rows ever inserted).
func (t *Table) ImportImages(images []PageImage, nextRowID, maxFrozenRID uint64) error {
	t.recMu.Lock()
	defer t.recMu.Unlock()
	t.dirMu.RLock()
	pristine := len(t.dir) == 0 && t.highRowID() == 0
	t.dirMu.RUnlock()
	if !pristine {
		return fmt.Errorf("table: ImportImages on non-empty table %d", t.ID)
	}
	for _, im := range images {
		pl, err := deserializePayload(t.Schema, t.PageCap, im.Img)
		if err != nil {
			return fmt.Errorf("table %d: import page %d: %w", t.ID, im.FirstRID, err)
		}
		pg := &Page{firstRowID: im.FirstRID, table: t, part: 0}
		pg.swip.Swizzle(pl)
		pg.Stamp.LastWriter = -1
		t.dirMu.Lock()
		t.dir = append(t.dir, pg)
		t.dirMu.Unlock()
		if t.pool != nil {
			t.pool.Register(pg, 0)
			t.pool.AddResident(0, int64(t.pf.PageSize()))
		}
	}
	// Later appends open fresh lane chunks strictly above nextRowID.
	t.nextRowID.Store(nextRowID)
	t.raiseMaxAssigned(nextRowID)
	t.maxFrozenRowID.Store(maxFrozenRID)
	return nil
}

// InsertAt places row at an explicit row_id anywhere in the key space:
// past the counter (fast-forwarding it, burning any gap) or between
// existing rows, splitting a full page if needed. Recovery and WAL-shipping
// replication use it because cross-writer GSN order only guarantees
// per-page order — inserts to different lane pages can arrive out of
// row_id order.
func (t *Table) InsertAt(rid rel.RowID, row rel.Row) error {
	if err := row.Conforms(t.Schema); err != nil {
		return err
	}
	t.recMu.Lock()
	defer t.recMu.Unlock()
	if uint64(rid) > t.highRowID() {
		t.fastForwardLocked(uint64(rid))
		return t.placeRight(rid, row)
	}
	// Out-of-order: the rid belongs to an existing page's range, or lies in
	// a burned gap below every page.
	pg := t.findPage(rid)
	if pg == nil {
		return t.insertAtPage(t.newPage(rid, 0, false), rid, row)
	}
	return t.insertAtPage(pg, rid, row)
}

// insertAtPage places (rid, row) into pg at its sorted slot, splitting a
// full page. Caller holds recMu.
func (t *Table) insertAtPage(pg *Page, rid rel.RowID, row rel.Row) error {
	pg.lt.LockExclusive(nil)
	pl, err := pg.ensureResident(nil)
	if err != nil {
		pg.lt.UnlockExclusive()
		return err
	}
	if pl.find(rid) >= 0 {
		pg.lt.UnlockExclusive()
		return fmt.Errorf("table: InsertAt %d already present", rid)
	}
	if pg.open.Load() {
		// An active lane owns this page's chunk. Only a burned gap below
		// the lane's frontier is safe to fill; re-inserting at or above it
		// would collide with a future lane assignment.
		if n := len(pl.IDs); n == 0 || rid > pl.IDs[n-1] {
			pg.lt.UnlockExclusive()
			return fmt.Errorf("table: InsertAt %d targets an active insert lane", rid)
		}
	}
	if pl.Rows.Full() {
		// Split the page in half and retry against the proper half.
		if err := t.splitPage(pg, pl); err != nil {
			pg.lt.UnlockExclusive()
			return err
		}
		pg.lt.UnlockExclusive()
		return t.insertIntoPage(rid, row)
	}
	err = insertSorted(pl, rid, row)
	pg.lt.UnlockExclusive()
	return err
}

// insertIntoPage re-routes and inserts after a split (recMu held).
func (t *Table) insertIntoPage(rid rel.RowID, row rel.Row) error {
	pg := t.findPage(rid)
	if pg == nil {
		return fmt.Errorf("table: no covering page for %d after split", rid)
	}
	pg.lt.LockExclusive(nil)
	defer pg.lt.UnlockExclusive()
	pl, err := pg.ensureResident(nil)
	if err != nil {
		return err
	}
	if pl.Rows.Full() {
		return fmt.Errorf("table: page for %d still full after split", rid)
	}
	return insertSorted(pl, rid, row)
}

// insertSorted places (rid, row) at its sorted slot in the payload.
func insertSorted(pl *Payload, rid rel.RowID, row rel.Row) error {
	at := sort.Search(len(pl.IDs), func(i int) bool { return pl.IDs[i] >= rid })
	if err := pl.Rows.Insert(at, row); err != nil {
		return err
	}
	pl.IDs = append(pl.IDs, 0)
	copy(pl.IDs[at+1:], pl.IDs[at:])
	pl.IDs[at] = rid
	pl.Deleted = append(pl.Deleted, false)
	copy(pl.Deleted[at+1:], pl.Deleted[at:])
	pl.Deleted[at] = false
	return nil
}

// splitPage moves the upper half of pg's rows into a new page placed after
// it in the directory. Caller holds recMu and pg's exclusive latch; the
// page must have no twin table (replication/recovery context).
func (t *Table) splitPage(pg *Page, pl *Payload) error {
	if pg.Twin != nil {
		return fmt.Errorf("table: split of page with twin table")
	}
	half := len(pl.IDs) / 2
	right := &Page{firstRowID: pl.IDs[half], table: t, part: pg.part}
	rpl := &Payload{Rows: pax.NewPage(t.Schema, t.PageCap)}
	for i := half; i < len(pl.IDs); i++ {
		if _, err := rpl.Rows.Append(pl.Rows.Row(i)); err != nil {
			return err
		}
		rpl.IDs = append(rpl.IDs, pl.IDs[i])
		rpl.Deleted = append(rpl.Deleted, pl.Deleted[i])
	}
	for i := len(pl.IDs) - 1; i >= half; i-- {
		pl.Rows.Delete(i)
	}
	pl.IDs = pl.IDs[:half]
	pl.Deleted = pl.Deleted[:half]
	right.swip.Swizzle(rpl)
	right.Stamp.LastWriter = -1

	t.dirMu.Lock()
	pos := sort.Search(len(t.dir), func(i int) bool { return t.dir[i].firstRowID > pg.firstRowID })
	t.dir = append(t.dir, nil)
	copy(t.dir[pos+1:], t.dir[pos:])
	t.dir[pos] = right
	t.dirMu.Unlock()
	if t.pool != nil {
		t.pool.Register(right, right.part)
		t.pool.AddResident(right.part, int64(t.pf.PageSize()))
	}
	return nil
}
