package frozen

import (
	"fmt"
	"path/filepath"
	"testing"

	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

func testSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TInt64},
		rel.Column{Name: "payload", Type: rel.TString},
	)
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	bf, err := storage.OpenBlockFile(filepath.Join(t.TempDir(), "frozen.blocks"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	return NewStore(bf, testSchema())
}

func batch(first, n int) ([]rel.RowID, []rel.Row) {
	ids := make([]rel.RowID, n)
	rows := make([]rel.Row, n)
	for i := 0; i < n; i++ {
		ids[i] = rel.RowID(first + i)
		rows[i] = rel.Row{rel.Int(int64(first + i)), rel.Str(fmt.Sprintf("frozen-row-%d", first+i))}
	}
	return ids, rows
}

func TestFreezeAndGet(t *testing.T) {
	s := newTestStore(t)
	ids, rows := batch(1, 50)
	blk, err := s.Freeze(ids, rows)
	if err != nil {
		t.Fatal(err)
	}
	if blk.FirstRID != 1 || blk.LastRID != 50 || blk.NumRows != 50 {
		t.Fatalf("block = %+v", blk)
	}
	for i, id := range ids {
		row, ok, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !row.Equal(rows[i]) {
			t.Fatalf("Get(%d) = (%v,%v)", id, row, ok)
		}
	}
	if _, ok, _ := s.Get(999); ok {
		t.Fatal("absent rid found")
	}
	if s.MaxRID() != 50 || s.NumBlocks() != 1 {
		t.Fatalf("MaxRID=%d NumBlocks=%d", s.MaxRID(), s.NumBlocks())
	}
	if s.CompressedBytes() <= 0 {
		t.Fatal("no bytes written")
	}
}

func TestFreezeValidation(t *testing.T) {
	s := newTestStore(t)
	ids, rows := batch(1, 10)
	if _, err := s.Freeze(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := s.Freeze(ids[:5], rows[:4]); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	bad := append([]rel.RowID(nil), ids...)
	bad[3] = bad[2]
	if _, err := s.Freeze(bad, rows); err == nil {
		t.Fatal("non-ascending ids accepted")
	}
	if _, err := s.Freeze(ids, rows); err != nil {
		t.Fatal(err)
	}
	// Overlapping range rejected.
	if _, err := s.Freeze(ids, rows); err == nil {
		t.Fatal("overlapping freeze accepted")
	}
}

func TestMultipleBlocksAndRouting(t *testing.T) {
	s := newTestStore(t)
	for b := 0; b < 5; b++ {
		ids, rows := batch(b*100+1, 20) // gaps between blocks
		if _, err := s.Freeze(ids, rows); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d", s.NumBlocks())
	}
	// Row in third block.
	row, ok, err := s.Get(215)
	if err != nil || !ok || row[0].I != 215 {
		t.Fatalf("Get(215) = (%v,%v,%v)", row, ok, err)
	}
	// Gap between blocks: absent.
	if _, ok, _ := s.Get(50); ok {
		t.Fatal("rid in gap found")
	}
}

func TestMarkDeleted(t *testing.T) {
	s := newTestStore(t)
	ids, rows := batch(1, 10)
	s.Freeze(ids, rows)
	ok, err := s.MarkDeleted(5)
	if err != nil || !ok {
		t.Fatalf("MarkDeleted = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get(5); ok {
		t.Fatal("deleted row still visible")
	}
	if ok, _ := s.MarkDeleted(5); ok {
		t.Fatal("double delete reported live")
	}
	if ok, _ := s.MarkDeleted(999); ok {
		t.Fatal("delete of absent row reported live")
	}
	// Neighbors unaffected.
	if _, ok, _ := s.Get(4); !ok {
		t.Fatal("neighbor lost")
	}
}

func TestScanLiveSkipsDeleted(t *testing.T) {
	s := newTestStore(t)
	ids1, rows1 := batch(1, 5)
	s.Freeze(ids1, rows1)
	ids2, rows2 := batch(10, 5)
	s.Freeze(ids2, rows2)
	s.MarkDeleted(3)
	s.MarkDeleted(12)
	var seen []rel.RowID
	if err := s.ScanLive(func(rid rel.RowID, row rel.Row) bool {
		seen = append(seen, rid)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []rel.RowID{1, 2, 4, 5, 10, 11, 13, 14}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", seen, want)
	}
	// Early stop.
	n := 0
	s.ScanLive(func(rel.RowID, rel.Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanDoesNotWarm(t *testing.T) {
	s := newTestStore(t)
	s.WarmThreshold = 2
	ids, rows := batch(1, 5)
	s.Freeze(ids, rows)
	for i := 0; i < 10; i++ {
		s.ScanLive(func(rel.RowID, rel.Row) bool { return true })
	}
	if s.ShouldWarm(1) {
		t.Fatal("table scan warmed the block (§5.2 violation)")
	}
}

func TestWarmThresholdAndExtract(t *testing.T) {
	s := newTestStore(t)
	s.WarmThreshold = 3
	ids, rows := batch(1, 6)
	s.Freeze(ids, rows)
	s.MarkDeleted(2)
	if s.ShouldWarm(1) {
		t.Fatal("cold block reported warm")
	}
	for i := 0; i < 3; i++ {
		s.Get(1)
	}
	if !s.ShouldWarm(1) {
		t.Fatal("block not warm after threshold reads")
	}
	gotIDs, gotRows, err := s.ExtractLive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 5 || len(gotRows) != 5 {
		t.Fatalf("extracted %d rows", len(gotIDs))
	}
	for _, id := range gotIDs {
		if id == 2 {
			t.Fatal("deleted row extracted")
		}
	}
	// After extraction everything is tombstoned.
	if _, ok, _ := s.Get(1); ok {
		t.Fatal("extracted row still live")
	}
	n := 0
	s.ScanLive(func(rel.RowID, rel.Row) bool { n++; return true })
	if n != 0 {
		t.Fatalf("%d live rows after extraction", n)
	}
	if s.ShouldWarm(1) {
		t.Fatal("warm counter not reset after extraction")
	}
}

func TestCacheEviction(t *testing.T) {
	s := newTestStore(t)
	s.cacheCap = 2
	for b := 0; b < 6; b++ {
		ids, rows := batch(b*10+1, 5)
		if _, err := s.Freeze(ids, rows); err != nil {
			t.Fatal(err)
		}
	}
	// Touch all blocks; the cache holds at most cacheCap decompressed.
	for b := 0; b < 6; b++ {
		if _, ok, err := s.Get(rel.RowID(b*10 + 1)); !ok || err != nil {
			t.Fatalf("block %d unreadable", b)
		}
	}
	cached := 0
	for _, b := range s.blocks {
		if b.cache.Load() != nil {
			cached++
		}
	}
	if cached > 2 {
		t.Fatalf("%d blocks cached, cap 2", cached)
	}
	// Evicted blocks remain readable (re-decompress).
	if _, ok, _ := s.Get(1); !ok {
		t.Fatal("evicted block unreadable")
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	s := newTestStore(t)
	n := 500
	ids := make([]rel.RowID, n)
	rows := make([]rel.Row, n)
	for i := 0; i < n; i++ {
		ids[i] = rel.RowID(i + 1)
		rows[i] = rel.Row{rel.Int(int64(i)), rel.Str("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")}
	}
	if _, err := s.Freeze(ids, rows); err != nil {
		t.Fatal(err)
	}
	rawEstimate := int64(n * (8 + 40))
	if s.CompressedBytes() >= rawEstimate/2 {
		t.Fatalf("compressed %d bytes, raw estimate %d: compression ineffective", s.CompressedBytes(), rawEstimate)
	}
}

func BenchmarkFrozenGet(b *testing.B) {
	bf, _ := storage.OpenBlockFile(filepath.Join(b.TempDir(), "f.blocks"), nil)
	defer bf.Close()
	s := NewStore(bf, testSchema())
	ids, rows := batch(1, 1000)
	s.Freeze(ids, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rel.RowID(i%1000 + 1))
	}
}
