package frozen

import (
	"fmt"
	"path/filepath"
	"testing"

	"phoebedb/internal/pax"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

func testSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TInt64},
		rel.Column{Name: "payload", Type: rel.TString},
	)
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	bf, err := storage.OpenBlockFile(filepath.Join(t.TempDir(), "frozen.blocks"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	return NewStore(bf, testSchema())
}

func batch(first, n int) ([]rel.RowID, []rel.Row) {
	ids := make([]rel.RowID, n)
	rows := make([]rel.Row, n)
	for i := 0; i < n; i++ {
		ids[i] = rel.RowID(first + i)
		rows[i] = rel.Row{rel.Int(int64(first + i)), rel.Str(fmt.Sprintf("frozen-row-%d", first+i))}
	}
	return ids, rows
}

func mustFreeze(t *testing.T, s *Store, ids []rel.RowID, rows []rel.Row) {
	t.Helper()
	if err := s.Freeze(ids, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeAndGet(t *testing.T) {
	s := newTestStore(t)
	ids, rows := batch(1, 50)
	mustFreeze(t, s, ids, rows)
	if s.NumSegments() != 1 || s.MaxRID() != 50 {
		t.Fatalf("NumSegments=%d MaxRID=%d", s.NumSegments(), s.MaxRID())
	}
	for i, id := range ids {
		row, ok, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !row.Equal(rows[i]) {
			t.Fatalf("Get(%d) = (%v,%v)", id, row, ok)
		}
	}
	if _, ok, _ := s.Get(999); ok {
		t.Fatal("absent rid found")
	}
	if s.CompressedBytes() <= 0 {
		t.Fatal("no bytes written")
	}
	st := s.Stats()
	if st.Lookups != 51 || st.FreezeBytes <= 0 || st.RawBytes <= st.FreezeBytes {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFreezeValidation(t *testing.T) {
	s := newTestStore(t)
	ids, rows := batch(1, 10)
	if err := s.Freeze(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := s.Freeze(ids[:5], rows[:4]); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	bad := append([]rel.RowID(nil), ids...)
	bad[3] = bad[2]
	if err := s.Freeze(bad, rows); err == nil {
		t.Fatal("non-ascending ids accepted")
	}
	mustFreeze(t, s, ids, rows)
	// Overlapping range rejected.
	if err := s.Freeze(ids, rows); err == nil {
		t.Fatal("overlapping freeze accepted")
	}
}

func TestMultipleSegmentsAndRouting(t *testing.T) {
	s := newTestStore(t)
	for b := 0; b < 5; b++ {
		ids, rows := batch(b*100+1, 20) // gaps between segments
		mustFreeze(t, s, ids, rows)
	}
	if s.NumSegments() != 5 {
		t.Fatalf("NumSegments = %d", s.NumSegments())
	}
	// Row in third segment.
	row, ok, err := s.Get(215)
	if err != nil || !ok || row[0].I != 215 {
		t.Fatalf("Get(215) = (%v,%v,%v)", row, ok, err)
	}
	// Gap between segments: absent.
	if _, ok, _ := s.Get(50); ok {
		t.Fatal("rid in gap found")
	}
}

// Rid gaps inside a segment's range are answered by the bloom filter
// without reading any block: the read amplification of an absent-key
// lookup is zero segments.
func TestBloomNegativesTouchNothing(t *testing.T) {
	s := newTestStore(t)
	n := 500
	ids := make([]rel.RowID, n)
	rows := make([]rel.Row, n)
	for i := 0; i < n; i++ {
		ids[i] = rel.RowID(2 * (i + 1)) // even rids only
		rows[i] = rel.Row{rel.Int(int64(i)), rel.Str("x")}
	}
	mustFreeze(t, s, ids, rows)
	misses := 0
	for i := 1; i < n; i++ { // odd rids 3..2n-1, all inside the segment's range
		if _, ok, err := s.Get(rel.RowID(2*i + 1)); ok || err != nil {
			t.Fatalf("odd rid %d = (%v, %v)", 2*i+1, ok, err)
		}
		misses++
	}
	st := s.Stats()
	if st.BloomNegatives+st.SegmentsProbed < int64(misses) {
		t.Fatalf("misses unaccounted: %+v", st)
	}
	// 10 bits/key, 7 hashes: ~1% false positives. Allow 10x slack.
	if st.BloomNegatives < int64(misses)*9/10 {
		t.Fatalf("only %d/%d bloom negatives", st.BloomNegatives, misses)
	}
}

func TestMarkDeleted(t *testing.T) {
	s := newTestStore(t)
	ids, rows := batch(1, 10)
	mustFreeze(t, s, ids, rows)
	ok, err := s.MarkDeleted(5)
	if err != nil || !ok {
		t.Fatalf("MarkDeleted = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get(5); ok {
		t.Fatal("deleted row still visible")
	}
	if ok, _ := s.MarkDeleted(5); ok {
		t.Fatal("double delete reported live")
	}
	if ok, _ := s.MarkDeleted(999); ok {
		t.Fatal("delete of absent row reported live")
	}
	// Neighbors unaffected.
	if _, ok, _ := s.Get(4); !ok {
		t.Fatal("neighbor lost")
	}
	// Undelete restores visibility (warming-txn rollback).
	s.Undelete(5)
	if _, ok, _ := s.Get(5); !ok {
		t.Fatal("undeleted row invisible")
	}
}

func TestScanLiveSkipsDeleted(t *testing.T) {
	s := newTestStore(t)
	ids1, rows1 := batch(1, 5)
	mustFreeze(t, s, ids1, rows1)
	ids2, rows2 := batch(10, 5)
	mustFreeze(t, s, ids2, rows2)
	s.MarkDeleted(3)
	s.MarkDeleted(12)
	var seen []rel.RowID
	if err := s.ScanLive(func(rid rel.RowID, row rel.Row) bool {
		seen = append(seen, rid)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []rel.RowID{1, 2, 4, 5, 10, 11, 13, 14}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", seen, want)
	}
	// Early stop.
	n := 0
	s.ScanLive(func(rel.RowID, rel.Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// ScanBlocks must skip whole segments whose zone maps refute a predicate,
// without decompressing (or even reading) any of their blocks.
func TestScanBlocksZonePruning(t *testing.T) {
	s := newTestStore(t)
	ids1, rows1 := batch(1, 100) // k in [1,100]
	mustFreeze(t, s, ids1, rows1)
	ids2, rows2 := batch(1000, 100) // k in [1000,1099]
	mustFreeze(t, s, ids2, rows2)

	before := s.Stats().CacheMisses
	calls := 0
	preds := []rel.ColPred{{Col: 0, Op: rel.CmpGe, Val: rel.Int(500)}}
	if err := s.ScanBlocks(preds, func(ids []rel.RowID, page *pax.Page, sel pax.Sel) bool {
		for _, id := range ids {
			if id < 1000 {
				t.Fatalf("pruned segment emitted rid %d", id)
			}
		}
		calls++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("second segment not scanned")
	}
	// Only the surviving segment's block was decompressed.
	if got := s.Stats().CacheMisses - before; got != int64(calls) {
		t.Fatalf("%d blocks decompressed for %d surviving blocks", got, calls)
	}
	// A predicate refuting both segments touches nothing.
	before = s.Stats().CacheMisses
	if err := s.ScanBlocks([]rel.ColPred{{Col: 0, Op: rel.CmpGt, Val: rel.Int(10_000)}},
		func([]rel.RowID, *pax.Page, pax.Sel) bool {
			t.Fatal("block emitted despite refuting predicate")
			return false
		}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().CacheMisses - before; got != 0 {
		t.Fatalf("%d blocks read under a fully refuting predicate", got)
	}
}

func TestScanDoesNotWarm(t *testing.T) {
	s := newTestStore(t)
	s.WarmThreshold = 2
	ids, rows := batch(1, 5)
	mustFreeze(t, s, ids, rows)
	for i := 0; i < 10; i++ {
		s.ScanLive(func(rel.RowID, rel.Row) bool { return true })
	}
	if s.ShouldWarm(1) {
		t.Fatal("table scan warmed the block (§5.2 violation)")
	}
}

func TestWarmThresholdAndExtract(t *testing.T) {
	s := newTestStore(t)
	s.WarmThreshold = 3
	ids, rows := batch(1, 6)
	mustFreeze(t, s, ids, rows)
	s.MarkDeleted(2)
	if s.ShouldWarm(1) {
		t.Fatal("cold block reported warm")
	}
	for i := 0; i < 3; i++ {
		s.Get(1)
	}
	if !s.ShouldWarm(1) {
		t.Fatal("block not warm after threshold reads")
	}
	gotIDs, gotRows, err := s.ExtractLive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 5 || len(gotRows) != 5 {
		t.Fatalf("extracted %d rows", len(gotIDs))
	}
	for _, id := range gotIDs {
		if id == 2 {
			t.Fatal("deleted row extracted")
		}
	}
	// After extraction everything is tombstoned.
	if _, ok, _ := s.Get(1); ok {
		t.Fatal("extracted row still live")
	}
	n := 0
	s.ScanLive(func(rel.RowID, rel.Row) bool { n++; return true })
	if n != 0 {
		t.Fatalf("%d live rows after extraction", n)
	}
	if s.ShouldWarm(1) {
		t.Fatal("warm counter not reset after extraction")
	}
}

// Warming is per block, not per segment: reads of one block must not
// report the segment's other blocks warm.
func TestWarmingIsPerBlock(t *testing.T) {
	s := newTestStore(t)
	s.WarmThreshold = 2
	s.BlockRows = 4
	ids, rows := batch(1, 12) // three 4-row blocks in one segment
	mustFreeze(t, s, ids, rows)
	if s.Stats().Blocks != 3 {
		t.Fatalf("blocks = %d, want 3", s.Stats().Blocks)
	}
	for i := 0; i < 2; i++ {
		s.Get(1) // first block only
	}
	if !s.ShouldWarm(2) {
		t.Fatal("read block not warm")
	}
	if s.ShouldWarm(6) || s.ShouldWarm(10) {
		t.Fatal("unread blocks reported warm")
	}
	gotIDs, _, err := s.ExtractLive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 4 {
		t.Fatalf("extracted %d rows, want the 4-row block", len(gotIDs))
	}
	// Rows in the other blocks stay frozen and live.
	if _, ok, _ := s.Get(6); !ok {
		t.Fatal("row in unwarmed block lost")
	}
}

func TestCacheEvictionAndCounters(t *testing.T) {
	s := newTestStore(t)
	s.CacheBytes = 1 // every load evicts the previous block
	for b := 0; b < 6; b++ {
		ids, rows := batch(b*10+1, 5)
		mustFreeze(t, s, ids, rows)
	}
	for b := 0; b < 6; b++ {
		if _, ok, err := s.Get(rel.RowID(b*10 + 1)); !ok || err != nil {
			t.Fatalf("segment %d unreadable", b)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 6 || st.CacheHits != 0 {
		t.Fatalf("hits=%d misses=%d, want 0/6", st.CacheHits, st.CacheMisses)
	}
	// Evicted blocks remain readable (re-decompress, counted as misses).
	if _, ok, _ := s.Get(1); !ok {
		t.Fatal("evicted block unreadable")
	}
	if st = s.Stats(); st.CacheMisses != 7 {
		t.Fatalf("misses = %d after re-read, want 7", st.CacheMisses)
	}
	// A roomy cache serves repeats from memory.
	s2 := newTestStore(t)
	ids, rows := batch(1, 50)
	mustFreeze(t, s2, ids, rows)
	for i := 0; i < 10; i++ {
		s2.Get(25)
	}
	if st := s2.Stats(); st.CacheMisses != 1 || st.CacheHits != 9 {
		t.Fatalf("hits=%d misses=%d, want 9/1", st.CacheHits, st.CacheMisses)
	}
}

// Compaction merges a full level into one next-level segment, purging
// tombstoned rows for good; survivors stay readable throughout.
func TestCompactionMergesAndPurges(t *testing.T) {
	s := newTestStore(t)
	s.Fanout = 2
	s.BlockRows = 8
	for b := 0; b < 4; b++ {
		ids, rows := batch(b*100+1, 20)
		mustFreeze(t, s, ids, rows)
	}
	s.MarkDeleted(5)
	s.MarkDeleted(105)
	merged, err := s.CompactAll()
	if err != nil {
		t.Fatal(err)
	}
	if merged == 0 {
		t.Fatal("nothing compacted")
	}
	st := s.Stats()
	if st.Segments != 1 || st.MaxLevel < 2 || st.Compactions == 0 || st.CompactBytes <= 0 {
		t.Fatalf("post-compaction stats = %+v", st)
	}
	// Purged rows gone, survivors intact, order preserved.
	var seen []rel.RowID
	s.ScanLive(func(rid rel.RowID, _ rel.Row) bool { seen = append(seen, rid); return true })
	if len(seen) != 78 {
		t.Fatalf("%d live rows after compaction, want 78", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("compacted scan out of rid order")
		}
	}
	for _, rid := range []rel.RowID{5, 105} {
		if _, ok, _ := s.Get(rid); ok {
			t.Fatalf("purged rid %d still visible", rid)
		}
	}
	if row, ok, _ := s.Get(301); !ok || row[0].I != 301 {
		t.Fatal("survivor lost in merge")
	}
	// Deletes keep working against the merged segment.
	if ok, err := s.MarkDeleted(301); err != nil || !ok {
		t.Fatalf("delete after compaction = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get(301); ok {
		t.Fatal("post-compaction tombstone ignored")
	}
}

// A merge whose inputs are fully tombstoned produces no output segment.
func TestCompactionDropsAllDeadInputs(t *testing.T) {
	s := newTestStore(t)
	s.Fanout = 2
	for b := 0; b < 2; b++ {
		ids, rows := batch(b*10+1, 3)
		mustFreeze(t, s, ids, rows)
		for _, id := range ids {
			s.MarkDeleted(id)
		}
	}
	if _, err := s.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if n := s.NumSegments(); n != 0 {
		t.Fatalf("%d segments of pure tombstones survive", n)
	}
}

// The flat ablation (DisableColdCompaction) reproduces the old frozen
// tier: one whole-batch block per segment, no bloom or zones, no merging.
func TestFlatAblation(t *testing.T) {
	s := newTestStore(t)
	s.Flat = true
	s.BlockRows = 4 // ignored when flat
	for b := 0; b < 5; b++ {
		ids, rows := batch(b*100+1, 20)
		mustFreeze(t, s, ids, rows)
	}
	st := s.Stats()
	if st.Segments != 5 || st.Blocks != 5 {
		t.Fatalf("flat stats = %+v, want one block per segment", st)
	}
	if n, err := s.CompactAll(); err != nil || n != 0 {
		t.Fatalf("flat compaction = (%d,%v), want no-op", n, err)
	}
	if row, ok, _ := s.Get(215); !ok || row[0].I != 215 {
		t.Fatal("flat segment unreadable")
	}
	if _, ok, _ := s.Get(50); ok {
		t.Fatal("gap rid found")
	}
	if st := s.Stats(); st.BloomNegatives != 0 {
		t.Fatalf("flat store reported %d bloom negatives", st.BloomNegatives)
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	s := newTestStore(t)
	n := 500
	ids := make([]rel.RowID, n)
	rows := make([]rel.Row, n)
	for i := 0; i < n; i++ {
		ids[i] = rel.RowID(i + 1)
		rows[i] = rel.Row{rel.Int(int64(i)), rel.Str("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")}
	}
	mustFreeze(t, s, ids, rows)
	rawEstimate := int64(n * (8 + 40))
	if s.CompressedBytes() >= rawEstimate/2 {
		t.Fatalf("compressed %d bytes, raw estimate %d: compression ineffective", s.CompressedBytes(), rawEstimate)
	}
}

// VerifySegmentBytes must accept every segment the store writes and
// reject any single-byte corruption of it.
func TestVerifySegmentBytes(t *testing.T) {
	bf, err := storage.OpenBlockFile(filepath.Join(t.TempDir(), "frozen.blocks"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	s := NewStore(bf, testSchema())
	s.BlockRows = 8
	ids, rows := batch(1, 30)
	if err := s.Freeze(ids, rows); err != nil {
		t.Fatal(err)
	}
	m := s.Export()[0]
	data, err := bf.ReadBlock(m.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySegmentBytes(data, m); err != nil {
		t.Fatalf("pristine segment rejected: %v", err)
	}
	for _, off := range []int{0, 10, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xFF
		if VerifySegmentBytes(bad, m) == nil {
			t.Fatalf("corruption at byte %d undetected", off)
		}
	}
	short := m
	short.NumRows++
	if VerifySegmentBytes(data, short) == nil {
		t.Fatal("manifest/header row-count disagreement undetected")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Epoch: 7,
		Tables: []TableManifest{
			{Table: "kv", Segments: []SegmentMeta{
				{Level: 1, FirstRID: 1, LastRID: 90, NumRows: 80,
					Ref: storage.BlockRef{Offset: 8, Len: 4096}, HeaderLen: 128, CRC: 0xDEAD,
					Deleted: []rel.RowID{4, 17}},
				{Level: 0, Flat: true, FirstRID: 100, LastRID: 120, NumRows: 21,
					Ref: storage.BlockRef{Offset: 4104, Len: 512}, HeaderLen: 64, CRC: 0xBEEF},
			}},
			{Table: "empty"},
		},
	}
	data := EncodeManifest(m)
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", m) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
	for _, off := range []int{0, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, err := DecodeManifest(bad); err == nil {
			t.Fatalf("manifest corruption at byte %d undetected", off)
		}
	}
	if _, err := DecodeManifest(data[:3]); err == nil {
		t.Fatal("truncated manifest accepted")
	}
	// Out-of-order segments rejected.
	bad := &Manifest{Tables: []TableManifest{{Table: "t", Segments: []SegmentMeta{
		{FirstRID: 100, LastRID: 200, NumRows: 1, Ref: storage.BlockRef{Len: 1}, HeaderLen: 1},
		{FirstRID: 1, LastRID: 50, NumRows: 1, Ref: storage.BlockRef{Len: 1}, HeaderLen: 1},
	}}}}
	if _, err := DecodeManifest(EncodeManifest(bad)); err == nil {
		t.Fatal("out-of-order manifest accepted")
	}
}

func BenchmarkFrozenGet(b *testing.B) {
	bf, _ := storage.OpenBlockFile(filepath.Join(b.TempDir(), "f.blocks"), nil)
	defer bf.Close()
	s := NewStore(bf, testSchema())
	ids, rows := batch(1, 1000)
	s.Freeze(ids, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rel.RowID(i%1000 + 1))
	}
}
