// Package frozen implements the Data Block File layer (§5.2): long-cold
// data compressed into immutable blocks, primarily serving analytical
// scans while keeping OLTP table scans from warming the buffer pool.
//
// A block is a run of consecutive leaf pages' rows — row_id order is
// preserved — serialized and DEFLATE-compressed into the append-only block
// file. Blocks are immutable on disk: updates and deletes are out-of-place
// (§5.2 case 3) — the row is marked deleted in the block's in-memory
// tombstone set and, for updates/warming, re-inserted into hot storage with
// a fresh row_id by the engine, which also refreshes secondary indexes.
// Tombstones are not persisted here; recovery replays them from the WAL.
//
// Each block counts its reads; once a block exceeds the warm threshold the
// engine extracts its surviving rows back into hot storage ("frequently
// accessed frozen pages ... are marked as deleted and reinserted").
// A small decompression cache (FIFO over blocks) bounds repeated-scan cost.
package frozen

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"phoebedb/internal/pax"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

// DefaultWarmReadThreshold is the per-block read count after which the
// engine should warm the block back into hot storage.
const DefaultWarmReadThreshold = 1024

// blockData is a decompressed block image.
type blockData struct {
	ids  []rel.RowID
	rows *pax.Page
}

// Block is one immutable frozen run.
type Block struct {
	FirstRID, LastRID rel.RowID
	NumRows           int
	ref               storage.BlockRef

	mu      sync.Mutex
	deleted map[rel.RowID]bool
	reads   atomic.Uint32
	cache   atomic.Pointer[blockData]
}

// Reads returns the block's access count.
func (b *Block) Reads() uint32 { return b.reads.Load() }

// Store manages one table's frozen blocks.
type Store struct {
	bf            *storage.BlockFile
	schema        *rel.Schema
	WarmThreshold uint32

	mu     sync.RWMutex
	blocks []*Block // ascending FirstRID

	cacheMu  sync.Mutex
	cacheQ   []*Block
	cacheCap int
}

// NewStore creates a frozen store over the block file.
func NewStore(bf *storage.BlockFile, schema *rel.Schema) *Store {
	return &Store{bf: bf, schema: schema, WarmThreshold: DefaultWarmReadThreshold, cacheCap: 4}
}

// NumBlocks returns the block count.
func (s *Store) NumBlocks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// MaxRID returns the largest frozen row_id (0 if no blocks).
func (s *Store) MaxRID() rel.RowID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return 0
	}
	return s.blocks[len(s.blocks)-1].LastRID
}

// Freeze compresses the rows (ascending row_ids, all greater than any
// frozen so far) into a new block.
func (s *Store) Freeze(ids []rel.RowID, rows []rel.Row) (*Block, error) {
	if len(ids) == 0 || len(ids) != len(rows) {
		return nil, fmt.Errorf("frozen: bad freeze batch (%d ids, %d rows)", len(ids), len(rows))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return nil, fmt.Errorf("frozen: row_ids not ascending at %d", i)
		}
	}
	if max := s.MaxRID(); ids[0] <= max {
		return nil, fmt.Errorf("frozen: row_id %d overlaps frozen range (max %d)", ids[0], max)
	}
	page := pax.NewPage(s.schema, len(ids))
	for _, r := range rows {
		if _, err := page.Append(r); err != nil {
			return nil, err
		}
	}
	// Serialize: count, ids, pax image; then DEFLATE.
	var raw []byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(ids)))
	raw = append(raw, b8[:4]...)
	for _, id := range ids {
		binary.LittleEndian.PutUint64(b8[:], uint64(id))
		raw = append(raw, b8[:]...)
	}
	raw = page.Serialize(raw)
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	ref, err := s.bf.AppendBlock(comp.Bytes())
	if err != nil {
		return nil, err
	}
	blk := &Block{
		FirstRID: ids[0],
		LastRID:  ids[len(ids)-1],
		NumRows:  len(ids),
		ref:      ref,
		deleted:  make(map[rel.RowID]bool),
	}
	s.mu.Lock()
	s.blocks = append(s.blocks, blk)
	s.mu.Unlock()
	return blk, nil
}

// blockFor routes a row_id to its block (nil if outside all ranges).
func (s *Store) blockFor(rid rel.RowID) *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].LastRID >= rid })
	if i == len(s.blocks) || s.blocks[i].FirstRID > rid {
		return nil
	}
	return s.blocks[i]
}

func (s *Store) load(b *Block) (*blockData, error) {
	if d := b.cache.Load(); d != nil {
		return d, nil
	}
	comp, err := s.bf.ReadBlock(b.ref)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
	if err != nil {
		return nil, fmt.Errorf("frozen: decompress block at %d: %w", b.ref.Offset, err)
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("frozen: truncated block")
	}
	n := int(binary.LittleEndian.Uint32(raw[:4]))
	off := 4
	if len(raw) < off+8*n {
		return nil, fmt.Errorf("frozen: truncated block ids")
	}
	d := &blockData{ids: make([]rel.RowID, n)}
	for i := 0; i < n; i++ {
		d.ids[i] = rel.RowID(binary.LittleEndian.Uint64(raw[off : off+8]))
		off += 8
	}
	page, err := pax.Deserialize(s.schema, n, raw[off:])
	if err != nil {
		return nil, err
	}
	d.rows = page
	b.cache.Store(d)
	// FIFO cache bound across blocks.
	s.cacheMu.Lock()
	s.cacheQ = append(s.cacheQ, b)
	if len(s.cacheQ) > s.cacheCap {
		evict := s.cacheQ[0]
		s.cacheQ = s.cacheQ[1:]
		if evict != b {
			evict.cache.Store(nil)
		}
	}
	s.cacheMu.Unlock()
	return d, nil
}

// Get returns the frozen row, if present and not deleted. The bool reports
// presence.
func (s *Store) Get(rid rel.RowID) (rel.Row, bool, error) {
	b := s.blockFor(rid)
	if b == nil {
		return nil, false, nil
	}
	b.reads.Add(1)
	b.mu.Lock()
	del := b.deleted[rid]
	b.mu.Unlock()
	if del {
		return nil, false, nil
	}
	d, err := s.load(b)
	if err != nil {
		return nil, false, err
	}
	i := sort.Search(len(d.ids), func(i int) bool { return d.ids[i] >= rid })
	if i == len(d.ids) || d.ids[i] != rid {
		return nil, false, nil
	}
	return d.rows.Row(i), true, nil
}

// MarkDeleted tombstones a frozen row (out-of-place delete/update). It
// reports whether the row existed and was live.
func (s *Store) MarkDeleted(rid rel.RowID) (bool, error) {
	b := s.blockFor(rid)
	if b == nil {
		return false, nil
	}
	d, err := s.load(b)
	if err != nil {
		return false, err
	}
	i := sort.Search(len(d.ids), func(i int) bool { return d.ids[i] >= rid })
	if i == len(d.ids) || d.ids[i] != rid {
		return false, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.deleted[rid] {
		return false, nil
	}
	b.deleted[rid] = true
	return true, nil
}

// Undelete clears a tombstone (rollback of a warming transaction).
func (s *Store) Undelete(rid rel.RowID) {
	b := s.blockFor(rid)
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.deleted, rid)
	b.mu.Unlock()
}

// ShouldWarm reports whether the row's block has crossed the read
// threshold (§5.2 case 3).
func (s *Store) ShouldWarm(rid rel.RowID) bool {
	b := s.blockFor(rid)
	return b != nil && b.reads.Load() >= s.WarmThreshold
}

// ExtractLive returns the block's surviving rows (for re-insertion into
// hot storage) and tombstones them all. The block stays in place, fully
// dead, until a future block-file compaction.
func (s *Store) ExtractLive(rid rel.RowID) (ids []rel.RowID, rows []rel.Row, err error) {
	b := s.blockFor(rid)
	if b == nil {
		return nil, nil, nil
	}
	d, err := s.load(b)
	if err != nil {
		return nil, nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, id := range d.ids {
		if b.deleted[id] {
			continue
		}
		b.deleted[id] = true
		ids = append(ids, id)
		rows = append(rows, d.rows.Row(i))
	}
	b.reads.Store(0)
	return ids, rows, nil
}

// ScanLive streams every live frozen row in row_id order — the OLAP path.
// Scanning does not bump warm counters: per §5.2, "operations like table
// scans do not warm any data".
func (s *Store) ScanLive(fn func(rid rel.RowID, row rel.Row) bool) error {
	s.mu.RLock()
	blocks := append([]*Block(nil), s.blocks...)
	s.mu.RUnlock()
	for _, b := range blocks {
		d, err := s.load(b)
		if err != nil {
			return err
		}
		b.mu.Lock()
		dels := make(map[rel.RowID]bool, len(b.deleted))
		for k, v := range b.deleted {
			dels[k] = v
		}
		b.mu.Unlock()
		for i, id := range d.ids {
			if dels[id] {
				continue
			}
			if !fn(id, d.rows.Row(i)) {
				return nil
			}
		}
	}
	return nil
}

// CompressedBytes returns the block file size (diagnostics, Exp 4).
func (s *Store) CompressedBytes() int64 { return s.bf.Size() }

// BlockMeta is a frozen block's checkpoint record: its row range, its
// location in the (append-only, immutable) block file, and its tombstones.
type BlockMeta struct {
	FirstRID, LastRID rel.RowID
	NumRows           int
	Ref               storage.BlockRef
	Deleted           []rel.RowID
}

// Export captures the block directory for a checkpoint.
func (s *Store) Export() []BlockMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]BlockMeta, 0, len(s.blocks))
	for _, b := range s.blocks {
		m := BlockMeta{FirstRID: b.FirstRID, LastRID: b.LastRID, NumRows: b.NumRows, Ref: b.ref}
		b.mu.Lock()
		for rid, d := range b.deleted {
			if d {
				m.Deleted = append(m.Deleted, rid)
			}
		}
		b.mu.Unlock()
		sort.Slice(m.Deleted, func(i, j int) bool { return m.Deleted[i] < m.Deleted[j] })
		out = append(out, m)
	}
	return out
}

// Import rebuilds the block directory from a checkpoint export. The store
// must be empty; the block file must be the one the refs point into.
func (s *Store) Import(metas []BlockMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blocks) != 0 {
		return fmt.Errorf("frozen: Import on non-empty store")
	}
	for _, m := range metas {
		b := &Block{
			FirstRID: m.FirstRID,
			LastRID:  m.LastRID,
			NumRows:  m.NumRows,
			ref:      m.Ref,
			deleted:  make(map[rel.RowID]bool, len(m.Deleted)),
		}
		for _, rid := range m.Deleted {
			b.deleted[rid] = true
		}
		s.blocks = append(s.blocks, b)
	}
	return nil
}
