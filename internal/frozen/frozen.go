// Package frozen implements the Data Block File layer (§5.2) as a
// levelled cold store: long-cold rows are demoted into immutable,
// DEFLATE-compressed column-strip segments, primarily serving analytical
// scans and rare point reads while keeping OLTP table scans from warming
// the buffer pool.
//
// A segment is a run of consecutive rows — row_id order is preserved —
// cut into independently compressed blocks of ~DefaultBlockRows rows.
// Each segment carries a block directory, a bloom filter over its row_ids
// and per-column-strip zone maps (min/max), so a cold point read touches
// at most one segment (bloom negatives touch zero) and decompresses one
// block, not the whole segment. Freeze emits level-0 segments; a
// background compaction merges the oldest segments of a level into one
// next-level segment, purging tombstones — row_ids grow monotonically
// with freeze time, so per-level oldest-first merges keep every segment's
// rid range disjoint.
//
// Segments are immutable on disk: updates and deletes are out-of-place
// (§5.2 case 3) — the row is tombstoned in the segment's in-memory
// deleted set and, for updates/warming, re-inserted into hot storage with
// a fresh row_id by the engine. Tombstones become durable via the cold
// manifest written at checkpoint; between checkpoints recovery replays
// them from the WAL. Each block counts its reads; once a block crosses
// the warm threshold the engine extracts its surviving rows back into hot
// storage. A byte-bounded LRU over decompressed blocks bounds repeated-
// read cost.
package frozen

import (
	"container/list"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"phoebedb/internal/fault"
	"phoebedb/internal/pax"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

// DefaultWarmReadThreshold is the per-block read count after which the
// engine should warm the block back into hot storage.
const DefaultWarmReadThreshold = 1024

// DefaultCacheBytes bounds the decompressed-block LRU (raw bytes).
const DefaultCacheBytes = 4 << 20

// blockData is a decompressed block image.
type blockData struct {
	ids  []rel.RowID
	rows *pax.Page
}

// ColdStats is a snapshot of one store's cold-tier counters.
type ColdStats struct {
	Lookups        int64 // point reads routed to the cold tier
	SegmentsProbed int64 // lookups that consulted a segment block
	BloomNegatives int64 // lookups answered by the bloom filter alone
	CacheHits      int64
	CacheMisses    int64
	Compactions    int64
	FreezeBytes    int64 // compressed bytes appended by Freeze (level 0)
	CompactBytes   int64 // compressed bytes appended by compaction merges
	RawBytes       int64 // uncompressed bytes frozen (level 0)
	Segments       int64 // gauge
	Blocks         int64 // gauge
	MaxLevel       int64 // gauge
}

// Add accumulates b into s (gauges sum; MaxLevel takes the max).
func (s *ColdStats) Add(b ColdStats) {
	s.Lookups += b.Lookups
	s.SegmentsProbed += b.SegmentsProbed
	s.BloomNegatives += b.BloomNegatives
	s.CacheHits += b.CacheHits
	s.CacheMisses += b.CacheMisses
	s.Compactions += b.Compactions
	s.FreezeBytes += b.FreezeBytes
	s.CompactBytes += b.CompactBytes
	s.RawBytes += b.RawBytes
	s.Segments += b.Segments
	s.Blocks += b.Blocks
	if b.MaxLevel > s.MaxLevel {
		s.MaxLevel = b.MaxLevel
	}
}

type cacheKey struct {
	seg *segment
	idx int
}

type cacheEntry struct {
	key   cacheKey
	d     *blockData
	bytes int64
}

// Store manages one table's cold segments.
type Store struct {
	bf            *storage.BlockFile
	schema        *rel.Schema
	WarmThreshold uint32

	// Flat disables compaction, blooms and zone maps: Freeze emits one
	// whole-batch block per segment, reproducing the flat frozen tier
	// (the DisableColdCompaction ablation).
	Flat bool
	// CacheBytes bounds the decompressed-block LRU (0 = default).
	CacheBytes int64
	// Fanout is the per-level segment count that triggers a merge
	// (0 = DefaultFanout).
	Fanout int
	// BlockRows is the row count per compressed block (0 = default).
	BlockRows int

	mu   sync.RWMutex
	segs []*segment // ascending firstRID

	compactMu sync.Mutex // one merge at a time

	cacheMu    sync.Mutex
	cacheLRU   *list.List // front = most recent; values are *cacheEntry
	cacheMap   map[cacheKey]*list.Element
	cacheUsed  int64
	lookups    atomic.Int64
	segProbes  atomic.Int64
	bloomNeg   atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	compacts   atomic.Int64
	freezeByt  atomic.Int64
	compactByt atomic.Int64
	rawBytes   atomic.Int64
}

// NewStore creates a cold store over the block file.
func NewStore(bf *storage.BlockFile, schema *rel.Schema) *Store {
	return &Store{
		bf:            bf,
		schema:        schema,
		WarmThreshold: DefaultWarmReadThreshold,
		cacheLRU:      list.New(),
		cacheMap:      make(map[cacheKey]*list.Element),
	}
}

func (s *Store) cacheCapBytes() int64 {
	if s.CacheBytes > 0 {
		return s.CacheBytes
	}
	return DefaultCacheBytes
}

func (s *Store) fanout() int {
	if s.Fanout > 0 {
		return s.Fanout
	}
	return DefaultFanout
}

func (s *Store) blockRows() int {
	if s.BlockRows > 0 {
		return s.BlockRows
	}
	return DefaultBlockRows
}

// NumSegments returns the live segment count.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// NumBlocks returns the live segment count (legacy name).
func (s *Store) NumBlocks() int { return s.NumSegments() }

// MaxRID returns the largest frozen row_id (0 if no segments).
func (s *Store) MaxRID() rel.RowID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[len(s.segs)-1].lastRID
}

// Stats returns a counter snapshot.
func (s *Store) Stats() ColdStats {
	st := ColdStats{
		Lookups:        s.lookups.Load(),
		SegmentsProbed: s.segProbes.Load(),
		BloomNegatives: s.bloomNeg.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheMisses:    s.cacheMiss.Load(),
		Compactions:    s.compacts.Load(),
		FreezeBytes:    s.freezeByt.Load(),
		CompactBytes:   s.compactByt.Load(),
		RawBytes:       s.rawBytes.Load(),
	}
	s.mu.RLock()
	st.Segments = int64(len(s.segs))
	for _, g := range s.segs {
		st.Blocks += int64(len(g.blocks))
		if int64(g.level) > st.MaxLevel {
			st.MaxLevel = int64(g.level)
		}
	}
	s.mu.RUnlock()
	return st
}

// Freeze compresses the rows (ascending row_ids, all greater than any
// frozen so far) into a new level-0 segment.
func (s *Store) Freeze(ids []rel.RowID, rows []rel.Row) error {
	if len(ids) == 0 || len(ids) != len(rows) {
		return fmt.Errorf("frozen: bad freeze batch (%d ids, %d rows)", len(ids), len(rows))
	}
	if max := s.MaxRID(); ids[0] <= max {
		return fmt.Errorf("frozen: row_id %d overlaps frozen range (max %d)", ids[0], max)
	}
	blockRows := s.blockRows()
	if s.Flat {
		blockRows = len(ids) // one whole-batch block, the flat ablation
	}
	sb := newSegmentBuilder(s.schema, 0, s.Flat, blockRows)
	for i, id := range ids {
		if err := sb.add(id, rows[i]); err != nil {
			return err
		}
	}
	g, compBytes, err := s.appendSegment(sb)
	if err != nil {
		return err
	}
	s.freezeByt.Add(compBytes)
	s.rawBytes.Add(sb.rawTotal)
	s.mu.Lock()
	s.segs = append(s.segs, g)
	s.mu.Unlock()
	return nil
}

// appendSegment finishes the builder, appends the encoded segment to the
// block file (behind the frozen.segmentWrite failpoint) and returns the
// in-memory segment.
func (s *Store) appendSegment(sb *segmentBuilder) (*segment, int64, error) {
	data, hlen, err := sb.finish()
	if err != nil {
		return nil, 0, err
	}
	if err := fault.Eval(fault.FrozenSegmentWrite); err != nil {
		return nil, 0, fmt.Errorf("frozen: segment write: %w", err)
	}
	ref, err := s.bf.AppendBlock(data)
	if err != nil {
		return nil, 0, err
	}
	g, err := decodeSegmentHeader(data[:hlen])
	if err != nil {
		return nil, 0, fmt.Errorf("frozen: self-check of new segment: %w", err)
	}
	g.ref = ref
	g.headerLen = hlen
	g.crc = crc32.ChecksumIEEE(data)
	return g, int64(len(data)), nil
}

// segmentForLocked routes a row_id to its segment; caller holds s.mu.
func (s *Store) segmentForLocked(rid rel.RowID) *segment {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].lastRID >= rid })
	if i == len(s.segs) || s.segs[i].firstRID > rid {
		return nil
	}
	return s.segs[i]
}

// loadBlock returns a decompressed block, through the byte-bounded LRU.
func (s *Store) loadBlock(g *segment, bi int) (*blockData, error) {
	key := cacheKey{seg: g, idx: bi}
	s.cacheMu.Lock()
	if el, ok := s.cacheMap[key]; ok {
		s.cacheLRU.MoveToFront(el)
		d := el.Value.(*cacheEntry).d
		s.cacheMu.Unlock()
		s.cacheHits.Add(1)
		return d, nil
	}
	s.cacheMu.Unlock()
	s.cacheMiss.Add(1)
	comp, err := s.bf.ReadBlock(g.bodyRef(bi))
	if err != nil {
		return nil, err
	}
	ids, page, err := decompressBlock(s.schema, comp, g.blocks[bi].rawLen)
	if err != nil {
		return nil, fmt.Errorf("frozen: segment block at %d: %w", g.ref.Offset, err)
	}
	d := &blockData{ids: ids, rows: page}
	s.cacheMu.Lock()
	if _, ok := s.cacheMap[key]; !ok {
		el := s.cacheLRU.PushFront(&cacheEntry{key: key, d: d, bytes: int64(g.blocks[bi].rawLen)})
		s.cacheMap[key] = el
		s.cacheUsed += int64(g.blocks[bi].rawLen)
		cap := s.cacheCapBytes()
		for s.cacheUsed > cap && s.cacheLRU.Len() > 1 {
			back := s.cacheLRU.Back()
			e := back.Value.(*cacheEntry)
			s.cacheLRU.Remove(back)
			delete(s.cacheMap, e.key)
			s.cacheUsed -= e.bytes
		}
	}
	s.cacheMu.Unlock()
	return d, nil
}

// dropCached evicts every cached block of a segment (after compaction
// removes it from the directory).
func (s *Store) dropCached(g *segment) {
	s.cacheMu.Lock()
	for key, el := range s.cacheMap {
		if key.seg == g {
			s.cacheUsed -= el.Value.(*cacheEntry).bytes
			s.cacheLRU.Remove(el)
			delete(s.cacheMap, key)
		}
	}
	s.cacheMu.Unlock()
}

// Get returns the frozen row, if present and not deleted. The bool
// reports presence. Bloom-negative lookups return without touching any
// segment block.
func (s *Store) Get(rid rel.RowID) (rel.Row, bool, error) {
	s.lookups.Add(1)
	s.mu.RLock()
	g := s.segmentForLocked(rid)
	if g == nil {
		s.mu.RUnlock()
		return nil, false, nil
	}
	if g.filter != nil && !g.filter.mayContain(uint64(rid)) {
		s.mu.RUnlock()
		s.bloomNeg.Add(1)
		return nil, false, nil
	}
	bi := g.blockFor(rid)
	if bi < 0 {
		s.mu.RUnlock()
		return nil, false, nil
	}
	g.reads[bi].Add(1)
	g.mu.Lock()
	del := g.deleted[rid]
	g.mu.Unlock()
	s.mu.RUnlock()
	if del {
		return nil, false, nil
	}
	s.segProbes.Add(1)
	d, err := s.loadBlock(g, bi)
	if err != nil {
		return nil, false, err
	}
	i := sort.Search(len(d.ids), func(i int) bool { return d.ids[i] >= rid })
	if i == len(d.ids) || d.ids[i] != rid {
		return nil, false, nil
	}
	return d.rows.Row(i), true, nil
}

// MarkDeleted tombstones a frozen row (out-of-place delete/update). It
// reports whether the row existed and was live. The whole operation runs
// under the directory read-lock so a concurrent compaction swap cannot
// strand the tombstone on a retired segment.
func (s *Store) MarkDeleted(rid rel.RowID) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.segmentForLocked(rid)
	if g == nil {
		return false, nil
	}
	if g.filter != nil && !g.filter.mayContain(uint64(rid)) {
		return false, nil
	}
	bi := g.blockFor(rid)
	if bi < 0 {
		return false, nil
	}
	d, err := s.loadBlock(g, bi)
	if err != nil {
		return false, err
	}
	i := sort.Search(len(d.ids), func(i int) bool { return d.ids[i] >= rid })
	if i == len(d.ids) || d.ids[i] != rid {
		return false, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.deleted[rid] {
		return false, nil
	}
	g.deleted[rid] = true
	return true, nil
}

// Undelete clears a tombstone (rollback of a warming transaction).
func (s *Store) Undelete(rid rel.RowID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.segmentForLocked(rid)
	if g == nil {
		return
	}
	g.mu.Lock()
	delete(g.deleted, rid)
	g.mu.Unlock()
}

// ShouldWarm reports whether the row's block has crossed the read
// threshold (§5.2 case 3).
func (s *Store) ShouldWarm(rid rel.RowID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.segmentForLocked(rid)
	if g == nil {
		return false
	}
	bi := g.blockFor(rid)
	return bi >= 0 && g.reads[bi].Load() >= s.WarmThreshold
}

// ExtractLive returns the surviving rows of the block containing rid (for
// re-insertion into hot storage) and tombstones them. Warming is
// per-block: a hot key does not drag a whole multi-megabyte segment back
// into the buffer pool.
func (s *Store) ExtractLive(rid rel.RowID) (ids []rel.RowID, rows []rel.Row, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.segmentForLocked(rid)
	if g == nil {
		return nil, nil, nil
	}
	bi := g.blockFor(rid)
	if bi < 0 {
		return nil, nil, nil
	}
	d, err := s.loadBlock(g, bi)
	if err != nil {
		return nil, nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, id := range d.ids {
		if g.deleted[id] {
			continue
		}
		g.deleted[id] = true
		ids = append(ids, id)
		rows = append(rows, d.rows.Row(i))
	}
	g.reads[bi].Store(0)
	return ids, rows, nil
}

// snapshotDeleted copies the segment's tombstone set.
func (g *segment) snapshotDeleted() map[rel.RowID]bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.deleted) == 0 {
		return nil
	}
	dels := make(map[rel.RowID]bool, len(g.deleted))
	for k, v := range g.deleted {
		if v {
			dels[k] = v
		}
	}
	return dels
}

// ScanBlocks streams decompressed column-strip blocks in row_id order
// with a selection bitmap over live (non-tombstoned) slots — the
// vectorized cold-scan path: FilterFixed/AggState fold directly over the
// strips. Segments whose zone maps refute a predicate are skipped without
// I/O. fn must not retain ids/page/sel across calls; returning false
// stops the scan. Scanning does not bump warm counters: per §5.2,
// "operations like table scans do not warm any data".
func (s *Store) ScanBlocks(preds []rel.ColPred, fn func(ids []rel.RowID, page *pax.Page, sel pax.Sel) bool) error {
	s.mu.RLock()
	segs := append([]*segment(nil), s.segs...)
	s.mu.RUnlock()
	var sel pax.Sel
	for _, g := range segs {
		if zonesPrune(g.zones, preds) {
			continue
		}
		dels := g.snapshotDeleted()
		for bi := range g.blocks {
			d, err := s.loadBlock(g, bi)
			if err != nil {
				return err
			}
			sel = sel.Reset(len(d.ids))
			live := len(d.ids)
			if len(dels) > 0 {
				for i, id := range d.ids {
					if dels[id] {
						sel.Clear(i)
						live--
					}
				}
			}
			if live == 0 {
				continue
			}
			if !fn(d.ids, d.rows, sel) {
				return nil
			}
		}
	}
	return nil
}

// ScanLive streams every live frozen row in row_id order — the
// row-at-a-time path kept for index rebuilds and non-vectorized scans.
func (s *Store) ScanLive(fn func(rid rel.RowID, row rel.Row) bool) error {
	return s.ScanBlocks(nil, func(ids []rel.RowID, page *pax.Page, sel pax.Sel) bool {
		for i := range ids {
			if !sel.Has(i) {
				continue
			}
			if !fn(ids[i], page.Row(i)) {
				return false
			}
		}
		return true
	})
}

// Compact runs at most one merge: the lowest level holding at least
// Fanout segments has its oldest Fanout segments merged into one
// next-level segment, dropping tombstoned rows. Returns the number of
// segments merged (0 if nothing to do). One merge per call is the rate
// limit: the maintenance loop calls this between batches so foreground
// latency is unaffected.
func (s *Store) Compact() (int, error) {
	if s.Flat {
		return 0, nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	fanout := s.fanout()
	s.mu.RLock()
	var inputs []*segment
	levels := make(map[int][]*segment)
	minLevel := -1
	for _, g := range s.segs {
		levels[g.level] = append(levels[g.level], g)
		if len(levels[g.level]) >= fanout && (minLevel < 0 || g.level < minLevel) {
			minLevel = g.level
		}
	}
	if minLevel >= 0 {
		inputs = append(inputs, levels[minLevel][:fanout]...)
	}
	s.mu.RUnlock()
	if len(inputs) == 0 {
		return 0, nil
	}

	// Snapshot tombstones: rows dead now are purged from the merged
	// output; tombstones added while we merge are re-applied at swap.
	snaps := make([]map[rel.RowID]bool, len(inputs))
	for i, g := range inputs {
		snaps[i] = g.snapshotDeleted()
	}

	sb := newSegmentBuilder(s.schema, inputs[0].level+1, false, s.blockRows())
	rows := 0
	for i, g := range inputs {
		for bi := range g.blocks {
			comp, err := s.bf.ReadBlock(g.bodyRef(bi))
			if err != nil {
				return 0, err
			}
			ids, page, err := decompressBlock(s.schema, comp, g.blocks[bi].rawLen)
			if err != nil {
				return 0, err
			}
			for j, id := range ids {
				if snaps[i][id] {
					continue
				}
				if err := sb.add(id, page.Row(j)); err != nil {
					return 0, err
				}
				rows++
			}
		}
	}

	var merged *segment
	if rows > 0 {
		g, compBytes, err := s.appendSegment(sb)
		if err != nil {
			return 0, err
		}
		s.compactByt.Add(compBytes)
		merged = g
	}

	// frozen.compactMerge: crash here leaves the merged bytes as orphaned
	// garbage in the append-only block file; the directory (and the
	// manifest the next checkpoint would write) still reference the
	// intact input segments.
	if err := fault.Eval(fault.FrozenCompactMerge); err != nil {
		return 0, fmt.Errorf("frozen: compact merge: %w", err)
	}

	s.mu.Lock()
	// Re-apply tombstones added during the merge to the new segment.
	if merged != nil {
		for i, g := range inputs {
			g.mu.Lock()
			for rid, del := range g.deleted {
				if del && !snaps[i][rid] {
					merged.deleted[rid] = true
				}
			}
			g.mu.Unlock()
		}
	}
	out := s.segs[:0:0]
	replaced := false
	for _, g := range s.segs {
		if isInput(inputs, g) {
			if !replaced && merged != nil {
				out = append(out, merged)
			}
			replaced = true
			continue
		}
		out = append(out, g)
	}
	s.segs = out
	s.mu.Unlock()
	s.compacts.Add(1)
	for _, g := range inputs {
		s.dropCached(g)
	}
	return len(inputs), nil
}

func isInput(inputs []*segment, g *segment) bool {
	for _, in := range inputs {
		if in == g {
			return true
		}
	}
	return false
}

// CompactAll merges until no level is over its fanout. Returns the total
// number of segments merged.
func (s *Store) CompactAll() (int, error) {
	total := 0
	for {
		n, err := s.Compact()
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}

// CompressedBytes returns the block file size (diagnostics, Exp 4).
func (s *Store) CompressedBytes() int64 { return s.bf.Size() }

// Export captures the segment directory for a checkpoint manifest.
func (s *Store) Export() []SegmentMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SegmentMeta, 0, len(s.segs))
	for _, g := range s.segs {
		m := SegmentMeta{
			Level:     g.level,
			Flat:      g.flat,
			FirstRID:  g.firstRID,
			LastRID:   g.lastRID,
			NumRows:   g.numRows,
			Ref:       g.ref,
			HeaderLen: g.headerLen,
			CRC:       g.crc,
		}
		g.mu.Lock()
		for rid, d := range g.deleted {
			if d {
				m.Deleted = append(m.Deleted, rid)
			}
		}
		g.mu.Unlock()
		sort.Slice(m.Deleted, func(i, j int) bool { return m.Deleted[i] < m.Deleted[j] })
		out = append(out, m)
	}
	return out
}

// Import rebuilds the segment directory from a manifest. The store must
// be empty; the block file must be the one the refs point into. Each
// segment's header is read back and CRC-verified.
func (s *Store) Import(metas []SegmentMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) != 0 {
		return fmt.Errorf("frozen: Import on non-empty store")
	}
	for _, m := range metas {
		if m.HeaderLen <= 0 || int64(m.HeaderLen) > int64(m.Ref.Len) {
			return fmt.Errorf("frozen: manifest header length %d out of range", m.HeaderLen)
		}
		hdr, err := s.bf.ReadBlock(storage.BlockRef{Offset: m.Ref.Offset, Len: int32(m.HeaderLen)})
		if err != nil {
			return err
		}
		g, err := decodeSegmentHeader(hdr)
		if err != nil {
			return fmt.Errorf("frozen: import segment at %d: %w", m.Ref.Offset, err)
		}
		if g.firstRID != m.FirstRID || g.lastRID != m.LastRID || g.numRows != m.NumRows {
			return fmt.Errorf("frozen: segment at %d disagrees with manifest", m.Ref.Offset)
		}
		g.ref = m.Ref
		g.headerLen = m.HeaderLen
		g.crc = m.CRC
		for _, rid := range m.Deleted {
			g.deleted[rid] = true
		}
		if n := len(s.segs); n > 0 && g.firstRID <= s.segs[n-1].lastRID {
			return fmt.Errorf("frozen: manifest segments overlap at %d", g.firstRID)
		}
		s.segs = append(s.segs, g)
	}
	return nil
}
