package frozen

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

// The cold manifest is the durable segment directory: one record per
// table naming every live segment (location, level, row range, header
// length, whole-segment CRC) plus its persisted tombstones. Manifests are
// immutable, epoch-named files (cold.manifest.<epoch>) written inside the
// checkpoint quiesce window; the checkpoint image records the epoch and
// CRC, so the checkpoint's atomic rename is also the manifest swap commit
// point. Superseded segments stay in the append-only block file, which is
// what makes crash recovery trivial: whatever epoch the surviving
// checkpoint names is fully intact.
const (
	manifestMagic   uint32 = 0x50434D31 // "PCM1"
	manifestVersion uint32 = 1
)

// ManifestFileName returns the file name for a manifest epoch.
func ManifestFileName(epoch uint64) string {
	return fmt.Sprintf("cold.manifest.%d", epoch)
}

// SegmentMeta is one segment's manifest record.
type SegmentMeta struct {
	Level     int
	Flat      bool
	FirstRID  rel.RowID
	LastRID   rel.RowID
	NumRows   int
	Ref       storage.BlockRef
	HeaderLen int
	CRC       uint32 // crc32 (IEEE) of the full segment bytes
	Deleted   []rel.RowID
}

// TableManifest is one table's segment list, keyed by table name (stable
// across restarts, unlike numeric table ids).
type TableManifest struct {
	Table    string
	Segments []SegmentMeta
}

// Manifest is a full cold-tier directory snapshot.
type Manifest struct {
	Epoch  uint64
	Tables []TableManifest
}

// EncodeManifest serializes m with a crc32 trailer.
func EncodeManifest(m *Manifest) []byte {
	var out []byte
	var b8 [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		out = append(out, b8[:4]...)
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	putU32(manifestMagic)
	putU32(manifestVersion)
	putU64(m.Epoch)
	putU32(uint32(len(m.Tables)))
	for _, t := range m.Tables {
		putU32(uint32(len(t.Table)))
		out = append(out, t.Table...)
		putU32(uint32(len(t.Segments)))
		for _, s := range t.Segments {
			putU32(uint32(s.Level))
			if s.Flat {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			putU64(uint64(s.FirstRID))
			putU64(uint64(s.LastRID))
			putU32(uint32(s.NumRows))
			putU64(uint64(s.Ref.Offset))
			putU32(uint32(s.Ref.Len))
			putU32(uint32(s.HeaderLen))
			putU32(s.CRC)
			putU32(uint32(len(s.Deleted)))
			for _, rid := range s.Deleted {
				putU64(uint64(rid))
			}
		}
	}
	putU32(crc32.ChecksumIEEE(out))
	return out
}

// DecodeManifest parses and CRC-checks a manifest image.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("frozen: truncated manifest")
	}
	body := data[:len(data)-4]
	if got := crc32.ChecksumIEEE(body); got != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("frozen: manifest CRC mismatch")
	}
	buf := body
	fail := func(what string) error { return fmt.Errorf("frozen: truncated manifest: %s", what) }
	u32 := func() (uint32, bool) {
		if len(buf) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(buf) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
		return v, true
	}
	magic, ok := u32()
	if !ok || magic != manifestMagic {
		return nil, fmt.Errorf("frozen: bad manifest magic")
	}
	ver, ok := u32()
	if !ok || ver != manifestVersion {
		return nil, fmt.Errorf("frozen: unsupported manifest version %d", ver)
	}
	m := &Manifest{}
	var ok2 bool
	if m.Epoch, ok2 = u64(); !ok2 {
		return nil, fail("epoch")
	}
	nt, ok := u32()
	if !ok || nt > 1<<20 {
		return nil, fail("table count")
	}
	for ti := uint32(0); ti < nt; ti++ {
		nameLen, ok := u32()
		if !ok || int(nameLen) > len(buf) {
			return nil, fail("table name")
		}
		t := TableManifest{Table: string(buf[:nameLen])}
		buf = buf[nameLen:]
		ns, ok := u32()
		if !ok || ns > 1<<24 {
			return nil, fail("segment count")
		}
		for si := uint32(0); si < ns; si++ {
			var s SegmentMeta
			lv, ok := u32()
			if !ok || len(buf) < 1 {
				return nil, fail("segment level")
			}
			s.Level = int(lv)
			s.Flat = buf[0] == 1
			buf = buf[1:]
			first, ok1 := u64()
			last, ok2 := u64()
			nr, ok3 := u32()
			off, ok4 := u64()
			rlen, ok5 := u32()
			hlen, ok6 := u32()
			crc, ok7 := u32()
			nd, ok8 := u32()
			if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8) {
				return nil, fail("segment record")
			}
			s.FirstRID = rel.RowID(first)
			s.LastRID = rel.RowID(last)
			s.NumRows = int(nr)
			s.Ref = storage.BlockRef{Offset: int64(off), Len: int32(rlen)}
			s.HeaderLen = int(hlen)
			s.CRC = crc
			if s.FirstRID > s.LastRID || s.NumRows < 0 || s.Ref.Len < 0 || s.HeaderLen <= 0 {
				return nil, fmt.Errorf("frozen: manifest segment record invalid")
			}
			if nd > 1<<24 || len(buf) < int(nd)*8 {
				return nil, fail("tombstones")
			}
			for di := uint32(0); di < nd; di++ {
				rid, _ := u64()
				s.Deleted = append(s.Deleted, rel.RowID(rid))
			}
			t.Segments = append(t.Segments, s)
		}
		if !sort.SliceIsSorted(t.Segments, func(i, j int) bool {
			return t.Segments[i].FirstRID < t.Segments[j].FirstRID
		}) {
			return nil, fmt.Errorf("frozen: manifest segments out of rid order for table %q", t.Table)
		}
		m.Tables = append(m.Tables, t)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("frozen: %d trailing manifest bytes", len(buf))
	}
	return m, nil
}
