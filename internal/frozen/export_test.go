package frozen

import (
	"testing"

	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

func TestExportImportRoundTrip(t *testing.T) {
	bf, err := storage.OpenBlockFile(t.TempDir()+"/blocks", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	src := NewStore(bf, testSchema())
	ids1, rows1 := batch(1, 10)
	src.Freeze(ids1, rows1)
	ids2, rows2 := batch(20, 5)
	src.Freeze(ids2, rows2)
	src.MarkDeleted(3)
	src.MarkDeleted(22)

	metas := src.Export()
	if len(metas) != 2 {
		t.Fatalf("exported %d blocks", len(metas))
	}
	if len(metas[0].Deleted) != 1 || metas[0].Deleted[0] != 3 {
		t.Fatalf("block 0 deleted = %v", metas[0].Deleted)
	}

	// Import over the same block file (checkpoint recovery path).
	dst := NewStore(bf, testSchema())
	if err := dst.Import(metas); err != nil {
		t.Fatal(err)
	}
	if dst.NumBlocks() != 2 || dst.MaxRID() != 24 {
		t.Fatalf("imported = %d blocks, max %d", dst.NumBlocks(), dst.MaxRID())
	}
	// Live row reads back; tombstones survived.
	row, ok, err := dst.Get(5)
	if err != nil || !ok || row[0].I != 5 {
		t.Fatalf("Get(5) = (%v,%v,%v)", row, ok, err)
	}
	if _, ok, _ := dst.Get(3); ok {
		t.Fatal("tombstone lost on import")
	}
	if _, ok, _ := dst.Get(22); ok {
		t.Fatal("tombstone in block 2 lost on import")
	}
	// Import into a non-empty store is rejected.
	if err := dst.Import(metas); err == nil {
		t.Fatal("import into non-empty store accepted")
	}
}

func TestExportEmptyStore(t *testing.T) {
	bf, _ := storage.OpenBlockFile(t.TempDir()+"/blocks", nil)
	defer bf.Close()
	s := NewStore(bf, testSchema())
	if metas := s.Export(); len(metas) != 0 {
		t.Fatalf("empty export = %v", metas)
	}
	if err := s.Import(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(rel.RowID(1)); ok {
		t.Fatal("phantom row")
	}
}
