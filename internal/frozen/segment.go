package frozen

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"phoebedb/internal/pax"
	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

// Segment on-disk format ("PCS1"): a self-describing run of sorted cold
// rows stored as independently compressed column-strip blocks.
//
//	magic u32 | version u32 | level u32 | flags u8 | numRows u32 | numBlocks u32
//	per block: firstRID u64 | lastRID u64 | numRows u32 | rawLen u32 | compOff u32 | compLen u32
//	bloomPresent u8 [ bloom: hashes u32, numWords u32, words u64[] ]
//	zonesPresent u8 [ numZones u16, per zone: col u16, kind u8, min u64, max u64 ]
//	headerCRC u32
//	body: concatenated DEFLATE blocks, each raw = count u32, ids u64[], pax image
//
// compOff is relative to the body start (header end), so a point read
// issues one small sub-range read of exactly the block it needs. The
// header CRC covers everything before it; the whole-segment CRC recorded
// in the manifest covers header+body and is what backup verification
// checks.
const (
	segmentMagic   uint32 = 0x50435331 // "PCS1"
	segmentVersion uint32 = 1

	segFlagFlat byte = 1 << 0 // flat ablation segment: one block, no bloom/zones
)

// DefaultBlockRows is the row count per compressed block inside a segment:
// small enough that a point read decompresses a few tens of KB, large
// enough that flate still finds redundancy and scans amortize the per-
// block directory walk.
const DefaultBlockRows = 512

// DefaultFanout is the per-level segment count that triggers a merge into
// the next level.
const DefaultFanout = 4

func errTruncated(what string) error {
	return fmt.Errorf("frozen: truncated segment: %s", what)
}

// zone is a per-column-strip min/max summary. Only fixed-width columns
// carry zones; min/max hold the raw 8-byte minipage encoding interpreted
// by kind.
type zone struct {
	col  uint16
	kind rel.Type
	min  uint64
	max  uint64
}

// prunes reports whether the predicate provably rejects every row whose
// column value lies within the zone.
func (z zone) prunes(p rel.ColPred) bool {
	switch z.kind {
	case rel.TInt64:
		if p.Val.Kind != rel.TInt64 {
			return false
		}
		return prunesOrdered(int64(z.min), int64(z.max), p.Val.I, p.Op)
	case rel.TFloat64:
		if p.Val.Kind != rel.TFloat64 {
			return false
		}
		return prunesOrdered(math.Float64frombits(z.min), math.Float64frombits(z.max), p.Val.F, p.Op)
	}
	return false
}

func prunesOrdered[T int64 | float64](min, max, v T, op rel.CmpOp) bool {
	switch op {
	case rel.CmpEq:
		return v < min || v > max
	case rel.CmpNe:
		return min == v && max == v
	case rel.CmpLt:
		return min >= v
	case rel.CmpLe:
		return min > v
	case rel.CmpGt:
		return max <= v
	case rel.CmpGe:
		return max < v
	}
	return false
}

// zonesPrune reports whether any predicate alone rejects the whole zone
// range (predicates are conjunctive).
func zonesPrune(zones []zone, preds []rel.ColPred) bool {
	if len(zones) == 0 || len(preds) == 0 {
		return false
	}
	for _, p := range preds {
		for _, z := range zones {
			if int(z.col) == p.Col && z.prunes(p) {
				return true
			}
		}
	}
	return false
}

// segBlock is one compressed block's directory entry.
type segBlock struct {
	firstRID rel.RowID
	lastRID  rel.RowID
	numRows  uint32
	rawLen   uint32
	compOff  uint32
	compLen  uint32
}

// segment is an immutable on-disk run plus its mutable read-side state
// (tombstones, per-block warm counters).
type segment struct {
	firstRID  rel.RowID
	lastRID   rel.RowID
	numRows   int
	level     int
	flat      bool
	ref       storage.BlockRef // whole segment: header + body
	headerLen int
	crc       uint32 // whole-segment CRC (manifest / backup verification)
	blocks    []segBlock
	filter    *bloom
	zones     []zone

	reads []atomic.Uint32 // per block, drives warming

	mu      sync.Mutex
	deleted map[rel.RowID]bool
}

// blockFor locates the block holding rid, or -1.
func (g *segment) blockFor(rid rel.RowID) int {
	lo, hi := 0, len(g.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.blocks[mid].lastRID < rid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(g.blocks) || g.blocks[lo].firstRID > rid {
		return -1
	}
	return lo
}

// bodyRef returns the sub-range BlockRef of block i's compressed bytes.
func (g *segment) bodyRef(i int) storage.BlockRef {
	b := g.blocks[i]
	return storage.BlockRef{
		Offset: g.ref.Offset + int64(g.headerLen) + int64(b.compOff),
		Len:    int32(b.compLen),
	}
}

// --- Builder -----------------------------------------------------------------

// segmentBuilder accumulates rows in rid order and emits one encoded
// segment: blocks are cut every blockRows rows, each compressed
// independently; bloom and zone summaries accumulate across all rows.
type segmentBuilder struct {
	schema    *rel.Schema
	level     int
	flat      bool
	blockRows int

	ids    []rel.RowID // all rids, for the bloom filter
	blocks []segBlock
	body   bytes.Buffer

	curIDs  []rel.RowID
	curPage *pax.Page

	zones    []zone
	zoneInit bool
	rawTotal int64
}

func newSegmentBuilder(schema *rel.Schema, level int, flat bool, blockRows int) *segmentBuilder {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	return &segmentBuilder{schema: schema, level: level, flat: flat, blockRows: blockRows}
}

func (sb *segmentBuilder) add(id rel.RowID, row rel.Row) error {
	if n := len(sb.ids); n > 0 && id <= sb.ids[n-1] {
		return fmt.Errorf("frozen: row_ids not ascending (%d after %d)", id, sb.ids[n-1])
	}
	if sb.curPage == nil {
		sb.curPage = pax.NewPage(sb.schema, sb.blockRows)
		sb.curIDs = sb.curIDs[:0]
	}
	if _, err := sb.curPage.Append(row); err != nil {
		return err
	}
	sb.curIDs = append(sb.curIDs, id)
	sb.ids = append(sb.ids, id)
	if !sb.flat {
		sb.foldZones(row)
	}
	if !sb.flat && sb.curPage.Len() >= sb.blockRows {
		return sb.flushBlock()
	}
	return nil
}

func (sb *segmentBuilder) foldZones(row rel.Row) {
	if !sb.zoneInit {
		sb.zoneInit = true
		for ci, c := range sb.schema.Cols {
			if c.Type.FixedWidth() <= 0 {
				continue
			}
			sb.zones = append(sb.zones, zone{col: uint16(ci), kind: c.Type, min: rawBits(row[ci]), max: rawBits(row[ci])})
		}
		return
	}
	for i := range sb.zones {
		z := &sb.zones[i]
		v := rawBits(row[int(z.col)])
		if zoneLess(z.kind, v, z.min) {
			z.min = v
		}
		if zoneLess(z.kind, z.max, v) {
			z.max = v
		}
	}
}

func rawBits(v rel.Value) uint64 {
	if v.Kind == rel.TFloat64 {
		return math.Float64bits(v.F)
	}
	return uint64(v.I)
}

func zoneLess(kind rel.Type, a, b uint64) bool {
	if kind == rel.TFloat64 {
		return math.Float64frombits(a) < math.Float64frombits(b)
	}
	return int64(a) < int64(b)
}

func (sb *segmentBuilder) flushBlock() error {
	if sb.curPage == nil || sb.curPage.Len() == 0 {
		return nil
	}
	n := sb.curPage.Len()
	raw := make([]byte, 0, 4+8*n+sb.curPage.SerializedSize())
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(n))
	raw = append(raw, b8[:4]...)
	for _, id := range sb.curIDs {
		binary.LittleEndian.PutUint64(b8[:], uint64(id))
		raw = append(raw, b8[:]...)
	}
	raw = sb.curPage.Serialize(raw)

	compOff := sb.body.Len()
	fw, err := flate.NewWriter(&sb.body, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := fw.Write(raw); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	sb.rawTotal += int64(len(raw))
	sb.blocks = append(sb.blocks, segBlock{
		firstRID: sb.curIDs[0],
		lastRID:  sb.curIDs[n-1],
		numRows:  uint32(n),
		rawLen:   uint32(len(raw)),
		compOff:  uint32(compOff),
		compLen:  uint32(sb.body.Len() - compOff),
	})
	sb.curPage = nil
	sb.curIDs = nil
	return nil
}

// finish encodes the full segment. Returns the segment bytes and the
// header length (everything before the block body).
func (sb *segmentBuilder) finish() (data []byte, headerLen int, err error) {
	if err := sb.flushBlock(); err != nil {
		return nil, 0, err
	}
	if len(sb.ids) == 0 {
		return nil, 0, fmt.Errorf("frozen: empty segment")
	}

	var hdr []byte
	var b8 [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		hdr = append(hdr, b8[:4]...)
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		hdr = append(hdr, b8[:]...)
	}
	putU32(segmentMagic)
	putU32(segmentVersion)
	putU32(uint32(sb.level))
	var flags byte
	if sb.flat {
		flags |= segFlagFlat
	}
	hdr = append(hdr, flags)
	putU32(uint32(len(sb.ids)))
	putU32(uint32(len(sb.blocks)))
	for _, b := range sb.blocks {
		putU64(uint64(b.firstRID))
		putU64(uint64(b.lastRID))
		putU32(b.numRows)
		putU32(b.rawLen)
		putU32(b.compOff)
		putU32(b.compLen)
	}
	if sb.flat {
		hdr = append(hdr, 0, 0) // no bloom, no zones
	} else {
		hdr = append(hdr, 1)
		bl := newBloom(len(sb.ids))
		for _, id := range sb.ids {
			bl.add(uint64(id))
		}
		hdr = bl.encode(hdr)
		hdr = append(hdr, 1)
		binary.LittleEndian.PutUint16(b8[:2], uint16(len(sb.zones)))
		hdr = append(hdr, b8[:2]...)
		for _, z := range sb.zones {
			binary.LittleEndian.PutUint16(b8[:2], z.col)
			hdr = append(hdr, b8[:2]...)
			hdr = append(hdr, byte(z.kind))
			putU64(z.min)
			putU64(z.max)
		}
	}
	putU32(crc32.ChecksumIEEE(hdr))
	headerLen = len(hdr)
	return append(hdr, sb.body.Bytes()...), headerLen, nil
}

// decodeSegmentHeader parses a segment header (hdr must be exactly the
// header bytes, CRC trailer included).
func decodeSegmentHeader(hdr []byte) (*segment, error) {
	if len(hdr) < 4 {
		return nil, errTruncated("header")
	}
	if got := crc32.ChecksumIEEE(hdr[:len(hdr)-4]); got != binary.LittleEndian.Uint32(hdr[len(hdr)-4:]) {
		return nil, fmt.Errorf("frozen: segment header CRC mismatch")
	}
	buf := hdr[:len(hdr)-4]
	need := func(n int) error {
		if len(buf) < n {
			return errTruncated("header field")
		}
		return nil
	}
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		return v
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
		return v
	}
	if err := need(4 + 4 + 4 + 1 + 4 + 4); err != nil {
		return nil, err
	}
	if u32() != segmentMagic {
		return nil, fmt.Errorf("frozen: bad segment magic")
	}
	if v := u32(); v != segmentVersion {
		return nil, fmt.Errorf("frozen: unsupported segment version %d", v)
	}
	g := &segment{deleted: make(map[rel.RowID]bool)}
	g.level = int(u32())
	flags := buf[0]
	buf = buf[1:]
	g.flat = flags&segFlagFlat != 0
	g.numRows = int(u32())
	nb := int(u32())
	if nb <= 0 || nb > 1<<20 {
		return nil, fmt.Errorf("frozen: bad segment block count %d", nb)
	}
	if err := need(nb * 32); err != nil {
		return nil, err
	}
	g.blocks = make([]segBlock, nb)
	for i := range g.blocks {
		b := &g.blocks[i]
		b.firstRID = rel.RowID(u64())
		b.lastRID = rel.RowID(u64())
		b.numRows = u32()
		b.rawLen = u32()
		b.compOff = u32()
		b.compLen = u32()
	}
	g.firstRID = g.blocks[0].firstRID
	g.lastRID = g.blocks[nb-1].lastRID
	if err := need(1); err != nil {
		return nil, err
	}
	hasBloom := buf[0] == 1
	buf = buf[1:]
	if hasBloom {
		var err error
		g.filter, buf, err = decodeBloom(buf)
		if err != nil {
			return nil, err
		}
	}
	if err := need(1); err != nil {
		return nil, err
	}
	hasZones := buf[0] == 1
	buf = buf[1:]
	if hasZones {
		if err := need(2); err != nil {
			return nil, err
		}
		nz := int(binary.LittleEndian.Uint16(buf[:2]))
		buf = buf[2:]
		if err := need(nz * 19); err != nil {
			return nil, err
		}
		g.zones = make([]zone, nz)
		for i := range g.zones {
			g.zones[i].col = binary.LittleEndian.Uint16(buf[:2])
			buf = buf[2:]
			g.zones[i].kind = rel.Type(buf[0])
			buf = buf[1:]
			g.zones[i].min = u64()
			g.zones[i].max = u64()
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("frozen: %d trailing header bytes", len(buf))
	}
	g.reads = make([]atomic.Uint32, nb)
	return g, nil
}

// decompressBlock expands one compressed block into (ids, page).
func decompressBlock(schema *rel.Schema, comp []byte, wantRaw uint32) ([]rel.RowID, *pax.Page, error) {
	raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
	if err != nil {
		return nil, nil, fmt.Errorf("frozen: decompress block: %w", err)
	}
	if wantRaw != 0 && uint32(len(raw)) != wantRaw {
		return nil, nil, fmt.Errorf("frozen: block raw length %d, want %d", len(raw), wantRaw)
	}
	if len(raw) < 4 {
		return nil, nil, errTruncated("block row count")
	}
	n := int(binary.LittleEndian.Uint32(raw[:4]))
	off := 4
	if n < 0 || len(raw) < off+8*n {
		return nil, nil, errTruncated("block ids")
	}
	ids := make([]rel.RowID, n)
	for i := 0; i < n; i++ {
		ids[i] = rel.RowID(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
	}
	if schema == nil {
		return ids, nil, nil
	}
	page, err := pax.Deserialize(schema, maxInt(n, 1), raw[off:])
	if err != nil {
		return nil, nil, err
	}
	if page.Len() != n {
		return nil, nil, fmt.Errorf("frozen: block pax rows %d, ids %d", page.Len(), n)
	}
	return ids, page, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// VerifySegmentBytes checks a raw segment image against its manifest
// record without needing the table schema: whole-segment CRC, header CRC
// and shape, block directory ordering, per-block decompression, row-id
// ordering, and bloom membership of every stored row id. Used by backup
// verification.
func VerifySegmentBytes(data []byte, m SegmentMeta) error {
	if int64(len(data)) != int64(m.Ref.Len) {
		return fmt.Errorf("frozen: segment length %d, manifest says %d", len(data), m.Ref.Len)
	}
	if crc := crc32.ChecksumIEEE(data); crc != m.CRC {
		return fmt.Errorf("frozen: segment CRC %#x, manifest says %#x", crc, m.CRC)
	}
	if m.HeaderLen <= 0 || m.HeaderLen > len(data) {
		return fmt.Errorf("frozen: bad manifest header length %d", m.HeaderLen)
	}
	g, err := decodeSegmentHeader(data[:m.HeaderLen])
	if err != nil {
		return err
	}
	if g.firstRID != m.FirstRID || g.lastRID != m.LastRID || g.numRows != m.NumRows ||
		g.level != m.Level || g.flat != m.Flat {
		return fmt.Errorf("frozen: segment header disagrees with manifest record")
	}
	body := data[m.HeaderLen:]
	total := 0
	var prev rel.RowID
	for i, b := range g.blocks {
		if b.firstRID > b.lastRID || (i > 0 && b.firstRID <= prev) {
			return fmt.Errorf("frozen: block %d rid range out of order", i)
		}
		prev = b.lastRID
		if int64(b.compOff)+int64(b.compLen) > int64(len(body)) {
			return fmt.Errorf("frozen: block %d overruns segment body", i)
		}
		ids, _, err := decompressBlock(nil, body[b.compOff:b.compOff+b.compLen], b.rawLen)
		if err != nil {
			return fmt.Errorf("frozen: block %d: %w", i, err)
		}
		if len(ids) != int(b.numRows) {
			return fmt.Errorf("frozen: block %d has %d rows, directory says %d", i, len(ids), b.numRows)
		}
		for j, id := range ids {
			if id < b.firstRID || id > b.lastRID || (j > 0 && id <= ids[j-1]) {
				return fmt.Errorf("frozen: block %d row id %d out of order/range", i, id)
			}
			if g.filter != nil && !g.filter.mayContain(uint64(id)) {
				return fmt.Errorf("frozen: bloom filter missing row id %d", id)
			}
		}
		total += len(ids)
	}
	for _, z := range g.zones {
		if zoneLess(z.kind, z.max, z.min) {
			return fmt.Errorf("frozen: zone map for col %d has min > max", z.col)
		}
	}
	if total != g.numRows {
		return fmt.Errorf("frozen: segment rows %d, header says %d", total, g.numRows)
	}
	return nil
}
