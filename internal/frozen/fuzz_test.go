package frozen

import (
	"testing"

	"phoebedb/internal/rel"
	"phoebedb/internal/storage"
)

// FuzzSegmentManifest throws arbitrary bytes at the manifest decoder: it
// must never panic, and anything it accepts must re-encode to an image
// that decodes to the same directory (no silent truncation or aliasing —
// a corrupted manifest that slips through would resurrect or lose cold
// segments at recovery).
func FuzzSegmentManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeManifest(&Manifest{}))
	f.Add(EncodeManifest(&Manifest{
		Epoch: 3,
		Tables: []TableManifest{
			{Table: "kv", Segments: []SegmentMeta{
				{Level: 0, FirstRID: 1, LastRID: 64, NumRows: 60,
					Ref: storage.BlockRef{Offset: 8, Len: 2048}, HeaderLen: 96, CRC: 0x1234,
					Deleted: []rel.RowID{7}},
				{Level: 1, Flat: true, FirstRID: 65, LastRID: 128, NumRows: 64,
					Ref: storage.BlockRef{Offset: 2056, Len: 1024}, HeaderLen: 80, CRC: 0x5678},
			}},
			{Table: "orders"},
		},
	}))
	long := EncodeManifest(&Manifest{Epoch: ^uint64(0), Tables: []TableManifest{
		{Table: "very-long-table-name-with-unicode-éè", Segments: []SegmentMeta{
			{FirstRID: 1, LastRID: 1, NumRows: 1, Ref: storage.BlockRef{Len: 1}, HeaderLen: 1},
		}},
	}})
	f.Add(long)
	// A few corruptions of a valid image as seeds.
	for _, off := range []int{0, 8, len(long) / 2, len(long) - 1} {
		bad := append([]byte(nil), long...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re := EncodeManifest(m)
		m2, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if m.Epoch != m2.Epoch || len(m.Tables) != len(m2.Tables) {
			t.Fatalf("roundtrip drift: %+v vs %+v", m, m2)
		}
		for i := range m.Tables {
			if m.Tables[i].Table != m2.Tables[i].Table ||
				len(m.Tables[i].Segments) != len(m2.Tables[i].Segments) {
				t.Fatalf("table %d drift", i)
			}
		}
	})
}
