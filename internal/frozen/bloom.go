package frozen

import "encoding/binary"

// bloom is a split block-less bloom filter over row_ids: k derived hash
// probes into one bit array. Segments are immutable, so the filter is
// built once at segment construction and never mutated afterwards; a
// negative answer lets a cold point read return without touching the
// segment's data blocks at all.
type bloom struct {
	words  []uint64
	hashes uint32
}

// bloomBitsPerKey sizes the filter: 10 bits/key ≈ 1% false positives
// with 7 hash probes.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	bits := n * bloomBitsPerKey
	return &bloom{words: make([]uint64, (bits+63)/64), hashes: bloomHashes}
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probes derives the double-hashing pair for key.
func probes(key uint64) (h1, h2 uint64) {
	h1 = mix64(key)
	h2 = mix64(key ^ 0x9e3779b97f4a7c15)
	return h1, h2 | 1 // odd stride visits every bit position
}

// add inserts key.
func (b *bloom) add(key uint64) {
	nbits := uint64(len(b.words)) * 64
	h1, h2 := probes(key)
	for i := uint32(0); i < b.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		b.words[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether key may have been added (no false negatives).
func (b *bloom) mayContain(key uint64) bool {
	if len(b.words) == 0 {
		return true
	}
	nbits := uint64(len(b.words)) * 64
	h1, h2 := probes(key)
	for i := uint32(0); i < b.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		if b.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// encode appends the filter's wire form: hash count, word count, words.
func (b *bloom) encode(dst []byte) []byte {
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], b.hashes)
	dst = append(dst, b8[:4]...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(b.words)))
	dst = append(dst, b8[:4]...)
	for _, w := range b.words {
		binary.LittleEndian.PutUint64(b8[:], w)
		dst = append(dst, b8[:]...)
	}
	return dst
}

// decodeBloom parses a filter from buf, returning the remainder.
func decodeBloom(buf []byte) (*bloom, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, errTruncated("bloom header")
	}
	hashes := binary.LittleEndian.Uint32(buf[:4])
	nw := int(binary.LittleEndian.Uint32(buf[4:8]))
	buf = buf[8:]
	if hashes == 0 || hashes > 32 || nw < 0 || len(buf) < nw*8 {
		return nil, nil, errTruncated("bloom words")
	}
	b := &bloom{words: make([]uint64, nw), hashes: hashes}
	for i := 0; i < nw; i++ {
		b.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return b, buf[nw*8:], nil
}
