// Package wal implements PhoebeDB's parallel write-ahead log with Remote
// Flush Avoidance (§8).
//
// Following the "Non-Force, Steal" principle, committed transactions need
// not have their data pages flushed, and dirty pages of uncommitted
// transactions may be written out — recovery replays the log.
//
// Unlike a traditional serialized log, PhoebeDB maintains one WAL writer
// per task slot, each with a private in-memory buffer and file. Every
// record carries two sequence numbers:
//
//   - GSN (Global Sequence Number): monotonically increasing but not
//     unique; establishes a cross-writer partial order. A writer's local
//     GSN advances to max(localGSN, pageGSN)+1 whenever it logs a change to
//     a page, so any two changes to the same page are GSN-ordered.
//   - LSN (Log Sequence Number): strictly increasing within one writer.
//
// Remote Flush Avoidance decouples commit from unrelated writers: a
// transaction that only touched pages last written by its own slot (or
// whose foreign writes are already durable) commits after flushing its own
// writer. Only when it observed an unflushed change by another slot does it
// wait for the remote flush horizon.
//
// Recovery merges all writer files, orders records by GSN (stable by
// writer, LSN), verifies checksums, truncates at the first torn record of
// each file, and hands the ordered stream to the engine for redo.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"phoebedb/internal/fault"
	"phoebedb/internal/metrics"
)

// ErrBroken reports a write to a failed log. After any flush or fsync
// error the durable prefix of the log is unknown, so the manager fails
// stop: every subsequent flush (and therefore every commit) errors until
// the engine is restarted and recovery re-establishes a consistent prefix
// — the same posture as PostgreSQL's PANIC on WAL fsync failure.
var ErrBroken = errors.New("wal: log writer failed; restart and recover")

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// RecInsert logs a tuple insert (payload: encoded row image).
	RecInsert RecordType = iota + 1
	// RecUpdate logs an in-place update (payload: after-image delta).
	RecUpdate
	// RecDelete logs a tuple delete.
	RecDelete
	// RecCommit marks a transaction commit.
	RecCommit
	// RecAbort marks a transaction abort.
	RecAbort
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("REC(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	Type    RecordType
	GSN     uint64
	LSN     uint64
	XID     uint64
	TableID uint32
	RowID   uint64
	Writer  int32 // filled during recovery
	Payload []byte
}

// recordHeaderSize is the fixed prefix: payloadLen(4) crc(4) type(1)
// gsn(8) lsn(8) xid(8) table(4) rowid(8).
const recordHeaderSize = 4 + 4 + 1 + 8 + 8 + 8 + 4 + 8

func encodeRecord(dst []byte, r *Record) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(r.Payload)))
	hdr[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(hdr[9:], r.GSN)
	binary.LittleEndian.PutUint64(hdr[17:], r.LSN)
	binary.LittleEndian.PutUint64(hdr[25:], r.XID)
	binary.LittleEndian.PutUint32(hdr[33:], r.TableID)
	binary.LittleEndian.PutUint64(hdr[37:], r.RowID)
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:])
	crc.Write(r.Payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	dst = append(dst, hdr[:]...)
	return append(dst, r.Payload...)
}

// decodeRecord parses one record from b. It returns the record, the number
// of bytes consumed, and false if b holds no complete, checksum-valid
// record (a torn tail).
func decodeRecord(b []byte) (Record, int, bool) {
	if len(b) < recordHeaderSize {
		return Record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b[0:]))
	total := recordHeaderSize + plen
	if len(b) < total {
		return Record{}, 0, false
	}
	want := binary.LittleEndian.Uint32(b[4:])
	crc := crc32.NewIEEE()
	crc.Write(b[8:recordHeaderSize])
	crc.Write(b[recordHeaderSize:total])
	if crc.Sum32() != want {
		return Record{}, 0, false
	}
	r := Record{
		Type:    RecordType(b[8]),
		GSN:     binary.LittleEndian.Uint64(b[9:]),
		LSN:     binary.LittleEndian.Uint64(b[17:]),
		XID:     binary.LittleEndian.Uint64(b[25:]),
		TableID: binary.LittleEndian.Uint32(b[33:]),
		RowID:   binary.LittleEndian.Uint64(b[37:]),
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), b[recordHeaderSize:total]...)
	}
	return r, total, true
}

// Writer is one task slot's private WAL stream.
type Writer struct {
	id  int
	mgr *Manager

	mu         sync.Mutex
	f          *os.File
	buf        []byte
	lsn        uint64
	bufferGSN  uint64 // highest GSN appended to buf (may be unflushed)
	flushedGSN atomic.Uint64
	// localGSN is the highest GSN assigned by this writer. Atomic rather
	// than owner-private: a remote commit's flushPast fast-forwards it
	// when it advances the flushed horizon past an empty buffer, so the
	// owner can never assign a GSN below an already-published horizon.
	localGSN atomic.Uint64
}

// ID returns the writer's slot id.
func (w *Writer) ID() int { return w.id }

// NextGSN advances the writer's local GSN clock past pageGSN and returns
// the new GSN (the LeanStore GSN rule: max(local, page)+1).
func (w *Writer) NextGSN(pageGSN uint64) uint64 {
	for {
		cur := w.localGSN.Load()
		next := cur + 1
		if pageGSN > cur {
			next = pageGSN + 1
		}
		if w.localGSN.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// raiseLocalGSN lifts the local GSN clock to at least g.
func (w *Writer) raiseLocalGSN(g uint64) {
	for {
		cur := w.localGSN.Load()
		if g <= cur || w.localGSN.CompareAndSwap(cur, g) {
			return
		}
	}
}

// AdvanceGSN fast-forwards the writer's GSN clock (and flushed horizon) to
// at least g. Recovery uses this so that post-restart records sort after
// every recovered record.
func (w *Writer) AdvanceGSN(g uint64) {
	w.raiseLocalGSN(g)
	w.mu.Lock()
	if g > w.bufferGSN {
		w.bufferGSN = g
	}
	w.mu.Unlock()
	if g > w.flushedGSN.Load() {
		w.flushedGSN.Store(g)
	}
}

// Append encodes r into the writer's buffer (not yet durable), assigning
// its LSN. r.GSN must already be set by the caller via NextGSN.
func (w *Writer) Append(r *Record) {
	w.mu.Lock()
	w.lsn++
	r.LSN = w.lsn
	w.buf = encodeRecord(w.buf, r)
	if r.GSN > w.bufferGSN {
		w.bufferGSN = r.GSN
	}
	w.mu.Unlock()
}

// Flush writes the buffered records to the file (fsync if the manager is in
// sync mode) and advances the writer's flushed-GSN horizon.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if w.mgr.broken.Load() {
		return ErrBroken
	}
	if len(w.buf) > 0 {
		if cut := fault.TornCut(fault.WALTornWrite, len(w.buf)); cut > 0 {
			// Simulate a crash tearing the flush: persist a prefix that
			// ends mid-record, then die. The buffer is left intact so a
			// racing flush cannot complete the write and acknowledge a
			// commit behind the "dead" process's back (the armed site
			// would tear that flush too).
			w.f.Write(w.buf[:len(w.buf)-cut])
			fault.Crash(fault.WALTornWrite)
		}
		n, err := w.f.Write(w.buf)
		if w.mgr.io != nil {
			w.mgr.io.WALWrite.Add(int64(n))
		}
		if err != nil {
			w.mgr.broken.Store(true)
			return fmt.Errorf("wal: writer %d flush: %w", w.id, err)
		}
		w.mgr.flushes.Add(1)
		w.buf = w.buf[:0]
		skipSync := false
		if ferr := fault.Eval(fault.WALPreSync); ferr != nil {
			if errors.Is(ferr, fault.ErrSkip) {
				skipSync = true // lost-durability run: pretend the fsync happened
			} else {
				w.mgr.broken.Store(true)
				return fmt.Errorf("wal: writer %d: %w", w.id, ferr)
			}
		}
		if w.mgr.syncOnFlush && !skipSync {
			if err := w.f.Sync(); err != nil {
				w.mgr.broken.Store(true)
				return fmt.Errorf("wal: writer %d sync: %w", w.id, err)
			}
		}
		if ferr := fault.Eval(fault.WALPostSync); ferr != nil {
			// The records are durable but the caller never learns it: the
			// acknowledgment is lost, not the data.
			w.mgr.broken.Store(true)
			return fmt.Errorf("wal: writer %d: %w", w.id, ferr)
		}
	}
	if w.bufferGSN > w.flushedGSN.Load() {
		w.flushedGSN.Store(w.bufferGSN)
	}
	return nil
}

// FlushedGSN returns the writer's durable GSN horizon.
func (w *Writer) FlushedGSN() uint64 { return w.flushedGSN.Load() }

// Manager owns the per-slot writers and the global flush horizon.
type Manager struct {
	dir         string
	syncOnFlush bool
	io          *metrics.IOCounters
	writers     []*Writer
	// broken latches the first flush/sync failure (fail-stop, see
	// ErrBroken).
	broken atomic.Bool
	// flushes counts device writes across all writers (buffer drains that
	// actually hit the file, not empty-buffer Flush calls).
	flushes atomic.Int64
}

// Broken reports whether the log has failed stop.
func (m *Manager) Broken() bool { return m.broken.Load() }

// Flushes returns the number of non-empty buffer drains across all writers.
func (m *Manager) Flushes() int64 { return m.flushes.Load() }

// Options configures a Manager.
type Options struct {
	// Dir is the directory holding the per-writer files (wal-<n>.log).
	Dir string
	// Writers is the number of task-slot writers.
	Writers int
	// SyncOnFlush issues fsync on every flush (the paper's "WAL sync
	// enabled" setting). Off by default in tests for speed.
	SyncOnFlush bool
	// IO receives write-volume accounting; may be nil.
	IO *metrics.IOCounters
}

// Open creates a Manager and its writer files.
func Open(opts Options) (*Manager, error) {
	if opts.Writers <= 0 {
		return nil, fmt.Errorf("wal: need at least one writer")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: opts.Dir, syncOnFlush: opts.SyncOnFlush, io: opts.IO}
	for i := 0; i < opts.Writers; i++ {
		f, err := os.OpenFile(m.writerPath(i), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.writers = append(m.writers, &Writer{id: i, mgr: m, f: f})
	}
	return m, nil
}

func (m *Manager) writerPath(i int) string {
	return filepath.Join(m.dir, fmt.Sprintf("wal-%04d.log", i))
}

// Writer returns the slot's writer.
func (m *Manager) Writer(slot int) *Writer { return m.writers[slot] }

// NumWriters returns the writer count.
func (m *Manager) NumWriters() int { return len(m.writers) }

// constraintGSN returns the writer's contribution to the global flush
// horizon: its flushed GSN while it has unflushed records, otherwise no
// constraint (everything it ever logged is durable).
func (w *Writer) constraintGSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bufferGSN > w.flushedGSN.Load() {
		return w.flushedGSN.Load()
	}
	return ^uint64(0)
}

// GlobalFlushedGSN returns the horizon below which every logged change is
// durable regardless of which writer logged it: the minimum flushed GSN
// over writers that still hold unflushed records.
func (m *Manager) GlobalFlushedGSN() uint64 {
	min := uint64(1<<64 - 1)
	for _, w := range m.writers {
		if g := w.constraintGSN(); g < min {
			min = g
		}
	}
	return min
}

// WaitRemoteFlush makes every change with GSN <= gsn durable. This is the
// expensive path RFA lets most transactions skip: it forces a flush on
// every writer lagging the horizon.
func (m *Manager) WaitRemoteFlush(gsn uint64) error {
	for _, w := range m.writers {
		if w.FlushedGSN() >= gsn {
			continue
		}
		// The writer may simply have nothing at that GSN; flushing is
		// still the only way to know its buffer is empty up to gsn.
		if err := w.flushPast(gsn); err != nil {
			return err
		}
	}
	return nil
}

// flushPast flushes the writer and advances its horizon to at least gsn
// when it has nothing buffered at or above it. The unlock is deferred so an
// injected crash mid-flush cannot strand the mutex and deadlock peers.
func (w *Writer) flushPast(gsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bufferGSN < gsn {
		// Everything this writer has even buffered is below gsn;
		// advance its horizon without touching the disk.
		w.raiseLocalGSN(gsn)
		w.bufferGSN = gsn
	}
	return w.flushLocked()
}

// FlushAll flushes every writer (used at shutdown and checkpoints).
func (m *Manager) FlushAll() error {
	for _, w := range m.writers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes all writer files.
func (m *Manager) Close() error {
	var first error
	for _, w := range m.writers {
		if w == nil || w.f == nil {
			continue
		}
		if err := w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := w.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- Remote Flush Avoidance tracking ----------------------------------------

// PageStamp is the per-page RFA bookkeeping: the GSN of the page's last
// logged change and the slot that made it. It is embedded in buffer-managed
// page frames and mutated under the page's exclusive latch.
type PageStamp struct {
	GSN        uint64
	LastWriter int32
}

// NeedsRemoteFlush evaluates the RFA rule for a transaction on slot `slot`
// about to modify a page with stamp ps: the transaction depends on a
// remote flush iff another slot wrote the page and that writer has not yet
// flushed past the page's GSN. lastWriterFlushed is that writer's durable
// horizon — the per-writer check is what makes RFA effective: once the
// previous writer committed (and therefore flushed), reusing its page
// creates no dependency even while unrelated writers lag.
func NeedsRemoteFlush(ps PageStamp, slot int, lastWriterFlushed uint64) bool {
	return ps.LastWriter >= 0 && int(ps.LastWriter) != slot && ps.GSN > lastWriterFlushed
}

// DecodeRecordAt parses one record from b starting at off. It returns the
// record, the bytes consumed, and false when no complete, checksum-valid
// record starts there (an incomplete tail). Exposed for WAL shipping.
func DecodeRecordAt(b []byte, off int) (Record, int, bool) {
	if off < 0 || off > len(b) {
		return Record{}, 0, false
	}
	return decodeRecord(b[off:])
}

// --- Recovery ----------------------------------------------------------------

// Recover reads every writer file in dir, drops torn tails, and returns the
// records ordered by (GSN, writer, LSN) for redo.
//
// A file whose tail fails to parse (a crash tore the final write, or a
// partial sector flipped bytes in it) is physically truncated back to its
// last checksum-valid record. Without the truncation the torn bytes would
// stay on disk and the reopened engine's O_APPEND writers would extend
// them, leaving every post-recovery record unreachable behind garbage.
// Callers recovering someone else's live log (none today — the standby's
// Promote only reads the log of a dead primary) must copy it first.
func Recover(dir string) ([]Record, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var all []Record
	for wi, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("wal: recover %s: %w", p, err)
		}
		off := 0
		for off < len(data) {
			r, n, ok := decodeRecord(data[off:])
			if !ok {
				break // torn tail: everything after is discarded
			}
			r.Writer = int32(wi)
			all = append(all, r)
			off += n
		}
		if off < len(data) {
			if err := os.Truncate(p, int64(off)); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", p, err)
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].GSN != all[j].GSN {
			return all[i].GSN < all[j].GSN
		}
		if all[i].Writer != all[j].Writer {
			return all[i].Writer < all[j].Writer
		}
		return all[i].LSN < all[j].LSN
	})
	return all, nil
}

// Dir returns the directory holding the writer files.
func (m *Manager) Dir() string { return m.dir }

// MaxGSN returns the highest GSN any writer has assigned (checkpoint
// horizon). Call after FlushAll so buffers are empty.
func (m *Manager) MaxGSN() uint64 {
	var max uint64
	for _, w := range m.writers {
		if g := w.localGSN.Load(); g > max {
			max = g
		}
	}
	return max
}

// Truncate discards every writer's on-disk log. The checkpoint that
// captured the database state must be durable first. GSN clocks and LSNs
// keep advancing so post-truncation records sort after history.
func (m *Manager) Truncate() error {
	for _, w := range m.writers {
		w.mu.Lock()
		if len(w.buf) != 0 {
			w.mu.Unlock()
			return fmt.Errorf("wal: truncate with unflushed records on writer %d", w.id)
		}
		err := w.f.Truncate(0)
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("wal: truncate writer %d: %w", w.id, err)
		}
	}
	return nil
}
