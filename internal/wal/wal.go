// Package wal implements PhoebeDB's parallel write-ahead log with Remote
// Flush Avoidance (§8).
//
// Following the "Non-Force, Steal" principle, committed transactions need
// not have their data pages flushed, and dirty pages of uncommitted
// transactions may be written out — recovery replays the log.
//
// Unlike a traditional serialized log, PhoebeDB maintains one WAL writer
// per task slot, each with a private in-memory buffer and file. Every
// record carries two sequence numbers:
//
//   - GSN (Global Sequence Number): monotonically increasing but not
//     unique; establishes a cross-writer partial order. A writer's local
//     GSN advances to max(localGSN, pageGSN)+1 whenever it logs a change to
//     a page, so any two changes to the same page are GSN-ordered.
//   - LSN (Log Sequence Number): strictly increasing within one writer.
//
// Remote Flush Avoidance decouples commit from unrelated writers: a
// transaction that only touched pages last written by its own slot (or
// whose foreign writes are already durable) commits after flushing its own
// writer. Only when it observed an unflushed change by another slot does it
// wait for the remote flush horizon.
//
// Group commit batches writers into flush groups (Options.Groups /
// Options.GroupOf; by default every writer is its own group, the original
// one-file-per-slot layout). Writers in a group share one log file and one
// fsync window: the first committer to reach the group's flush mutex
// becomes the leader and drains every member's buffer in a single
// write+fsync, while followers arriving behind it find their records
// already durable and return without touching the device. Buffers are
// trimmed only after the write and fsync succeed, so a torn or failed
// group flush never loses an acknowledged commit. GSN/LSN assignment and
// the RFA rule are per-writer and unchanged by grouping.
//
// Recovery merges all log files, orders records by GSN (stable by file,
// LSN), verifies checksums, truncates at the first torn record of each
// file, and hands the ordered stream to the engine for redo. Per-writer
// order survives the merge because a writer's records carry strictly
// increasing GSNs and drain to the file in LSN order.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phoebedb/internal/fault"
	"phoebedb/internal/metrics"
	"phoebedb/internal/waitevent"
)

// ErrBroken reports a write to a failed log. After any flush or fsync
// error the durable prefix of the log is unknown, so the manager fails
// stop: every subsequent flush (and therefore every commit) errors until
// the engine is restarted and recovery re-establishes a consistent prefix
// — the same posture as PostgreSQL's PANIC on WAL fsync failure.
var ErrBroken = errors.New("wal: log writer failed; restart and recover")

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	// RecInsert logs a tuple insert (payload: encoded row image).
	RecInsert RecordType = iota + 1
	// RecUpdate logs an in-place update (payload: after-image delta).
	RecUpdate
	// RecDelete logs a tuple delete.
	RecDelete
	// RecCommit marks a transaction commit.
	RecCommit
	// RecAbort marks a transaction abort.
	RecAbort
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("REC(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	Type    RecordType
	GSN     uint64
	LSN     uint64
	XID     uint64
	TableID uint32
	RowID   uint64
	Writer  int32 // filled during recovery
	Payload []byte
}

// recordHeaderSize is the fixed prefix: payloadLen(4) crc(4) type(1)
// gsn(8) lsn(8) xid(8) table(4) rowid(8).
const recordHeaderSize = 4 + 4 + 1 + 8 + 8 + 8 + 4 + 8

func encodeRecord(dst []byte, r *Record) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(r.Payload)))
	hdr[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(hdr[9:], r.GSN)
	binary.LittleEndian.PutUint64(hdr[17:], r.LSN)
	binary.LittleEndian.PutUint64(hdr[25:], r.XID)
	binary.LittleEndian.PutUint32(hdr[33:], r.TableID)
	binary.LittleEndian.PutUint64(hdr[37:], r.RowID)
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:])
	crc.Write(r.Payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	dst = append(dst, hdr[:]...)
	return append(dst, r.Payload...)
}

// decodeRecord parses one record from b. It returns the record, the number
// of bytes consumed, and false if b holds no complete, checksum-valid
// record (a torn tail).
func decodeRecord(b []byte) (Record, int, bool) {
	if len(b) < recordHeaderSize {
		return Record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b[0:]))
	total := recordHeaderSize + plen
	if len(b) < total {
		return Record{}, 0, false
	}
	want := binary.LittleEndian.Uint32(b[4:])
	crc := crc32.NewIEEE()
	crc.Write(b[8:recordHeaderSize])
	crc.Write(b[recordHeaderSize:total])
	if crc.Sum32() != want {
		return Record{}, 0, false
	}
	r := Record{
		Type:    RecordType(b[8]),
		GSN:     binary.LittleEndian.Uint64(b[9:]),
		LSN:     binary.LittleEndian.Uint64(b[17:]),
		XID:     binary.LittleEndian.Uint64(b[25:]),
		TableID: binary.LittleEndian.Uint32(b[33:]),
		RowID:   binary.LittleEndian.Uint64(b[37:]),
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), b[recordHeaderSize:total]...)
	}
	return r, total, true
}

// Writer is one task slot's private WAL stream. Records buffer per writer;
// the bytes drain to the writer's group file during a group flush.
type Writer struct {
	id  int
	mgr *Manager
	grp *group

	mu         sync.Mutex
	buf        []byte
	lsn        uint64
	bufferGSN  uint64 // highest GSN appended to buf (may be unflushed)
	// bufCommits counts RecCommit records currently in buf; the group
	// flush uses it to measure how many commits one device write retired.
	bufCommits int
	flushedGSN atomic.Uint64
	// appended counts total bytes ever encoded into this writer's stream.
	// Per-statement accounting differences it around a statement to charge
	// log volume to the statement that generated it.
	appended atomic.Int64
	// localGSN is the highest GSN assigned by this writer. Atomic rather
	// than owner-private: a remote commit's flushPast fast-forwards it
	// when it advances the flushed horizon past an empty buffer, so the
	// owner can never assign a GSN below an already-published horizon.
	localGSN atomic.Uint64
}

// group is one commit group: the shared log file and the flush mutex its
// members' commits convoy on.
type group struct {
	id      int
	mgr     *Manager
	members []*Writer

	// mu serializes flushes of the group. A committer that blocks here
	// while another member flushes is the group-commit win: when it gets
	// the mutex its records are usually already durable.
	mu      sync.Mutex
	f       *os.File
	scratch []byte      // concatenated member buffers for the single write
	parts   []flushPart // per-member drained prefix bookkeeping

	// waitCredit and sinceProbe drive the adaptive group-commit leader
	// wait (see Flush): credit is granted while flushes capture multiple
	// commit records and drains on single-commit flushes; the probe
	// counter forces one speculative wait per probeInterval flushes so a
	// group can rediscover concurrency after going serial.
	waitCredit int
	sinceProbe int
}

// flushPart records how much of one member's buffer a group flush captured:
// the first n buffered bytes and the buffer's GSN high-water mark at capture
// time. Only that prefix is trimmed (and only that horizon published) after
// the write and fsync succeed — records appended while the flush was in
// flight stay buffered with strictly greater GSNs.
type flushPart struct {
	w   *Writer
	n   int
	gsn uint64
}

// ID returns the writer's slot id.
func (w *Writer) ID() int { return w.id }

// NextGSN advances the writer's local GSN clock past pageGSN and returns
// the new GSN (the LeanStore GSN rule: max(local, page)+1).
func (w *Writer) NextGSN(pageGSN uint64) uint64 {
	for {
		cur := w.localGSN.Load()
		next := cur + 1
		if pageGSN > cur {
			next = pageGSN + 1
		}
		if w.localGSN.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// raiseLocalGSN lifts the local GSN clock to at least g.
func (w *Writer) raiseLocalGSN(g uint64) {
	for {
		cur := w.localGSN.Load()
		if g <= cur || w.localGSN.CompareAndSwap(cur, g) {
			return
		}
	}
}

// RaiseGSN lifts the writer's local GSN clock to at least g without
// touching the buffer or flushed horizons, so it is safe while
// transactions run: future records sort above g, and durability claims
// are unchanged. The base-backup horizon uses this to turn the GSN
// partial order into a clean cut — every record logged after the raise
// is strictly above the backup's horizon GSN on every writer.
func (w *Writer) RaiseGSN(g uint64) { w.raiseLocalGSN(g) }

// AdvanceGSN fast-forwards the writer's GSN clock (and flushed horizon) to
// at least g. Recovery uses this so that post-restart records sort after
// every recovered record.
func (w *Writer) AdvanceGSN(g uint64) {
	w.raiseLocalGSN(g)
	w.mu.Lock()
	if g > w.bufferGSN {
		w.bufferGSN = g
	}
	w.mu.Unlock()
	if g > w.flushedGSN.Load() {
		w.flushedGSN.Store(g)
	}
}

// Append encodes r into the writer's buffer (not yet durable), assigning
// its LSN. r.GSN must already be set by the caller via NextGSN.
func (w *Writer) Append(r *Record) {
	w.mu.Lock()
	w.lsn++
	r.LSN = w.lsn
	before := len(w.buf)
	w.buf = encodeRecord(w.buf, r)
	w.appended.Add(int64(len(w.buf) - before))
	if r.GSN > w.bufferGSN {
		w.bufferGSN = r.GSN
	}
	if r.Type == RecCommit {
		w.bufCommits++
	}
	w.mu.Unlock()
}

// AppendedBytes returns the total bytes ever encoded into this writer's
// stream (durable or not) — a monotonic counter for per-statement deltas.
func (w *Writer) AppendedBytes() int64 { return w.appended.Load() }

// Flush makes every record this writer has buffered durable (fsync if the
// manager is in sync mode) and advances the writer's flushed-GSN horizon.
// It is the group-commit entry point: the caller convoys on the group's
// flush mutex, and whoever holds it drains all members' buffers in one
// write+fsync window. A committer that blocked behind a leader usually
// finds its records already durable and returns without a device write.
func (w *Writer) Flush() error {
	ws := w.mgr.waits
	if ws == nil {
		return w.flushCommit(nil, nil)
	}
	// The writer id is the committing task slot's id, so the stamp lands on
	// the right slot: followers convoying on g.mu and the device write both
	// count as wal_flush; the leader's deliberate yield window restamps as
	// wal_group_lead inside flushCommit.
	seg := ws.Begin(w.id, waitevent.EvWALFlush)
	err := w.flushCommit(ws, &seg)
	ws.End(w.id, waitevent.EvWALFlush, seg)
	return err
}

// flushCommit is Flush's body; seg is the current wait-segment start when
// wait-event stamping is on (ws non-nil), updated in place when the stamp
// switches between wal_flush and wal_group_lead.
func (w *Writer) flushCommit(ws *waitevent.Slots, seg *time.Time) error {
	g := w.grp
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.mgr.broken.Load() {
		return ErrBroken
	}
	w.mu.Lock()
	pending := len(w.buf) > 0 || w.bufferGSN > w.flushedGSN.Load()
	w.mu.Unlock()
	if !pending {
		// A leader's flush covered us while we waited for the mutex.
		return nil
	}
	if d := w.mgr.groupWait; d > 0 && g.shouldWaitLocked() {
		// Group-commit leader wait: before paying the fsync, yield the
		// processor for a bounded window so concurrently executing
		// transactions can reach their own commit points and convoy on
		// g.mu — the flush below then retires the whole batch under one
		// device write. Yielding (rather than sleeping on a timer or
		// proceeding straight into the fsync syscall) matters on a
		// saturated machine: Gosched hands the OS thread to a sibling
		// worker immediately, where a thread blocked in fsync only
		// releases it after the runtime's syscall-retake latency.
		//
		// The wait is adaptive: it keeps firing only while flushes
		// actually capture multiple commits (waitCredit), plus a cheap
		// periodic probe to rediscover concurrency after a quiet spell.
		// A serial commit stream earns no credit, so it pays one
		// amortized probe per probeInterval flushes and nothing else.
		w.mgr.groupWaits.Add(1)
		g.mu.Unlock()
		if ws != nil {
			*seg = ws.Switch(w.id, waitevent.EvWALFlush, waitevent.EvWALGroupLead, *seg)
		}
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
		if ws != nil {
			*seg = ws.Switch(w.id, waitevent.EvWALGroupLead, waitevent.EvWALFlush, *seg)
		}
		g.mu.Lock()
		if w.mgr.broken.Load() {
			return ErrBroken
		}
		w.mu.Lock()
		covered := len(w.buf) == 0 && w.bufferGSN <= w.flushedGSN.Load()
		w.mu.Unlock()
		if covered {
			// Another leader flushed the whole batch — us included —
			// while we yielded.
			return nil
		}
	}
	return g.flushLocked()
}

// probeInterval is how often (in flushes) a group speculatively pays one
// leader wait with no credit, to rediscover commit concurrency.
// waitCreditWindow is how many single-commit flushes a group keeps waiting
// after a batched one before concluding the workload went serial.
const (
	probeInterval    = 32
	waitCreditWindow = 64
)

// shouldWaitLocked decides whether the next flush leader should yield for
// more commits first: yes while recent flushes batched multiple commits
// (credit), and on a periodic speculative probe otherwise. Caller holds
// g.mu.
func (g *group) shouldWaitLocked() bool {
	if g.waitCredit > 0 {
		return true
	}
	g.sinceProbe++
	if g.sinceProbe >= probeInterval {
		g.sinceProbe = 0
		return true
	}
	return false
}

// flushLocked drains every member's buffered records to the group file in
// one write (+fsync), then trims the drained prefixes and publishes the
// flushed-GSN horizons. Caller holds g.mu. Nothing is trimmed or published
// on error: after a failed or torn flush the buffers still hold every
// unacknowledged record, so an acknowledged commit can never be lost.
func (g *group) flushLocked() error {
	m := g.mgr
	if m.broken.Load() {
		return ErrBroken
	}
	g.scratch = g.scratch[:0]
	g.parts = g.parts[:0]
	commits := 0
	for _, w := range g.members {
		w.mu.Lock()
		n := len(w.buf)
		gsn := w.bufferGSN
		if n > 0 {
			g.scratch = append(g.scratch, w.buf[:n]...)
			commits += w.bufCommits
			w.bufCommits = 0
		}
		w.mu.Unlock()
		if n > 0 || gsn > w.flushedGSN.Load() {
			g.parts = append(g.parts, flushPart{w: w, n: n, gsn: gsn})
		}
	}
	// Feed the adaptive leader wait: batching multiple commits under this
	// one device write earns a credit window; a serial flush burns one.
	if commits >= 2 {
		g.waitCredit = waitCreditWindow
	} else if g.waitCredit > 0 {
		g.waitCredit--
	}
	if len(g.scratch) > 0 {
		if cut := fault.TornCut(fault.WALTornWrite, len(g.scratch)); cut > 0 {
			// Simulate a crash tearing the flush: persist a prefix that
			// ends mid-record, then die. The buffers are left intact so a
			// racing flush cannot complete the write and acknowledge a
			// commit behind the "dead" process's back (the armed site
			// would tear that flush too).
			g.f.Write(g.scratch[:len(g.scratch)-cut])
			fault.Crash(fault.WALTornWrite)
		}
		n, err := g.f.Write(g.scratch)
		if m.io != nil {
			m.io.WALWrite.Add(int64(n))
		}
		if err != nil {
			m.broken.Store(true)
			return fmt.Errorf("wal: group %d flush: %w", g.id, err)
		}
		m.flushes.Add(1)
		// Trim the written prefixes NOW, before the sync failpoints: the
		// records are in the OS's hands, and a crash injected below must
		// not let a later flush (ours or a remote-flush on a survivor's
		// behalf) write them a second time. Records appended mid-flush
		// keep their place behind the cut. A real sync failure latches
		// broken, so trimming early never drops an acked commit.
		for _, p := range g.parts {
			if p.n > 0 {
				p.w.mu.Lock()
				p.w.buf = p.w.buf[:copy(p.w.buf, p.w.buf[p.n:])]
				p.w.mu.Unlock()
			}
		}
		skipSync := false
		if ferr := fault.Eval(fault.WALPreSync); ferr != nil {
			if errors.Is(ferr, fault.ErrSkip) {
				skipSync = true // lost-durability run: pretend the fsync happened
			} else {
				m.broken.Store(true)
				return fmt.Errorf("wal: group %d: %w", g.id, ferr)
			}
		}
		if m.syncOnFlush && !skipSync {
			if err := g.f.Sync(); err != nil {
				m.broken.Store(true)
				return fmt.Errorf("wal: group %d sync: %w", g.id, err)
			}
		}
		if ferr := fault.Eval(fault.WALPostSync); ferr != nil {
			// The records are durable but the caller never learns it: the
			// acknowledgment is lost, not the data.
			m.broken.Store(true)
			return fmt.Errorf("wal: group %d: %w", g.id, ferr)
		}
	}
	// Durable: publish every member's horizon.
	for _, p := range g.parts {
		if p.gsn > p.w.flushedGSN.Load() {
			p.w.flushedGSN.Store(p.gsn)
		}
	}
	return nil
}

// FlushedGSN returns the writer's durable GSN horizon.
func (w *Writer) FlushedGSN() uint64 { return w.flushedGSN.Load() }

// Manager owns the per-slot writers, their commit groups, and the global
// flush horizon.
type Manager struct {
	dir         string
	syncOnFlush bool
	io          *metrics.IOCounters
	writers     []*Writer
	groups      []*group
	// broken latches the first flush/sync failure (fail-stop, see
	// ErrBroken).
	broken atomic.Bool
	// flushes counts device writes across all groups (buffer drains that
	// actually hit the file, not empty-buffer Flush calls).
	flushes atomic.Int64
	// groupWait is how long a commit leader waits for mid-flight sibling
	// transactions before issuing the group fsync (0 = flush immediately).
	groupWait time.Duration
	// groupWaits counts commits that paid the leader wait.
	groupWaits atomic.Int64
	// waits receives wait-event stamps for commit flushes; may be nil.
	waits *waitevent.Slots
}

// Broken reports whether the log has failed stop.
func (m *Manager) Broken() bool { return m.broken.Load() }

// Flushes returns the number of non-empty buffer drains across all writers.
func (m *Manager) Flushes() int64 { return m.flushes.Load() }

// GroupWaits returns the number of commits that paid the group-commit
// leader wait before flushing.
func (m *Manager) GroupWaits() int64 { return m.groupWaits.Load() }

// Options configures a Manager.
type Options struct {
	// Dir is the directory holding the log files (wal-<n>.log, one per
	// commit group).
	Dir string
	// Writers is the number of task-slot writers.
	Writers int
	// Groups is the number of commit groups (log files). 0 means one group
	// per writer — the original ungrouped layout with no shared fsync.
	Groups int
	// GroupOf maps a writer id to its commit group [0, Groups). Nil means
	// writer i joins group i%Groups. The engine maps every slot of a worker
	// to one group so a worker's concurrent commits share a fsync window.
	GroupOf func(writer int) int
	// SyncOnFlush issues fsync on every flush (the paper's "WAL sync
	// enabled" setting). Off by default in tests for speed.
	SyncOnFlush bool
	// GroupCommitWait is how long a commit leader that observes sibling
	// slots with buffered (mid-transaction) records waits for their
	// commits to arrive before issuing the shared fsync. 0 flushes
	// immediately. Serial workloads never trigger the wait.
	GroupCommitWait time.Duration
	// IO receives write-volume accounting; may be nil.
	IO *metrics.IOCounters
	// Waits receives per-slot wait-event stamps from the commit flush
	// path (writer ids are task-slot ids); may be nil.
	Waits *waitevent.Slots
}

// Open creates a Manager, its commit groups, and their log files.
func Open(opts Options) (*Manager, error) {
	if opts.Writers <= 0 {
		return nil, fmt.Errorf("wal: need at least one writer")
	}
	groups := opts.Groups
	if groups <= 0 {
		groups = opts.Writers
	}
	groupOf := opts.GroupOf
	if groupOf == nil {
		groupOf = func(w int) int { return w % groups }
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: opts.Dir, syncOnFlush: opts.SyncOnFlush, groupWait: opts.GroupCommitWait, io: opts.IO, waits: opts.Waits}
	for i := 0; i < groups; i++ {
		f, err := os.OpenFile(m.groupPath(i), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.groups = append(m.groups, &group{id: i, mgr: m, f: f})
	}
	for i := 0; i < opts.Writers; i++ {
		gi := groupOf(i)
		if gi < 0 || gi >= groups {
			m.Close()
			return nil, fmt.Errorf("wal: GroupOf(%d) = %d outside [0,%d)", i, gi, groups)
		}
		w := &Writer{id: i, mgr: m, grp: m.groups[gi]}
		m.groups[gi].members = append(m.groups[gi].members, w)
		m.writers = append(m.writers, w)
	}
	return m, nil
}

func (m *Manager) groupPath(i int) string {
	return filepath.Join(m.dir, fmt.Sprintf("wal-%04d.log", i))
}

// Writer returns the slot's writer.
func (m *Manager) Writer(slot int) *Writer { return m.writers[slot] }

// NumWriters returns the writer count.
func (m *Manager) NumWriters() int { return len(m.writers) }

// NumGroups returns the commit-group (log file) count.
func (m *Manager) NumGroups() int { return len(m.groups) }

// constraintGSN returns the writer's contribution to the global flush
// horizon: its flushed GSN while it has unflushed records, otherwise no
// constraint (everything it ever logged is durable).
func (w *Writer) constraintGSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bufferGSN > w.flushedGSN.Load() {
		return w.flushedGSN.Load()
	}
	return ^uint64(0)
}

// GlobalFlushedGSN returns the horizon below which every logged change is
// durable regardless of which writer logged it: the minimum flushed GSN
// over writers that still hold unflushed records.
func (m *Manager) GlobalFlushedGSN() uint64 {
	min := uint64(1<<64 - 1)
	for _, w := range m.writers {
		if g := w.constraintGSN(); g < min {
			min = g
		}
	}
	return min
}

// WaitRemoteFlush makes every change with GSN <= gsn durable. This is the
// expensive path RFA lets most transactions skip: it forces a flush on
// every writer lagging the horizon.
func (m *Manager) WaitRemoteFlush(gsn uint64) error {
	for _, w := range m.writers {
		if w.FlushedGSN() >= gsn {
			continue
		}
		// The writer may simply have nothing at that GSN; flushing is
		// still the only way to know its buffer is empty up to gsn.
		if err := w.flushPast(gsn); err != nil {
			return err
		}
	}
	return nil
}

// flushPast flushes the writer and advances its horizon to at least gsn
// when it has nothing buffered at or above it. The unlocks are deferred so
// an injected crash mid-flush cannot strand a mutex and deadlock peers.
func (w *Writer) flushPast(gsn uint64) error {
	g := w.grp
	g.mu.Lock()
	defer g.mu.Unlock()
	w.mu.Lock()
	if w.bufferGSN < gsn {
		// Everything this writer has even buffered is below gsn;
		// advance its horizon without touching the disk.
		w.raiseLocalGSN(gsn)
		w.bufferGSN = gsn
	}
	w.mu.Unlock()
	return g.flushLocked()
}

// FlushAll flushes every group (used at shutdown and checkpoints).
func (m *Manager) FlushAll() error {
	for _, g := range m.groups {
		g.mu.Lock()
		err := g.flushLocked()
		g.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes all group files.
func (m *Manager) Close() error {
	var first error
	for _, g := range m.groups {
		if g == nil || g.f == nil {
			continue
		}
		g.mu.Lock()
		if err := g.flushLocked(); err != nil && first == nil {
			first = err
		}
		err := g.f.Close()
		g.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- Remote Flush Avoidance tracking ----------------------------------------

// PageStamp is the per-page RFA bookkeeping: the GSN of the page's last
// logged change and the slot that made it. It is embedded in buffer-managed
// page frames and mutated under the page's exclusive latch.
type PageStamp struct {
	GSN        uint64
	LastWriter int32
}

// NeedsRemoteFlush evaluates the RFA rule for a transaction on slot `slot`
// about to modify a page with stamp ps: the transaction depends on a
// remote flush iff another slot wrote the page and that writer has not yet
// flushed past the page's GSN. lastWriterFlushed is that writer's durable
// horizon — the per-writer check is what makes RFA effective: once the
// previous writer committed (and therefore flushed), reusing its page
// creates no dependency even while unrelated writers lag.
func NeedsRemoteFlush(ps PageStamp, slot int, lastWriterFlushed uint64) bool {
	return ps.LastWriter >= 0 && int(ps.LastWriter) != slot && ps.GSN > lastWriterFlushed
}

// DecodeRecordAt parses one record from b starting at off. It returns the
// record, the bytes consumed, and false when no complete, checksum-valid
// record starts there (an incomplete tail). Exposed for WAL shipping.
func DecodeRecordAt(b []byte, off int) (Record, int, bool) {
	if off < 0 || off > len(b) {
		return Record{}, 0, false
	}
	return decodeRecord(b[off:])
}

// --- Recovery ----------------------------------------------------------------

// Recover reads every writer file in dir, drops torn tails, and returns the
// records ordered by (GSN, writer, LSN) for redo.
//
// A file whose tail fails to parse (a crash tore the final write, or a
// partial sector flipped bytes in it) is physically truncated back to its
// last checksum-valid record. Without the truncation the torn bytes would
// stay on disk and the reopened engine's O_APPEND writers would extend
// them, leaving every post-recovery record unreachable behind garbage.
// Callers recovering someone else's live log (none today — the standby's
// Promote only reads the log of a dead primary) must copy it first.
func Recover(dir string) ([]Record, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var all []Record
	for wi, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("wal: recover %s: %w", p, err)
		}
		off := 0
		for off < len(data) {
			r, n, ok := decodeRecord(data[off:])
			if !ok {
				break // torn tail: everything after is discarded
			}
			r.Writer = int32(wi)
			all = append(all, r)
			off += n
		}
		if off < len(data) {
			if err := os.Truncate(p, int64(off)); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", p, err)
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].GSN != all[j].GSN {
			return all[i].GSN < all[j].GSN
		}
		if all[i].Writer != all[j].Writer {
			return all[i].Writer < all[j].Writer
		}
		return all[i].LSN < all[j].LSN
	})
	return all, nil
}

// Dir returns the directory holding the writer files.
func (m *Manager) Dir() string { return m.dir }

// MaxGSN returns the highest GSN any writer has assigned (checkpoint
// horizon). Call after FlushAll so buffers are empty.
func (m *Manager) MaxGSN() uint64 {
	var max uint64
	for _, w := range m.writers {
		if g := w.localGSN.Load(); g > max {
			max = g
		}
	}
	return max
}

// Truncate discards every group's on-disk log. The checkpoint that
// captured the database state must be durable first. GSN clocks and LSNs
// keep advancing so post-truncation records sort after history.
func (m *Manager) Truncate() error {
	for _, g := range m.groups {
		g.mu.Lock()
		for _, w := range g.members {
			w.mu.Lock()
			pending := len(w.buf) != 0
			w.mu.Unlock()
			if pending {
				g.mu.Unlock()
				return fmt.Errorf("wal: truncate with unflushed records on writer %d", w.id)
			}
		}
		err := g.f.Truncate(0)
		g.mu.Unlock()
		if err != nil {
			return fmt.Errorf("wal: truncate group %d: %w", g.id, err)
		}
	}
	return nil
}
