package wal

import (
	"sync"
	"testing"
)

// TestGroupFlushDrainsAllMembers: one member's commit flush must make every
// member's buffered records durable in a single device write.
func TestGroupFlushDrainsAllMembers(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 4, Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGroups() != 1 || m.NumWriters() != 4 {
		t.Fatalf("groups=%d writers=%d", m.NumGroups(), m.NumWriters())
	}
	var gsns [4]uint64
	for i := 0; i < 4; i++ {
		w := m.Writer(i)
		rec := Record{Type: RecInsert, GSN: w.NextGSN(0), XID: uint64(i + 1)}
		gsns[i] = rec.GSN
		w.Append(&rec)
	}
	// Writer 0 commits; the leader flush must carry writers 1-3 too.
	if err := m.Writer(0).Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.Flushes(); got != 1 {
		t.Fatalf("group flush hit the device %d times, want 1", got)
	}
	for i := 0; i < 4; i++ {
		if m.Writer(i).FlushedGSN() < gsns[i] {
			t.Fatalf("writer %d horizon %d below its record GSN %d after group flush",
				i, m.Writer(i).FlushedGSN(), gsns[i])
		}
	}
	// A follower arriving after the leader has nothing left to write.
	if err := m.Writer(2).Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.Flushes(); got != 1 {
		t.Fatalf("already-durable follower flush hit the device (flushes=%d)", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
}

// TestNeedsRemoteFlushAgainstGroupFlusher pins the RFA rule's interaction
// with group commit: a page stamped by an unflushed foreign writer needs a
// remote flush until ANY group flush covering that writer runs — including
// a flush led by a different member — while writers in other groups are
// unaffected.
func TestNeedsRemoteFlushAgainstGroupFlusher(t *testing.T) {
	m, err := Open(Options{
		Dir:     t.TempDir(),
		Writers: 3,
		Groups:  2,
		GroupOf: func(w int) int { // writers 0,1 share a group; 2 is alone
			if w < 2 {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w0, w1, w2 := m.Writer(0), m.Writer(1), m.Writer(2)

	// Writer 1 and writer 2 each log a change to their own page.
	r1 := Record{Type: RecUpdate, GSN: w1.NextGSN(0), XID: 11}
	w1.Append(&r1)
	ps1 := PageStamp{GSN: r1.GSN, LastWriter: 1}
	r2 := Record{Type: RecUpdate, GSN: w2.NextGSN(0), XID: 22}
	w2.Append(&r2)
	ps2 := PageStamp{GSN: r2.GSN, LastWriter: 2}

	// Slot 0 touching either page depends on the foreign unflushed change.
	if !NeedsRemoteFlush(ps1, 0, w1.FlushedGSN()) {
		t.Fatal("unflushed same-group foreign write did not require a remote flush")
	}
	if !NeedsRemoteFlush(ps2, 0, w2.FlushedGSN()) {
		t.Fatal("unflushed cross-group foreign write did not require a remote flush")
	}

	// Writer 0 commits. Its group flush drains writer 1 as a side effect,
	// clearing the RFA dependency on ps1 without writer 1 ever flushing.
	rc := Record{Type: RecCommit, GSN: w0.NextGSN(0), XID: 1}
	w0.Append(&rc)
	if err := w0.Flush(); err != nil {
		t.Fatal(err)
	}
	if NeedsRemoteFlush(ps1, 0, w1.FlushedGSN()) {
		t.Fatal("group flush did not clear the same-group RFA dependency")
	}
	// Writer 2 is in another group: its records stayed buffered, so the
	// dependency must survive the group-0 flush.
	if !NeedsRemoteFlush(ps2, 0, w2.FlushedGSN()) {
		t.Fatal("group-0 flush wrongly cleared a group-1 writer's dependency")
	}
	// Its own page never depends on it, flushed or not.
	if NeedsRemoteFlush(ps2, 2, w2.FlushedGSN()) {
		t.Fatal("RFA fired for the stamping slot itself")
	}

	// WaitRemoteFlush still forces the lagging group when RFA says so.
	if err := m.WaitRemoteFlush(r2.GSN); err != nil {
		t.Fatal(err)
	}
	if NeedsRemoteFlush(ps2, 0, w2.FlushedGSN()) {
		t.Fatal("WaitRemoteFlush did not clear the cross-group dependency")
	}
}

// TestGroupFlushKeepsMidFlightAppends: records appended to a member while a
// leader's flush is in flight must survive in the buffer (trim-by-prefix)
// and flush later with higher GSNs.
func TestGroupFlushKeepsMidFlightAppends(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 2, Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := m.Writer(0), m.Writer(1)
	ra := Record{Type: RecInsert, GSN: w1.NextGSN(0), RowID: 1}
	w1.Append(&ra)
	if err := w0.Flush(); err != nil { // drains w1's first record
		t.Fatal(err)
	}
	horizon := w1.FlushedGSN()
	rb := Record{Type: RecInsert, GSN: w1.NextGSN(0), RowID: 2}
	w1.Append(&rb)
	if w1.FlushedGSN() != horizon || horizon >= rb.GSN {
		t.Fatalf("horizon %d moved past undrained record GSN %d", w1.FlushedGSN(), rb.GSN)
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].RowID != 1 || recs[1].RowID != 2 {
		t.Fatalf("recovered %v", recs)
	}
}

// TestGroupConcurrentCommitRace hammers one group from four writer
// goroutines (append + flush each iteration, as commits do) and verifies
// nothing is lost, duplicated, or reordered per writer.
func TestGroupConcurrentCommitRace(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 4, Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	const perWriter = 200
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := m.Writer(s)
			for i := 0; i < perWriter; i++ {
				rec := Record{Type: RecInsert, GSN: w.NextGSN(0), XID: uint64(s), RowID: uint64(i)}
				w.Append(&rec)
				if err := w.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4*perWriter {
		t.Fatalf("recovered %d records, want %d", len(recs), 4*perWriter)
	}
	// Per writer: every RowID exactly once, in order (stable GSN merge must
	// preserve each slot's append order).
	var next [4]uint64
	for _, r := range recs {
		s := r.XID
		if r.RowID != next[s] {
			t.Fatalf("writer %d records out of order: got rowid %d, want %d", s, r.RowID, next[s])
		}
		next[s]++
	}
	for s, n := range next {
		if n != perWriter {
			t.Fatalf("writer %d recovered %d records", s, n)
		}
	}
}
