package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"phoebedb/internal/metrics"
)

func openTestManager(t *testing.T, writers int) *Manager {
	t.Helper()
	m, err := Open(Options{Dir: t.TempDir(), Writers: writers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{Type: RecUpdate, GSN: 7, XID: 0x8000000000000010, TableID: 3, RowID: 42, Payload: []byte("delta-bytes")}
	enc := encodeRecord(nil, &r)
	got, n, ok := decodeRecord(enc)
	if !ok || n != len(enc) {
		t.Fatalf("decode failed: ok=%v n=%d len=%d", ok, n, len(enc))
	}
	if got.Type != r.Type || got.GSN != r.GSN || got.XID != r.XID || got.TableID != r.TableID || got.RowID != r.RowID || string(got.Payload) != string(r.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(typ uint8, gsn, xid, rowid uint64, table uint32, payload []byte) bool {
		r := Record{Type: RecordType(typ%5 + 1), GSN: gsn, XID: xid, TableID: table, RowID: rowid, Payload: payload}
		enc := encodeRecord(nil, &r)
		got, n, ok := decodeRecord(enc)
		if !ok || n != len(enc) {
			return false
		}
		if len(payload) == 0 && len(got.Payload) == 0 {
			return got.Type == r.Type && got.GSN == gsn
		}
		return got.Type == r.Type && got.GSN == gsn && got.XID == xid &&
			got.TableID == table && got.RowID == rowid && string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := Record{Type: RecInsert, GSN: 1, Payload: []byte("payload")}
	enc := encodeRecord(nil, &r)
	// Flip a payload byte: checksum must fail.
	enc[len(enc)-1] ^= 0xFF
	if _, _, ok := decodeRecord(enc); ok {
		t.Fatal("corrupted record accepted")
	}
	// Truncated record must not decode.
	if _, _, ok := decodeRecord(enc[:10]); ok {
		t.Fatal("truncated record accepted")
	}
}

func TestNextGSNAdoptsPageGSN(t *testing.T) {
	m := openTestManager(t, 2)
	w := m.Writer(0)
	g1 := w.NextGSN(0)
	if g1 != 1 {
		t.Fatalf("first GSN = %d", g1)
	}
	g2 := w.NextGSN(100) // page was last written at GSN 100 by someone else
	if g2 != 101 {
		t.Fatalf("GSN after adopting page GSN 100 = %d", g2)
	}
	g3 := w.NextGSN(50) // lower page GSN must not move the clock back
	if g3 != 102 {
		t.Fatalf("GSN = %d, want 102", g3)
	}
}

func TestLSNStrictlyIncreasing(t *testing.T) {
	m := openTestManager(t, 1)
	w := m.Writer(0)
	var prev uint64
	for i := 0; i < 10; i++ {
		r := Record{Type: RecInsert, GSN: w.NextGSN(0)}
		w.Append(&r)
		if r.LSN <= prev {
			t.Fatalf("LSN %d not increasing", r.LSN)
		}
		prev = r.LSN
	}
}

func TestFlushAdvancesHorizon(t *testing.T) {
	m := openTestManager(t, 2)
	w := m.Writer(0)
	r := Record{Type: RecInsert, GSN: w.NextGSN(0)}
	w.Append(&r)
	if w.FlushedGSN() != 0 {
		t.Fatal("horizon advanced before flush")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.FlushedGSN() != r.GSN {
		t.Fatalf("flushed GSN = %d, want %d", w.FlushedGSN(), r.GSN)
	}
	// With everything flushed and writer 1 idle, nothing constrains the
	// global horizon.
	if m.GlobalFlushedGSN() != ^uint64(0) {
		t.Fatalf("global horizon = %d with no pending writers", m.GlobalFlushedGSN())
	}
	// An unflushed record on writer 1 pulls the horizon down to 0.
	w1 := m.Writer(1)
	r1 := Record{Type: RecInsert, GSN: w1.NextGSN(0)}
	w1.Append(&r1)
	if m.GlobalFlushedGSN() != 0 {
		t.Fatalf("global horizon = %d with pending writer", m.GlobalFlushedGSN())
	}
}

func TestNeedsRemoteFlushRule(t *testing.T) {
	cases := []struct {
		ps      PageStamp
		slot    int
		horizon uint64
		want    bool
	}{
		{PageStamp{GSN: 0, LastWriter: -1}, 0, 0, false}, // untouched page
		{PageStamp{GSN: 5, LastWriter: 0}, 0, 0, false},  // own slot
		{PageStamp{GSN: 5, LastWriter: 1}, 0, 10, false}, // remote but durable
		{PageStamp{GSN: 5, LastWriter: 1}, 0, 4, true},   // remote, not durable
		{PageStamp{GSN: 5, LastWriter: 1}, 1, 0, false},  // same slot id
	}
	for i, c := range cases {
		if got := NeedsRemoteFlush(c.ps, c.slot, c.horizon); got != c.want {
			t.Errorf("case %d: NeedsRemoteFlush = %v, want %v", i, got, c.want)
		}
	}
}

func TestWaitRemoteFlush(t *testing.T) {
	m := openTestManager(t, 3)
	w0, w1 := m.Writer(0), m.Writer(1)
	r0 := Record{Type: RecInsert, GSN: w0.NextGSN(0)}
	w0.Append(&r0)
	r1 := Record{Type: RecInsert, GSN: w1.NextGSN(10)} // GSN 11
	w1.Append(&r1)
	if err := m.WaitRemoteFlush(11); err != nil {
		t.Fatal(err)
	}
	if m.GlobalFlushedGSN() < 11 {
		t.Fatalf("global horizon = %d after WaitRemoteFlush(11)", m.GlobalFlushedGSN())
	}
}

func TestRecoveryOrdersByGSN(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := m.Writer(0), m.Writer(1)
	// Interleave: page ping-pongs between writers, so GSNs order the writes.
	var pageGSN uint64
	var wantOrder []uint64
	for i := 0; i < 6; i++ {
		w := w0
		if i%2 == 1 {
			w = w1
		}
		g := w.NextGSN(pageGSN)
		pageGSN = g
		rec := Record{Type: RecUpdate, GSN: g, RowID: uint64(i)}
		w.Append(&rec)
		wantOrder = append(wantOrder, uint64(i))
	}
	m.FlushAll()
	m.Close()

	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("recovered %d records, want 6", len(recs))
	}
	for i, r := range recs {
		if r.RowID != wantOrder[i] {
			t.Fatalf("record %d: RowID %d, want %d", i, r.RowID, wantOrder[i])
		}
	}
}

func TestRecoveryDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Writer(0)
	for i := 0; i < 3; i++ {
		rec := Record{Type: RecInsert, GSN: w.NextGSN(0), RowID: uint64(i), Payload: []byte("data")}
		w.Append(&rec)
	}
	m.FlushAll()
	m.Close()

	// Simulate a crash mid-write: truncate the file inside the last record.
	path := filepath.Join(dir, "wal-0000.log")
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (torn tail dropped)", len(recs))
	}
}

func TestUnflushedRecordsNotRecovered(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Writer(0)
	rec := Record{Type: RecInsert, GSN: w.NextGSN(0)}
	w.Append(&rec)
	// Crash without flush: close the raw file without flushing the buffer.
	w.grp.f.Close()
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d unflushed records", len(recs))
	}
}

func TestIOCountersAndSyncMode(t *testing.T) {
	var io metrics.IOCounters
	m, err := Open(Options{Dir: t.TempDir(), Writers: 1, SyncOnFlush: true, IO: &io})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w := m.Writer(0)
	rec := Record{Type: RecInsert, GSN: w.NextGSN(0), Payload: []byte("abc")}
	w.Append(&rec)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if io.Snapshot().WALWrite == 0 {
		t.Fatal("WAL write bytes not reported")
	}
}

func TestConcurrentAppendFlush(t *testing.T) {
	m := openTestManager(t, 4)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := m.Writer(s)
			for i := 0; i < 200; i++ {
				rec := Record{Type: RecInsert, GSN: w.NextGSN(0), RowID: uint64(i)}
				w.Append(&rec)
				if i%50 == 0 {
					if err := w.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendFlushBatch(b *testing.B) {
	m, err := Open(Options{Dir: b.TempDir(), Writers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	w := m.Writer(0)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := Record{Type: RecUpdate, GSN: w.NextGSN(0), Payload: payload}
		w.Append(&rec)
		if i%128 == 127 {
			w.Flush()
		}
	}
}

func TestMaxGSNAndTruncate(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w0, w1 := m.Writer(0), m.Writer(1)
	r0 := Record{Type: RecInsert, GSN: w0.NextGSN(0)}
	w0.Append(&r0)
	r1 := Record{Type: RecInsert, GSN: w1.NextGSN(5)} // GSN 6
	w1.Append(&r1)
	// Truncation with unflushed buffers is refused.
	if err := m.Truncate(); err == nil {
		t.Fatal("truncate with pending records accepted")
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if g := m.MaxGSN(); g != 6 {
		t.Fatalf("MaxGSN = %d, want 6", g)
	}
	if err := m.Truncate(); err != nil {
		t.Fatal(err)
	}
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d records after truncate", len(recs))
	}
	// GSN clock survives truncation: new records sort after history.
	if g := w1.NextGSN(0); g <= 6 {
		t.Fatalf("GSN regressed to %d after truncate", g)
	}
}

func TestFlushIOErrorSurfaces(t *testing.T) {
	// Failure injection: a dead file descriptor must surface as a flush
	// error (the engine aborts the committing transaction on it).
	m, err := Open(Options{Dir: t.TempDir(), Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Writer(0)
	rec := Record{Type: RecInsert, GSN: w.NextGSN(0), Payload: []byte("doomed")}
	w.Append(&rec)
	w.grp.f.Close() // simulate device failure
	if err := w.Flush(); err == nil {
		t.Fatal("flush on closed file succeeded")
	}
	// The horizon must not advance past unflushed data.
	if w.FlushedGSN() >= rec.GSN {
		t.Fatal("flush error advanced the durable horizon")
	}
}

// writeTornFixture writes four flushed records into dir and returns the
// log path, its full contents, and the byte offset of the last record.
func writeTornFixture(t *testing.T, dir string) (string, []byte, int64) {
	t.Helper()
	m, err := Open(Options{Dir: dir, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Writer(0)
	for i := 0; i < 4; i++ {
		rec := Record{Type: RecInsert, GSN: w.NextGSN(0), RowID: uint64(i), Payload: []byte{byte('a' + i), 'x', 'y'}}
		w.Append(&rec)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal-0000.log")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the last record's start by walking the decoded records.
	var lastOff int64
	for off := 0; off < len(full); {
		_, n, ok := DecodeRecordAt(full, off)
		if !ok {
			t.Fatalf("fixture log does not decode cleanly at %d", off)
		}
		lastOff = int64(off)
		off += n
	}
	return path, full, lastOff
}

// TestRecoverTornTailByteByByte corrupts the tail of a WAL file at every
// byte position — first by truncating inside the last record at each
// possible length, then by flipping each byte of the last record — and
// verifies that recovery (a) returns exactly the intact prefix and (b)
// physically truncates the file back to that prefix, so post-recovery
// appends are never stranded behind garbage by the O_APPEND writer.
func TestRecoverTornTailByteByByte(t *testing.T) {
	dir := t.TempDir()
	path, full, lastOff := writeTornFixture(t, dir)

	check := func(mutated []byte, wantRecs int, wantSize int64, what string) {
		t.Helper()
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := Recover(dir)
		if err != nil {
			t.Fatalf("%s: recover: %v", what, err)
		}
		if len(recs) != wantRecs {
			t.Fatalf("%s: recovered %d records, want %d", what, len(recs), wantRecs)
		}
		for i, r := range recs {
			if r.RowID != uint64(i) || len(r.Payload) != 3 || r.Payload[0] != byte('a'+i) {
				t.Fatalf("%s: record %d corrupted: rowid=%d payload=%q", what, i, r.RowID, r.Payload)
			}
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != wantSize {
			t.Fatalf("%s: file is %d bytes after recovery, want physical truncation to %d", what, st.Size(), wantSize)
		}
	}

	// Every torn length: from the last record's first byte through one byte
	// short of complete.
	for cut := lastOff; cut < int64(len(full)); cut++ {
		check(full[:cut], 3, lastOff, fmt.Sprintf("truncate@%d", cut))
	}
	// Every single-byte corruption of the last record. CRC32 catches all of
	// them (it detects any single-bit error), so the tail must be dropped.
	for i := lastOff; i < int64(len(full)); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		check(mut, 3, lastOff, fmt.Sprintf("bitflip@%d", i))
	}

	// A recovered-then-reopened log must accept appends, and the appended
	// record must be readable on the next recovery.
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Dir: dir, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Writer(0)
	rec := Record{Type: RecInsert, GSN: w.NextGSN(0), RowID: 99, Payload: []byte("post")}
	w.Append(&rec)
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records after post-recovery append, want 4", len(recs))
	}
	found := false
	for _, r := range recs {
		if r.RowID == 99 && string(r.Payload) == "post" {
			found = true
		}
	}
	if !found {
		t.Fatal("post-recovery append not recovered")
	}
}
