package storage

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"phoebedb/internal/metrics"
)

func openTestPageFile(t *testing.T, pageSize int, io *metrics.IOCounters) *PageFile {
	t.Helper()
	pf, err := OpenPageFile(filepath.Join(t.TempDir(), "data.pages"), pageSize, io)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestPageFileWriteRead(t *testing.T) {
	pf := openTestPageFile(t, 128, nil)
	id := pf.Allocate()
	if id == InvalidPageID {
		t.Fatal("allocated invalid id")
	}
	img := bytes.Repeat([]byte{0xAB}, 100)
	if err := pf.WritePage(id, img); err != nil {
		t.Fatal(err)
	}
	got, err := pf.ReadPage(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 128 {
		t.Fatalf("read %d bytes, want full slot 128", len(got))
	}
	if !bytes.Equal(got[:100], img) {
		t.Fatal("payload mismatch")
	}
	for _, b := range got[100:] {
		if b != 0 {
			t.Fatal("slot tail not zero-filled")
		}
	}
}

func TestPageFileAllocateFreeReuse(t *testing.T) {
	pf := openTestPageFile(t, 64, nil)
	a := pf.Allocate()
	b := pf.Allocate()
	if a == b {
		t.Fatal("duplicate allocation")
	}
	pf.Free(a)
	c := pf.Allocate()
	if c != a {
		t.Fatalf("freed slot not reused: got %d want %d", c, a)
	}
	pf.Free(InvalidPageID) // must be a no-op
	d := pf.Allocate()
	if d == InvalidPageID || d == b || d == c {
		t.Fatalf("bad allocation %d", d)
	}
}

func TestPageFileErrors(t *testing.T) {
	pf := openTestPageFile(t, 64, nil)
	if err := pf.WritePage(InvalidPageID, nil); err == nil {
		t.Fatal("write to invalid id accepted")
	}
	if _, err := pf.ReadPage(InvalidPageID, nil); err == nil {
		t.Fatal("read of invalid id accepted")
	}
	id := pf.Allocate()
	if err := pf.WritePage(id, make([]byte, 65)); err == nil {
		t.Fatal("oversized image accepted")
	}
	if _, err := OpenPageFile(filepath.Join(t.TempDir(), "x"), 0, nil); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestPageFilePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.pages")
	pf, err := OpenPageFile(path, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := pf.Allocate()
	id2 := pf.Allocate()
	if err := pf.WritePage(id, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := pf.WritePage(id2, []byte("world")); err != nil {
		t.Fatal(err)
	}
	pf.Sync()
	pf.Close()

	pf2, err := OpenPageFile(path, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	got, err := pf2.ReadPage(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("reopened payload = %q", got[:5])
	}
	// New allocations must not collide with persisted slots.
	if next := pf2.Allocate(); next == id || next == id2 {
		t.Fatalf("reopened file re-allocated live slot %d", next)
	}
}

func TestPageFileConcurrentDisjointPages(t *testing.T) {
	pf := openTestPageFile(t, 32, nil)
	const pages = 16
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = pf.Allocate()
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id PageID) {
			defer wg.Done()
			img := bytes.Repeat([]byte{byte(i + 1)}, 32)
			for k := 0; k < 50; k++ {
				if err := pf.WritePage(id, img); err != nil {
					t.Error(err)
					return
				}
				got, err := pf.ReadPage(id, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, img) {
					t.Errorf("page %d torn read", id)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
}

func TestIOCountersReported(t *testing.T) {
	var io metrics.IOCounters
	pf := openTestPageFile(t, 64, &io)
	id := pf.Allocate()
	pf.WritePage(id, make([]byte, 64))
	pf.ReadPage(id, nil)
	s := io.Snapshot()
	if s.DataWrite != 64 || s.DataRead != 64 {
		t.Fatalf("io snapshot = %+v", s)
	}
}

func TestBlockFileAppendRead(t *testing.T) {
	var io metrics.IOCounters
	bf, err := OpenBlockFile(filepath.Join(t.TempDir(), "frozen.blocks"), &io)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	r1, err := bf.AppendBlock([]byte("block-one"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bf.AppendBlock([]byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Offset == r2.Offset {
		t.Fatal("overlapping blocks")
	}
	b1, err := bf.ReadBlock(r1)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != "block-one" {
		t.Fatalf("block 1 = %q", b1)
	}
	b2, _ := bf.ReadBlock(r2)
	if string(b2) != "second" {
		t.Fatalf("block 2 = %q", b2)
	}
	if bf.Size() != int64(len("block-one")+len("second")) {
		t.Fatalf("Size = %d", bf.Size())
	}
	if io.Snapshot().DataWrite != 15 {
		t.Fatalf("write bytes = %d", io.Snapshot().DataWrite)
	}
}

func TestBlockFileConcurrentAppend(t *testing.T) {
	bf, err := OpenBlockFile(filepath.Join(t.TempDir(), "frozen.blocks"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	const goroutines = 8
	const per = 20
	refs := make([][]BlockRef, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				blk := bytes.Repeat([]byte{byte(g)}, 10+g)
				ref, err := bf.AppendBlock(blk)
				if err != nil {
					t.Error(err)
					return
				}
				refs[g] = append(refs[g], ref)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		for _, ref := range refs[g] {
			blk, err := bf.ReadBlock(ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range blk {
				if b != byte(g) {
					t.Fatalf("goroutine %d block corrupted", g)
				}
			}
		}
	}
}
