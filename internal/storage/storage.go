// Package storage implements PhoebeDB's two on-disk data layers (§5.1):
//
//   - The Data Page File holds cold pages in fixed-size slots addressed by
//     page ID, written when the buffer manager evicts and read back when a
//     cold swip is accessed.
//   - The Data Block File holds frozen data: compressed runs of consecutive
//     leaf pages, appended once when frozen and read (rarely) by analytical
//     scans or when a frozen row is warmed.
//
// The paper's testbed uses NVMe SSDs driven through io_uring; this
// implementation substitutes plain file pread/pwrite, preserving the access
// pattern (random page-granularity I/O on the page file, large sequential
// appends on the block file). All traffic is reported to an
// metrics.IOCounters so the evaluation harness can reproduce the disk
// throughput figures (Exp 3 & 4).
package storage

import (
	"fmt"
	"os"
	"sync"

	"phoebedb/internal/fault"
	"phoebedb/internal/metrics"
)

// PageID addresses one slot in the data page file.
type PageID uint64

// InvalidPageID is the zero page ID; slot 0 is never allocated so that a
// zero swip word can be recognized as empty.
const InvalidPageID PageID = 0

// PageFile is a slotted file of fixed-size page images with a free list.
// Methods are safe for concurrent use; distinct pages may be read and
// written in parallel (the file descriptor is shared, offsets are disjoint).
type PageFile struct {
	f        *os.File
	pageSize int
	io       *metrics.IOCounters

	mu   sync.Mutex
	next PageID
	free []PageID
}

// OpenPageFile creates or opens a page file at path with the given slot
// size. io may be nil.
func OpenPageFile(path string, pageSize int, io *metrics.IOCounters) (*PageFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: non-positive page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pf := &PageFile{f: f, pageSize: pageSize, io: io, next: 1}
	if n := (st.Size() + int64(pageSize) - 1) / int64(pageSize); n > 0 {
		pf.next = PageID(n) + 1
	}
	return pf, nil
}

// PageSize returns the slot size in bytes.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// Allocate reserves a page slot, reusing freed slots first.
func (pf *PageFile) Allocate() PageID {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if n := len(pf.free); n > 0 {
		id := pf.free[n-1]
		pf.free = pf.free[:n-1]
		return id
	}
	id := pf.next
	pf.next++
	return id
}

// Free returns a slot to the free list.
func (pf *PageFile) Free(id PageID) {
	if id == InvalidPageID {
		return
	}
	pf.mu.Lock()
	pf.free = append(pf.free, id)
	pf.mu.Unlock()
}

// WritePage stores img (at most PageSize bytes, shorter images are
// zero-padded by the slot layout) into the slot.
func (pf *PageFile) WritePage(id PageID, img []byte) error {
	if id == InvalidPageID {
		return fmt.Errorf("storage: write to invalid page id")
	}
	if len(img) > pf.pageSize {
		return fmt.Errorf("storage: image %d bytes exceeds page size %d", len(img), pf.pageSize)
	}
	if err := fault.Eval(fault.StorageWritePage); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	off := int64(id-1) * int64(pf.pageSize)
	if _, err := pf.f.WriteAt(img, off); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if pf.io != nil {
		pf.io.DataWrite.Add(int64(len(img)))
	}
	return nil
}

// ReadPage returns the slot's stored image (full slot; the page decoder
// reads its own length from the image header).
func (pf *PageFile) ReadPage(id PageID, buf []byte) ([]byte, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("storage: read of invalid page id")
	}
	if err := fault.Eval(fault.StorageReadPage); err != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if cap(buf) < pf.pageSize {
		buf = make([]byte, pf.pageSize)
	}
	buf = buf[:pf.pageSize]
	off := int64(id-1) * int64(pf.pageSize)
	n, err := pf.f.ReadAt(buf, off)
	if err != nil && n < pf.pageSize {
		// Reading the final, partially written slot is legal: zero-fill.
		for i := n; i < pf.pageSize; i++ {
			buf[i] = 0
		}
	}
	if pf.io != nil {
		pf.io.DataRead.Add(int64(pf.pageSize))
	}
	return buf, nil
}

// Sync flushes the file to stable storage.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// Close closes the underlying file.
func (pf *PageFile) Close() error { return pf.f.Close() }

// --- Block file --------------------------------------------------------------

// BlockRef locates a frozen block in the data block file.
type BlockRef struct {
	Offset int64
	Len    int32
}

// BlockFile is the append-only frozen-data store.
type BlockFile struct {
	f  *os.File
	io *metrics.IOCounters

	mu  sync.Mutex
	end int64
}

// OpenBlockFile creates or opens the block file at path. io may be nil.
func OpenBlockFile(path string, io *metrics.IOCounters) (*BlockFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open block file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &BlockFile{f: f, io: io, end: st.Size()}, nil
}

// AppendBlock writes blk at the end of the file and returns its reference.
func (bf *BlockFile) AppendBlock(blk []byte) (BlockRef, error) {
	if err := fault.Eval(fault.StorageAppendBlock); err != nil {
		return BlockRef{}, fmt.Errorf("storage: append block: %w", err)
	}
	bf.mu.Lock()
	off := bf.end
	bf.end += int64(len(blk))
	bf.mu.Unlock()
	if _, err := bf.f.WriteAt(blk, off); err != nil {
		return BlockRef{}, fmt.Errorf("storage: append block: %w", err)
	}
	if bf.io != nil {
		bf.io.DataWrite.Add(int64(len(blk)))
	}
	return BlockRef{Offset: off, Len: int32(len(blk))}, nil
}

// ReadBlock returns the block's bytes.
func (bf *BlockFile) ReadBlock(ref BlockRef) ([]byte, error) {
	buf := make([]byte, ref.Len)
	if _, err := bf.f.ReadAt(buf, ref.Offset); err != nil {
		return nil, fmt.Errorf("storage: read block at %d: %w", ref.Offset, err)
	}
	if bf.io != nil {
		bf.io.DataRead.Add(int64(ref.Len))
	}
	return buf, nil
}

// Size returns the file's logical end offset.
func (bf *BlockFile) Size() int64 {
	bf.mu.Lock()
	defer bf.mu.Unlock()
	return bf.end
}

// Sync flushes the file to stable storage.
func (bf *BlockFile) Sync() error { return bf.f.Sync() }

// Close closes the underlying file.
func (bf *BlockFile) Close() error { return bf.f.Close() }
