// Package adapter bridges the TPC-C workload's engine-agnostic Backend
// interface to the two systems under test: the PhoebeDB kernel and the
// PostgreSQL-style baseline engine.
package adapter

import (
	phoebedb "phoebedb"

	"phoebedb/internal/baseline"
	"phoebedb/internal/tpcc"
)

// Phoebe adapts a phoebedb.DB to tpcc.Backend.
type Phoebe struct {
	DB *phoebedb.DB
}

// CreateTable implements tpcc.Backend.
func (p Phoebe) CreateTable(name string, schema *phoebedb.Schema) error {
	return p.DB.CreateTable(name, schema)
}

// CreateIndex implements tpcc.Backend.
func (p Phoebe) CreateIndex(table, index string, cols []string, unique bool) error {
	return p.DB.CreateIndex(table, index, cols, unique)
}

// Execute implements tpcc.Backend: the transaction runs on a co-routine
// pool task slot.
func (p Phoebe) Execute(fn func(c tpcc.Client) error) error {
	return p.DB.Execute(func(tx *phoebedb.Tx) error { return fn(tx) })
}

// ExecuteTagged implements tpcc.TaggedBackend: the transaction's wall
// time, wait events, buffer misses, and WAL bytes are attributed to name
// in phoebe_stat_statements.
func (p Phoebe) ExecuteTagged(name string, fn func(c tpcc.Client) error) error {
	return p.DB.ExecuteTagged(name, func(tx *phoebedb.Tx) error { return fn(tx) })
}

// Baseline adapts a baseline.DB to tpcc.Backend.
type Baseline struct {
	DB *baseline.DB
}

// CreateTable implements tpcc.Backend.
func (b Baseline) CreateTable(name string, schema *phoebedb.Schema) error {
	return b.DB.CreateTable(name, schema)
}

// CreateIndex implements tpcc.Backend.
func (b Baseline) CreateIndex(table, index string, cols []string, unique bool) error {
	return b.DB.CreateIndex(table, index, cols, unique)
}

// Execute implements tpcc.Backend: the transaction runs thread-per-
// transaction on the caller's goroutine.
func (b Baseline) Execute(fn func(c tpcc.Client) error) error {
	return b.DB.Execute(func(tx *baseline.Tx) error { return fn(tx) })
}
