package swizzle

import (
	"sync"
	"testing"

	"phoebedb/internal/storage"
)

type payload struct{ v int }

func TestZeroSwipIsHotNil(t *testing.T) {
	var s Swip[payload]
	if s.State() != Hot {
		t.Fatalf("zero state = %v", s.State())
	}
	if s.Ptr() != nil {
		t.Fatal("zero ptr not nil")
	}
	if s.PageID() != storage.InvalidPageID {
		t.Fatal("zero page id not invalid")
	}
}

func TestLifecycle(t *testing.T) {
	var s Swip[payload]
	p := &payload{v: 7}
	s.Swizzle(p)
	s.SetPageID(42)
	if s.State() != Hot || s.Ptr() != p || !s.IsResident() {
		t.Fatal("swizzle did not install payload")
	}

	if !s.StartCooling() {
		t.Fatal("StartCooling failed on hot swip")
	}
	if s.State() != Cooling || s.Ptr() != p || !s.IsResident() {
		t.Fatal("cooling swip lost payload")
	}
	if s.StartCooling() {
		t.Fatal("StartCooling succeeded twice")
	}

	if !s.Unswizzle() {
		t.Fatal("Unswizzle failed on cooling swip")
	}
	if s.State() != Cold || s.Ptr() != nil || s.IsResident() {
		t.Fatal("cold swip retained payload")
	}
	if s.PageID() != 42 {
		t.Fatal("page id lost across unswizzle")
	}

	// Reload.
	s.Swizzle(&payload{v: 8})
	if s.State() != Hot || s.Ptr().v != 8 {
		t.Fatal("re-swizzle failed")
	}
}

func TestRescue(t *testing.T) {
	var s Swip[payload]
	s.Swizzle(&payload{})
	s.StartCooling()
	if !s.Rescue() {
		t.Fatal("rescue failed on cooling swip")
	}
	if s.State() != Hot {
		t.Fatal("rescued swip not hot")
	}
	if s.Rescue() {
		t.Fatal("rescue succeeded on hot swip")
	}
	// A rescued swip must not be unswizzleable.
	if s.Unswizzle() {
		t.Fatal("unswizzle succeeded on rescued (hot) swip")
	}
}

func TestUnswizzleRequiresCooling(t *testing.T) {
	var s Swip[payload]
	s.Swizzle(&payload{})
	if s.Unswizzle() {
		t.Fatal("unswizzle succeeded on hot swip")
	}
	s.StartCooling()
	s.Unswizzle()
	if s.Unswizzle() {
		t.Fatal("unswizzle succeeded twice")
	}
}

func TestRescueRace(t *testing.T) {
	// Many touches racing one evictor: exactly one of {rescue, unswizzle}
	// wins, and a rescued swip keeps its payload.
	for i := 0; i < 200; i++ {
		var s Swip[payload]
		p := &payload{v: i}
		s.Swizzle(p)
		s.StartCooling()
		var wg sync.WaitGroup
		var rescued, evicted bool
		wg.Add(2)
		go func() { defer wg.Done(); rescued = s.Rescue() }()
		go func() { defer wg.Done(); evicted = s.Unswizzle() }()
		wg.Wait()
		if rescued == evicted {
			t.Fatalf("iteration %d: rescued=%v evicted=%v", i, rescued, evicted)
		}
		if rescued && (s.State() != Hot || s.Ptr() != p) {
			t.Fatal("rescued swip corrupted")
		}
		if evicted && (s.State() != Cold || s.Ptr() != nil) {
			t.Fatal("evicted swip corrupted")
		}
	}
}

func TestStateString(t *testing.T) {
	if Hot.String() != "hot" || Cooling.String() != "cooling" || Cold.String() != "cold" {
		t.Fatal("state names wrong")
	}
	if State(9).String() != "invalid" {
		t.Fatal("invalid state name wrong")
	}
}

func BenchmarkHotDeref(b *testing.B) {
	var s Swip[payload]
	s.Swizzle(&payload{v: 1})
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Ptr().v
	}
	_ = sink
}
