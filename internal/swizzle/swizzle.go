// Package swizzle implements pointer swizzling (§5.3): the per-page tagged
// reference that lets PhoebeDB manage hot/cooling/cold page states without
// a global hash table mapping page IDs to buffer frames.
//
// A Swip is in one of three states:
//
//   - Hot: the swip directly references the in-memory payload; access is a
//     single pointer load with no indirection.
//   - Cooling: the payload is still resident but the page has been queued
//     for eviction; an access rescues it back to Hot cheaply.
//   - Cold: the payload has been written to the data page file; the swip
//     holds only the on-disk page ID and an access must reload the page.
//
// State transitions are performed under the owning page's exclusive latch;
// reads of the state word are atomic so optimistic readers can classify a
// swip without locking.
package swizzle

import (
	"sync/atomic"

	"phoebedb/internal/storage"
)

// State is a swip's residency state.
type State uint32

const (
	// Hot means the payload is resident and directly referenced.
	Hot State = iota
	// Cooling means resident but queued for eviction (§5.3's cooling bit).
	Cooling
	// Cold means evicted; only the disk page ID remains.
	Cold
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Hot:
		return "hot"
	case Cooling:
		return "cooling"
	case Cold:
		return "cold"
	default:
		return "invalid"
	}
}

// Swip is a swizzlable reference to a payload of type T. The zero Swip is
// Hot with a nil payload.
type Swip[T any] struct {
	state  atomic.Uint32
	ptr    atomic.Pointer[T]
	pageID atomic.Uint64
}

// State returns the current residency state.
func (s *Swip[T]) State() State { return State(s.state.Load()) }

// Ptr returns the resident payload pointer; nil when Cold.
func (s *Swip[T]) Ptr() *T { return s.ptr.Load() }

// PageID returns the on-disk page ID (meaningful once assigned; retained
// across swizzle/unswizzle so a page keeps its disk slot).
func (s *Swip[T]) PageID() storage.PageID {
	return storage.PageID(s.pageID.Load())
}

// SetPageID records the page's disk slot.
func (s *Swip[T]) SetPageID(id storage.PageID) { s.pageID.Store(uint64(id)) }

// Swizzle installs a resident payload and marks the swip Hot. Called when a
// page is created or loaded from disk, under the page latch.
func (s *Swip[T]) Swizzle(p *T) {
	s.ptr.Store(p)
	s.state.Store(uint32(Hot))
}

// StartCooling marks a Hot swip Cooling. Returns false if the swip was not
// Hot (already cooling, or cold).
func (s *Swip[T]) StartCooling() bool {
	return s.state.CompareAndSwap(uint32(Hot), uint32(Cooling))
}

// Rescue returns a Cooling swip to Hot (a touch arrived before eviction).
// Returns false if the swip was not Cooling.
func (s *Swip[T]) Rescue() bool {
	return s.state.CompareAndSwap(uint32(Cooling), uint32(Hot))
}

// Unswizzle completes eviction: drops the payload reference and marks the
// swip Cold. The caller must have written the payload to the page file
// first and must hold the page latch. Returns false unless the swip was
// Cooling (an access raced in and rescued it).
func (s *Swip[T]) Unswizzle() bool {
	if !s.state.CompareAndSwap(uint32(Cooling), uint32(Cold)) {
		return false
	}
	s.ptr.Store(nil)
	return true
}

// IsResident reports whether the payload is in memory (Hot or Cooling).
func (s *Swip[T]) IsResident() bool { return s.State() != Cold }
