package wire

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalExecOrdering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schema.sql")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// The statement must be on disk BEFORE apply runs (journal-first).
	err = j.Exec("CREATE TABLE a (x INT)", func() error {
		raw, rerr := os.ReadFile(path)
		if rerr != nil || !strings.Contains(string(raw), "CREATE TABLE a") {
			t.Fatalf("statement not journaled before apply: %q (%v)", raw, rerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A failing apply leaves the statement revoked, and Exec reports the
	// apply error.
	applyErr := errors.New("catalog says no")
	err = j.Exec("CREATE TABLE b (x INT)", func() error { return applyErr })
	if !errors.Is(err, applyErr) {
		t.Fatalf("err = %v", err)
	}

	var replayed []string
	n, err := j.Replay(func(stmt string) error {
		replayed = append(replayed, stmt)
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("replay = (%d, %v)", n, err)
	}
	if len(replayed) != 1 || !strings.HasPrefix(replayed[0], "CREATE TABLE a") {
		t.Fatalf("replayed = %v", replayed)
	}
}

// TestJournalLegacyFormat replays a plain-line schema file written by
// the pre-journal releases unchanged.
func TestJournalLegacyFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schema.sql")
	legacy := "CREATE TABLE old (a INT)\nCREATE INDEX old_a ON old (a)\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var replayed []string
	n, err := j.Replay(func(stmt string) error {
		replayed = append(replayed, stmt)
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("replay = (%d, %v)", n, err)
	}
	if replayed[0] != "CREATE TABLE old (a INT)" || replayed[1] != "CREATE INDEX old_a ON old (a)" {
		t.Fatalf("replayed = %v", replayed)
	}
}

func TestJournalRejectsNewlines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schema.sql")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Exec("CREATE TABLE x (a INT)\n; DROP", func() error { return nil }); err == nil {
		t.Fatal("newline statement journaled")
	}
}
