package wire

import (
	"testing"

	"phoebedb/internal/rel"
)

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream)
	stream = AppendQuery(stream, "SELECT 1")
	stream = AppendBegin(stream, 2)
	stream = AppendOK(stream, 42)
	stream = AppendError(stream, ErrCodeSQL, "boom")

	f, n, err := ParseFrame(stream)
	if err != nil || f.Type != FrameHello || f.Tenant != 0 {
		t.Fatalf("hello = (%+v, %v)", f, err)
	}
	stream = stream[n:]
	f, n, _ = ParseFrame(stream)
	if f.Type != FrameQuery || string(f.Body) != "SELECT 1" {
		t.Fatalf("query = %+v", f)
	}
	stream = stream[n:]
	f, n, _ = ParseFrame(stream)
	if f.Type != FrameBegin || f.Body[0] != 2 {
		t.Fatalf("begin = %+v", f)
	}
	stream = stream[n:]
	f, n, _ = ParseFrame(stream)
	if f.Type != FrameOK {
		t.Fatalf("ok = %+v", f)
	}
	if v, err := DecodeOK(f.Body); err != nil || v != 42 {
		t.Fatalf("affected = (%d, %v)", v, err)
	}
	stream = stream[n:]
	f, n, _ = ParseFrame(stream)
	code, msg, err := DecodeError(f.Body)
	if err != nil || code != ErrCodeSQL || msg != "boom" {
		t.Fatalf("error = (%q, %q, %v)", code, msg, err)
	}
	if len(stream[n:]) != 0 {
		t.Fatalf("%d trailing bytes", len(stream[n:]))
	}
}

func TestParseFramePartial(t *testing.T) {
	full := AppendQuery(nil, "SELECT 1")
	for i := 0; i < len(full); i++ {
		if f, n, err := ParseFrame(full[:i]); n != 0 || err != nil {
			t.Fatalf("prefix %d: (%+v, %d, %v)", i, f, n, err)
		}
	}
	if _, n, err := ParseFrame(full); n != len(full) || err != nil {
		t.Fatalf("full: (%d, %v)", n, err)
	}
	// A length below the fixed header is a framing error.
	if _, _, err := ParseFrame([]byte{0, 0, 0, 2, 0, 0}); err == nil {
		t.Fatal("undersized length accepted")
	}
}

func TestRowsRoundTrip(t *testing.T) {
	cols := []string{"id", "f", "v"}
	rows := []rel.Row{
		{rel.Int(-7), rel.Float(2.5), rel.Str("hello\tworld\n")},
		{rel.Int(1 << 40), rel.Float(-0.125), rel.Str("")},
	}
	frame, ok := AppendRows(nil, cols, rows)
	if !ok {
		t.Fatal("encode failed")
	}
	f, _, err := ParseFrame(frame)
	if err != nil || f.Type != FrameRows {
		t.Fatalf("frame = (%+v, %v)", f, err)
	}
	gotCols, gotRows, err := DecodeRows(f.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCols) != 3 || gotCols[2] != "v" {
		t.Fatalf("cols = %v", gotCols)
	}
	if len(gotRows) != 2 ||
		gotRows[0][0].I != -7 || gotRows[0][1].F != 2.5 || gotRows[0][2].S != "hello\tworld\n" ||
		gotRows[1][0].I != 1<<40 || gotRows[1][1].F != -0.125 || gotRows[1][2].S != "" {
		t.Fatalf("rows = %+v", gotRows)
	}
}

func TestRowsTooLarge(t *testing.T) {
	big := make([]rel.Row, 0, 64)
	s := rel.Str(string(make([]byte, 64*1024)))
	for i := 0; i < 64; i++ {
		big = append(big, rel.Row{s})
	}
	if _, ok := AppendRows(nil, []string{"v"}, big); ok {
		t.Fatal("oversized result encoded")
	}
}
