// Package wire is PhoebeDB's production front end: a framed, pipelined
// wire protocol served by a connection multiplexer that maps many client
// connections onto the kernel's co-routine slot pool, with admission
// control so overload degrades into structured rejections instead of
// collapse (DESIGN.md §4.14).
//
// # Frame format
//
// Every message in either direction is one frame:
//
//	uint32  length   big-endian; bytes following this field (>= 4)
//	byte    type     see the frame-type constants
//	byte    flags    0; reserved
//	uint16  tenant   big-endian; reserved for per-tenant namespaces, 0
//	...     body     length-4 bytes, layout per type
//
// Client frames: Hello (uint16 protocol version), Query (SQL text),
// Begin (1 isolation byte: 0 default / 1 read committed / 2 repeatable
// read), Commit, Rollback, Quit. Server frames: OK (uvarint affected
// rows), Error (uvarint code length, code, message), Rows (uvarint
// column count, columns as uvarint-length strings, uvarint row count,
// rows of kind-tagged values).
//
// # Pipelining
//
// A client may send any number of frames before reading responses; the
// server answers every request frame with exactly one response frame, in
// order. Errors — including statement errors mid-pipeline and oversized
// frames — consume their request and produce their response like any
// other statement, so the stream never desynchronizes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"phoebedb/internal/rel"
)

// Protocol constants.
const (
	// ProtocolVersion is the version the Hello frame must carry.
	ProtocolVersion = 1

	// headerLen is the fixed part after the length field: type, flags,
	// tenant.
	headerLen = 4

	// MaxFrame bounds a frame's length field (statement/result budget).
	// Larger client frames are consumed and answered with ErrCodeTooLarge
	// without killing the session.
	MaxFrame = 1 << 20
)

// Client→server frame types.
const (
	FrameHello    = 'h'
	FrameQuery    = 'Q'
	FrameBegin    = 'B'
	FrameCommit   = 'C'
	FrameRollback = 'R'
	FrameQuit     = 'X'
)

// Server→client frame types.
const (
	FrameOK    = 'K'
	FrameError = 'E'
	FrameRows  = 'D'
)

// Value kind tags inside a Rows frame.
const (
	kindInt    = 1
	kindFloat  = 2
	kindString = 3
)

// Structured error codes carried by Error frames.
const (
	// ErrCodeSQL is a statement parse/plan/execution error.
	ErrCodeSQL = "SQL"
	// ErrCodeTxn is a transaction-state error (BEGIN inside a
	// transaction, COMMIT without one, statement in an aborted
	// transaction).
	ErrCodeTxn = "TXN"
	// ErrCodeTooLarge reports a frame or result set over MaxFrame.
	ErrCodeTooLarge = "TOO_LARGE"
	// ErrCodeOverloaded reports admission-control rejection: the global
	// inflight limit and its queue are both full.
	ErrCodeOverloaded = "OVERLOADED"
	// ErrCodeTooManyConns reports the connection cap at accept time.
	ErrCodeTooManyConns = "TOO_MANY_CONNECTIONS"
	// ErrCodeProtocol is a malformed or out-of-order frame.
	ErrCodeProtocol = "PROTOCOL"
	// ErrCodeShutdown reports the server is stopping.
	ErrCodeShutdown = "SHUTDOWN"
)

// AppendFrame appends a complete frame (length, header, body) to dst.
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+len(body)))
	dst = append(dst, typ, 0, 0, 0) // type, flags, tenant (reserved)
	return append(dst, body...)
}

// AppendOK appends an OK frame carrying the affected-row count.
func AppendOK(dst []byte, affected int) []byte {
	var body [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(body[:], uint64(affected))
	return AppendFrame(dst, FrameOK, body[:n])
}

// AppendError appends an Error frame with a structured code and message.
func AppendError(dst []byte, code, msg string) []byte {
	body := make([]byte, 0, 1+len(code)+len(msg))
	body = binary.AppendUvarint(body, uint64(len(code)))
	body = append(body, code...)
	body = append(body, msg...)
	return AppendFrame(dst, FrameError, body)
}

// AppendRows appends a Rows frame for a result set. It fails (with a
// nil append) when the encoding would exceed MaxFrame; the caller
// substitutes an ErrCodeTooLarge error so framing stays intact.
func AppendRows(dst []byte, cols []string, rows []rel.Row) ([]byte, bool) {
	body := make([]byte, 0, 64+32*len(rows))
	body = binary.AppendUvarint(body, uint64(len(cols)))
	for _, c := range cols {
		body = binary.AppendUvarint(body, uint64(len(c)))
		body = append(body, c...)
	}
	body = binary.AppendUvarint(body, uint64(len(rows)))
	for _, row := range rows {
		for _, v := range row {
			switch v.Kind {
			case rel.TInt64:
				body = append(body, kindInt)
				body = binary.BigEndian.AppendUint64(body, uint64(v.I))
			case rel.TFloat64:
				body = append(body, kindFloat)
				body = binary.BigEndian.AppendUint64(body, math.Float64bits(v.F))
			default:
				body = append(body, kindString)
				body = binary.AppendUvarint(body, uint64(len(v.S)))
				body = append(body, v.S...)
			}
		}
		if headerLen+len(body) > MaxFrame {
			return dst, false
		}
	}
	if headerLen+len(body) > MaxFrame {
		return dst, false
	}
	return AppendFrame(dst, FrameRows, body), true
}

// Frame is one decoded frame header plus its body bytes.
type Frame struct {
	Type   byte
	Flags  byte
	Tenant uint16
	Body   []byte
}

// ParseFrame decodes the first complete frame in buf. It returns the
// frame, the bytes consumed (0 when buf does not yet hold a complete
// frame), and an error for unrecoverable framing problems (length below
// the fixed header). Oversized frames are the caller's business: it sees
// the declared length via PeekLength before calling.
func ParseFrame(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, nil
	}
	ln := int(binary.BigEndian.Uint32(buf))
	if ln < headerLen {
		return Frame{}, 0, fmt.Errorf("wire: frame length %d below header", ln)
	}
	if len(buf) < 4+ln {
		return Frame{}, 0, nil
	}
	f := Frame{
		Type:   buf[4],
		Flags:  buf[5],
		Tenant: binary.BigEndian.Uint16(buf[6:8]),
		Body:   buf[8 : 4+ln],
	}
	return f, 4 + ln, nil
}

// PeekLength returns the declared length of the frame starting at buf
// (ok=false with fewer than 4 bytes buffered).
func PeekLength(buf []byte) (int, bool) {
	if len(buf) < 4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(buf)), true
}

// DecodeError splits an Error frame body into code and message.
func DecodeError(body []byte) (code, msg string, err error) {
	n, used := binary.Uvarint(body)
	if used <= 0 || int(n) > len(body)-used {
		return "", "", fmt.Errorf("wire: malformed error frame")
	}
	return string(body[used : used+int(n)]), string(body[used+int(n):]), nil
}

// DecodeOK returns the affected-row count from an OK frame body.
func DecodeOK(body []byte) (int, error) {
	n, used := binary.Uvarint(body)
	if used <= 0 {
		return 0, fmt.Errorf("wire: malformed OK frame")
	}
	return int(n), nil
}

// DecodeRows decodes a Rows frame body into column names and rows.
func DecodeRows(body []byte) ([]string, []rel.Row, error) {
	bad := func() ([]string, []rel.Row, error) {
		return nil, nil, fmt.Errorf("wire: malformed rows frame")
	}
	ncols, used := binary.Uvarint(body)
	if used <= 0 || ncols > uint64(len(body)) {
		return bad()
	}
	body = body[used:]
	cols := make([]string, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		ln, u := binary.Uvarint(body)
		if u <= 0 || int(ln) > len(body)-u {
			return bad()
		}
		cols = append(cols, string(body[u:u+int(ln)]))
		body = body[u+int(ln):]
	}
	nrows, used := binary.Uvarint(body)
	if used <= 0 {
		return bad()
	}
	body = body[used:]
	rows := make([]rel.Row, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		row := make(rel.Row, 0, ncols)
		for j := uint64(0); j < ncols; j++ {
			if len(body) < 1 {
				return bad()
			}
			kind := body[0]
			body = body[1:]
			switch kind {
			case kindInt:
				if len(body) < 8 {
					return bad()
				}
				row = append(row, rel.Int(int64(binary.BigEndian.Uint64(body))))
				body = body[8:]
			case kindFloat:
				if len(body) < 8 {
					return bad()
				}
				row = append(row, rel.Float(math.Float64frombits(binary.BigEndian.Uint64(body))))
				body = body[8:]
			case kindString:
				ln, u := binary.Uvarint(body)
				if u <= 0 || int(ln) > len(body)-u {
					return bad()
				}
				row = append(row, rel.Str(string(body[u:u+int(ln)])))
				body = body[u+int(ln):]
			default:
				return bad()
			}
		}
		rows = append(rows, row)
	}
	return cols, rows, nil
}

// AppendHello appends the client's Hello frame.
func AppendHello(dst []byte) []byte {
	var body [2]byte
	binary.BigEndian.PutUint16(body[:], ProtocolVersion)
	return AppendFrame(dst, FrameHello, body[:])
}

// AppendQuery appends a Query frame.
func AppendQuery(dst []byte, sql string) []byte {
	return AppendFrame(dst, FrameQuery, []byte(sql))
}

// AppendBegin appends a Begin frame; iso is the isolation byte.
func AppendBegin(dst []byte, iso byte) []byte {
	return AppendFrame(dst, FrameBegin, []byte{iso})
}
