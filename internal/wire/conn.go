package wire

import (
	"net"
	"sync"
	"time"
)

// request is one decoded client frame waiting for its session task, or a
// pre-failed placeholder (an oversized frame already discarded by the
// reader) that still owes the client an in-order error response.
type request struct {
	typ  byte
	body []byte
	at   time.Time // enqueue time; charged to the "server" wait event
	// failCode, when non-empty, short-circuits execution: the response is
	// an Error frame with this code/message.
	failCode string
	failMsg  string
}

// conn is one client connection. Its read-side buffers (rbuf, skip) are
// touched only by the single reader that currently owns the connection
// (EPOLLONESHOT on Linux, the dedicated read goroutine elsewhere);
// everything else is guarded by mu. Lock order: Server.admitMu before
// conn.mu.
type conn struct {
	srv *Server
	nc  net.Conn

	// poll is per-platform read-side state (fd + token on Linux, the
	// resume channel for the blocking fallback).
	poll pollConn

	// rbuf holds a partial frame between reads; skip counts remaining
	// bytes of an oversized frame being discarded.
	rbuf []byte
	skip int

	mu      sync.Mutex
	closed  bool
	quit    bool // client sent Quit: close once the outbox drains
	pending []request
	phead   int
	running bool // a session task owns this conn
	waiting bool // the session task is parked awaiting the next frame
	queued  bool // sitting in the admission queue
	paused  bool // pipeline full: reads stay un-armed until drained
	out     []byte
	spare   []byte
	wQueued bool // queued on the writer pool

	// notify wakes a parked session task (new frame or close). Cap 1;
	// sends are non-blocking.
	notify chan struct{}
}

func (c *conn) depthLocked() int { return len(c.pending) - c.phead }

func (c *conn) hasPendingLocked() bool { return c.phead < len(c.pending) }

func (c *conn) popPendingLocked() request {
	req := c.pending[c.phead]
	c.pending[c.phead] = request{}
	c.phead++
	if c.phead == len(c.pending) {
		c.pending = c.pending[:0]
		c.phead = 0
	}
	return req
}

// ingest outcome for the platform read loops.
type ingestResult int

const (
	// ingestMore: keep reading.
	ingestMore ingestResult = iota
	// ingestPaused: the pipeline limit was hit; stop reading until the
	// session drains the queue (Server.resumeRead re-arms).
	ingestPaused
	// ingestDead: the connection was shed (protocol violation).
	ingestDead
)

// ingest consumes freshly read bytes: it splits frames out of the stream,
// enqueues them as requests, discards oversized frames (queueing an
// in-order TOO_LARGE response), and decides whether the connection needs
// admission or backpressure. Called only by the conn's current reader.
func (s *Server) ingest(c *conn, data []byte) ingestResult {
	buf := data
	if len(c.rbuf) > 0 {
		buf = append(c.rbuf, data...)
	}
	now := time.Now()
	var reqs []request
	for {
		if c.skip > 0 {
			n := c.skip
			if n > len(buf) {
				n = len(buf)
			}
			buf = buf[n:]
			c.skip -= n
			if c.skip > 0 {
				break
			}
			reqs = append(reqs, request{at: now, failCode: ErrCodeTooLarge,
				failMsg: "frame exceeds 1 MiB limit"})
			continue
		}
		ln, ok := PeekLength(buf)
		if !ok {
			break
		}
		if ln > MaxFrame {
			s.cOversized.Add(1)
			c.skip = ln - (len(buf) - 4)
			if c.skip <= 0 {
				// The whole oversized frame is already buffered.
				buf = buf[4+ln:]
				c.skip = 0
				reqs = append(reqs, request{at: now, failCode: ErrCodeTooLarge,
					failMsg: "frame exceeds 1 MiB limit"})
				continue
			}
			buf = buf[len(buf):]
			continue
		}
		f, n, err := ParseFrame(buf)
		if err != nil {
			s.send(c, AppendError(nil, ErrCodeProtocol, err.Error()))
			s.closeConn(c)
			return ingestDead
		}
		if n == 0 {
			break
		}
		body := make([]byte, len(f.Body))
		copy(body, f.Body)
		reqs = append(reqs, request{typ: f.Type, body: body, at: now})
		buf = buf[n:]
	}
	// Compact the partial tail into the conn's own buffer: buf may alias
	// the reader's scratch slice, which is reused for other conns.
	c.rbuf = append(c.rbuf[:0], buf...)

	if len(reqs) == 0 {
		return ingestMore
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ingestDead
	}
	c.pending = append(c.pending, reqs...)
	depth := c.depthLocked()
	if depth >= s.MaxPipeline {
		c.paused = true
	}
	wake := c.waiting
	admit := !c.running && !c.queued
	paused := c.paused
	c.mu.Unlock()

	s.hDepth.Observe(time.Duration(depth))
	if wake {
		select {
		case c.notify <- struct{}{}:
		default:
		}
	} else if admit {
		s.tryAdmit(c)
	}
	if paused {
		return ingestPaused
	}
	return ingestMore
}
