package wire_test

// End-to-end tests of the wire front end, driven through the public
// client package (pipelining, session transactions) and through raw
// frames where the client is deliberately misbehaving (oversized
// frames, abrupt disconnects).

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	phoebedb "phoebedb"

	"phoebedb/client"
	"phoebedb/internal/wire"
)

func openDB(t *testing.T, opts phoebedb.Options) *phoebedb.DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.SlotsPerWorker == 0 {
		opts.SlotsPerWorker = 8
	}
	db, err := phoebedb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func startWire(t *testing.T, db *phoebedb.DB, cfg func(*wire.Server)) (string, *wire.Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(db)
	if cfg != nil {
		cfg(srv)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(l) })
	return l.Addr().String(), srv
}

// statValue reads one row of phoebe_stat_server through SQL.
func statValue(t *testing.T, db *phoebedb.DB, name string) int64 {
	t.Helper()
	res, err := db.ExecSQL("SELECT value FROM phoebe_stat_server WHERE name = '" + name + "'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("phoebe_stat_server[%s] rows = %+v", name, res.Rows)
	}
	return res.Rows[0][0].I
}

func TestWireEndToEnd(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, nil)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE t (id INT, v STRING, f FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE UNIQUE INDEX t_pk ON t (id)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("INSERT INTO t VALUES (1, 'hello', 1.5), (2, 'world', 2.5)")
	if err != nil || res.Affected != 2 {
		t.Fatalf("insert = (%+v, %v)", res, err)
	}
	res, err = c.Exec("SELECT v, f FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "world" || res.Rows[0][1] != "2.5" {
		t.Fatalf("select = %+v", res)
	}
	if res.Columns[0] != "v" || res.Columns[1] != "f" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// A statement error must not kill the session.
	if _, err := c.Exec("SELEC nope"); err == nil {
		t.Fatal("bad statement succeeded")
	} else if se, ok := err.(*client.ServerError); !ok || se.Code != wire.ErrCodeSQL {
		t.Fatalf("error = %v", err)
	}
	if _, err := c.Exec("DELETE FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
}

// TestWirePipelining enqueues a burst of statements — with an error in
// the middle — before reading anything, and checks every response comes
// back in order without desynchronizing the framing.
func TestWirePipelining(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, nil)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE p (id INT, v STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE UNIQUE INDEX p_pk ON p (id)"); err != nil {
		t.Fatal(err)
	}

	const n = 50
	const badAt = 23
	for i := 0; i < n; i++ {
		if i == badAt {
			c.Send("INSERT INTO nosuch VALUES (1)")
			continue
		}
		c.Send(fmt.Sprintf("INSERT INTO p VALUES (%d, 'v%d')", i, i))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res, err := c.Recv()
		if i == badAt {
			if err == nil {
				t.Fatalf("response %d: expected error", i)
			}
			continue
		}
		if err != nil || res.Affected != 1 {
			t.Fatalf("response %d = (%+v, %v)", i, res, err)
		}
	}

	// Now pipeline reads and check each value lands on the right response.
	for i := 0; i < n; i++ {
		if i == badAt {
			continue
		}
		c.Send(fmt.Sprintf("SELECT v FROM p WHERE id = %d", i))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == badAt {
			continue
		}
		res, err := c.Recv()
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "v"+strconv.Itoa(i) {
			t.Fatalf("select %d = (%+v, %v)", i, res, err)
		}
	}
}

// TestWireSessionTransactions covers the explicit-transaction lifecycle
// across frames: visibility inside the transaction, rollback, commit,
// and the aborted state after a mid-transaction error.
func TestWireSessionTransactions(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, nil)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	mustExec := func(cl *client.Conn, q string) client.Result {
		t.Helper()
		res, err := cl.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res
	}
	mustExec(c, "CREATE TABLE tx (id INT, v STRING)")
	mustExec(c, "CREATE UNIQUE INDEX tx_pk ON tx (id)")

	// Rollback discards.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(c, "INSERT INTO tx VALUES (1, 'a')")
	if res := mustExec(c, "SELECT * FROM tx"); len(res.Rows) != 1 {
		t.Fatalf("in-txn visibility: %+v", res)
	}
	// Uncommitted writes are invisible to other sessions.
	if res := mustExec(c2, "SELECT * FROM tx"); len(res.Rows) != 0 {
		t.Fatalf("dirty read: %+v", res)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	if res := mustExec(c, "SELECT * FROM tx"); len(res.Rows) != 0 {
		t.Fatalf("rollback left rows: %+v", res)
	}

	// Commit publishes.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(c, "INSERT INTO tx VALUES (2, 'b')")
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if res := mustExec(c2, "SELECT v FROM tx WHERE id = 2"); len(res.Rows) != 1 || res.Rows[0][0] != "b" {
		t.Fatalf("post-commit: %+v", res)
	}

	// BEGIN inside a transaction is a TXN error; a failed statement puts
	// the session in the aborted state until ROLLBACK.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err == nil {
		t.Fatal("nested BEGIN succeeded")
	} else if se, ok := err.(*client.ServerError); !ok || se.Code != wire.ErrCodeTxn {
		t.Fatalf("nested BEGIN error = %v", err)
	}
	if _, err := c.Exec("INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Fatal("bad insert succeeded")
	}
	if _, err := c.Exec("SELECT * FROM tx"); err == nil {
		t.Fatal("statement in aborted transaction succeeded")
	} else if se, ok := err.(*client.ServerError); !ok || se.Code != wire.ErrCodeTxn {
		t.Fatalf("aborted-state error = %v", err)
	}
	if err := c.Commit(); err == nil {
		t.Fatal("COMMIT of aborted transaction succeeded")
	}
	// The abort was reported by COMMIT; the session is usable again.
	if res := mustExec(c, "SELECT v FROM tx WHERE id = 2"); len(res.Rows) != 1 {
		t.Fatalf("post-abort: %+v", res)
	}

	// DDL inside a transaction is rejected.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE TABLE nope (a INT)"); err == nil {
		t.Fatal("DDL in transaction succeeded")
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// rawConn is a frame-level client for misbehavior tests.
type rawConn struct {
	nc net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	r := &rawConn{nc: nc}
	r.write(t, wire.AppendHello(nil))
	if typ, _ := r.read(t); typ != wire.FrameOK {
		t.Fatalf("hello response = %q", typ)
	}
	return r
}

func (r *rawConn) write(t *testing.T, b []byte) {
	t.Helper()
	if _, err := r.nc.Write(b); err != nil {
		t.Fatal(err)
	}
}

func (r *rawConn) read(t *testing.T) (byte, []byte) {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(r.nc, hdr[:]); err != nil {
		t.Fatal(err)
	}
	ln := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, ln)
	if _, err := io.ReadFull(r.nc, buf); err != nil {
		t.Fatal(err)
	}
	return buf[0], buf[4:]
}

// TestWireOversizedFrame streams a frame over the 1 MiB limit followed
// by a valid statement: the server must discard the oversized frame,
// answer it with TOO_LARGE in pipeline order, and keep the session.
func TestWireOversizedFrame(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, nil)
	if _, err := db.ExecSQL("CREATE TABLE big (id INT)"); err != nil {
		t.Fatal(err)
	}
	r := dialRaw(t, addr)
	defer r.nc.Close()

	// Oversized Query frame: declared length 2 MiB.
	huge := 2 << 20
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(huge))
	hdr[4] = wire.FrameQuery
	r.write(t, hdr[:])
	junk := make([]byte, 64*1024)
	for sent := 4; sent < huge; sent += len(junk) {
		n := len(junk)
		if huge-sent < n {
			n = huge - sent
		}
		r.write(t, junk[:n])
	}
	// Immediately pipeline a valid statement behind it.
	r.write(t, wire.AppendQuery(nil, "INSERT INTO big VALUES (1)"))

	typ, body := r.read(t)
	if typ != wire.FrameError {
		t.Fatalf("first response = %q", typ)
	}
	code, _, err := wire.DecodeError(body)
	if err != nil || code != wire.ErrCodeTooLarge {
		t.Fatalf("first response code = %q (%v)", code, err)
	}
	typ, body = r.read(t)
	if typ != wire.FrameOK {
		t.Fatalf("second response = %q", typ)
	}
	if n, _ := wire.DecodeOK(body); n != 1 {
		t.Fatalf("affected = %d", n)
	}
	if v := statValue(t, db, "oversized_frames"); v < 1 {
		t.Fatalf("oversized_frames = %d", v)
	}
}

// TestWireRollbackOnDisconnect kills a connection mid-transaction and
// checks the server rolls the transaction back (releasing its locks and
// discarding its writes).
func TestWireRollbackOnDisconnect(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, func(s *wire.Server) {
		s.IdleTxnTimeout = time.Hour // disconnect, not timeout, must trigger the rollback
	})
	if _, err := db.ExecSQL("CREATE TABLE d (id INT)"); err != nil {
		t.Fatal(err)
	}

	r := dialRaw(t, addr)
	r.write(t, wire.AppendBegin(nil, 0))
	if typ, _ := r.read(t); typ != wire.FrameOK {
		t.Fatal("BEGIN failed")
	}
	r.write(t, wire.AppendQuery(nil, "INSERT INTO d VALUES (1)"))
	if typ, _ := r.read(t); typ != wire.FrameOK {
		t.Fatal("INSERT failed")
	}
	r.nc.Close() // abrupt disconnect, transaction open

	deadline := time.Now().Add(5 * time.Second)
	for statValue(t, db, "disconnect_rollbacks") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect rollback never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := db.ExecSQL("SELECT * FROM d")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("rows after disconnect = (%+v, %v)", res, err)
	}
}

// TestWireAdmissionControl saturates a MaxInflight=1, MaxQueue=1 server
// with an idle-in-transaction session plus a queued connection, and
// checks a third connection's work is rejected with OVERLOADED while
// the existing sessions keep executing to completion.
func TestWireAdmissionControl(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, func(s *wire.Server) {
		s.MaxInflight = 1
		s.MaxQueue = 1
	})
	if _, err := db.ExecSQL("CREATE TABLE a (id INT)"); err != nil {
		t.Fatal(err)
	}

	// Handshake all three connections while the server is unloaded (a
	// hello is admission-controlled like any other request).
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Session A holds the only inflight slot with an open transaction.
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("INSERT INTO a VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	// Session B's statement lands in the admission queue.
	b.Send("INSERT INTO a VALUES (2)")
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for statValue(t, db, "queued") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("statement never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Session C finds inflight and queue both full: OVERLOADED, and the
	// connection survives the rejection.
	if _, err := c.Exec("INSERT INTO a VALUES (3)"); err == nil {
		t.Fatal("overload insert succeeded")
	} else if se, ok := err.(*client.ServerError); !ok || se.Code != wire.ErrCodeOverloaded {
		t.Fatalf("overload error = %v", err)
	}
	if v := statValue(t, db, "rejected_overloaded"); v < 1 {
		t.Fatalf("rejected_overloaded = %d", v)
	}

	// A commits; B's queued statement must now execute.
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if res, err := b.Recv(); err != nil || res.Affected != 1 {
		t.Fatalf("queued statement = (%+v, %v)", res, err)
	}
	// C is usable again once load drains.
	if _, err := c.Exec("INSERT INTO a VALUES (4)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT * FROM a")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("final rows = (%+v, %v)", res, err)
	}
}

// TestWireIdleTxnTimeout checks the server rolls back a transaction its
// client abandoned without disconnecting.
func TestWireIdleTxnTimeout(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, func(s *wire.Server) {
		s.IdleTxnTimeout = 50 * time.Millisecond
	})
	if _, err := db.ExecSQL("CREATE TABLE idle (id INT)"); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO idle VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for statValue(t, db, "idle_txn_rollbacks") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("idle transaction never rolled back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The session survives; its transaction is gone.
	if err := c.Commit(); err == nil {
		t.Fatal("COMMIT after idle rollback succeeded")
	}
	res, err := db.ExecSQL("SELECT * FROM idle")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("rows after idle rollback = (%+v, %v)", res, err)
	}
}

// TestWireManyConnections races many concurrent pipelined sessions (run
// under -race in CI) and, on Linux, checks goroutine count stays O(pool)
// rather than O(connections) while connections sit idle.
func TestWireManyConnections(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, nil)
	if _, err := db.ExecSQL("CREATE TABLE m (id INT, v STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("CREATE UNIQUE INDEX m_pk ON m (id)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO m VALUES (%d, 'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}

	const conns = 64
	const depth = 8
	clients := make([]*client.Conn, conns)
	for i := range clients {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}

	if runtime.GOOS == "linux" {
		// All connections idle: goroutines must not scale with conns.
		before := runtime.NumGoroutine()
		if before > conns/2 {
			t.Errorf("idle goroutines = %d with %d connections; multiplexer not multiplexing", before, conns)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, conns)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				for j := 0; j < depth; j++ {
					id := (i + j) % 64
					c.Send(fmt.Sprintf("SELECT v FROM m WHERE id = %d", id))
				}
				if err := c.Flush(); err != nil {
					errs[i] = err
					return
				}
				for j := 0; j < depth; j++ {
					id := (i + j) % 64
					res, err := c.Recv()
					if err != nil {
						errs[i] = err
						return
					}
					if len(res.Rows) != 1 || res.Rows[0][0] != "v"+strconv.Itoa(id) {
						errs[i] = fmt.Errorf("conn %d: wrong row %+v for id %d", i, res.Rows, id)
						return
					}
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}
	if v := statValue(t, db, "admitted"); v < 1 {
		t.Fatalf("admitted = %d", v)
	}
}

// TestWireMaxConnections checks the accept-time cap: the excess
// connection gets a structured TOO_MANY_CONNECTIONS error, existing
// connections keep working.
func TestWireMaxConnections(t *testing.T) {
	db := openDB(t, phoebedb.Options{})
	addr, _ := startWire(t, db, func(s *wire.Server) {
		s.MaxConnections = 2
	})
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(nc, hdr[:]); err != nil {
		t.Fatalf("no rejection frame: %v", err)
	}
	buf := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != wire.FrameError {
		t.Fatalf("rejection frame type = %q", buf[0])
	}
	code, _, err := wire.DecodeError(buf[4:])
	if err != nil || code != wire.ErrCodeTooManyConns {
		t.Fatalf("rejection code = %q (%v)", code, err)
	}
	if _, err := a.Exec("CREATE TABLE mc (id INT)"); err != nil {
		t.Fatalf("existing connection broken: %v", err)
	}
}
