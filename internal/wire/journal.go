package wire

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"
)

// revokeMarker cancels the statement recorded immediately before it.
// A marker is appended when a journaled DDL statement fails to execute,
// so replay skips it instead of re-applying a statement the catalog
// rejected.
const revokeMarker = "--revoke"

// Journal is the durable DDL journal shared by the wire and legacy text
// front ends. The ordering invariant is journal-first: a statement is
// recorded (and fsynced) BEFORE it executes, so a crash between the two
// replays the statement forward on restart — the journal can only ever
// be ahead of the catalog, never behind it. When execution fails after
// recording, a revoke marker is appended so replay skips the statement;
// if even the marker cannot be written, Exec reports the journal as
// inconsistent rather than leaving a silent divergence.
//
// The format is one statement per line. Files written by earlier
// releases (plain statement lines, no markers) replay unchanged.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenJournal opens (creating if needed) the journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{path: path, f: f}, nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// appendLine writes one line and fsyncs it.
func (j *Journal) appendLine(line string) error {
	if _, err := fmt.Fprintln(j.f, line); err != nil {
		return err
	}
	return j.f.Sync()
}

// Exec runs a DDL statement under the journal-first protocol: record the
// statement durably, run apply, and on apply failure append a revoke
// marker so replay skips it. A failure to record prevents execution
// entirely; a failure to revoke after a failed apply is reported as a
// journal inconsistency (the statement would otherwise replay on the
// next restart even though it never took effect).
func (j *Journal) Exec(stmt string, apply func() error) error {
	if strings.ContainsAny(stmt, "\n\r") {
		return fmt.Errorf("wire: DDL statement contains newline; cannot journal")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLine(stmt); err != nil {
		return fmt.Errorf("schema journal: %w", err)
	}
	aerr := apply()
	if aerr == nil {
		return nil
	}
	if rerr := j.appendLine(revokeMarker); rerr != nil {
		return fmt.Errorf("schema journal inconsistent: statement %q failed (%v) and revoke marker could not be written: %w", stmt, aerr, rerr)
	}
	return aerr
}

// Replay re-executes the journaled statements in order through exec,
// skipping revoked entries. Statements that fail to re-apply are skipped
// (the catalog may already contain them when the crash happened between
// record and a completed apply); it returns how many statements were
// attempted.
func (j *Journal) Replay(exec func(stmt string) error) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	var stmts []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), MaxFrame)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == revokeMarker:
			if len(stmts) > 0 {
				stmts = stmts[:len(stmts)-1]
			}
		default:
			stmts = append(stmts, line)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for _, s := range stmts {
		// Idempotent replay: "already exists" from a statement that
		// completed before the crash is expected, not an error.
		_ = exec(s)
	}
	return len(stmts), nil
}
