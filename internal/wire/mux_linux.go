//go:build linux

package wire

// The Linux read path is the multiplexer the ISSUE calls for: idle
// connections cost one epoll registration and ~no memory, not a parked
// goroutine. One poller goroutine runs epoll_wait; readable connections
// are handed to a small fixed pool of reader goroutines that drain the
// socket with non-blocking reads and decode frames. EPOLLONESHOT
// guarantees a connection is owned by at most one reader at a time; the
// reader re-arms after hitting EAGAIN (or the session re-arms after
// draining a full pipeline), so total goroutines are O(readers +
// writers + active sessions), independent of open connections.
//
// Events are routed by token, not file descriptor: the kernel can
// recycle an fd the instant it closes, but a token is never reused, so
// a stale event left in the epoll ring after a close can at worst miss
// in the token map — it can never reach the wrong connection. Tokens
// are deleted (and EPOLL_CTL_DEL issued) before the fd is closed.

import (
	"sync"
	"syscall"
)

// wakeToken marks the shutdown pipe's epoll registration; conn tokens
// start at 1.
const wakeToken = 0

type pollState struct {
	epfd    int
	wakeR   int
	wakeW   int
	mu      sync.Mutex
	toks    map[uint32]*conn
	nextTok uint32
}

// pollConn is the per-connection read-side state: the raw-syscall handle
// for non-blocking reads and the epoll routing token.
type pollConn struct {
	raw syscall.RawConn
	fd  int
	tok uint32
}

func (s *Server) pollerInit() error {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return err
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: wakeToken}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(p[0])
		syscall.Close(p[1])
		return err
	}
	s.poll.epfd = epfd
	s.poll.wakeR = p[0]
	s.poll.wakeW = p[1]
	s.poll.toks = make(map[uint32]*conn)
	return nil
}

func (s *Server) pollerShutdown() {
	syscall.Close(s.poll.epfd)
	syscall.Close(s.poll.wakeR)
	syscall.Close(s.poll.wakeW)
}

func (s *Server) pollerWake() {
	var b [1]byte
	syscall.Write(s.poll.wakeW, b[:])
}

const connEvents = syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT

func (s *Server) pollerRegister(c *conn) error {
	sc, ok := c.nc.(syscall.Conn)
	if !ok {
		return syscall.EINVAL
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return err
	}
	c.poll.raw = raw
	if err := raw.Control(func(fd uintptr) { c.poll.fd = int(fd) }); err != nil {
		return err
	}
	s.poll.mu.Lock()
	s.poll.nextTok++
	c.poll.tok = s.poll.nextTok
	s.poll.toks[c.poll.tok] = c
	err = syscall.EpollCtl(s.poll.epfd, syscall.EPOLL_CTL_ADD, c.poll.fd,
		&syscall.EpollEvent{Events: connEvents, Fd: int32(c.poll.tok)})
	if err != nil {
		delete(s.poll.toks, c.poll.tok)
	}
	s.poll.mu.Unlock()
	return err
}

// pollerResume re-arms the oneshot registration after a reader hit
// EAGAIN, or after the session drained a full pipeline (backpressure
// release). The token check makes resume-after-close a no-op.
func (s *Server) pollerResume(c *conn) {
	s.poll.mu.Lock()
	if s.poll.toks[c.poll.tok] == c {
		syscall.EpollCtl(s.poll.epfd, syscall.EPOLL_CTL_MOD, c.poll.fd,
			&syscall.EpollEvent{Events: connEvents, Fd: int32(c.poll.tok)})
	}
	s.poll.mu.Unlock()
}

// pollerUnregister runs before the fd closes (see closeConn).
func (s *Server) pollerUnregister(c *conn) {
	s.poll.mu.Lock()
	if s.poll.toks[c.poll.tok] == c {
		delete(s.poll.toks, c.poll.tok)
		syscall.EpollCtl(s.poll.epfd, syscall.EPOLL_CTL_DEL, c.poll.fd, nil)
	}
	s.poll.mu.Unlock()
}

func (s *Server) startReaders() {
	s.wg.Add(1)
	go s.pollLoop()
	for i := 0; i < s.Readers; i++ {
		s.wg.Add(1)
		go s.reader()
	}
}

func (s *Server) pollLoop() {
	defer s.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(s.poll.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			tok := uint32(events[i].Fd)
			if tok == wakeToken {
				select {
				case <-s.done:
					return
				default:
				}
				var b [8]byte
				syscall.Read(s.poll.wakeR, b[:])
				continue
			}
			s.poll.mu.Lock()
			c := s.poll.toks[tok]
			s.poll.mu.Unlock()
			if c == nil {
				continue
			}
			select {
			case s.readable <- c:
			case <-s.done:
				return
			}
		}
	}
}

func (s *Server) reader() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-s.done:
			return
		case c := <-s.readable:
			s.serveRead(c, buf)
		}
	}
}

// serveRead drains one readable connection: non-blocking reads until
// EAGAIN (then re-arm), EOF/error (then close), or pipeline-full (then
// leave un-armed; the session resumes reads when it drains).
func (s *Server) serveRead(c *conn, buf []byte) {
	for {
		n, err := readNB(c, buf)
		if n > 0 {
			s.cBytesIn.Add(int64(n))
			switch s.ingest(c, buf[:n]) {
			case ingestDead, ingestPaused:
				return
			}
		}
		if err == syscall.EAGAIN {
			s.pollerResume(c)
			return
		}
		if err != nil || n == 0 { // error or EOF
			s.closeConn(c)
			return
		}
	}
}

// readNB performs one non-blocking read through the RawConn, which pins
// the fd against close/reuse for the duration of the syscall. Returning
// true from the callback means "don't wait for readability" — the whole
// point: EAGAIN surfaces to the caller instead of parking a goroutine.
func readNB(c *conn, p []byte) (int, error) {
	var n int
	var rerr error
	cerr := c.poll.raw.Read(func(fd uintptr) bool {
		for {
			n, rerr = syscall.Read(int(fd), p)
			if rerr != syscall.EINTR {
				return true
			}
		}
	})
	if n < 0 {
		n = 0
	}
	if cerr != nil {
		return n, cerr
	}
	return n, rerr
}
