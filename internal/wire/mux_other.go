//go:build !linux

package wire

// Portable fallback read path: one blocking-read goroutine per
// connection. Functionally identical to the Linux epoll multiplexer
// (same framing, admission, and backpressure), but idle connections
// cost a parked goroutine each — O(connections) instead of O(pool).
// The connmux benchmark gate runs on Linux, where the epoll path is
// compiled in.

type pollState struct{}

// pollConn carries the resume signal for a paused (pipeline-full)
// connection.
type pollConn struct {
	resume chan struct{}
}

func (s *Server) pollerInit() error        { return nil }
func (s *Server) pollerShutdown()          {}
func (s *Server) pollerWake()              {}
func (s *Server) startReaders()            {}
func (s *Server) pollerUnregister(c *conn) {}

func (s *Server) pollerRegister(c *conn) error {
	c.poll.resume = make(chan struct{}, 1)
	s.wg.Add(1)
	go s.blockingReadLoop(c)
	return nil
}

func (s *Server) pollerResume(c *conn) {
	select {
	case c.poll.resume <- struct{}{}:
	default:
	}
}

func (s *Server) blockingReadLoop(c *conn) {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		c.mu.Lock()
		paused := c.paused
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if paused {
			select {
			case <-c.poll.resume:
			case <-s.done:
				return
			}
			continue
		}
		n, err := c.nc.Read(buf)
		if n > 0 {
			s.cBytesIn.Add(int64(n))
			switch s.ingest(c, buf[:n]) {
			case ingestDead:
				return
			case ingestPaused:
				continue
			}
		}
		if err != nil {
			s.closeConn(c)
			return
		}
	}
}
