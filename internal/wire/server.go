package wire

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	phoebedb "phoebedb"
	"phoebedb/internal/metrics"
	"phoebedb/internal/rel"
)

// Server is the wire-protocol front end. Configure the exported fields
// before calling Serve; zero values get production defaults.
type Server struct {
	DB *phoebedb.DB
	// Journal, if set, persists DDL under the journal-first protocol so
	// schema survives restarts (see Journal).
	Journal *Journal

	// MaxConnections caps accepted connections; excess connects receive a
	// TOO_MANY_CONNECTIONS error frame and are closed. Default 10000.
	MaxConnections int
	// MaxInflight caps concurrently running session tasks — the number of
	// co-routine pool slots the front end may hold at once. Default
	// DB.PoolSlots()-2 (two slots stay free so DDL, which internally
	// submits its own pool task, cannot deadlock behind a full front end).
	MaxInflight int
	// MaxQueue bounds the admission queue of connections waiting for an
	// inflight grant; beyond it new work is rejected with OVERLOADED.
	// Default 4×MaxInflight.
	MaxQueue int
	// MaxPipeline bounds decoded-but-unexecuted requests per connection.
	// A connection at the limit stops being read (TCP backpressure) until
	// its session drains the queue. Default 128.
	MaxPipeline int
	// MaxOutbox bounds buffered response bytes per connection; a client
	// not draining responses past it is shed. Default 4 MiB.
	MaxOutbox int
	// WriteTimeout bounds one outbox flush; a slower client is shed.
	// Default 5s.
	WriteTimeout time.Duration
	// IdleTxnTimeout bounds how long a session holds an explicit
	// transaction open with no pending statements before the server rolls
	// it back. Default 60s.
	IdleTxnTimeout time.Duration
	// Readers and Writers size the reader/writer goroutine pools.
	// Default min(GOMAXPROCS, 4).
	Readers int
	Writers int

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // readers, writers, poller
	sessWg   sync.WaitGroup // session tasks

	connMu sync.Mutex
	conns  map[*conn]struct{}

	admitMu  sync.Mutex
	inflight int
	admitq   []*conn

	poll pollState

	readable chan *conn
	writeq   chan *conn

	nConns     atomic.Int64
	nActive    atomic.Int64
	cAdmitted  atomic.Int64
	cQueued    atomic.Int64
	cRejOver   atomic.Int64
	cRejConns  atomic.Int64
	cOversized atomic.Int64
	cShedSlow  atomic.Int64
	cIdleRB    atomic.Int64
	cDiscRB    atomic.Int64
	cBytesIn   atomic.Int64
	cBytesOut  atomic.Int64
	hDepth     metrics.Histogram
	hQueueWait metrics.Histogram
}

// NewServer returns a server over an open database with default limits.
func NewServer(db *phoebedb.DB) *Server {
	return &Server{DB: db}
}

func (s *Server) defaults() {
	if s.MaxConnections <= 0 {
		s.MaxConnections = 10000
	}
	if s.MaxInflight <= 0 {
		s.MaxInflight = s.DB.PoolSlots() - 2
		if s.MaxInflight < 1 {
			s.MaxInflight = 1
		}
	}
	if s.MaxQueue <= 0 {
		s.MaxQueue = 4 * s.MaxInflight
	}
	if s.MaxPipeline <= 0 {
		s.MaxPipeline = 128
	}
	if s.MaxOutbox <= 0 {
		s.MaxOutbox = 4 << 20
	}
	if s.WriteTimeout <= 0 {
		s.WriteTimeout = 5 * time.Second
	}
	if s.IdleTxnTimeout <= 0 {
		s.IdleTxnTimeout = 60 * time.Second
	}
	pool := runtime.GOMAXPROCS(0)
	if pool > 4 {
		pool = 4
	}
	if pool < 1 {
		pool = 1
	}
	if s.Readers <= 0 {
		s.Readers = pool
	}
	if s.Writers <= 0 {
		s.Writers = pool
	}
}

// Serve accepts and serves connections until the listener closes. It
// returns nil on clean shutdown (Shutdown called).
func (s *Server) Serve(l net.Listener) error {
	s.defaults()
	s.done = make(chan struct{})
	s.conns = make(map[*conn]struct{})
	s.readable = make(chan *conn, s.MaxConnections+16)
	s.writeq = make(chan *conn, s.MaxConnections+16)
	s.registerMetrics()
	if err := s.pollerInit(); err != nil {
		return err
	}
	for i := 0; i < s.Writers; i++ {
		s.wg.Add(1)
		go s.writer()
	}
	s.startReaders()

	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.accept(nc)
	}
}

func (s *Server) accept(nc net.Conn) {
	if s.nConns.Load() >= int64(s.MaxConnections) {
		s.cRejConns.Add(1)
		nc.SetWriteDeadline(time.Now().Add(time.Second))
		nc.Write(AppendError(nil, ErrCodeTooManyConns,
			fmt.Sprintf("connection limit %d reached", s.MaxConnections)))
		nc.Close()
		return
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &conn{srv: s, nc: nc, notify: make(chan struct{}, 1)}
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
	s.nConns.Add(1)
	if err := s.pollerRegister(c); err != nil {
		s.closeConn(c)
	}
}

// Shutdown stops accepting, closes every connection (rolling back any
// open session transactions), and waits for sessions and pool goroutines
// to drain. Close the listener it was Serve()d with as well.
func (s *Server) Shutdown(l net.Listener) {
	s.stopOnce.Do(func() {
		close(s.done)
		if l != nil {
			l.Close()
		}
		s.pollerWake()
		s.connMu.Lock()
		open := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			open = append(open, c)
		}
		s.connMu.Unlock()
		for _, c := range open {
			s.closeConn(c)
		}
		s.sessWg.Wait()
		s.wg.Wait()
		s.pollerShutdown()
	})
}

// closeConn tears a connection down exactly once: unregister from the
// poller (before closing the fd, so a recycled descriptor can never be
// routed to this conn), close the socket, wake a parked session.
func (s *Server) closeConn(c *conn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	s.pollerUnregister(c)
	c.nc.Close()
	select {
	case c.notify <- struct{}{}:
	default:
	}
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.nConns.Add(-1)
}

// send appends a response to the conn's outbox and schedules a writer
// flush. A connection whose outbox exceeds MaxOutbox (a client that has
// stopped draining responses) is shed.
func (s *Server) send(c *conn, b []byte) {
	if len(b) == 0 {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.out = append(c.out, b...)
	over := len(c.out) > s.MaxOutbox
	enq := false
	if !over && !c.wQueued {
		c.wQueued = true
		enq = true
	}
	c.mu.Unlock()
	if over {
		s.cShedSlow.Add(1)
		s.closeConn(c)
		return
	}
	if enq {
		select {
		case s.writeq <- c:
		case <-s.done:
		}
	}
}

func (s *Server) writer() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case c := <-s.writeq:
			s.flushConn(c)
		}
	}
}

// flushConn drains the conn's outbox, double-buffering so sessions keep
// appending while a batch is on the wire. A write error or a flush
// exceeding WriteTimeout sheds the connection (slow client).
func (s *Server) flushConn(c *conn) {
	for {
		c.mu.Lock()
		if c.closed {
			c.wQueued = false
			c.mu.Unlock()
			return
		}
		if len(c.out) == 0 {
			c.wQueued = false
			doQuit := c.quit
			c.mu.Unlock()
			if doQuit {
				s.closeConn(c)
			}
			return
		}
		buf := c.out
		c.out = c.spare[:0]
		c.spare = buf
		c.mu.Unlock()
		c.nc.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		if _, err := c.nc.Write(buf); err != nil {
			s.cShedSlow.Add(1)
			s.closeConn(c)
			return
		}
		s.cBytesOut.Add(int64(len(buf)))
	}
}

// tryAdmit moves a connection with pending work into execution: grant an
// inflight slot and start a session task, or park it in the admission
// queue, or — with both full — reject every pending request with
// OVERLOADED while keeping the connection (and any running peers) alive.
func (s *Server) tryAdmit(c *conn) {
	s.admitMu.Lock()
	c.mu.Lock()
	if c.closed || c.running || c.queued || !c.hasPendingLocked() {
		c.mu.Unlock()
		s.admitMu.Unlock()
		return
	}
	if s.inflight < s.MaxInflight {
		s.inflight++
		c.running = true
		c.mu.Unlock()
		s.admitMu.Unlock()
		s.cAdmitted.Add(1)
		s.startSession(c)
		return
	}
	if len(s.admitq) < s.MaxQueue {
		c.queued = true
		s.admitq = append(s.admitq, c)
		c.mu.Unlock()
		s.admitMu.Unlock()
		s.cQueued.Add(1)
		return
	}
	var out []byte
	n := 0
	for c.hasPendingLocked() {
		c.popPendingLocked()
		out = AppendError(out, ErrCodeOverloaded, "server overloaded: admission queue full")
		n++
	}
	resume := c.paused
	c.paused = false
	c.mu.Unlock()
	s.admitMu.Unlock()
	s.cRejOver.Add(int64(n))
	s.send(c, out)
	if resume {
		s.pollerResume(c)
	}
}

// finishSession releases the conn's inflight grant and hands the slot to
// the next admissible queued connection.
func (s *Server) finishSession() {
	s.admitMu.Lock()
	s.inflight--
	var next *conn
	for len(s.admitq) > 0 {
		cand := s.admitq[0]
		s.admitq = s.admitq[1:]
		cand.mu.Lock()
		if cand.closed || cand.running || !cand.hasPendingLocked() {
			cand.queued = false
			cand.mu.Unlock()
			continue
		}
		cand.queued = false
		cand.running = true
		cand.mu.Unlock()
		next = cand
		break
	}
	if next != nil {
		s.inflight++
	}
	s.admitMu.Unlock()
	if next != nil {
		s.cAdmitted.Add(1)
		s.startSession(next)
	}
}

// startSession runs the conn's statement stream on a co-routine pool
// slot. The caller has already granted the inflight slot and set
// c.running.
func (s *Server) startSession(c *conn) {
	s.sessWg.Add(1)
	err := s.DB.SubmitSessionTask(func(ps *phoebedb.PoolSession) {
		s.runSession(c, ps)
	})
	if err != nil {
		s.sessWg.Done()
		c.mu.Lock()
		var out []byte
		for c.hasPendingLocked() {
			c.popPendingLocked()
			out = AppendError(out, ErrCodeShutdown, "server shutting down")
		}
		c.running = false
		c.mu.Unlock()
		s.send(c, out)
		s.closeConn(c)
		s.finishSession()
	}
}

// sessState is per-session-task transaction bookkeeping (only the session
// goroutine touches it).
type sessState struct {
	// aborted: a statement inside the explicit transaction failed. The
	// transaction stays open but executes nothing further — statements
	// error until the client sends ROLLBACK (or COMMIT, which rolls
	// back and reports the abort) — so a pipelined batch cannot
	// half-apply after an error.
	aborted bool
}

// runSession is the session task: it executes the conn's pending
// requests in order on one pool slot, parks (YieldLow) while a
// transaction is open with no pending work, and exits — releasing the
// slot — when idle outside a transaction. One conn therefore costs a
// pool slot only while it has work or an open transaction.
func (s *Server) runSession(c *conn, ps *phoebedb.PoolSession) {
	defer s.sessWg.Done()
	s.nActive.Add(1)
	defer s.nActive.Add(-1)
	st := &sessState{}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			if ps.InTxn() {
				ps.Rollback()
				s.cDiscRB.Add(1)
			}
			s.finishSession()
			return
		}
		if !c.hasPendingLocked() {
			if !ps.InTxn() {
				c.running = false
				c.mu.Unlock()
				s.finishSession()
				return
			}
			c.waiting = true
			c.mu.Unlock()
			fired := ps.Park(c.notify, s.IdleTxnTimeout)
			c.mu.Lock()
			c.waiting = false
			empty := !c.hasPendingLocked()
			closed := c.closed
			c.mu.Unlock()
			if !fired && empty && !closed {
				ps.Rollback()
				st.aborted = false
				s.cIdleRB.Add(1)
			}
			continue
		}
		req := c.popPendingLocked()
		resume := c.paused && c.depthLocked() < s.MaxPipeline
		if resume {
			c.paused = false
		}
		c.mu.Unlock()
		if resume {
			s.pollerResume(c)
		}
		wait := time.Since(req.at)
		ps.ChargeQueueWait(wait)
		s.hQueueWait.Observe(wait)
		resp, quit := s.execute(ps, st, &req)
		s.send(c, resp)
		if quit {
			c.mu.Lock()
			c.quit = true
			queueFlush := !c.wQueued && !c.closed
			if queueFlush {
				c.wQueued = true
			}
			c.mu.Unlock()
			if queueFlush {
				select {
				case s.writeq <- c:
				case <-s.done:
				}
			}
		}
	}
}

// isDDL mirrors the SQL layer's DDL set (CREATE TABLE / CREATE INDEX)
// with a prefix test, so the front end can route DDL through the schema
// journal without parsing twice.
func isDDL(q string) bool {
	q = strings.TrimSpace(q)
	return len(q) >= 7 && strings.EqualFold(q[:7], "create ")
}

// execute runs one request and returns its response frame. quit=true
// closes the connection after the outbox flushes.
func (s *Server) execute(ps *phoebedb.PoolSession, st *sessState, req *request) (resp []byte, quit bool) {
	if req.failCode != "" {
		return AppendError(nil, req.failCode, req.failMsg), false
	}
	switch req.typ {
	case FrameHello:
		if len(req.body) < 2 || uint16(req.body[0])<<8|uint16(req.body[1]) != ProtocolVersion {
			return AppendError(nil, ErrCodeProtocol,
				fmt.Sprintf("unsupported protocol version (server speaks %d)", ProtocolVersion)), false
		}
		return AppendOK(nil, 0), false

	case FrameQuery:
		query := string(req.body)
		if st.aborted {
			return AppendError(nil, ErrCodeTxn,
				"current transaction is aborted, commands ignored until end of transaction block"), false
		}
		if isDDL(query) {
			if ps.InTxn() {
				return AppendError(nil, ErrCodeTxn, "DDL is not transactional"), false
			}
			var res phoebedb.SQLResult
			apply := func() error {
				var aerr error
				res, aerr = s.DB.ExecSQL(query)
				return aerr
			}
			var err error
			if s.Journal != nil {
				err = s.Journal.Exec(query, apply)
			} else {
				err = apply()
			}
			if err != nil {
				return AppendError(nil, ErrCodeSQL, err.Error()), false
			}
			return AppendOK(nil, res.Affected), false
		}
		res, err := ps.ExecSQL(query)
		if err != nil {
			// Inside an explicit transaction the session enters the
			// aborted state: the transaction stays open (keeping the
			// session task alive) but executes nothing further, so a
			// pipelined batch cannot half-apply past an error. ROLLBACK
			// or COMMIT ends it.
			if ps.InTxn() {
				st.aborted = true
			}
			return AppendError(nil, ErrCodeSQL, err.Error()), false
		}
		if res.Columns == nil {
			return AppendOK(nil, res.Affected), false
		}
		b, ok := AppendRows(nil, res.Columns, res.Rows)
		if !ok {
			return AppendError(nil, ErrCodeTooLarge, "result set exceeds the 1 MiB frame limit"), false
		}
		return b, false

	case FrameBegin:
		if ps.InTxn() || st.aborted {
			return AppendError(nil, ErrCodeTxn, "transaction already in progress"), false
		}
		iso := ps.DefaultIsolation()
		if len(req.body) >= 1 {
			switch req.body[0] {
			case 0:
			case 1:
				iso = phoebedb.ReadCommitted
			case 2:
				iso = phoebedb.RepeatableRead
			default:
				return AppendError(nil, ErrCodeProtocol, "unknown isolation level"), false
			}
		}
		if err := ps.Begin(iso); err != nil {
			return AppendError(nil, ErrCodeTxn, err.Error()), false
		}
		return AppendOK(nil, 0), false

	case FrameCommit:
		if st.aborted {
			st.aborted = false
			if ps.InTxn() {
				ps.Rollback()
			}
			return AppendError(nil, ErrCodeTxn, "transaction aborted; changes rolled back"), false
		}
		if !ps.InTxn() {
			return AppendError(nil, ErrCodeTxn, "no transaction in progress"), false
		}
		if err := ps.Commit(); err != nil {
			return AppendError(nil, ErrCodeSQL, err.Error()), false
		}
		return AppendOK(nil, 0), false

	case FrameRollback:
		st.aborted = false
		if ps.InTxn() {
			ps.Rollback()
		}
		return AppendOK(nil, 0), false

	case FrameQuit:
		return AppendOK(nil, 0), true

	default:
		return AppendError(nil, ErrCodeProtocol,
			fmt.Sprintf("unknown frame type %q", req.typ)), false
	}
}

// registerMetrics exposes the front end through the database's metrics
// registry and the phoebe_stat_server virtual table.
func (s *Server) registerMetrics() {
	reg := s.DB.Metrics()
	reg.Gauge("phoebe_server_connections", "open client connections", s.nConns.Load)
	reg.Gauge("phoebe_server_active", "session tasks currently holding a pool slot", s.nActive.Load)
	reg.Counter("phoebe_server_admitted", "session tasks started (statement batches admitted)", s.cAdmitted.Load)
	reg.Counter("phoebe_server_queued", "connections that waited in the admission queue", s.cQueued.Load)
	reg.CounterVec("phoebe_server_rejected", "requests rejected by admission control", "reason",
		func() []metrics.LabeledValue {
			return []metrics.LabeledValue{
				{Label: "overloaded", Value: s.cRejOver.Load()},
				{Label: "connections", Value: s.cRejConns.Load()},
			}
		})
	reg.Counter("phoebe_server_oversized", "client frames over the 1 MiB limit (discarded, session kept)", s.cOversized.Load)
	reg.Counter("phoebe_server_shed_slow", "connections shed for not draining responses", s.cShedSlow.Load)
	reg.Counter("phoebe_server_idle_rollbacks", "transactions rolled back by the idle-in-transaction timeout", s.cIdleRB.Load)
	reg.Counter("phoebe_server_disconnect_rollbacks", "transactions rolled back because the client disconnected", s.cDiscRB.Load)
	reg.Counter("phoebe_server_bytes_in", "bytes read from clients", s.cBytesIn.Load)
	reg.Counter("phoebe_server_bytes_out", "bytes written to clients", s.cBytesOut.Load)
	reg.Histogram("phoebe_server_pipelined_depth", "pending pipelined requests per connection at enqueue (unit: requests, not seconds)",
		"", "", s.hDepth.Snapshot)
	reg.Histogram("phoebe_server_queue_wait", "time from frame decode to execution start",
		"", "", s.hQueueWait.Snapshot)

	schema := rel.NewSchema(
		rel.Column{Name: "name", Type: rel.TString},
		rel.Column{Name: "value", Type: rel.TInt64},
	)
	s.DB.RegisterStatTable("phoebe_stat_server", func() (*rel.Schema, []rel.Row) {
		row := func(name string, v int64) rel.Row {
			return rel.Row{rel.Str(name), rel.Int(v)}
		}
		return schema, []rel.Row{
			row("connections", s.nConns.Load()),
			row("active_sessions", s.nActive.Load()),
			row("admitted", s.cAdmitted.Load()),
			row("queued", s.cQueued.Load()),
			row("rejected_overloaded", s.cRejOver.Load()),
			row("rejected_connections", s.cRejConns.Load()),
			row("oversized_frames", s.cOversized.Load()),
			row("shed_slow_clients", s.cShedSlow.Load()),
			row("idle_txn_rollbacks", s.cIdleRB.Load()),
			row("disconnect_rollbacks", s.cDiscRB.Load()),
			row("bytes_in", s.cBytesIn.Load()),
			row("bytes_out", s.cBytesOut.Load()),
			row("max_connections", int64(s.MaxConnections)),
			row("max_inflight", int64(s.MaxInflight)),
			row("max_pipeline", int64(s.MaxPipeline)),
			row("pool_slots", int64(s.DB.PoolSlots())),
		}
	})
}

// MetricsHandler serves the database's metrics registry in the
// Prometheus text exposition format, plus the slow-transaction dump at
// /slowlog.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.DB.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.DB.SlowLog().Dump(w)
	})
	return mux
}

// ServeMetrics serves the metrics endpoint on addr until the HTTP server
// fails. Run in its own goroutine.
func (s *Server) ServeMetrics(addr string) error {
	return http.ListenAndServe(addr, s.MetricsHandler())
}
