// Package buffer implements PhoebeDB's partitioned buffer management
// (§5.2, §7.1): per-worker pools with a byte budget, temperature-decayed
// victim selection, and the two-step cooling/eviction protocol that backs
// the swizzle state machine.
//
// There is deliberately no global page table — frames are reached through
// their owners' swizzled pointers, and the pool only keeps a registry for
// victim selection. Each partition is maintained by the worker that owns it
// ("a worker thread manages its own buffer pool partition and handles page
// swaps locally"), so maintenance never contends across workers.
//
// Eviction is two-phase, matching §5.3: a sweep first marks low-temperature
// frames Cooling (they stay resident and a touch rescues them cheaply);
// a later pass unswizzles frames still Cooling. The clock-style sweep
// halves each surviving frame's access count, so temperature is a decayed
// frequency, "access frequency over time" in the paper's terms.
package buffer

import (
	"sync"
	"sync/atomic"

	"phoebedb/internal/fault"
)

// Frame is an evictable page frame. Implementations (table pages) guard
// their own consistency; the pool only sequences cooling and eviction.
type Frame interface {
	// StartCooling moves a Hot frame to Cooling; false if not Hot.
	StartCooling() bool
	// EvictIfCooling writes the frame out and drops its payload if it is
	// still Cooling; returns the bytes freed. It must fail (false) when
	// the frame was rescued, is pinned by a twin table, or is latched.
	EvictIfCooling() (int, bool)
	// Hotness returns the decayed access count.
	Hotness() uint32
	// DecayHotness ages the access count (sweep pass).
	DecayHotness()
	// Resident reports whether the payload is in memory.
	Resident() bool
}

type partition struct {
	mu       sync.Mutex
	frames   []Frame
	hand     int
	cooling  []Frame
	resident int64
	budget   int64

	// Sharded access stats: each partition is touched mostly by its owning
	// worker, so these atomics stay core-local. Misses are page loads from
	// disk; hits = accesses − misses.
	accesses  atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// Pool is a partitioned buffer pool.
type Pool struct {
	parts []*partition
}

// CountAccess records one page access in partition part (hot or cold).
func (p *Pool) CountAccess(part int) { p.part(part).accesses.Add(1) }

// CountMiss records one page load from disk in partition part.
func (p *Pool) CountMiss(part int) { p.part(part).misses.Add(1) }

// PoolStats is a point-in-time view of the pool's access counters.
type PoolStats struct {
	Accesses, Misses, Evictions int64
}

// Hits returns the accesses that did not need a disk load.
func (s PoolStats) Hits() int64 { return s.Accesses - s.Misses }

// Stats sums the per-partition counters.
func (p *Pool) Stats() PoolStats {
	var s PoolStats
	for _, pt := range p.parts {
		s.Accesses += pt.accesses.Load()
		s.Misses += pt.misses.Load()
		s.Evictions += pt.evictions.Load()
	}
	return s
}

// New creates a pool with the given number of partitions, each with an
// equal share of budgetBytes.
func New(partitions int, budgetBytes int64) *Pool {
	if partitions <= 0 {
		partitions = 1
	}
	p := &Pool{}
	per := budgetBytes / int64(partitions)
	for i := 0; i < partitions; i++ {
		p.parts = append(p.parts, &partition{budget: per})
	}
	return p
}

// Partitions returns the partition count.
func (p *Pool) Partitions() int { return len(p.parts) }

func (p *Pool) part(i int) *partition { return p.parts[i%len(p.parts)] }

// Register adds a frame to partition part's registry.
func (p *Pool) Register(f Frame, part int) {
	pt := p.part(part)
	pt.mu.Lock()
	pt.frames = append(pt.frames, f)
	pt.mu.Unlock()
}

// AddResident adjusts partition part's resident-byte accounting; called
// when a frame is created, loaded (positive) or shrinks (negative).
func (p *Pool) AddResident(part int, bytes int64) {
	pt := p.part(part)
	pt.mu.Lock()
	pt.resident += bytes
	pt.mu.Unlock()
}

// ResidentBytes returns the pool-wide resident total.
func (p *Pool) ResidentBytes() int64 {
	var total int64
	for _, pt := range p.parts {
		pt.mu.Lock()
		total += pt.resident
		pt.mu.Unlock()
	}
	return total
}

// NeedsMaintain reports whether partition part is over budget — the
// trigger for the scheduler's page-swap duty ("page swaps are triggered
// when buffer frames drop below a threshold", §7.1).
func (p *Pool) NeedsMaintain(part int) bool {
	pt := p.part(part)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.resident > pt.budget
}

// Maintain performs one round of page swapping on partition part: evict
// frames from the cooling queue while over budget, then sweep the registry
// to refill the cooling queue from the coldest frames. Returns the number
// of frames evicted.
func (p *Pool) Maintain(part int) int {
	pt := p.part(part)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	evicted := 0

	// Phase 1: evict cooling frames while over budget.
	for pt.resident > pt.budget && len(pt.cooling) > 0 {
		f := pt.cooling[0]
		pt.cooling = pt.cooling[1:]
		if err := fault.Eval(fault.BufferEvict); err != nil {
			return evicted // injected failure aborts the round; frames stay resident
		}
		if freed, ok := f.EvictIfCooling(); ok {
			pt.resident -= int64(freed)
			pt.evictions.Add(1)
			evicted++
		}
	}

	// Phase 2: clock sweep to replenish the cooling queue. Frames with a
	// zero decayed access count cool; the rest age.
	if pt.resident > pt.budget {
		sweep := len(pt.frames)
		if sweep > 512 {
			sweep = 512
		}
		for i := 0; i < sweep && len(pt.cooling) < 64; i++ {
			if len(pt.frames) == 0 {
				break
			}
			pt.hand = (pt.hand + 1) % len(pt.frames)
			f := pt.frames[pt.hand]
			if !f.Resident() {
				continue
			}
			if f.Hotness() == 0 {
				if f.StartCooling() {
					pt.cooling = append(pt.cooling, f)
				}
			} else {
				f.DecayHotness()
			}
		}
		// Evict what the sweep cooled, still bounded by the budget.
		for pt.resident > pt.budget && len(pt.cooling) > 0 {
			f := pt.cooling[0]
			pt.cooling = pt.cooling[1:]
			if err := fault.Eval(fault.BufferEvict); err != nil {
				return evicted
			}
			if freed, ok := f.EvictIfCooling(); ok {
				pt.resident -= int64(freed)
				pt.evictions.Add(1)
				evicted++
			}
		}
	}
	return evicted
}
