package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
)

// fakeFrame is a minimal Frame for pool tests.
type fakeFrame struct {
	mu      sync.Mutex
	state   int // 0 hot, 1 cooling, 2 cold
	hot     atomic.Uint32
	bytes   int
	pinned  bool
	evicted atomic.Int32
	rescued atomic.Int32
}

func (f *fakeFrame) StartCooling() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.state != 0 {
		return false
	}
	f.state = 1
	return true
}

func (f *fakeFrame) EvictIfCooling() (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.state != 1 {
		return 0, false
	}
	if f.pinned {
		f.state = 0
		f.rescued.Add(1)
		return 0, false
	}
	f.state = 2
	f.evicted.Add(1)
	return f.bytes, true
}

func (f *fakeFrame) Hotness() uint32 { return f.hot.Load() }
func (f *fakeFrame) DecayHotness() {
	for {
		h := f.hot.Load()
		if f.hot.CompareAndSwap(h, h/2) {
			return
		}
	}
}
func (f *fakeFrame) Resident() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state != 2
}

func TestPoolEvictsWhenOverBudget(t *testing.T) {
	p := New(1, 100)
	var frames []*fakeFrame
	for i := 0; i < 10; i++ {
		f := &fakeFrame{bytes: 50}
		frames = append(frames, f)
		p.Register(f, 0)
		p.AddResident(0, 50)
	}
	if !p.NeedsMaintain(0) {
		t.Fatal("pool not over budget")
	}
	// All frames cold (hotness 0): repeated maintenance evicts to budget.
	for i := 0; i < 10 && p.NeedsMaintain(0); i++ {
		p.Maintain(0)
	}
	if p.NeedsMaintain(0) {
		t.Fatalf("still over budget: %d resident", p.ResidentBytes())
	}
	if p.ResidentBytes() > 100 {
		t.Fatalf("resident = %d", p.ResidentBytes())
	}
	evictedCount := 0
	for _, f := range frames {
		evictedCount += int(f.evicted.Load())
	}
	if evictedCount < 8 {
		t.Fatalf("evicted %d frames, want >= 8", evictedCount)
	}
}

func TestPoolPrefersColdFrames(t *testing.T) {
	p := New(1, 100)
	hotF := &fakeFrame{bytes: 50}
	hotF.hot.Store(1 << 16) // very hot: survives many decay rounds
	coldF := &fakeFrame{bytes: 50}
	third := &fakeFrame{bytes: 50}
	third.hot.Store(1 << 16)
	for _, f := range []*fakeFrame{hotF, coldF, third} {
		p.Register(f, 0)
		p.AddResident(0, 50)
	}
	for i := 0; i < 3 && p.NeedsMaintain(0); i++ {
		p.Maintain(0)
	}
	if coldF.evicted.Load() != 1 {
		t.Fatal("cold frame not evicted first")
	}
	if hotF.evicted.Load() != 0 || third.evicted.Load() != 0 {
		t.Fatal("hot frame evicted while cold frame available")
	}
}

func TestPoolDecaysHotness(t *testing.T) {
	p := New(1, 10)
	f := &fakeFrame{bytes: 50}
	f.hot.Store(8)
	p.Register(f, 0)
	p.AddResident(0, 50)
	// Each sweep halves the hotness; eventually the frame cools and evicts.
	for i := 0; i < 10 && f.evicted.Load() == 0; i++ {
		p.Maintain(0)
	}
	if f.evicted.Load() != 1 {
		t.Fatalf("frame never evicted (hotness %d)", f.Hotness())
	}
}

func TestPoolPinnedFrameSurvives(t *testing.T) {
	p := New(1, 10)
	f := &fakeFrame{bytes: 50, pinned: true}
	p.Register(f, 0)
	p.AddResident(0, 50)
	for i := 0; i < 5; i++ {
		p.Maintain(0)
	}
	if f.evicted.Load() != 0 {
		t.Fatal("pinned frame evicted")
	}
	if f.rescued.Load() == 0 {
		t.Fatal("pinned frame never attempted")
	}
	if !p.NeedsMaintain(0) {
		t.Fatal("budget accounting changed for rescued frame")
	}
}

func TestPartitionsAreIndependent(t *testing.T) {
	p := New(2, 200) // 100 per partition
	f0 := &fakeFrame{bytes: 150}
	p.Register(f0, 0)
	p.AddResident(0, 150)
	f1 := &fakeFrame{bytes: 50}
	p.Register(f1, 1)
	p.AddResident(1, 50)
	if !p.NeedsMaintain(0) {
		t.Fatal("partition 0 should be over budget")
	}
	if p.NeedsMaintain(1) {
		t.Fatal("partition 1 should be under budget")
	}
	for i := 0; i < 5; i++ {
		p.Maintain(1)
	}
	if f1.evicted.Load() != 0 {
		t.Fatal("under-budget partition evicted")
	}
	for i := 0; i < 5; i++ {
		p.Maintain(0)
	}
	if f0.evicted.Load() != 1 {
		t.Fatal("over-budget partition did not evict")
	}
	if p.Partitions() != 2 {
		t.Fatal("Partitions() wrong")
	}
}

func TestPoolZeroPartitionsClamped(t *testing.T) {
	p := New(0, 100)
	if p.Partitions() != 1 {
		t.Fatalf("Partitions = %d", p.Partitions())
	}
}

func TestConcurrentAccounting(t *testing.T) {
	p := New(4, 1<<30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddResident(g%4, 10)
				p.AddResident(g%4, -10)
			}
		}(g)
	}
	wg.Wait()
	if p.ResidentBytes() != 0 {
		t.Fatalf("resident = %d after balanced adds", p.ResidentBytes())
	}
}
