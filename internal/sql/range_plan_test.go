package sql

import (
	"reflect"
	"testing"

	"phoebedb/internal/rel"
)

func rangeSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "city", Type: rel.TString},
		rel.Column{Name: "score", Type: rel.TFloat64},
	)
}

// Range conditions on one column must intersect, not last-wins like
// equality: x > 5 AND x < 10 is an interval, and contradictory bounds are
// a provably empty plan, not a scan of the later bound.
func TestResolveWhereRangeIntersection(t *testing.T) {
	schema := rangeSchema()
	cases := []struct {
		name  string
		where []Cond
		empty bool
		// surviving bounds on id (lo/hi value + inclusivity); ignored when
		// empty or when noRange.
		hasLo, hasHi   bool
		lo, hi         int64
		loIncl, hiIncl bool
	}{
		{
			name:  "interval kept",
			where: []Cond{{Col: "id", Op: rel.CmpGt, Val: rel.Int(5)}, {Col: "id", Op: rel.CmpLt, Val: rel.Int(10)}},
			hasLo: true, hasHi: true, lo: 5, hi: 10,
		},
		{
			name:  "contradiction is empty",
			where: []Cond{{Col: "id", Op: rel.CmpGt, Val: rel.Int(10)}, {Col: "id", Op: rel.CmpLt, Val: rel.Int(5)}},
			empty: true,
		},
		{
			name:  "touching exclusive bounds empty",
			where: []Cond{{Col: "id", Op: rel.CmpGe, Val: rel.Int(7)}, {Col: "id", Op: rel.CmpLt, Val: rel.Int(7)}},
			empty: true,
		},
		{
			name:  "single point survives",
			where: []Cond{{Col: "id", Op: rel.CmpGe, Val: rel.Int(7)}, {Col: "id", Op: rel.CmpLe, Val: rel.Int(7)}},
			hasLo: true, hasHi: true, lo: 7, hi: 7, loIncl: true, hiIncl: true,
		},
		{
			name: "tighter lo wins",
			where: []Cond{
				{Col: "id", Op: rel.CmpGt, Val: rel.Int(3)},
				{Col: "id", Op: rel.CmpGe, Val: rel.Int(8)},
				{Col: "id", Op: rel.CmpLe, Val: rel.Int(20)},
			},
			hasLo: true, hasHi: true, lo: 8, hi: 20, loIncl: true, hiIncl: true,
		},
		{
			name: "exclusive beats inclusive on tie",
			where: []Cond{
				{Col: "id", Op: rel.CmpGe, Val: rel.Int(5)},
				{Col: "id", Op: rel.CmpGt, Val: rel.Int(5)},
			},
			hasLo: true, lo: 5, loIncl: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rw, err := resolveWhere(schema, tc.where)
			if err != nil {
				t.Fatal(err)
			}
			if rw.empty != tc.empty {
				t.Fatalf("empty=%v, want %v", rw.empty, tc.empty)
			}
			if tc.empty {
				return
			}
			if len(rw.ranges) != 1 {
				t.Fatalf("ranges=%d, want 1", len(rw.ranges))
			}
			rr := rw.ranges[0]
			if rr.lo.set != tc.hasLo || rr.hi.set != tc.hasHi {
				t.Fatalf("bounds set lo=%v hi=%v, want %v/%v", rr.lo.set, rr.hi.set, tc.hasLo, tc.hasHi)
			}
			if tc.hasLo && (rr.lo.val.I != tc.lo || rr.lo.incl != tc.loIncl) {
				t.Errorf("lo = %v incl=%v, want %d incl=%v", rr.lo.val, rr.lo.incl, tc.lo, tc.loIncl)
			}
			if tc.hasHi && (rr.hi.val.I != tc.hi || rr.hi.incl != tc.hiIncl) {
				t.Errorf("hi = %v incl=%v, want %d incl=%v", rr.hi.val, rr.hi.incl, tc.hi, tc.hiIncl)
			}
		})
	}
}

// An equality on a ranged column either pins the value inside the range
// (equality subsumes) or contradicts it (empty).
func TestResolveWhereEqRangeMix(t *testing.T) {
	schema := rangeSchema()
	inside := []Cond{
		{Col: "id", Op: rel.CmpGt, Val: rel.Int(3)},
		{Col: "id", Op: rel.CmpEq, Val: rel.Int(5)},
	}
	rw, err := resolveWhere(schema, inside)
	if err != nil {
		t.Fatal(err)
	}
	if rw.empty {
		t.Fatal("eq inside range reported empty")
	}
	if len(rw.ranges) != 0 {
		t.Fatalf("range survived eq subsumption: %+v", rw.ranges)
	}
	if rw.stable {
		t.Fatal("eq+range mix must be unstable (value-dependent)")
	}
	outside := []Cond{
		{Col: "id", Op: rel.CmpGt, Val: rel.Int(3)},
		{Col: "id", Op: rel.CmpEq, Val: rel.Int(3)},
	}
	rw, err = resolveWhere(schema, outside)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.empty {
		t.Fatal("eq on excluded bound not reported empty")
	}
}

// Range plans: a range on the column after the equality prefix becomes
// scan bounds; ranges elsewhere stay residual; contradictions plan empty.
func TestPlanWhereRange(t *testing.T) {
	schema := rangeSchema()
	indexes := []IndexMeta{
		{Name: "pk", Cols: []int{0}, Unique: true},
		{Name: "city_score", Cols: []int{1, 2}},
	}
	t.Run("range on pk", func(t *testing.T) {
		p, err := planWhere(schema, indexes, []Cond{
			{Col: "id", Op: rel.CmpGe, Val: rel.Int(10)},
			{Col: "id", Op: rel.CmpLt, Val: rel.Int(20)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.index != "pk" || !p.hasLo || !p.hasHi || !p.loIncl || p.hiIncl {
			t.Fatalf("plan = %+v, want pk range [10,20)", p)
		}
		if len(p.residual) != 0 {
			t.Fatalf("range left residual: %+v", p.residual)
		}
	})
	t.Run("eq prefix plus range suffix", func(t *testing.T) {
		p, err := planWhere(schema, indexes, []Cond{
			{Col: "city", Op: rel.CmpEq, Val: rel.Str("x")},
			{Col: "score", Op: rel.CmpGt, Val: rel.Int(5)}, // int→float coercion
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.index != "city_score" || len(p.prefixVals) != 1 || !p.hasLo || p.hasHi {
			t.Fatalf("plan = %+v, want city_score prefix+lo", p)
		}
		if p.lo.Kind != rel.TFloat64 || p.lo.F != 5 {
			t.Fatalf("lo = %+v, want float 5", p.lo)
		}
	})
	t.Run("range off index is residual", func(t *testing.T) {
		p, err := planWhere(schema, indexes, []Cond{
			{Col: "id", Op: rel.CmpEq, Val: rel.Int(1)},
			{Col: "score", Op: rel.CmpLt, Val: rel.Float(2.5)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.index != "pk" || p.hasRange() {
			t.Fatalf("plan = %+v, want pk point lookup", p)
		}
		if len(p.residual) != 1 || p.residual[0].Op != rel.CmpLt {
			t.Fatalf("residual = %+v, want score < 2.5", p.residual)
		}
	})
	t.Run("contradiction plans empty", func(t *testing.T) {
		p, err := planWhere(schema, indexes, []Cond{
			{Col: "score", Op: rel.CmpGt, Val: rel.Float(9)},
			{Col: "score", Op: rel.CmpLt, Val: rel.Float(1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !p.empty {
			t.Fatalf("plan = %+v, want empty", p)
		}
	})
}

// A cached BETWEEN statement must rebind fresh bounds into the same range
// scan, and a rebind to an empty interval must yield an empty plan.
func TestPlanHintRangeRebind(t *testing.T) {
	schema := rangeSchema()
	indexes := []IndexMeta{{Name: "pk", Cols: []int{0}, Unique: true}}
	stmt, err := Parse("SELECT * FROM t WHERE id BETWEEN 10 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	where := stmt.(SelectStmt).Where
	p, hint, err := planWhereHint(schema, indexes, where)
	if err != nil {
		t.Fatal(err)
	}
	if hint == nil {
		t.Fatal("single-bound BETWEEN must produce a cacheable hint")
	}
	if p.index != "pk" || !p.hasLo || !p.hasHi || !p.loIncl || !p.hiIncl {
		t.Fatalf("plan = %+v, want pk range [10,20]", p)
	}
	// Rebind with shifted literals: same access path, new bounds.
	rebound := []Cond{
		{Col: "id", Op: rel.CmpGe, Val: rel.Int(100)},
		{Col: "id", Op: rel.CmpLe, Val: rel.Int(200)},
	}
	got, ok, err := hint.rebuild(schema, rebound)
	if err != nil || !ok {
		t.Fatalf("rebuild: ok=%v err=%v", ok, err)
	}
	fresh, err := planWhere(schema, indexes, rebound)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Errorf("rebuilt %+v, fresh %+v", got, fresh)
	}
	if got.index != "pk" || !got.hasLo || got.lo.I != 100 || got.hi.I != 200 {
		t.Errorf("rebound plan lost the range: %+v", got)
	}
	// Rebind to a contradiction: the hint must re-check and plan empty.
	flipped := []Cond{
		{Col: "id", Op: rel.CmpGe, Val: rel.Int(200)},
		{Col: "id", Op: rel.CmpLe, Val: rel.Int(100)},
	}
	got, ok, err = hint.rebuild(schema, flipped)
	if err != nil || !ok {
		t.Fatalf("rebuild flipped: ok=%v err=%v", ok, err)
	}
	if !got.empty {
		t.Errorf("flipped interval not empty: %+v", got)
	}
}

// Doubled bounds on one side resolve per execution (no cached hint): the
// winner depends on literal values, which the hint cannot replay.
func TestPlanHintUnstableRanges(t *testing.T) {
	schema := rangeSchema()
	indexes := []IndexMeta{{Name: "pk", Cols: []int{0}, Unique: true}}
	_, hint, err := planWhereHint(schema, indexes, []Cond{
		{Col: "id", Op: rel.CmpGt, Val: rel.Int(3)},
		{Col: "id", Op: rel.CmpGt, Val: rel.Int(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hint != nil {
		t.Fatal("doubled lo bound produced a cacheable hint")
	}
}
