package sql

import (
	"reflect"
	"testing"

	"phoebedb/internal/rel"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		src    string
		key    string
		params []rel.Value
		ok     bool
	}{
		{
			src:    "SELECT a, b FROM t WHERE a = 1 AND b = 'x'",
			key:    "select a , b from t where a = ? and b = ? ",
			params: []rel.Value{rel.Int(1), rel.Str("x")},
			ok:     true,
		},
		{
			// Literal values never affect the key: same shape, same key.
			src:    "select a,b from t where a=42 and b='other'",
			key:    "select a , b from t where a = ? and b = ? ",
			params: []rel.Value{rel.Int(42), rel.Str("other")},
			ok:     true,
		},
		{
			// LIMIT counts stay verbatim — they are part of the plan.
			src:    "SELECT * FROM t LIMIT 10",
			key:    "select * from t limit 10 ",
			params: nil,
			ok:     true,
		},
		{
			src:    "INSERT INTO t VALUES (-5, 2.5, 'it''s')",
			key:    "insert into t values ( ? , ? , ? ) ",
			params: []rel.Value{rel.Int(-5), rel.Float(2.5), rel.Str("it's")},
			ok:     true,
		},
		{src: "CREATE TABLE t (a INT)", ok: false},          // DDL bypasses the cache
		{src: "SELECT * FROM t WHERE a = ?", ok: false},     // raw placeholder
		{src: "SELECT * FROM t WHERE a = 'oops", ok: false}, // unterminated
	}
	for _, tc := range cases {
		key, params, ok := normalize(tc.src)
		if ok != tc.ok {
			t.Errorf("%q: ok=%v want %v", tc.src, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if key != tc.key {
			t.Errorf("%q: key=%q want %q", tc.src, key, tc.key)
		}
		if !reflect.DeepEqual(params, tc.params) {
			t.Errorf("%q: params=%v want %v", tc.src, params, tc.params)
		}
	}
}

// Binding the cached template with the extracted literals must reproduce
// exactly what Parse builds from the original text.
func TestPrepareBindEquivalence(t *testing.T) {
	corpus := []string{
		"SELECT a, b FROM t WHERE a = 1 AND b = 'x'",
		"SELECT * FROM t WHERE b = 'quoted ''str''' LIMIT 3",
		"INSERT INTO t VALUES (1, 'x', 2.5), (-2, 'y', 3.5)",
		"UPDATE t SET c = 9.5, b = 'z' WHERE a = 1",
		"DELETE FROM t WHERE a = -7",
		"SELECT * FROM t",
	}
	c := NewPlanCache(16)
	for _, src := range corpus {
		want, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		cs, params, ok := c.Prepare(src)
		if !ok {
			t.Fatalf("Prepare(%q): uncacheable", src)
		}
		got, err := cs.bind(params)
		if err != nil {
			t.Fatalf("bind(%q): %v", src, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q:\n bound: %#v\nparsed: %#v", src, got, want)
		}
	}
	if c.Hits() != 0 || c.Misses() != int64(len(corpus)) {
		t.Fatalf("hits=%d misses=%d after cold corpus", c.Hits(), c.Misses())
	}
	// Second pass with different literals: every statement hits.
	for _, src := range []string{
		"SELECT a, b FROM t WHERE a = 99 AND b = 'w'",
		"DELETE FROM t WHERE a = 123",
	} {
		want, _ := Parse(src)
		cs, params, ok := c.Prepare(src)
		if !ok {
			t.Fatalf("Prepare(%q): uncacheable", src)
		}
		got, err := cs.bind(params)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rebind %q: got %#v want %#v", src, got, want)
		}
	}
	if c.Hits() != 2 {
		t.Fatalf("hits=%d after warm pass, want 2", c.Hits())
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	stmts := []string{
		"SELECT * FROM a WHERE x = 1",
		"SELECT * FROM b WHERE x = 1",
		"SELECT * FROM c WHERE x = 1",
	}
	for _, s := range stmts {
		if _, _, ok := c.Prepare(s); !ok {
			t.Fatalf("Prepare(%q) failed", s)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	// The oldest shape (table a) was evicted: preparing it again misses.
	misses := c.Misses()
	if _, _, ok := c.Prepare(stmts[0]); !ok {
		t.Fatal("re-prepare failed")
	}
	if c.Misses() != misses+1 {
		t.Fatal("evicted entry did not miss")
	}
	// Table c is still resident: hits.
	hits := c.Hits()
	if _, _, ok := c.Prepare(stmts[2]); !ok {
		t.Fatal("re-prepare failed")
	}
	if c.Hits() != hits+1 {
		t.Fatal("resident entry did not hit")
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("len=%d after Invalidate, want 0", c.Len())
	}
}

// The cached plan hint must rebuild the same access path planWhere picks
// from scratch, for fresh literals bound into the same statement shape.
func TestPlanHintRebuild(t *testing.T) {
	schema := rel.NewSchema(
		rel.Column{Name: "id", Type: rel.TInt64},
		rel.Column{Name: "city", Type: rel.TString},
		rel.Column{Name: "score", Type: rel.TFloat64},
	)
	indexes := []IndexMeta{
		{Name: "pk", Cols: []int{0}, Unique: true},
		{Name: "city_score", Cols: []int{1, 2}},
	}
	wheres := [][]Cond{
		{{Col: "id", Val: rel.Int(1)}},
		{{Col: "city", Val: rel.Str("x")}, {Col: "score", Val: rel.Int(7)}}, // int→float coercion
		{{Col: "score", Val: rel.Float(1.5)}},                               // residual-only full scan
		{{Col: "city", Val: rel.Str("x")}, {Col: "id", Val: rel.Int(2)}},
	}
	for _, where := range wheres {
		want, hint, err := planWhereHint(schema, indexes, where)
		if err != nil {
			t.Fatal(err)
		}
		// Rebind with shifted literals of the same kinds.
		rebound := make([]Cond, len(where))
		for i, c := range where {
			v := c.Val
			switch v.Kind {
			case rel.TInt64:
				v = rel.Int(v.I + 100)
			case rel.TFloat64:
				v = rel.Float(v.F + 100)
			case rel.TString:
				v = rel.Str(v.S + "!")
			}
			rebound[i] = Cond{Col: c.Col, Val: v}
		}
		got, ok, err := hint.rebuild(schema, rebound)
		if err != nil || !ok {
			t.Fatalf("rebuild: ok=%v err=%v", ok, err)
		}
		fresh, err := planWhere(schema, indexes, rebound)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, fresh) {
			t.Errorf("where=%v: rebuilt %+v, fresh %+v (template plan %+v)", where, got, fresh, want)
		}
	}
	// A type mismatch at rebind is a real error, not a silent fallback.
	_, hint, err := planWhereHint(schema, indexes, wheres[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hint.rebuild(schema, []Cond{{Col: "id", Val: rel.Str("nope")}}); err == nil {
		t.Fatal("mistyped rebind accepted")
	}
}
