package sql

import (
	"errors"
	"fmt"

	"phoebedb/internal/rel"
)

// Catalog is the DDL surface the executor needs (satisfied by both
// engines' catalogs; the adapter in the public API wires it).
type Catalog interface {
	CreateTable(name string, schema *rel.Schema) error
	CreateIndex(table, index string, cols []string, unique bool) error
	// TableSchema returns the schema of a table.
	TableSchema(name string) (*rel.Schema, error)
	// IndexInfo enumerates a table's indexes: name, column positions,
	// uniqueness.
	IndexInfo(table string) ([]IndexMeta, error)
}

// IndexMeta describes one index for planning.
type IndexMeta struct {
	Name   string
	Cols   []int
	Unique bool
}

// StatCatalog is optionally implemented by catalogs exposing pg_stat-style
// virtual tables (phoebe_stat_engine, phoebe_stat_activity, ...). StatTable
// materializes the named virtual table at call time; ok is false when the
// name is not a stat table, sending the query down the normal path. Stat
// tables are read-only: INSERT/UPDATE/DELETE against them are rejected.
type StatCatalog interface {
	StatTable(name string) (schema *rel.Schema, rows []rel.Row, ok bool)
}

// statTable resolves name against cat's virtual tables, if it has any.
func statTable(cat Catalog, name string) (*rel.Schema, []rel.Row, bool) {
	if sc, ok := cat.(StatCatalog); ok {
		return sc.StatTable(name)
	}
	return nil, nil, false
}

// errStatReadOnly rejects writes to virtual stat tables.
func errStatReadOnly(table string) error {
	return fmt.Errorf("sql: %q is a read-only stat table", table)
}

// Txn is the DML surface the executor needs (a subset of the kernel's
// transaction API, also satisfied by the baseline engine).
type Txn interface {
	Insert(table string, row rel.Row) (rel.RowID, error)
	ScanIndex(table, index string, vals []rel.Value, fn func(rid rel.RowID, row rel.Row) bool) error
	ScanTable(table string, fn func(rid rel.RowID, row rel.Row) bool) error
	Update(table string, rid rel.RowID, set map[string]rel.Value) error
	Delete(table string, rid rel.RowID) error
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the projected columns of a SELECT.
	Columns []string
	// Rows holds SELECT output.
	Rows []rel.Row
	// Affected counts rows written by INSERT/UPDATE/DELETE.
	Affected int
}

// ErrUnsupported reports a statement outside the implemented subset.
var ErrUnsupported = errors.New("sql: unsupported statement")

// ExecDDL runs a CREATE statement against the catalog. DDL is not
// transactional (the embedded engine declares schema at startup).
func ExecDDL(cat Catalog, stmt Stmt) (Result, error) {
	switch s := stmt.(type) {
	case CreateTableStmt:
		return Result{}, cat.CreateTable(s.Table, rel.NewSchema(s.Cols...))
	case CreateIndexStmt:
		return Result{Affected: 0}, cat.CreateIndex(s.Table, s.Index, s.Cols, s.Unique)
	default:
		return Result{}, fmt.Errorf("%w: not DDL", ErrUnsupported)
	}
}

// IsDDL reports whether the statement is CREATE TABLE/INDEX.
func IsDDL(stmt Stmt) bool {
	switch stmt.(type) {
	case CreateTableStmt, CreateIndexStmt:
		return true
	}
	return false
}

// plan is a chosen access path for a WHERE conjunction.
type plan struct {
	// index is the chosen index ("" = full scan).
	index string
	// prefixVals are the equality values covering the index prefix.
	prefixVals []rel.Value
	// Range bounds on the index column right after the equality prefix
	// (meaningful only when hasLo or hasHi): the scan walks the B-Tree
	// between them instead of the whole prefix. rangeCol names the bound
	// column for EXPLAIN.
	rangeCol       string
	lo, hi         rel.Value
	hasLo, hasHi   bool
	loIncl, hiIncl bool
	// rangeConds are the bound conditions in residual form, used when the
	// transaction cannot run a native range scan (the bounds then demote
	// to a filter over a wider scan).
	rangeConds []Cond
	// residual are the conditions not covered by the index prefix or the
	// range bounds, evaluated against each candidate row.
	residual []Cond
	// empty marks a provably empty result: contradictory conditions on
	// one column (e.g. x > 5 AND x < 3). No scan runs at all.
	empty bool
}

// hasRange reports whether the plan carries index range bounds.
func (p *plan) hasRange() bool { return p.hasLo || p.hasHi }

// planHint is the access-path provenance the plan cache remembers: which
// index was chosen and which WHERE positions feed the prefix and the
// residual. Rebinding a cached statement re-derives the full plan from the
// hint in one pass over the (structurally identical) bound WHERE — no
// index scoring. DDL invalidates the whole cache, so a stored hint never
// outlives the schema it was computed against.
type planHint struct {
	nWhere int
	index  string
	prefix []hintCond
	// rangeLo/rangeHi are WHERE positions feeding the range bounds (-1 =
	// unset); rangeCol is the bound column's schema position. Bound
	// inclusivity re-derives from the WHERE ops, which are part of the
	// cache key, so it cannot drift between bindings.
	rangeCol         int
	rangeLo, rangeHi int
	residual         []hintCond
}

// hintCond ties one planned condition to its WHERE position and column.
type hintCond struct{ whereIdx, col int }

// rebuild re-derives the plan from the hint for a freshly bound WHERE.
// ok=false signals a structural mismatch (the caller re-plans from
// scratch); an error is a genuine literal type mismatch. Range bounds
// re-coerce (int literals widen on float columns) and the contradiction
// check re-runs — a cached BETWEEN bound to an empty interval yields an
// empty plan, not a wrong scan.
func (h *planHint) rebuild(schema *rel.Schema, where []Cond) (plan, bool, error) {
	if h.nWhere != len(where) {
		return plan{}, false, nil
	}
	coerce := func(hc hintCond) (rel.Value, bool, error) {
		if hc.whereIdx >= len(where) || hc.col >= schema.NumCols() {
			return rel.Value{}, false, nil
		}
		v := where[hc.whereIdx].Val
		ct := schema.Cols[hc.col].Type
		if v.Kind != ct {
			if v.Kind == rel.TInt64 && ct == rel.TFloat64 {
				return rel.Float(float64(v.I)), true, nil
			}
			return rel.Value{}, false, fmt.Errorf("sql: column %q: literal type mismatch", where[hc.whereIdx].Col)
		}
		return v, true, nil
	}
	p := plan{index: h.index}
	if len(h.prefix) > 0 {
		p.prefixVals = make([]rel.Value, len(h.prefix))
		for i, hc := range h.prefix {
			v, ok, err := coerce(hc)
			if !ok || err != nil {
				return plan{}, false, err
			}
			p.prefixVals[i] = v
		}
	}
	if h.rangeLo >= 0 {
		v, ok, err := coerce(hintCond{whereIdx: h.rangeLo, col: h.rangeCol})
		if !ok || err != nil {
			return plan{}, false, err
		}
		c := where[h.rangeLo]
		p.rangeCol, p.lo, p.hasLo, p.loIncl = c.Col, v, true, c.Op == rel.CmpGe
		p.rangeConds = append(p.rangeConds, Cond{Col: c.Col, Op: c.Op, Val: v})
	}
	if h.rangeHi >= 0 {
		v, ok, err := coerce(hintCond{whereIdx: h.rangeHi, col: h.rangeCol})
		if !ok || err != nil {
			return plan{}, false, err
		}
		c := where[h.rangeHi]
		p.rangeCol, p.hi, p.hasHi, p.hiIncl = c.Col, v, true, c.Op == rel.CmpLe
		p.rangeConds = append(p.rangeConds, Cond{Col: c.Col, Op: c.Op, Val: v})
	}
	if p.hasLo && p.hasHi {
		if c := rel.Compare(p.lo, p.hi); c > 0 || (c == 0 && !(p.loIncl && p.hiIncl)) {
			p.empty = true
		}
	}
	if len(h.residual) > 0 {
		p.residual = make([]Cond, len(h.residual))
		for i, hc := range h.residual {
			v, ok, err := coerce(hc)
			if !ok || err != nil {
				return plan{}, false, err
			}
			p.residual[i] = Cond{Col: where[hc.whereIdx].Col, Op: where[hc.whereIdx].Op, Val: v}
		}
	}
	return p, true, nil
}

// resolvedCond is one WHERE condition mapped to its column position, with
// the literal coerced to the column type.
type resolvedCond struct {
	whereIdx int
	col      int
	op       rel.CmpOp
	val      rel.Value
}

// resolvedBound is one side of a column's intersected range.
type resolvedBound struct {
	set      bool
	incl     bool
	val      rel.Value
	whereIdx int
}

// resolvedRange is the intersection of all range conditions on one column.
type resolvedRange struct {
	col    int
	lo, hi resolvedBound
}

// resolvedWhere is a WHERE conjunction normalized for planning: equality
// conditions deduped (last wins, the documented planner semantics), range
// conditions intersected per column, != conditions kept verbatim.
type resolvedWhere struct {
	// conds holds equality and != conditions, first-appearance order.
	conds []resolvedCond
	// ranges holds per-column intersected bounds, first-appearance order.
	ranges []resolvedRange
	// empty marks a provably empty conjunction (contradictory bounds, or
	// an equality outside the column's range).
	empty bool
	// stable reports that no value-dependent choice was made (every bound
	// came from exactly one condition and no column mixes = with a
	// range), so a plan hint keyed on WHERE positions can be cached.
	stable bool
}

// resolveWhere maps conditions to column positions, coerces literal types,
// and normalizes the conjunction. Equality conditions on a repeated column
// dedupe with the last one winning — the planner's historical map-overwrite
// semantics, mirrored by the reference engine. Range conditions must NOT
// dedupe that way (x > 5 AND x < 10 is an interval, not a replacement):
// they intersect, tightening each side and keeping the stricter bound on
// ties; a provably empty intersection marks the whole conjunction empty.
// WHERE clauses are small, so linear probing beats building maps.
func resolveWhere(schema *rel.Schema, where []Cond) (resolvedWhere, error) {
	rw := resolvedWhere{stable: true}
	findRange := func(col int) *resolvedRange {
		for j := range rw.ranges {
			if rw.ranges[j].col == col {
				return &rw.ranges[j]
			}
		}
		return nil
	}
	for i, c := range where {
		pos := schema.ColIndex(c.Col)
		if pos < 0 {
			return resolvedWhere{}, fmt.Errorf("sql: unknown column %q", c.Col)
		}
		v := c.Val
		if v.Kind != schema.Cols[pos].Type {
			// Allow int literals for float columns.
			if v.Kind == rel.TInt64 && schema.Cols[pos].Type == rel.TFloat64 {
				v = rel.Float(float64(v.I))
			} else {
				return resolvedWhere{}, fmt.Errorf("sql: column %q: literal type mismatch", c.Col)
			}
		}
		switch c.Op {
		case rel.CmpEq:
			dup := false
			for j := range rw.conds {
				if rw.conds[j].col == pos && rw.conds[j].op == rel.CmpEq {
					rw.conds[j] = resolvedCond{whereIdx: i, col: pos, op: rel.CmpEq, val: v}
					dup = true
					break
				}
			}
			if !dup {
				rw.conds = append(rw.conds, resolvedCond{whereIdx: i, col: pos, op: rel.CmpEq, val: v})
			}
		case rel.CmpNe:
			rw.conds = append(rw.conds, resolvedCond{whereIdx: i, col: pos, op: rel.CmpNe, val: v})
		default:
			rr := findRange(pos)
			if rr == nil {
				rw.ranges = append(rw.ranges, resolvedRange{col: pos})
				rr = &rw.ranges[len(rw.ranges)-1]
			}
			b := resolvedBound{set: true, incl: c.Op == rel.CmpGe || c.Op == rel.CmpLe, val: v, whereIdx: i}
			side := &rr.lo
			if c.Op == rel.CmpLt || c.Op == rel.CmpLe {
				side = &rr.hi
			}
			if !side.set {
				*side = b
				break
			}
			// A second bound on the same side: which one wins depends on
			// the literal values, so a cached hint cannot replay the
			// choice — fall back to per-execution planning.
			rw.stable = false
			cv := rel.Compare(v, side.val)
			isLo := side == &rr.lo
			if (isLo && cv > 0) || (!isLo && cv < 0) || (cv == 0 && !b.incl && side.incl) {
				*side = b
			}
		}
	}
	// Intersect each column's range with itself and with any equality on
	// the same column.
	kept := rw.ranges[:0]
	for _, rr := range rw.ranges {
		if rr.lo.set && rr.hi.set {
			if c := rel.Compare(rr.lo.val, rr.hi.val); c > 0 || (c == 0 && !(rr.lo.incl && rr.hi.incl)) {
				rw.empty = true
			}
		}
		eqVal, hasEq := rel.Value{}, false
		for _, rc := range rw.conds {
			if rc.col == rr.col && rc.op == rel.CmpEq {
				eqVal, hasEq = rc.val, true
				break
			}
		}
		if hasEq {
			// The equality either pins the column inside the range (the
			// range becomes redundant) or contradicts it (empty). Whether
			// the range survives depends on literal values: unstable.
			rw.stable = false
			if rr.lo.set {
				c := rel.Compare(eqVal, rr.lo.val)
				if c < 0 || (c == 0 && !rr.lo.incl) {
					rw.empty = true
				}
			}
			if rr.hi.set {
				c := rel.Compare(eqVal, rr.hi.val)
				if c > 0 || (c == 0 && !rr.hi.incl) {
					rw.empty = true
				}
			}
			continue // equality subsumes the range
		}
		kept = append(kept, rr)
	}
	rw.ranges = kept
	return rw, nil
}

// boundCond renders one range bound back into residual-filter form.
func boundCond(schema *rel.Schema, col int, b resolvedBound, isLo bool) Cond {
	op := rel.CmpLt
	if isLo {
		op = rel.CmpGt
		if b.incl {
			op = rel.CmpGe
		}
	} else if b.incl {
		op = rel.CmpLe
	}
	return Cond{Col: schema.Cols[col].Name, Op: op, Val: b.val}
}

// flatten renders the normalized conjunction as residual-filter conditions
// (for paths that bypass index planning, like the join probe side).
func (rw *resolvedWhere) flatten(schema *rel.Schema) []Cond {
	out := make([]Cond, 0, len(rw.conds)+2*len(rw.ranges))
	for _, rc := range rw.conds {
		out = append(out, Cond{Col: schema.Cols[rc.col].Name, Op: rc.op, Val: rc.val})
	}
	for _, rr := range rw.ranges {
		if rr.lo.set {
			out = append(out, boundCond(schema, rr.col, rr.lo, true))
		}
		if rr.hi.set {
			out = append(out, boundCond(schema, rr.col, rr.hi, false))
		}
	}
	return out
}

// planWhere picks the best access path: the index whose column prefix is
// covered by the most equality conditions, preferring full unique matches,
// with a range condition on the next index column extending the path to a
// B-Tree range scan.
func planWhere(schema *rel.Schema, indexes []IndexMeta, where []Cond) (plan, error) {
	p, _, err := planWhereHint(schema, indexes, where)
	return p, err
}

// planWhereHint is planWhere plus the provenance the plan cache stores.
// The hint is nil when the resolution made value-dependent choices (the
// caller then re-plans per execution instead of caching).
func planWhereHint(schema *rel.Schema, indexes []IndexMeta, where []Cond) (plan, *planHint, error) {
	rw, err := resolveWhere(schema, where)
	if err != nil {
		return plan{}, nil, err
	}
	findEq := func(col int) int {
		for j := range rw.conds {
			if rw.conds[j].col == col && rw.conds[j].op == rel.CmpEq {
				return j
			}
		}
		return -1
	}
	findRange := func(col int) *resolvedRange {
		for j := range rw.ranges {
			if rw.ranges[j].col == col {
				return &rw.ranges[j]
			}
		}
		return nil
	}
	// Score: equality coverage dominates (x4), full unique matches break
	// coverage ties (+2), and a range on the next index column breaks the
	// remaining ties (+1) — so among equally covered indexes the planner
	// prefers the one whose ordering the range can exploit.
	bestIdx, bestScore, bestCovered := -1, 0, 0
	var bestRange *resolvedRange
	for i, ix := range indexes {
		covered := 0
		for _, pos := range ix.Cols {
			if findEq(pos) < 0 {
				break
			}
			covered++
		}
		var rr *resolvedRange
		if covered < len(ix.Cols) {
			rr = findRange(ix.Cols[covered])
		}
		if covered == 0 && rr == nil {
			continue
		}
		score := covered * 4
		if ix.Unique && covered == len(ix.Cols) {
			score += 2 // full unique match wins ties
		}
		if rr != nil {
			score++
		}
		if score > bestScore {
			bestIdx, bestScore, bestCovered, bestRange = i, score, covered, rr
		}
	}
	h := &planHint{nWhere: len(where), rangeCol: -1, rangeLo: -1, rangeHi: -1}
	p := plan{empty: rw.empty}
	inPrefix := func(col int) bool { return false }
	if bestIdx >= 0 {
		ix := indexes[bestIdx]
		p.index, h.index = ix.Name, ix.Name
		if bestCovered > 0 {
			p.prefixVals = make([]rel.Value, 0, bestCovered)
		}
		for _, pos := range ix.Cols[:bestCovered] {
			r := rw.conds[findEq(pos)]
			p.prefixVals = append(p.prefixVals, r.val)
			h.prefix = append(h.prefix, hintCond{whereIdx: r.whereIdx, col: r.col})
		}
		prefixCols := ix.Cols[:bestCovered]
		inPrefix = func(col int) bool {
			for _, pos := range prefixCols {
				if pos == col {
					return true
				}
			}
			return false
		}
		if bestRange != nil {
			p.rangeCol = schema.Cols[bestRange.col].Name
			h.rangeCol = bestRange.col
			if bestRange.lo.set {
				p.lo, p.hasLo, p.loIncl = bestRange.lo.val, true, bestRange.lo.incl
				h.rangeLo = bestRange.lo.whereIdx
				p.rangeConds = append(p.rangeConds, boundCond(schema, bestRange.col, bestRange.lo, true))
			}
			if bestRange.hi.set {
				p.hi, p.hasHi, p.hiIncl = bestRange.hi.val, true, bestRange.hi.incl
				h.rangeHi = bestRange.hi.whereIdx
				p.rangeConds = append(p.rangeConds, boundCond(schema, bestRange.col, bestRange.hi, false))
			}
		}
	}
	for _, r := range rw.conds {
		if r.op == rel.CmpEq && inPrefix(r.col) {
			continue
		}
		p.residual = append(p.residual, Cond{Col: where[r.whereIdx].Col, Op: r.op, Val: r.val})
		h.residual = append(h.residual, hintCond{whereIdx: r.whereIdx, col: r.col})
	}
	for i := range rw.ranges {
		rr := &rw.ranges[i]
		if rr == bestRange {
			continue // enforced by the scan bounds
		}
		if rr.lo.set {
			p.residual = append(p.residual, boundCond(schema, rr.col, rr.lo, true))
			h.residual = append(h.residual, hintCond{whereIdx: rr.lo.whereIdx, col: rr.col})
		}
		if rr.hi.set {
			p.residual = append(p.residual, boundCond(schema, rr.col, rr.hi, false))
			h.residual = append(h.residual, hintCond{whereIdx: rr.hi.whereIdx, col: rr.col})
		}
	}
	if !rw.stable {
		return p, nil, nil
	}
	return p, h, nil
}

// planFor resolves the access path, consulting and populating the cached
// statement's plan hint when one is supplied.
func planFor(hint *CachedStmt, schema *rel.Schema, indexes []IndexMeta, where []Cond) (plan, error) {
	if hint == nil {
		return planWhere(schema, indexes, where)
	}
	if h := hint.plan.Load(); h != nil {
		p, ok, err := h.rebuild(schema, where)
		if err != nil {
			return plan{}, err
		}
		if ok {
			return p, nil
		}
	}
	p, h, err := planWhereHint(schema, indexes, where)
	if err != nil {
		return plan{}, err
	}
	if h != nil {
		hint.plan.Store(h)
	}
	return p, nil
}

func matches(schema *rel.Schema, row rel.Row, conds []Cond) bool {
	for _, c := range conds {
		pos := schema.ColIndex(c.Col)
		if pos < 0 || !c.Op.Accepts(rel.Compare(row[pos], c.Val)) {
			return false
		}
	}
	return true
}

// RangeTxn is optionally implemented by transactions whose index scans
// accept lo/hi range bounds (the kernel's B-Tree Scan(lo, hi)). prefix
// carries the equality values pinning the leading index columns; the
// bounds constrain the next index column. An unset bound (hasLo/hasHi
// false) leaves that side open within the prefix.
type RangeTxn interface {
	ScanIndexRange(table, index string, prefix []rel.Value, lo, hi rel.Value,
		hasLo, hasHi, loIncl, hiIncl bool, fn func(rid rel.RowID, row rel.Row) bool) error
}

// VectorizedTxn is optionally implemented by transactions that can
// evaluate fixed-width column predicates batch-at-a-time against PAX
// minipages (selection vectors, §5.2) instead of materializing every row.
// Both scans honor the borrowed-row contract of ScanTable.
type VectorizedTxn interface {
	// VectorizedScanEnabled reports whether the engine has the vectorized
	// path enabled (false under the DisableVectorizedScan ablation).
	VectorizedScanEnabled() bool
	// ScanTableFiltered invokes fn only for visible rows satisfying every
	// predicate.
	ScanTableFiltered(table string, preds []rel.ColPred, fn func(rid rel.RowID, row rel.Row) bool) error
	// AggTableFiltered folds the qualifying rows into the given aggregates
	// without materializing rows, returning one value per spec plus the
	// qualifying row count (vals are meaningless when n is 0).
	AggTableFiltered(table string, preds []rel.ColPred, specs []rel.AggSpec) (vals []rel.Value, n int64, err error)
}

// colPreds lowers residual conditions to column predicates for the
// vectorized path. ok is false when any condition touches a var-width
// column (string comparisons keep the row-at-a-time path) or an unknown
// column.
func colPreds(schema *rel.Schema, conds []Cond) ([]rel.ColPred, bool) {
	if len(conds) == 0 {
		return nil, true
	}
	preds := make([]rel.ColPred, len(conds))
	for i, c := range conds {
		pos := schema.ColIndex(c.Col)
		if pos < 0 || schema.Cols[pos].Type.FixedWidth() == 0 {
			return nil, false
		}
		preds[i] = rel.ColPred{Col: pos, Op: c.Op, Val: c.Val}
	}
	return preds, true
}

// vectorizedFor returns the vectorized transaction surface when tx
// supports it and the engine has it enabled.
func vectorizedFor(tx Txn) (VectorizedTxn, bool) {
	vt, ok := tx.(VectorizedTxn)
	if !ok || !vt.VectorizedScanEnabled() {
		return nil, false
	}
	return vt, true
}

// scanMatching drives the planned access path, invoking fn for each
// matching (rid, row) until fn returns false. op, when non-nil, collects
// the scan's actuals for EXPLAIN ANALYZE: rows examined (in), rows passing
// the residual filter (out), and wall time; a nil op costs one branch.
//
// Access paths, in order: a provably empty plan scans nothing; an index
// plan with range bounds runs a B-Tree range scan (demoting the bounds to
// residual filters when tx lacks RangeTxn); an equality-prefix index plan
// runs a prefix scan; a full scan evaluates its residual vectorized over
// PAX column strips when tx supports it and every filtered column is
// fixed-width, else row at a time.
func scanMatching(tx Txn, schema *rel.Schema, table string, p plan, op *opTrace, fn func(rid rel.RowID, row rel.Row) bool) error {
	if p.empty {
		return nil
	}
	start := op.begin()
	visit := func(rid rel.RowID, row rel.Row) bool {
		if op != nil {
			op.rowsIn++
		}
		if !matches(schema, row, p.residual) {
			return true
		}
		if op != nil {
			op.rowsOut++
		}
		return fn(rid, row)
	}
	var err error
	switch {
	case p.index != "" && p.hasRange():
		if rt, ok := tx.(RangeTxn); ok {
			err = rt.ScanIndexRange(table, p.index, p.prefixVals, p.lo, p.hi,
				p.hasLo, p.hasHi, p.loIncl, p.hiIncl, visit)
			break
		}
		// No native range scan: widen to the prefix (or full) scan and
		// re-apply the bounds as filters.
		widened := visit
		if len(p.rangeConds) > 0 {
			widened = func(rid rel.RowID, row rel.Row) bool {
				if !matches(schema, row, p.rangeConds) {
					return true
				}
				return visit(rid, row)
			}
		}
		if len(p.prefixVals) > 0 {
			err = tx.ScanIndex(table, p.index, p.prefixVals, widened)
		} else {
			err = tx.ScanTable(table, widened)
		}
	case p.index != "":
		err = tx.ScanIndex(table, p.index, p.prefixVals, visit)
	default:
		if vt, ok := vectorizedFor(tx); ok {
			if preds, ok := colPreds(schema, p.residual); ok {
				// The selection vector already applied every predicate:
				// fn sees exactly the qualifying rows.
				err = vt.ScanTableFiltered(table, preds, func(rid rel.RowID, row rel.Row) bool {
					if op != nil {
						op.rowsIn++
						op.rowsOut++
					}
					return fn(rid, row)
				})
				break
			}
		}
		err = tx.ScanTable(table, visit)
	}
	op.end(start)
	return err
}

// Exec runs a DML statement inside tx.
func Exec(cat Catalog, tx Txn, stmt Stmt) (Result, error) {
	return exec(cat, tx, stmt, nil, nil)
}

// ExecPrepared binds params into cs's template and executes it, reusing
// the cached access-path choice. It is the hit-path counterpart of
// Parse+Exec.
func ExecPrepared(cat Catalog, tx Txn, cs *CachedStmt, params []rel.Value) (Result, error) {
	stmt, err := cs.bind(params)
	if err != nil {
		return Result{}, err
	}
	return exec(cat, tx, stmt, cs, nil)
}

func exec(cat Catalog, tx Txn, stmt Stmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	switch s := stmt.(type) {
	case InsertStmt:
		return execInsert(cat, tx, s, tr)
	case SelectStmt:
		return execSelect(cat, tx, s, hint, tr)
	case UpdateStmt:
		return execUpdate(cat, tx, s, hint, tr)
	case DeleteStmt:
		return execDelete(cat, tx, s, hint, tr)
	case ExplainStmt:
		return execExplain(cat, tx, s)
	case CreateTableStmt, CreateIndexStmt:
		return Result{}, fmt.Errorf("%w: DDL inside a transaction", ErrUnsupported)
	default:
		return Result{}, ErrUnsupported
	}
}

func execInsert(cat Catalog, tx Txn, s InsertStmt, tr *execTrace) (Result, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return Result{}, errStatReadOnly(s.Table)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	mop := tr.modifyOp()
	mstart := mop.begin()
	n := 0
	for _, vals := range s.Rows {
		if len(vals) != schema.NumCols() {
			return Result{Affected: n}, fmt.Errorf("sql: INSERT has %d values, table %q has %d columns",
				len(vals), s.Table, schema.NumCols())
		}
		row := make(rel.Row, len(vals))
		for i, v := range vals {
			// Int literals coerce to float columns.
			if v.Kind == rel.TInt64 && schema.Cols[i].Type == rel.TFloat64 {
				v = rel.Float(float64(v.I))
			}
			row[i] = v
		}
		if _, err := tx.Insert(s.Table, row); err != nil {
			return Result{Affected: n}, err
		}
		n++
	}
	mop.rows(int64(len(s.Rows)), int64(n))
	mop.end(mstart)
	return Result{Affected: n}, nil
}

func execSelect(cat Catalog, tx Txn, s SelectStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	if s.Join != nil {
		return execSelectJoin(cat, tx, s, hint, tr)
	}
	if schema, rows, ok := statTable(cat, s.Table); ok {
		return selectRows(cat, schema, rows, s, tr)
	}
	if tr != nil || len(s.GroupBy) > 0 || len(s.OrderBy) > 0 || hasAggs(s.Exprs) {
		// EXPLAIN ANALYZE routes the streaming fast path through the shaped
		// pipeline too: same rows, and every operator gets instrumented
		// while the hot untraced path keeps zero branches.
		return execSelectShaped(cat, tx, s, hint, tr)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	notePlan(tx, scanLabel(s.Table, p))
	// Projection.
	var proj []int
	var cols []string
	if s.Exprs == nil {
		for i, c := range schema.Cols {
			proj = append(proj, i)
			cols = append(cols, c.Name)
		}
	} else {
		for _, e := range s.Exprs {
			if e.Ref.Table != "" && e.Ref.Table != s.Table {
				return Result{}, fmt.Errorf("sql: unknown table %q in column reference", e.Ref.Table)
			}
			pos := schema.ColIndex(e.Ref.Col)
			if pos < 0 {
				return Result{}, fmt.Errorf("sql: unknown column %q", e.Ref.Col)
			}
			proj = append(proj, pos)
			cols = append(cols, e.Ref.Col)
		}
	}
	res := Result{Columns: cols}
	err = scanMatching(tx, schema, s.Table, p, nil, func(rid rel.RowID, row rel.Row) bool {
		out := make(rel.Row, len(proj))
		for i, pos := range proj {
			out[i] = row[pos]
		}
		res.Rows = append(res.Rows, out)
		return s.Limit == 0 || len(res.Rows) < s.Limit
	})
	return res, err
}

// selectRows runs a SELECT over pre-materialized rows (virtual stat
// tables): WHERE becomes pure residual filtering, then the shared shaping
// pipeline (aggregation, ORDER BY, LIMIT, projection) applies.
func selectRows(cat Catalog, schema *rel.Schema, rows []rel.Row, s SelectStmt, tr *execTrace) (Result, error) {
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	p, err := planWhere(schema, nil, s.Where)
	if err != nil {
		return Result{}, err
	}
	op := tr.scanOp()
	start := op.begin()
	var matched []rel.Row
	for _, row := range rows {
		if op != nil {
			op.rowsIn++
		}
		if matches(schema, row, p.residual) {
			if op != nil {
				op.rowsOut++
			}
			matched = append(matched, row)
		}
	}
	op.end(start)
	return shapeRows(singleSource(s.Table, schema), s, matched, false, countersOf(cat), tr)
}

func execUpdate(cat Catalog, tx Txn, s UpdateStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return Result{}, errStatReadOnly(s.Table)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	// Validate and coerce the SET clause.
	set := make(map[string]rel.Value, len(s.Set))
	for name, v := range s.Set {
		pos := schema.ColIndex(name)
		if pos < 0 {
			return Result{}, fmt.Errorf("sql: unknown column %q", name)
		}
		if v.Kind == rel.TInt64 && schema.Cols[pos].Type == rel.TFloat64 {
			v = rel.Float(float64(v.I))
		}
		if v.Kind != schema.Cols[pos].Type {
			return Result{}, fmt.Errorf("sql: column %q: literal type mismatch", name)
		}
		set[name] = v
	}
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	notePlan(tx, scanLabel(s.Table, p))
	// Collect targets first: updating while scanning the same index could
	// revisit moved entries.
	var rids []rel.RowID
	if err := scanMatching(tx, schema, s.Table, p, tr.scanOp(), func(rid rel.RowID, row rel.Row) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return Result{}, err
	}
	mop := tr.modifyOp()
	mstart := mop.begin()
	for _, rid := range rids {
		if err := tx.Update(s.Table, rid, set); err != nil {
			return Result{}, err
		}
	}
	mop.rows(int64(len(rids)), int64(len(rids)))
	mop.end(mstart)
	return Result{Affected: len(rids)}, nil
}

func execDelete(cat Catalog, tx Txn, s DeleteStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return Result{}, errStatReadOnly(s.Table)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	notePlan(tx, scanLabel(s.Table, p))
	var rids []rel.RowID
	if err := scanMatching(tx, schema, s.Table, p, tr.scanOp(), func(rid rel.RowID, row rel.Row) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return Result{}, err
	}
	mop := tr.modifyOp()
	mstart := mop.begin()
	for _, rid := range rids {
		if err := tx.Delete(s.Table, rid); err != nil {
			return Result{}, err
		}
	}
	mop.rows(int64(len(rids)), int64(len(rids)))
	mop.end(mstart)
	return Result{Affected: len(rids)}, nil
}
