package sql

import (
	"errors"
	"fmt"

	"phoebedb/internal/rel"
)

// Catalog is the DDL surface the executor needs (satisfied by both
// engines' catalogs; the adapter in the public API wires it).
type Catalog interface {
	CreateTable(name string, schema *rel.Schema) error
	CreateIndex(table, index string, cols []string, unique bool) error
	// TableSchema returns the schema of a table.
	TableSchema(name string) (*rel.Schema, error)
	// IndexInfo enumerates a table's indexes: name, column positions,
	// uniqueness.
	IndexInfo(table string) ([]IndexMeta, error)
}

// IndexMeta describes one index for planning.
type IndexMeta struct {
	Name   string
	Cols   []int
	Unique bool
}

// StatCatalog is optionally implemented by catalogs exposing pg_stat-style
// virtual tables (phoebe_stat_engine, phoebe_stat_activity, ...). StatTable
// materializes the named virtual table at call time; ok is false when the
// name is not a stat table, sending the query down the normal path. Stat
// tables are read-only: INSERT/UPDATE/DELETE against them are rejected.
type StatCatalog interface {
	StatTable(name string) (schema *rel.Schema, rows []rel.Row, ok bool)
}

// statTable resolves name against cat's virtual tables, if it has any.
func statTable(cat Catalog, name string) (*rel.Schema, []rel.Row, bool) {
	if sc, ok := cat.(StatCatalog); ok {
		return sc.StatTable(name)
	}
	return nil, nil, false
}

// errStatReadOnly rejects writes to virtual stat tables.
func errStatReadOnly(table string) error {
	return fmt.Errorf("sql: %q is a read-only stat table", table)
}

// Txn is the DML surface the executor needs (a subset of the kernel's
// transaction API, also satisfied by the baseline engine).
type Txn interface {
	Insert(table string, row rel.Row) (rel.RowID, error)
	ScanIndex(table, index string, vals []rel.Value, fn func(rid rel.RowID, row rel.Row) bool) error
	ScanTable(table string, fn func(rid rel.RowID, row rel.Row) bool) error
	Update(table string, rid rel.RowID, set map[string]rel.Value) error
	Delete(table string, rid rel.RowID) error
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the projected columns of a SELECT.
	Columns []string
	// Rows holds SELECT output.
	Rows []rel.Row
	// Affected counts rows written by INSERT/UPDATE/DELETE.
	Affected int
}

// ErrUnsupported reports a statement outside the implemented subset.
var ErrUnsupported = errors.New("sql: unsupported statement")

// ExecDDL runs a CREATE statement against the catalog. DDL is not
// transactional (the embedded engine declares schema at startup).
func ExecDDL(cat Catalog, stmt Stmt) (Result, error) {
	switch s := stmt.(type) {
	case CreateTableStmt:
		return Result{}, cat.CreateTable(s.Table, rel.NewSchema(s.Cols...))
	case CreateIndexStmt:
		return Result{Affected: 0}, cat.CreateIndex(s.Table, s.Index, s.Cols, s.Unique)
	default:
		return Result{}, fmt.Errorf("%w: not DDL", ErrUnsupported)
	}
}

// IsDDL reports whether the statement is CREATE TABLE/INDEX.
func IsDDL(stmt Stmt) bool {
	switch stmt.(type) {
	case CreateTableStmt, CreateIndexStmt:
		return true
	}
	return false
}

// plan is a chosen access path for a WHERE conjunction.
type plan struct {
	// index is the chosen index ("" = full scan).
	index string
	// prefixVals are the equality values covering the index prefix.
	prefixVals []rel.Value
	// residual are the conditions not covered by the index prefix,
	// evaluated against each candidate row.
	residual []Cond
}

// planHint is the access-path provenance the plan cache remembers: which
// index was chosen and which WHERE positions feed the prefix and the
// residual. Rebinding a cached statement re-derives the full plan from the
// hint in one pass over the (structurally identical) bound WHERE — no
// index scoring. DDL invalidates the whole cache, so a stored hint never
// outlives the schema it was computed against.
type planHint struct {
	nWhere   int
	index    string
	prefix   []hintCond
	residual []hintCond
}

// hintCond ties one planned condition to its WHERE position and column.
type hintCond struct{ whereIdx, col int }

// rebuild re-derives the plan from the hint for a freshly bound WHERE.
// ok=false signals a structural mismatch (the caller re-plans from
// scratch); an error is a genuine literal type mismatch.
func (h *planHint) rebuild(schema *rel.Schema, where []Cond) (plan, bool, error) {
	if h.nWhere != len(where) {
		return plan{}, false, nil
	}
	coerce := func(hc hintCond) (rel.Value, bool, error) {
		if hc.whereIdx >= len(where) || hc.col >= schema.NumCols() {
			return rel.Value{}, false, nil
		}
		v := where[hc.whereIdx].Val
		ct := schema.Cols[hc.col].Type
		if v.Kind != ct {
			if v.Kind == rel.TInt64 && ct == rel.TFloat64 {
				return rel.Float(float64(v.I)), true, nil
			}
			return rel.Value{}, false, fmt.Errorf("sql: column %q: literal type mismatch", where[hc.whereIdx].Col)
		}
		return v, true, nil
	}
	p := plan{index: h.index}
	if len(h.prefix) > 0 {
		p.prefixVals = make([]rel.Value, len(h.prefix))
		for i, hc := range h.prefix {
			v, ok, err := coerce(hc)
			if !ok || err != nil {
				return plan{}, false, err
			}
			p.prefixVals[i] = v
		}
	}
	if len(h.residual) > 0 {
		p.residual = make([]Cond, len(h.residual))
		for i, hc := range h.residual {
			v, ok, err := coerce(hc)
			if !ok || err != nil {
				return plan{}, false, err
			}
			p.residual[i] = Cond{Col: where[hc.whereIdx].Col, Val: v}
		}
	}
	return p, true, nil
}

// resolvedCond is one WHERE condition mapped to its column position, with
// the literal coerced to the column type.
type resolvedCond struct {
	whereIdx int
	col      int
	val      rel.Value
}

// resolveWhere maps conditions to column positions and coerces literal
// types. Repeated columns dedupe with the last condition winning,
// preserving the planner's historical map-overwrite semantics. WHERE
// clauses are small, so linear probing beats building a map.
func resolveWhere(schema *rel.Schema, where []Cond) ([]resolvedCond, error) {
	out := make([]resolvedCond, 0, len(where))
	for i, c := range where {
		pos := schema.ColIndex(c.Col)
		if pos < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", c.Col)
		}
		v := c.Val
		if v.Kind != schema.Cols[pos].Type {
			// Allow int literals for float columns.
			if v.Kind == rel.TInt64 && schema.Cols[pos].Type == rel.TFloat64 {
				v = rel.Float(float64(v.I))
			} else {
				return nil, fmt.Errorf("sql: column %q: literal type mismatch", c.Col)
			}
		}
		dup := false
		for j := range out {
			if out[j].col == pos {
				out[j] = resolvedCond{whereIdx: i, col: pos, val: v}
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, resolvedCond{whereIdx: i, col: pos, val: v})
		}
	}
	return out, nil
}

// planWhere picks the best access path: the index whose column prefix is
// covered by the most equality conditions, preferring full unique matches.
func planWhere(schema *rel.Schema, indexes []IndexMeta, where []Cond) (plan, error) {
	p, _, err := planWhereHint(schema, indexes, where)
	return p, err
}

// planWhereHint is planWhere plus the provenance the plan cache stores.
func planWhereHint(schema *rel.Schema, indexes []IndexMeta, where []Cond) (plan, *planHint, error) {
	rs, err := resolveWhere(schema, where)
	if err != nil {
		return plan{}, nil, err
	}
	find := func(col int) int {
		for j := range rs {
			if rs[j].col == col {
				return j
			}
		}
		return -1
	}
	bestIdx, bestScore, bestCovered := -1, -1, 0
	for i, ix := range indexes {
		covered := 0
		for _, pos := range ix.Cols {
			if find(pos) < 0 {
				break
			}
			covered++
		}
		if covered == 0 {
			continue
		}
		score := covered * 2
		if ix.Unique && covered == len(ix.Cols) {
			score++ // full unique match wins ties
		}
		if score > bestScore {
			bestIdx, bestScore, bestCovered = i, score, covered
		}
	}
	h := &planHint{nWhere: len(where)}
	p := plan{}
	inPrefix := func(col int) bool { return false }
	if bestIdx >= 0 {
		ix := indexes[bestIdx]
		p.index, h.index = ix.Name, ix.Name
		p.prefixVals = make([]rel.Value, 0, bestCovered)
		for _, pos := range ix.Cols[:bestCovered] {
			r := rs[find(pos)]
			p.prefixVals = append(p.prefixVals, r.val)
			h.prefix = append(h.prefix, hintCond{whereIdx: r.whereIdx, col: r.col})
		}
		prefixCols := ix.Cols[:bestCovered]
		inPrefix = func(col int) bool {
			for _, pos := range prefixCols {
				if pos == col {
					return true
				}
			}
			return false
		}
	}
	for _, r := range rs {
		if inPrefix(r.col) {
			continue
		}
		p.residual = append(p.residual, Cond{Col: where[r.whereIdx].Col, Val: r.val})
		h.residual = append(h.residual, hintCond{whereIdx: r.whereIdx, col: r.col})
	}
	return p, h, nil
}

// planFor resolves the access path, consulting and populating the cached
// statement's plan hint when one is supplied.
func planFor(hint *CachedStmt, schema *rel.Schema, indexes []IndexMeta, where []Cond) (plan, error) {
	if hint == nil {
		return planWhere(schema, indexes, where)
	}
	if h := hint.plan.Load(); h != nil {
		p, ok, err := h.rebuild(schema, where)
		if err != nil {
			return plan{}, err
		}
		if ok {
			return p, nil
		}
	}
	p, h, err := planWhereHint(schema, indexes, where)
	if err != nil {
		return plan{}, err
	}
	hint.plan.Store(h)
	return p, nil
}

func matches(schema *rel.Schema, row rel.Row, conds []Cond) bool {
	for _, c := range conds {
		pos := schema.ColIndex(c.Col)
		if pos < 0 || !row[pos].Equal(c.Val) {
			return false
		}
	}
	return true
}

// scanMatching drives the planned access path, invoking fn for each
// matching (rid, row) until fn returns false. op, when non-nil, collects
// the scan's actuals for EXPLAIN ANALYZE: rows examined (in), rows passing
// the residual filter (out), and wall time; a nil op costs one branch.
func scanMatching(tx Txn, schema *rel.Schema, table string, p plan, op *opTrace, fn func(rid rel.RowID, row rel.Row) bool) error {
	start := op.begin()
	visit := func(rid rel.RowID, row rel.Row) bool {
		if op != nil {
			op.rowsIn++
		}
		if !matches(schema, row, p.residual) {
			return true
		}
		if op != nil {
			op.rowsOut++
		}
		return fn(rid, row)
	}
	var err error
	if p.index != "" {
		err = tx.ScanIndex(table, p.index, p.prefixVals, visit)
	} else {
		err = tx.ScanTable(table, visit)
	}
	op.end(start)
	return err
}

// Exec runs a DML statement inside tx.
func Exec(cat Catalog, tx Txn, stmt Stmt) (Result, error) {
	return exec(cat, tx, stmt, nil, nil)
}

// ExecPrepared binds params into cs's template and executes it, reusing
// the cached access-path choice. It is the hit-path counterpart of
// Parse+Exec.
func ExecPrepared(cat Catalog, tx Txn, cs *CachedStmt, params []rel.Value) (Result, error) {
	stmt, err := cs.bind(params)
	if err != nil {
		return Result{}, err
	}
	return exec(cat, tx, stmt, cs, nil)
}

func exec(cat Catalog, tx Txn, stmt Stmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	switch s := stmt.(type) {
	case InsertStmt:
		return execInsert(cat, tx, s, tr)
	case SelectStmt:
		return execSelect(cat, tx, s, hint, tr)
	case UpdateStmt:
		return execUpdate(cat, tx, s, hint, tr)
	case DeleteStmt:
		return execDelete(cat, tx, s, hint, tr)
	case ExplainStmt:
		return execExplain(cat, tx, s)
	case CreateTableStmt, CreateIndexStmt:
		return Result{}, fmt.Errorf("%w: DDL inside a transaction", ErrUnsupported)
	default:
		return Result{}, ErrUnsupported
	}
}

func execInsert(cat Catalog, tx Txn, s InsertStmt, tr *execTrace) (Result, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return Result{}, errStatReadOnly(s.Table)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	mop := tr.modifyOp()
	mstart := mop.begin()
	n := 0
	for _, vals := range s.Rows {
		if len(vals) != schema.NumCols() {
			return Result{Affected: n}, fmt.Errorf("sql: INSERT has %d values, table %q has %d columns",
				len(vals), s.Table, schema.NumCols())
		}
		row := make(rel.Row, len(vals))
		for i, v := range vals {
			// Int literals coerce to float columns.
			if v.Kind == rel.TInt64 && schema.Cols[i].Type == rel.TFloat64 {
				v = rel.Float(float64(v.I))
			}
			row[i] = v
		}
		if _, err := tx.Insert(s.Table, row); err != nil {
			return Result{Affected: n}, err
		}
		n++
	}
	mop.rows(int64(len(s.Rows)), int64(n))
	mop.end(mstart)
	return Result{Affected: n}, nil
}

func execSelect(cat Catalog, tx Txn, s SelectStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	if s.Join != nil {
		return execSelectJoin(cat, tx, s, hint, tr)
	}
	if schema, rows, ok := statTable(cat, s.Table); ok {
		return selectRows(cat, schema, rows, s, tr)
	}
	if tr != nil || len(s.GroupBy) > 0 || len(s.OrderBy) > 0 || hasAggs(s.Exprs) {
		// EXPLAIN ANALYZE routes the streaming fast path through the shaped
		// pipeline too: same rows, and every operator gets instrumented
		// while the hot untraced path keeps zero branches.
		return execSelectShaped(cat, tx, s, hint, tr)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	notePlan(tx, scanLabel(s.Table, p))
	// Projection.
	var proj []int
	var cols []string
	if s.Exprs == nil {
		for i, c := range schema.Cols {
			proj = append(proj, i)
			cols = append(cols, c.Name)
		}
	} else {
		for _, e := range s.Exprs {
			if e.Ref.Table != "" && e.Ref.Table != s.Table {
				return Result{}, fmt.Errorf("sql: unknown table %q in column reference", e.Ref.Table)
			}
			pos := schema.ColIndex(e.Ref.Col)
			if pos < 0 {
				return Result{}, fmt.Errorf("sql: unknown column %q", e.Ref.Col)
			}
			proj = append(proj, pos)
			cols = append(cols, e.Ref.Col)
		}
	}
	res := Result{Columns: cols}
	err = scanMatching(tx, schema, s.Table, p, nil, func(rid rel.RowID, row rel.Row) bool {
		out := make(rel.Row, len(proj))
		for i, pos := range proj {
			out[i] = row[pos]
		}
		res.Rows = append(res.Rows, out)
		return s.Limit == 0 || len(res.Rows) < s.Limit
	})
	return res, err
}

// selectRows runs a SELECT over pre-materialized rows (virtual stat
// tables): WHERE becomes pure residual filtering, then the shared shaping
// pipeline (aggregation, ORDER BY, LIMIT, projection) applies.
func selectRows(cat Catalog, schema *rel.Schema, rows []rel.Row, s SelectStmt, tr *execTrace) (Result, error) {
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	p, err := planWhere(schema, nil, s.Where)
	if err != nil {
		return Result{}, err
	}
	op := tr.scanOp()
	start := op.begin()
	var matched []rel.Row
	for _, row := range rows {
		if op != nil {
			op.rowsIn++
		}
		if matches(schema, row, p.residual) {
			if op != nil {
				op.rowsOut++
			}
			matched = append(matched, row)
		}
	}
	op.end(start)
	return shapeRows(singleSource(s.Table, schema), s, matched, false, countersOf(cat), tr)
}

func execUpdate(cat Catalog, tx Txn, s UpdateStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return Result{}, errStatReadOnly(s.Table)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	// Validate and coerce the SET clause.
	set := make(map[string]rel.Value, len(s.Set))
	for name, v := range s.Set {
		pos := schema.ColIndex(name)
		if pos < 0 {
			return Result{}, fmt.Errorf("sql: unknown column %q", name)
		}
		if v.Kind == rel.TInt64 && schema.Cols[pos].Type == rel.TFloat64 {
			v = rel.Float(float64(v.I))
		}
		if v.Kind != schema.Cols[pos].Type {
			return Result{}, fmt.Errorf("sql: column %q: literal type mismatch", name)
		}
		set[name] = v
	}
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	notePlan(tx, scanLabel(s.Table, p))
	// Collect targets first: updating while scanning the same index could
	// revisit moved entries.
	var rids []rel.RowID
	if err := scanMatching(tx, schema, s.Table, p, tr.scanOp(), func(rid rel.RowID, row rel.Row) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return Result{}, err
	}
	mop := tr.modifyOp()
	mstart := mop.begin()
	for _, rid := range rids {
		if err := tx.Update(s.Table, rid, set); err != nil {
			return Result{}, err
		}
	}
	mop.rows(int64(len(rids)), int64(len(rids)))
	mop.end(mstart)
	return Result{Affected: len(rids)}, nil
}

func execDelete(cat Catalog, tx Txn, s DeleteStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return Result{}, errStatReadOnly(s.Table)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	notePlan(tx, scanLabel(s.Table, p))
	var rids []rel.RowID
	if err := scanMatching(tx, schema, s.Table, p, tr.scanOp(), func(rid rel.RowID, row rel.Row) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return Result{}, err
	}
	mop := tr.modifyOp()
	mstart := mop.begin()
	for _, rid := range rids {
		if err := tx.Delete(s.Table, rid); err != nil {
			return Result{}, err
		}
	}
	mop.rows(int64(len(rids)), int64(len(rids)))
	mop.end(mstart)
	return Result{Affected: len(rids)}, nil
}
