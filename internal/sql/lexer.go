// Package sql implements PhoebeDB's SQL interface — the first item on the
// paper's future-work list ("develop SQL interface to establish PhoebeDB
// as a standalone server"). It covers the embedded-OLTP subset the kernel
// serves natively:
//
//	CREATE TABLE t (a INT, b STRING, c FLOAT)
//	CREATE [UNIQUE] INDEX i ON t (a, b)        -- online backfill on non-empty tables
//	INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', 3.5)
//	SELECT a, b FROM t WHERE a = 1 AND b = 'x' [LIMIT n]
//	SELECT * FROM t WHERE a > 1 AND c <= 9.5 AND b != 'x'
//	SELECT * FROM t WHERE a BETWEEN 3 AND 7    -- sugar for a >= 3 AND a <= 7
//	SELECT * FROM t [WHERE ...] [ORDER BY c [ASC|DESC], ...] [LIMIT n]
//	SELECT t.a, u.g FROM t JOIN u ON t.a = u.x [WHERE ...]
//	SELECT a, count(*), sum(c), min(b), max(b), avg(c)
//	       FROM t [WHERE ...] [GROUP BY a, ...] [ORDER BY ...] [LIMIT n]
//	UPDATE t SET c = 9.5 WHERE a = 1
//	DELETE FROM t WHERE a = 1
//
// Column references may be qualified (t.a) anywhere a column is legal;
// aggregates are count/sum/min/max/avg, with count(*) counting rows.
// WHERE is a conjunction of comparisons (=, !=, <, <=, >, >=, BETWEEN)
// between a column and a literal; the dialect has no NULL, so comparison
// semantics are total.
//
// The planner matches equality conjunctions in WHERE against declared
// index prefixes (choosing the longest usable prefix, unique indexes
// first); a range conjunct (<, <=, >, >=, BETWEEN) on the next index
// column after the equality prefix extends the access path to a B-Tree
// range scan with lo/hi bounds. Range conditions on one column intersect
// (a provably empty intersection short-circuits the scan); equality keeps
// the documented last-wins dedupe. Everything else falls back to a
// visibility-checked full scan with a residual filter — vectorized over
// PAX column strips when every filtered column is fixed-width. Joins are
// two-table inner equi-joins: index nested loop when a join column is a
// usable index prefix, hash join otherwise. ORDER BY skips its sort when
// the chosen index already delivers the order (a range column still
// delivers its own ascending order).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , = * . < > <= >= != ?
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit():
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string literal at %d", start)
				}
				if l.src[l.pos] == '\'' {
					// '' escapes a quote.
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<' || c == '>' || c == '!':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			} else if c == '!' {
				return nil, fmt.Errorf("sql: unexpected character %q at %d (did you mean !=?)", c, start)
			}
			l.tokens = append(l.tokens, token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case strings.ContainsRune("(),=*.?", rune(c)):
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) peekDigit() bool {
	return l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
