package sql

import "testing"

// FuzzParse feeds arbitrary source text to the SQL front end: the only
// contract is that Parse returns a statement or an error — it must not
// panic on any input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"CREATE TABLE users (id INT, name STRING, score FLOAT)",
		"CREATE UNIQUE INDEX users_pk ON users (id)",
		"INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', 3.5)",
		"SELECT a, b FROM t WHERE a = 1 AND b = 'x' LIMIT 10",
		"SELECT * FROM t",
		"UPDATE t SET a = 5, b = 'z' WHERE id = 3",
		"DELETE FROM t WHERE id = 3",
		"SELECT a FROM t WHERE x = 'it''s' AND y = -3.5",
		"", "(", "'", "SELECT", "INSERT INTO t VALUES (",
		"CREATE TABLE t (a blob)",
		"SELECT * FROM t LIMIT 99999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned neither a statement nor an error", src)
		}
	})
}
