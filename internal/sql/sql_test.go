package sql

import (
	"reflect"
	"strings"
	"testing"

	"phoebedb/internal/rel"
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x = 'it''s' AND y = -3.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", "=", "it's", "AND", "y", "=", "-3.5", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %q", texts)
	}
	if kinds[9] != tokString || kinds[13] != tokNumber {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("select ' unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("select @"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE users (id INT, name STRING, score FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(CreateTableStmt)
	if ct.Table != "users" || len(ct.Cols) != 3 {
		t.Fatalf("stmt = %+v", ct)
	}
	if ct.Cols[0].Type != rel.TInt64 || ct.Cols[1].Type != rel.TString || ct.Cols[2].Type != rel.TFloat64 {
		t.Fatalf("types = %+v", ct.Cols)
	}
	// Type synonyms.
	stmt, err = Parse("create table x (a bigint, b text, c double)")
	if err != nil {
		t.Fatal(err)
	}
	ct = stmt.(CreateTableStmt)
	if ct.Cols[0].Type != rel.TInt64 || ct.Cols[1].Type != rel.TString || ct.Cols[2].Type != rel.TFloat64 {
		t.Fatalf("synonym types = %+v", ct.Cols)
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse("CREATE UNIQUE INDEX users_pk ON users (id)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(CreateIndexStmt)
	if !ci.Unique || ci.Index != "users_pk" || ci.Table != "users" || len(ci.Cols) != 1 {
		t.Fatalf("stmt = %+v", ci)
	}
	stmt, _ = Parse("CREATE INDEX ab ON t (a, b)")
	ci = stmt.(CreateIndexStmt)
	if ci.Unique || len(ci.Cols) != 2 {
		t.Fatalf("stmt = %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 {
		t.Fatalf("stmt = %+v", ins)
	}
	if ins.Rows[0][0].I != 1 || ins.Rows[0][1].S != "a" || ins.Rows[0][2].F != 2.5 {
		t.Fatalf("row = %v", ins.Rows[0])
	}
	if ins.Rows[1][0].I != 2 {
		t.Fatalf("row = %v", ins.Rows[1])
	}
}

func TestParseSelect(t *testing.T) {
	stmt, err := Parse("SELECT a, b FROM t WHERE a = 1 AND b = 'x' LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(SelectStmt)
	if sel.Table != "t" || len(sel.Exprs) != 2 || len(sel.Where) != 2 || sel.Limit != 10 {
		t.Fatalf("stmt = %+v", sel)
	}
	if sel.Exprs[0].Ref.Col != "a" || sel.Exprs[0].Agg != AggNone {
		t.Fatalf("exprs = %+v", sel.Exprs)
	}
	stmt, _ = Parse("SELECT * FROM t")
	sel = stmt.(SelectStmt)
	if sel.Exprs != nil || sel.Where != nil || sel.Limit != 0 {
		t.Fatalf("star stmt = %+v", sel)
	}
}

func TestParseSelectShapes(t *testing.T) {
	stmt, err := Parse("SELECT o.id, count(*), sum(i.qty) FROM o JOIN i ON o.id = i.oid WHERE o.region = 'eu' GROUP BY o.id ORDER BY o.id DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(SelectStmt)
	if sel.Join == nil || sel.Join.Table != "i" || sel.Join.Left != (ColRef{Table: "o", Col: "id"}) || sel.Join.Right != (ColRef{Table: "i", Col: "oid"}) {
		t.Fatalf("join = %+v", sel.Join)
	}
	if len(sel.Exprs) != 3 || !sel.Exprs[1].Star || sel.Exprs[1].Agg != AggCount || sel.Exprs[2].Agg != AggSum || sel.Exprs[2].Ref != (ColRef{Table: "i", Col: "qty"}) {
		t.Fatalf("exprs = %+v", sel.Exprs)
	}
	if len(sel.Where) != 1 || sel.Where[0].Table != "o" || sel.Where[0].Col != "region" {
		t.Fatalf("where = %+v", sel.Where)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != (ColRef{Table: "o", Col: "id"}) {
		t.Fatalf("group by = %+v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.OrderBy[0].Ref.Col != "id" {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 5 {
		t.Fatalf("limit = %d", sel.Limit)
	}
	// ASC is accepted and is the default; min/max/avg parse as aggregates.
	stmt, err = Parse("SELECT min(a), max(a), avg(a) FROM t ORDER BY a ASC")
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(SelectStmt)
	if sel.Exprs[0].Agg != AggMin || sel.Exprs[1].Agg != AggMax || sel.Exprs[2].Agg != AggAvg || sel.OrderBy[0].Desc {
		t.Fatalf("stmt = %+v", sel)
	}
	// SUM(*) is rejected; a column named like an aggregate still works.
	if _, err := Parse("SELECT sum(*) FROM t"); err == nil {
		t.Fatal("sum(*) parsed")
	}
	stmt, err = Parse("SELECT count FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if sel := stmt.(SelectStmt); sel.Exprs[0].Agg != AggNone || sel.Exprs[0].Ref.Col != "count" {
		t.Fatalf("bare count column = %+v", sel.Exprs)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	stmt, err := Parse("UPDATE t SET a = 5, b = 'z' WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(UpdateStmt)
	if up.Table != "t" || len(up.Set) != 2 || up.Set["a"].I != 5 || len(up.Where) != 1 {
		t.Fatalf("stmt = %+v", up)
	}
	stmt, err = Parse("DELETE FROM t WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(DeleteStmt)
	if del.Table != "t" || len(del.Where) != 1 {
		t.Fatalf("stmt = %+v", del)
	}
}

func TestParseComparisons(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a >= 2 AND b < 'm' AND c != 1.5 AND d BETWEEN 3 AND 7")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(SelectStmt)
	want := []Cond{
		{Col: "a", Op: rel.CmpGe, Val: rel.Int(2)},
		{Col: "b", Op: rel.CmpLt, Val: rel.Str("m")},
		{Col: "c", Op: rel.CmpNe, Val: rel.Float(1.5)},
		{Col: "d", Op: rel.CmpGe, Val: rel.Int(3)},
		{Col: "d", Op: rel.CmpLe, Val: rel.Int(7)},
	}
	if len(sel.Where) != len(want) {
		t.Fatalf("Where = %+v", sel.Where)
	}
	for i, c := range want {
		if sel.Where[i] != c {
			t.Errorf("Where[%d] = %+v, want %+v", i, sel.Where[i], c)
		}
	}
	// BETWEEN's AND binds to the range; a further conjunct still parses.
	stmt, err = Parse("DELETE FROM t WHERE d BETWEEN 3 AND 7 AND e = 1")
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(DeleteStmt); len(del.Where) != 3 || del.Where[2].Col != "e" {
		t.Fatalf("Where = %+v", del.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE t",
		"SELECT FROM t",
		"CREATE TABLE t (a blob)",
		"INSERT INTO t VALUES 1, 2",
		"SELECT * FROM t WHERE a ! 1",            // bare ! is not an operator
		"SELECT * FROM t WHERE a BETWEEN 1",      // BETWEEN needs AND hi
		"SELECT * FROM t WHERE a BETWEEN 1 OR 2", // ... spelled AND
		"SELECT * FROM t WHERE a >",              // operator without literal
		"UPDATE t SET",
		"SELECT * FROM t extra",
		"SELECT * FROM t LIMIT 'x'",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("parse accepted %q", q)
		}
	}
}

// --- Planner ----------------------------------------------------------------

func planSchema() *rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "a", Type: rel.TInt64},
		rel.Column{Name: "b", Type: rel.TInt64},
		rel.Column{Name: "c", Type: rel.TString},
	)
}

func TestPlannerPicksLongestPrefix(t *testing.T) {
	schema := planSchema()
	indexes := []IndexMeta{
		{Name: "ix_a", Cols: []int{0}, Unique: false},
		{Name: "ix_ab", Cols: []int{0, 1}, Unique: true},
	}
	p, err := planWhere(schema, indexes, []Cond{
		{Col: "a", Val: rel.Int(1)},
		{Col: "b", Val: rel.Int(2)},
		{Col: "c", Val: rel.Str("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.index != "ix_ab" || len(p.prefixVals) != 2 {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.residual) != 1 || p.residual[0].Col != "c" {
		t.Fatalf("residual = %+v", p.residual)
	}
}

func TestPlannerPrefixOnly(t *testing.T) {
	schema := planSchema()
	indexes := []IndexMeta{{Name: "ix_ab", Cols: []int{0, 1}, Unique: true}}
	// Only b is constrained: the index prefix (a) is not covered -> scan.
	p, err := planWhere(schema, indexes, []Cond{{Col: "b", Val: rel.Int(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if p.index != "" || len(p.residual) != 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlannerNoWhere(t *testing.T) {
	p, err := planWhere(planSchema(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.index != "" || len(p.residual) != 0 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlannerErrors(t *testing.T) {
	if _, err := planWhere(planSchema(), nil, []Cond{{Col: "zzz", Val: rel.Int(1)}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := planWhere(planSchema(), nil, []Cond{{Col: "a", Val: rel.Str("x")}}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestPlannerIntToFloatCoercion(t *testing.T) {
	schema := rel.NewSchema(rel.Column{Name: "f", Type: rel.TFloat64})
	p, err := planWhere(schema, nil, []Cond{{Col: "f", Val: rel.Int(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if p.residual[0].Val.Kind != rel.TFloat64 || p.residual[0].Val.F != 3 {
		t.Fatalf("coerced = %+v", p.residual[0].Val)
	}
}

// --- Executor against a fake txn ---------------------------------------------

type fakeCat struct {
	schema  *rel.Schema
	indexes []IndexMeta
}

func (c fakeCat) CreateTable(string, *rel.Schema) error            { return nil }
func (c fakeCat) CreateIndex(string, string, []string, bool) error { return nil }
func (c fakeCat) TableSchema(string) (*rel.Schema, error)          { return c.schema, nil }
func (c fakeCat) IndexInfo(string) ([]IndexMeta, error)            { return c.indexes, nil }

type fakeTxn struct {
	rows    map[rel.RowID]rel.Row
	nextRID rel.RowID
	scans   []string // access-path audit trail
}

func (f *fakeTxn) Insert(table string, row rel.Row) (rel.RowID, error) {
	f.nextRID++
	f.rows[f.nextRID] = row.Clone()
	return f.nextRID, nil
}

func (f *fakeTxn) ScanIndex(table, index string, vals []rel.Value, fn func(rel.RowID, rel.Row) bool) error {
	f.scans = append(f.scans, "index:"+index)
	for rid, row := range f.rows {
		ok := true
		for i, v := range vals {
			if !row[i].Equal(v) { // fake: index cols == leading cols
				ok = false
			}
		}
		if ok && !fn(rid, row) {
			return nil
		}
	}
	return nil
}

func (f *fakeTxn) ScanTable(table string, fn func(rel.RowID, rel.Row) bool) error {
	f.scans = append(f.scans, "table")
	for rid, row := range f.rows {
		if !fn(rid, row) {
			return nil
		}
	}
	return nil
}

func (f *fakeTxn) Update(table string, rid rel.RowID, set map[string]rel.Value) error {
	row := f.rows[rid]
	row[1] = set["b"]
	return nil
}

func (f *fakeTxn) Delete(table string, rid rel.RowID) error {
	delete(f.rows, rid)
	return nil
}

func TestExecUsesIndexPath(t *testing.T) {
	cat := fakeCat{
		schema:  planSchema(),
		indexes: []IndexMeta{{Name: "ix_a", Cols: []int{0}, Unique: true}},
	}
	tx := &fakeTxn{rows: map[rel.RowID]rel.Row{}}
	stmt, _ := Parse("INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y')")
	res, err := Exec(cat, tx, stmt)
	if err != nil || res.Affected != 2 {
		t.Fatalf("insert = (%+v, %v)", res, err)
	}

	stmt, _ = Parse("SELECT b FROM t WHERE a = 1")
	res, err = Exec(cat, tx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 || res.Columns[0] != "b" {
		t.Fatalf("select = %+v", res)
	}
	if len(tx.scans) == 0 || !strings.HasPrefix(tx.scans[len(tx.scans)-1], "index:") {
		t.Fatalf("did not use index path: %v", tx.scans)
	}

	// No usable index -> table scan.
	stmt, _ = Parse("SELECT * FROM t WHERE c = 'y'")
	res, err = Exec(cat, tx, stmt)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("scan select = (%+v, %v)", res, err)
	}
	if tx.scans[len(tx.scans)-1] != "table" {
		t.Fatalf("expected table scan: %v", tx.scans)
	}
}

func TestExecErrors(t *testing.T) {
	cat := fakeCat{schema: planSchema()}
	tx := &fakeTxn{rows: map[rel.RowID]rel.Row{}}
	stmt, _ := Parse("INSERT INTO t VALUES (1, 2)")
	if _, err := Exec(cat, tx, stmt); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	stmt, _ = Parse("SELECT zzz FROM t")
	if _, err := Exec(cat, tx, stmt); err == nil {
		t.Fatal("unknown projection column accepted")
	}
	stmt, _ = Parse("UPDATE t SET zzz = 1")
	if _, err := Exec(cat, tx, stmt); err == nil {
		t.Fatal("unknown SET column accepted")
	}
	ddl, _ := Parse("CREATE TABLE x (a int)")
	if _, err := Exec(cat, tx, ddl); err == nil {
		t.Fatal("DDL inside txn accepted")
	}
	if !IsDDL(ddl) {
		t.Fatal("IsDDL wrong")
	}
	if _, err := ExecDDL(cat, stmt); err == nil {
		t.Fatal("ExecDDL accepted DML")
	}
}
