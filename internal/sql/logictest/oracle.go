package logictest

import (
	"fmt"
	"strings"

	"phoebedb/internal/sql"
)

// skippable reports statements the differential harness must not feed to
// both engines: stat-table reads and EXPLAIN output exist only in the
// real engine, and UPDATEs touching unique-indexed columns are
// deliberately unchecked by the engine (documented), so the two sides
// may legitimately diverge.
func (r *Reference) skippable(stmt sql.Stmt) bool {
	statTable := func(name string) bool { return strings.HasPrefix(name, "phoebe_stat") }
	switch s := stmt.(type) {
	case sql.ExplainStmt:
		return true
	case sql.SelectStmt:
		if statTable(s.Table) {
			return true
		}
		if s.Join != nil && statTable(s.Join.Table) {
			return true
		}
	case sql.InsertStmt:
		return statTable(s.Table)
	case sql.DeleteStmt:
		return statTable(s.Table)
	case sql.CreateTableStmt:
		return statTable(s.Table)
	case sql.CreateIndexStmt:
		return statTable(s.Table)
	case sql.UpdateStmt:
		if statTable(s.Table) {
			return true
		}
		t, ok := r.tables[s.Table]
		if !ok {
			return false
		}
		for name := range s.Set {
			pos := t.schema.ColIndex(name)
			for _, u := range t.uniques {
				for _, c := range u {
					if c == pos {
						return true
					}
				}
			}
		}
	}
	return false
}

// Diff executes one statement on the engine and the reference and
// reports any observable divergence. A nil return means the statement
// was skipped, both sides errored, or both sides agreed.
//
// Comparison rules:
//   - error status must match (messages are not compared);
//   - writes must report the same affected-row count;
//   - SELECT results compare as multisets of rendered rows;
//   - with LIMIT n the engine may return any n reference rows, so the
//     engine rows must number min(n, |reference rows without LIMIT|) and
//     be contained in that unlimited reference result;
//   - with ORDER BY, engine rows must be sorted on every key that maps
//     to a unique projected column (ties may order differently).
func Diff(src string, engine Target, ref *Reference) error {
	stmt, perr := sql.Parse(src)
	if perr == nil && ref.skippable(stmt) {
		return nil
	}
	eres, eerr := engine(src)
	rres, rerr := ref.Exec(src)
	if (eerr == nil) != (rerr == nil) {
		return fmt.Errorf("error status diverged on %q:\n  engine: %v\n  reference: %v", src, eerr, rerr)
	}
	if eerr != nil {
		return nil
	}
	s, ok := stmt.(sql.SelectStmt)
	if !ok {
		if eres.Affected != rres.Affected {
			return fmt.Errorf("affected diverged on %q: engine %d, reference %d", src, eres.Affected, rres.Affected)
		}
		return nil
	}
	if s.Limit > 0 {
		noLimit := s
		noLimit.Limit = 0
		full, err := ref.ExecStmt(noLimit)
		if err != nil {
			return fmt.Errorf("reference failed without LIMIT on %q: %v", src, err)
		}
		want := s.Limit
		if len(full.Rows) < want {
			want = len(full.Rows)
		}
		if len(eres.Rows) != want {
			return fmt.Errorf("row count diverged on %q: engine %d, want %d (reference has %d)",
				src, len(eres.Rows), want, len(full.Rows))
		}
		if !ContainsRowSet(full.Rows, eres.Rows) {
			return fmt.Errorf("rows diverged on %q:\n  engine:\n    %s\n  reference (no LIMIT):\n    %s",
				src, strings.Join(RenderRows(eres.Rows, true), "\n    "),
				strings.Join(RenderRows(full.Rows, true), "\n    "))
		}
	} else if !SameRowSet(eres.Rows, rres.Rows) {
		return fmt.Errorf("rows diverged on %q:\n  engine:\n    %s\n  reference:\n    %s",
			src, strings.Join(RenderRows(eres.Rows, true), "\n    "),
			strings.Join(RenderRows(rres.Rows, true), "\n    "))
	}
	if err := checkSorted(s, eres); err != nil {
		return fmt.Errorf("%v on %q", err, src)
	}
	return nil
}

// checkSorted verifies the engine's rows respect ORDER BY on every key
// whose column name appears exactly once in the projection.
func checkSorted(s sql.SelectStmt, res sql.Result) error {
	type key struct {
		pos  int
		desc bool
	}
	var keys []key
	for _, k := range s.OrderBy {
		pos := -1
		dup := false
		for i, name := range res.Columns {
			if name == k.Ref.Col {
				if pos >= 0 {
					dup = true
				}
				pos = i
			}
		}
		if pos < 0 || dup {
			// A lower-priority key is only constrained within ties of the
			// keys above it; once one key is unverifiable, so is the rest.
			break
		}
		keys = append(keys, key{pos, k.Desc})
	}
	for i := 1; i < len(res.Rows); i++ {
		for _, k := range keys {
			c := refCompare(res.Rows[i-1][k.pos], res.Rows[i][k.pos])
			if k.desc {
				c = -c
			}
			if c > 0 {
				return fmt.Errorf("rows %d and %d violate ORDER BY", i-1, i)
			}
			if c < 0 {
				break // strictly ordered on this key; later keys unconstrained
			}
		}
	}
	return nil
}
