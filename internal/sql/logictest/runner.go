package logictest

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"phoebedb/internal/rel"
	"phoebedb/internal/sql"
)

// Target executes one SQL statement. Both phoebedb.DB.ExecSQL and
// Reference.Exec satisfy it.
type Target func(stmt string) (sql.Result, error)

// RenderValue prints a value the way the logic tests and the oracle
// compare them. Floats use the shortest round-tripping form, so results
// only compare equal when bit-equal.
func RenderValue(v rel.Value) string {
	switch v.Kind {
	case rel.TInt64:
		return strconv.FormatInt(v.I, 10)
	case rel.TFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// RenderRow joins a row's values with single spaces — the golden-file
// row format. Script authors must avoid spaces inside string values.
func RenderRow(row rel.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = RenderValue(v)
	}
	return strings.Join(parts, " ")
}

// RenderRows renders every row; when rowsort is set the rendered lines
// are sorted, turning the comparison order-insensitive.
func RenderRows(rows []rel.Row, rowsort bool) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = RenderRow(r)
	}
	if rowsort {
		sort.Strings(out)
	}
	return out
}

// SameRowSet reports whether two results hold the same multiset of rows.
func SameRowSet(a, b []rel.Row) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := RenderRows(a, true), RenderRows(b, true)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// ContainsRowSet reports whether sub's rows are a sub-multiset of super's.
func ContainsRowSet(super, sub []rel.Row) bool {
	have := map[string]int{}
	for _, r := range super {
		have[RenderRow(r)]++
	}
	for _, r := range sub {
		k := RenderRow(r)
		if have[k] == 0 {
			return false
		}
		have[k]--
	}
	return true
}

// sltCase is one directive block of a script.
type sltCase struct {
	line    int
	kind    string // "ok", "error", "query"
	errSub  string // for "error": required substring of the engine error
	rowsort bool   // for "query"
	stmt    string
	want    []string // for "query": golden rows, one rendered row per line
}

// parseScript reads a .slt file into cases. Grammar:
//
//	statement ok
//	<sql, one or more lines, ended by blank line>
//
//	statement error <substring>
//	<sql>
//
//	query rowsort|ordered
//	<sql>
//	----
//	<expected rows, one per line, values space-separated>
//
// '#' starts a comment line. Blank lines separate blocks.
func parseScript(path string) ([]sltCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	var cases []sltCase
	i := 0
	next := func() (string, bool) {
		if i >= len(lines) {
			return "", false
		}
		l := lines[i]
		i++
		return l, true
	}
	for {
		l, ok := next()
		if !ok {
			break
		}
		trimmed := strings.TrimSpace(l)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		c := sltCase{line: i}
		fields := strings.Fields(trimmed)
		switch {
		case fields[0] == "statement" && len(fields) >= 2 && fields[1] == "ok":
			c.kind = "ok"
		case fields[0] == "statement" && len(fields) >= 2 && fields[1] == "error":
			c.kind = "error"
			c.errSub = strings.TrimSpace(strings.TrimPrefix(trimmed, "statement error"))
		case fields[0] == "query" && len(fields) >= 2 && (fields[1] == "rowsort" || fields[1] == "ordered"):
			c.kind = "query"
			c.rowsort = fields[1] == "rowsort"
		default:
			return nil, fmt.Errorf("%s:%d: bad directive %q", path, i, trimmed)
		}
		// Statement text: lines until blank (statement) or "----" (query).
		var stmt []string
		for {
			l, ok := next()
			if !ok || strings.TrimSpace(l) == "" {
				if c.kind == "query" {
					return nil, fmt.Errorf("%s:%d: query without ----", path, c.line)
				}
				break
			}
			if c.kind == "query" && strings.TrimSpace(l) == "----" {
				break
			}
			stmt = append(stmt, strings.TrimSpace(l))
		}
		c.stmt = strings.Join(stmt, " ")
		if c.stmt == "" {
			return nil, fmt.Errorf("%s:%d: empty statement", path, c.line)
		}
		if c.kind == "query" {
			for {
				l, ok := next()
				if !ok || strings.TrimSpace(l) == "" {
					break
				}
				c.want = append(c.want, strings.TrimSpace(l))
			}
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// reporter is the subset of *testing.T the runner needs.
type reporter interface {
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunScript executes a parsed .slt script against the engine AND a fresh
// reference engine, checking both against the golden expectations. Any
// divergence — engine vs golden, reference vs golden, or error-status
// disagreement — fails the test.
func RunScript(t reporter, path string, engine Target) {
	cases, err := parseScript(path)
	if err != nil {
		t.Fatalf("parse script: %v", err)
	}
	ref := NewReference()
	for _, c := range cases {
		eres, eerr := engine(c.stmt)
		// Engine-only statements (stat-table reads, EXPLAIN) have no
		// reference semantics: the golden rows are their sole oracle.
		refRuns := true
		if stmt, perr := sql.Parse(c.stmt); perr == nil && ref.skippable(stmt) {
			refRuns = false
		}
		var rres sql.Result
		var rerr error
		if refRuns {
			rres, rerr = ref.Exec(c.stmt)
		}
		where := fmt.Sprintf("%s:%d: %s", path, c.line, c.stmt)
		switch c.kind {
		case "ok":
			if eerr != nil {
				t.Fatalf("%s: engine error: %v", where, eerr)
			}
			if refRuns && rerr != nil {
				t.Fatalf("%s: reference error: %v", where, rerr)
			}
		case "error":
			if eerr == nil {
				t.Fatalf("%s: engine succeeded, want error containing %q", where, c.errSub)
			}
			if c.errSub != "" && !strings.Contains(eerr.Error(), c.errSub) {
				t.Errorf("%s: engine error %q does not contain %q", where, eerr, c.errSub)
			}
			if refRuns && rerr == nil {
				t.Fatalf("%s: reference succeeded, want error", where)
			}
		case "query":
			if eerr != nil {
				t.Fatalf("%s: engine error: %v", where, eerr)
			}
			got := RenderRows(eres.Rows, c.rowsort)
			if !sameLines(got, c.want) {
				t.Errorf("%s:\nengine rows:\n  %s\nwant:\n  %s",
					where, strings.Join(got, "\n  "), strings.Join(c.want, "\n  "))
			}
			if !refRuns {
				break
			}
			if rerr != nil {
				t.Fatalf("%s: reference error: %v", where, rerr)
			}
			refGot := RenderRows(rres.Rows, c.rowsort)
			if !sameLines(refGot, c.want) {
				t.Errorf("%s:\nreference rows:\n  %s\nwant:\n  %s",
					where, strings.Join(refGot, "\n  "), strings.Join(c.want, "\n  "))
			}
		}
	}
}

// sameLines compares rendered rows to golden lines. parseScript stores
// golden lines whitespace-trimmed, so the rendered side is trimmed too —
// this lets EXPLAIN's indented plan rows ("  -> ...") appear in goldens
// without the script format having to preserve leading spaces.
func sameLines(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if strings.TrimSpace(got[i]) != want[i] {
			return false
		}
	}
	return true
}
