package logictest

import (
	"sync"
	"testing"

	phoebedb "phoebedb"
)

// fuzzSeeds cover every grammar production; the checked-in corpus under
// testdata/fuzz/FuzzSQLVsReference mirrors them for `go test -fuzz` runs.
var fuzzSeeds = []string{
	"CREATE TABLE ft (a INT, s STRING, f FLOAT)",
	"CREATE TABLE fu (x INT, g STRING)",
	"INSERT INTO ft VALUES (1, 'a', 1.5), (2, 'b', 2), (1, 'a', 0.25)",
	"INSERT INTO fu VALUES (1, 'a'), (3, 'c')",
	"CREATE INDEX ft_a ON ft (a)",
	"CREATE UNIQUE INDEX fu_x ON fu (x)",
	"SELECT * FROM ft WHERE a = 1",
	"SELECT a, f FROM ft WHERE a = 1 AND f = 1.5",
	"SELECT s FROM ft ORDER BY f DESC, a LIMIT 2",
	"SELECT ft.s, fu.g FROM ft JOIN fu ON ft.a = fu.x WHERE g = 'a'",
	"SELECT a, count(*), sum(f), min(s), max(f), avg(a) FROM ft GROUP BY a ORDER BY a",
	"SELECT count(*) FROM ft WHERE a = 99",
	"UPDATE ft SET f = 9.75, s = 'z' WHERE a = 2",
	"DELETE FROM fu WHERE x = 3",
	"SELECT g FROM fu GROUP BY g",
	"INSERT INTO fu VALUES (1, 'dup')",
	"SELECT nope FROM ft",
	"SELECT sum(s) FROM ft",
	"SELECT a FROM ft WHERE a > 1 AND a <= 2",
	"SELECT a, f FROM ft WHERE f >= 0.25 AND f < 2 AND a != 2",
	"SELECT x FROM fu WHERE x BETWEEN 1 AND 3",
	"SELECT count(*), sum(f), min(f), max(a) FROM ft WHERE a >= 1 AND f < 9",
	"SELECT s FROM ft WHERE s > 'a' ORDER BY s LIMIT 2",
	"SELECT a FROM ft WHERE a > 2 AND a < 1",
	"UPDATE ft SET f = 0.5 WHERE f BETWEEN 1 AND 3",
	"DELETE FROM ft WHERE a != 1 AND a >= 2",
}

// FuzzSQLVsReference feeds arbitrary statements to the engine and the
// reference in lockstep. One database and one reference live per fuzz
// process; state accumulates across inputs, which is exactly the point —
// later statements read whatever earlier ones built.
func FuzzSQLVsReference(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	db, err := phoebedb.Open(phoebedb.Options{Dir: f.TempDir(), Workers: 2, SlotsPerWorker: 4})
	if err != nil {
		f.Fatalf("open: %v", err)
	}
	ref := NewReference()
	var mu sync.Mutex
	f.Fuzz(func(t *testing.T, stmt string) {
		if len(stmt) > 4096 {
			t.Skip()
		}
		mu.Lock()
		defer mu.Unlock()
		if err := Diff(stmt, db.ExecSQL, ref); err != nil {
			t.Fatal(err)
		}
	})
}
