// Package logictest holds the SQL layer's correctness harnesses: a golden
// logic-test runner executing testdata/*.slt scripts, and a differential
// oracle that runs the same statements against PhoebeDB and a naive
// in-memory reference engine, diffing the row sets.
//
// The reference engine shares only the parser with the real SQL layer.
// Execution — visibility, planning, index maintenance, joins, sorting,
// aggregation — is reimplemented here in the most obvious O(n²) way, so a
// bug would have to be made twice, in two very different shapes, to go
// unnoticed.
package logictest

import (
	"fmt"
	"sort"
	"strings"

	"phoebedb/internal/rel"
	"phoebedb/internal/sql"
)

// Reference is the naive engine. Not safe for concurrent use.
type Reference struct {
	tables map[string]*refTable
}

type refTable struct {
	schema  *rel.Schema
	rows    []rel.Row
	uniques [][]int         // column sets of unique indexes
	indexes map[string]bool // names, to reject duplicates
}

// NewReference returns an empty reference engine.
func NewReference() *Reference {
	return &Reference{tables: map[string]*refTable{}}
}

// Exec parses and executes one statement. Error messages need not match
// the real engine's — the harness only compares error presence.
func (r *Reference) Exec(src string) (sql.Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return sql.Result{}, err
	}
	return r.ExecStmt(stmt)
}

// ExecStmt executes an already-parsed statement. The oracle uses this to
// re-run a SELECT with its LIMIT stripped.
func (r *Reference) ExecStmt(stmt sql.Stmt) (sql.Result, error) {
	switch s := stmt.(type) {
	case sql.CreateTableStmt:
		return r.createTable(s)
	case sql.CreateIndexStmt:
		return r.createIndex(s)
	case sql.InsertStmt:
		return r.insert(s)
	case sql.SelectStmt:
		return r.sel(s)
	case sql.UpdateStmt:
		return r.update(s)
	case sql.DeleteStmt:
		return r.del(s)
	case sql.ExplainStmt:
		// EXPLAIN renders the real engine's planner decisions; the
		// reference engine has no planner, so plan output is out of its
		// scope by design — the golden file is the sole oracle for it.
		return sql.Result{}, fmt.Errorf("reference: EXPLAIN is out of scope")
	}
	return sql.Result{}, fmt.Errorf("reference: unsupported statement")
}

func (r *Reference) createTable(s sql.CreateTableStmt) (sql.Result, error) {
	if _, ok := r.tables[s.Table]; ok {
		return sql.Result{}, fmt.Errorf("reference: table %q exists", s.Table)
	}
	if len(s.Cols) == 0 {
		return sql.Result{}, fmt.Errorf("reference: no columns")
	}
	r.tables[s.Table] = &refTable{schema: rel.NewSchema(s.Cols...), indexes: map[string]bool{}}
	return sql.Result{}, nil
}

func (r *Reference) createIndex(s sql.CreateIndexStmt) (sql.Result, error) {
	t, ok := r.tables[s.Table]
	if !ok {
		return sql.Result{}, fmt.Errorf("reference: unknown table %q", s.Table)
	}
	if t.indexes[s.Index] {
		return sql.Result{}, fmt.Errorf("reference: index %q exists", s.Index)
	}
	cols := make([]int, len(s.Cols))
	for i, cn := range s.Cols {
		pos := t.schema.ColIndex(cn)
		if pos < 0 {
			return sql.Result{}, fmt.Errorf("reference: unknown column %q", cn)
		}
		cols[i] = pos
	}
	if s.Unique {
		// Mirror the online backfill's uniqueness verification: existing
		// rows must not already violate the index.
		seen := map[string]bool{}
		for _, row := range t.rows {
			k := renderKey(row, cols)
			if seen[k] {
				return sql.Result{}, fmt.Errorf("reference: duplicate key for index %q", s.Index)
			}
			seen[k] = true
		}
		t.uniques = append(t.uniques, cols)
	}
	t.indexes[s.Index] = true
	return sql.Result{}, nil
}

// coerce applies the engine's literal typing rule: ints widen to float
// columns, everything else must match exactly.
func coerce(v rel.Value, ct rel.Type) (rel.Value, error) {
	if v.Kind == ct {
		return v, nil
	}
	if v.Kind == rel.TInt64 && ct == rel.TFloat64 {
		return rel.Float(float64(v.I)), nil
	}
	return rel.Value{}, fmt.Errorf("reference: literal type mismatch")
}

// renderKey gives a comparison key over selected columns.
func renderKey(row rel.Row, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		sb.WriteString(RenderValue(row[c]))
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func (r *Reference) insert(s sql.InsertStmt) (sql.Result, error) {
	t, ok := r.tables[s.Table]
	if !ok {
		return sql.Result{}, fmt.Errorf("reference: unknown table %q", s.Table)
	}
	// Stage first: the real engine runs INSERT in one transaction, so a
	// mid-statement failure keeps nothing.
	staged := make([]rel.Row, 0, len(s.Rows))
	for _, vals := range s.Rows {
		if len(vals) != t.schema.NumCols() {
			return sql.Result{}, fmt.Errorf("reference: arity mismatch")
		}
		row := make(rel.Row, len(vals))
		for i, v := range vals {
			cv, err := coerce(v, t.schema.Cols[i].Type)
			if err != nil {
				return sql.Result{}, err
			}
			row[i] = cv
		}
		for _, u := range t.uniques {
			k := renderKey(row, u)
			for _, other := range append(t.rows, staged...) {
				if renderKey(other, u) == k {
					return sql.Result{}, fmt.Errorf("reference: duplicate key")
				}
			}
		}
		staged = append(staged, row)
	}
	t.rows = append(t.rows, staged...)
	return sql.Result{Affected: len(staged)}, nil
}

// refSrc is the (possibly joined) row shape a SELECT operates on.
type refSrc struct {
	tables  []string
	schemas []*rel.Schema
	offsets []int
}

func (rs *refSrc) width() int {
	last := len(rs.schemas) - 1
	return rs.offsets[last] + rs.schemas[last].NumCols()
}

func (rs *refSrc) resolve(ref sql.ColRef) (int, error) {
	if ref.Table != "" {
		for i, t := range rs.tables {
			if t == ref.Table {
				if pos := rs.schemas[i].ColIndex(ref.Col); pos >= 0 {
					return rs.offsets[i] + pos, nil
				}
				return 0, fmt.Errorf("reference: unknown column %q.%q", ref.Table, ref.Col)
			}
		}
		return 0, fmt.Errorf("reference: unknown table %q", ref.Table)
	}
	found := -1
	for i := range rs.schemas {
		if pos := rs.schemas[i].ColIndex(ref.Col); pos >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("reference: ambiguous column %q", ref.Col)
			}
			found = rs.offsets[i] + pos
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("reference: unknown column %q", ref.Col)
	}
	return found, nil
}

func (rs *refSrc) colType(pos int) rel.Type {
	for i := len(rs.offsets) - 1; i >= 0; i-- {
		if pos >= rs.offsets[i] {
			return rs.schemas[i].Cols[pos-rs.offsets[i]].Type
		}
	}
	return rel.TInt64
}

type refCond struct {
	pos int
	op  rel.CmpOp
	val rel.Value
}

// refConds is a WHERE conjunction normalized the way the engine documents:
// repeated equality conditions on a column dedupe with the last winning;
// comparison conditions (<, <=, >, >=, !=) all apply conjunctively, which
// is exactly the planner's per-column range intersection.
type refConds struct {
	eq    map[int]rel.Value
	other []refCond
}

// resolveConds maps WHERE to combined positions with coerced literals.
func (rs *refSrc) resolveConds(where []sql.Cond) (refConds, error) {
	out := refConds{eq: map[int]rel.Value{}}
	for _, c := range where {
		pos, err := rs.resolve(sql.ColRef{Table: c.Table, Col: c.Col})
		if err != nil {
			return refConds{}, err
		}
		v, err := coerce(c.Val, rs.colType(pos))
		if err != nil {
			return refConds{}, err
		}
		if c.Op == rel.CmpEq {
			out.eq[pos] = v
		} else {
			out.other = append(out.other, refCond{pos: pos, op: c.Op, val: v})
		}
	}
	return out, nil
}

func condsMatch(row rel.Row, conds refConds) bool {
	for pos, v := range conds.eq {
		if !row[pos].Equal(v) {
			return false
		}
	}
	for _, c := range conds.other {
		if !c.op.Accepts(refCompare(row[c.pos], c.val)) {
			return false
		}
	}
	return true
}

func refCompare(a, b rel.Value) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	switch a.Kind {
	case rel.TInt64:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	case rel.TFloat64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
	case rel.TString:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

func (r *Reference) sel(s sql.SelectStmt) (sql.Result, error) {
	t, ok := r.tables[s.Table]
	if !ok {
		return sql.Result{}, fmt.Errorf("reference: unknown table %q", s.Table)
	}
	src := &refSrc{tables: []string{s.Table}, schemas: []*rel.Schema{t.schema}, offsets: []int{0}}

	// Gather the combined rows: single table, or the filtered cross
	// product for a join (quadratic on purpose — obviously correct).
	var rows []rel.Row
	if s.Join != nil {
		if s.Join.Table == s.Table {
			return sql.Result{}, fmt.Errorf("reference: self-join unsupported")
		}
		it, ok := r.tables[s.Join.Table]
		if !ok {
			return sql.Result{}, fmt.Errorf("reference: unknown table %q", s.Join.Table)
		}
		src.tables = append(src.tables, s.Join.Table)
		src.schemas = append(src.schemas, it.schema)
		src.offsets = append(src.offsets, t.schema.NumCols())
		lpos, err := src.resolve(s.Join.Left)
		if err != nil {
			return sql.Result{}, err
		}
		rpos, err := src.resolve(s.Join.Right)
		if err != nil {
			return sql.Result{}, err
		}
		split := src.offsets[1]
		if (lpos < split) == (rpos < split) {
			return sql.Result{}, fmt.Errorf("reference: join condition must reference both tables")
		}
		if src.colType(lpos) != src.colType(rpos) {
			return sql.Result{}, fmt.Errorf("reference: join columns have different types")
		}
		for _, orow := range t.rows {
			for _, irow := range it.rows {
				combined := make(rel.Row, src.width())
				copy(combined, orow)
				copy(combined[split:], irow)
				if combined[lpos].Equal(combined[rpos]) {
					rows = append(rows, combined)
				}
			}
		}
	} else {
		for _, row := range t.rows {
			rows = append(rows, row.Clone())
		}
	}

	conds, err := src.resolveConds(s.Where)
	if err != nil {
		return sql.Result{}, err
	}
	kept := rows[:0]
	for _, row := range rows {
		if condsMatch(row, conds) {
			kept = append(kept, row)
		}
	}
	rows = kept

	hasAgg := false
	for _, e := range s.Exprs {
		if e.Agg != sql.AggNone {
			hasAgg = true
		}
	}
	if hasAgg || len(s.GroupBy) > 0 {
		return r.aggregate(src, s, rows)
	}

	// Plain projection list.
	type col struct {
		name string
		pos  int
	}
	var cols []col
	if s.Exprs == nil {
		for i := range src.schemas {
			for j, c := range src.schemas[i].Cols {
				cols = append(cols, col{c.Name, src.offsets[i] + j})
			}
		}
	} else {
		for _, e := range s.Exprs {
			pos, err := src.resolve(e.Ref)
			if err != nil {
				return sql.Result{}, err
			}
			cols = append(cols, col{e.Ref.Col, pos})
		}
	}
	if len(s.OrderBy) > 0 {
		keys := make([]int, len(s.OrderBy))
		for i, k := range s.OrderBy {
			pos, err := src.resolve(k.Ref)
			if err != nil {
				return sql.Result{}, err
			}
			keys[i] = pos
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, pos := range keys {
				if c := refCompare(rows[a][pos], rows[b][pos]); c != 0 {
					return (c < 0) != s.OrderBy[i].Desc
				}
			}
			return false
		})
	}
	if s.Limit > 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	res := sql.Result{}
	for _, c := range cols {
		res.Columns = append(res.Columns, c.name)
	}
	for _, row := range rows {
		out := make(rel.Row, len(cols))
		for i, c := range cols {
			out[i] = row[c.pos]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (r *Reference) aggregate(src *refSrc, s sql.SelectStmt, rows []rel.Row) (sql.Result, error) {
	if s.Exprs == nil {
		return sql.Result{}, fmt.Errorf("reference: SELECT * with GROUP BY")
	}
	groupPos := make([]int, len(s.GroupBy))
	for i, ref := range s.GroupBy {
		pos, err := src.resolve(ref)
		if err != nil {
			return sql.Result{}, err
		}
		groupPos[i] = pos
	}
	inGroup := func(pos int) bool {
		for _, gp := range groupPos {
			if gp == pos {
				return true
			}
		}
		return false
	}
	// Validate the select list up front (the engine does too).
	type item struct {
		agg  sql.AggFunc
		star bool
		pos  int
		name string
	}
	items := make([]item, 0, len(s.Exprs))
	for _, e := range s.Exprs {
		it := item{agg: e.Agg, star: e.Star}
		if e.Star {
			it.name = "count(*)"
			items = append(items, it)
			continue
		}
		pos, err := src.resolve(e.Ref)
		if err != nil {
			return sql.Result{}, err
		}
		it.pos = pos
		label := e.Ref.Col
		if e.Ref.Table != "" {
			label = e.Ref.Table + "." + e.Ref.Col
		}
		if e.Agg == sql.AggNone {
			if !inGroup(pos) {
				return sql.Result{}, fmt.Errorf("reference: %q not grouped", e.Ref.Col)
			}
			it.name = e.Ref.Col
		} else {
			if (e.Agg == sql.AggSum || e.Agg == sql.AggAvg) && src.colType(pos) == rel.TString {
				return sql.Result{}, fmt.Errorf("reference: %s over string", e.Agg)
			}
			it.name = fmt.Sprintf("%s(%s)", e.Agg, label)
		}
		items = append(items, it)
	}
	// ORDER BY keys must be grouping columns.
	orderIdx := make([]int, len(s.OrderBy))
	for i, k := range s.OrderBy {
		pos, err := src.resolve(k.Ref)
		if err != nil {
			return sql.Result{}, err
		}
		found := -1
		for j, gp := range groupPos {
			if gp == pos {
				found = j
			}
		}
		if found < 0 {
			return sql.Result{}, fmt.Errorf("reference: ORDER BY %q not grouped", k.Ref.Col)
		}
		orderIdx[i] = found
	}

	type grp struct {
		vals []rel.Value
		rows []rel.Row
	}
	groups := map[string]*grp{}
	var order []string
	for _, row := range rows {
		vals := make([]rel.Value, len(groupPos))
		for i, gp := range groupPos {
			vals[i] = row[gp]
		}
		k := renderKey(row, groupPos)
		g := groups[k]
		if g == nil {
			g = &grp{vals: vals}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	if len(groupPos) == 0 && len(groups) == 0 {
		groups[""] = &grp{}
		order = append(order, "")
	}
	out := make([]*grp, 0, len(order))
	sort.Strings(order)
	for _, k := range order {
		out = append(out, groups[k])
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(out, func(a, b int) bool {
			for i, gi := range orderIdx {
				if c := refCompare(out[a].vals[gi], out[b].vals[gi]); c != 0 {
					return (c < 0) != s.OrderBy[i].Desc
				}
			}
			return false
		})
	}
	if s.Limit > 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	res := sql.Result{}
	for _, it := range items {
		res.Columns = append(res.Columns, it.name)
	}
	for _, g := range out {
		row := make(rel.Row, len(items))
		for i, it := range items {
			row[i] = refAggValue(src, it.agg, it.star, it.pos, g.rows, g.vals, groupPos)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// refAggValue computes one aggregate (or grouped column) the slow way.
func refAggValue(src *refSrc, agg sql.AggFunc, star bool, pos int, rows []rel.Row, gvals []rel.Value, groupPos []int) rel.Value {
	if agg == sql.AggNone {
		for i, gp := range groupPos {
			if gp == pos {
				return gvals[i]
			}
		}
		return rel.Value{}
	}
	if agg == sql.AggCount {
		return rel.Int(int64(len(rows)))
	}
	ct := src.colType(pos)
	if len(rows) == 0 {
		// The dialect has no NULL: empty scalar aggregates yield zero
		// values (AVG is float).
		if agg == sql.AggAvg {
			return rel.Float(0)
		}
		switch ct {
		case rel.TFloat64:
			return rel.Float(0)
		case rel.TString:
			return rel.Str("")
		}
		return rel.Int(0)
	}
	switch agg {
	case sql.AggSum:
		if ct == rel.TFloat64 {
			sum := 0.0
			for _, row := range rows {
				sum += row[pos].F
			}
			return rel.Float(sum)
		}
		sum := int64(0)
		for _, row := range rows {
			sum += row[pos].I
		}
		return rel.Int(sum)
	case sql.AggAvg:
		sum := 0.0
		for _, row := range rows {
			if ct == rel.TFloat64 {
				sum += row[pos].F
			} else {
				sum += float64(row[pos].I)
			}
		}
		return rel.Float(sum / float64(len(rows)))
	case sql.AggMin, sql.AggMax:
		best := rows[0][pos]
		for _, row := range rows[1:] {
			c := refCompare(row[pos], best)
			if (agg == sql.AggMin && c < 0) || (agg == sql.AggMax && c > 0) {
				best = row[pos]
			}
		}
		return best
	}
	return rel.Value{}
}

func (r *Reference) update(s sql.UpdateStmt) (sql.Result, error) {
	t, ok := r.tables[s.Table]
	if !ok {
		return sql.Result{}, fmt.Errorf("reference: unknown table %q", s.Table)
	}
	src := &refSrc{tables: []string{s.Table}, schemas: []*rel.Schema{t.schema}, offsets: []int{0}}
	set := map[int]rel.Value{}
	for name, v := range s.Set {
		pos := t.schema.ColIndex(name)
		if pos < 0 {
			return sql.Result{}, fmt.Errorf("reference: unknown column %q", name)
		}
		cv, err := coerce(v, t.schema.Cols[pos].Type)
		if err != nil {
			return sql.Result{}, err
		}
		set[pos] = cv
	}
	conds, err := src.resolveConds(s.Where)
	if err != nil {
		return sql.Result{}, err
	}
	// NOTE: like the engine, UPDATE does not re-check unique indexes.
	n := 0
	for _, row := range t.rows {
		if condsMatch(row, conds) {
			for pos, v := range set {
				row[pos] = v
			}
			n++
		}
	}
	return sql.Result{Affected: n}, nil
}

func (r *Reference) del(s sql.DeleteStmt) (sql.Result, error) {
	t, ok := r.tables[s.Table]
	if !ok {
		return sql.Result{}, fmt.Errorf("reference: unknown table %q", s.Table)
	}
	src := &refSrc{tables: []string{s.Table}, schemas: []*rel.Schema{t.schema}, offsets: []int{0}}
	conds, err := src.resolveConds(s.Where)
	if err != nil {
		return sql.Result{}, err
	}
	kept := t.rows[:0]
	n := 0
	for _, row := range t.rows {
		if condsMatch(row, conds) {
			n++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	return sql.Result{Affected: n}, nil
}
