package logictest

import (
	"path/filepath"
	"testing"

	phoebedb "phoebedb"
)

func openDB(t testing.TB) *phoebedb.DB {
	t.Helper()
	db, err := phoebedb.Open(phoebedb.Options{Dir: t.TempDir(), Workers: 2, SlotsPerWorker: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestLogicScripts runs every testdata/*.slt golden script against a
// fresh database and a fresh reference engine.
func TestLogicScripts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.slt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no .slt scripts found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			db := openDB(t)
			RunScript(t, path, db.ExecSQL)
		})
	}
}
