package logictest

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// The oracle's fixed two-table universe. Distinct column names keep
// unqualified references unambiguous; the generator still qualifies at
// random to exercise both forms.
type oracleCol struct {
	name string
	typ  byte // 'i' int, 's' string, 'f' float
}

var (
	oracleT1 = []oracleCol{{"a", 'i'}, {"b", 'i'}, {"s", 's'}, {"f", 'f'}}
	oracleT2 = []oracleCol{{"x", 'i'}, {"y", 'i'}, {"g", 's'}, {"h", 'f'}}
	oracle   = map[string][]oracleCol{"t1": oracleT1, "t2": oracleT2}
)

type gen struct{ rng *rand.Rand }

func (g *gen) table() string {
	if g.rng.Intn(2) == 0 {
		return "t1"
	}
	return "t2"
}

func (g *gen) col(table string) oracleCol {
	cols := oracle[table]
	return cols[g.rng.Intn(len(cols))]
}

// literal draws from small pools so rows collide, join keys match, and
// groups repeat. Floats are quarter-multiples: exactly representable, so
// sums are order-independent and the engines agree bit-for-bit.
func (g *gen) literal(typ byte) string {
	switch typ {
	case 'i':
		return strconv.Itoa(g.rng.Intn(10))
	case 's':
		return "'v" + string(rune('a'+g.rng.Intn(5))) + "'"
	default:
		f := float64(g.rng.Intn(21)) * 0.25
		if g.rng.Intn(10) == 0 {
			return strconv.Itoa(int(f)) // int literal against a float column
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func (g *gen) ref(table string, c oracleCol) string {
	if g.rng.Intn(2) == 0 {
		return table + "." + c.name
	}
	return c.name
}

// cond renders one predicate over the named column: usually equality,
// sometimes a comparison or BETWEEN, so range planning, bound intersection,
// and the batch filters get continuous differential coverage (repeated
// columns across conjuncts arise naturally from random draws).
func (g *gen) cond(name string, typ byte) string {
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		ops := []string{"<", "<=", ">", ">=", "!="}
		return fmt.Sprintf("%s %s %s", name, ops[g.rng.Intn(len(ops))], g.literal(typ))
	case 3:
		return fmt.Sprintf("%s BETWEEN %s AND %s", name, g.literal(typ), g.literal(typ))
	default:
		return fmt.Sprintf("%s = %s", name, g.literal(typ))
	}
}

func (g *gen) where(table string) string {
	n := g.rng.Intn(3)
	var conds []string
	for i := 0; i < n; i++ {
		c := g.col(table)
		name := c.name
		if g.rng.Intn(50) == 0 {
			name = "zz" // deliberate unknown column: both sides must error
		}
		conds = append(conds, g.cond(name, c.typ))
	}
	if len(conds) == 0 {
		return ""
	}
	return " WHERE " + strings.Join(conds, " AND ")
}

func (g *gen) insert() string {
	table := g.table()
	cols := oracle[table]
	n := 1 + g.rng.Intn(3)
	var rows []string
	for i := 0; i < n; i++ {
		vals := make([]string, len(cols))
		for j, c := range cols {
			vals[j] = g.literal(c.typ)
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(rows, ", "))
}

func (g *gen) update() string {
	table := g.table()
	c := g.col(table)
	set := fmt.Sprintf("%s = %s", c.name, g.literal(c.typ))
	if g.rng.Intn(3) == 0 {
		c2 := g.col(table)
		set += fmt.Sprintf(", %s = %s", c2.name, g.literal(c2.typ))
	}
	return fmt.Sprintf("UPDATE %s SET %s%s", table, set, g.where(table))
}

func (g *gen) delete() string {
	table := g.table()
	w := g.where(table)
	if w == "" { // keep full-table deletes rare so the tables stay populated
		c := g.col(table)
		w = fmt.Sprintf(" WHERE %s = %s", c.name, g.literal(c.typ))
	}
	return fmt.Sprintf("DELETE FROM %s%s", table, w)
}

// joinPairs are the type-compatible (t1 col, t2 col) join conditions.
var joinPairs = [][2]oracleCol{
	{{"a", 'i'}, {"x", 'i'}},
	{{"b", 'i'}, {"y", 'i'}},
	{{"s", 's'}, {"g", 's'}},
	{{"f", 'f'}, {"h", 'f'}},
}

func (g *gen) sel() string {
	join := g.rng.Intn(10) < 3
	group := g.rng.Intn(10) < 3

	outer, inner := "t1", "t2"
	if g.rng.Intn(2) == 0 {
		outer, inner = inner, outer
	}
	var from, joinClause string
	srcCols := func() []struct {
		table string
		col   oracleCol
	} {
		var out []struct {
			table string
			col   oracleCol
		}
		for _, c := range oracle[outer] {
			out = append(out, struct {
				table string
				col   oracleCol
			}{outer, c})
		}
		if join {
			for _, c := range oracle[inner] {
				out = append(out, struct {
					table string
					col   oracleCol
				}{inner, c})
			}
		}
		return out
	}()
	from = outer
	if join {
		p := joinPairs[g.rng.Intn(len(joinPairs))]
		l, r := "t1."+p[0].name, "t2."+p[1].name
		if g.rng.Intn(2) == 0 {
			l, r = r, l
		}
		joinClause = fmt.Sprintf(" JOIN %s ON %s = %s", inner, l, r)
	}

	pick := func() (string, oracleCol) {
		sc := srcCols[g.rng.Intn(len(srcCols))]
		return sc.table, sc.col
	}

	var exprs []string
	var orderCandidates []oracleCol
	if group {
		ng := 1 + g.rng.Intn(2)
		seen := map[string]bool{}
		for i := 0; i < ng; i++ {
			tbl, c := pick()
			if seen[c.name] {
				continue
			}
			seen[c.name] = true
			exprs = append(exprs, g.ref(tbl, c))
			orderCandidates = append(orderCandidates, c)
		}
		na := 1 + g.rng.Intn(3)
		for i := 0; i < na; i++ {
			tbl, c := pick()
			aggs := []string{"count", "min", "max"}
			if c.typ != 's' {
				aggs = append(aggs, "sum", "avg")
			}
			agg := aggs[g.rng.Intn(len(aggs))]
			exprs = append(exprs, fmt.Sprintf("%s(%s)", agg, g.ref(tbl, c)))
		}
		var groupBy []string
		for _, c := range orderCandidates {
			groupBy = append(groupBy, c.name)
		}
		q := fmt.Sprintf("SELECT %s FROM %s%s%s GROUP BY %s",
			strings.Join(exprs, ", "), from, joinClause, g.whereFor(srcCols), strings.Join(groupBy, ", "))
		if len(orderCandidates) > 0 && g.rng.Intn(2) == 0 {
			q += g.orderBy(orderCandidates)
		}
		if g.rng.Intn(4) == 0 {
			q += fmt.Sprintf(" LIMIT %d", 1+g.rng.Intn(4))
		}
		return q
	}

	if g.rng.Intn(5) == 0 {
		exprs = []string{"*"}
		for _, sc := range srcCols {
			orderCandidates = append(orderCandidates, sc.col)
		}
	} else {
		np := 1 + g.rng.Intn(3)
		for i := 0; i < np; i++ {
			tbl, c := pick()
			exprs = append(exprs, g.ref(tbl, c))
			orderCandidates = append(orderCandidates, c)
		}
	}
	q := fmt.Sprintf("SELECT %s FROM %s%s%s", strings.Join(exprs, ", "), from, joinClause, g.whereFor(srcCols))
	if g.rng.Intn(10) < 4 {
		q += g.orderBy(orderCandidates)
	}
	if g.rng.Intn(10) < 3 {
		q += fmt.Sprintf(" LIMIT %d", 1+g.rng.Intn(5))
	}
	return q
}

// whereFor builds a WHERE over the (possibly joined) source columns.
func (g *gen) whereFor(srcCols []struct {
	table string
	col   oracleCol
}) string {
	n := g.rng.Intn(3)
	var conds []string
	for i := 0; i < n; i++ {
		sc := srcCols[g.rng.Intn(len(srcCols))]
		conds = append(conds, g.cond(g.ref(sc.table, sc.col), sc.col.typ))
	}
	if len(conds) == 0 {
		return ""
	}
	return " WHERE " + strings.Join(conds, " AND ")
}

func (g *gen) orderBy(candidates []oracleCol) string {
	if len(candidates) == 0 {
		return ""
	}
	n := 1 + g.rng.Intn(2)
	seen := map[string]bool{}
	var keys []string
	for i := 0; i < n; i++ {
		c := candidates[g.rng.Intn(len(candidates))]
		if seen[c.name] {
			continue
		}
		seen[c.name] = true
		dir := ""
		switch g.rng.Intn(3) {
		case 0:
			dir = " ASC"
		case 1:
			dir = " DESC"
		}
		keys = append(keys, c.name+dir)
	}
	return " ORDER BY " + strings.Join(keys, ", ")
}

func (g *gen) next(i int) string {
	// Fixed DDL points exercise online backfill mid-stream: by #150 the
	// tables are populated, so CREATE INDEX must backfill. The unique
	// attempt at #700 almost surely collides — both sides must agree on
	// the failure (and on success, the oracle stops updating b).
	switch i {
	case 150:
		return "CREATE INDEX oracle_t1_a ON t1 (a)"
	case 400:
		return "CREATE INDEX oracle_t2_gx ON t2 (g, x)"
	case 700:
		return "CREATE UNIQUE INDEX oracle_t1_b ON t1 (b)"
	}
	switch r := g.rng.Intn(100); {
	case r < 30:
		return g.insert()
	case r < 40:
		return g.update()
	case r < 48:
		return g.delete()
	default:
		return g.sel()
	}
}

// TestDifferentialOracle replays a deterministic random workload against
// the engine and the naive reference, diffing every statement's outcome.
// Every 200 statements a cold-tier maintenance round runs — garbage
// collection, freezing, segment compaction, and a warm-queue drain — so
// the stream keeps reading and writing rows as they migrate between hot
// pages, L0 segments, and compacted cold levels. The reference knows
// nothing about temperature, so any divergence is a tiering bug.
func TestDifferentialOracle(t *testing.T) {
	const nStatements = 1200
	db := openDB(t)
	ref := NewReference()
	g := &gen{rng: rand.New(rand.NewSource(0xfeeb))}

	for _, ddl := range []string{
		"CREATE TABLE t1 (a INT, b INT, s STRING, f FLOAT)",
		"CREATE TABLE t2 (x INT, y INT, g STRING, h FLOAT)",
	} {
		if err := Diff(ddl, db.ExecSQL, ref); err != nil {
			t.Fatal(err)
		}
	}
	e := db.Engine()
	for _, tbl := range e.Tables() {
		tbl.Frozen.Fanout = 2 // small stream: compact eagerly
	}
	for i := 0; i < nStatements; i++ {
		stmt := g.next(i)
		if err := Diff(stmt, db.ExecSQL, ref); err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
		if i%200 == 199 {
			e.CollectGarbage()
			e.CollectGarbage()
			if _, err := e.FreezeTables(2, ^uint32(0)); err != nil {
				t.Fatalf("statement %d: freeze: %v", i, err)
			}
			if _, err := e.CompactColdAll(); err != nil {
				t.Fatalf("statement %d: compact: %v", i, err)
			}
			if _, err := e.ProcessWarmQueue(0); err != nil {
				t.Fatalf("statement %d: warm: %v", i, err)
			}
		}
	}
	if st := e.ColdStats(); st.Segments == 0 || st.Compactions == 0 {
		t.Fatalf("oracle stream never built a cold tier: %+v", st)
	}
}
