package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"phoebedb/internal/rel"
)

// --- Multi-table in-memory fixture for the shaped executor ------------------

type memCat struct {
	schemas map[string]*rel.Schema
	indexes map[string][]IndexMeta
	c       Counters
}

func (c *memCat) CreateTable(string, *rel.Schema) error            { return nil }
func (c *memCat) CreateIndex(string, string, []string, bool) error { return nil }
func (c *memCat) SQLCounters() *Counters                           { return &c.c }

func (c *memCat) TableSchema(name string) (*rel.Schema, error) {
	s, ok := c.schemas[name]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return s, nil
}

func (c *memCat) IndexInfo(name string) ([]IndexMeta, error) { return c.indexes[name], nil }

type memTxn struct {
	cat   *memCat
	rows  map[string][]rel.Row
	scans []string // access-path audit trail
}

func (m *memTxn) Insert(table string, row rel.Row) (rel.RowID, error) {
	m.rows[table] = append(m.rows[table], row.Clone())
	return rel.RowID(len(m.rows[table])), nil
}

func (m *memTxn) ScanTable(table string, fn func(rel.RowID, rel.Row) bool) error {
	m.scans = append(m.scans, "table:"+table)
	for i, row := range m.rows[table] {
		if !fn(rel.RowID(i+1), row) {
			return nil
		}
	}
	return nil
}

// ScanIndex emulates a real index scan: rows whose indexed columns match
// the prefix vals, emitted in index-key order.
func (m *memTxn) ScanIndex(table, index string, vals []rel.Value, fn func(rel.RowID, rel.Row) bool) error {
	m.scans = append(m.scans, "index:"+index)
	var meta *IndexMeta
	for i := range m.cat.indexes[table] {
		if m.cat.indexes[table][i].Name == index {
			meta = &m.cat.indexes[table][i]
		}
	}
	if meta == nil {
		return fmt.Errorf("no index %q", index)
	}
	type hit struct {
		rid rel.RowID
		row rel.Row
	}
	var hits []hit
	for i, row := range m.rows[table] {
		ok := true
		for j, v := range vals {
			if !row[meta.Cols[j]].Equal(v) {
				ok = false
				break
			}
		}
		if ok {
			hits = append(hits, hit{rel.RowID(i + 1), row})
		}
	}
	sort.SliceStable(hits, func(a, b int) bool {
		for _, c := range meta.Cols {
			if cmp := compareValues(hits[a].row[c], hits[b].row[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return hits[a].rid < hits[b].rid
	})
	for _, h := range hits {
		if !fn(h.rid, h.row) {
			return nil
		}
	}
	return nil
}

func (m *memTxn) Update(string, rel.RowID, map[string]rel.Value) error { return nil }
func (m *memTxn) Delete(string, rel.RowID) error                       { return nil }

// ordersFixture: o(id, region, amt) with unique o_pk(id) and o_region
// (region, id); i(oid, qty, sku, price) with non-unique i_oid(oid).
func ordersFixture() (*memCat, *memTxn) {
	cat := &memCat{
		schemas: map[string]*rel.Schema{
			"o": rel.NewSchema(
				rel.Column{Name: "id", Type: rel.TInt64},
				rel.Column{Name: "region", Type: rel.TString},
				rel.Column{Name: "amt", Type: rel.TFloat64},
			),
			"i": rel.NewSchema(
				rel.Column{Name: "oid", Type: rel.TInt64},
				rel.Column{Name: "qty", Type: rel.TInt64},
				rel.Column{Name: "sku", Type: rel.TString},
				rel.Column{Name: "price", Type: rel.TFloat64},
			),
		},
		indexes: map[string][]IndexMeta{
			"o": {
				{Name: "o_pk", Cols: []int{0}, Unique: true},
				{Name: "o_region", Cols: []int{1, 0}},
			},
			"i": {{Name: "i_oid", Cols: []int{0}}},
		},
	}
	tx := &memTxn{cat: cat, rows: map[string][]rel.Row{}}
	for _, r := range []struct {
		id     int64
		region string
		amt    float64
	}{
		{3, "eu", 30.5}, {1, "us", 10}, {2, "eu", 20}, {4, "ap", 4.5},
	} {
		tx.Insert("o", rel.Row{rel.Int(r.id), rel.Str(r.region), rel.Float(r.amt)})
	}
	for _, r := range []struct {
		oid, qty int64
		sku      string
		price    float64
	}{
		{1, 2, "ball", 5}, {2, 1, "bat", 20}, {2, 3, "cap", 8}, {3, 5, "ball", 5}, {9, 1, "ghost", 1},
	} {
		tx.Insert("i", rel.Row{rel.Int(r.oid), rel.Int(r.qty), rel.Str(r.sku), rel.Float(r.price)})
	}
	return cat, tx
}

func mustExec(t *testing.T, cat Catalog, tx Txn, src string) Result {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := Exec(cat, tx, stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return res
}

func rowStr(rows []rel.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				sb.WriteByte(',')
			}
			switch v.Kind {
			case rel.TInt64:
				fmt.Fprintf(&sb, "%d", v.I)
			case rel.TFloat64:
				fmt.Fprintf(&sb, "%g", v.F)
			default:
				sb.WriteString(v.S)
			}
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

func TestExecOrderByLimit(t *testing.T) {
	cat, tx := ordersFixture()
	res := mustExec(t, cat, tx, "SELECT id FROM o ORDER BY amt DESC LIMIT 2")
	if got := rowStr(res.Rows); got != "3;2;" {
		t.Fatalf("rows = %q", got)
	}
	if cat.c.Sorts.Load() != 1 {
		t.Fatalf("Sorts = %d", cat.c.Sorts.Load())
	}
	// Multi-key sort with a tie on region.
	res = mustExec(t, cat, tx, "SELECT id FROM o ORDER BY region ASC, amt DESC")
	if got := rowStr(res.Rows); got != "4;3;2;1;" {
		t.Fatalf("rows = %q", got)
	}
}

func TestExecOrderByIndexAvoidsSort(t *testing.T) {
	cat, tx := ordersFixture()
	// o_region(region, id) pins region by equality; ORDER BY id rides the
	// index order, so no sort runs.
	res := mustExec(t, cat, tx, "SELECT id FROM o WHERE region = 'eu' ORDER BY id")
	if got := rowStr(res.Rows); got != "2;3;" {
		t.Fatalf("rows = %q", got)
	}
	if cat.c.SortAvoided.Load() != 1 || cat.c.Sorts.Load() != 0 {
		t.Fatalf("SortAvoided = %d, Sorts = %d", cat.c.SortAvoided.Load(), cat.c.Sorts.Load())
	}
	if last := tx.scans[len(tx.scans)-1]; last != "index:o_region" {
		t.Fatalf("scan = %q", last)
	}
	// DESC keys cannot ride the (ascending) index.
	mustExec(t, cat, tx, "SELECT id FROM o WHERE region = 'eu' ORDER BY id DESC")
	if cat.c.Sorts.Load() != 1 {
		t.Fatalf("DESC did not sort")
	}
}

func TestExecGroupByAggregates(t *testing.T) {
	cat, tx := ordersFixture()
	res := mustExec(t, cat, tx,
		"SELECT region, count(*), sum(amt), min(amt), max(amt), avg(id) FROM o GROUP BY region ORDER BY region")
	want := "ap,1,4.5,4.5,4.5,4;eu,2,50.5,20,30.5,2.5;us,1,10,10,10,1;"
	if got := rowStr(res.Rows); got != want {
		t.Fatalf("rows = %q, want %q", got, want)
	}
	if res.Columns[1] != "count(*)" || res.Columns[2] != "sum(amt)" || res.Columns[5] != "avg(id)" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Scalar aggregates; COUNT(col) counts rows like COUNT(*).
	res = mustExec(t, cat, tx, "SELECT count(oid), sum(qty) FROM i")
	if got := rowStr(res.Rows); got != "5,12;" {
		t.Fatalf("scalar rows = %q", got)
	}
	// Scalar aggregate over zero rows: one row of zero values.
	res = mustExec(t, cat, tx, "SELECT count(*), sum(amt), min(region) FROM o WHERE region = 'nowhere'")
	if got := rowStr(res.Rows); got != "0,0,;" {
		t.Fatalf("empty scalar rows = %q", got)
	}
	// GROUP BY without aggregates deduplicates, deterministically ordered.
	res = mustExec(t, cat, tx, "SELECT region FROM o GROUP BY region")
	if got := rowStr(res.Rows); got != "ap;eu;us;" {
		t.Fatalf("distinct rows = %q", got)
	}
}

func TestExecJoinIndexNestedLoop(t *testing.T) {
	cat, tx := ordersFixture()
	res := mustExec(t, cat, tx,
		"SELECT o.id, i.sku FROM o JOIN i ON o.id = i.oid WHERE region = 'eu' ORDER BY o.id, i.sku")
	if got := rowStr(res.Rows); got != "2,bat;2,cap;3,ball;" {
		t.Fatalf("rows = %q", got)
	}
	// The inner side has i_oid on the join column: INL probes it.
	probed := false
	for _, s := range tx.scans {
		if s == "index:i_oid" {
			probed = true
		}
	}
	if !probed {
		t.Fatalf("no INL probe: %v", tx.scans)
	}
	if cat.c.JoinRows.Load() != 3 {
		t.Fatalf("JoinRows = %d", cat.c.JoinRows.Load())
	}
}

func TestExecJoinSwappedAndHash(t *testing.T) {
	cat, tx := ordersFixture()
	// i.qty has no index but o.id does: the executor drives over i and
	// probes o_pk (swapped INL).
	res := mustExec(t, cat, tx,
		"SELECT o.id, i.sku FROM o JOIN i ON i.qty = o.id ORDER BY o.id, i.sku")
	if got := rowStr(res.Rows); got != "1,bat;1,ghost;2,ball;3,cap;" {
		t.Fatalf("swapped rows = %q", got)
	}
	probed := false
	for _, s := range tx.scans {
		if s == "index:o_pk" {
			probed = true
		}
	}
	if !probed {
		t.Fatalf("no swapped probe: %v", tx.scans)
	}

	// Neither amt nor price is indexed: hash join.
	tx.scans = nil
	res = mustExec(t, cat, tx,
		"SELECT o.id, i.sku FROM o JOIN i ON o.amt = i.price ORDER BY o.id, i.sku")
	if got := rowStr(res.Rows); got != "2,bat;" {
		t.Fatalf("hash rows = %q", got)
	}
	for _, s := range tx.scans {
		if strings.HasPrefix(s, "index:") {
			t.Fatalf("hash join touched an index: %v", tx.scans)
		}
	}
}

func TestExecJoinAggregates(t *testing.T) {
	cat, tx := ordersFixture()
	res := mustExec(t, cat, tx,
		"SELECT o.region, count(*), sum(i.qty) FROM o JOIN i ON o.id = i.oid GROUP BY o.region ORDER BY o.region")
	if got := rowStr(res.Rows); got != "eu,3,9;us,1,2;" {
		t.Fatalf("rows = %q", got)
	}
}

func TestExecShapedErrors(t *testing.T) {
	cat, tx := ordersFixture()
	for _, src := range []string{
		"SELECT sku FROM o",                                                             // unknown column
		"SELECT x.id FROM o",                                                            // unknown qualifier
		"SELECT id FROM o WHERE x.id = 1",                                               // unknown WHERE qualifier
		"SELECT id FROM o GROUP BY region",                                              // non-grouped column
		"SELECT sum(region) FROM o",                                                     // SUM over string
		"SELECT avg(sku) FROM i",                                                        // AVG over string
		"SELECT * FROM o GROUP BY region",                                               // star with GROUP BY
		"SELECT region FROM o GROUP BY region ORDER BY amt",                             // ORDER BY non-group column
		"SELECT o.id FROM o JOIN i ON o.id = o.id",                                      // join cond on one table
		"SELECT o.id FROM o JOIN i ON o.id = i.sku",                                     // join type mismatch
		"SELECT o.id FROM o JOIN o ON o.id = o.id",                                      // self join
		"SELECT id FROM o JOIN i ON o.id = i.oid",                                       // ambiguous? no: id only in o -- use qty test below
		"SELECT qty FROM i JOIN o ON o.id = i.oid WHERE id = 1 AND oid = 2 AND zzz = 3", // unknown col
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Exec(cat, tx, stmt); err == nil && src != "SELECT id FROM o JOIN i ON o.id = i.oid" {
			t.Fatalf("%q executed without error", src)
		}
	}
	// Ambiguity: both o and i have no shared names in this fixture, so
	// craft one via ORDER BY against a joined source with a qualifier typo.
	stmt, _ := Parse("SELECT o.id FROM o JOIN i ON o.id = i.oid ORDER BY zzz")
	if _, err := Exec(cat, tx, stmt); err == nil {
		t.Fatal("unknown ORDER BY column executed")
	}
}

// vecMemTxn adds the VectorizedTxn capability on top of memTxn, delegating
// to row-at-a-time evaluation. It lets unit tests exercise the planner's
// vectorized dispatch and the scalar aggregate pushdown without an engine.
type vecMemTxn struct {
	*memTxn
	enabled  bool
	aggCalls int
}

func (v *vecMemTxn) VectorizedScanEnabled() bool { return v.enabled }

func (v *vecMemTxn) ScanTableFiltered(table string, preds []rel.ColPred, fn func(rel.RowID, rel.Row) bool) error {
	v.scans = append(v.scans, "vec:"+table)
	for i, row := range v.rows[table] {
		ok := true
		for _, p := range preds {
			if !p.EvalRow(row) {
				ok = false
				break
			}
		}
		if ok && !fn(rel.RowID(i+1), row) {
			return nil
		}
	}
	return nil
}

func (v *vecMemTxn) AggTableFiltered(table string, preds []rel.ColPred, specs []rel.AggSpec) ([]rel.Value, int64, error) {
	v.aggCalls++
	var n int64
	vals := make([]rel.Value, len(specs))
	err := v.ScanTableFiltered(table, preds, func(_ rel.RowID, row rel.Row) bool {
		for si, sp := range specs {
			if sp.Op == rel.AggOpCount {
				continue
			}
			cv := row[sp.Col]
			if n == 0 {
				vals[si] = cv
				continue
			}
			switch sp.Op {
			case rel.AggOpSum:
				if cv.Kind == rel.TInt64 {
					vals[si] = rel.Int(vals[si].I + cv.I)
				} else {
					vals[si] = rel.Float(vals[si].F + cv.F)
				}
			case rel.AggOpMin:
				if compareValues(cv, vals[si]) < 0 {
					vals[si] = cv
				}
			case rel.AggOpMax:
				if compareValues(cv, vals[si]) > 0 {
					vals[si] = cv
				}
			}
		}
		n++
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	for si, sp := range specs {
		if sp.Op == rel.AggOpCount {
			vals[si] = rel.Int(n)
		}
	}
	return vals, n, nil
}

// Scalar aggregates over a fixed-width filtered full scan must take the
// pushdown path (one AggTableFiltered call, no row materialization in the
// shaped pipeline) and produce the same results as the row path.
func TestScalarAggPushdown(t *testing.T) {
	cat, mtx := ordersFixture()
	tx := &vecMemTxn{memTxn: mtx, enabled: true}

	res := mustExec(t, cat, tx, "SELECT count(*), sum(amt), min(amt), max(amt), avg(amt) FROM o WHERE amt >= 10")
	if tx.aggCalls != 1 {
		t.Fatalf("aggCalls = %d, want 1 (pushdown not taken)", tx.aggCalls)
	}
	// Qualifying rows: amt 30.5, 10, 20.
	want := rel.Row{rel.Int(3), rel.Float(60.5), rel.Float(10), rel.Float(30.5), rel.Float(60.5 / 3)}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	for i, v := range want {
		if !res.Rows[0][i].Equal(v) {
			t.Fatalf("col %d = %v, want %v", i, res.Rows[0][i], v)
		}
	}

	// Empty input: the pushdown must substitute the zero-row defaults.
	res = mustExec(t, cat, tx, "SELECT count(*), sum(amt), min(id), avg(amt) FROM o WHERE amt > 1000")
	if tx.aggCalls != 2 {
		t.Fatalf("aggCalls = %d, want 2", tx.aggCalls)
	}
	want = rel.Row{rel.Int(0), rel.Float(0), rel.Int(0), rel.Float(0)}
	for i, v := range want {
		if !res.Rows[0][i].Equal(v) {
			t.Fatalf("empty col %d = %v, want %v", i, res.Rows[0][i], v)
		}
	}

	// A var-width filter column keeps the row path but must agree.
	res = mustExec(t, cat, tx, "SELECT count(*), sum(amt) FROM o WHERE region = 'eu' AND amt > 1")
	if tx.aggCalls != 2 {
		t.Fatalf("aggCalls = %d, want 2 (var-width filter must not push down)", tx.aggCalls)
	}
	if !res.Rows[0][0].Equal(rel.Int(2)) || !res.Rows[0][1].Equal(rel.Float(50.5)) {
		t.Fatalf("row-path aggs = %v", res.Rows[0])
	}

	// GROUP BY keeps the grouped pipeline.
	mustExec(t, cat, tx, "SELECT region, count(*) FROM o WHERE amt > 1 GROUP BY region")
	if tx.aggCalls != 2 {
		t.Fatalf("aggCalls = %d, want 2 (GROUP BY must not push down)", tx.aggCalls)
	}

	// Ablation off: row path, same answer.
	tx.enabled = false
	res = mustExec(t, cat, tx, "SELECT count(*), sum(amt) FROM o WHERE amt >= 10")
	if tx.aggCalls != 2 {
		t.Fatalf("aggCalls = %d, want 2 (disabled capability must not push down)", tx.aggCalls)
	}
	if !res.Rows[0][0].Equal(rel.Int(3)) || !res.Rows[0][1].Equal(rel.Float(60.5)) {
		t.Fatalf("ablation aggs = %v", res.Rows[0])
	}
}

// The vectorized dispatch must route filtered full scans through
// ScanTableFiltered and leave indexed/var-width scans on the row path.
func TestVectorizedScanDispatch(t *testing.T) {
	cat, mtx := ordersFixture()
	tx := &vecMemTxn{memTxn: mtx, enabled: true}

	res := mustExec(t, cat, tx, "SELECT id FROM o WHERE amt >= 10 ORDER BY id")
	if got := fmt.Sprint(res.Rows); got != "[[1] [2] [3]]" {
		t.Fatalf("rows = %s", got)
	}
	if len(tx.scans) == 0 || tx.scans[len(tx.scans)-1] != "vec:o" {
		t.Fatalf("scans = %v, want trailing vec:o", tx.scans)
	}

	// String predicate: row path.
	mustExec(t, cat, tx, "SELECT id FROM o WHERE region != 'eu'")
	if tx.scans[len(tx.scans)-1] != "table:o" {
		t.Fatalf("scans = %v, want trailing table:o", tx.scans)
	}
}
