package sql

import (
	"fmt"
	"sort"
	"strings"

	"phoebedb/internal/rel"
)

// Shaped SELECT execution: joins, GROUP BY + aggregates, ORDER BY, and
// their combinations. The simple single-table projection stays on the
// streaming fast path in exec.go; everything here materializes matching
// rows first (cloning them — scan callbacks only borrow their row) and
// then applies the shared shaping pipeline:
//
//	gather (scan / join)  →  aggregate  →  sort  →  limit  →  project
//
// Two optimizations carry over from the flat path: LIMIT stops the
// gather early whenever output order is scan order, and an ORDER BY
// whose keys are already delivered by the chosen index scan skips the
// sort entirely (counted in Counters.SortAvoided).

// srcSchema describes the row shape a shaped SELECT operates on: one
// table, or two concatenated (outer ++ inner) for a join.
type srcSchema struct {
	tables  []string
	schemas []*rel.Schema
	offsets []int
	width   int
}

func singleSource(table string, schema *rel.Schema) *srcSchema {
	return &srcSchema{
		tables:  []string{table},
		schemas: []*rel.Schema{schema},
		offsets: []int{0},
		width:   schema.NumCols(),
	}
}

func joinSource(outer string, os *rel.Schema, inner string, is *rel.Schema) *srcSchema {
	return &srcSchema{
		tables:  []string{outer, inner},
		schemas: []*rel.Schema{os, is},
		offsets: []int{0, os.NumCols()},
		width:   os.NumCols() + is.NumCols(),
	}
}

// resolve maps a column reference to its position in the combined row.
// Unqualified names must be unambiguous across the source tables.
func (ss *srcSchema) resolve(ref ColRef) (int, error) {
	if ref.Table != "" {
		for i, t := range ss.tables {
			if t == ref.Table {
				if pos := ss.schemas[i].ColIndex(ref.Col); pos >= 0 {
					return ss.offsets[i] + pos, nil
				}
				return 0, fmt.Errorf("sql: unknown column %q.%q", ref.Table, ref.Col)
			}
		}
		return 0, fmt.Errorf("sql: unknown table %q in column reference", ref.Table)
	}
	found := -1
	for i := range ss.schemas {
		if pos := ss.schemas[i].ColIndex(ref.Col); pos >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("sql: ambiguous column %q", ref.Col)
			}
			found = ss.offsets[i] + pos
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", ref.Col)
	}
	return found, nil
}

// colMeta returns the column definition behind a combined-row position.
func (ss *srcSchema) colMeta(pos int) rel.Column {
	for i := len(ss.offsets) - 1; i >= 0; i-- {
		if pos >= ss.offsets[i] {
			return ss.schemas[i].Cols[pos-ss.offsets[i]]
		}
	}
	return rel.Column{}
}

// hasAggs reports whether any select-list item is an aggregate.
func hasAggs(exprs []SelectExpr) bool {
	for _, e := range exprs {
		if e.Agg != AggNone {
			return true
		}
	}
	return false
}

// checkWhereQualifiers rejects table qualifiers naming anything but the
// single table in scope (resolveWhere itself ignores qualifiers).
func checkWhereQualifiers(table string, where []Cond) error {
	for _, c := range where {
		if c.Table != "" && c.Table != table {
			return fmt.Errorf("sql: unknown table %q in column reference", c.Table)
		}
	}
	return nil
}

// compareValues orders two values of the same column. Mixed kinds cannot
// occur through the type checker but still order deterministically.
func compareValues(a, b rel.Value) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	switch a.Kind {
	case rel.TInt64:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	case rel.TFloat64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
	case rel.TString:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

// outCol is one resolved output column of a shaped SELECT.
type outCol struct {
	name string
	agg  AggFunc
	star bool // COUNT(*)
	pos  int  // combined-row position (aggregate argument, or plain output)
}

func colNames(outCols []outCol) []string {
	names := make([]string, len(outCols))
	for i, oc := range outCols {
		names[i] = oc.name
	}
	return names
}

// buildOutCols resolves the select list against the source.
func buildOutCols(ss *srcSchema, s SelectStmt) ([]outCol, error) {
	if s.Exprs == nil {
		if len(s.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY")
		}
		var out []outCol
		for i := range ss.schemas {
			for j, c := range ss.schemas[i].Cols {
				out = append(out, outCol{name: c.Name, pos: ss.offsets[i] + j})
			}
		}
		return out, nil
	}
	out := make([]outCol, 0, len(s.Exprs))
	for _, e := range s.Exprs {
		oc := outCol{agg: e.Agg, star: e.Star}
		if e.Star {
			oc.name = "count(*)"
			out = append(out, oc)
			continue
		}
		pos, err := ss.resolve(e.Ref)
		if err != nil {
			return nil, err
		}
		oc.pos = pos
		label := e.Ref.Col
		if e.Ref.Table != "" {
			label = e.Ref.Table + "." + e.Ref.Col
		}
		if e.Agg != AggNone {
			if (e.Agg == AggSum || e.Agg == AggAvg) && ss.colMeta(pos).Type == rel.TString {
				return nil, fmt.Errorf("sql: %s(%s): argument must be numeric", e.Agg, label)
			}
			oc.name = fmt.Sprintf("%s(%s)", e.Agg, label)
		} else {
			oc.name = e.Ref.Col
		}
		out = append(out, oc)
	}
	return out, nil
}

// shapeRows applies aggregation, ordering, LIMIT, and projection to
// materialized combined rows. sorted reports that rows already arrive in
// ORDER BY order (index-order sort avoidance); rows is mutated in place
// by sorting, so callers must own the slice. tr, when non-nil, collects
// per-operator actuals for EXPLAIN ANALYZE.
func shapeRows(ss *srcSchema, s SelectStmt, rows []rel.Row, sorted bool, c *Counters, tr *execTrace) (Result, error) {
	outCols, err := buildOutCols(ss, s)
	if err != nil {
		return Result{}, err
	}
	if len(s.GroupBy) > 0 || hasAggs(s.Exprs) {
		return aggregateRows(ss, s, outCols, rows, c, tr)
	}
	if len(s.OrderBy) > 0 && !sorted {
		sop := tr.sortOp()
		sstart := sop.begin()
		if err := sortRows(ss, s.OrderBy, rows); err != nil {
			return Result{}, err
		}
		sop.rows(int64(len(rows)), int64(len(rows)))
		sop.end(sstart)
		c.Sorts.Add(1)
	}
	if s.Limit > 0 {
		lop := tr.limitOp()
		lop.rows(int64(len(rows)), 0)
		if len(rows) > s.Limit {
			rows = rows[:s.Limit]
		}
		lop.rows(0, int64(len(rows)))
	}
	pop := tr.projectOp()
	pstart := pop.begin()
	res := Result{Columns: colNames(outCols), Rows: make([]rel.Row, len(rows))}
	for i, row := range rows {
		out := make(rel.Row, len(outCols))
		for j, oc := range outCols {
			out[j] = row[oc.pos]
		}
		res.Rows[i] = out
	}
	pop.rows(int64(len(rows)), int64(len(res.Rows)))
	pop.end(pstart)
	return res, nil
}

// sortRows sorts the combined rows by the ORDER BY keys, stably.
func sortRows(ss *srcSchema, keys []OrderKey, rows []rel.Row) error {
	pos := make([]int, len(keys))
	for i, k := range keys {
		p, err := ss.resolve(k.Ref)
		if err != nil {
			return err
		}
		pos[i] = p
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range keys {
			if cmp := compareValues(rows[i][pos[k]], rows[j][pos[k]]); cmp != 0 {
				return (cmp < 0) != keys[k].Desc
			}
		}
		return false
	})
	return nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count  int64
	sumI   int64
	sumF   float64
	minmax rel.Value
	seen   bool
}

func (st *aggState) add(agg AggFunc, v rel.Value) {
	st.count++
	switch agg {
	case AggSum, AggAvg:
		if v.Kind == rel.TInt64 {
			st.sumI += v.I
			st.sumF += float64(v.I)
		} else {
			st.sumF += v.F
		}
	case AggMin:
		if !st.seen || compareValues(v, st.minmax) < 0 {
			st.minmax = v
		}
	case AggMax:
		if !st.seen || compareValues(v, st.minmax) > 0 {
			st.minmax = v
		}
	}
	st.seen = true
}

// zeroValue is this no-NULL dialect's result for value aggregates over
// an empty input: the zero of the argument's column type.
func zeroValue(ct rel.Type) rel.Value {
	switch ct {
	case rel.TFloat64:
		return rel.Float(0)
	case rel.TString:
		return rel.Str("")
	}
	return rel.Int(0)
}

// final renders the aggregate's value; ct is the argument column's type.
func (st *aggState) final(agg AggFunc, ct rel.Type) rel.Value {
	switch agg {
	case AggCount:
		return rel.Int(st.count)
	case AggSum:
		if !st.seen {
			return zeroValue(ct)
		}
		if ct == rel.TFloat64 {
			return rel.Float(st.sumF)
		}
		return rel.Int(st.sumI)
	case AggAvg:
		if st.count == 0 {
			return rel.Float(0)
		}
		return rel.Float(st.sumF / float64(st.count))
	case AggMin, AggMax:
		if !st.seen {
			return zeroValue(ct)
		}
		return st.minmax
	}
	return rel.Value{}
}

// aggregateRows hash-aggregates the combined rows by the GROUP BY keys
// (or into a single scalar group). Output order is the encoded group-key
// order — deterministic — unless ORDER BY (over grouping columns)
// overrides it.
func aggregateRows(ss *srcSchema, s SelectStmt, outCols []outCol, rows []rel.Row, c *Counters, tr *execTrace) (Result, error) {
	groupPos := make([]int, len(s.GroupBy))
	for i, ref := range s.GroupBy {
		p, err := ss.resolve(ref)
		if err != nil {
			return Result{}, err
		}
		groupPos[i] = p
	}
	inGroup := func(pos int) int {
		for j, gp := range groupPos {
			if gp == pos {
				return j
			}
		}
		return -1
	}
	// Every plain output column must be one of the grouping columns.
	for _, oc := range outCols {
		if oc.agg == AggNone && inGroup(oc.pos) < 0 {
			return Result{}, fmt.Errorf("sql: column %q must appear in GROUP BY or an aggregate", oc.name)
		}
	}
	type group struct {
		vals   []rel.Value // grouping column values, groupPos order
		states []aggState
	}
	aop := tr.aggOp()
	astart := aop.begin()
	groups := make(map[string]*group)
	keyBuf := make([]rel.Value, len(groupPos))
	var keyBytes []byte
	for _, row := range rows {
		for i, gp := range groupPos {
			keyBuf[i] = row[gp]
		}
		keyBytes = rel.EncodeKey(keyBytes[:0], keyBuf...)
		g := groups[string(keyBytes)]
		if g == nil {
			g = &group{
				vals:   append([]rel.Value(nil), keyBuf...),
				states: make([]aggState, len(outCols)),
			}
			groups[string(keyBytes)] = g
		}
		for i, oc := range outCols {
			if oc.agg == AggNone {
				continue
			}
			var v rel.Value
			if !oc.star {
				v = row[oc.pos]
			}
			g.states[i].add(oc.agg, v)
		}
	}
	if len(groupPos) == 0 && len(groups) == 0 {
		// A scalar aggregate over zero rows still yields one row.
		groups[""] = &group{states: make([]aggState, len(outCols))}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*group, len(keys))
	for i, k := range keys {
		out[i] = groups[k]
	}
	aop.rows(int64(len(rows)), int64(len(out)))
	aop.end(astart)
	if len(s.OrderBy) > 0 {
		sop := tr.sortOp()
		sstart := sop.begin()
		idx := make([]int, len(s.OrderBy))
		for i, key := range s.OrderBy {
			p, err := ss.resolve(key.Ref)
			if err != nil {
				return Result{}, err
			}
			gi := inGroup(p)
			if gi < 0 {
				return Result{}, fmt.Errorf("sql: ORDER BY column %q must appear in GROUP BY", key.Ref.Col)
			}
			idx[i] = gi
		}
		sort.SliceStable(out, func(a, b int) bool {
			for k, gi := range idx {
				if cmp := compareValues(out[a].vals[gi], out[b].vals[gi]); cmp != 0 {
					return (cmp < 0) != s.OrderBy[k].Desc
				}
			}
			return false
		})
		sop.rows(int64(len(out)), int64(len(out)))
		sop.end(sstart)
		c.Sorts.Add(1)
	}
	if s.Limit > 0 {
		lop := tr.limitOp()
		lop.rows(int64(len(out)), 0)
		if len(out) > s.Limit {
			out = out[:s.Limit]
		}
		lop.rows(0, int64(len(out)))
	}
	pop := tr.projectOp()
	pstart := pop.begin()
	res := Result{Columns: colNames(outCols), Rows: make([]rel.Row, len(out))}
	for i, g := range out {
		row := make(rel.Row, len(outCols))
		for j, oc := range outCols {
			if oc.agg == AggNone {
				row[j] = g.vals[inGroup(oc.pos)]
				continue
			}
			ct := rel.TInt64
			if !oc.star {
				ct = ss.colMeta(oc.pos).Type
			}
			row[j] = g.states[j].final(oc.agg, ct)
		}
		res.Rows[i] = row
	}
	pop.rows(int64(len(out)), int64(len(res.Rows)))
	pop.end(pstart)
	return res, nil
}

// pushdownScalarAggs computes an all-aggregate scalar SELECT over a full
// table scan through the vectorized path: predicates filter column
// strips into a selection vector and each aggregate folds directly over
// its minipage, so no qualifying row is materialized (§5.2). ok is false
// when the shape doesn't qualify — a non-aggregate output column, a
// var-width filter column, or a transaction without the batch surface —
// and the caller falls back to the gather + shape pipeline.
func pushdownScalarAggs(tx Txn, ss *srcSchema, s SelectStmt, p plan) (Result, bool, error) {
	vt, ok := vectorizedFor(tx)
	if !ok {
		return Result{}, false, nil
	}
	preds, ok := colPreds(ss.schemas[0], p.residual)
	if !ok {
		return Result{}, false, nil
	}
	outCols, err := buildOutCols(ss, s)
	if err != nil {
		return Result{}, false, err
	}
	// Lower each output to a fold spec. COUNT (star or column — the
	// dialect has no NULLs, so they agree) reads the shared row count;
	// AVG folds a SUM and divides by it.
	specIdx := make([]int, len(outCols))
	var specs []rel.AggSpec
	for i, oc := range outCols {
		var op rel.AggOp
		switch oc.agg {
		case AggCount:
			specIdx[i] = -1
			continue
		case AggSum, AggAvg:
			op = rel.AggOpSum
		case AggMin:
			op = rel.AggOpMin
		case AggMax:
			op = rel.AggOpMax
		default: // AggNone: plain column in an aggregate select list
			return Result{}, false, nil
		}
		specIdx[i] = len(specs)
		specs = append(specs, rel.AggSpec{Op: op, Col: oc.pos})
	}
	notePlan(tx, scanLabel(s.Table, p))
	vals, n, err := vt.AggTableFiltered(s.Table, preds, specs)
	if err != nil {
		return Result{}, false, err
	}
	row := make(rel.Row, len(outCols))
	for i, oc := range outCols {
		ct := rel.TInt64
		if !oc.star {
			ct = ss.colMeta(oc.pos).Type
		}
		switch {
		case oc.agg == AggCount:
			row[i] = rel.Int(n)
		case oc.agg == AggAvg:
			if n == 0 {
				row[i] = rel.Float(0)
				break
			}
			sum := vals[specIdx[i]]
			f := sum.F
			if sum.Kind == rel.TInt64 {
				f = float64(sum.I)
			}
			row[i] = rel.Float(f / float64(n))
		case n == 0:
			row[i] = zeroValue(ct)
		default:
			row[i] = vals[specIdx[i]]
		}
	}
	return Result{Columns: colNames(outCols), Rows: []rel.Row{row}}, true, nil
}

// orderSatisfied reports whether the planned index scan already emits
// rows in ORDER BY order: every key ascending, and the key columns
// matching the index columns after the equality prefix, in sequence.
// Columns pinned by the equality prefix are constant within the scan and
// satisfy a key anywhere.
func orderSatisfied(ss *srcSchema, indexes []IndexMeta, p plan, keys []OrderKey) (bool, error) {
	if p.index == "" {
		return false, nil
	}
	var ix *IndexMeta
	for i := range indexes {
		if indexes[i].Name == p.index {
			ix = &indexes[i]
			break
		}
	}
	if ix == nil {
		return false, nil
	}
	prefix := len(p.prefixVals)
	next := prefix
	for _, key := range keys {
		if key.Desc {
			return false, nil
		}
		pos, err := ss.resolve(key.Ref)
		if err != nil {
			return false, err
		}
		pinned := false
		for _, pc := range ix.Cols[:prefix] {
			if pc == pos {
				pinned = true
				break
			}
		}
		if pinned {
			continue
		}
		if next < len(ix.Cols) && ix.Cols[next] == pos {
			next++
			continue
		}
		return false, nil
	}
	return true, nil
}

// execSelectShaped runs a single-table SELECT with ORDER BY, GROUP BY,
// or aggregates: gather matching rows (cloned), then shape.
func execSelectShaped(cat Catalog, tx Txn, s SelectStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return Result{}, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return Result{}, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return Result{}, err
	}
	ss := singleSource(s.Table, schema)
	p, err := planFor(hint, schema, indexes, s.Where)
	if err != nil {
		return Result{}, err
	}
	c := countersOf(cat)
	aggregate := len(s.GroupBy) > 0 || hasAggs(s.Exprs)
	if aggregate && tr == nil && len(s.GroupBy) == 0 && len(s.OrderBy) == 0 &&
		p.index == "" && !p.empty {
		if res, ok, err := pushdownScalarAggs(tx, ss, s, p); ok || err != nil {
			return res, err
		}
	}
	sorted := false
	if !aggregate && len(s.OrderBy) > 0 {
		sorted, err = orderSatisfied(ss, indexes, p, s.OrderBy)
		if err != nil {
			return Result{}, err
		}
		if sorted {
			c.SortAvoided.Add(1)
		}
	}
	// LIMIT can stop the gather early only when output order is scan order.
	early := 0
	if !aggregate && s.Limit > 0 && (len(s.OrderBy) == 0 || sorted) {
		early = s.Limit
	}
	notePlan(tx, scanLabel(s.Table, p))
	var rows []rel.Row
	err = scanMatching(tx, schema, s.Table, p, tr.scanOp(), func(_ rel.RowID, row rel.Row) bool {
		r := make(rel.Row, len(row))
		copy(r, row) // the scan only lends us the row
		rows = append(rows, r)
		return early == 0 || len(rows) < early
	})
	if err != nil {
		return Result{}, err
	}
	return shapeRows(ss, s, rows, sorted, c, tr)
}

// selectHint caches a join's strategy for a prepared statement: which
// side drives and which index the other side is probed through. It is
// literal-independent, and DDL invalidation drops the whole cache entry,
// so a stored hint never outlives the schema it was computed against.
type selectHint struct {
	swapped    bool   // drive over the JOIN table, probe the FROM table
	probeIndex string // "" = hash join (no usable index on either side)
}

// indexOnCol returns an index whose first column is pos (so an equality
// probe on that column is an index prefix scan), preferring unique ones.
func indexOnCol(indexes []IndexMeta, pos int) string {
	name := ""
	for _, ix := range indexes {
		if len(ix.Cols) > 0 && ix.Cols[0] == pos {
			if ix.Unique {
				return ix.Name
			}
			if name == "" {
				name = ix.Name
			}
		}
	}
	return name
}

// joinInfo is a two-table equi-join resolved against the catalog: the
// combined source schema, the join columns (schema-local on each side),
// the WHERE conditions partitioned by side, and each side's indexes.
// Shared between execution and EXPLAIN's plan rendering.
type joinInfo struct {
	ss                         *srcSchema
	outerSchema, innerSchema   *rel.Schema
	outerPos, innerPos         int
	outerConds, innerConds     []Cond
	outerIndexes, innerIndexes []IndexMeta
}

// resolveJoin validates and resolves s's two-table join: schemas, the
// equi-join columns, WHERE partitioned by side, and index metadata.
func resolveJoin(cat Catalog, s SelectStmt) (*joinInfo, error) {
	if _, _, ok := statTable(cat, s.Table); ok {
		return nil, fmt.Errorf("sql: stat table %q cannot be joined", s.Table)
	}
	if _, _, ok := statTable(cat, s.Join.Table); ok {
		return nil, fmt.Errorf("sql: stat table %q cannot be joined", s.Join.Table)
	}
	if s.Join.Table == s.Table {
		return nil, fmt.Errorf("%w: self-join of %q", ErrUnsupported, s.Table)
	}
	outerSchema, err := cat.TableSchema(s.Table)
	if err != nil {
		return nil, err
	}
	innerSchema, err := cat.TableSchema(s.Join.Table)
	if err != nil {
		return nil, err
	}
	ss := joinSource(s.Table, outerSchema, s.Join.Table, innerSchema)

	// Resolve the equi-join condition: one side per table, either order.
	lpos, err := ss.resolve(s.Join.Left)
	if err != nil {
		return nil, err
	}
	rpos, err := ss.resolve(s.Join.Right)
	if err != nil {
		return nil, err
	}
	outerPos, innerPos := lpos, rpos
	if lpos >= ss.offsets[1] {
		outerPos, innerPos = rpos, lpos
	}
	if outerPos >= ss.offsets[1] || innerPos < ss.offsets[1] {
		return nil, fmt.Errorf("sql: join condition must reference both tables")
	}
	innerPos -= ss.offsets[1]
	if outerSchema.Cols[outerPos].Type != innerSchema.Cols[innerPos].Type {
		return nil, fmt.Errorf("sql: join columns have different types")
	}

	// Partition WHERE by side, stripping qualifiers: each side's planner
	// resolves bare column names against its own schema.
	var outerConds, innerConds []Cond
	for _, cd := range s.Where {
		pos, err := ss.resolve(ColRef{Table: cd.Table, Col: cd.Col})
		if err != nil {
			return nil, err
		}
		if pos < ss.offsets[1] {
			outerConds = append(outerConds, Cond{Col: cd.Col, Op: cd.Op, Val: cd.Val})
		} else {
			innerConds = append(innerConds, Cond{Col: cd.Col, Op: cd.Op, Val: cd.Val})
		}
	}
	outerIndexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return nil, err
	}
	innerIndexes, err := cat.IndexInfo(s.Join.Table)
	if err != nil {
		return nil, err
	}
	return &joinInfo{
		ss:          ss,
		outerSchema: outerSchema, innerSchema: innerSchema,
		outerPos: outerPos, innerPos: innerPos,
		outerConds: outerConds, innerConds: innerConds,
		outerIndexes: outerIndexes, innerIndexes: innerIndexes,
	}, nil
}

// chooseJoinStrategy picks (and caches on hint) the join strategy: index
// nested loop through whichever side has an index on its join column
// (preferring the JOIN-clause table), else hash join.
func chooseJoinStrategy(hint *CachedStmt, ji *joinInfo) *selectHint {
	var sh *selectHint
	if hint != nil {
		sh = hint.sel.Load()
	}
	if sh == nil {
		sh = &selectHint{}
		if ixn := indexOnCol(ji.innerIndexes, ji.innerPos); ixn != "" {
			sh.probeIndex = ixn
		} else if ixn := indexOnCol(ji.outerIndexes, ji.outerPos); ixn != "" {
			sh.probeIndex, sh.swapped = ixn, true
		}
		if hint != nil {
			hint.sel.Store(sh)
		}
	}
	return sh
}

// execSelectJoin runs a two-table inner equi-join: index nested loop
// probing whichever side has an index on its join column (preferring the
// JOIN-clause table), falling back to a hash join built on the inner
// side. The combined rows then flow through the shared shaping pipeline.
func execSelectJoin(cat Catalog, tx Txn, s SelectStmt, hint *CachedStmt, tr *execTrace) (Result, error) {
	ji, err := resolveJoin(cat, s)
	if err != nil {
		return Result{}, err
	}
	sh := chooseJoinStrategy(hint, ji)

	c := countersOf(cat)
	aggregate := len(s.GroupBy) > 0 || hasAggs(s.Exprs)
	early := 0
	if !aggregate && len(s.OrderBy) == 0 && s.Limit > 0 {
		early = s.Limit
	}
	var rows []rel.Row
	emit := func(orow, irow rel.Row) bool {
		out := make(rel.Row, ji.ss.width)
		copy(out, orow)
		copy(out[ji.ss.offsets[1]:], irow)
		rows = append(rows, out)
		return early == 0 || len(rows) < early
	}

	if sh.probeIndex != "" {
		// Index nested loop: scan the driving side through its own WHERE
		// plan, probe the other side's index with each join value.
		driveName, driveSchema, driveConds := s.Table, ji.outerSchema, ji.outerConds
		probeName, probeSchema, probeConds := s.Join.Table, ji.innerSchema, ji.innerConds
		driveJoin, driveIndexes := ji.outerPos, ji.outerIndexes
		if sh.swapped {
			driveName, driveSchema, driveConds = s.Join.Table, ji.innerSchema, ji.innerConds
			probeName, probeSchema, probeConds = s.Table, ji.outerSchema, ji.outerConds
			driveJoin, driveIndexes = ji.innerPos, ji.innerIndexes
		}
		dp, err := planWhere(driveSchema, driveIndexes, driveConds)
		if err != nil {
			return Result{}, err
		}
		notePlan(tx, joinLabel(sh, scanLabel(driveName, dp), probeName))
		// The probe side bypasses planWhere, so apply the same dedupe
		// (last condition wins), range intersection, and int→float coercion
		// here; matches() compares raw values and must see normalized
		// conditions.
		prw, err := resolveWhere(probeSchema, probeConds)
		if err != nil {
			return Result{}, err
		}
		if prw.empty {
			return shapeRows(ji.ss, s, nil, false, c, tr)
		}
		probeConds = prw.flatten(probeSchema)
		pop := tr.probeOp()
		var perr error
		err = scanMatching(tx, driveSchema, driveName, dp, tr.scanOp(), func(_ rel.RowID, drow rel.Row) bool {
			more := true
			pstart := pop.begin()
			perr = tx.ScanIndex(probeName, sh.probeIndex, []rel.Value{drow[driveJoin]}, func(_ rel.RowID, prow rel.Row) bool {
				if pop != nil {
					pop.rowsIn++
				}
				if !matches(probeSchema, prow, probeConds) {
					return true
				}
				if pop != nil {
					pop.rowsOut++
				}
				if sh.swapped {
					more = emit(prow, drow)
				} else {
					more = emit(drow, prow)
				}
				return more
			})
			pop.end(pstart)
			return perr == nil && more
		})
		if tr != nil {
			// The probe runs inside the drive scan's callback; keep each
			// wall-second charged to exactly one operator.
			tr.scan.nanos -= tr.probe.nanos
			if tr.scan.nanos < 0 {
				tr.scan.nanos = 0
			}
		}
		if err == nil {
			err = perr
		}
		if err != nil {
			return Result{}, err
		}
	} else {
		// Hash join: build on the inner side, probe while scanning outer.
		ip, err := planWhere(ji.innerSchema, ji.innerIndexes, ji.innerConds)
		if err != nil {
			return Result{}, err
		}
		build := make(map[string][]rel.Row)
		err = scanMatching(tx, ji.innerSchema, s.Join.Table, ip, tr.buildOp(), func(_ rel.RowID, row rel.Row) bool {
			r := make(rel.Row, len(row))
			copy(r, row)
			build[string(rel.EncodeKey(nil, row[ji.innerPos]))] = append(build[string(rel.EncodeKey(nil, row[ji.innerPos]))], r)
			return true
		})
		if err != nil {
			return Result{}, err
		}
		outp, err := planWhere(ji.outerSchema, ji.outerIndexes, ji.outerConds)
		if err != nil {
			return Result{}, err
		}
		notePlan(tx, joinLabel(sh, scanLabel(s.Table, outp), s.Join.Table))
		pop := tr.probeOp()
		pstart := pop.begin()
		var probeKey []byte
		err = scanMatching(tx, ji.outerSchema, s.Table, outp, tr.scanOp(), func(_ rel.RowID, orow rel.Row) bool {
			probeKey = rel.EncodeKey(probeKey[:0], orow[ji.outerPos])
			matched := build[string(probeKey)]
			if pop != nil {
				pop.rowsIn++
				pop.rowsOut += int64(len(matched))
			}
			for _, irow := range matched {
				if !emit(orow, irow) {
					return false
				}
			}
			return true
		})
		pop.end(pstart)
		if tr != nil {
			tr.probe.nanos -= tr.scan.nanos
			if tr.probe.nanos < 0 {
				tr.probe.nanos = 0
			}
		}
		if err != nil {
			return Result{}, err
		}
	}
	c.JoinRows.Add(int64(len(rows)))
	return shapeRows(ji.ss, s, rows, false, c, tr)
}
