package sql

import (
	"fmt"
	"strconv"
	"strings"

	"phoebedb/internal/rel"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmtNode() }

// CreateTableStmt declares a relation.
type CreateTableStmt struct {
	Table string
	Cols  []rel.Column
}

// CreateIndexStmt declares a secondary index.
type CreateIndexStmt struct {
	Index  string
	Table  string
	Cols   []string
	Unique bool
}

// InsertStmt inserts one or more rows.
type InsertStmt struct {
	Table string
	Rows  [][]rel.Value
}

// Cond is one comparison predicate in a WHERE conjunction:
// <col> <op> <literal>. BETWEEN desugars in the parser to a >= and a <=
// Cond on the same column, so downstream layers only see the six
// operators. The zero Op is rel.CmpEq, keeping pre-range callers valid.
type Cond struct {
	// Table is the optional qualifier ("" = unqualified).
	Table string
	Col   string
	Op    rel.CmpOp
	Val   rel.Value
}

// ColRef names a column, optionally qualified with its table.
type ColRef struct {
	Table string // "" when unqualified
	Col   string
}

// AggFunc identifies an aggregate function in a select list.
type AggFunc int

// Aggregate functions. AggNone marks a plain column reference.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// aggNames maps function identifiers to aggregates (detected only when
// followed by '(', so plain columns may still use these names).
var aggNames = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "min": AggMin, "max": AggMax, "avg": AggAvg,
}

// String renders the aggregate name for output column labels.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// SelectExpr is one select-list item: a column reference, or an aggregate
// over one (COUNT(*) has Star set instead of Ref).
type SelectExpr struct {
	Agg  AggFunc
	Star bool // COUNT(*)
	Ref  ColRef
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Ref  ColRef
	Desc bool
}

// JoinClause is an inner equi-join against a second table:
// FROM <outer> JOIN <Table> ON <Left> = <Right>, where Left and Right
// each reference one of the two tables (in either order).
type JoinClause struct {
	Table string
	Left  ColRef
	Right ColRef
}

// SelectStmt reads rows.
type SelectStmt struct {
	Table string
	// Join, when set, makes this a two-table inner equi-join.
	Join *JoinClause
	// Exprs is nil for SELECT *.
	Exprs   []SelectExpr
	Where   []Cond
	GroupBy []ColRef
	OrderBy []OrderKey
	Limit   int // 0 = unlimited
}

// UpdateStmt updates matching rows.
type UpdateStmt struct {
	Table string
	Set   map[string]rel.Value
	Where []Cond
}

// DeleteStmt deletes matching rows.
type DeleteStmt struct {
	Table string
	Where []Cond
}

// ExplainStmt renders the inner statement's plan. With Analyze set the
// statement is also executed and each plan operator reports its actual
// row counts, loop count, and wall time.
type ExplainStmt struct {
	Analyze bool
	Inner   Stmt
}

func (CreateTableStmt) stmtNode() {}
func (CreateIndexStmt) stmtNode() {}
func (InsertStmt) stmtNode()      {}
func (SelectStmt) stmtNode()      {}
func (UpdateStmt) stmtNode()      {}
func (DeleteStmt) stmtNode()      {}
func (ExplainStmt) stmtNode()     {}

// paramKind marks a rel.Value as a parameter placeholder in a cached
// statement template: Val.I holds the 0-based parameter index. The kind
// value sits far outside rel's real type space, so a marker that leaks
// into execution fails type checks instead of silently matching.
const paramKind = rel.Type(255)

// isParam reports whether v is a template parameter marker.
func isParam(v rel.Value) bool { return v.Kind == paramKind }

// parser consumes a token stream.
type parser struct {
	toks []token
	pos  int
	src  string
	// allowParams accepts '?' placeholders where a literal is expected
	// (template parsing for the plan cache); plain Parse rejects them.
	allowParams bool
	nParams     int
}

// Parse parses one SQL statement.
func Parse(src string) (Stmt, error) {
	stmt, _, err := parse(src, false)
	return stmt, err
}

// parseTemplate parses a literal-normalized statement containing '?'
// placeholders, returning the template and its parameter count.
func parseTemplate(src string) (Stmt, int, error) {
	return parse(src, true)
}

func parse(src string, allowParams bool) (Stmt, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks, src: src, allowParams: allowParams}
	stmt, err := p.statement()
	if err != nil {
		return nil, 0, err
	}
	if !p.atEOF() {
		return nil, 0, p.errorf("trailing tokens after statement")
	}
	return stmt, p.nParams, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: %s (near position %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

// keyword consumes an identifier matching kw (case-insensitive).
func (p *parser) keyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return nil
	}
	return p.errorf("expected %q", s)
}

func (p *parser) symbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected identifier")
	}
	t := p.cur().text
	p.pos++
	return strings.ToLower(t), nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.keyword("create"):
		if p.keyword("table") {
			return p.createTable()
		}
		unique := p.keyword("unique")
		if p.keyword("index") {
			return p.createIndex(unique)
		}
		return nil, p.errorf("expected TABLE or [UNIQUE] INDEX after CREATE")
	case p.keyword("insert"):
		return p.insert()
	case p.keyword("select"):
		return p.selectStmt()
	case p.keyword("update"):
		return p.update()
	case p.keyword("delete"):
		return p.delete()
	case p.keyword("explain"):
		analyze := p.keyword("analyze")
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return ExplainStmt{Analyze: analyze, Inner: inner}, nil
	default:
		return nil, p.errorf("expected CREATE, INSERT, SELECT, UPDATE, DELETE, or EXPLAIN")
	}
}

func (p *parser) createTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []rel.Column
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		var t rel.Type
		switch tn {
		case "int", "int64", "integer", "bigint":
			t = rel.TInt64
		case "float", "float64", "double", "real":
			t = rel.TFloat64
		case "string", "text", "varchar":
			t = rel.TString
		default:
			return nil, p.errorf("unknown type %q", tn)
		}
		cols = append(cols, rel.Column{Name: cn, Type: t})
		if p.symbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	return CreateTableStmt{Table: name, Cols: cols}, nil
}

func (p *parser) createIndex(unique bool) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	return CreateIndexStmt{Index: name, Table: table, Cols: cols, Unique: unique}, nil
}

func (p *parser) identList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.symbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) value() (rel.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return rel.Value{}, p.errorf("bad number %q", t.text)
			}
			return rel.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return rel.Value{}, p.errorf("bad integer %q", t.text)
		}
		return rel.Int(n), nil
	case tokString:
		p.pos++
		return rel.Str(t.text), nil
	case tokSymbol:
		if p.allowParams && t.text == "?" {
			p.pos++
			v := rel.Value{Kind: paramKind, I: int64(p.nParams)}
			p.nParams++
			return v, nil
		}
		return rel.Value{}, p.errorf("expected literal value")
	default:
		return rel.Value{}, p.errorf("expected literal value")
	}
}

func (p *parser) insert() (Stmt, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	var rows [][]rel.Value
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []rel.Value
		for {
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.symbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
		rows = append(rows, row)
		if p.symbol(",") {
			continue
		}
		break
	}
	return InsertStmt{Table: table, Rows: rows}, nil
}

// colRef parses an optionally qualified column reference: col | tab.col.
func (p *parser) colRef() (ColRef, error) {
	id, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.symbol(".") {
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: id, Col: col}, nil
	}
	return ColRef{Col: id}, nil
}

func (p *parser) where() ([]Cond, error) {
	if !p.keyword("where") {
		return nil, nil
	}
	var conds []Cond
	for {
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if p.keyword("between") {
			// col BETWEEN a AND b desugars to col >= a AND col <= b; the
			// inner AND is consumed here so it cannot be read as the
			// conjunction separator.
			lo, err := p.value()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.value()
			if err != nil {
				return nil, err
			}
			conds = append(conds,
				Cond{Table: ref.Table, Col: ref.Col, Op: rel.CmpGe, Val: lo},
				Cond{Table: ref.Table, Col: ref.Col, Op: rel.CmpLe, Val: hi})
		} else {
			op, err := p.cmpOp()
			if err != nil {
				return nil, err
			}
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			conds = append(conds, Cond{Table: ref.Table, Col: ref.Col, Op: op, Val: v})
		}
		if p.keyword("and") {
			continue
		}
		return conds, nil
	}
}

// cmpOp consumes one comparison operator token.
func (p *parser) cmpOp() (rel.CmpOp, error) {
	if p.cur().kind == tokSymbol {
		var op rel.CmpOp
		switch p.cur().text {
		case "=":
			op = rel.CmpEq
		case "!=":
			op = rel.CmpNe
		case "<":
			op = rel.CmpLt
		case "<=":
			op = rel.CmpLe
		case ">":
			op = rel.CmpGt
		case ">=":
			op = rel.CmpGe
		default:
			return 0, p.errorf("expected comparison operator")
		}
		p.pos++
		return op, nil
	}
	return 0, p.errorf("expected comparison operator")
}

func (p *parser) limit() (int, error) {
	if !p.keyword("limit") {
		return 0, nil
	}
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errorf("expected LIMIT count")
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errorf("bad LIMIT %q", t.text)
	}
	return n, nil
}

// selectExpr parses one select-list item: a column reference or an
// aggregate call. An identifier named like an aggregate is only treated
// as one when a '(' follows it.
func (p *parser) selectExpr() (SelectExpr, error) {
	if t := p.cur(); t.kind == tokIdent {
		agg, isAgg := aggNames[strings.ToLower(t.text)]
		next := p.toks[p.pos+1]
		if isAgg && next.kind == tokSymbol && next.text == "(" {
			p.pos += 2
			e := SelectExpr{Agg: agg}
			if p.symbol("*") {
				if agg != AggCount {
					return e, p.errorf("%s(*) is not valid; only COUNT takes *", agg)
				}
				e.Star = true
			} else {
				ref, err := p.colRef()
				if err != nil {
					return e, err
				}
				e.Ref = ref
			}
			if err := p.expectSymbol(")"); err != nil {
				return e, err
			}
			return e, nil
		}
	}
	ref, err := p.colRef()
	if err != nil {
		return SelectExpr{}, err
	}
	return SelectExpr{Ref: ref}, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	var exprs []SelectExpr
	if !p.symbol("*") {
		for {
			e, err := p.selectExpr()
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			if p.symbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var join *JoinClause
	if p.keyword("join") {
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		join = &JoinClause{Table: jt, Left: left, Right: right}
	}
	where, err := p.where()
	if err != nil {
		return nil, err
	}
	var groupBy []ColRef
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, ref)
			if p.symbol(",") {
				continue
			}
			break
		}
	}
	var orderBy []OrderKey
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Ref: ref}
			if p.keyword("desc") {
				key.Desc = true
			} else {
				p.keyword("asc") // optional
			}
			orderBy = append(orderBy, key)
			if p.symbol(",") {
				continue
			}
			break
		}
	}
	limit, err := p.limit()
	if err != nil {
		return nil, err
	}
	return SelectStmt{
		Table: table, Join: join, Exprs: exprs, Where: where,
		GroupBy: groupBy, OrderBy: orderBy, Limit: limit,
	}, nil
}

func (p *parser) update() (Stmt, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	set := map[string]rel.Value{}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		set[col] = v
		if p.symbol(",") {
			continue
		}
		break
	}
	where, err := p.where()
	if err != nil {
		return nil, err
	}
	return UpdateStmt{Table: table, Set: set, Where: where}, nil
}

func (p *parser) delete() (Stmt, error) {
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.where()
	if err != nil {
		return nil, err
	}
	return DeleteStmt{Table: table, Where: where}, nil
}
