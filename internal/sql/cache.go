package sql

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"phoebedb/internal/rel"
)

// Prepared-statement plan cache. OLTP workloads repeat a handful of
// statement shapes with different literals; re-lexing, re-parsing, and
// re-planning each one dominates the SQL layer's per-statement cost. The
// cache keys on the literal-normalized statement text ('?' in place of
// each literal), stores the parsed template plus the planner's access-path
// choice, and on a hit binds the extracted literals into a copy of the
// template — skipping the lexer, the parser, and planWhere's index scoring.
//
// Invalidation: DDL (CREATE TABLE / CREATE INDEX) can change every plan,
// so the owner calls Invalidate, which drops all entries. Entries are
// immutable after insertion except the planHint, which is published via an
// atomic pointer — concurrent sessions share one cache without locking on
// the hit path beyond the LRU bump.

// CachedStmt is one cached template: the parsed statement with parameter
// markers in literal positions, plus the lazily captured plan choice.
type CachedStmt struct {
	tmpl    Stmt
	nParams int
	// key is the normalized statement text the template was cached under —
	// the fingerprint per-statement aggregates and the slow log key on.
	key string
	// plan holds the access-path provenance captured on first execution;
	// nil until then. Races on Store are benign (idempotent recompute).
	plan atomic.Pointer[planHint]
	// sel holds the shaped-select strategy (join side and probe index);
	// literal-independent, so it survives rebinding. nil until a join
	// statement first executes.
	sel atomic.Pointer[selectHint]
}

// Fingerprint returns the normalized statement text the template was
// cached under.
func (cs *CachedStmt) Fingerprint() string { return cs.key }

// Fingerprint returns the normalized per-statement aggregation key for
// query — the same key the plan cache uses — falling back to the trimmed
// source text when the normalizer cannot handle the statement.
func Fingerprint(query string) string {
	if key, _, ok := normalize(query); ok {
		return key
	}
	return strings.TrimSpace(query)
}

// bind substitutes params into a deep copy of the template. The template
// itself is never mutated: every slice/map reachable from the returned
// statement is freshly allocated.
func (cs *CachedStmt) bind(params []rel.Value) (Stmt, error) {
	if len(params) != cs.nParams {
		return nil, fmt.Errorf("sql: template wants %d parameters, got %d", cs.nParams, len(params))
	}
	bindVal := func(v rel.Value) rel.Value {
		if isParam(v) {
			return params[v.I]
		}
		return v
	}
	bindConds := func(conds []Cond) []Cond {
		if conds == nil {
			return nil
		}
		out := make([]Cond, len(conds))
		for i, c := range conds {
			out[i] = Cond{Table: c.Table, Col: c.Col, Op: c.Op, Val: bindVal(c.Val)}
		}
		return out
	}
	switch s := cs.tmpl.(type) {
	case InsertStmt:
		rows := make([][]rel.Value, len(s.Rows))
		for i, r := range s.Rows {
			row := make([]rel.Value, len(r))
			for j, v := range r {
				row[j] = bindVal(v)
			}
			rows[i] = row
		}
		s.Rows = rows
		return s, nil
	case SelectStmt:
		s.Where = bindConds(s.Where)
		return s, nil
	case UpdateStmt:
		set := make(map[string]rel.Value, len(s.Set))
		for k, v := range s.Set {
			set[k] = bindVal(v)
		}
		s.Set = set
		s.Where = bindConds(s.Where)
		return s, nil
	case DeleteStmt:
		s.Where = bindConds(s.Where)
		return s, nil
	}
	return nil, ErrUnsupported
}

// PlanCache is a bounded LRU of CachedStmt keyed by normalized statement
// text. Safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	cs  *CachedStmt
}

// NewPlanCache returns a cache bounded to capacity entries (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Hits returns cache hits (statements served from a cached template).
func (c *PlanCache) Hits() int64 { return c.hits.Load() }

// Misses returns cache misses (cacheable statements that had to parse).
func (c *PlanCache) Misses() int64 { return c.misses.Load() }

// Len returns the number of cached templates.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Invalidate drops every entry. Called on DDL: a new table or index can
// change any statement's access path.
func (c *PlanCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element, c.cap)
}

// Prepare resolves src against the cache: normalize, look up, and on a
// miss parse the template and insert it. The returned params are the
// literals extracted from src in source order, ready for ExecPrepared.
// cacheable=false means the statement bypasses the cache — DDL, statements
// the normalizer cannot handle, or text that fails to parse (the caller
// should fall back to Parse on the original text for a faithful error).
func (c *PlanCache) Prepare(src string) (cs *CachedStmt, params []rel.Value, cacheable bool) {
	key, params, ok := normalize(src)
	if !ok {
		return nil, nil, false
	}
	c.mu.Lock()
	if el, hit := c.entries[key]; hit {
		c.lru.MoveToFront(el)
		cs := el.Value.(*cacheEntry).cs
		c.mu.Unlock()
		c.hits.Add(1)
		return cs, params, true
	}
	c.mu.Unlock()

	tmpl, n, err := parseTemplate(key)
	if err != nil || n != len(params) {
		// Unparseable (or a normalizer/parser disagreement): let the
		// caller produce the error from the original text.
		return nil, nil, false
	}
	c.misses.Add(1)
	cs = &CachedStmt{tmpl: tmpl, nParams: n, key: key}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, hit := c.entries[key]; hit {
		// Another session inserted the same template while we parsed.
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).cs, params, true
	}
	el := c.lru.PushFront(&cacheEntry{key: key, cs: cs})
	c.entries[key] = el
	if c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.entries, old.Value.(*cacheEntry).key)
	}
	return cs, params, true
}

// normalize rewrites src into a cache key with every literal replaced by
// '?', returning the extracted literals in source order. It mirrors the
// lexer's token boundaries in a single allocation-light pass: identifiers
// lowercase (the parser lowercases them anyway), symbols verbatim, string
// and number literals parameterized. Two exceptions keep templates sound:
// LIMIT counts stay verbatim in the key (the planner treats LIMIT as part
// of the plan, and `LIMIT ?` would hide it), and CREATE statements are
// uncacheable (DDL runs once; caching it would mask Invalidate ordering).
func normalize(src string) (key string, params []rel.Value, ok bool) {
	var sb strings.Builder
	sb.Grow(len(src))
	prevWord := ""
	first := true
	pos := 0
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
			continue
		case isIdentStart(rune(c)):
			start := pos
			for pos < len(src) && isIdentPart(rune(src[pos])) {
				pos++
			}
			word := strings.ToLower(src[start:pos])
			// CREATE: DDL runs once, caching would mask Invalidate ordering.
			// EXPLAIN: a diagnostic whose literals must survive verbatim into
			// the rendered plan — parameterizing them would lie.
			if first && (word == "create" || word == "explain") {
				return "", nil, false
			}
			sb.WriteString(word)
			sb.WriteByte(' ')
			prevWord = word
		case c >= '0' && c <= '9' || c == '-' && pos+1 < len(src) && src[pos+1] >= '0' && src[pos+1] <= '9':
			start := pos
			pos++
			for pos < len(src) && (src[pos] >= '0' && src[pos] <= '9' || src[pos] == '.') {
				pos++
			}
			text := src[start:pos]
			if prevWord == "limit" {
				// Keep the count in the key: different limits are
				// different plans.
				sb.WriteString(text)
				sb.WriteByte(' ')
			} else {
				v, err := numberValue(text)
				if err != nil {
					return "", nil, false
				}
				params = append(params, v)
				sb.WriteString("? ")
			}
			prevWord = ""
		case c == '\'':
			pos++
			var lit strings.Builder
			for {
				if pos >= len(src) {
					return "", nil, false // unterminated; Parse reports it
				}
				if src[pos] == '\'' {
					if pos+1 < len(src) && src[pos+1] == '\'' {
						lit.WriteByte('\'')
						pos += 2
						continue
					}
					pos++
					break
				}
				lit.WriteByte(src[pos])
				pos++
			}
			params = append(params, rel.Str(lit.String()))
			sb.WriteString("? ")
			prevWord = ""
		case c == '<' || c == '>' || c == '!':
			// Mirror the lexer: <=, >=, != are single tokens. A bare '!' is
			// a lex error — uncacheable, let Parse report it.
			sb.WriteByte(c)
			pos++
			if pos < len(src) && src[pos] == '=' {
				sb.WriteByte('=')
				pos++
			} else if c == '!' {
				return "", nil, false
			}
			sb.WriteByte(' ')
			prevWord = ""
		case strings.ContainsRune("(),=*.", rune(c)):
			sb.WriteByte(c)
			sb.WriteByte(' ')
			pos++
			prevWord = ""
		default:
			// '?' in user text, or anything the lexer would reject:
			// uncacheable, let Parse produce the error.
			return "", nil, false
		}
		first = false
	}
	return sb.String(), params, true
}

// numberValue mirrors parser.value's literal typing: a '.' makes a float,
// otherwise the text must be a valid int64.
func numberValue(text string) (rel.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return rel.Value{}, err
		}
		return rel.Float(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return rel.Value{}, err
	}
	return rel.Int(n), nil
}
