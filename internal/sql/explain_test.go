package sql

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"phoebedb/internal/rel"
)

func explainLines(t *testing.T, cat Catalog, tx Txn, src string) []string {
	t.Helper()
	res := mustExec(t, cat, tx, src)
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = r[0].S
	}
	return lines
}

func wantLines(t *testing.T, got, want []string, src string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s:\ngot:\n%s\nwant:\n%s", src, strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: line %d = %q, want %q", src, i, got[i], want[i])
		}
	}
}

func TestExplainSingleTable(t *testing.T) {
	cat, tx := ordersFixture()

	// Equality on the unique index: index scan with an Index Cond.
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT amt FROM o WHERE id = 2"), []string{
		"Project (amt)",
		"  -> Index Scan using o_pk on o",
		"       Index Cond: id = 2",
	}, "pk lookup")

	// Unindexed predicate: full scan with a residual Filter.
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT id FROM o WHERE amt = 20"), []string{
		"Project (id)",
		"  -> Seq Scan on o",
		"       Filter: amt = 20",
	}, "seq scan")

	// o_region pins region and continues in id order: sort avoided and
	// the LIMIT pushed into the scan; the Limit node still truncates.
	wantLines(t, explainLines(t, cat, tx,
		"EXPLAIN SELECT id FROM o WHERE region = 'eu' ORDER BY id LIMIT 2"), []string{
		"Project (id)",
		"  -> Limit 2",
		"    -> Index Scan using o_region on o",
		"         Index Cond: region = \"eu\"",
		"         Order: o_region scan order satisfies ORDER BY (sort avoided)",
		"         Limit Pushdown: stop after 2 rows",
	}, "sort avoidance")

	// DESC breaks index order: explicit Sort node.
	wantLines(t, explainLines(t, cat, tx,
		"EXPLAIN SELECT id FROM o WHERE region = 'eu' ORDER BY id DESC"), []string{
		"Project (id)",
		"  -> Sort (id DESC)",
		"    -> Index Scan using o_region on o",
		"         Index Cond: region = \"eu\"",
	}, "desc sort")

	// Aggregation pipeline.
	wantLines(t, explainLines(t, cat, tx,
		"EXPLAIN SELECT region, count(*) FROM o GROUP BY region"), []string{
		"Project (region, count(*))",
		"  -> HashAggregate (group by region)",
		"    -> Seq Scan on o",
	}, "group by")
}

func TestExplainJoins(t *testing.T) {
	cat, tx := ordersFixture()

	// i_oid indexes the inner join column: index-nested-loop, o driving.
	wantLines(t, explainLines(t, cat, tx,
		"EXPLAIN SELECT o.region, i.sku FROM o JOIN i ON o.id = i.oid"), []string{
		"Project (region, sku)",
		"  -> IndexNestedLoop Join (o.id = i.oid)",
		"    -> Seq Scan on o",
		"    -> Index Scan using i_oid on i",
		"         Index Cond: oid = o.id",
	}, "index nested loop")

	// Neither float column indexed: hash join with an explicit build side.
	wantLines(t, explainLines(t, cat, tx,
		"EXPLAIN SELECT o.id, i.sku FROM o JOIN i ON o.amt = i.price"), []string{
		"Project (id, sku)",
		"  -> Hash Join (o.amt = i.price)",
		"    -> Seq Scan on o",
		"    -> Hash Build",
		"      -> Seq Scan on i",
	}, "hash join")
}

func TestExplainDML(t *testing.T) {
	cat, tx := ordersFixture()
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN UPDATE o SET amt = 1 WHERE id = 3"), []string{
		"Update on o",
		"  -> Index Scan using o_pk on o",
		"       Index Cond: id = 3",
	}, "update")
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN INSERT INTO o VALUES (9, 'eu', 1.5)"), []string{
		"Insert on o (1 rows)",
	}, "insert")
}

func TestExplainRejects(t *testing.T) {
	cat, tx := ordersFixture()
	for _, src := range []string{
		"EXPLAIN EXPLAIN SELECT id FROM o",
		"EXPLAIN CREATE TABLE z (a INT)",
		"EXPLAIN CREATE INDEX zi ON o (id)",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Exec(cat, tx, stmt); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

var actualRE = regexp.MustCompile(`\(actual rows=(\d+) loops=(\d+) time=([0-9.]+) ms\)`)
var execTimeRE = regexp.MustCompile(`^Execution Time: ([0-9.]+) ms$`)

// parseActuals extracts (rows, loops, ms) per annotated node plus the
// trailing Execution Time line.
func parseActuals(t *testing.T, lines []string) (nodes []struct {
	rows, loops int64
	ms          float64
}, total float64) {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("no plan lines")
	}
	m := execTimeRE.FindStringSubmatch(lines[len(lines)-1])
	if m == nil {
		t.Fatalf("last line %q is not Execution Time", lines[len(lines)-1])
	}
	total, _ = strconv.ParseFloat(m[1], 64)
	for _, l := range lines[:len(lines)-1] {
		am := actualRE.FindStringSubmatch(l)
		if am == nil {
			continue
		}
		rows, _ := strconv.ParseInt(am[1], 10, 64)
		loops, _ := strconv.ParseInt(am[2], 10, 64)
		ms, _ := strconv.ParseFloat(am[3], 64)
		nodes = append(nodes, struct {
			rows, loops int64
			ms          float64
		}{rows, loops, ms})
	}
	return nodes, total
}

func TestExplainAnalyzeJoinActuals(t *testing.T) {
	cat, tx := ordersFixture()
	lines := explainLines(t, cat, tx,
		"EXPLAIN ANALYZE SELECT o.region, i.sku FROM o JOIN i ON o.id = i.oid")

	var drive, probe string
	for _, l := range lines {
		switch {
		case strings.Contains(l, "Seq Scan on o"):
			drive = l
		case strings.Contains(l, "Index Scan using i_oid"):
			probe = l
		}
	}
	// Drive scan emits all 4 o rows in one pass; the probe runs once per
	// drive row and matches items for orders 1, 2, 2, 3.
	dm := actualRE.FindStringSubmatch(drive)
	if dm == nil || dm[1] != "4" || dm[2] != "1" {
		t.Fatalf("drive scan actuals: %q", drive)
	}
	pm := actualRE.FindStringSubmatch(probe)
	if pm == nil || pm[1] != "4" || pm[2] != "4" {
		t.Fatalf("probe actuals: %q", probe)
	}
	if _, total := parseActuals(t, lines); total <= 0 {
		t.Fatalf("total = %v", total)
	}
}

// TestExplainAnalyzeTimesSum checks the single-charge discipline: with
// nested operator brackets (probe inside the driving scan's callback,
// shaping stages downstream) each nanosecond lands in exactly one
// operator, so node times sum to at most the statement wall time.
func TestExplainAnalyzeTimesSum(t *testing.T) {
	cat, tx := ordersFixture()
	for i := 0; i < 3000; i++ {
		tx.Insert("o", rel.Row{rel.Int(int64(100 + i)), rel.Str("bulk"), rel.Float(float64(i))})
		tx.Insert("i", rel.Row{rel.Int(int64(100 + i)), rel.Int(1), rel.Str("sku"), rel.Float(1)})
	}
	for _, src := range []string{
		"EXPLAIN ANALYZE SELECT region, count(*) FROM o GROUP BY region ORDER BY region LIMIT 2",
		"EXPLAIN ANALYZE SELECT o.id, i.qty FROM o JOIN i ON o.id = i.oid",
		"EXPLAIN ANALYZE SELECT o.id, i.sku FROM o JOIN i ON o.amt = i.price LIMIT 5",
	} {
		nodes, total := parseActuals(t, explainLines(t, cat, tx, src))
		if len(nodes) == 0 {
			t.Fatalf("%s: no annotated nodes", src)
		}
		var sum float64
		for _, n := range nodes {
			sum += n.ms
		}
		// Allow a small epsilon for float rendering (3 decimal places
		// per node) — never for systematic double counting.
		if eps := 0.001 * float64(len(nodes)); sum > total+eps {
			t.Errorf("%s: operator times %.3f ms exceed wall %.3f ms", src, sum, total)
		}
	}
}

// TestExplainAnalyzeUntracedZeroCost pins the nil-collector contract:
// executing without ANALYZE must not populate any trace state (the same
// code paths run with nil opTrace receivers).
func TestExplainAnalyzeUntracedZeroCost(t *testing.T) {
	cat, tx := ordersFixture()
	var tr *execTrace
	if op := tr.scanOp(); op != nil {
		t.Fatal("nil trace returned a live operator")
	}
	var op *opTrace
	op.end(op.begin()) // must not panic
	op.rows(1, 1)
	stmt, _ := Parse("SELECT id FROM o WHERE region = 'eu'")
	if _, err := exec(cat, tx, stmt, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExplainRangeConds(t *testing.T) {
	cat, tx := ordersFixture()

	// Range bounds on the unique index render as an Index Range Cond with
	// their inclusivity.
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT region FROM o WHERE id > 1 AND id <= 3"), []string{
		"Project (region)",
		"  -> Index Range Scan using o_pk on o",
		"       Index Range Cond: id > 1 AND id <= 3",
	}, "pk range")

	// Equality prefix + BETWEEN on the next index column.
	wantLines(t, explainLines(t, cat, tx,
		"EXPLAIN SELECT id FROM o WHERE region = 'eu' AND id BETWEEN 1 AND 2"), []string{
		"Project (id)",
		"  -> Index Range Scan using o_region on o",
		"       Index Cond: region = \"eu\"",
		"       Index Range Cond: id >= 1 AND id <= 2",
	}, "prefix + between")

	// Unindexed comparison stays a residual filter, rendered op-aware.
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT id FROM o WHERE amt >= 10"), []string{
		"Project (id)",
		"  -> Seq Scan on o",
		"       Filter: amt >= 10",
	}, "op-aware filter")

	// Contradictory bounds prove emptiness before any scan.
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT id FROM o WHERE id > 5 AND id < 3"), []string{
		"Project (id)",
		"  -> Empty Scan on o",
		"       One-Time Filter: false (contradictory WHERE)",
	}, "contradiction")
}

// TestExplainVectorizedNote pins when a scan node advertises the batch
// path: full scan, capability present and enabled, every filtered column
// fixed-width.
func TestExplainVectorizedNote(t *testing.T) {
	cat, mtx := ordersFixture()
	tx := &vecMemTxn{memTxn: mtx, enabled: true}

	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT id FROM o WHERE amt >= 10"), []string{
		"Project (id)",
		"  -> Seq Scan on o",
		"       Filter: amt >= 10",
		"       Vectorized: true",
	}, "vectorized seq scan")

	// A var-width filter column keeps the row path.
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT id FROM o WHERE region = 'x' AND amt > 1"), []string{
		"Project (id)",
		"  -> Index Scan using o_region on o",
		"       Index Cond: region = \"x\"",
		"       Filter: amt > 1",
	}, "index scan never vectorized")

	// Capability disabled (the ablation): no note.
	tx.enabled = false
	wantLines(t, explainLines(t, cat, tx, "EXPLAIN SELECT id FROM o WHERE amt >= 10"), []string{
		"Project (id)",
		"  -> Seq Scan on o",
		"       Filter: amt >= 10",
	}, "ablation off")
}
