package sql

import (
	"fmt"
	"strings"
	"time"

	"phoebedb/internal/rel"
)

// EXPLAIN and EXPLAIN ANALYZE.
//
// EXPLAIN renders the plan the executor would run — access path, join
// strategy, sort avoidance, LIMIT pushdown — by consulting the same
// planner entry points (planWhere, resolveJoin, chooseJoinStrategy,
// orderSatisfied) the executor itself uses, so the rendered tree cannot
// drift from execution. EXPLAIN ANALYZE additionally runs the statement
// with a trace collector threaded through every operator and annotates
// each node with its actuals: rows out, loop count, and wall time.
//
// The collector is designed so the untraced hot path pays nothing: every
// operator holds a *opTrace that is nil when tracing is off, and every
// opTrace method no-ops on a nil receiver — one predictable branch, no
// allocation, no time.Now.

// opTrace accumulates one operator's actuals.
type opTrace struct {
	rowsIn  int64
	rowsOut int64
	loops   int64
	nanos   int64
}

// begin starts one timed invocation; returns the zero time on nil.
func (op *opTrace) begin() time.Time {
	if op == nil {
		return time.Time{}
	}
	return time.Now()
}

// end finishes one timed invocation started by begin.
func (op *opTrace) end(start time.Time) {
	if op == nil {
		return
	}
	op.loops++
	op.nanos += time.Since(start).Nanoseconds()
}

// rows adds to the operator's row counters.
func (op *opTrace) rows(in, out int64) {
	if op == nil {
		return
	}
	op.rowsIn += in
	op.rowsOut += out
}

// execTrace is the per-statement collector: one slot per operator of the
// gather → join → aggregate → sort → limit → project pipeline (plus the
// DML apply step). Accessors return nil on a nil trace so operators can
// be handed a trace slot unconditionally.
type execTrace struct {
	scan    opTrace // driving scan (or stat-table / streaming scan)
	probe   opTrace // join probe side (index probes, or hash probe)
	build   opTrace // hash-join build-side scan
	agg     opTrace // grouping + aggregate fold
	sort    opTrace // ORDER BY sort
	limit   opTrace // LIMIT truncation
	project opTrace // output projection
	modify  opTrace // INSERT/UPDATE/DELETE apply loop

	total time.Duration // statement wall time (EXPLAIN ANALYZE)
}

func (tr *execTrace) scanOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.scan
}

func (tr *execTrace) probeOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.probe
}

func (tr *execTrace) buildOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.build
}

func (tr *execTrace) aggOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.agg
}

func (tr *execTrace) sortOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.sort
}

func (tr *execTrace) limitOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.limit
}

func (tr *execTrace) projectOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.project
}

func (tr *execTrace) modifyOp() *opTrace {
	if tr == nil {
		return nil
	}
	return &tr.modify
}

// PlanNoter is implemented by transaction handles that record plan
// provenance (for the slow log and per-statement attribution).
type PlanNoter interface {
	NotePlan(desc string)
}

// notePlan records the chosen plan's one-line provenance on transaction
// handles that care; a non-PlanNoter Txn costs one type assertion.
func notePlan(tx Txn, desc string) {
	if pn, ok := tx.(PlanNoter); ok {
		pn.NotePlan(desc)
	}
}

// scanLabel is the one-line access-path description of a planned scan.
func scanLabel(table string, p plan) string {
	switch {
	case p.empty:
		return "Empty Scan on " + table
	case p.index != "" && p.hasRange():
		return "Index Range Scan using " + p.index + " on " + table
	case p.index != "":
		return "Index Scan using " + p.index + " on " + table
	}
	return "Seq Scan on " + table
}

// joinLabel is the one-line join-strategy description for provenance:
// strategy, driving-side access path, and the probed/built side.
func joinLabel(sh *selectHint, driveLabel, otherTable string) string {
	if sh.probeIndex != "" {
		return fmt.Sprintf("IndexNestedLoop Join (%s; probe %s via %s)", driveLabel, otherTable, sh.probeIndex)
	}
	return fmt.Sprintf("Hash Join (%s; build %s)", driveLabel, otherTable)
}

// planNode is one rendered plan-tree node.
type planNode struct {
	label    string
	notes    []string
	op       *opTrace
	children []*planNode
}

// refString renders a column reference as written.
func refString(r ColRef) string {
	if r.Table != "" {
		return r.Table + "." + r.Col
	}
	return r.Col
}

// condsString renders conditions "col op val AND ...".
func condsString(conds []Cond) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		col := c.Col
		if c.Table != "" {
			col = c.Table + "." + c.Col
		}
		parts[i] = col + " " + c.Op.String() + " " + c.Val.String()
	}
	return strings.Join(parts, " AND ")
}

// rangeCondString renders a plan's index range bounds with their
// inclusivity, e.g. "amt >= 10 AND amt < 20".
func rangeCondString(p plan) string {
	var parts []string
	if p.hasLo {
		op := ">"
		if p.loIncl {
			op = ">="
		}
		parts = append(parts, p.rangeCol+" "+op+" "+p.lo.String())
	}
	if p.hasHi {
		op := "<"
		if p.hiIncl {
			op = "<="
		}
		parts = append(parts, p.rangeCol+" "+op+" "+p.hi.String())
	}
	return strings.Join(parts, " AND ")
}

// scanPlanNode builds the plan node for a planned table access: the
// access path plus Index Cond / Index Range Cond / Filter annotations.
// tx is consulted (never executed) for the vectorized capability: a full
// scan whose residual runs batch-at-a-time over column strips is marked
// "Vectorized: true" — the same test scanMatching applies.
func scanPlanNode(table string, schema *rel.Schema, indexes []IndexMeta, p plan, op *opTrace, tx Txn) *planNode {
	n := &planNode{label: scanLabel(table, p), op: op}
	if p.empty {
		n.notes = append(n.notes, "One-Time Filter: false (contradictory WHERE)")
		return n
	}
	if p.index != "" && len(p.prefixVals) > 0 {
		for i := range indexes {
			if indexes[i].Name != p.index {
				continue
			}
			conds := make([]string, len(p.prefixVals))
			for j, v := range p.prefixVals {
				conds[j] = schema.Cols[indexes[i].Cols[j]].Name + " = " + v.String()
			}
			n.notes = append(n.notes, "Index Cond: "+strings.Join(conds, " AND "))
			break
		}
	}
	if p.index != "" && p.hasRange() {
		n.notes = append(n.notes, "Index Range Cond: "+rangeCondString(p))
	}
	if len(p.residual) > 0 {
		n.notes = append(n.notes, "Filter: "+condsString(p.residual))
	}
	if p.index == "" {
		if _, ok := vectorizedFor(tx); ok {
			if _, ok := colPreds(schema, p.residual); ok {
				n.notes = append(n.notes, "Vectorized: true")
			}
		}
	}
	return n
}

// shapePlanNodes wraps the gather node in the shaping pipeline the
// executor applies: aggregate → sort → limit → project, innermost first.
func shapePlanNodes(ss *srcSchema, s SelectStmt, child *planNode, sorted bool, tr *execTrace) (*planNode, error) {
	outCols, err := buildOutCols(ss, s)
	if err != nil {
		return nil, err
	}
	n := child
	aggregate := len(s.GroupBy) > 0 || hasAggs(s.Exprs)
	if aggregate {
		label := "Aggregate"
		if len(s.GroupBy) > 0 {
			keys := make([]string, len(s.GroupBy))
			for i, r := range s.GroupBy {
				keys[i] = refString(r)
			}
			label = "HashAggregate (group by " + strings.Join(keys, ", ") + ")"
		}
		n = &planNode{label: label, op: tr.aggOp(), children: []*planNode{n}}
	}
	if len(s.OrderBy) > 0 && (aggregate || !sorted) {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = refString(k.Ref)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		n = &planNode{label: "Sort (" + strings.Join(keys, ", ") + ")", op: tr.sortOp(), children: []*planNode{n}}
	}
	if s.Limit > 0 {
		n = &planNode{label: fmt.Sprintf("Limit %d", s.Limit), op: tr.limitOp(), children: []*planNode{n}}
	}
	n = &planNode{label: "Project (" + strings.Join(colNames(outCols), ", ") + ")", op: tr.projectOp(), children: []*planNode{n}}
	return n, nil
}

// buildSelectPlan reconstructs the plan tree for a SELECT by invoking
// the same planner decisions the executor makes.
func buildSelectPlan(cat Catalog, tx Txn, s SelectStmt, tr *execTrace) (*planNode, error) {
	if s.Join != nil {
		return buildJoinPlan(cat, tx, s, tr)
	}
	if schema, _, ok := statTable(cat, s.Table); ok {
		if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
			return nil, err
		}
		scan := &planNode{label: "Stat Scan on " + s.Table, op: tr.scanOp()}
		if len(s.Where) > 0 {
			scan.notes = append(scan.notes, "Filter: "+condsString(s.Where))
		}
		return shapePlanNodes(singleSource(s.Table, schema), s, scan, false, tr)
	}
	schema, err := cat.TableSchema(s.Table)
	if err != nil {
		return nil, err
	}
	indexes, err := cat.IndexInfo(s.Table)
	if err != nil {
		return nil, err
	}
	if err := checkWhereQualifiers(s.Table, s.Where); err != nil {
		return nil, err
	}
	p, err := planWhere(schema, indexes, s.Where)
	if err != nil {
		return nil, err
	}
	ss := singleSource(s.Table, schema)
	aggregate := len(s.GroupBy) > 0 || hasAggs(s.Exprs)
	sorted := false
	if !aggregate && len(s.OrderBy) > 0 {
		sorted, err = orderSatisfied(ss, indexes, p, s.OrderBy)
		if err != nil {
			return nil, err
		}
	}
	scan := scanPlanNode(s.Table, schema, indexes, p, tr.scanOp(), tx)
	if sorted {
		scan.notes = append(scan.notes, "Order: "+p.index+" scan order satisfies ORDER BY (sort avoided)")
	}
	if !aggregate && s.Limit > 0 && (len(s.OrderBy) == 0 || sorted) {
		scan.notes = append(scan.notes, fmt.Sprintf("Limit Pushdown: stop after %d rows", s.Limit))
	}
	return shapePlanNodes(ss, s, scan, sorted, tr)
}

// buildJoinPlan reconstructs the join subtree via the executor's own
// strategy choice (hint-less, so the pick is recomputed deterministically).
func buildJoinPlan(cat Catalog, tx Txn, s SelectStmt, tr *execTrace) (*planNode, error) {
	ji, err := resolveJoin(cat, s)
	if err != nil {
		return nil, err
	}
	sh := chooseJoinStrategy(nil, ji)
	cond := refString(s.Join.Left) + " = " + refString(s.Join.Right)
	var join *planNode
	if sh.probeIndex != "" {
		driveName, driveSchema, driveConds := s.Table, ji.outerSchema, ji.outerConds
		driveIndexes := ji.outerIndexes
		probeName, probeSchema, probeConds := s.Join.Table, ji.innerSchema, ji.innerConds
		probeCol, driveCol := ji.innerPos, ji.outerPos
		if sh.swapped {
			driveName, driveSchema, driveConds = s.Join.Table, ji.innerSchema, ji.innerConds
			driveIndexes = ji.innerIndexes
			probeName, probeSchema, probeConds = s.Table, ji.outerSchema, ji.outerConds
			probeCol, driveCol = ji.outerPos, ji.innerPos
		}
		dp, err := planWhere(driveSchema, driveIndexes, driveConds)
		if err != nil {
			return nil, err
		}
		drive := scanPlanNode(driveName, driveSchema, driveIndexes, dp, tr.scanOp(), tx)
		probe := &planNode{
			label: "Index Scan using " + sh.probeIndex + " on " + probeName,
			op:    tr.probeOp(),
		}
		probe.notes = append(probe.notes, "Index Cond: "+probeSchema.Cols[probeCol].Name+
			" = "+driveName+"."+driveSchema.Cols[driveCol].Name)
		if len(probeConds) > 0 {
			probe.notes = append(probe.notes, "Filter: "+condsString(probeConds))
		}
		join = &planNode{
			label:    "IndexNestedLoop Join (" + cond + ")",
			children: []*planNode{drive, probe},
		}
	} else {
		outp, err := planWhere(ji.outerSchema, ji.outerIndexes, ji.outerConds)
		if err != nil {
			return nil, err
		}
		ip, err := planWhere(ji.innerSchema, ji.innerIndexes, ji.innerConds)
		if err != nil {
			return nil, err
		}
		outer := scanPlanNode(s.Table, ji.outerSchema, ji.outerIndexes, outp, tr.scanOp(), tx)
		inner := scanPlanNode(s.Join.Table, ji.innerSchema, ji.innerIndexes, ip, tr.buildOp(), tx)
		build := &planNode{label: "Hash Build", children: []*planNode{inner}}
		join = &planNode{
			label:    "Hash Join (" + cond + ")",
			op:       tr.probeOp(),
			children: []*planNode{outer, build},
		}
	}
	return shapePlanNodes(ji.ss, s, join, false, tr)
}

// buildPlan reconstructs the plan tree for any explainable statement.
func buildPlan(cat Catalog, tx Txn, stmt Stmt, tr *execTrace) (*planNode, error) {
	switch s := stmt.(type) {
	case SelectStmt:
		return buildSelectPlan(cat, tx, s, tr)
	case InsertStmt:
		return &planNode{
			label: fmt.Sprintf("Insert on %s (%d rows)", s.Table, len(s.Rows)),
			op:    tr.modifyOp(),
		}, nil
	case UpdateStmt:
		schema, err := cat.TableSchema(s.Table)
		if err != nil {
			return nil, err
		}
		indexes, err := cat.IndexInfo(s.Table)
		if err != nil {
			return nil, err
		}
		p, err := planWhere(schema, indexes, s.Where)
		if err != nil {
			return nil, err
		}
		scan := scanPlanNode(s.Table, schema, indexes, p, tr.scanOp(), tx)
		return &planNode{
			label:    "Update on " + s.Table,
			op:       tr.modifyOp(),
			children: []*planNode{scan},
		}, nil
	case DeleteStmt:
		schema, err := cat.TableSchema(s.Table)
		if err != nil {
			return nil, err
		}
		indexes, err := cat.IndexInfo(s.Table)
		if err != nil {
			return nil, err
		}
		p, err := planWhere(schema, indexes, s.Where)
		if err != nil {
			return nil, err
		}
		scan := scanPlanNode(s.Table, schema, indexes, p, tr.scanOp(), tx)
		return &planNode{
			label:    "Delete on " + s.Table,
			op:       tr.modifyOp(),
			children: []*planNode{scan},
		}, nil
	default:
		return nil, ErrUnsupported
	}
}

// renderPlan flattens the tree Postgres-style: the root bare, children
// prefixed with "->" at increasing indent, notes under their node.
func renderPlan(n *planNode, depth int, analyze bool, out *[]string) {
	line := n.label
	if depth > 0 {
		line = strings.Repeat("  ", depth) + "-> " + n.label
	}
	if analyze && n.op != nil {
		line += fmt.Sprintf(" (actual rows=%d loops=%d time=%.3f ms)",
			n.op.rowsOut, n.op.loops, float64(n.op.nanos)/1e6)
	}
	*out = append(*out, line)
	for _, note := range n.notes {
		*out = append(*out, strings.Repeat("  ", depth+1)+"   "+note)
	}
	for _, c := range n.children {
		renderPlan(c, depth+1, analyze, out)
	}
}

// execExplain runs EXPLAIN [ANALYZE]: for plain EXPLAIN only the planner
// runs; ANALYZE executes the statement first (including its side effects,
// like Postgres) with a trace collector attached, then renders the tree
// with per-operator actuals and the total wall time.
func execExplain(cat Catalog, tx Txn, s ExplainStmt) (Result, error) {
	switch s.Inner.(type) {
	case ExplainStmt:
		return Result{}, fmt.Errorf("%w: nested EXPLAIN", ErrUnsupported)
	case CreateTableStmt, CreateIndexStmt:
		return Result{}, fmt.Errorf("%w: EXPLAIN of DDL", ErrUnsupported)
	}
	var tr *execTrace
	if s.Analyze {
		tr = &execTrace{}
		start := time.Now()
		if _, err := exec(cat, tx, s.Inner, nil, tr); err != nil {
			return Result{}, err
		}
		tr.total = time.Since(start)
	}
	root, err := buildPlan(cat, tx, s.Inner, tr)
	if err != nil {
		return Result{}, err
	}
	var lines []string
	renderPlan(root, 0, s.Analyze, &lines)
	if s.Analyze {
		lines = append(lines, fmt.Sprintf("Execution Time: %.3f ms", float64(tr.total.Nanoseconds())/1e6))
	}
	res := Result{Columns: []string{"plan"}, Rows: make([]rel.Row, len(lines))}
	for i, l := range lines {
		res.Rows[i] = rel.Row{rel.Str(l)}
	}
	return res, nil
}
