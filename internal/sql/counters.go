package sql

import "sync/atomic"

// Counters are executor-level statistics the host can export as metrics.
type Counters struct {
	// JoinRows counts combined rows emitted by JOIN executions.
	JoinRows atomic.Int64
	// SortAvoided counts ORDER BY queries served directly in index scan
	// order, skipping the sort.
	SortAvoided atomic.Int64
	// Sorts counts explicit in-memory sorts (ORDER BY not covered by the
	// chosen index).
	Sorts atomic.Int64
}

// CounterCatalog is optionally implemented by catalogs that expose
// executor counters.
type CounterCatalog interface{ SQLCounters() *Counters }

// discardCounters absorbs counts when the catalog exports none.
var discardCounters Counters

func countersOf(cat Catalog) *Counters {
	if cc, ok := cat.(CounterCatalog); ok {
		if c := cc.SQLCounters(); c != nil {
			return c
		}
	}
	return &discardCounters
}
