// Package clock implements PhoebeDB's 62-bit global logical clock (§6.1).
//
// A single atomic counter supplies transaction start timestamps, commit
// timestamps, and snapshot timestamps. Transaction IDs (XIDs) and plain
// timestamps share one 64-bit value space: an XID has the most significant
// bit set, carries the transaction's start timestamp in the middle 62 bits,
// and reserves the least significant bit for future use. Because the two
// kinds are distinguished by the MSB, a field such as an UNDO record's
// sts/ets can hold either a timestamp or an XID and be classified by
// inspection, which is what the MVCC visibility check (§6.2) relies on.
//
// Snapshot acquisition is a single atomic load — O(1), in contrast to
// PostgreSQL's scan over the active-transaction array.
package clock

import "sync/atomic"

// XIDFlag is the most-significant-bit tag that marks a value as a
// transaction ID rather than a timestamp.
const XIDFlag uint64 = 1 << 63

// MaxTimestamp is the largest timestamp representable in the 62-bit space.
const MaxTimestamp uint64 = (1 << 62) - 1

// Clock is the global logical clock. The zero value starts at timestamp 0;
// use New to start from 1 so that 0 can mean "reclaimed / unknown" (§6.2
// sets sts to 0 when the previous UNDO record has been reclaimed).
type Clock struct {
	now atomic.Uint64
}

// New returns a clock whose first issued timestamp is 1.
func New() *Clock {
	c := &Clock{}
	c.now.Store(0)
	return c
}

// Next returns a fresh, strictly increasing timestamp.
func (c *Clock) Next() uint64 {
	return c.now.Add(1)
}

// Now returns the most recently issued timestamp without advancing the
// clock. A snapshot taken as Now() sees every transaction whose commit
// timestamp is <= the returned value.
func (c *Clock) Now() uint64 {
	return c.now.Load()
}

// Snapshot returns a snapshot timestamp: a single atomic load (O(1)).
// Present tense alias of Now kept separate so call sites read as intent.
func (c *Clock) Snapshot() uint64 {
	return c.now.Load()
}

// AdvanceTo moves the clock forward so that Now() >= ts; used by recovery
// to fast-forward past the highest timestamp observed in the log.
func (c *Clock) AdvanceTo(ts uint64) {
	for {
		cur := c.now.Load()
		if cur >= ts || c.now.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// MakeXID encodes a start timestamp into a transaction ID: MSB set,
// 62 timestamp bits, low bit reserved (zero).
func MakeXID(startTS uint64) uint64 {
	return XIDFlag | (startTS&MaxTimestamp)<<1
}

// IsXID reports whether v is a transaction ID (MSB set) as opposed to a
// plain commit/snapshot timestamp.
func IsXID(v uint64) bool {
	return v&XIDFlag != 0
}

// StartTS extracts the start timestamp from an XID. The result is
// meaningless if v is not an XID.
func StartTS(xid uint64) uint64 {
	return (xid &^ XIDFlag) >> 1
}
