package clock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNextStrictlyIncreasing(t *testing.T) {
	c := New()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		ts := c.Next()
		if ts <= prev {
			t.Fatalf("timestamp %d not strictly greater than %d", ts, prev)
		}
		prev = ts
	}
}

func TestFirstTimestampIsOne(t *testing.T) {
	c := New()
	if got := c.Next(); got != 1 {
		t.Fatalf("first timestamp = %d, want 1", got)
	}
}

func TestNowDoesNotAdvance(t *testing.T) {
	c := New()
	c.Next()
	c.Next()
	if c.Now() != 2 {
		t.Fatalf("Now() = %d, want 2", c.Now())
	}
	if c.Now() != 2 {
		t.Fatalf("Now() advanced the clock")
	}
	if c.Snapshot() != 2 {
		t.Fatalf("Snapshot() = %d, want 2", c.Snapshot())
	}
}

func TestXIDEncoding(t *testing.T) {
	cases := []uint64{0, 1, 2, 42, MaxTimestamp}
	for _, ts := range cases {
		xid := MakeXID(ts)
		if !IsXID(xid) {
			t.Errorf("MakeXID(%d) not classified as XID", ts)
		}
		if IsXID(ts & MaxTimestamp) {
			t.Errorf("plain timestamp %d classified as XID", ts)
		}
		if got := StartTS(xid); got != ts {
			t.Errorf("StartTS(MakeXID(%d)) = %d", ts, got)
		}
	}
}

func TestXIDReservedBitIsZero(t *testing.T) {
	xid := MakeXID(12345)
	if xid&1 != 0 {
		t.Fatalf("reserved low bit of XID is set: %x", xid)
	}
}

func TestXIDRoundTripProperty(t *testing.T) {
	f := func(ts uint64) bool {
		ts &= MaxTimestamp
		return StartTS(MakeXID(ts)) == ts && IsXID(MakeXID(ts))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUniqueness(t *testing.T) {
	c := New()
	const goroutines = 8
	const perG = 2000
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]uint64, perG)
			for i := range out {
				out[i] = c.Next()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*perG)
	for _, r := range results {
		for _, ts := range r {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			seen[ts] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique timestamps, want %d", len(seen), goroutines*perG)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	c := New()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.Snapshot()
		}
	})
}

func BenchmarkNext(b *testing.B) {
	c := New()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.Next()
		}
	})
}
